// Benchmark harness: one testing.B benchmark per evaluation figure of the
// paper (Figures 6–17), plus ablation benches for the design choices
// DESIGN.md calls out. Each figure bench runs its experiment at reduced
// scale and reports the paper's metric — average upstream queries per user
// query — as a custom "queries/op-style" metric (wall time is NOT the
// paper's cost model).
//
//	go test -bench=. -benchmem
//
// For full-scale numbers use cmd/rerankbench -paper.
package repro_test

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/workload"
)

// benchConfig is a reduced configuration that keeps every figure bench
// under a few seconds.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Sizes = []int{1500, 3000}
	cfg.Samples = 1
	cfg.DOTN = 6000
	cfg.BNN = 4000
	cfg.YAN = 3000
	cfg.TopH = 30
	return cfg
}

// reportSeries attaches each series' final point as a benchmark metric.
func reportSeries(b *testing.B, fig experiments.Figure) {
	for _, s := range fig.Series {
		if len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], "avgQ/"+sanitize(s.Name))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '=' || r == ',':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func benchFigure(b *testing.B, id string) {
	runner, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	cfg := benchConfig()
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

func BenchmarkFig06_OneDImpactOfN_SR1(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig07_OneDImpactOfN_SR2(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig08_OneDSystemK(b *testing.B)        { benchFigure(b, "fig8") }
func BenchmarkFig09_OneDParamsSC(b *testing.B)       { benchFigure(b, "fig9") }
func BenchmarkFig10_OneDQueryOrder(b *testing.B)     { benchFigure(b, "fig10") }
func BenchmarkFig11_OneDTopHBlueNile(b *testing.B)   { benchFigure(b, "fig11") }
func BenchmarkFig12_OneDTopHYahooAutos(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13_MDImpactOfN_SR1(b *testing.B)    { benchFigure(b, "fig13") }
func BenchmarkFig14_MDImpactOfN_SR2(b *testing.B)    { benchFigure(b, "fig14") }
func BenchmarkFig15_MDSystemK(b *testing.B)          { benchFigure(b, "fig15") }
func BenchmarkFig16_MDTopHBlueNile(b *testing.B)     { benchFigure(b, "fig16") }
func BenchmarkFig17_MDTopHYahooAutos(b *testing.B)   { benchFigure(b, "fig17") }

// ablationCost measures the average top-10 MD query cost over a fixed
// workload with the given engine options.
func ablationCost(b *testing.B, opts core.Options) float64 {
	b.Helper()
	full := dataset.DOT(160205100, 6000)
	ds := full.Sample(rand.New(rand.NewSource(4)), 3000)
	items := workload.MD(rand.New(rand.NewSource(5)), ds,
		workload.Spec{Count: 16, NoFilter: 4, MinAttrs: 2, MaxAttrs: 3})
	db := ds.DBWith(10, dataset.DOTSystemRanker2())
	opts.N = 3000
	// Paper-faithful accounting: the probe cache would otherwise absorb
	// repeated probes and distort the per-feature ablation deltas.
	opts.DisableCoalescing = true
	e := core.NewEngine(db, opts)
	for _, it := range items {
		cur, err := e.NewCursor(it.Q, it.R, core.Rerank)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.TopH(cur, 10); err != nil {
			b.Fatal(err)
		}
	}
	return float64(db.QueryCount()) / float64(len(items))
}

// BenchmarkAblation toggles each MD-RERANK design feature off in turn and
// reports the average query cost, quantifying every design choice's
// contribution under the anti-correlated system ranking.
func BenchmarkAblation(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"no-history", core.Options{DisableHistory: true}},
		{"no-dense-index", core.Options{DisableIndex: true}},
		{"no-virtual-tuples", core.Options{DisableVirtualTuples: true}},
		{"no-domination-probe", core.Options{DisableDominationProbe: true}},
		{"assume-gpa", core.Options{AssumeGeneralPositioning: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				cost = ablationCost(b, c.opts)
			}
			b.ReportMetric(cost, "avgQ")
		})
	}
}

// benchParallelRerank hammers one shared engine from GOMAXPROCS goroutines
// with a rotating mix of overlapping requests — the multi-user service
// scenario — and reports both throughput (ns/op is one full top-5 request)
// and the paper's measure, upstream queries per answered request.
func benchParallelRerank(b *testing.B, opts core.Options) {
	ds := dataset.BlueNile(9, 6000)
	db := ds.DB()
	opts.N = 6000
	e := core.NewEngine(db, opts)
	shapes := []string{"Round", "Princess", "Cushion", "Oval", "Emerald", "Pear"}
	rankers := []ranking.Ranker{
		ranking.MustLinear("depth+table", []int{dataset.BNDepth, dataset.BNTable}, []float64{1, 1}),
		ranking.NewSingle("price", dataset.BNPrice, ranking.Asc),
		ranking.NewRatio("ppc", dataset.BNPrice, dataset.BNCarat),
	}
	var next, requests atomic.Int64
	db.ResetCounter()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			q := query.New().WithCat("Shape", shapes[i%int64(len(shapes))])
			r := rankers[i%int64(len(rankers))]
			sess := e.NewSession()
			cur, err := sess.NewCursor(q, r, core.Rerank)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := core.TopH(cur, 5); err != nil {
				b.Error(err)
				return
			}
			requests.Add(1)
		}
	})
	b.StopTimer()
	if n := requests.Load(); n > 0 {
		b.ReportMetric(float64(db.QueryCount())/float64(n), "upstreamQ/req")
	}
}

// BenchmarkParallelRerank measures concurrent throughput and upstream cost
// with and without the probe coalescing layer. The delta between the two
// sub-benchmarks' upstreamQ/req is what coalescing saves when overlapping
// users hit the service at once.
func BenchmarkParallelRerank(b *testing.B) {
	b.Run("coalesced", func(b *testing.B) {
		benchParallelRerank(b, core.Options{})
	})
	b.Run("uncoalesced", func(b *testing.B) {
		benchParallelRerank(b, core.Options{DisableCoalescing: true})
	})
}

// BenchmarkGetNextLatency measures the computational overhead (not query
// cost) of one Get-Next call on a warm MD-RERANK cursor — the service-side
// CPU price per increment.
func BenchmarkGetNextLatency(b *testing.B) {
	ds := dataset.BlueNile(3, 20000)
	db := ds.DB()
	rank := ranking.MustLinear("depth+table",
		[]int{dataset.BNDepth, dataset.BNTable}, []float64{1, 1})
	e := core.NewEngine(db, core.Options{N: 20000})
	cur, err := e.NewCursor(query.New(), rank, core.Rerank)
	if err != nil {
		b.Fatal(err)
	}
	db.ResetCounter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := cur.Next(); err != nil || !ok {
			b.StopTimer()
			// Cursor drained: restart on a fresh engine.
			e = core.NewEngine(db, core.Options{N: 20000})
			cur, _ = e.NewCursor(query.New(), rank, core.Rerank)
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(db.QueryCount())/float64(b.N), "upstreamQ/op")
}
