// Benchmark harness: one testing.B benchmark per evaluation figure of the
// paper (Figures 6–17), plus ablation benches for the design choices
// DESIGN.md calls out. Each figure bench runs its experiment at reduced
// scale and reports the paper's metric — average upstream queries per user
// query — as a custom "queries/op-style" metric (wall time is NOT the
// paper's cost model).
//
//	go test -bench=. -benchmem
//
// For full-scale numbers use cmd/rerankbench -paper.
package repro_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/acquire"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/hidden"
	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/service"
	"repro/internal/types"
	"repro/internal/workload"
)

// benchConfig is a reduced configuration that keeps every figure bench
// under a few seconds.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Sizes = []int{1500, 3000}
	cfg.Samples = 1
	cfg.DOTN = 6000
	cfg.BNN = 4000
	cfg.YAN = 3000
	cfg.TopH = 30
	return cfg
}

// reportSeries attaches each series' final point as a benchmark metric.
func reportSeries(b *testing.B, fig experiments.Figure) {
	for _, s := range fig.Series {
		if len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], "avgQ/"+sanitize(s.Name))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '=' || r == ',':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func benchFigure(b *testing.B, id string) {
	runner, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	cfg := benchConfig()
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

func BenchmarkFig06_OneDImpactOfN_SR1(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig07_OneDImpactOfN_SR2(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig08_OneDSystemK(b *testing.B)        { benchFigure(b, "fig8") }
func BenchmarkFig09_OneDParamsSC(b *testing.B)       { benchFigure(b, "fig9") }
func BenchmarkFig10_OneDQueryOrder(b *testing.B)     { benchFigure(b, "fig10") }
func BenchmarkFig11_OneDTopHBlueNile(b *testing.B)   { benchFigure(b, "fig11") }
func BenchmarkFig12_OneDTopHYahooAutos(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13_MDImpactOfN_SR1(b *testing.B)    { benchFigure(b, "fig13") }
func BenchmarkFig14_MDImpactOfN_SR2(b *testing.B)    { benchFigure(b, "fig14") }
func BenchmarkFig15_MDSystemK(b *testing.B)          { benchFigure(b, "fig15") }
func BenchmarkFig16_MDTopHBlueNile(b *testing.B)     { benchFigure(b, "fig16") }
func BenchmarkFig17_MDTopHYahooAutos(b *testing.B)   { benchFigure(b, "fig17") }

// ablationCost measures the average top-10 MD query cost over a fixed
// workload with the given engine options.
func ablationCost(b *testing.B, opts core.Options) float64 {
	b.Helper()
	full := dataset.DOT(160205100, 6000)
	ds := full.Sample(rand.New(rand.NewSource(4)), 3000)
	items := workload.MD(rand.New(rand.NewSource(5)), ds,
		workload.Spec{Count: 16, NoFilter: 4, MinAttrs: 2, MaxAttrs: 3})
	db := ds.DBWith(10, dataset.DOTSystemRanker2())
	opts.N = 3000
	// Paper-faithful accounting: the probe cache would otherwise absorb
	// repeated probes and distort the per-feature ablation deltas.
	opts.DisableCoalescing = true
	e := core.NewEngine(db, opts)
	for _, it := range items {
		cur, err := e.NewCursor(it.Q, it.R, core.Rerank)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.TopH(cur, 10); err != nil {
			b.Fatal(err)
		}
	}
	return float64(db.QueryCount()) / float64(len(items))
}

// BenchmarkAblation toggles each MD-RERANK design feature off in turn and
// reports the average query cost, quantifying every design choice's
// contribution under the anti-correlated system ranking.
func BenchmarkAblation(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"no-history", core.Options{DisableHistory: true}},
		{"no-dense-index", core.Options{DisableIndex: true}},
		{"no-virtual-tuples", core.Options{DisableVirtualTuples: true}},
		{"no-domination-probe", core.Options{DisableDominationProbe: true}},
		{"assume-gpa", core.Options{AssumeGeneralPositioning: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				cost = ablationCost(b, c.opts)
			}
			b.ReportMetric(cost, "avgQ")
		})
	}
}

// benchParallelRerank hammers one shared engine from GOMAXPROCS goroutines
// with a rotating mix of overlapping requests — the multi-user service
// scenario — and reports both throughput (ns/op is one full top-5 request)
// and the paper's measure, upstream queries per answered request.
func benchParallelRerank(b *testing.B, opts core.Options) {
	ds := dataset.BlueNile(9, 6000)
	db := ds.DB()
	opts.N = 6000
	e := core.NewEngine(db, opts)
	shapes := []string{"Round", "Princess", "Cushion", "Oval", "Emerald", "Pear"}
	rankers := []ranking.Ranker{
		ranking.MustLinear("depth+table", []int{dataset.BNDepth, dataset.BNTable}, []float64{1, 1}),
		ranking.NewSingle("price", dataset.BNPrice, ranking.Asc),
		ranking.NewRatio("ppc", dataset.BNPrice, dataset.BNCarat),
	}
	var next, requests atomic.Int64
	db.ResetCounter()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			q := query.New().WithCat("Shape", shapes[i%int64(len(shapes))])
			r := rankers[i%int64(len(rankers))]
			sess := e.NewSession()
			cur, err := sess.NewCursor(q, r, core.Rerank)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := core.TopH(cur, 5); err != nil {
				b.Error(err)
				return
			}
			requests.Add(1)
		}
	})
	b.StopTimer()
	if n := requests.Load(); n > 0 {
		b.ReportMetric(float64(db.QueryCount())/float64(n), "upstreamQ/req")
	}
}

// BenchmarkParallelRerank measures concurrent throughput and upstream cost
// with and without the probe coalescing layer. The delta between the two
// sub-benchmarks' upstreamQ/req is what coalescing saves when overlapping
// users hit the service at once.
func BenchmarkParallelRerank(b *testing.B) {
	b.Run("coalesced", func(b *testing.B) {
		benchParallelRerank(b, core.Options{})
	})
	b.Run("uncoalesced", func(b *testing.B) {
		benchParallelRerank(b, core.Options{DisableCoalescing: true})
	})
}

// benchCrawlCoalesced hammers one shared engine with concurrent complete
// crawls of overlapping windows — the dense-region crawl traffic a
// multi-user service generates — and reports throughput plus the paper's
// measure, upstream queries per crawl. With coalescing, identical in-flight
// sub-queries are issued once and complete sub-answers replay from the probe
// LRU; without it, every crawl pays full price.
func benchCrawlCoalesced(b *testing.B, opts core.Options) {
	schema := types.MustSchema([]types.Attribute{
		{Name: "A0", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "A1", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
	rng := rand.New(rand.NewSource(11))
	tuples := make([]types.Tuple, 2000)
	for i := range tuples {
		tuples[i] = types.Tuple{
			ID:  i,
			Ord: []float64{rng.Float64() * 100, rng.Float64() * 100},
		}
	}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10})
	opts.N = 2000
	e := core.NewEngine(db, opts)
	var next, crawls atomic.Int64
	db.ResetCounter()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			lo := float64((i % 8) * 4) // 8 windows, each overlapping its neighbors
			q := query.New().WithRange(0, types.ClosedInterval(lo, lo+6))
			sess := e.NewSession()
			if _, err := sess.CrawlAll(q); err != nil {
				b.Error(err)
				return
			}
			crawls.Add(1)
		}
	})
	b.StopTimer()
	if n := crawls.Load(); n > 0 {
		b.ReportMetric(float64(db.QueryCount())/float64(n), "upstreamQ/crawl")
	}
}

// BenchmarkCrawlCoalesced measures concurrent crawl throughput and upstream
// cost with and without the probe coalescing layer. The coalesced
// upstreamQ/crawl collapsing toward zero is the PR-3 win the CI bench gate
// pins: crawl probes dedup at probe granularity, not just whole-crawl
// leadership.
func BenchmarkCrawlCoalesced(b *testing.B) {
	b.Run("coalesced", func(b *testing.B) {
		benchCrawlCoalesced(b, core.Options{})
	})
	b.Run("uncoalesced", func(b *testing.B) {
		benchCrawlCoalesced(b, core.Options{DisableCoalescing: true})
	})
}

// histStore is the surface BenchmarkHistoryWriteMix drives: the history
// store's hot-path operations shared by the sharded implementation and the
// pre-sharding rebuild-on-read baseline below.
type histStore interface {
	Add(...types.Tuple) int
	MinMatching(query.Query, int, types.Interval) (types.Tuple, bool)
	MaxMatching(query.Query, int, types.Interval) (types.Tuple, bool)
}

// rebuildStore replicates the pre-PR-2 history store design — one global
// RWMutex, per-attribute sorted indexes thrown away on every insert and
// rebuilt (full O(n log n) sort) by the next reader under the write lock —
// kept here as the benchmark baseline the sharded store is measured against.
type rebuildStore struct {
	mu     sync.RWMutex
	byID   map[int]types.Tuple
	sorted map[int][]types.Tuple
	dirty  map[int]bool
}

func newRebuildStore() *rebuildStore {
	return &rebuildStore{
		byID:   make(map[int]types.Tuple),
		sorted: make(map[int][]types.Tuple),
		dirty:  make(map[int]bool),
	}
}

func (s *rebuildStore) Add(tuples ...types.Tuple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, t := range tuples {
		if _, seen := s.byID[t.ID]; seen {
			continue
		}
		s.byID[t.ID] = t.Clone()
		added++
	}
	if added > 0 {
		for a := range s.sorted {
			s.dirty[a] = true
		}
	}
	return added
}

func (s *rebuildStore) index(attr int) []types.Tuple {
	s.mu.RLock()
	lst, ok := s.sorted[attr]
	fresh := ok && !s.dirty[attr] && len(lst) == len(s.byID)
	s.mu.RUnlock()
	if fresh {
		return lst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lst, ok = s.sorted[attr]
	if ok && !s.dirty[attr] && len(lst) == len(s.byID) {
		return lst
	}
	lst = make([]types.Tuple, 0, len(s.byID))
	for _, t := range s.byID {
		lst = append(lst, t)
	}
	sort.Slice(lst, func(i, j int) bool {
		if lst[i].Ord[attr] != lst[j].Ord[attr] {
			return lst[i].Ord[attr] < lst[j].Ord[attr]
		}
		return lst[i].ID < lst[j].ID
	})
	s.sorted[attr] = lst
	s.dirty[attr] = false
	return lst
}

func (s *rebuildStore) MinMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	return index.ScanMinMatching(s.index(attr), q, attr, iv)
}

func (s *rebuildStore) MaxMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	return index.ScanMaxMatching(s.index(attr), q, attr, iv)
}

// benchHistSchema is the two-ordinal-attribute schema the history write-mix
// benchmark runs over.
func benchHistSchema() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "A0", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "A1", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
}

// benchHistTuple fabricates a fresh observed tuple; IDs come from an atomic
// counter so every Add inserts (dup Adds would let the rebuild baseline skip
// its index invalidation and understate the contrast).
func benchHistTuple(rng *rand.Rand, id int64) types.Tuple {
	return types.Tuple{
		ID:  int(id),
		Ord: []float64{rng.Float64() * 100, rng.Float64() * 100},
	}
}

// BenchmarkHistoryWriteMix drives the history store's hot path — Add vs
// indexed MinMatching/MaxMatching — at three read/write ratios and several
// GOMAXPROCS settings, once against the sharded incremental store and once
// against the pre-sharding rebuild-on-read baseline. The interesting number
// is the sharded/rebuild ns/op ratio at mix=mixed with procs ≥ 4: the write
// mix keeps the baseline permanently dirty, so every read pays a full
// O(n log n) rebuild under the write lock, while the sharded store merges
// incrementally per attribute.
func BenchmarkHistoryWriteMix(b *testing.B) {
	mixes := []struct {
		name    string
		readPct int
	}{
		{"read-heavy", 95},
		{"mixed", 50},
		{"write-heavy", 5},
	}
	stores := []struct {
		name string
		make func() histStore
	}{
		{"sharded", func() histStore { return history.NewStore(benchHistSchema()) }},
		{"rebuild", func() histStore { return newRebuildStore() }},
	}
	for _, mix := range mixes {
		for _, procs := range []int{1, 4, 8} {
			for _, st := range stores {
				name := fmt.Sprintf("mix=%s/procs=%d/store=%s", mix.name, procs, st.name)
				b.Run(name, func(b *testing.B) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
					s := st.make()
					var nextID, nextSeed atomic.Int64
					// Pre-populate so reads have something to scan from
					// the first iteration.
					seedRNG := rand.New(rand.NewSource(1))
					for i := 0; i < 5000; i++ {
						s.Add(benchHistTuple(seedRNG, nextID.Add(1)))
					}
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						rng := rand.New(rand.NewSource(nextSeed.Add(1)))
						for pb.Next() {
							if rng.Intn(100) < mix.readPct {
								attr := rng.Intn(2)
								lo := rng.Float64() * 90
								iv := types.ClosedInterval(lo, lo+10)
								q := query.New().WithRange(1-attr, types.ClosedInterval(0, 75))
								if rng.Intn(2) == 0 {
									s.MinMatching(q, attr, iv)
								} else {
									s.MaxMatching(q, attr, iv)
								}
							} else {
								s.Add(benchHistTuple(rng, nextID.Add(1)))
							}
						}
					})
				})
			}
		}
	}
}

// latencyDB wraps an upstream with a fixed per-probe delay, modelling the
// round-trip to a remote search endpoint — the deployment rerankd actually
// targets, and the regime the speculative parallel MD search exists for:
// sequential search serializes these delays, speculation overlaps them.
type latencyDB struct {
	hidden.Database
	delay time.Duration
}

func (l latencyDB) TopK(q query.Query) (hidden.Result, error) {
	time.Sleep(l.delay)
	return l.Database.TopK(q)
}

// benchMDParallel runs full MD-RERANK requests over overlapping windows
// against a latency-wrapped upstream at the given GOMAXPROCS and speculative
// width. Each iteration uses a fresh engine, so every request pays its
// probes cold and ns/op measures the search itself, not cache warmth.
func benchMDParallel(b *testing.B, procs, width int) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	schema := types.MustSchema([]types.Attribute{
		{Name: "A0", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "A1", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
	rng := rand.New(rand.NewSource(7))
	tuples := make([]types.Tuple, 1500)
	for i := range tuples {
		tuples[i] = types.Tuple{
			ID:  i,
			Ord: []float64{rng.Float64() * 100, rng.Float64() * 100},
		}
	}
	// Anti-correlated system ranking keeps the branch-and-bound honest.
	sys := hidden.FuncRanker{Label: "anti", F: func(t types.Tuple) float64 {
		return -(t.Ord[0] + t.Ord[1])
	}}
	base := hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})
	db := latencyDB{Database: base, delay: 300 * time.Microsecond}
	rank := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})

	var requests, upstream, specIssued, specWasted int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := core.NewEngine(db, core.Options{N: 1500, SearchParallelism: width})
		// Overlapping windows: neighbors share half their range, the
		// multi-user pattern the probe coalescer sees in production.
		for r := 0; r < 4; r++ {
			lo := float64(((i*4 + r) % 12) * 8)
			q := query.New().WithRange(0, types.ClosedInterval(lo, lo+16))
			sess := e.NewSession()
			cur := sess.NewMDCursor(q, rank, core.Rerank)
			if _, err := core.TopH(cur, 8); err != nil {
				b.Fatal(err)
			}
			requests++
		}
		upstream += e.Queries()
		si, sw := e.SpeculationStats()
		specIssued += si
		specWasted += sw
	}
	b.StopTimer()
	if requests > 0 {
		b.ReportMetric(float64(upstream)/float64(requests), "upstreamQ/req")
		b.ReportMetric(float64(specIssued)/float64(requests), "specQ/req")
	}
	if upstream > 0 {
		b.ReportMetric(float64(specWasted)/float64(upstream), "wastedFrac")
	}
}

// BenchmarkMDParallel pins the speculative-search win: at GOMAXPROCS 8,
// width=8 must deliver ≥ 2x the throughput of width=1 on the
// overlapping-window workload with wastedFrac ≤ 0.25, and the emitted
// sequence is width-independent (asserted by TestMDParallelEquivalence).
// The upstream carries a 300µs per-probe latency — the remote-upstream
// regime the parallel search targets; sequential search serializes those
// round-trips, speculation overlaps up to W of them.
func BenchmarkMDParallel(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		for _, width := range []int{1, 8} {
			b.Run(fmt.Sprintf("procs=%d/width=%d", procs, width), func(b *testing.B) {
				benchMDParallel(b, procs, width)
			})
		}
	}
}

// benchDenseIndexes caches built MD dense indexes per region count: the
// 10k-region build is quadratic in the absorb scan and must not re-run for
// every benchtime refinement.
var benchDenseIndexes = map[int]*index.DenseMD{}

func benchDenseIndex(n int) *index.DenseMD {
	if d, ok := benchDenseIndexes[n]; ok {
		return d
	}
	rng := rand.New(rand.NewSource(int64(n)))
	d := index.NewDenseMD()
	for i := 0; i < n; i++ {
		lo0, lo1 := rng.Float64()*99, rng.Float64()*99
		w := 0.2 + rng.Float64()*0.6
		d.Insert(query.Box{Dims: []types.Interval{
			{Lo: lo0, Hi: lo0 + w}, {Lo: lo1, Hi: lo1 + w},
		}}, nil)
	}
	benchDenseIndexes[n] = d
	return d
}

// BenchmarkDenseLookup measures one MD dense-region lookup (hit path) at
// growing region counts, against the pre-grid linear scan over the same
// regions. The grid's ns/op staying flat from 100 to 10k regions — while
// linear grows ~100x — is the sub-linear-index win the CI gate pins.
func BenchmarkDenseLookup(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		d := benchDenseIndex(n)
		regions := d.Export()
		rng := rand.New(rand.NewSource(99))
		// Lookup boxes: sub-boxes of recorded regions, so every lookup is
		// a hit (the oracle's fast path).
		probes := make([]query.Box, 256)
		for i := range probes {
			r := regions[rng.Intn(len(regions))]
			pb := r.Box.Clone()
			for j, iv := range pb.Dims {
				w := iv.Hi - iv.Lo
				pb.Dims[j] = types.ClosedInterval(iv.Lo+w/4, iv.Hi-w/4)
			}
			probes[i] = pb
		}
		b.Run(fmt.Sprintf("regions=%d/impl=grid", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := d.Lookup(probes[i%len(probes)]); !ok {
					b.Fatal("lookup missed a covered box")
				}
			}
		})
		b.Run(fmt.Sprintf("regions=%d/impl=linear", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pb := probes[i%len(probes)]
				found := false
				for _, r := range regions {
					if r.Box.ContainsBox(pb) {
						found = true
						break
					}
				}
				if !found {
					b.Fatal("linear scan missed a covered box")
				}
			}
		})
	}
}

// BenchmarkGetNextLatency measures the computational overhead (not query
// cost) of one Get-Next call on a warm MD-RERANK cursor — the service-side
// CPU price per increment.
func BenchmarkGetNextLatency(b *testing.B) {
	ds := dataset.BlueNile(3, 20000)
	db := ds.DB()
	rank := ranking.MustLinear("depth+table",
		[]int{dataset.BNDepth, dataset.BNTable}, []float64{1, 1})
	e := core.NewEngine(db, core.Options{N: 20000})
	cur, err := e.NewCursor(query.New(), rank, core.Rerank)
	if err != nil {
		b.Fatal(err)
	}
	db.ResetCounter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := cur.Next(); err != nil || !ok {
			b.StopTimer()
			// Cursor drained: restart on a fresh engine.
			e = core.NewEngine(db, core.Options{N: 20000})
			cur, _ = e.NewCursor(query.New(), rank, core.Rerank)
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(db.QueryCount())/float64(b.N), "upstreamQ/op")
}

// benchAcquirer wires an acquirer straight to an engine the way the service
// tier does, but with the idle/pressure gates held open: the benchmark
// drives Tick synchronously inside explicit idle gaps, so gating is the
// scenario, not the subject.
func benchAcquirer(b *testing.B, e *core.Engine) *acquire.Acquirer {
	b.Helper()
	iv := func(w acquire.Window) types.Interval { return types.ClosedInterval(w.Lo, w.Hi) }
	return acquire.New(acquire.Config{WindowsPerTick: 4, WarmDepth: 12}, acquire.Hooks{
		Candidates: func(max int) []acquire.Candidate { return e.Heat().Candidates(max) },
		Warm:       func(w acquire.Window) bool { return e.WindowWarm(w.Attr, iv(w)) },
		IdleSince:  func() time.Duration { return time.Hour },
		Pressure:   func() bool { return e.UserPressure(time.Second) },
		Admit:      func() (func(), bool) { return e.TryAdmitLowPriority(1) },
		Acquire: func(w acquire.Window, depth int, abort func() bool) (int64, bool, error) {
			sess := e.NewSession()
			sess.SetAbort(abort)
			err := sess.WarmWindow(w.Attr, iv(w), depth)
			return sess.Queries(), false, err
		},
	})
}

// benchAcquire models the cold-traffic scenario background acquisition
// exists for: a Zipf-skewed user burst heats a handful of windows
// (ascending order), the service goes idle, then traffic returns asking for
// the opposite order — a probe stream no user request has cached. Each
// iteration runs on a fresh engine against a 250µs-per-probe upstream:
// burst, idle gap (with the acquirer ticking through it or not), then the
// cold phase, whose per-op latency and upstream cost are the reported
// p95-cold-ms and upstreamQ/op. With the acquirer on, the idle gap warms
// the hot windows in both directions, so the cold phase replays from
// knowledge instead of paying upstream round-trips.
func benchAcquire(b *testing.B, on bool) {
	schema := types.MustSchema([]types.Attribute{
		{Name: "A0", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "A1", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
	rng := rand.New(rand.NewSource(21))
	tuples := make([]types.Tuple, 1800)
	for i := range tuples {
		tuples[i] = types.Tuple{
			ID:  i,
			Ord: []float64{rng.Float64() * 100, rng.Float64() * 100},
		}
	}
	base := hidden.MustDB(schema, tuples, hidden.Options{K: 10})
	db := latencyDB{Database: base, delay: 250 * time.Microsecond}

	// A discrete window universe over A0; popularity is Zipfian, so a few
	// windows carry most of the traffic — the regime where warming the head
	// of the distribution pays for the whole tail.
	windows := make([]types.Interval, 12)
	for i := range windows {
		lo := float64(i * 8)
		windows[i] = types.ClosedInterval(lo, lo+8)
	}
	asc := ranking.NewSingle("A0", 0, ranking.Asc)
	desc := ranking.NewSingle("A0", 0, ranking.Desc)

	var coldLats []float64
	var coldOps, coldUpstream int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := core.NewEngine(db, core.Options{N: 1800})
		zrng := rand.New(rand.NewSource(42))
		zipf := rand.NewZipf(zrng, 1.3, 1, uint64(len(windows)-1))

		// Burst phase: Zipf-sampled hot windows, ascending order.
		for j := 0; j < 24; j++ {
			q := query.New().WithRange(0, windows[zipf.Uint64()])
			e.RecordHeat(q)
			sess := e.NewSession()
			cur, err := sess.NewCursor(q, asc, core.Rerank)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.TopH(cur, 3); err != nil {
				b.Fatal(err)
			}
		}

		// Idle gap: with acquisition on, the acquirer spends it warming the
		// hottest windows; off, the gap is free but the knowledge stays as
		// the burst left it.
		if on {
			acq := benchAcquirer(b, e)
			for t := 0; t < 3; t++ {
				acq.Tick()
			}
			if st := acq.Stats(); st.WindowsAcquired == 0 {
				b.Fatalf("idle gap acquired nothing: %+v", st)
			}
		}

		// Cold phase: the same Zipf populations, opposite order — probe
		// streams no burst request cached.
		for j := 0; j < 24; j++ {
			q := query.New().WithRange(0, windows[zipf.Uint64()])
			sess := e.NewSession()
			begin := time.Now()
			cur, err := sess.NewCursor(q, desc, core.Rerank)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.TopH(cur, 3); err != nil {
				b.Fatal(err)
			}
			coldLats = append(coldLats, float64(time.Since(begin))/float64(time.Millisecond))
			coldUpstream += sess.Queries()
			coldOps++
		}
	}
	b.StopTimer()
	if coldOps > 0 {
		sort.Float64s(coldLats)
		b.ReportMetric(coldLats[int(0.95*float64(len(coldLats)-1))], "p95-cold-ms")
		b.ReportMetric(float64(coldUpstream)/float64(coldOps), "upstreamQ/op")
	}
}

// BenchmarkAcquire pins the proactive-acquisition win on cold traffic:
// /on's p95-cold-ms and upstreamQ/op must collapse versus /off (the
// acceptance floor is a ≥30% p95 reduction; in practice the cold phase
// replays almost entirely from acquired knowledge). ns/op is gated by
// bench/baseline/acquire.json in CI.
func BenchmarkAcquire(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchAcquire(b, false) })
	b.Run("on", func(b *testing.B) { benchAcquire(b, true) })
}

// BenchmarkServiceThroughput drives the full serving stack — HTTP handler,
// admission gate, JSON wire codecs, engine sessions — with concurrent
// clients issuing the production mix (single 1D and MD reranks, 4-item
// batches through the shared coalescer, NDJSON streams drained to the final
// event) against one in-process server. ns/op is the end-to-end price of
// one mixed operation at GOMAXPROCS parallelism; upstreamQ/op reports the
// paper's cost measure for the same traffic. This is the benchdiff-gated
// guardrail for the serving tier: admission bookkeeping, budget ledgers, or
// wire-format changes that tax the hot path show up here.
func BenchmarkServiceThroughput(b *testing.B) {
	ds := dataset.BlueNile(13, 4000)
	db, err := hidden.NewDB(ds.Schema, ds.Tuples, hidden.Options{
		K: ds.DefaultSystemK, Ranker: ds.DefaultRanker,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := service.NewServerWithOptions(db, service.Options{
		Core: core.Options{N: 4000, MaxConcurrentSessions: 4 * runtime.GOMAXPROCS(0)},
	})
	api := httptest.NewServer(srv.Handler())
	defer api.Close()

	window := func(i int64) (float64, float64) {
		lo := 2000 + float64(i%6)*1000 // six overlapping price bands
		return lo, lo + 1500
	}
	oneD := func(i int64) service.RerankRequest {
		lo, hi := window(i)
		return service.RerankRequest{
			Ranges:  []service.RangeSpec{{Attr: "Price", Min: &lo, Max: &hi}},
			Ranking: service.RankingSpec{Kind: "single", Attrs: []string{"Price"}},
			H:       5,
		}
	}
	md := func(i int64) service.RerankRequest {
		lo, hi := window(i)
		return service.RerankRequest{
			Ranges: []service.RangeSpec{{Attr: "Price", Min: &lo, Max: &hi}},
			Ranking: service.RankingSpec{Kind: "linear",
				Attrs: []string{"Price", "Carat"}, Weights: []float64{1, 1}},
			H: 5,
		}
	}

	var next, ops atomic.Int64
	db.ResetCounter()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := service.NewClientWith(api.URL, service.WithHTTPClient(api.Client()))
		for pb.Next() {
			i := next.Add(1)
			var err error
			switch i % 4 {
			case 0:
				_, err = client.Rerank(oneD(i))
			case 1:
				_, err = client.Rerank(md(i))
			case 2:
				_, err = client.RerankBatch(service.BatchRequest{Requests: []service.RerankRequest{
					oneD(i), md(i), oneD(i + 1), md(i + 1),
				}})
			default:
				_, err = client.RerankStream(md(i), nil)
			}
			if err != nil {
				b.Error(err)
				return
			}
			ops.Add(1)
		}
	})
	b.StopTimer()
	if n := ops.Load(); n > 0 {
		b.ReportMetric(float64(db.QueryCount())/float64(n), "upstreamQ/op")
	}
}

// BenchmarkEpochRevalidate prices the living-upstreams epoch machinery on
// the serving hot path. fresh: touching cached knowledge at the current
// epoch (the overwhelmingly common case — must stay free: 0 upstream
// queries, pure cache reads). stale: the same touches right after an epoch
// bump, where every entry spends its one confirming probe and is promoted.
// upstreamQ/op reports the paper's cost measure; the benchdiff gate guards
// the fresh path's ns/op against regressions.
func BenchmarkEpochRevalidate(b *testing.B) {
	const nTuples, k, nProbes = 5000, 10, 64
	rng := rand.New(rand.NewSource(7))
	schema := types.MustSchema([]types.Attribute{
		{Name: "A0", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "A1", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
	tuples := make([]types.Tuple, nTuples)
	for i := range tuples {
		tuples[i] = types.Tuple{ID: i, Ord: []float64{rng.Float64() * 100, rng.Float64() * 100}}
	}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: k})

	// Narrow windows over A0, each holding fewer than k tuples so one probe
	// answers it completely (cacheable, hence promotable).
	width := 100.0 / nTuples * float64(k) / 4
	queries := make([]query.Query, nProbes)
	for i := range queries {
		lo := rng.Float64() * (100 - width)
		queries[i] = query.New().WithRange(0, types.ClosedInterval(lo, lo+width))
	}
	newWarmEngine := func(b *testing.B) *core.Engine {
		b.Helper()
		eng := core.NewEngine(db, core.Options{N: nTuples, ProbeCacheSize: 4 * nProbes})
		sess := eng.NewSession()
		for _, q := range queries {
			if _, err := sess.CrawlAll(q); err != nil {
				b.Fatal(err)
			}
		}
		return eng
	}
	touchAll := func(b *testing.B, eng *core.Engine) {
		b.Helper()
		sess := eng.NewSession()
		for _, q := range queries {
			if _, err := sess.CrawlAll(q); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("fresh", func(b *testing.B) {
		eng := newWarmEngine(b)
		before := eng.Queries()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			touchAll(b, eng)
		}
		b.StopTimer()
		spent := eng.Queries() - before
		if spent != 0 {
			b.Fatalf("fresh touches spent %d upstream queries, want 0", spent)
		}
		b.ReportMetric(0, "upstreamQ/op")
	})
	b.Run("stale", func(b *testing.B) {
		eng := newWarmEngine(b)
		before := eng.Queries()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Knowledge().BumpEpoch()
			touchAll(b, eng)
		}
		b.StopTimer()
		spent := eng.Queries() - before
		if want := int64(b.N) * nProbes; spent != want {
			b.Fatalf("stale touches spent %d upstream queries, want exactly %d (1 per entry per bump)", spent, want)
		}
		b.ReportMetric(float64(spent)/float64(b.N), "upstreamQ/op")
	})
}
