// BenchmarkStorageScale: the columnar-storage guardrail at realistic scale.
// It loads 1M synthetic diamonds into the history store and measures the
// three costs the columnar arena exists to control:
//
//   - load: build cost plus the post-build live heap (liveMB, measured with
//     runtime.ReadMemStats after a forced GC) and the worst GC pause observed
//     while loading (maxGCpauseMs). The impl=rows variant loads the same
//     tuples into a row-struct store (map of types.Tuple plus sorted
//     row-struct slices — the pre-columnar design), so the ratio of the two
//     liveMB numbers is the resident-memory win.
//   - rangescan: a predicate scan over all 1M rows through the zero-alloc
//     ScanMatching path (allocs/op is the interesting number).
//   - getnext-warm: one Get-Next call on a warm MD-RERANK cursor backed by
//     the columnar history (allocs/op again — the per-increment garbage the
//     serving tier generates under sustained load).
//
// CI runs this with -benchtime 1x (and a GOGC=50 variant) and gates ns/op
// against bench/baseline/storage.json via cmd/benchdiff.
package repro_test

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/history"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

const storageScaleN = 1_000_000

var (
	storageOnce   sync.Once
	storageTuples []types.Tuple  // 1M synthetic diamonds, generated once
	storageStore  *history.Store // shared warm columnar store for read benches
)

func storageSetup() {
	storageOnce.Do(func() {
		storageTuples = dataset.BlueNile(17, storageScaleN).Tuples
		storageStore = history.NewStore(dataset.BlueNileSchema())
		addInBatches(storageStore, storageTuples)
	})
}

// addInBatches feeds tuples to the store the way production does: in
// probe-answer-sized chunks, not one giant variadic call.
func addInBatches(s interface{ Add(...types.Tuple) int }, tuples []types.Tuple) {
	const batch = 8192
	for off := 0; off < len(tuples); off += batch {
		end := off + batch
		if end > len(tuples) {
			end = len(tuples)
		}
		s.Add(tuples[off:end]...)
	}
}

// liveHeap forces a full GC and returns the surviving heap bytes.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// maxPauseMs scans the MemStats pause ring for the longest GC pause among
// cycles (fromGC, toGC].
func maxPauseMs(ms *runtime.MemStats, fromGC, toGC uint32) float64 {
	maxNs := uint64(0)
	for gc := fromGC + 1; gc <= toGC && toGC-gc < uint32(len(ms.PauseNs)); gc++ {
		if p := ms.PauseNs[(gc+255)%256]; p > maxNs {
			maxNs = p
		}
	}
	return float64(maxNs) / 1e6
}

// rowStore is the pre-columnar design at its most favorable: one cloned
// types.Tuple per row in an ID map, plus per-ordinal-attribute sorted slices
// that alias (not copy) the same tuples. Everything the columnar arena
// replaces — a million little Ord slices and Cat maps — is what this holds.
type rowStore struct {
	byID   map[int]types.Tuple
	sorted map[int][]types.Tuple
}

func (s *rowStore) Add(tuples ...types.Tuple) int {
	added := 0
	for _, t := range tuples {
		if _, seen := s.byID[t.ID]; seen {
			continue
		}
		s.byID[t.ID] = t.Clone()
		added++
	}
	return added
}

func (s *rowStore) seal(schema *types.Schema) {
	for _, attr := range schema.OrdinalIndexes() {
		lst := make([]types.Tuple, 0, len(s.byID))
		for _, t := range s.byID {
			lst = append(lst, t)
		}
		sortTuplesBy(lst, attr)
		s.sorted[attr] = lst
	}
}

func sortTuplesBy(lst []types.Tuple, attr int) {
	// Simple bottom-up merge sort keeps this self-contained; cost parity with
	// the columnar run construction is irrelevant — only liveMB is compared.
	tmp := make([]types.Tuple, len(lst))
	for width := 1; width < len(lst); width *= 2 {
		for lo := 0; lo < len(lst); lo += 2 * width {
			mid, hi := min(lo+width, len(lst)), min(lo+2*width, len(lst))
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if lst[i].Ord[attr] < lst[j].Ord[attr] ||
					(lst[i].Ord[attr] == lst[j].Ord[attr] && lst[i].ID <= lst[j].ID) {
					tmp[k] = lst[i]
					i++
				} else {
					tmp[k] = lst[j]
					j++
				}
				k++
			}
			copy(tmp[k:hi], lst[i:mid])
			copy(tmp[k+mid-i:hi], lst[j:hi])
			copy(lst[lo:hi], tmp[lo:hi])
		}
	}
}

func BenchmarkStorageScale(b *testing.B) {
	storageSetup()
	schema := dataset.BlueNileSchema()

	b.Run("load/impl=columnar", func(b *testing.B) {
		b.ReportAllocs()
		var liveMB, pauseMs float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			before := liveHeap()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			gcBefore := ms.NumGC
			b.StartTimer()
			s := history.NewStore(schema)
			addInBatches(s, storageTuples)
			b.StopTimer()
			after := liveHeap()
			runtime.ReadMemStats(&ms)
			liveMB = float64(after-before) / 1e6
			pauseMs = maxPauseMs(&ms, gcBefore, ms.NumGC)
			runtime.KeepAlive(s)
			b.StartTimer()
		}
		b.ReportMetric(liveMB, "liveMB")
		b.ReportMetric(pauseMs, "maxGCpauseMs")
	})

	b.Run("load/impl=rows", func(b *testing.B) {
		b.ReportAllocs()
		var liveMB, pauseMs float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			before := liveHeap()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			gcBefore := ms.NumGC
			b.StartTimer()
			s := &rowStore{byID: make(map[int]types.Tuple), sorted: make(map[int][]types.Tuple)}
			addInBatches(s, storageTuples)
			s.seal(schema)
			b.StopTimer()
			after := liveHeap()
			runtime.ReadMemStats(&ms)
			liveMB = float64(after-before) / 1e6
			pauseMs = maxPauseMs(&ms, gcBefore, ms.NumGC)
			runtime.KeepAlive(s)
			b.StartTimer()
		}
		b.ReportMetric(liveMB, "liveMB")
		b.ReportMetric(pauseMs, "maxGCpauseMs")
	})

	b.Run("rangescan", func(b *testing.B) {
		// Mid-market band plus a categorical filter: selective enough that
		// matching rows are a few percent, so the scan cost is dominated by
		// predicate evaluation over the columns.
		q := query.New().
			WithRange(dataset.BNPrice, types.ClosedInterval(5_000, 9_000)).
			WithCat("Clarity", "VS1")
		matched := 0
		sum := 0.0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matched, sum = 0, 0
			storageStore.ScanMatching(q, func(v colstore.View, row int) bool {
				matched++
				sum += v.Ord(row, dataset.BNCarat)
				return true
			})
		}
		b.StopTimer()
		if matched == 0 || sum == 0 {
			b.Fatal("range scan matched nothing")
		}
		b.ReportMetric(float64(matched), "rows/scan")
	})

	b.Run("getnext-warm", func(b *testing.B) {
		// "Warm" here means knowledge-warm: one cursor pays the crawl once,
		// then fresh cursors re-traverse the same region answered from the
		// columnar history and dense indexes — the regime a long-lived
		// service (and a snapshot-restored restart) actually runs in. The
		// measured Next calls should cost ~0 upstream queries (upstreamQ/op
		// reports the actual rate) and allocate only cursor-local scratch.
		const warmDepth = 64
		ds := dataset.BlueNile(3, storageScaleN)
		db := ds.DB()
		rank := ranking.MustLinear("depth+table",
			[]int{dataset.BNDepth, dataset.BNTable}, []float64{1, 1})
		e := core.NewEngine(db, core.Options{N: storageScaleN})
		newWarmCursor := func() core.Cursor {
			cur, err := e.NewCursor(query.New(), rank, core.Rerank)
			if err != nil {
				b.Fatal(err)
			}
			return cur
		}
		cur := newWarmCursor()
		for i := 0; i < warmDepth; i++ {
			if _, ok, err := cur.Next(); err != nil || !ok {
				b.Fatal("cursor drained during warmup")
			}
		}
		cur = newWarmCursor()
		depth := 0
		db.ResetCounter()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Stay inside the warmed region: recycle the cursor before it
			// reaches the crawl frontier.
			if depth == warmDepth-1 {
				b.StopTimer()
				cur = newWarmCursor()
				depth = 0
				b.StartTimer()
			}
			if _, ok, err := cur.Next(); err != nil || !ok {
				b.Fatal("cursor drained mid-benchmark")
			}
			depth++
		}
		b.StopTimer()
		b.ReportMetric(float64(db.QueryCount())/float64(b.N), "upstreamQ/op")
	})
}
