// Package types defines the fundamental data model shared by every other
// package in the repository: attributes, value domains, schemas, and tuples.
//
// The model follows §2.1 of "Query Reranking As A Service" (Asudeh, Zhang,
// Das; VLDB 2016): a client-server database D holds n tuples over m ordinal
// (numeric, rankable) attributes A1..Am plus any number of categorical
// attributes B1..Bm' that can appear in selection conditions but never in a
// ranking function.
package types

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Kind distinguishes ordinal (numeric, rankable) attributes from categorical
// (filter-only) attributes.
type Kind int

const (
	// Ordinal attributes carry numeric values, support range predicates,
	// and may participate in ranking functions.
	Ordinal Kind = iota
	// Categorical attributes carry small discrete values addressed by
	// equality (point) predicates only.
	Categorical
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Ordinal:
		return "ordinal"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Domain describes the value domain V(Ai) of an ordinal attribute.
// For discrete domains, values are Min, Min+Step, ..., Max.
type Domain struct {
	Min      float64
	Max      float64
	Discrete bool    // true if the domain is a finite grid
	Step     float64 // grid step when Discrete (0 means continuous)
}

// Width returns |V(Ai)| = Max - Min, the extent of the domain.
func (d Domain) Width() float64 { return d.Max - d.Min }

// Contains reports whether v lies within the closed domain bounds.
func (d Domain) Contains(v float64) bool { return v >= d.Min && v <= d.Max }

// Clamp returns v restricted to the closed domain bounds.
func (d Domain) Clamp(v float64) float64 {
	if v < d.Min {
		return d.Min
	}
	if v > d.Max {
		return d.Max
	}
	return v
}

// Validate reports an error when the domain is malformed.
func (d Domain) Validate() error {
	if math.IsNaN(d.Min) || math.IsNaN(d.Max) {
		return fmt.Errorf("domain bounds must not be NaN")
	}
	if d.Min > d.Max {
		return fmt.Errorf("domain min %g exceeds max %g", d.Min, d.Max)
	}
	if d.Discrete && d.Step <= 0 {
		return fmt.Errorf("discrete domain requires positive step, got %g", d.Step)
	}
	return nil
}

// Attribute describes one column of a schema.
type Attribute struct {
	Name   string
	Kind   Kind
	Domain Domain   // meaningful for Ordinal attributes
	Values []string // enumeration for Categorical attributes
}

// Schema describes the attributes of a database. Ordinal attribute order is
// significant: algorithms address ordinal attributes by index.
type Schema struct {
	attrs   []Attribute
	byName  map[string]int
	ordinal []int // indexes of ordinal attributes, in declaration order
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique and non-empty.
func NewSchema(attrs []Attribute) (*Schema, error) {
	s := &Schema{
		attrs:  append([]Attribute(nil), attrs...),
		byName: make(map[string]int, len(attrs)),
	}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("duplicate attribute name %q", a.Name)
		}
		s.byName[a.Name] = i
		if a.Kind == Ordinal {
			if err := a.Domain.Validate(); err != nil {
				return nil, fmt.Errorf("attribute %q: %w", a.Name, err)
			}
			s.ordinal = append(s.ordinal, i)
		}
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests and
// statically-known schemas.
func MustSchema(attrs []Attribute) *Schema {
	s, err := NewSchema(attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the total number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// NumOrdinal returns the number of ordinal attributes.
func (s *Schema) NumOrdinal() int { return len(s.ordinal) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// OrdinalIndexes returns the positions of the ordinal attributes in
// declaration order. The returned slice must not be modified.
func (s *Schema) OrdinalIndexes() []int { return s.ordinal }

// Index returns the position of the named attribute, or -1 when absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Domain returns the domain of the ordinal attribute at position i.
func (s *Schema) Domain(i int) Domain { return s.attrs[i].Domain }

// Names returns the attribute names in declaration order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Tuple is one database row. Ordinal values are indexed by attribute
// position; categorical values by attribute position as small strings.
// ID is a stable identifier unique within a database; algorithms use it for
// deduplication, never for ranking.
type Tuple struct {
	ID  int
	Ord []float64         // ordinal values, indexed by schema position of ordinal attrs
	Cat map[string]string // categorical values keyed by attribute name
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := Tuple{ID: t.ID, Ord: append([]float64(nil), t.Ord...)}
	if t.Cat != nil {
		c.Cat = make(map[string]string, len(t.Cat))
		for k, v := range t.Cat {
			c.Cat[k] = v
		}
	}
	return c
}

// stringScratch pools the builder and categorical-key slice used by
// Tuple.String, which shows up in stream-encode profiles: rendering a tuple
// allocates only the returned string once the pool is warm.
var stringScratch = sync.Pool{New: func() any { return new(tupleScratch) }}

type tupleScratch struct {
	buf  []byte
	keys []string
}

// String renders the tuple compactly for logs and error messages.
func (t Tuple) String() string {
	sc := stringScratch.Get().(*tupleScratch)
	b := sc.buf[:0]
	b = append(b, "t#"...)
	b = strconv.AppendInt(b, int64(t.ID), 10)
	b = append(b, '[')
	for i, v := range t.Ord {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendFloat(b, v, 'g', 4, 64)
	}
	if len(t.Cat) > 0 {
		keys := sc.keys[:0]
		for k := range t.Cat {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = append(b, ' ')
			b = append(b, k...)
			b = append(b, '=')
			b = append(b, t.Cat[k]...)
		}
		// Drop the borrowed key strings before pooling: a retained map key
		// would keep its tuple's categorical strings alive arbitrarily long.
		clear(keys)
		sc.keys = keys[:0]
	}
	b = append(b, ']')
	out := string(b)
	sc.buf = b[:0]
	stringScratch.Put(sc)
	return out
}

// Interval is a one-dimensional range with independently open or closed
// endpoints. Lo may be -Inf and Hi may be +Inf to express unbounded sides.
// The zero value is the empty open interval (0,0).
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// FullInterval returns the unbounded interval (-Inf, +Inf).
func FullInterval() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1), LoOpen: true, HiOpen: true}
}

// OpenInterval returns the open interval (lo, hi).
func OpenInterval(lo, hi float64) Interval {
	return Interval{Lo: lo, Hi: hi, LoOpen: true, HiOpen: true}
}

// ClosedInterval returns the closed interval [lo, hi].
func ClosedInterval(lo, hi float64) Interval {
	return Interval{Lo: lo, Hi: hi}
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	if v < iv.Lo || (v == iv.Lo && iv.LoOpen) {
		return false
	}
	if v > iv.Hi || (v == iv.Hi && iv.HiOpen) {
		return false
	}
	return true
}

// Empty reports whether no real value can satisfy the interval.
func (iv Interval) Empty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen) {
		return true
	}
	return false
}

// Width returns Hi - Lo (which may be +Inf).
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	r := iv
	if o.Lo > r.Lo || (o.Lo == r.Lo && o.LoOpen) {
		r.Lo, r.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi < r.Hi || (o.Hi == r.Hi && o.HiOpen) {
		r.Hi, r.HiOpen = o.Hi, o.HiOpen
	}
	return r
}

// Unbounded reports whether either side is infinite.
func (iv Interval) Unbounded() bool {
	return math.IsInf(iv.Lo, -1) || math.IsInf(iv.Hi, 1)
}

// String renders the interval using standard open/closed bracket notation.
// The rendering is byte-identical to the previous fmt-based version
// (strconv's 'g' formatting matches %g exactly, including ±Inf and NaN):
// interval strings feed the canonical query keys that snapshots persist, so
// the format is load-bearing, not cosmetic.
func (iv Interval) String() string {
	b := make([]byte, 0, 24)
	if iv.LoOpen {
		b = append(b, '(')
	} else {
		b = append(b, '[')
	}
	b = strconv.AppendFloat(b, iv.Lo, 'g', -1, 64)
	b = append(b, ", "...)
	b = strconv.AppendFloat(b, iv.Hi, 'g', -1, 64)
	if iv.HiOpen {
		b = append(b, ')')
	} else {
		b = append(b, ']')
	}
	return string(b)
}
