package types

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestDomain(t *testing.T) {
	d := Domain{Min: -5, Max: 10}
	if got := d.Width(); got != 15 {
		t.Errorf("Width = %g, want 15", got)
	}
	for _, tc := range []struct {
		v    float64
		in   bool
		want float64
	}{
		{-6, false, -5}, {-5, true, -5}, {0, true, 0}, {10, true, 10}, {11, false, 10},
	} {
		if d.Contains(tc.v) != tc.in {
			t.Errorf("Contains(%g) = %v", tc.v, !tc.in)
		}
		if got := d.Clamp(tc.v); got != tc.want {
			t.Errorf("Clamp(%g) = %g, want %g", tc.v, got, tc.want)
		}
	}
}

func TestDomainValidate(t *testing.T) {
	cases := []struct {
		d  Domain
		ok bool
	}{
		{Domain{Min: 0, Max: 1}, true},
		{Domain{Min: 1, Max: 0}, false},
		{Domain{Min: math.NaN(), Max: 1}, false},
		{Domain{Min: 0, Max: 1, Discrete: true}, false},
		{Domain{Min: 0, Max: 1, Discrete: true, Step: 0.1}, true},
	}
	for i, c := range cases {
		if err := c.d.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestSchemaConstruction(t *testing.T) {
	if _, err := NewSchema([]Attribute{{Name: "", Kind: Ordinal}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema([]Attribute{
		{Name: "a", Kind: Ordinal, Domain: Domain{Max: 1}},
		{Name: "a", Kind: Categorical},
	}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewSchema([]Attribute{{Name: "a", Kind: Ordinal, Domain: Domain{Min: 2, Max: 1}}}); err == nil {
		t.Error("invalid domain accepted")
	}
	s := MustSchema([]Attribute{
		{Name: "x", Kind: Ordinal, Domain: Domain{Max: 1}},
		{Name: "c", Kind: Categorical, Values: []string{"a"}},
		{Name: "y", Kind: Ordinal, Domain: Domain{Max: 2}},
	})
	if s.Len() != 3 || s.NumOrdinal() != 2 {
		t.Fatalf("Len=%d NumOrdinal=%d", s.Len(), s.NumOrdinal())
	}
	if got := s.OrdinalIndexes(); got[0] != 0 || got[1] != 2 {
		t.Errorf("OrdinalIndexes = %v", got)
	}
	if s.Index("y") != 2 || s.Index("nope") != -1 {
		t.Errorf("Index lookup broken")
	}
	if names := s.Names(); names[1] != "c" {
		t.Errorf("Names = %v", names)
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{ID: 1, Ord: []float64{1, 2}, Cat: map[string]string{"k": "v"}}
	b := a.Clone()
	b.Ord[0] = 99
	b.Cat["k"] = "w"
	if a.Ord[0] != 1 || a.Cat["k"] != "v" {
		t.Error("Clone shares storage with original")
	}
	if a.String() == "" {
		t.Error("String is empty")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := OpenInterval(1, 3)
	for _, tc := range []struct {
		v  float64
		in bool
	}{{0.9, false}, {1, false}, {2, true}, {3, false}, {3.1, false}} {
		if iv.Contains(tc.v) != tc.in {
			t.Errorf("(1,3).Contains(%g) = %v", tc.v, !tc.in)
		}
	}
	cv := ClosedInterval(1, 3)
	if !cv.Contains(1) || !cv.Contains(3) {
		t.Error("[1,3] must contain endpoints")
	}
	if !OpenInterval(2, 2).Empty() || ClosedInterval(2, 2).Empty() {
		t.Error("degenerate emptiness wrong")
	}
	if ClosedInterval(3, 2).Empty() != true {
		t.Error("inverted interval not empty")
	}
	full := FullInterval()
	if !full.Unbounded() || !full.Contains(1e300) {
		t.Error("FullInterval broken")
	}
	if s := (Interval{Lo: 1, Hi: 2, LoOpen: true}).String(); s != "(1, 2]" {
		t.Errorf("String = %q", s)
	}
}

// TestIntervalIntersectProperty: membership in the intersection equals
// conjunction of memberships (property-based, testing/quick).
func TestIntervalIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Interval {
		lo := rng.Float64()*20 - 10
		return Interval{
			Lo: lo, Hi: lo + rng.Float64()*10 - 2,
			LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0,
		}
	}
	f := func(seed int64) bool {
		rng.Seed(seed)
		a, b := gen(), gen()
		x := a.Intersect(b)
		for i := 0; i < 50; i++ {
			v := rng.Float64()*24 - 12
			if x.Contains(v) != (a.Contains(v) && b.Contains(v)) {
				t.Logf("a=%v b=%v x=%v v=%g", a, b, x, v)
				return false
			}
		}
		// Emptiness must agree with containment over a dense probe.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalIntersectEndpoints pins down open/closed endpoint merging.
func TestIntervalIntersectEndpoints(t *testing.T) {
	a := Interval{Lo: 0, Hi: 5}                             // [0,5]
	b := Interval{Lo: 0, Hi: 5, LoOpen: true, HiOpen: true} // (0,5)
	x := a.Intersect(b)
	if !x.LoOpen || !x.HiOpen {
		t.Errorf("intersection should keep the stricter (open) endpoints: %v", x)
	}
	y := a.Intersect(ClosedInterval(2, 7))
	if y.Lo != 2 || y.Hi != 5 || y.LoOpen || y.HiOpen {
		t.Errorf("[0,5] ∩ [2,7] = %v, want [2,5]", y)
	}
}

// TestStringFormatStable pins the strconv-based Tuple.String and
// Interval.String against the original fmt-based renderings byte for byte
// (interval strings feed the canonical query keys snapshots persist).
func TestStringFormatStable(t *testing.T) {
	ivs := []Interval{
		{Lo: 0, Hi: 1},
		{Lo: -1.5, Hi: 2.25, LoOpen: true},
		{Lo: math.Inf(-1), Hi: math.Inf(1), LoOpen: true, HiOpen: true},
		{Lo: 1e-9, Hi: 1e17, HiOpen: true},
		{Lo: math.Pi, Hi: 123456.789},
	}
	for _, iv := range ivs {
		lb, rb := "[", "]"
		if iv.LoOpen {
			lb = "("
		}
		if iv.HiOpen {
			rb = ")"
		}
		want := fmt.Sprintf("%s%g, %g%s", lb, iv.Lo, iv.Hi, rb)
		if got := iv.String(); got != want {
			t.Fatalf("Interval.String drifted: got %q want %q", got, want)
		}
	}

	tuples := []Tuple{
		{ID: 7, Ord: []float64{1, 2.5, 123456.789}},
		{ID: -3, Ord: []float64{math.Pi}, Cat: map[string]string{"b": "two", "a": "one"}},
		{ID: 0},
	}
	for _, tp := range tuples {
		var b strings.Builder
		fmt.Fprintf(&b, "t#%d[", tp.ID)
		for i, v := range tp.Ord {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", v)
		}
		if len(tp.Cat) > 0 {
			keys := make([]string, 0, len(tp.Cat))
			for k := range tp.Cat {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, tp.Cat[k])
			}
		}
		b.WriteByte(']')
		if got, want := tp.String(), b.String(); got != want {
			t.Fatalf("Tuple.String drifted: got %q want %q", got, want)
		}
	}
}
