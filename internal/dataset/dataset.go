// Package dataset provides seeded synthetic generators for the three
// real-world databases used in the paper's evaluation (§6.1):
//
//   - DOT: the US Department of Transportation flight on-time dataset
//     (457,013 flights, May 2015) with the paper's 8 ranking attributes and
//     their exact domain sizes.
//   - Blue Nile: the diamond catalog (117,641 stones) with Carat, Depth,
//     LengthWidthRatio, Price, Table ranking attributes.
//   - Yahoo! Autos: 13,169 used cars near New York with Price, Mileage,
//     Year.
//
// The generators reproduce the properties the experiments depend on —
// domain ranges, value skew, and inter-attribute correlations (e.g. price
// rises with carat; mileage falls with year) — so the paper's query-cost
// *shapes* transfer even though individual rows are synthetic. Substitution
// rationale is documented in DESIGN.md §2.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/hidden"
	"repro/internal/ranking"
	"repro/internal/types"
)

// Dataset bundles a schema, its tuples, and metadata used by experiments.
type Dataset struct {
	Name   string
	Schema *types.Schema
	Tuples []types.Tuple
	// DefaultSystemK is the system-k the corresponding real site used
	// (10 for the offline DOT interface, 30 for Blue Nile, 15 for
	// Yahoo! Autos).
	DefaultSystemK int
	// DefaultRanker is the site's default proprietary ranking.
	DefaultRanker hidden.SystemRanker
}

// DB builds a hidden database over the dataset with its default settings.
func (d *Dataset) DB() *hidden.DB {
	return hidden.MustDB(d.Schema, d.Tuples, hidden.Options{
		K:      d.DefaultSystemK,
		Ranker: d.DefaultRanker,
	})
}

// DBWith builds a hidden database with an explicit system-k and ranking.
func (d *Dataset) DBWith(k int, r hidden.SystemRanker) *hidden.DB {
	return hidden.MustDB(d.Schema, d.Tuples, hidden.Options{K: k, Ranker: r})
}

// Sample returns a simple random sample of size m as a new dataset (the
// paper's database-size experiments draw 10 such samples per size).
func (d *Dataset) Sample(rng *rand.Rand, m int) *Dataset {
	if m >= len(d.Tuples) {
		return d
	}
	perm := rng.Perm(len(d.Tuples))[:m]
	tuples := make([]types.Tuple, m)
	for i, j := range perm {
		tuples[i] = d.Tuples[j].Clone()
		tuples[i].ID = i
	}
	return &Dataset{
		Name:           d.Name,
		Schema:         d.Schema,
		Tuples:         tuples,
		DefaultSystemK: d.DefaultSystemK,
		DefaultRanker:  d.DefaultRanker,
	}
}

// DOT attribute indexes, in schema order.
const (
	DOTDepDelay = iota
	DOTTaxiOut
	DOTTaxiIn
	DOTArrDelayNew
	DOTCRSElapsedTime
	DOTActualElapsedTime
	DOTAirTime
	DOTDistance
)

// DOTSchema returns the flight schema: the paper's 8 ranking attributes
// (with their published domain sizes as value ranges) plus categorical
// carrier and origin columns for filtering.
func DOTSchema() *types.Schema {
	ord := func(name string, max float64) types.Attribute {
		return types.Attribute{Name: name, Kind: types.Ordinal,
			Domain: types.Domain{Min: 0, Max: max}}
	}
	carriers := []string{"AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "VX", "OO", "EV", "MQ", "US"}
	hubs := []string{"ATL", "ORD", "DFW", "DEN", "LAX", "SFO", "JFK", "SEA"}
	return types.MustSchema([]types.Attribute{
		ord("DepDelay", 1988),
		ord("TaxiOut", 180),
		ord("TaxiIn", 180),
		ord("ArrDelayNew", 1971),
		ord("CRSElapsedTime", 718),
		ord("ActualElapsedTime", 724),
		ord("AirTime", 676),
		ord("Distance", 5000),
		{Name: "Carrier", Kind: types.Categorical, Values: carriers},
		{Name: "Origin", Kind: types.Categorical, Values: hubs},
	})
}

// expTail draws a shifted-exponential value clamped to [0, max]: flight
// delays and taxi times are heavily right-skewed.
func expTail(rng *rand.Rand, mean, max float64) float64 {
	v := rng.ExpFloat64() * mean
	if v > max {
		v = max
	}
	return v
}

// DOT generates n synthetic flight records. Attribute correlations mirror
// the real data: air time scales with distance; elapsed times are air time
// plus taxi; arrival delay correlates with departure delay.
func DOT(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	schema := DOTSchema()
	carriers := schema.Attr(8).Values
	hubs := schema.Attr(9).Values
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		dist := 100 + 4900*math.Pow(rng.Float64(), 1.6) // short-haul heavy
		air := dist/8.2 + rng.NormFloat64()*12
		air = clamp(air, 20, 676)
		taxiOut := expTail(rng, 16, 180)
		taxiIn := expTail(rng, 7, 180)
		crs := clamp(air+taxiOut+taxiIn+rng.NormFloat64()*10, 30, 718)
		actual := clamp(air+taxiOut+taxiIn, 30, 724)
		depDelay := expTail(rng, 12, 1988)
		arrDelay := clamp(depDelay*0.8+expTail(rng, 6, 400)-5, 0, 1971)
		tuples[i] = types.Tuple{
			ID: i,
			Ord: []float64{
				jitter(rng, depDelay), jitter(rng, taxiOut), jitter(rng, taxiIn),
				jitter(rng, arrDelay), jitter(rng, crs), jitter(rng, actual),
				jitter(rng, air), jitter(rng, dist), 0, 0,
			},
			Cat: map[string]string{
				"Carrier": carriers[rng.Intn(len(carriers))],
				"Origin":  hubs[rng.Intn(len(hubs))],
			},
		}
	}
	return &Dataset{
		Name:           "dot",
		Schema:         schema,
		Tuples:         tuples,
		DefaultSystemK: 10,
		DefaultRanker:  DOTSystemRanker1(),
	}
}

// jitter rounds to whole minutes/miles: the real DOT columns are integers,
// which produces the massive value plateaus (thousands of zero-delay
// flights) that drive the paper's 1D cost separations. The §5 tie
// extensions handle them.
func jitter(_ *rand.Rand, v float64) float64 {
	return math.Max(0, math.Round(v))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DOTSystemRanker1 is SR1 = 0.3·AIR-TIME + TAXI-IN, the paper's default
// (positively correlated with typical user functions).
func DOTSystemRanker1() hidden.SystemRanker {
	return hidden.RankerAdapter{R: ranking.MustLinear(
		"SR1=0.3*AirTime+TaxiIn",
		[]int{DOTAirTime, DOTTaxiIn}, []float64{0.3, 1},
	)}
}

// DOTSystemRanker2 is SR2 = −0.1·DISTANCE − DEP-DELAY (anti-correlated).
func DOTSystemRanker2() hidden.SystemRanker {
	return hidden.RankerAdapter{R: ranking.MustLinear(
		"SR2=-0.1*Distance-DepDelay",
		[]int{DOTDistance, DOTDepDelay}, []float64{-0.1, -1},
	)}
}

// Blue Nile attribute indexes.
const (
	BNCarat = iota
	BNDepth
	BNLWRatio
	BNPrice
	BNTable
)

// BlueNileSchema returns the diamond schema with the paper's five ranking
// attributes and their published domains, plus categorical 4C-style filters.
func BlueNileSchema() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "Carat", Kind: types.Ordinal, Domain: types.Domain{Min: 0.23, Max: 22.74}},
		{Name: "Depth", Kind: types.Ordinal, Domain: types.Domain{Min: 0.45, Max: 0.86}},
		{Name: "LWRatio", Kind: types.Ordinal, Domain: types.Domain{Min: 0.49, Max: 0.89}},
		{Name: "Price", Kind: types.Ordinal, Domain: types.Domain{Min: 220, Max: 4506938}},
		{Name: "Table", Kind: types.Ordinal, Domain: types.Domain{Min: 0.75, Max: 2.75}},
		{Name: "Clarity", Kind: types.Categorical, Values: []string{"FL", "IF", "VVS1", "VVS2", "VS1", "VS2", "SI1", "SI2"}},
		{Name: "Color", Kind: types.Categorical, Values: []string{"D", "E", "F", "G", "H", "I", "J"}},
		{Name: "Cut", Kind: types.Categorical, Values: []string{"Ideal", "VeryGood", "Good", "Fair"}},
		{Name: "Shape", Kind: types.Categorical, Values: []string{"Round", "Princess", "Cushion", "Oval", "Emerald", "Pear"}},
	})
}

// BlueNile generates n synthetic diamonds. Price grows superlinearly with
// carat (the dominant correlation on the real site), with quality factors
// adding spread; most stones are small, giving a dense low-carat region.
func BlueNile(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	schema := BlueNileSchema()
	clarity := schema.Attr(5).Values
	color := schema.Attr(6).Values
	cut := schema.Attr(7).Values
	shape := schema.Attr(8).Values
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		carat := clamp(0.23+math.Exp(rng.NormFloat64()*0.8-0.3), 0.23, 22.74)
		ci := rng.Intn(len(clarity))
		quality := 1.6 - 0.12*float64(ci) + rng.Float64()*0.4
		price := clamp(220+2800*math.Pow(carat, 2.4)*quality, 220, 4506938)
		depth := clamp(0.58+rng.NormFloat64()*0.04, 0.45, 0.86)
		lw := clamp(0.62+rng.NormFloat64()*0.05, 0.49, 0.89)
		table := clamp(1.4+rng.NormFloat64()*0.25, 0.75, 2.75)
		tuples[i] = types.Tuple{
			ID:  i,
			Ord: []float64{carat, depth, lw, price, table, 0, 0, 0, 0},
			Cat: map[string]string{
				"Clarity": clarity[ci],
				"Color":   color[rng.Intn(len(color))],
				"Cut":     cut[rng.Intn(len(cut))],
				"Shape":   shape[rng.Intn(len(shape))],
			},
		}
	}
	return &Dataset{
		Name:           "bluenile",
		Schema:         schema,
		Tuples:         tuples,
		DefaultSystemK: 30,
		DefaultRanker:  BlueNileSystemRanker(),
	}
}

// BlueNileSystemRanker is the site's default ranking at experiment time:
// descending price-per-carat.
func BlueNileSystemRanker() hidden.SystemRanker {
	return hidden.FuncRanker{
		Label: "desc(price/carat)",
		F: func(t types.Tuple) float64 {
			return -(t.Ord[BNPrice] / math.Max(t.Ord[BNCarat], 1e-9))
		},
	}
}

// Yahoo! Autos attribute indexes.
const (
	YAPrice = iota
	YAMileage
	YAYear
)

// YahooAutosSchema returns the used-car schema with the paper's three
// ranking attributes and categorical filters.
func YahooAutosSchema() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "Price", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 50000}},
		{Name: "Mileage", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 300000}},
		{Name: "Year", Kind: types.Ordinal, Domain: types.Domain{Min: 1993, Max: 2016}},
		{Name: "BodyStyle", Kind: types.Categorical, Values: []string{"Sedan", "SUV", "Coupe", "Hatchback", "Truck", "Van"}},
		{Name: "DriveType", Kind: types.Categorical, Values: []string{"FWD", "RWD", "AWD"}},
		{Name: "Transmission", Kind: types.Categorical, Values: []string{"Automatic", "Manual"}},
		{Name: "Make", Kind: types.Categorical, Values: []string{"Toyota", "Honda", "Ford", "Chevrolet", "BMW", "Mercedes", "Nissan", "Hyundai"}},
	})
}

// YahooAutos generates n synthetic used-car listings: newer cars cost more
// and have fewer miles (the negative price↔mileage correlation §6.3.2 calls
// out as the reason TA struggles).
func YahooAutos(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	schema := YahooAutosSchema()
	body := schema.Attr(3).Values
	drive := schema.Attr(4).Values
	trans := schema.Attr(5).Values
	make_ := schema.Attr(6).Values
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		year := 1993 + rng.Float64()*23
		age := 2016 - year
		mileage := clamp(age*11500+rng.NormFloat64()*14000, 0, 300000)
		price := clamp(32000*math.Exp(-age/6.5)*(0.7+rng.Float64()*0.6), 0, 50000)
		// The default site ranking is "distance from a predefined
		// location" — not monotone in any ranked attribute. Encode a
		// synthetic location distance as an extra non-monotone score
		// input derived from the listing.
		tuples[i] = types.Tuple{
			ID:  i,
			Ord: []float64{price, mileage, year, 0, 0, 0, 0},
			Cat: map[string]string{
				"BodyStyle":    body[rng.Intn(len(body))],
				"DriveType":    drive[rng.Intn(len(drive))],
				"Transmission": trans[rng.Intn(len(trans))],
				"Make":         make_[rng.Intn(len(make_))],
			},
		}
	}
	return &Dataset{
		Name:           "yahooautos",
		Schema:         schema,
		Tuples:         tuples,
		DefaultSystemK: 15,
		DefaultRanker:  YahooAutosSystemRanker(),
	}
}

// YahooAutosSystemRanker is the site's default "distance from a predefined
// location" ranking: non-monotone in every ranked attribute, simulated by a
// deterministic pseudo-random distance per listing.
func YahooAutosSystemRanker() hidden.SystemRanker {
	return hidden.FuncRanker{
		Label: "distance-from-location",
		F: func(t types.Tuple) float64 {
			// A fixed hash of the listing ID: stable, uncorrelated
			// with every ranked attribute, exactly as unhelpful as
			// geographic distance.
			h := uint64(t.ID+1) * 0x9E3779B97F4A7C15
			return float64(h%30_000) / 1000.0
		},
	}
}
