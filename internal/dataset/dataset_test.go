package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
)

func TestDOTGenerator(t *testing.T) {
	ds := DOT(1, 5000)
	if len(ds.Tuples) != 5000 || ds.DefaultSystemK != 10 {
		t.Fatalf("n=%d k=%d", len(ds.Tuples), ds.DefaultSystemK)
	}
	schema := ds.Schema
	for _, tp := range ds.Tuples {
		for _, i := range schema.OrdinalIndexes() {
			d := schema.Domain(i)
			if !d.Contains(tp.Ord[i]) {
				t.Fatalf("tuple %d attr %s=%g outside %v", tp.ID, schema.Attr(i).Name, tp.Ord[i], d)
			}
			if tp.Ord[i] != math.Round(tp.Ord[i]) {
				t.Fatalf("DOT values must be integral, got %g", tp.Ord[i])
			}
		}
		if tp.Cat["Carrier"] == "" || tp.Cat["Origin"] == "" {
			t.Fatal("missing categorical values")
		}
	}
	// Determinism.
	ds2 := DOT(1, 5000)
	for i := range ds.Tuples {
		if ds.Tuples[i].Ord[DOTDistance] != ds2.Tuples[i].Ord[DOTDistance] {
			t.Fatal("generator not deterministic")
		}
	}
	// Correlation: air time must rise with distance.
	if corr(ds, DOTDistance, DOTAirTime) < 0.9 {
		t.Errorf("distance↔airtime correlation = %.2f, want strong positive", corr(ds, DOTDistance, DOTAirTime))
	}
	// Skew: delays cluster near zero (median far below mean).
	med, mean := medianMean(ds, DOTDepDelay)
	if med >= mean {
		t.Errorf("dep-delay not right-skewed: median %.1f ≥ mean %.1f", med, mean)
	}
}

func TestBlueNileGenerator(t *testing.T) {
	ds := BlueNile(2, 4000)
	if ds.DefaultSystemK != 30 {
		t.Fatal("k wrong")
	}
	for _, tp := range ds.Tuples {
		for _, i := range ds.Schema.OrdinalIndexes() {
			if !ds.Schema.Domain(i).Contains(tp.Ord[i]) {
				t.Fatalf("attr %s out of domain: %g", ds.Schema.Attr(i).Name, tp.Ord[i])
			}
		}
	}
	if corr(ds, BNCarat, BNPrice) < 0.5 {
		t.Errorf("carat↔price correlation = %.2f, want positive", corr(ds, BNCarat, BNPrice))
	}
	// The default ranking is descending price-per-carat.
	r := ds.DefaultRanker
	a, b := ds.Tuples[0], ds.Tuples[1]
	ra := a.Ord[BNPrice] / a.Ord[BNCarat]
	rb := b.Ord[BNPrice] / b.Ord[BNCarat]
	if (r.SystemScore(a) < r.SystemScore(b)) != (ra > rb) {
		t.Error("default BN ranking is not descending price-per-carat")
	}
}

func TestYahooAutosGenerator(t *testing.T) {
	ds := YahooAutos(3, 4000)
	if ds.DefaultSystemK != 15 {
		t.Fatal("k wrong")
	}
	if corr(ds, YAYear, YAMileage) > -0.5 {
		t.Errorf("year↔mileage correlation = %.2f, want strong negative", corr(ds, YAYear, YAMileage))
	}
	if corr(ds, YAYear, YAPrice) < 0.5 {
		t.Errorf("year↔price correlation = %.2f, want positive", corr(ds, YAYear, YAPrice))
	}
	// Default ranking must be deterministic and uncorrelated-ish with
	// every ranked attribute (it simulates geographic distance).
	r := ds.DefaultRanker
	if r.SystemScore(ds.Tuples[0]) != r.SystemScore(ds.Tuples[0]) {
		t.Error("system ranking not deterministic")
	}
}

func TestSample(t *testing.T) {
	ds := DOT(4, 2000)
	s := ds.Sample(rand.New(rand.NewSource(1)), 500)
	if len(s.Tuples) != 500 {
		t.Fatalf("sample size %d", len(s.Tuples))
	}
	ids := map[int]bool{}
	for _, tp := range s.Tuples {
		if ids[tp.ID] {
			t.Fatal("duplicate ID in sample")
		}
		ids[tp.ID] = true
	}
	// Sampling more than available returns the dataset itself.
	if s2 := ds.Sample(rand.New(rand.NewSource(1)), 9999); len(s2.Tuples) != 2000 {
		t.Fatal("oversample broken")
	}
}

func TestDBConstruction(t *testing.T) {
	ds := YahooAutos(5, 300)
	db := ds.DB()
	if db.K() != 15 || db.Size() != 300 {
		t.Fatal("DB() defaults wrong")
	}
	db2 := ds.DBWith(3, nil)
	if db2.K() != 3 {
		t.Fatal("DBWith k wrong")
	}
	res, err := db.TopK(query.New())
	if err != nil || len(res.Tuples) != 15 || !res.Overflow {
		t.Fatalf("TopK: %v %d %v", err, len(res.Tuples), res.Overflow)
	}
}

// corr computes the Pearson correlation between two ordinal attributes.
func corr(ds *Dataset, i, j int) float64 {
	n := float64(len(ds.Tuples))
	var sx, sy, sxx, syy, sxy float64
	for _, tp := range ds.Tuples {
		x, y := tp.Ord[i], tp.Ord[j]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	num := sxy - sx*sy/n
	den := math.Sqrt((sxx - sx*sx/n) * (syy - sy*sy/n))
	if den == 0 {
		return 0
	}
	return num / den
}

func medianMean(ds *Dataset, attr int) (median, mean float64) {
	vals := make([]float64, len(ds.Tuples))
	var sum float64
	for i, tp := range ds.Tuples {
		vals[i] = tp.Ord[attr]
		sum += tp.Ord[attr]
	}
	mean = sum / float64(len(vals))
	// Selection via sort (n is small in tests).
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			if vals[j] < vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
		if i > len(vals)/2 {
			break
		}
	}
	return vals[len(vals)/2], mean
}
