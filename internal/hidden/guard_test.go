package hidden

import (
	"errors"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// funcDB is a Database whose TopK is an arbitrary function — the failure
// injector the guard tests script against.
type funcDB struct {
	schema *types.Schema
	k      int
	calls  atomic.Int64
	fn     func(call int64, q query.Query) (Result, error)
}

func (d *funcDB) TopK(q query.Query) (Result, error) {
	return d.fn(d.calls.Add(1), q)
}

func (d *funcDB) K() int                { return d.k }
func (d *funcDB) Schema() *types.Schema { return d.schema }

// noSleep and a settable fake clock keep the guard tests instant: backoff
// delays are recorded, never slept.
func guardTestOpts(o GuardOptions, now *time.Time, slept *[]time.Duration) GuardOptions {
	o.now = func() time.Time { return *now }
	o.sleep = func(d time.Duration) {
		if slept != nil {
			*slept = append(*slept, d)
		}
	}
	return o
}

func okResult() Result {
	return Result{Tuples: []types.Tuple{{ID: 7, Ord: []float64{1, 2, 0}}}}
}

func TestGuardRetriesTransient(t *testing.T) {
	inner := &funcDB{schema: schema1(), k: 5}
	inner.fn = func(call int64, _ query.Query) (Result, error) {
		if call <= 2 {
			return Result{}, ErrTransient
		}
		return okResult(), nil
	}
	now := time.Unix(1000, 0)
	var slept []time.Duration
	g := NewGuard(inner, guardTestOpts(GuardOptions{}, &now, &slept))

	res, err := g.TopK(query.New())
	if err != nil {
		t.Fatalf("retried probe should succeed: %v", err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].ID != 7 {
		t.Fatalf("wrong result: %+v", res)
	}
	h := g.Health()
	if h.State != HealthHealthy || h.ConsecFails != 0 {
		t.Fatalf("state after recovery = %v/%d, want healthy/0", h.State, h.ConsecFails)
	}
	if h.Probes != 1 || h.Retries != 2 || h.Failures != 0 {
		t.Fatalf("counters probes=%d retries=%d failures=%d, want 1/2/0", h.Probes, h.Retries, h.Failures)
	}
	if inner.calls.Load() != 3 {
		t.Fatalf("physical calls = %d, want 3", inner.calls.Load())
	}
	// Exponential backoff: first retry waits base, second doubles it.
	if len(slept) != 2 || slept[0] != 100*time.Millisecond || slept[1] != 200*time.Millisecond {
		t.Fatalf("backoff schedule = %v, want [100ms 200ms]", slept)
	}
}

func TestGuardDegradedThenDown(t *testing.T) {
	inner := &funcDB{schema: schema1(), k: 5}
	inner.fn = func(int64, query.Query) (Result, error) {
		return Result{}, ErrTransient
	}
	now := time.Unix(1000, 0)
	g := NewGuard(inner, guardTestOpts(GuardOptions{Retries: -1, DownAfter: 3}, &now, nil))

	// Failures 1 and 2 leave the guard degraded but still trying.
	for i := 0; i < 2; i++ {
		if _, err := g.TopK(query.New()); !errors.Is(err, ErrUpstreamDegraded) {
			t.Fatalf("failure %d: got %v, want ErrUpstreamDegraded", i+1, err)
		}
	}
	if h := g.Health(); h.State != HealthDegraded || h.ConsecFails != 2 {
		t.Fatalf("after 2 failures: %v/%d, want degraded/2", h.State, h.ConsecFails)
	}
	// Failure 3 trips the breaker.
	if _, err := g.TopK(query.New()); !errors.Is(err, ErrUpstreamDown) {
		t.Fatalf("failure 3: got %v, want ErrUpstreamDown", err)
	}
	h := g.Health()
	if h.State != HealthDown || h.BackoffUntil.IsZero() {
		t.Fatalf("after 3 failures: %v backoffUntil=%v, want down with window", h.State, h.BackoffUntil)
	}
	physical := inner.calls.Load()
	if physical != 3 {
		t.Fatalf("physical calls = %d, want 3 (Retries<0 disables retrying)", physical)
	}

	// Inside the backoff window: fast-fail without touching the upstream.
	if _, err := g.TopK(query.New()); !errors.Is(err, ErrUpstreamDown) {
		t.Fatalf("while down: got %v, want ErrUpstreamDown", err)
	}
	if inner.calls.Load() != physical {
		t.Fatal("fast-fail must not touch the upstream")
	}
	h = g.Health()
	if h.FastFails != 1 || h.Probes != 3 {
		t.Fatalf("fastFails=%d probes=%d, want 1/3 (fast-fails are not probes)", h.FastFails, h.Probes)
	}
}

func TestGuardHalfOpenRecovery(t *testing.T) {
	healthy := false
	inner := &funcDB{schema: schema1(), k: 5}
	inner.fn = func(int64, query.Query) (Result, error) {
		if !healthy {
			return Result{}, ErrTransient
		}
		return okResult(), nil
	}
	now := time.Unix(1000, 0)
	g := NewGuard(inner, guardTestOpts(GuardOptions{Retries: -1, DownAfter: 2}, &now, nil))

	g.TopK(query.New())
	g.TopK(query.New()) // trips to down
	if h := g.Health(); h.State != HealthDown {
		t.Fatalf("setup: state = %v, want down", h.State)
	}

	// Advance the clock past the backoff window; the upstream has recovered.
	healthy = true
	now = g.Health().BackoffUntil.Add(time.Millisecond)
	res, err := g.TopK(query.New())
	if err != nil {
		t.Fatalf("half-open trial should succeed: %v", err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("wrong trial result: %+v", res)
	}
	h := g.Health()
	if h.State != HealthHealthy || h.ConsecFails != 0 || !h.BackoffUntil.IsZero() {
		t.Fatalf("after recovery: %+v, want healthy/0/zero-backoff", h)
	}
}

func TestGuardDownBackoffEscalates(t *testing.T) {
	inner := &funcDB{schema: schema1(), k: 5}
	inner.fn = func(int64, query.Query) (Result, error) {
		return Result{}, ErrTransient
	}
	now := time.Unix(1000, 0)
	g := NewGuard(inner, guardTestOpts(GuardOptions{Retries: -1, DownAfter: 1, BackoffBase: time.Second, BackoffMax: 4 * time.Second}, &now, nil))

	var windows []time.Duration
	for i := 0; i < 5; i++ {
		g.TopK(query.New()) // half-open trial, fails again
		until := g.Health().BackoffUntil
		windows = append(windows, until.Sub(now))
		now = until.Add(time.Millisecond)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second, 4 * time.Second}
	for i := range want {
		if windows[i] != want[i] {
			t.Fatalf("backoff windows = %v, want %v", windows, want)
		}
	}
}

func TestGuardHedging(t *testing.T) {
	inner := &funcDB{schema: schema1(), k: 5}
	release := make(chan struct{})
	inner.fn = func(call int64, _ query.Query) (Result, error) {
		if call == 1 {
			<-release // primary stalls until the test lets it go
		}
		return okResult(), nil
	}
	now := time.Unix(1000, 0)
	g := NewGuard(inner, guardTestOpts(GuardOptions{HedgeAfter: time.Millisecond}, &now, nil))

	res, err := g.TopK(query.New())
	close(release)
	if err != nil {
		t.Fatalf("hedged probe failed: %v", err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].ID != 7 {
		t.Fatalf("wrong hedged result: %+v", res)
	}
	h := g.Health()
	if h.Hedges != 1 || h.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", h.Hedges, h.HedgeWins)
	}
	// The upstream saw two physical queries; the caller is charged ONE
	// logical probe. This is the never-double-charge invariant.
	if h.Probes != 1 {
		t.Fatalf("logical probes = %d, want 1 despite hedge", h.Probes)
	}
	if inner.calls.Load() != 2 {
		t.Fatalf("physical calls = %d, want 2 (primary + hedge)", inner.calls.Load())
	}
}

func TestGuardRateLimitPassThrough(t *testing.T) {
	inner := &funcDB{schema: schema1(), k: 5}
	inner.fn = func(int64, query.Query) (Result, error) {
		return Result{}, ErrRateLimited
	}
	now := time.Unix(1000, 0)
	g := NewGuard(inner, guardTestOpts(GuardOptions{}, &now, nil))

	if _, err := g.TopK(query.New()); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("got %v, want ErrRateLimited passed through", err)
	}
	h := g.Health()
	// A rate limit is an answer, not a failure: no retries burned, no health
	// verdict either way.
	if h.State != HealthHealthy || h.Failures != 0 || h.Retries != 0 {
		t.Fatalf("rate limit must not move health: %+v", h)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("physical calls = %d, want 1 (no retry on rate limit)", inner.calls.Load())
	}
}

// TestGuardFlakyExactCharging drives a 20%-failure upstream through the
// guard and checks the paper's cost model end to end: every logical probe
// succeeds, answers are identical to the healthy database's, the guard
// charges exactly one logical probe per call, and tail latency stays within
// the acceptance envelope (p99 under 3x healthy p99 plus scheduling slack).
func TestGuardFlakyExactCharging(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tuples := mkTuples(300, rng)
	sys := RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Asc)}
	db := MustDB(schema1(), tuples, Options{K: 10, Ranker: sys})
	flaky := &FlakyDB{DB: db, FailEvery: 5} // 20% injected failures
	now := time.Unix(1000, 0)
	g := NewGuard(flaky, guardTestOpts(GuardOptions{}, &now, nil))

	const probes = 200
	queries := make([]query.Query, probes)
	for i := range queries {
		lo := rng.Float64() * 80
		queries[i] = query.New().WithRange(rng.Intn(2), types.ClosedInterval(lo, lo+20))
	}

	healthyLat := make([]time.Duration, probes)
	for i, q := range queries {
		start := time.Now()
		if _, err := db.TopK(q); err != nil {
			t.Fatalf("healthy probe %d: %v", i, err)
		}
		healthyLat[i] = time.Since(start)
	}
	db.ResetCounter()

	flakyLat := make([]time.Duration, probes)
	for i, q := range queries {
		start := time.Now()
		got, err := g.TopK(q)
		flakyLat[i] = time.Since(start)
		if err != nil {
			t.Fatalf("guarded flaky probe %d: %v", i, err)
		}
		want, err := db.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow {
			t.Fatalf("probe %d: wrong shape %d/%v vs %d/%v", i, len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
		}
		for j := range got.Tuples {
			if got.Tuples[j].ID != want.Tuples[j].ID {
				t.Fatalf("probe %d tuple %d: id %d != %d — guarded answer diverged", i, j, got.Tuples[j].ID, want.Tuples[j].ID)
			}
		}
	}

	h := g.Health()
	if h.Probes != probes {
		t.Fatalf("logical probes = %d, want exactly %d", h.Probes, probes)
	}
	if h.Failures != 0 || h.FastFails != 0 {
		t.Fatalf("failures=%d fastFails=%d, want 0/0 at 20%% flake with retries", h.Failures, h.FastFails)
	}
	if h.Retries != flaky.Injected() {
		t.Fatalf("retries=%d != injected failures=%d — charging drifted", h.Retries, flaky.Injected())
	}
	if h.State != HealthHealthy {
		t.Fatalf("state = %v, want healthy", h.State)
	}

	p99 := func(d []time.Duration) time.Duration {
		s := append([]time.Duration(nil), d...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)*99/100]
	}
	hp, fp := p99(healthyLat), p99(flakyLat)
	// Backoff sleeps are no-ops here, so the flaky path costs only the
	// retried physical calls; 3x + 2ms absorbs scheduler noise.
	if limit := 3*hp + 2*time.Millisecond; fp > limit {
		t.Fatalf("flaky p99 %v exceeds %v (healthy p99 %v)", fp, limit, hp)
	}
}
