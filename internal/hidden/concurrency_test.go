package hidden

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/types"
)

// TestConcurrentTopK hammers one DB from many goroutines (the service layer
// relies on Database being safe for concurrent use) and verifies answers
// stay consistent. Run with -race.
func TestConcurrentTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	db := MustDB(schema1(), mkTuples(500, rng), Options{K: 7})
	// Reference answer computed single-threaded.
	q := query.New().WithRange(0, types.ClosedInterval(10, 60))
	ref, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := db.TopK(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Tuples) != len(ref.Tuples) || res.Overflow != ref.Overflow {
					t.Errorf("concurrent answer diverged: %d/%v vs %d/%v",
						len(res.Tuples), res.Overflow, len(ref.Tuples), ref.Overflow)
					return
				}
				for j := range res.Tuples {
					if res.Tuples[j].ID != ref.Tuples[j].ID {
						t.Errorf("tuple order diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.QueryCount(); got != 1+16*50 {
		t.Fatalf("QueryCount = %d, want %d", got, 1+16*50)
	}
}

// TestConcurrentBudget checks the rate limiter under contention: exactly
// budget queries succeed.
func TestConcurrentBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	db := MustDB(schema1(), mkTuples(100, rng), Options{K: 5, QueryBudget: 40})
	var okN, limN int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := db.TopK(query.New())
				mu.Lock()
				if err == nil {
					okN++
				} else {
					limN++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if okN != 40 || limN != 40 {
		t.Fatalf("ok=%d limited=%d, want 40/40", okN, limN)
	}
}
