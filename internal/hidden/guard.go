// Guard wraps a Database in the retry/hedge/backoff layer the living-
// upstreams design requires: real sources time out, flake, and fall over,
// and the paper's cost model (one counted query per *logical* probe) must
// survive all of it. A Guard turns transient upstream failures into
// latency — retries with per-upstream exponential backoff, an optional
// hedged second attempt for tail latency — and tracks a half-open health
// state machine (healthy → degraded → down) so a dead upstream fails fast
// instead of stalling every session on its timeout.
//
// The callers above the Guard (coalescer, crawler, sentinel) treat one
// Guard.TopK call as one logical probe and charge ledgers accordingly; how
// many physical attempts the Guard spent on it is an operational detail
// surfaced only through GuardHealth counters.

package hidden

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/types"
)

// Guard health errors, surfaced by the service tier as 502/503 responses.
var (
	// ErrUpstreamDegraded wraps the final failure of a logical probe that
	// exhausted its retries while the upstream is still being tried.
	ErrUpstreamDegraded = errors.New("hidden: upstream degraded")
	// ErrUpstreamDown is returned without touching the upstream while the
	// health state machine is open (down and inside its backoff window).
	ErrUpstreamDown = errors.New("hidden: upstream down")
)

// HealthState is the guard's view of the upstream.
type HealthState int32

// Health states, in escalation order.
const (
	HealthHealthy  HealthState = iota // last logical probe succeeded
	HealthDegraded                    // recent failures, still trying
	HealthDown                        // failing fast until the backoff expires
)

// String returns the wire form used by the upstream-health API.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthDown:
		return "down"
	}
	return fmt.Sprintf("health(%d)", int32(s))
}

// GuardOptions configure a Guard. The zero value is usable: 2 retries,
// no hedging, 100ms base backoff capped at 30s, down after 3 consecutive
// logical failures.
type GuardOptions struct {
	// Retries is the number of extra attempts after the first, per logical
	// probe (< 0 disables retrying; 0 means default 2).
	Retries int
	// HedgeAfter launches a second identical attempt when the first has
	// not answered within this duration, taking whichever answers first
	// (0 disables hedging). The upstream may see two physical queries;
	// the caller is still charged one.
	HedgeAfter time.Duration
	// BackoffBase is the delay before the first retry and the first down
	// backoff window; it doubles per consecutive failure (default 100ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 30s).
	BackoffMax time.Duration
	// DownAfter is the number of consecutive failed logical probes that
	// flips the state to down (default 3).
	DownAfter int

	now   func() time.Time      // test hook; defaults to time.Now
	sleep func(d time.Duration) // test hook; defaults to time.Sleep
}

func (o GuardOptions) withDefaults() GuardOptions {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 3
	}
	if o.now == nil {
		o.now = time.Now
	}
	if o.sleep == nil {
		o.sleep = time.Sleep
	}
	return o
}

// GuardHealth is a point-in-time snapshot of a Guard's state machine and
// lifetime counters.
type GuardHealth struct {
	State        HealthState
	ConsecFails  int       // consecutive failed logical probes
	BackoffUntil time.Time // zero unless down

	Probes    int64 // logical probes attempted (excluding fast-fails)
	Failures  int64 // logical probes that failed after all retries
	Retries   int64 // physical retry attempts
	Hedges    int64 // hedged second attempts launched
	HedgeWins int64 // hedges that answered before the primary
	FastFails int64 // probes refused while down, without touching the upstream
}

// Guard wraps db with retries, hedging, and the health state machine. Safe
// for concurrent use.
type Guard struct {
	db   Database
	opts GuardOptions

	mu           sync.Mutex
	state        HealthState
	consecFails  int
	backoffUntil time.Time
	trialing     bool // a half-open trial probe is in flight

	probes, failures, retries    atomic.Int64
	hedges, hedgeWins, fastFails atomic.Int64
}

// NewGuard wraps db. A nil-option call is valid; see GuardOptions.
func NewGuard(db Database, opts GuardOptions) *Guard {
	return &Guard{db: db, opts: opts.withDefaults()}
}

// Inner returns the wrapped database.
func (g *Guard) Inner() Database { return g.db }

// K implements Database.
func (g *Guard) K() int { return g.db.K() }

// Schema implements Database.
func (g *Guard) Schema() *types.Schema { return g.db.Schema() }

// Health returns a snapshot of the guard's state machine and counters.
func (g *Guard) Health() GuardHealth {
	g.mu.Lock()
	h := GuardHealth{State: g.state, ConsecFails: g.consecFails, BackoffUntil: g.backoffUntil}
	g.mu.Unlock()
	h.Probes = g.probes.Load()
	h.Failures = g.failures.Load()
	h.Retries = g.retries.Load()
	h.Hedges = g.hedges.Load()
	h.HedgeWins = g.hedgeWins.Load()
	h.FastFails = g.fastFails.Load()
	return h
}

// TopK implements Database: one logical probe, physically retried and
// hedged as configured. ErrRateLimited passes through untouched — it is a
// semantic answer from a healthy upstream, not a failure.
func (g *Guard) TopK(q query.Query) (Result, error) {
	if err := g.admit(); err != nil {
		return Result{}, err
	}
	g.probes.Add(1)
	var lastErr error
	for attempt := 0; attempt <= g.opts.Retries; attempt++ {
		if attempt > 0 {
			g.retries.Add(1)
			g.opts.sleep(g.backoff(attempt - 1))
		}
		res, err := g.attempt(q)
		if err == nil {
			g.onSuccess()
			return res, nil
		}
		if errors.Is(err, ErrRateLimited) {
			// A rate limit is the upstream answering, just with "no": end
			// any half-open trial without a health verdict either way.
			g.endTrial()
			return Result{}, err
		}
		lastErr = err
	}
	g.failures.Add(1)
	down, until := g.onFailure()
	if down {
		return Result{}, fmt.Errorf("%w until %s: %v", ErrUpstreamDown, until.Format(time.RFC3339), lastErr)
	}
	return Result{}, fmt.Errorf("%w: %v", ErrUpstreamDegraded, lastErr)
}

// attempt issues one (possibly hedged) physical pass for the probe.
func (g *Guard) attempt(q query.Query) (Result, error) {
	if g.opts.HedgeAfter <= 0 {
		return g.db.TopK(q)
	}
	type outcome struct {
		res   Result
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2)
	go func() {
		r, e := g.db.TopK(q)
		ch <- outcome{res: r, err: e}
	}()
	timer := time.NewTimer(g.opts.HedgeAfter)
	defer timer.Stop()
	var first outcome
	select {
	case first = <-ch:
		return first.res, first.err
	case <-timer.C:
		g.hedges.Add(1)
		go func() {
			r, e := g.db.TopK(q)
			ch <- outcome{res: r, err: e, hedge: true}
		}()
		first = <-ch
		if first.err == nil {
			if first.hedge {
				g.hedgeWins.Add(1)
			}
			return first.res, nil
		}
		// The faster leg failed; the slower one may still succeed.
		second := <-ch
		if second.err == nil && second.hedge {
			g.hedgeWins.Add(1)
		}
		return second.res, second.err
	}
}

// admit applies the half-open gate: while down and inside the backoff
// window (or while another trial probe is already in flight) the probe is
// refused without touching the upstream.
func (g *Guard) admit() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state != HealthDown {
		return nil
	}
	now := g.opts.now()
	if now.Before(g.backoffUntil) || g.trialing {
		until := g.backoffUntil
		g.fastFails.Add(1)
		return fmt.Errorf("%w until %s", ErrUpstreamDown, until.Format(time.RFC3339))
	}
	g.trialing = true // this caller carries the half-open trial
	return nil
}

// backoff returns the exponential delay for the nth consecutive failure
// (0-based), capped at BackoffMax.
func (g *Guard) backoff(n int) time.Duration {
	d := g.opts.BackoffBase
	for i := 0; i < n && d < g.opts.BackoffMax; i++ {
		d *= 2
	}
	return min(d, g.opts.BackoffMax)
}

func (g *Guard) onSuccess() {
	g.mu.Lock()
	g.state = HealthHealthy
	g.consecFails = 0
	g.backoffUntil = time.Time{}
	g.trialing = false
	g.mu.Unlock()
}

func (g *Guard) onFailure() (down bool, until time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.trialing = false
	g.consecFails++
	if g.consecFails < g.opts.DownAfter {
		g.state = HealthDegraded
		return false, time.Time{}
	}
	g.state = HealthDown
	g.backoffUntil = g.opts.now().Add(g.backoff(g.consecFails - g.opts.DownAfter))
	return true, g.backoffUntil
}

func (g *Guard) endTrial() {
	g.mu.Lock()
	g.trialing = false
	g.mu.Unlock()
}
