// Package hidden simulates a client-server ("hidden") database with a
// restricted top-k search interface, the substrate every experiment in the
// paper runs against (§2.1).
//
// The database accepts conjunctive queries (range predicates on ordinal
// attributes, equality predicates on categorical attributes), applies a
// proprietary system ranking function the client knows nothing about, and
// returns at most k tuples. A query overflows when more than k tuples match,
// is valid when 1..k match, and underflows when none match. The only cost
// the reranking literature charges is the number of such queries; Counter
// tracks it.
package hidden

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// Result is the answer to one top-k query.
type Result struct {
	// Tuples are the returned tuples, at most k, ordered by the system
	// ranking function (best first).
	Tuples []types.Tuple
	// Overflow reports that more tuples matched than were returned.
	Overflow bool
}

// Underflow reports that no tuple matched.
func (r Result) Underflow() bool { return len(r.Tuples) == 0 }

// Valid reports that all matching tuples were returned and at least one
// matched.
func (r Result) Valid() bool { return !r.Overflow && len(r.Tuples) > 0 }

// Database is the only capability the reranking service has: issue a
// conjunctive query, get back at most k system-ranked tuples. Implementations
// must be safe for concurrent use.
type Database interface {
	// TopK runs q and returns the top-k matching tuples under the
	// database's proprietary ranking.
	TopK(q query.Query) (Result, error)
	// K returns the interface's result limit ("system-k").
	K() int
	// Schema describes the attributes exposed by the search interface.
	Schema() *types.Schema
}

// Counter counts queries issued to a database. It is the paper's sole
// performance measure (§2.2).
type Counter struct {
	n atomic.Int64
}

// Add records one issued query.
func (c *Counter) Add() { c.n.Add(1) }

// Count returns the number of queries issued so far.
func (c *Counter) Count() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// ErrRateLimited is returned by DB.TopK once the configured query budget is
// exhausted, modelling the per-day API limits real web databases enforce
// (e.g. 50 free queries/day on Google Flight Search, §1).
var ErrRateLimited = errors.New("hidden: query rate limit exhausted")

// Options configure an in-memory hidden database.
type Options struct {
	// K is the system-k (max tuples returned per query). Required, ≥ 1.
	K int
	// Ranker is the proprietary system ranking function. It may be nil,
	// in which case insertion (ID) order is used — an "arbitrary" unknown
	// ranking. It does NOT have to be monotone (Yahoo! Autos' default
	// "distance from a location" ranking is not).
	Ranker SystemRanker
	// QueryBudget, when > 0, limits the total number of queries the
	// database will answer before returning ErrRateLimited.
	QueryBudget int64
}

// SystemRanker orders tuples for the database. Lower scores are returned
// first. It receives the full tuple, so non-monotone or categorical-aware
// rankings are expressible.
type SystemRanker interface {
	SystemScore(t types.Tuple) float64
	Name() string
}

// RankerAdapter lifts a user-style monotone ranking.Ranker into a
// SystemRanker.
type RankerAdapter struct{ R ranking.Ranker }

// SystemScore implements SystemRanker.
func (ra RankerAdapter) SystemScore(t types.Tuple) float64 {
	return ranking.ScoreTuple(ra.R, t)
}

// Name implements SystemRanker.
func (ra RankerAdapter) Name() string { return ra.R.Name() }

// FuncRanker adapts an arbitrary score function into a SystemRanker.
type FuncRanker struct {
	F     func(t types.Tuple) float64
	Label string
}

// SystemScore implements SystemRanker.
func (fr FuncRanker) SystemScore(t types.Tuple) float64 { return fr.F(t) }

// Name implements SystemRanker.
func (fr FuncRanker) Name() string { return fr.Label }

// DB is an in-memory hidden database. It pre-sorts its tuples by the system
// ranking so each query is a single early-exiting scan in rank order.
type DB struct {
	schema *types.Schema
	k      int
	ranker SystemRanker

	// dmu guards byRank against drift injection (Mutate/SetOrd). Queries
	// take the read side; the scan itself stays lock-free over the
	// immutable snapshot. Mutations swap in a freshly sorted copy — they
	// never write a tuple in place, because answered tuples share their
	// Ord slices with whatever the caller stored.
	dmu sync.RWMutex
	// byRank holds all tuples sorted by system rank (best first).
	byRank []types.Tuple

	// views caches ORDER BY permutations per (attr, dir) so repeated
	// NewOrderByView calls (benchmark setup, per-request view construction)
	// sort each ordering once. Shared by WithK views: byRank is immutable
	// between mutations, so the cached permutations stay valid for every k;
	// a mutation purges the cache.
	views *viewCache

	counter Counter
	budget  int64 // 0 = unlimited
	mu      sync.Mutex
	spent   int64
}

// viewCache holds lazily built ORDER BY permutations of an immutable tuple
// set. Safe for concurrent use.
type viewCache struct {
	mu sync.Mutex
	m  map[viewKey][]types.Tuple
}

type viewKey struct {
	attr int
	dir  ranking.Direction
}

// rankFor returns the tuples sorted by (attr·dir, ID), building and caching
// the permutation on first use.
func (vc *viewCache) rankFor(byRank []types.Tuple, attr int, dir ranking.Direction) []types.Tuple {
	key := viewKey{attr: attr, dir: dir}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if lst, ok := vc.m[key]; ok {
		return lst
	}
	lst := append([]types.Tuple(nil), byRank...)
	sort.SliceStable(lst, func(a, b int) bool {
		va, vb := lst[a].Ord[attr]*float64(dir), lst[b].Ord[attr]*float64(dir)
		if va != vb {
			return va < vb
		}
		return lst[a].ID < lst[b].ID
	})
	if vc.m == nil {
		vc.m = make(map[viewKey][]types.Tuple)
	}
	vc.m[key] = lst
	return lst
}

// purge drops every cached permutation (the underlying corpus mutated).
func (vc *viewCache) purge() {
	if vc == nil {
		return
	}
	vc.mu.Lock()
	vc.m = nil
	vc.mu.Unlock()
}

// NewDB builds a hidden database over the given tuples. The tuple slice is
// copied; ordinal value count must match the schema.
func NewDB(schema *types.Schema, tuples []types.Tuple, opts Options) (*DB, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("hidden: system-k must be ≥ 1, got %d", opts.K)
	}
	db := &DB{
		schema: schema,
		k:      opts.K,
		ranker: opts.Ranker,
		byRank: append([]types.Tuple(nil), tuples...),
		views:  &viewCache{},
		budget: opts.QueryBudget,
	}
	for _, t := range db.byRank {
		if len(t.Ord) != schema.Len() {
			return nil, fmt.Errorf("hidden: tuple %d has %d ordinal slots, schema has %d attributes", t.ID, len(t.Ord), schema.Len())
		}
	}
	db.byRank = rankSort(db.byRank, db.ranker)
	return db, nil
}

// rankSort returns ts sorted by (system score, ID), or unchanged when the
// ranking is insertion order (nil ranker).
func rankSort(ts []types.Tuple, ranker SystemRanker) []types.Tuple {
	if ranker == nil {
		return ts
	}
	scores := make([]float64, len(ts))
	for i, t := range ts {
		scores[i] = ranker.SystemScore(t)
	}
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] < scores[idx[b]]
		}
		return ts[idx[a]].ID < ts[idx[b]].ID
	})
	sorted := make([]types.Tuple, len(ts))
	for i, j := range idx {
		sorted[i] = ts[j]
	}
	return sorted
}

// MustDB is NewDB that panics on error; for tests.
func MustDB(schema *types.Schema, tuples []types.Tuple, opts Options) *DB {
	db, err := NewDB(schema, tuples, opts)
	if err != nil {
		panic(err)
	}
	return db
}

// TopK implements Database. The scan walks tuples in system-rank order and
// stops as soon as k matches plus one overflow witness are found.
func (db *DB) TopK(q query.Query) (Result, error) {
	if db.budget > 0 {
		db.mu.Lock()
		if db.spent >= db.budget {
			db.mu.Unlock()
			return Result{}, ErrRateLimited
		}
		db.spent++
		db.mu.Unlock()
	}
	db.counter.Add()
	db.dmu.RLock()
	byRank := db.byRank
	db.dmu.RUnlock()
	var res Result
	for i := range byRank {
		if !q.Matches(byRank[i]) {
			continue
		}
		if len(res.Tuples) == db.k {
			res.Overflow = true
			break
		}
		res.Tuples = append(res.Tuples, byRank[i])
	}
	return res, nil
}

// K implements Database.
func (db *DB) K() int { return db.k }

// Schema implements Database.
func (db *DB) Schema() *types.Schema { return db.schema }

// Size returns the number of tuples stored (not exposed to rerankers; used
// by experiments and tests).
func (db *DB) Size() int {
	db.dmu.RLock()
	defer db.dmu.RUnlock()
	return len(db.byRank)
}

// SetOrd injects drift: it changes tuple id's ordinal attribute attr to v,
// as if the upstream operator edited a listing in place. The rank order is
// re-sorted and cached ORDER BY views are purged, so subsequent queries see
// the post-mutation corpus; previously answered tuples are untouched (the
// mutated tuple is cloned, never written through shared Ord slices).
// Reports whether a tuple with that ID existed. Safe to call concurrently
// with TopK; OrderByViews constructed before the mutation keep answering
// from the pre-mutation corpus and should be rebuilt.
func (db *DB) SetOrd(id, attr int, v float64) bool {
	db.dmu.Lock()
	defer db.dmu.Unlock()
	for i := range db.byRank {
		if db.byRank[i].ID != id {
			continue
		}
		nt := db.byRank[i].Clone()
		nt.Ord[attr] = v
		next := append([]types.Tuple(nil), db.byRank...)
		next[i] = nt
		db.byRank = rankSort(next, db.ranker)
		db.views.purge()
		return true
	}
	return false
}

// QueryCount returns the number of top-k queries answered so far.
func (db *DB) QueryCount() int64 { return db.counter.Count() }

// ResetCounter zeroes the query counter (and the rate-limit budget spend).
func (db *DB) ResetCounter() {
	db.counter.Reset()
	db.mu.Lock()
	db.spent = 0
	db.mu.Unlock()
}

// All returns a copy of every tuple in system-rank order. It exists for
// test oracles and dataset plumbing only — reranking algorithms must not
// call it.
func (db *DB) All() []types.Tuple {
	db.dmu.RLock()
	defer db.dmu.RUnlock()
	out := make([]types.Tuple, len(db.byRank))
	for i, t := range db.byRank {
		out[i] = t.Clone()
	}
	return out
}

// RankerName returns the system ranking function's name, or "insertion".
func (db *DB) RankerName() string {
	if db.ranker == nil {
		return "insertion"
	}
	return db.ranker.Name()
}

// WithK returns a view of the same data with a different system-k, sharing
// tuples (and the ORDER BY view cache) but with an independent counter. Used
// by the system-k experiments.
func (db *DB) WithK(k int) *DB {
	db.dmu.RLock()
	defer db.dmu.RUnlock()
	return &DB{schema: db.schema, k: k, ranker: db.ranker, byRank: db.byRank, views: db.views}
}

// OrderByView wraps a DB to simulate databases that additionally expose
// ORDER BY on a single attribute (§5 "Multiple/Known System Ranking
// Functions": Blue Nile and Yahoo! Autos both rank by individual attributes
// on demand). Queries issued through an OrderByView are still counted by the
// underlying DB's counter.
type OrderByView struct {
	db   *DB
	attr int
	dir  ranking.Direction
	rank []types.Tuple
}

// NewOrderByView builds a view ordered by the given ordinal attribute. The
// sorted permutation is cached on the DB per (attr, dir): constructing the
// same view repeatedly (per request, or in benchmark setup) sorts once. The
// cached slice is shared and must be treated as immutable, which TopK's
// read-only scan already guarantees.
func NewOrderByView(db *DB, attr int, dir ranking.Direction) *OrderByView {
	v := &OrderByView{db: db, attr: attr, dir: dir}
	db.dmu.RLock()
	byRank := db.byRank
	db.dmu.RUnlock()
	if db.views != nil {
		v.rank = db.views.rankFor(byRank, attr, dir)
		return v
	}
	vc := viewCache{}
	v.rank = vc.rankFor(byRank, attr, dir)
	return v
}

// TopK implements Database with the view's ORDER BY ranking.
func (v *OrderByView) TopK(q query.Query) (Result, error) {
	v.db.counter.Add()
	var res Result
	for i := range v.rank {
		if !q.Matches(v.rank[i]) {
			continue
		}
		if len(res.Tuples) == v.db.k {
			res.Overflow = true
			break
		}
		res.Tuples = append(res.Tuples, v.rank[i])
	}
	return res, nil
}

// K implements Database.
func (v *OrderByView) K() int { return v.db.k }

// Schema implements Database.
func (v *OrderByView) Schema() *types.Schema { return v.db.schema }
