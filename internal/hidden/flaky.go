// Failure injection: real web databases time out, throttle, and return
// transient errors. FlakyDB wraps any Database and fails a deterministic
// subset of queries so tests can verify that the reranking algorithms
// surface upstream failures cleanly (no partial/corrupted answers) and that
// retried operations still produce exact results.

package hidden

import (
	"errors"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/types"
)

// ErrTransient is the error FlakyDB injects.
var ErrTransient = errors.New("hidden: transient upstream failure (injected)")

// FlakyDB wraps a Database and fails every FailEvery-th query.
type FlakyDB struct {
	DB Database
	// FailEvery fails queries number FailEvery, 2·FailEvery, ... (1-based
	// count). Zero disables injection.
	FailEvery int64

	calls    atomic.Int64
	injected atomic.Int64
}

// TopK implements Database with injected failures.
func (f *FlakyDB) TopK(q query.Query) (Result, error) {
	n := f.calls.Add(1)
	if f.FailEvery > 0 && n%f.FailEvery == 0 {
		f.injected.Add(1)
		return Result{}, ErrTransient
	}
	return f.DB.TopK(q)
}

// K implements Database.
func (f *FlakyDB) K() int { return f.DB.K() }

// Schema implements Database.
func (f *FlakyDB) Schema() *types.Schema { return f.DB.Schema() }

// Injected returns how many failures have been injected so far.
func (f *FlakyDB) Injected() int64 { return f.injected.Load() }

// Calls returns the total number of queries attempted through the wrapper.
func (f *FlakyDB) Calls() int64 { return f.calls.Load() }
