// Theorem-1 adversary (§3.1.2).
//
// The paper proves an n/k lower bound on worst-case query cost by describing
// an adaptive query-answering mechanism Q that stays consistent with *some*
// database of at most n tuples while forcing any reranking algorithm to
// issue at least n/k queries before the minimum tuple is pinned down.
// Adversary implements Q literally so tests can demonstrate the bound.

package hidden

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/query"
	"repro/internal/types"
)

// Adversary is an adaptive single-attribute hidden database implementing the
// query-processing mechanism from the proof of Theorem 1. The attribute
// domain is (v0, vInf). It materializes tuples lazily: whenever a query with
// lower bound v0 arrives it invents k fresh tuples inside ((v0+vq)/2, vq)
// and halves its private threshold vq, so no algorithm can certify the
// minimum until it has forced ~n/k rounds.
type Adversary struct {
	mu      sync.Mutex
	schema  *types.Schema
	k       int
	v0, vq  float64
	vInf    float64
	nextID  int
	maxN    int
	tuples  []types.Tuple // all tuples materialized so far
	counter Counter
}

// NewAdversary builds the adversary over domain (v0, vInf) with capacity n.
func NewAdversary(v0, vInf float64, n, k int) *Adversary {
	schema := types.MustSchema([]types.Attribute{{
		Name: "A", Kind: types.Ordinal,
		Domain: types.Domain{Min: v0, Max: vInf},
	}})
	return &Adversary{schema: schema, k: k, v0: v0, vq: vInf, vInf: vInf, maxN: n}
}

// TopK implements Database using the proof's mechanism.
func (a *Adversary) TopK(q query.Query) (Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counter.Add()
	iv, ok := q.Ranges[0]
	if !ok {
		iv = types.OpenInterval(a.v0, a.vInf)
	}
	lo := math.Max(iv.Lo, a.v0)

	if lo > a.v0 || (lo == a.v0 && !iv.LoOpen && lo != a.v0) {
		// Lower bound above v0: return only already-materialized
		// tuples in range and remember the probe.
		if lo < a.vq {
			a.vq = lo
		}
		return a.answerFromHistory(iv), nil
	}
	// Query touches v0: answer with an overflowing page of k tuples,
	// inventing fresh ones inside ((v0+hi)/2, hi) as needed, where hi is
	// the private threshold clamped to the query's own upper bound so
	// every answer stays consistent.
	var res Result
	for _, t := range a.tuples {
		if iv.Contains(t.Ord[0]) && len(res.Tuples) < a.k {
			res.Tuples = append(res.Tuples, t)
		}
	}
	hi := math.Min(a.vq, iv.Hi)
	if hi > a.v0 {
		newLo := (a.v0 + hi) / 2
		for i := 0; len(res.Tuples) < a.k && len(a.tuples) < a.maxN && i < a.k; i++ {
			v := newLo + (hi-newLo)*float64(i+1)/float64(a.k+1)
			t := types.Tuple{ID: a.nextID, Ord: []float64{v}}
			a.nextID++
			a.tuples = append(a.tuples, t)
			res.Tuples = append(res.Tuples, t)
		}
		a.vq = newLo
	}
	res.Overflow = len(a.tuples) < a.maxN || len(res.Tuples) == a.k
	return res, nil
}

func (a *Adversary) answerFromHistory(iv types.Interval) Result {
	var res Result
	for _, t := range a.tuples {
		if !iv.Contains(t.Ord[0]) {
			continue
		}
		if len(res.Tuples) == a.k {
			res.Overflow = true
			break
		}
		res.Tuples = append(res.Tuples, t)
	}
	return res
}

// K implements Database.
func (a *Adversary) K() int { return a.k }

// Schema implements Database.
func (a *Adversary) Schema() *types.Schema { return a.schema }

// QueryCount returns the number of queries answered.
func (a *Adversary) QueryCount() int64 { return a.counter.Count() }

// Materialized returns how many tuples the adversary has committed to.
func (a *Adversary) Materialized() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.tuples)
}

// CanStillHide reports whether the adversary could still legally insert a
// tuple smaller than every value revealed so far — i.e. whether any
// algorithm that stopped now would be wrong.
func (a *Adversary) CanStillHide() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.tuples) < a.maxN && a.vq > a.v0
}

// String describes the adversary state.
func (a *Adversary) String() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return fmt.Sprintf("adversary{n=%d/%d vq=%g queries=%d}", len(a.tuples), a.maxN, a.vq, a.counter.Count())
}
