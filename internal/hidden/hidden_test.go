package hidden

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

func schema1() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "a", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "b", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "c", Kind: types.Categorical, Values: []string{"x", "y"}},
	})
}

func mkTuples(n int, rng *rand.Rand) []types.Tuple {
	out := make([]types.Tuple, n)
	for i := range out {
		out[i] = types.Tuple{
			ID:  i,
			Ord: []float64{rng.Float64() * 100, rng.Float64() * 100, 0},
			Cat: map[string]string{"c": []string{"x", "y"}[rng.Intn(2)]},
		}
	}
	return out
}

func TestTopKSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tuples := mkTuples(100, rng)
	sys := RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Asc)}
	db := MustDB(schema1(), tuples, Options{K: 5, Ranker: sys})

	// Match-all overflows and returns exactly k tuples in system order.
	res, err := db.TopK(query.New())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overflow || len(res.Tuples) != 5 {
		t.Fatalf("overflow=%v len=%d", res.Overflow, len(res.Tuples))
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i].Ord[0] < res.Tuples[i-1].Ord[0] {
			t.Fatal("not in system-rank order")
		}
	}
	// A range holding nothing underflows.
	res, err = db.TopK(query.New().WithRange(0, types.ClosedInterval(-5, -1)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Underflow() || res.Valid() {
		t.Fatal("expected underflow")
	}
	// A narrow range with few matches is valid and complete.
	narrow := query.New().WithRange(0, types.ClosedInterval(0, 3))
	res, err = db.TopK(narrow)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tp := range tuples {
		if narrow.Matches(tp) {
			count++
		}
	}
	if count <= 5 {
		if res.Overflow || len(res.Tuples) != count {
			t.Fatalf("valid query: got %d/%v, want %d", len(res.Tuples), res.Overflow, count)
		}
	}
	if got := db.QueryCount(); got != 3 {
		t.Fatalf("QueryCount = %d, want 3", got)
	}
	db.ResetCounter()
	if db.QueryCount() != 0 {
		t.Fatal("ResetCounter failed")
	}
}

func TestSystemRankingTieBreak(t *testing.T) {
	// Equal system scores must order deterministically by ID.
	tuples := []types.Tuple{
		{ID: 3, Ord: []float64{1, 0, 0}}, {ID: 1, Ord: []float64{1, 0, 0}},
		{ID: 2, Ord: []float64{1, 0, 0}},
	}
	db := MustDB(schema1(), tuples, Options{K: 2, Ranker: RankerAdapter{R: ranking.NewSingle("s", 0, ranking.Asc)}})
	res, _ := db.TopK(query.New())
	if res.Tuples[0].ID != 1 || res.Tuples[1].ID != 2 {
		t.Fatalf("tie-break order: %v", res.Tuples)
	}
}

func TestQueryBudget(t *testing.T) {
	db := MustDB(schema1(), mkTuples(20, rand.New(rand.NewSource(2))), Options{K: 5, QueryBudget: 2})
	for i := 0; i < 2; i++ {
		if _, err := db.TopK(query.New()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.TopK(query.New()); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	db.ResetCounter()
	if _, err := db.TopK(query.New()); err != nil {
		t.Fatalf("budget should reset: %v", err)
	}
}

func TestWithKAndViews(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := MustDB(schema1(), mkTuples(50, rng), Options{K: 5})
	db2 := db.WithK(1)
	if db2.K() != 1 || db2.Size() != 50 {
		t.Fatal("WithK broken")
	}
	res, _ := db2.TopK(query.New())
	if len(res.Tuples) != 1 || !res.Overflow {
		t.Fatal("k=1 view broken")
	}
	// ORDER BY view returns ascending attribute-1 order and counts
	// queries on the parent counter.
	db.ResetCounter()
	v := NewOrderByView(db, 1, ranking.Asc)
	res, err := v.TopK(query.New())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i].Ord[1] < res.Tuples[i-1].Ord[1] {
			t.Fatal("OrderByView not sorted")
		}
	}
	if db.QueryCount() != 1 {
		t.Fatal("view query not counted")
	}
	if v.K() != db.K() || v.Schema() != db.Schema() {
		t.Fatal("view metadata broken")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewDB(schema1(), nil, Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	bad := []types.Tuple{{ID: 0, Ord: []float64{1}}}
	if _, err := NewDB(schema1(), bad, Options{K: 1}); err == nil {
		t.Error("short tuple accepted")
	}
}

// TestTheorem1Adversary demonstrates the paper's lower bound: no strategy
// can certify the minimum tuple in fewer than n/k queries, because (a) each
// query reveals at most k tuples and (b) while fewer than n tuples are
// materialized the adversary can always insert a smaller one consistently
// with every answer given so far.
func TestTheorem1Adversary(t *testing.T) {
	n, k := 200, 5
	strategies := []struct {
		name string
		next func(rng *rand.Rand, round int, lastMin float64) types.Interval
	}{
		{"greedy-bottom", func(_ *rand.Rand, _ int, lastMin float64) types.Interval {
			return types.OpenInterval(0, lastMin)
		}},
		{"binary", func(_ *rand.Rand, _ int, lastMin float64) types.Interval {
			return types.OpenInterval(0, lastMin/2)
		}},
		{"random", func(rng *rand.Rand, _ int, _ float64) types.Interval {
			lo := rng.Float64() * 500
			return types.OpenInterval(lo, lo+rng.Float64()*500)
		}},
	}
	for _, s := range strategies {
		t.Run(s.name, func(t *testing.T) {
			adv := NewAdversary(0, 1000, n, k)
			rng := rand.New(rand.NewSource(7))
			lastMin := 1000.0
			rounds := n/k - 1
			for i := 0; i < rounds; i++ {
				res, err := adv.TopK(query.New().WithRange(0, s.next(rng, i, lastMin)))
				if err != nil {
					t.Fatal(err)
				}
				for _, tp := range res.Tuples {
					if tp.Ord[0] < lastMin {
						lastMin = tp.Ord[0]
					}
				}
				// (a) reveal rate: at most k new tuples per query.
				if got := adv.Materialized(); got > (i+1)*k {
					t.Fatalf("query %d materialized %d > %d tuples", i+1, got, (i+1)*k)
				}
			}
			// (b) after n/k - 1 queries a smaller tuple can still be
			// hidden, so any claimed top-1 would be wrong.
			if !adv.CanStillHide() {
				t.Fatalf("adversary exhausted after only %d < n/k queries", rounds)
			}
			if adv.K() != k || adv.Schema().NumOrdinal() != 1 {
				t.Fatal("adversary metadata broken")
			}
		})
	}
}

// TestAdversaryConsistency: answers must stay consistent — a tuple once
// returned keeps being returned by covering queries.
func TestAdversaryConsistency(t *testing.T) {
	adv := NewAdversary(0, 100, 50, 3)
	res1, _ := adv.TopK(query.New().WithRange(0, types.OpenInterval(0, 100)))
	if len(res1.Tuples) == 0 {
		t.Fatal("first answer empty")
	}
	seen := res1.Tuples[0]
	v := seen.Ord[0]
	res2, _ := adv.TopK(query.New().WithRange(0, types.OpenInterval(v-0.001, v+0.001)))
	found := false
	for _, tp := range res2.Tuples {
		if tp.ID == seen.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("tuple %v vanished from covering query answer %v", seen, res2.Tuples)
	}
}
