package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/types"
)

func mk(id int, v float64) types.Tuple {
	return types.Tuple{ID: id, Ord: []float64{v}}
}

func TestDense1DLookupAndInsert(t *testing.T) {
	d := NewDense1D()
	if _, ok := d.Lookup(0, types.OpenInterval(0, 1)); ok {
		t.Fatal("empty index claims coverage")
	}
	d.Insert(0, types.ClosedInterval(0, 10), []types.Tuple{mk(1, 3), mk(2, 7)})
	if reg, ok := d.Lookup(0, types.OpenInterval(2, 8)); !ok || len(reg.Tuples) != 2 {
		t.Fatal("covered lookup failed")
	}
	if _, ok := d.Lookup(0, types.OpenInterval(5, 12)); ok {
		t.Fatal("partially-covered interval must miss")
	}
	// Open/closed edge: region (0,10) does not cover [0, 5].
	d2 := NewDense1D()
	d2.Insert(0, types.OpenInterval(0, 10), []types.Tuple{mk(1, 3)})
	if _, ok := d2.Lookup(0, types.ClosedInterval(0, 5)); ok {
		t.Fatal("open region covered closed endpoint")
	}
	if _, ok := d2.Lookup(0, types.OpenInterval(0, 5)); !ok {
		t.Fatal("open-in-open lookup failed")
	}
}

func TestDense1DMerge(t *testing.T) {
	d := NewDense1D()
	d.Insert(0, types.ClosedInterval(0, 5), []types.Tuple{mk(1, 1)})
	d.Insert(0, types.ClosedInterval(4, 9), []types.Tuple{mk(2, 6), mk(1, 1)})
	if d.Regions(0) != 1 {
		t.Fatalf("overlapping inserts left %d regions, want 1", d.Regions(0))
	}
	reg, ok := d.Lookup(0, types.ClosedInterval(1, 8))
	if !ok {
		t.Fatal("merged region does not cover the union")
	}
	if len(reg.Tuples) != 2 {
		t.Fatalf("merged tuples = %d, want 2 (dedup)", len(reg.Tuples))
	}
	if d.TotalTuples(0) != 2 {
		t.Fatalf("TotalTuples = %d", d.TotalTuples(0))
	}
	// Disjoint insert stays separate.
	d.Insert(0, types.ClosedInterval(20, 30), nil)
	if d.Regions(0) != 2 {
		t.Fatalf("disjoint insert merged: %d regions", d.Regions(0))
	}
}

// TestDense1DOpenAdjacentNotMerged pins the boundary-exactness rule: two
// crawled intervals both open at a shared endpoint b never saw tuples AT b,
// so merging them would authoritatively claim an uncrawled value. The 1D
// oracle produces exactly this shape — (a,b) then (b,c) around a tie value.
func TestDense1DOpenAdjacentNotMerged(t *testing.T) {
	d := NewDense1D()
	d.Insert(0, types.OpenInterval(0, 5), []types.Tuple{mk(1, 2)})
	d.Insert(0, types.OpenInterval(5, 10), []types.Tuple{mk(2, 7)})
	if d.Regions(0) != 2 {
		t.Fatalf("open-adjacent intervals merged: %d regions, want 2", d.Regions(0))
	}
	// An interval spanning the uncrawled boundary value must miss.
	if _, ok := d.Lookup(0, types.OpenInterval(4, 6)); ok {
		t.Fatal("index claims coverage of the uncrawled boundary value 5")
	}
	// Half-open adjacency IS contiguous: [5,10) supplies the boundary.
	d2 := NewDense1D()
	d2.Insert(0, types.OpenInterval(0, 5), []types.Tuple{mk(1, 2)})
	d2.Insert(0, types.Interval{Lo: 5, Hi: 10, HiOpen: true}, []types.Tuple{mk(3, 5), mk(2, 7)})
	if d2.Regions(0) != 1 {
		t.Fatalf("contiguous half-open adjacency not merged: %d regions", d2.Regions(0))
	}
	reg, ok := d2.Lookup(0, types.OpenInterval(4, 6))
	if !ok {
		t.Fatal("merged contiguous region does not cover the boundary span")
	}
	if got, ok := reg.MinMatching(query.New(), 0, types.OpenInterval(4, 6)); !ok || got.ID != 3 {
		t.Fatalf("boundary tuple lost in merge: %v %v", got, ok)
	}
}

func TestInterval1DMinMaxMatching(t *testing.T) {
	reg := Interval1D{
		Range:  types.ClosedInterval(0, 10),
		Tuples: []types.Tuple{mk(1, 2), mk(2, 5), mk(3, 8)},
	}
	q := query.New()
	if got, ok := reg.MinMatching(q, 0, types.OpenInterval(2, 10)); !ok || got.ID != 2 {
		t.Fatalf("MinMatching = %v %v", got, ok)
	}
	if got, ok := reg.MaxMatching(q, 0, types.ClosedInterval(0, 8)); !ok || got.ID != 3 {
		t.Fatalf("MaxMatching = %v %v", got, ok)
	}
	if _, ok := reg.MinMatching(q, 0, types.OpenInterval(8, 10)); ok {
		t.Fatal("empty sub-range matched")
	}
}

// TestDense1DMergeProperty: after arbitrary overlapping inserts, any lookup
// fully inside the union of inserted ranges answers with exactly the tuples
// whose values fall in the queried interval.
func TestDense1DMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rng.Seed(seed)
		d := NewDense1D()
		var all []types.Tuple
		// Insert 3 overlapping chunks of one contiguous crawl [0, 30].
		bounds := []float64{0, 10 + rng.Float64()*5, 20 + rng.Float64()*5, 30}
		id := 0
		for c := 0; c < 3; c++ {
			lo, hi := bounds[c], bounds[c+1]
			var ts []types.Tuple
			for i := 0; i < 10; i++ {
				v := lo + rng.Float64()*(hi-lo)
				ts = append(ts, mk(id, v))
				id++
			}
			all = append(all, ts...)
			d.Insert(0, types.ClosedInterval(lo, hi), ts)
		}
		if d.Regions(0) != 1 {
			return false
		}
		qlo := rng.Float64() * 15
		iv := types.ClosedInterval(qlo, qlo+rng.Float64()*14)
		reg, ok := d.Lookup(0, iv)
		if !ok {
			return false
		}
		want := map[int]bool{}
		for _, tp := range all {
			if iv.Contains(tp.Ord[0]) {
				want[tp.ID] = true
			}
		}
		got, okMin := reg.MinMatching(query.New(), 0, iv)
		if len(want) == 0 {
			return !okMin
		}
		if !okMin || !want[got.ID] {
			return false
		}
		// The min must really be minimal.
		for _, tp := range all {
			if iv.Contains(tp.Ord[0]) && tp.Ord[0] < got.Ord[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseMD(t *testing.T) {
	d := NewDenseMD()
	box := func(l0, h0, l1, h1 float64) query.Box {
		return query.Box{Dims: []types.Interval{
			types.ClosedInterval(l0, h0), types.ClosedInterval(l1, h1),
		}}
	}
	if _, ok := d.Lookup(box(0, 1, 0, 1)); ok {
		t.Fatal("empty MD index claims coverage")
	}
	d.Insert(box(0, 10, 0, 10), []types.Tuple{{ID: 1, Ord: []float64{5, 5}}})
	if reg, ok := d.Lookup(box(2, 8, 2, 8)); !ok || len(reg.Tuples) != 1 {
		t.Fatal("inner box lookup failed")
	}
	if _, ok := d.Lookup(box(5, 15, 2, 8)); ok {
		t.Fatal("straddling box covered")
	}
	// Inserting a superset absorbs the old region.
	d.Insert(box(-5, 20, -5, 20), []types.Tuple{{ID: 2, Ord: []float64{1, 1}}})
	if d.Len() != 1 {
		t.Fatalf("absorb failed: %d regions", d.Len())
	}
	d.AddCrawlCost(7)
	if d.CrawlCost() != 7 {
		t.Fatal("crawl ledger broken")
	}
}
