package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/query"
	"repro/internal/types"
)

// linearMD is the pre-grid DenseMD reference: the same Insert semantics
// (absorb contained regions) with a plain linear-scan Lookup. The property
// tests cross-check the centroid grid against it.
type linearMD struct {
	regions []Region
}

func (l *linearMD) Insert(box query.Box, tuples []types.Tuple) {
	kept := l.regions[:0]
	for _, r := range l.regions {
		if box.ContainsBox(r.Box) {
			continue
		}
		kept = append(kept, r)
	}
	l.regions = append(kept, Region{Box: box, Tuples: append([]types.Tuple(nil), tuples...)})
}

func (l *linearMD) Lookup(box query.Box) (Region, bool) {
	for _, r := range l.regions {
		if r.Box.ContainsBox(box) {
			return r, true
		}
	}
	return Region{}, false
}

// randBox generates a random finite box: usually small, sometimes
// point-sized on one or all dimensions, occasionally large (an absorber).
func randBox(rng *rand.Rand, m int) query.Box {
	b := query.Box{Dims: make([]types.Interval, m)}
	kind := rng.Intn(10)
	for j := 0; j < m; j++ {
		lo := rng.Float64() * 100
		var w float64
		switch {
		case kind == 0: // point region
			w = 0
		case kind == 1: // large absorber
			w = 5 + rng.Float64()*20
		default: // typical dense region
			w = rng.Float64() * 2
		}
		b.Dims[j] = types.Interval{
			Lo: lo, Hi: lo + w,
			LoOpen: w > 0 && rng.Intn(4) == 0,
			HiOpen: w > 0 && rng.Intn(4) == 0,
		}
	}
	return b
}

// subBoxOf returns a random box inside b (possibly b itself or a point).
func subBoxOf(rng *rand.Rand, b query.Box) query.Box {
	s := b.Clone()
	if rng.Intn(3) == 0 {
		return s
	}
	for j, iv := range s.Dims {
		w := iv.Hi - iv.Lo
		lo := iv.Lo + rng.Float64()*w/2
		hi := iv.Hi - rng.Float64()*w/2
		if hi < lo {
			lo, hi = hi, lo
		}
		s.Dims[j] = types.Interval{Lo: lo, Hi: hi}
		if iv.LoOpen && lo == iv.Lo {
			s.Dims[j].LoOpen = true
		}
		if iv.HiOpen && hi == iv.Hi {
			s.Dims[j].HiOpen = true
		}
	}
	return s
}

// TestDenseMDGridCrossCheck inserts randomized region streams — overlapping,
// nested, point-sized, and occasionally absorbing — into the grid index and
// the linear reference, and checks after every insert that lookups agree on
// hit/miss for guaranteed-inside boxes, random boxes, and regions inserted
// earlier (coverage monotonicity).
func TestDenseMDGridCrossCheck(t *testing.T) {
	for _, m := range []int{2, 3} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(1000 + seed))
			d := NewDenseMD()
			ref := &linearMD{}
			var inserted []query.Box
			for step := 0; step < 120; step++ {
				box := randBox(rng, m)
				tup := []types.Tuple{{ID: step, Ord: make([]float64, m)}}
				d.Insert(box, tup)
				ref.Insert(box, tup)
				inserted = append(inserted, box)

				check := func(q query.Box, what string) {
					t.Helper()
					got, gok := d.Lookup(q)
					_, wok := ref.Lookup(q)
					if gok != wok {
						t.Fatalf("m=%d seed=%d step=%d %s: grid found=%v, linear found=%v (box %v)",
							m, seed, step, what, gok, wok, q)
					}
					if gok && !got.Box.ContainsBox(q) {
						t.Fatalf("m=%d seed=%d step=%d %s: grid returned non-covering region %v for %v",
							m, seed, step, what, got.Box, q)
					}
				}
				// A sub-box of the just-inserted region must hit.
				check(subBoxOf(rng, box), "sub-box of new region")
				// Every previously inserted box stays covered (coverage is
				// monotone even when absorbs compact the region array).
				check(inserted[rng.Intn(len(inserted))], "earlier region")
				// Random box: hit or miss, both must agree.
				check(randBox(rng, m), "random box")
			}
			if d.Len() != len(ref.regions) {
				t.Fatalf("m=%d seed=%d: grid holds %d regions, linear %d", m, seed, d.Len(), len(ref.regions))
			}
			st := d.Stats()
			if st.Regions != d.Len() {
				t.Fatalf("Stats.Regions=%d, Len=%d", st.Regions, d.Len())
			}
			if st.Buckets == 0 && st.Loose == 0 {
				t.Fatalf("grid never built: %+v", st)
			}
		}
	}
}

// TestDenseMDCellBoundaryLookup is the regression test for the
// float-boundary miss: deriving neighbor-cell keys by re-flooring perturbed
// float coordinates could skip the true ±1 cell when a lookup centroid sat
// within a few ulps of a cell boundary, so Lookup falsely missed a covered
// box. Regions are placed with centroids jittered tightly around cell
// boundaries (the adversarial regime); every inserted box and sub-box must
// hit.
func TestDenseMDCellBoundaryLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := NewDenseMD()
	w := 5.756163448430901 // awkward mantissa, as in the observed failure
	var boxes []query.Box
	for i := 0; i < 4000; i++ {
		b := query.Box{Dims: make([]types.Interval, 2)}
		for j := 0; j < 2; j++ {
			// Centroid within ±2 ulp-ish of a multiple of the region
			// width (≈ the cell width modulo slack).
			k := float64(rng.Intn(400) - 200)
			c := k*w + (rng.Float64()-0.5)*1e-12
			b.Dims[j] = types.Interval{Lo: c - w/2, Hi: c + w/2}
		}
		d.Insert(b, nil)
		boxes = append(boxes, b)
	}
	for i, b := range boxes {
		if _, ok := d.Lookup(b); !ok {
			t.Fatalf("box %d (%v) not found though inserted", i, b)
		}
		sub := b.Clone()
		for j, iv := range sub.Dims {
			sub.Dims[j] = types.ClosedInterval(iv.Lo+w/4, iv.Hi-w/4)
		}
		if _, ok := d.Lookup(sub); !ok {
			t.Fatalf("sub-box of %d (%v) not found", i, sub)
		}
	}
}

// TestDenseMDNonFiniteRegions exercises the loose path: regions with
// unbounded sides are not gridable but must stay findable.
func TestDenseMDNonFiniteRegions(t *testing.T) {
	d := NewDenseMD()
	inf := types.FullInterval()
	open := query.Box{Dims: []types.Interval{inf, {Lo: 0, Hi: 1}}}
	d.Insert(open, nil)
	d.Insert(query.Box{Dims: []types.Interval{{Lo: 5, Hi: 6}, {Lo: 5, Hi: 6}}}, nil)
	if _, ok := d.Lookup(query.Box{Dims: []types.Interval{{Lo: -1e9, Hi: 1e9}, {Lo: 0.2, Hi: 0.8}}}); !ok {
		t.Fatal("unbounded region not found for covered lookup")
	}
	if _, ok := d.Lookup(query.Box{Dims: []types.Interval{{Lo: 5.2, Hi: 5.8}, {Lo: 5.2, Hi: 5.8}}}); !ok {
		t.Fatal("finite region not found")
	}
	if st := d.Stats(); st.Loose != 1 {
		t.Fatalf("want 1 loose region, got %+v", st)
	}
}

// sortedRef is the pre-splice Dense1D reference Insert: merge by full scan
// and re-sort, as the index did before the sorted-run rewrite.
type sortedRef struct {
	regions map[int][]Interval1D
}

func (s *sortedRef) Insert(attr int, rng types.Interval, tuples []types.Tuple) {
	merged := Interval1D{Range: rng, Tuples: append([]types.Tuple(nil), tuples...)}
	var keep []Interval1D
	for _, r := range s.regions[attr] {
		if r.Range.Hi < rng.Lo || r.Range.Lo > rng.Hi ||
			(r.Range.Hi == rng.Lo && r.Range.HiOpen && rng.LoOpen) ||
			(r.Range.Lo == rng.Hi && r.Range.LoOpen && rng.HiOpen) {
			keep = append(keep, r)
			continue
		}
		if r.Range.Lo < merged.Range.Lo || (r.Range.Lo == merged.Range.Lo && !r.Range.LoOpen) {
			merged.Range.Lo, merged.Range.LoOpen = r.Range.Lo, r.Range.LoOpen
		}
		if r.Range.Hi > merged.Range.Hi || (r.Range.Hi == merged.Range.Hi && !r.Range.HiOpen) {
			merged.Range.Hi, merged.Range.HiOpen = r.Range.Hi, r.Range.HiOpen
		}
		merged.Tuples = append(merged.Tuples, r.Tuples...)
	}
	sort.Slice(merged.Tuples, func(i, j int) bool {
		if merged.Tuples[i].Ord[attr] != merged.Tuples[j].Ord[attr] {
			return merged.Tuples[i].Ord[attr] < merged.Tuples[j].Ord[attr]
		}
		return merged.Tuples[i].ID < merged.Tuples[j].ID
	})
	dedup := merged.Tuples[:0]
	seen := map[int]bool{}
	for _, t := range merged.Tuples {
		if seen[t.ID] {
			continue
		}
		seen[t.ID] = true
		dedup = append(dedup, t)
	}
	merged.Tuples = dedup
	keep = append(keep, merged)
	sort.Slice(keep, func(i, j int) bool { return keep[i].Range.Lo < keep[j].Range.Lo })
	if s.regions == nil {
		s.regions = map[int][]Interval1D{}
	}
	s.regions[attr] = keep
}

// TestDense1DSpliceCrossCheck drives the splice-and-merge Insert against the
// full-re-sort reference on randomized interval streams (overlaps, touching
// endpoints with every open/closed combination, duplicate tuples) and
// requires bit-identical region arrays.
func TestDense1DSpliceCrossCheck(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		d := NewDense1D()
		ref := &sortedRef{}
		// A fixed corpus: an ID always carries the same value, as in the
		// real system (crawls observe one corpus). Crawling an interval
		// returns exactly the corpus members inside it, so overlapping
		// regions share duplicate tuples.
		corpus := make([]types.Tuple, 120)
		for i := range corpus {
			corpus[i] = types.Tuple{ID: i, Ord: []float64{rng.Float64() * 46}}
		}
		for step := 0; step < 150; step++ {
			// Coarse endpoints so exact touches happen often.
			lo := float64(rng.Intn(40))
			w := float64(rng.Intn(6))
			iv := types.Interval{
				Lo: lo, Hi: lo + w,
				LoOpen: w > 0 && rng.Intn(3) == 0,
				HiOpen: w > 0 && rng.Intn(3) == 0,
			}
			var tuples []types.Tuple
			for _, ct := range corpus {
				if iv.Contains(ct.Ord[0]) {
					tuples = append(tuples, ct)
				}
			}
			d.Insert(0, iv, tuples)
			ref.Insert(0, iv, tuples)

			got, want := d.Export(0), ref.regions[0]
			if len(got) != len(want) {
				t.Fatalf("seed=%d step=%d: %d regions, want %d\n got: %v\nwant: %v",
					seed, step, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i].Range != want[i].Range {
					t.Fatalf("seed=%d step=%d region %d: range %v, want %v", seed, step, i, got[i].Range, want[i].Range)
				}
				if len(got[i].Tuples) != len(want[i].Tuples) {
					t.Fatalf("seed=%d step=%d region %d: %d tuples, want %d", seed, step, i, len(got[i].Tuples), len(want[i].Tuples))
				}
				for j := range got[i].Tuples {
					if got[i].Tuples[j].ID != want[i].Tuples[j].ID {
						t.Fatalf("seed=%d step=%d region %d tuple %d: ID %d, want %d",
							seed, step, i, j, got[i].Tuples[j].ID, want[i].Tuples[j].ID)
					}
				}
			}
		}
	}
}
