// Package index implements the on-the-fly dense-region indexes of §3.2.2
// (1D) and §4.4 (MD).
//
// A dense region is a small interval (or box) packed with many tuples;
// binary-search-style probing degenerates there, and the same region tends
// to be revisited by many different user queries. The index records regions
// that have been *fully crawled*: once crawled, any future visit inside a
// recorded region is answered locally with zero database queries.
//
// The crawl itself is generic — it deliberately ignores the user query's
// selection condition (Algorithm 4's design note) so the work amortizes
// across all future user queries.
//
// Both index types are safe for concurrent use: lookups take a read lock,
// inserts a write lock, and crawl-cost ledgers are atomic. Region coverage
// is monotone — once an interval or box is covered it stays covered — and
// the tuple slices inside recorded regions are immutable once inserted, so
// returned regions may be read without further synchronization.
package index

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/types"
)

// Interval1D is one fully-crawled value interval on a single attribute,
// together with every tuple of the *entire database* whose attribute value
// lies inside it.
type Interval1D struct {
	Range  types.Interval
	Tuples []types.Tuple // sorted ascending by the attribute; immutable
}

// Dense1D is the per-attribute dense index: a set of disjoint fully-crawled
// intervals per ordinal attribute.
type Dense1D struct {
	mu sync.RWMutex
	// regions[attr] is sorted by Range.Lo and pairwise disjoint.
	regions map[int][]Interval1D
	// crawlCost counts database queries spent building the index,
	// reported separately by the experiments (Theorem 3 accounting).
	crawlCost atomic.Int64
}

// NewDense1D returns an empty 1D dense index.
func NewDense1D() *Dense1D {
	return &Dense1D{regions: make(map[int][]Interval1D)}
}

// AddCrawlCost accumulates queries spent crawling into the index's ledger.
func (d *Dense1D) AddCrawlCost(n int64) { d.crawlCost.Add(n) }

// CrawlCost returns the total queries charged to index construction.
func (d *Dense1D) CrawlCost() int64 { return d.crawlCost.Load() }

// Lookup returns the crawled interval covering [iv] on attr, if any. The
// requested interval must be entirely inside a recorded region for the
// answer to be authoritative.
func (d *Dense1D) Lookup(attr int, iv types.Interval) (Interval1D, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	regs := d.regions[attr]
	// Regions are sorted by Lo and interior-disjoint, but two of them may
	// touch at a both-open boundary point, so more than one candidate can
	// satisfy Hi >= iv.Lo at that point — scan until Lo passes iv.Lo.
	i := sort.Search(len(regs), func(i int) bool { return regs[i].Range.Hi >= iv.Lo })
	for ; i < len(regs) && regs[i].Range.Lo <= iv.Lo; i++ {
		if covers1D(regs[i].Range, iv) {
			return regs[i], true
		}
	}
	return Interval1D{}, false
}

// covers1D reports whether outer fully contains inner.
func covers1D(outer, inner types.Interval) bool {
	if inner.Lo < outer.Lo || (inner.Lo == outer.Lo && outer.LoOpen && !inner.LoOpen) {
		return false
	}
	if inner.Hi > outer.Hi || (inner.Hi == outer.Hi && outer.HiOpen && !inner.HiOpen) {
		return false
	}
	return true
}

// Insert records a fully-crawled interval with its tuples (which must be
// every database tuple whose attr value falls inside rng). Overlapping or
// adjacent existing regions are merged; tuples are deduplicated by ID.
func (d *Dense1D) Insert(attr int, rng types.Interval, tuples []types.Tuple) {
	d.mu.Lock()
	defer d.mu.Unlock()
	merged := Interval1D{Range: rng, Tuples: append([]types.Tuple(nil), tuples...)}
	var keep []Interval1D
	for _, r := range d.regions[attr] {
		// Merge only regions whose union is contiguous. Two intervals
		// that touch at an endpoint excluded by BOTH sides — (a,b) and
		// (b,c) — must stay separate: neither was crawled at b, so a
		// merged (a,c) would authoritatively claim tuples at b that the
		// index never saw.
		if r.Range.Hi < rng.Lo || r.Range.Lo > rng.Hi ||
			(r.Range.Hi == rng.Lo && r.Range.HiOpen && rng.LoOpen) ||
			(r.Range.Lo == rng.Hi && r.Range.LoOpen && rng.HiOpen) {
			keep = append(keep, r)
			continue
		}
		// Overlap: merge ranges and tuple sets.
		if r.Range.Lo < merged.Range.Lo || (r.Range.Lo == merged.Range.Lo && !r.Range.LoOpen) {
			merged.Range.Lo, merged.Range.LoOpen = r.Range.Lo, r.Range.LoOpen
		}
		if r.Range.Hi > merged.Range.Hi || (r.Range.Hi == merged.Range.Hi && !r.Range.HiOpen) {
			merged.Range.Hi, merged.Range.HiOpen = r.Range.Hi, r.Range.HiOpen
		}
		merged.Tuples = append(merged.Tuples, r.Tuples...)
	}
	merged.Tuples = dedupeSort(merged.Tuples, attr)
	keep = append(keep, merged)
	sort.Slice(keep, func(i, j int) bool { return keep[i].Range.Lo < keep[j].Range.Lo })
	d.regions[attr] = keep
}

// Regions returns the number of recorded regions for attr.
func (d *Dense1D) Regions(attr int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.regions[attr])
}

// Export returns a copy of the recorded regions for attr (for persistence
// and inspection). Region tuple slices are shared and must not be modified.
func (d *Dense1D) Export(attr int) []Interval1D {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Interval1D(nil), d.regions[attr]...)
}

// TotalTuples returns the number of tuples stored across all regions of
// attr.
func (d *Dense1D) TotalTuples(attr int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, r := range d.regions[attr] {
		n += len(r.Tuples)
	}
	return n
}

func dedupeSort(ts []types.Tuple, attr int) []types.Tuple {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Ord[attr] != ts[j].Ord[attr] {
			return ts[i].Ord[attr] < ts[j].Ord[attr]
		}
		return ts[i].ID < ts[j].ID
	})
	out := ts[:0]
	seen := make(map[int]bool, len(ts))
	for _, t := range ts {
		if seen[t.ID] {
			continue
		}
		seen[t.ID] = true
		out = append(out, t)
	}
	return out
}

// MinMatching returns the tuple with the smallest attr value inside iv that
// matches q, searching the recorded region reg. ok is false when no stored
// tuple qualifies (authoritative: the region was fully crawled).
func (r Interval1D) MinMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	return ScanMinMatching(r.Tuples, q, attr, iv)
}

// MaxMatching mirrors MinMatching for descending scans.
func (r Interval1D) MaxMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	return ScanMaxMatching(r.Tuples, q, attr, iv)
}

// ScanMinMatching returns the first tuple of lst — which must be sorted
// ascending by (Ord[attr], ID) — that lies inside iv and matches q. It is the
// shared ascending-scan primitive of every sorted tuple run in the system:
// dense-region payloads here and the history store's per-attribute runs.
func ScanMinMatching(lst []types.Tuple, q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Ord[attr] >= iv.Lo })
	for ; i < len(lst); i++ {
		v := lst[i].Ord[attr]
		if !iv.Contains(v) {
			if v > iv.Hi {
				break
			}
			continue
		}
		if q.Matches(lst[i]) {
			return lst[i], true
		}
	}
	return types.Tuple{}, false
}

// ScanMaxMatching mirrors ScanMinMatching for descending scans: the last
// tuple of the sorted run inside iv matching q.
func ScanMaxMatching(lst []types.Tuple, q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Ord[attr] > iv.Hi })
	for i--; i >= 0; i-- {
		v := lst[i].Ord[attr]
		if !iv.Contains(v) {
			if v < iv.Lo {
				break
			}
			continue
		}
		if q.Matches(lst[i]) {
			return lst[i], true
		}
	}
	return types.Tuple{}, false
}

// Region is one fully-crawled axis-space box with every database tuple
// inside it, used by the MD dense index (Algorithm 6).
type Region struct {
	Box    query.Box
	Tuples []types.Tuple // immutable once inserted
}

// DenseMD records fully-crawled boxes in the axis space of one ranker.
// Lookups are linear in the number of regions, which Theorem 3's argument
// keeps small (dense regions are rare by construction when c = n).
type DenseMD struct {
	mu        sync.RWMutex
	regions   []Region
	crawlCost atomic.Int64
}

// NewDenseMD returns an empty MD dense index.
func NewDenseMD() *DenseMD { return &DenseMD{} }

// AddCrawlCost accumulates queries spent crawling.
func (d *DenseMD) AddCrawlCost(n int64) { d.crawlCost.Add(n) }

// CrawlCost returns queries charged to MD index construction.
func (d *DenseMD) CrawlCost() int64 { return d.crawlCost.Load() }

// Lookup returns a recorded region fully covering box, if any.
func (d *DenseMD) Lookup(box query.Box) (Region, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, r := range d.regions {
		if r.Box.ContainsBox(box) {
			return r, true
		}
	}
	return Region{}, false
}

// Insert records a fully-crawled box. Regions contained in the new box are
// absorbed.
func (d *DenseMD) Insert(box query.Box, tuples []types.Tuple) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kept := make([]Region, 0, len(d.regions)+1)
	merged := append([]types.Tuple(nil), tuples...)
	for _, r := range d.regions {
		if box.ContainsBox(r.Box) {
			continue // absorbed; its tuples are a subset of the crawl
		}
		kept = append(kept, r)
	}
	d.regions = append(kept, Region{Box: box, Tuples: merged})
}

// Len returns the number of recorded regions.
func (d *DenseMD) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.regions)
}

// Export returns a copy of the recorded regions (for persistence and
// inspection). Region tuple slices are shared and must not be modified.
func (d *DenseMD) Export() []Region {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Region(nil), d.regions...)
}
