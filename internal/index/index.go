// Package index implements the on-the-fly dense-region indexes of §3.2.2
// (1D) and §4.4 (MD).
//
// A dense region is a small interval (or box) packed with many tuples;
// binary-search-style probing degenerates there, and the same region tends
// to be revisited by many different user queries. The index records regions
// that have been *fully crawled*: once crawled, any future visit inside a
// recorded region is answered locally with zero database queries.
//
// The crawl itself is generic — it deliberately ignores the user query's
// selection condition (Algorithm 4's design note) so the work amortizes
// across all future user queries.
//
// Both index types are safe for concurrent use: lookups take a read lock,
// inserts a write lock, and crawl-cost ledgers are atomic. Region coverage
// is monotone — once an interval or box is covered it stays covered — and
// the tuple slices inside recorded regions are immutable once inserted, so
// returned regions may be read without further synchronization.
//
// Both lookups are sub-linear in the number of recorded regions. Dense1D
// keeps its per-attribute regions as a sorted array probed by binary search,
// and Insert splices the merged region into place with a linear merge of the
// affected sorted tuple runs (the history store's sorted-run discipline) —
// never a full re-sort. DenseMD buckets regions by the grid cell of their
// box centroid: because every region recorded so far is at most maxW wide
// per dimension, any region containing a lookup box has its centroid within
// one cell of the lookup centroid, so a lookup inspects at most 3^m buckets
// instead of every region. The grid grows incrementally on Insert and is
// rebuilt (amortized, like a sorted-run flush) only when a new region
// exceeds the cell size or an absorb invalidates stored indices.
package index

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/types"
)

// FirstEpoch is the knowledge epoch every region starts in. Epochs only
// move forward; a region whose Epoch trails the owner's current epoch is
// *stale* — still authoritative about what the upstream looked like when it
// was crawled, but requiring one confirming probe before it may answer
// again (see internal/core's lazy re-validation).
const FirstEpoch int64 = 1

// Interval1D is one fully-crawled value interval on a single attribute,
// together with every tuple of the *entire database* whose attribute value
// lies inside it.
type Interval1D struct {
	Range  types.Interval
	Tuples []types.Tuple // sorted ascending by the attribute; immutable
	Epoch  int64         // knowledge epoch the interval was crawled under
}

// Dense1D is the per-attribute dense index: a set of disjoint fully-crawled
// intervals per ordinal attribute.
type Dense1D struct {
	mu sync.RWMutex
	// regions[attr] is sorted by Range.Lo and pairwise disjoint.
	regions map[int][]Interval1D
	// crawlCost counts database queries spent building the index,
	// reported separately by the experiments (Theorem 3 accounting).
	crawlCost atomic.Int64
}

// NewDense1D returns an empty 1D dense index.
func NewDense1D() *Dense1D {
	return &Dense1D{regions: make(map[int][]Interval1D)}
}

// AddCrawlCost accumulates queries spent crawling into the index's ledger.
func (d *Dense1D) AddCrawlCost(n int64) { d.crawlCost.Add(n) }

// CrawlCost returns the total queries charged to index construction.
func (d *Dense1D) CrawlCost() int64 { return d.crawlCost.Load() }

// Lookup returns the crawled interval covering [iv] on attr, if any. The
// requested interval must be entirely inside a recorded region for the
// answer to be authoritative.
func (d *Dense1D) Lookup(attr int, iv types.Interval) (Interval1D, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	regs := d.regions[attr]
	// Regions are sorted by Lo and interior-disjoint, but two of them may
	// touch at a both-open boundary point, so more than one candidate can
	// satisfy Hi >= iv.Lo at that point — scan until Lo passes iv.Lo.
	i := sort.Search(len(regs), func(i int) bool { return regs[i].Range.Hi >= iv.Lo })
	for ; i < len(regs) && regs[i].Range.Lo <= iv.Lo; i++ {
		if covers1D(regs[i].Range, iv) {
			return regs[i], true
		}
	}
	return Interval1D{}, false
}

// covers1D reports whether outer fully contains inner.
func covers1D(outer, inner types.Interval) bool {
	if inner.Lo < outer.Lo || (inner.Lo == outer.Lo && outer.LoOpen && !inner.LoOpen) {
		return false
	}
	if inner.Hi > outer.Hi || (inner.Hi == outer.Hi && outer.HiOpen && !inner.HiOpen) {
		return false
	}
	return true
}

// Insert records a fully-crawled interval at FirstEpoch; see InsertEpoch.
func (d *Dense1D) Insert(attr int, rng types.Interval, tuples []types.Tuple) {
	d.InsertEpoch(attr, rng, tuples, FirstEpoch)
}

// InsertEpoch records a fully-crawled interval with its tuples (which must
// be every database tuple whose attr value falls inside rng) under the given
// knowledge epoch. Overlapping or adjacent existing regions are merged;
// tuples are deduplicated by ID. A merge takes the *minimum* epoch of its
// constituents: the merged region's old tuples were not re-verified by the
// new crawl, so the combined region is only as fresh as its oldest part.
//
// The region array stays sorted by Range.Lo without ever being re-sorted:
// overlapping regions are contiguous in the sorted array, so Insert binary
// searches for the overlap window, merges the window's (already sorted)
// tuple runs with the freshly sorted incoming run via linear merges, and
// splices the merged region into place.
func (d *Dense1D) InsertEpoch(attr int, rng types.Interval, tuples []types.Tuple, epoch int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	regs := d.regions[attr]
	merged := Interval1D{Range: rng, Tuples: sortRun(append([]types.Tuple(nil), tuples...), attr), Epoch: epoch}
	// Overlap window: regions are sorted by Lo and interior-disjoint, so
	// every region mergeable with rng lies in one contiguous span. Regions
	// touching rng at an endpoint excluded by BOTH sides — (a,b) then
	// (b,c) — must stay separate: neither was crawled at b, so a merged
	// (a,c) would authoritatively claim tuples at b that the index never
	// saw. Such regions sit at the window's edges and are kept.
	lo := sort.Search(len(regs), func(i int) bool { return regs[i].Range.Hi >= rng.Lo })
	hi := lo
	var keepInWindow []Interval1D // both-open-touch neighbors, ≤ 2 of them
	for ; hi < len(regs) && regs[hi].Range.Lo <= rng.Hi; hi++ {
		r := regs[hi]
		if (r.Range.Hi == rng.Lo && r.Range.HiOpen && rng.LoOpen) ||
			(r.Range.Lo == rng.Hi && r.Range.LoOpen && rng.HiOpen) {
			keepInWindow = append(keepInWindow, r)
			continue
		}
		if r.Range.Lo < merged.Range.Lo || (r.Range.Lo == merged.Range.Lo && !r.Range.LoOpen) {
			merged.Range.Lo, merged.Range.LoOpen = r.Range.Lo, r.Range.LoOpen
		}
		if r.Range.Hi > merged.Range.Hi || (r.Range.Hi == merged.Range.Hi && !r.Range.HiOpen) {
			merged.Range.Hi, merged.Range.HiOpen = r.Range.Hi, r.Range.HiOpen
		}
		if r.Epoch < merged.Epoch {
			merged.Epoch = r.Epoch
		}
		merged.Tuples = mergeTupleRuns(merged.Tuples, r.Tuples, attr)
	}
	// Splice: prefix, kept touch-neighbors below, merged, kept above, suffix.
	out := make([]Interval1D, 0, lo+len(keepInWindow)+1+len(regs)-hi)
	out = append(out, regs[:lo]...)
	for _, r := range keepInWindow {
		if r.Range.Lo < merged.Range.Lo {
			out = append(out, r)
		}
	}
	out = append(out, merged)
	for _, r := range keepInWindow {
		if r.Range.Lo >= merged.Range.Lo {
			out = append(out, r)
		}
	}
	out = append(out, regs[hi:]...)
	d.regions[attr] = out
}

// Promote raises the epoch of the region whose Range is exactly rng to
// epoch (a re-validation confirmed its contents are still current). It
// reports whether the region was found; an already-newer epoch is kept.
func (d *Dense1D) Promote(attr int, rng types.Interval, epoch int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	regs := d.regions[attr]
	i := sort.Search(len(regs), func(i int) bool { return regs[i].Range.Hi >= rng.Lo })
	for ; i < len(regs) && regs[i].Range.Lo <= rng.Lo; i++ {
		if regs[i].Range == rng {
			if regs[i].Epoch < epoch {
				regs[i].Epoch = epoch
			}
			return true
		}
	}
	return false
}

// Remove evicts the region whose Range is exactly rng (a re-validation
// found its contents drifted). Coverage of that interval reverts to
// unknown; the next visit re-crawls it. Reports whether a region was
// removed.
func (d *Dense1D) Remove(attr int, rng types.Interval) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	regs := d.regions[attr]
	i := sort.Search(len(regs), func(i int) bool { return regs[i].Range.Hi >= rng.Lo })
	for ; i < len(regs) && regs[i].Range.Lo <= rng.Lo; i++ {
		if regs[i].Range == rng {
			d.regions[attr] = append(regs[:i:i], regs[i+1:]...)
			return true
		}
	}
	return false
}

// StaleCount returns the number of recorded regions across all attributes
// whose epoch trails cur.
func (d *Dense1D) StaleCount(cur int64) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, regs := range d.regions {
		for _, r := range regs {
			if r.Epoch < cur {
				n++
			}
		}
	}
	return n
}

// Regions returns the number of recorded regions for attr.
func (d *Dense1D) Regions(attr int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.regions[attr])
}

// Export returns a copy of the recorded regions for attr (for persistence
// and inspection). Region tuple slices are shared and must not be modified.
func (d *Dense1D) Export(attr int) []Interval1D {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Interval1D(nil), d.regions[attr]...)
}

// TotalTuples returns the number of tuples stored across all regions of
// attr.
func (d *Dense1D) TotalTuples(attr int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, r := range d.regions[attr] {
		n += len(r.Tuples)
	}
	return n
}

// sortRun sorts ts ascending by (Ord[attr], ID) and deduplicates by ID —
// the canonical order of every sorted tuple run in the system (row-struct
// runs here, row-number runs in colstore.Run). Only fresh crawl results pay
// this sort; region-to-region combination goes through mergeTupleRuns.
func sortRun(ts []types.Tuple, attr int) []types.Tuple {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Ord[attr] != ts[j].Ord[attr] {
			return ts[i].Ord[attr] < ts[j].Ord[attr]
		}
		return ts[i].ID < ts[j].ID
	})
	out := ts[:0]
	for _, t := range ts {
		if len(out) > 0 && t.ID == out[len(out)-1].ID {
			continue
		}
		out = append(out, t)
	}
	return out
}

// mergeTupleRuns linearly merges two runs sorted by (Ord[attr], ID) into a
// fresh run, deduplicating by ID. A tuple present in both runs carries the
// same attribute value, so duplicates always meet at equal sort keys.
func mergeTupleRuns(a, b []types.Tuple, attr int) []types.Tuple {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]types.Tuple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Ord[attr] < b[j].Ord[attr] ||
			(a[i].Ord[attr] == b[j].Ord[attr] && a[i].ID < b[j].ID):
			out = append(out, a[i])
			i++
		case a[i].Ord[attr] == b[j].Ord[attr] && a[i].ID == b[j].ID:
			out = append(out, a[i])
			i++
			j++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// MinMatching returns the tuple with the smallest attr value inside iv that
// matches q, searching the recorded region reg. ok is false when no stored
// tuple qualifies (authoritative: the region was fully crawled).
func (r Interval1D) MinMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	return ScanMinMatching(r.Tuples, q, attr, iv)
}

// MaxMatching mirrors MinMatching for descending scans.
func (r Interval1D) MaxMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	return ScanMaxMatching(r.Tuples, q, attr, iv)
}

// ScanMinMatching returns the first tuple of lst — which must be sorted
// ascending by (Ord[attr], ID) — that lies inside iv and matches q. It is the
// ascending-scan primitive for row-struct sorted runs (dense-region
// payloads); the history store's per-attribute runs live in the columnar
// arena and are scanned by colstore.Run.ScanMin, which mirrors these
// semantics exactly.
func ScanMinMatching(lst []types.Tuple, q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Ord[attr] >= iv.Lo })
	for ; i < len(lst); i++ {
		v := lst[i].Ord[attr]
		if !iv.Contains(v) {
			if v > iv.Hi {
				break
			}
			continue
		}
		if q.Matches(lst[i]) {
			return lst[i], true
		}
	}
	return types.Tuple{}, false
}

// ScanMaxMatching mirrors ScanMinMatching for descending scans: the last
// tuple of the sorted run inside iv matching q.
func ScanMaxMatching(lst []types.Tuple, q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Ord[attr] > iv.Hi })
	for i--; i >= 0; i-- {
		v := lst[i].Ord[attr]
		if !iv.Contains(v) {
			if v < iv.Lo {
				break
			}
			continue
		}
		if q.Matches(lst[i]) {
			return lst[i], true
		}
	}
	return types.Tuple{}, false
}

// Region is one fully-crawled axis-space box with every database tuple
// inside it, used by the MD dense index (Algorithm 6).
type Region struct {
	Box    query.Box
	Tuples []types.Tuple // immutable once inserted
	Epoch  int64         // knowledge epoch the box was crawled under
}

// DenseMD records fully-crawled boxes in the axis space of one ranker.
// Lookups go through a uniform-grid bucket index over box centroids, so the
// §4.4 oracle stays O(3^m · bucket) as knowledge grows instead of paying a
// scan over every recorded region.
type DenseMD struct {
	mu        sync.RWMutex
	regions   []Region
	crawlCost atomic.Int64
	grid      mdGrid
}

// mdGrid buckets region indices by the grid cell of their box centroid.
//
// Invariant: every bucketed region is at most cell[j] wide on dimension j
// (cell widths are set to the maximum region width at build time). A region
// R containing a lookup box q also contains q's centroid, so the two
// centroids differ by at most width(R) ≤ cell[j] per dimension — R's bucket
// is within one cell of q's centroid cell, and a lookup needs only the 3^m
// neighboring buckets. Inserts are incremental (append to one bucket); the
// grid is rebuilt only when a new region is wider than the current cells or
// an absorb compacts the region array — the amortized rebuild discipline of
// the history store's sorted-run flushes.
type mdGrid struct {
	built bool
	cell  []float64        // per-dimension cell width (max gridable width × slack)
	seen  []float64        // per-dimension max width over gridable (finite) regions
	cells map[string][]int // centroid cell key -> indices into regions
	loose []int            // regions the grid can't bucket (non-finite boxes)
}

// gridCellSlack inflates cell widths above the maximum region width, so the
// real centroid-distance ratio |cR−cq|/cell stays strictly below 1 even for
// the widest region; float division rounding (~1 ulp) then cannot push two
// cell boundaries between the two centroids, making the ±1 integer-cell
// neighborhood in Lookup provably sufficient.
const gridCellSlack = 1 + 1e-6

// NewDenseMD returns an empty MD dense index.
func NewDenseMD() *DenseMD { return &DenseMD{} }

// AddCrawlCost accumulates queries spent crawling.
func (d *DenseMD) AddCrawlCost(n int64) { d.crawlCost.Add(n) }

// CrawlCost returns queries charged to MD index construction.
func (d *DenseMD) CrawlCost() int64 { return d.crawlCost.Load() }

// cellOf returns the integer cell coordinates of point z under the grid's
// cell widths. All key derivation goes through this single floor, so
// neighbor enumeration can work on exact integers (re-flooring perturbed
// float coordinates can skip a cell at boundaries).
func (g *mdGrid) cellOf(z []float64) []int64 {
	c := make([]int64, len(z))
	for j, v := range z {
		c[j] = int64(math.Floor(v / g.cell[j]))
	}
	return c
}

// cellKey encodes integer cell coordinates as a map key.
func cellKey(coords []int64) string {
	var buf [8]byte
	key := make([]byte, 0, len(coords)*8)
	for _, c := range coords {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		key = append(key, buf[:]...)
	}
	return string(key)
}

// centroid returns the box's per-dimension midpoints. Finite boxes only.
func centroid(b query.Box) []float64 {
	z := make([]float64, len(b.Dims))
	for j, iv := range b.Dims {
		z[j] = iv.Lo + (iv.Hi-iv.Lo)/2
	}
	return z
}

// gridable reports whether the box can live in a centroid bucket.
func gridable(b query.Box) bool { return b.IsFinite() }

// place adds region idx to its centroid bucket (or the loose list).
func (g *mdGrid) place(idx int, b query.Box) {
	if !gridable(b) {
		g.loose = append(g.loose, idx)
		return
	}
	key := cellKey(g.cellOf(centroid(b)))
	g.cells[key] = append(g.cells[key], idx)
}

// rebuild reconstructs the grid over the current region array. Cell widths
// are the maximum region width per dimension (minimum 1 so point-sized
// regions still hash; the containment check keeps correctness regardless of
// cell size — widths only bound how far a containing region's bucket can be).
func (d *DenseMD) rebuild() {
	if len(d.regions) == 0 {
		d.grid = mdGrid{}
		return
	}
	m := len(d.regions[0].Box.Dims)
	g := mdGrid{
		built: true,
		cell:  make([]float64, m),
		seen:  make([]float64, m),
		cells: make(map[string][]int, len(d.regions)),
	}
	for _, r := range d.regions {
		if !gridable(r.Box) {
			continue
		}
		for j, iv := range r.Box.Dims {
			if w := iv.Hi - iv.Lo; w > g.seen[j] {
				g.seen[j] = w
			}
		}
	}
	for j := range g.cell {
		g.cell[j] = math.Max(g.seen[j], 1) * gridCellSlack
	}
	for i, r := range d.regions {
		g.place(i, r.Box)
	}
	d.grid = g
}

// Lookup returns a recorded region fully covering box, if any.
func (d *DenseMD) Lookup(box query.Box) (Region, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if !d.grid.built {
		for _, r := range d.regions {
			if r.Box.ContainsBox(box) {
				return r, true
			}
		}
		return Region{}, false
	}
	for _, i := range d.grid.loose {
		if d.regions[i].Box.ContainsBox(box) {
			return d.regions[i], true
		}
	}
	if !gridable(box) {
		// A non-finite box fits only inside a non-finite region, and those
		// all live in the loose list scanned above.
		return Region{}, false
	}
	// Walk the 3^m cells around the lookup centroid: a containing region's
	// centroid lies within one (slack-inflated) cell width on every
	// dimension, so its integer cell index differs by at most 1. One
	// backing array serves both coordinate slices (base stays fixed while
	// coords varies during the walk).
	m := len(box.Dims)
	backing := make([]int64, 2*m)
	base, coords := backing[:m], backing[m:]
	for j, iv := range box.Dims {
		base[j] = int64(math.Floor((iv.Lo + (iv.Hi-iv.Lo)/2) / d.grid.cell[j]))
	}
	var found Region
	ok := d.walkCells(box, base, coords, 0, &found)
	return found, ok
}

// walkCells recurses over the ±1 integer-cell neighborhood of base,
// checking each visited bucket's regions for containment of box. It reports
// whether a containing region was found (written to found).
func (d *DenseMD) walkCells(box query.Box, base, coords []int64, j int, found *Region) bool {
	if j == len(base) {
		for _, i := range d.grid.cells[cellKey(coords)] {
			if d.regions[i].Box.ContainsBox(box) {
				*found = d.regions[i]
				return true
			}
		}
		return false
	}
	for _, off := range [3]int64{0, -1, 1} {
		coords[j] = base[j] + off
		if d.walkCells(box, base, coords, j+1, found) {
			return true
		}
	}
	return false
}

// Insert records a fully-crawled box at FirstEpoch; see InsertEpoch.
func (d *DenseMD) Insert(box query.Box, tuples []types.Tuple) {
	d.InsertEpoch(box, tuples, FirstEpoch)
}

// InsertEpoch records a fully-crawled box under the given knowledge epoch.
// Regions contained in the new box are absorbed (their tuples are a subset
// of the fresh crawl, so the absorbing region carries the *new* epoch — the
// crawl just re-verified everything inside it).
func (d *DenseMD) InsertEpoch(box query.Box, tuples []types.Tuple, epoch int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	merged := append([]types.Tuple(nil), tuples...)
	kept := make([]Region, 0, len(d.regions)+1)
	for _, r := range d.regions {
		if box.ContainsBox(r.Box) {
			continue
		}
		kept = append(kept, r)
	}
	absorbed := len(kept) != len(d.regions)
	d.regions = append(kept, Region{Box: box, Tuples: merged, Epoch: epoch})
	switch {
	case !d.grid.built, absorbed, d.widerThanCells(box):
		// Stored bucket indices shifted (absorb) or the cell-width
		// invariant broke (a wider region arrived): rebuild, amortized.
		d.rebuild()
	default:
		d.grid.place(len(d.regions)-1, box)
	}
}

// widerThanCells reports whether box breaks the grid's cell-width invariant
// on some dimension: every bucketed width must stay at most cell/slack,
// preserving the strict ratio bound the ±1 lookup neighborhood relies on.
// A true return triggers rebuild, which recomputes widths from scratch.
func (d *DenseMD) widerThanCells(box query.Box) bool {
	if !gridable(box) {
		return false // goes to the loose list; widths don't matter
	}
	for j, iv := range box.Dims {
		if (iv.Hi-iv.Lo)*gridCellSlack > d.grid.cell[j] {
			return true
		}
	}
	return false
}

// Promote raises the epoch of the region whose Box equals box exactly (a
// re-validation confirmed its contents). Reports whether the region was
// found; an already-newer epoch is kept.
func (d *DenseMD) Promote(box query.Box, epoch int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.regions {
		if sameBox(d.regions[i].Box, box) {
			if d.regions[i].Epoch < epoch {
				d.regions[i].Epoch = epoch
			}
			return true
		}
	}
	return false
}

// Remove evicts the region whose Box equals box exactly (a re-validation
// found drift). The grid is rebuilt since stored bucket indices shift.
// Reports whether a region was removed.
func (d *DenseMD) Remove(box query.Box) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.regions {
		if sameBox(d.regions[i].Box, box) {
			d.regions = append(d.regions[:i:i], d.regions[i+1:]...)
			d.rebuild()
			return true
		}
	}
	return false
}

// StaleCount returns the number of recorded regions whose epoch trails cur.
func (d *DenseMD) StaleCount(cur int64) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, r := range d.regions {
		if r.Epoch < cur {
			n++
		}
	}
	return n
}

// sameBox reports exact (dimension-wise) box equality.
func sameBox(a, b query.Box) bool {
	if len(a.Dims) != len(b.Dims) {
		return false
	}
	for j := range a.Dims {
		if a.Dims[j] != b.Dims[j] {
			return false
		}
	}
	return true
}

// Len returns the number of recorded regions.
func (d *DenseMD) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.regions)
}

// GridStats describes the centroid grid's shape for observability.
type GridStats struct {
	Regions   int // recorded regions
	Buckets   int // occupied grid cells
	MaxBucket int // largest bucket population (lookup worst case × 3^m)
	Loose     int // regions outside the grid (non-finite boxes)
}

// Stats returns the index's current grid statistics.
func (d *DenseMD) Stats() GridStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st := GridStats{Regions: len(d.regions), Loose: len(d.grid.loose)}
	st.Buckets = len(d.grid.cells)
	for _, b := range d.grid.cells {
		if len(b) > st.MaxBucket {
			st.MaxBucket = len(b)
		}
	}
	return st
}

// Export returns a copy of the recorded regions (for persistence and
// inspection). Region tuple slices are shared and must not be modified.
func (d *DenseMD) Export() []Region {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Region(nil), d.regions...)
}
