// Package index implements the on-the-fly dense-region indexes of §3.2.2
// (1D) and §4.4 (MD).
//
// A dense region is a small interval (or box) packed with many tuples;
// binary-search-style probing degenerates there, and the same region tends
// to be revisited by many different user queries. The index records regions
// that have been *fully crawled*: once crawled, any future visit inside a
// recorded region is answered locally with zero database queries.
//
// The crawl itself is generic — it deliberately ignores the user query's
// selection condition (Algorithm 4's design note) so the work amortizes
// across all future user queries.
package index

import (
	"sort"

	"repro/internal/query"
	"repro/internal/types"
)

// Interval1D is one fully-crawled value interval on a single attribute,
// together with every tuple of the *entire database* whose attribute value
// lies inside it.
type Interval1D struct {
	Range  types.Interval
	Tuples []types.Tuple // sorted ascending by the attribute
}

// Dense1D is the per-attribute dense index: a set of disjoint fully-crawled
// intervals per ordinal attribute.
type Dense1D struct {
	// regions[attr] is sorted by Range.Lo and pairwise disjoint.
	regions map[int][]Interval1D
	// crawlCost counts database queries spent building the index,
	// reported separately by the experiments (Theorem 3 accounting).
	crawlCost int64
}

// NewDense1D returns an empty 1D dense index.
func NewDense1D() *Dense1D {
	return &Dense1D{regions: make(map[int][]Interval1D)}
}

// AddCrawlCost accumulates queries spent crawling into the index's ledger.
func (d *Dense1D) AddCrawlCost(n int64) { d.crawlCost += n }

// CrawlCost returns the total queries charged to index construction.
func (d *Dense1D) CrawlCost() int64 { return d.crawlCost }

// Lookup returns the crawled interval covering [iv] on attr, if any. The
// requested interval must be entirely inside a recorded region for the
// answer to be authoritative.
func (d *Dense1D) Lookup(attr int, iv types.Interval) (Interval1D, bool) {
	regs := d.regions[attr]
	i := sort.Search(len(regs), func(i int) bool { return regs[i].Range.Hi >= iv.Lo })
	if i < len(regs) && covers1D(regs[i].Range, iv) {
		return regs[i], true
	}
	return Interval1D{}, false
}

// covers1D reports whether outer fully contains inner.
func covers1D(outer, inner types.Interval) bool {
	if inner.Lo < outer.Lo || (inner.Lo == outer.Lo && outer.LoOpen && !inner.LoOpen) {
		return false
	}
	if inner.Hi > outer.Hi || (inner.Hi == outer.Hi && outer.HiOpen && !inner.HiOpen) {
		return false
	}
	return true
}

// Insert records a fully-crawled interval with its tuples (which must be
// every database tuple whose attr value falls inside rng). Overlapping or
// adjacent existing regions are merged; tuples are deduplicated by ID.
func (d *Dense1D) Insert(attr int, rng types.Interval, tuples []types.Tuple) {
	merged := Interval1D{Range: rng, Tuples: append([]types.Tuple(nil), tuples...)}
	var keep []Interval1D
	for _, r := range d.regions[attr] {
		if r.Range.Hi < rng.Lo || r.Range.Lo > rng.Hi {
			keep = append(keep, r)
			continue
		}
		// Overlap: merge ranges and tuple sets.
		if r.Range.Lo < merged.Range.Lo || (r.Range.Lo == merged.Range.Lo && !r.Range.LoOpen) {
			merged.Range.Lo, merged.Range.LoOpen = r.Range.Lo, r.Range.LoOpen
		}
		if r.Range.Hi > merged.Range.Hi || (r.Range.Hi == merged.Range.Hi && !r.Range.HiOpen) {
			merged.Range.Hi, merged.Range.HiOpen = r.Range.Hi, r.Range.HiOpen
		}
		merged.Tuples = append(merged.Tuples, r.Tuples...)
	}
	merged.Tuples = dedupeSort(merged.Tuples, attr)
	keep = append(keep, merged)
	sort.Slice(keep, func(i, j int) bool { return keep[i].Range.Lo < keep[j].Range.Lo })
	d.regions[attr] = keep
}

// Regions returns the number of recorded regions for attr.
func (d *Dense1D) Regions(attr int) int { return len(d.regions[attr]) }

// Export returns the recorded regions for attr (for persistence and
// inspection). The returned slice must not be modified.
func (d *Dense1D) Export(attr int) []Interval1D { return d.regions[attr] }

// TotalTuples returns the number of tuples stored across all regions of
// attr.
func (d *Dense1D) TotalTuples(attr int) int {
	n := 0
	for _, r := range d.regions[attr] {
		n += len(r.Tuples)
	}
	return n
}

func dedupeSort(ts []types.Tuple, attr int) []types.Tuple {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Ord[attr] != ts[j].Ord[attr] {
			return ts[i].Ord[attr] < ts[j].Ord[attr]
		}
		return ts[i].ID < ts[j].ID
	})
	out := ts[:0]
	lastID := -1 << 62
	seen := make(map[int]bool, len(ts))
	for _, t := range ts {
		if seen[t.ID] {
			continue
		}
		seen[t.ID] = true
		out = append(out, t)
	}
	_ = lastID
	return out
}

// MinMatching returns the tuple with the smallest attr value inside iv that
// matches q, searching the recorded region reg. ok is false when no stored
// tuple qualifies (authoritative: the region was fully crawled).
func (r Interval1D) MinMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	i := sort.Search(len(r.Tuples), func(i int) bool { return r.Tuples[i].Ord[attr] >= iv.Lo })
	for ; i < len(r.Tuples); i++ {
		v := r.Tuples[i].Ord[attr]
		if !iv.Contains(v) {
			if v > iv.Hi {
				break
			}
			continue
		}
		if q.Matches(r.Tuples[i]) {
			return r.Tuples[i], true
		}
	}
	return types.Tuple{}, false
}

// MaxMatching mirrors MinMatching for descending scans.
func (r Interval1D) MaxMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	i := sort.Search(len(r.Tuples), func(i int) bool { return r.Tuples[i].Ord[attr] > iv.Hi })
	for i--; i >= 0; i-- {
		v := r.Tuples[i].Ord[attr]
		if !iv.Contains(v) {
			if v < iv.Lo {
				break
			}
			continue
		}
		if q.Matches(r.Tuples[i]) {
			return r.Tuples[i], true
		}
	}
	return types.Tuple{}, false
}

// Region is one fully-crawled axis-space box with every database tuple
// inside it, used by the MD dense index (Algorithm 6).
type Region struct {
	Box    query.Box
	Tuples []types.Tuple
}

// DenseMD records fully-crawled boxes in the axis space of one ranker.
// Lookups are linear in the number of regions, which Theorem 3's argument
// keeps small (dense regions are rare by construction when c = n).
type DenseMD struct {
	regions   []Region
	crawlCost int64
}

// NewDenseMD returns an empty MD dense index.
func NewDenseMD() *DenseMD { return &DenseMD{} }

// AddCrawlCost accumulates queries spent crawling.
func (d *DenseMD) AddCrawlCost(n int64) { d.crawlCost += n }

// CrawlCost returns queries charged to MD index construction.
func (d *DenseMD) CrawlCost() int64 { return d.crawlCost }

// Lookup returns a recorded region fully covering box, if any.
func (d *DenseMD) Lookup(box query.Box) (Region, bool) {
	for _, r := range d.regions {
		if r.Box.ContainsBox(box) {
			return r, true
		}
	}
	return Region{}, false
}

// Insert records a fully-crawled box. Regions contained in the new box are
// absorbed.
func (d *DenseMD) Insert(box query.Box, tuples []types.Tuple) {
	kept := d.regions[:0]
	merged := append([]types.Tuple(nil), tuples...)
	for _, r := range d.regions {
		if box.ContainsBox(r.Box) {
			continue // absorbed; its tuples are a subset of the crawl
		}
		kept = append(kept, r)
	}
	d.regions = append(kept, Region{Box: box, Tuples: merged})
}

// Len returns the number of recorded regions.
func (d *DenseMD) Len() int { return len(d.regions) }
