// The commit journal: an append-only log of CRC-framed JSON records. Each
// line is "<crc32c-hex8> <json>\n"; the checksum covers the JSON bytes, so a
// torn append (crash mid-write) is detected as a bad tail line rather than
// silently parsed. The journal is the store's commit point: a record is
// committed once its line is written AND fsynced.

package segment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// journalRecord is one journal line. Kind selects which fields are set:
//
//	"header"  — first line of every journal: format + fingerprint
//	"delta"   — an inline checkpoint delta (small deltas skip the file)
//	"segment" — a commit of an immutable segment file, by name + SHA-256
type journalRecord struct {
	Kind string `json:"kind"`
	// header fields
	Format      int          `json:"format,omitempty"`
	Fingerprint *Fingerprint `json:"fingerprint,omitempty"`
	// commit fields
	Seq   uint64 `json:"seq,omitempty"`
	Delta *Delta `json:"delta,omitempty"`
	// segment-commit fields
	File   string `json:"file,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
	Deltas int    `json:"deltas,omitempty"` // delta count inside the file
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord frames one journal line: crc32c of the JSON payload, a
// space, the payload, a newline.
func encodeRecord(rec *journalRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(body)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(body, crcTable))
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// decodeLine parses one framed journal line (without its trailing newline).
func decodeLine(line []byte) (*journalRecord, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("segment: journal line too short or unframed")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("segment: journal line checksum field: %w", err)
	}
	body := line[9:]
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("segment: journal line checksum mismatch (%08x != %08x)", got, want)
	}
	var rec journalRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		return nil, fmt.Errorf("segment: journal line decode: %w", err)
	}
	return &rec, nil
}

// scanJournal reads every valid record from the head of the journal file.
// It stops at the first invalid line — a torn tail from a crash mid-append —
// and reports how many bytes of valid prefix precede it and whether a torn
// tail was found. A final line without a newline is torn by definition (the
// append did not complete).
func scanJournal(path string) (recs []*journalRecord, validBytes int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// EOF with a partial (newline-less) line is a torn append;
			// clean EOF ends the scan.
			return recs, validBytes, len(line) > 0, nil
		}
		rec, derr := decodeLine(bytes.TrimSuffix(line, []byte("\n")))
		if derr != nil {
			return recs, validBytes, true, nil
		}
		recs = append(recs, rec)
		validBytes += int64(len(line))
	}
}
