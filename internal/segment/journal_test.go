package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalLineRoundTrip(t *testing.T) {
	rec := &journalRecord{Kind: "delta", Seq: 7, Delta: &Delta{
		HistLo: 3, HistHi: 5,
		Hist:    []Tuple{{ID: 1, Ord: []float64{1, 2}}, {ID: 2, Ord: []float64{3, 4}, Cat: map[string]string{"c": "x"}}},
		Dense1:  []Dense1Op{{Attr: 1, Dim: Dim{Lo: 0, Hi: 9, HiOpen: true}, IDs: []int{1, 2}}},
		Queries: 42,
	}}
	line, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatalf("line not newline-terminated")
	}
	got, err := decodeLine(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "delta" || got.Seq != 7 || got.Delta == nil || got.Delta.Queries != 42 ||
		len(got.Delta.Hist) != 2 || got.Delta.Hist[1].Cat["c"] != "x" ||
		len(got.Delta.Dense1) != 1 || !got.Delta.Dense1[0].Dim.HiOpen {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestJournalLineRejectsCorruption(t *testing.T) {
	line, err := encodeRecord(&journalRecord{Kind: "header", Format: Format, Fingerprint: &Fingerprint{Schema: []string{"a"}}})
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.TrimSuffix(line, []byte("\n"))

	// Flip one payload byte: the CRC must catch it.
	flipped := append([]byte(nil), body...)
	flipped[len(flipped)-2] ^= 0x40
	if _, err := decodeLine(flipped); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	// Truncated line (torn append).
	if _, err := decodeLine(body[:len(body)/2]); err == nil {
		t.Fatal("truncated line accepted")
	}
	// Unframed garbage.
	if _, err := decodeLine([]byte("not a journal line")); err == nil {
		t.Fatal("unframed line accepted")
	}
	if _, err := decodeLine(nil); err == nil {
		t.Fatal("empty line accepted")
	}
}

func TestScanJournalStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	l1, _ := encodeRecord(&journalRecord{Kind: "header", Format: Format, Fingerprint: &Fingerprint{Schema: []string{"a"}}})
	l2, _ := encodeRecord(&journalRecord{Kind: "delta", Seq: 1, Delta: &Delta{Queries: 1}})
	var content []byte
	content = append(content, l1...)
	content = append(content, l2...)
	valid := int64(len(content))
	content = append(content, l2[:len(l2)/2]...) // torn third line
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, bytesOK, torn, err := scanJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !torn || bytesOK != valid {
		t.Fatalf("got %d records, torn=%v, %d valid bytes; want 2, true, %d", len(recs), torn, bytesOK, valid)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := WriteBytesAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteBytesAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("read %q, %v", got, err)
	}
	// No temp litter left behind.
	names, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if len(names) != 0 {
		t.Fatalf("temp files left behind: %v", names)
	}
	// A failing writer must not touch the destination.
	if err := WriteFileAtomic(path, func(f *os.File) error { return os.ErrInvalid }); err == nil {
		t.Fatal("writer failure not propagated")
	}
	got, _ = os.ReadFile(path)
	if string(got) != "two" {
		t.Fatalf("failed write clobbered destination: %q", got)
	}
}
