// Package segment is the crash-safe persistence layer for accumulated
// reranking knowledge: immutable, fingerprinted segment files plus an
// append-only commit journal, in the style of a data lake's object store
// (immutable data objects + commit log + compaction).
//
// # Why not a monolithic snapshot
//
// The engine's whole value is knowledge accumulated from a rate-limited
// upstream. A snapshot written only at graceful shutdown loses everything
// since the last clean drain on a crash, and rewriting all knowledge on
// every save is a stop-the-world cost that grows with the knowledge itself.
// This package persists knowledge *incrementally*: each checkpoint commits
// only the delta since the previous one, serving traffic never blocks on a
// full rewrite, and recovery replays the committed prefix exactly.
//
// # On-disk layout
//
//	<dir>/journal              append-only commit log (CRC-framed JSON lines)
//	<dir>/segments/<seq>-<sha>.seg   immutable segment files
//	<dir>/quarantine/          corrupt or foreign files moved aside at open
//
// The journal is the single source of truth: a segment file exists logically
// only once a journal record referencing it (by name and content SHA-256) is
// durable. Small deltas are inlined directly into the journal record; large
// ones are sealed into a segment file first, then committed by reference.
// Every append is fsynced, and every file write goes through WriteFileAtomic
// (temp + fsync + rename + parent-directory fsync), so a crash at any point
// leaves either the previous committed state or the new one — never a torn
// or empty file that parses as truth.
//
// # Recovery semantics
//
// Open scans the journal and keeps the longest valid prefix: a torn tail
// (partial line, bad CRC, invalid JSON — the classic crash-mid-append
// shapes) is truncated away with a logged warning. Replay walks the
// committed records in order; a referenced segment file that is missing or
// fails its SHA-256 check is quarantined and replay stops at the last record
// before it — knowledge committed before the corruption survives intact,
// and the journal is rewritten to that valid prefix so disk state and
// replayed state agree. A fingerprint mismatch (the store belongs to a
// different upstream deployment) quarantines the whole store and starts
// fresh rather than serving another corpus's knowledge.
//
// # Compaction
//
// The journal and segment count grow with checkpoint count, not knowledge
// size, so once enough records accumulate the store folds every committed
// delta into one segment file and rewrites the journal to a single commit
// record. Compaction is a pure fold of already-committed deltas — it never
// reads live engine state — so it commutes with concurrent serving and a
// crash mid-compaction recovers to either the old record chain or the new
// single record.
package segment

import (
	"encoding/json"
	"fmt"

	"repro/internal/acquire"
)

// Format is the segment/journal format version this package reads and
// writes.
const Format = 1

// Fingerprint identifies the upstream deployment a store's knowledge came
// from. Cached probe answers replay one specific upstream's responses
// verbatim and dense regions assert completeness against one specific
// corpus, so a store is only replayed into an engine whose upstream matches.
type Fingerprint struct {
	// Schema is the upstream's attribute names, in order.
	Schema []string `json:"schema"`
	// UpstreamK is the upstream interface's system k (0 = unknown).
	UpstreamK int `json:"upstreamK,omitempty"`
	// UpstreamRanker names the upstream's system ranking ("" = unknown,
	// e.g. remote upstreams that don't expose it).
	UpstreamRanker string `json:"upstreamRanker,omitempty"`
}

// Matches reports whether two fingerprints describe the same upstream
// deployment. Schemas must be identical; k and ranker are compared only when
// both sides know them (an unknown side skips that comparison, mirroring the
// snapshot loader's fingerprint gate).
func (f Fingerprint) Matches(other Fingerprint) bool {
	if len(f.Schema) != len(other.Schema) {
		return false
	}
	for i := range f.Schema {
		if f.Schema[i] != other.Schema[i] {
			return false
		}
	}
	if f.UpstreamK != 0 && other.UpstreamK != 0 && f.UpstreamK != other.UpstreamK {
		return false
	}
	if f.UpstreamRanker != "" && other.UpstreamRanker != "" && f.UpstreamRanker != other.UpstreamRanker {
		return false
	}
	return true
}

// Tuple is one serialized tuple payload.
type Tuple struct {
	ID  int               `json:"id"`
	Ord []float64         `json:"ord"`
	Cat map[string]string `json:"cat,omitempty"`
}

// Dim is one closed/open interval bound of a region.
type Dim struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	LoOpen bool    `json:"loOpen,omitempty"`
	HiOpen bool    `json:"hiOpen,omitempty"`
}

// Dense1Op is one recorded 1D dense-region insert: replaying the recorded
// ops in order through the live Insert path rebuilds the index exactly as
// the original engine built it.
type Dense1Op struct {
	Attr int   `json:"attr"`
	Dim  Dim   `json:"dim"`
	IDs  []int `json:"ids"`
	// Epoch is the knowledge epoch the region was acquired under; 0 (older
	// formats) replays as the first epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// MDOp is one recorded MD dense-region insert over a canonical (sorted
// ascending) attribute subset.
type MDOp struct {
	Attrs []int `json:"attrs"`
	Dims  []Dim `json:"dims"`
	IDs   []int `json:"ids"`
	// Epoch is the knowledge epoch the region was acquired under; 0 (older
	// formats) replays as the first epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// ProbeOp is one recorded complete probe answer entering the coalescing
// LRU: the canonical query key and the answered tuple IDs in upstream rank
// order. Only complete (valid/underflow) answers are ever recorded.
type ProbeOp struct {
	Key string `json:"key"`
	IDs []int  `json:"ids"`
	// Epoch is the knowledge epoch the answer was learned under; 0 (older
	// formats) replays as the first epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// Delta is one checkpoint's knowledge increment: the history arena rows
// appended since the previous checkpoint, the dense-region and probe-cache
// operations recorded since then, and payloads for every tuple an operation
// references that is not covered by the committed history prefix. Replaying
// all committed deltas in order through the engine's live insert paths
// reconstructs the knowledge exactly.
type Delta struct {
	// HistLo/HistHi bound the history arena rows this delta carries:
	// Hist[i] is arena row HistLo+i, and HistHi == HistLo + len(Hist).
	// Deltas commit contiguous, non-overlapping row ranges.
	HistLo int     `json:"histLo"`
	HistHi int     `json:"histHi"`
	Hist   []Tuple `json:"hist,omitempty"`
	// Tuples resolves operation tuple IDs that are not in the committed
	// history (rows < HistHi), e.g. under DisableHistory.
	Tuples  []Tuple    `json:"tuples,omitempty"`
	Dense1  []Dense1Op `json:"dense1,omitempty"`
	DenseMD []MDOp     `json:"denseMD,omitempty"`
	Probes  []ProbeOp  `json:"probes,omitempty"`
	// Heat, when present, is the engine's request-window heat sketch at
	// capture time (acquire.HeatExport). Replay is last-wins across
	// deltas, so only the newest capture matters; older formats without
	// the field replay as nil and leave heat cold.
	Heat *acquire.HeatExport `json:"heat,omitempty"`
	// Epoch, when non-zero, is the namespace knowledge epoch at capture
	// time, committed only by checkpoints that observed an epoch bump.
	// Replay restores it forward-only (epochs never move backward).
	Epoch int64 `json:"epoch,omitempty"`
	// Queries is the engine's lifetime upstream-query counter at capture
	// time (informational; surfaced by stats, not restored).
	Queries int64 `json:"queries"`
}

// Empty reports whether the delta carries no knowledge at all. A delta
// holding only a heat capture or an epoch bump counts as non-empty: both
// are knowledge worth committing on their own (an un-persisted bump would
// resurrect stale knowledge as current after a restart).
func (d *Delta) Empty() bool {
	return len(d.Hist) == 0 && len(d.Tuples) == 0 &&
		len(d.Dense1) == 0 && len(d.DenseMD) == 0 && len(d.Probes) == 0 &&
		d.Heat == nil && d.Epoch == 0
}

// segmentFile is the serialized form of one immutable segment: a batch of
// deltas in commit order under the store's fingerprint.
type segmentFile struct {
	Format      int         `json:"format"`
	Fingerprint Fingerprint `json:"fingerprint"`
	Deltas      []*Delta    `json:"deltas"`
}

// encodeSegment serializes a segment file body.
func encodeSegment(fp Fingerprint, deltas []*Delta) ([]byte, error) {
	return json.Marshal(segmentFile{Format: Format, Fingerprint: fp, Deltas: deltas})
}

// decodeSegment parses and validates a segment file body against the
// store's fingerprint.
func decodeSegment(data []byte, fp Fingerprint) (*segmentFile, error) {
	var sf segmentFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("segment: decode: %w", err)
	}
	if sf.Format != Format {
		return nil, fmt.Errorf("segment: format %d, want %d", sf.Format, Format)
	}
	if !sf.Fingerprint.Matches(fp) {
		return nil, fmt.Errorf("segment: fingerprint mismatch")
	}
	return &sf, nil
}
