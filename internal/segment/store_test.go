package segment

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var testFP = Fingerprint{Schema: []string{"price", "carat"}, UpstreamK: 10, UpstreamRanker: "sys+"}

// testDelta builds a distinguishable delta; pad makes it big enough to
// force the segment-file path under a small InlineLimit.
func testDelta(i, pad int) *Delta {
	d := &Delta{
		HistLo:  i * 2,
		HistHi:  i*2 + 2,
		Hist:    []Tuple{{ID: i * 2, Ord: []float64{float64(i), 1}}, {ID: i*2 + 1, Ord: []float64{float64(i), 2}}},
		Probes:  []ProbeOp{{Key: fmt.Sprintf("probe-%d", i), IDs: []int{i * 2}}},
		Queries: int64(i + 1),
	}
	for j := 0; j < pad; j++ {
		d.Hist = append(d.Hist, Tuple{ID: 1000 + i*pad + j, Ord: []float64{float64(j), float64(j)}})
	}
	return d
}

func replayAll(t *testing.T, s *Store) []*Delta {
	t.Helper()
	var out []*Delta
	if err := s.Replay(func(d *Delta) error { out = append(out, d); return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}

func deltasEqual(a, b *Delta) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}

func TestStoreAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Tiny inline limit: delta 1 stays inline, the padded delta 2 becomes
	// a segment file.
	s, err := Open(dir, Options{Fingerprint: testFP, InlineLimit: 400, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []*Delta{testDelta(0, 0), testDelta(1, 50), testDelta(2, 0)}
	for _, d := range want {
		if err := s.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Checkpoints != 3 || st.JournalRecords != 3 || st.SegmentFiles != 1 || st.Seq != 3 {
		t.Fatalf("stats after appends: %+v", st)
	}
	s.Close()

	// Reopen cold (as after a kill -9: no clean shutdown beyond the fsyncs
	// Append already did) and replay.
	s2, err := Open(dir, Options{Fingerprint: testFP, InlineLimit: 400, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := replayAll(t, s2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d deltas, want %d", len(got), len(want))
	}
	for i := range want {
		if !deltasEqual(got[i], want[i]) {
			t.Fatalf("delta %d mismatch", i)
		}
	}
	if st := s2.Stats(); st.ReplayedDeltas != 3 || st.DroppedRecords != 0 {
		t.Fatalf("replay stats: %+v", st)
	}
}

func TestStoreRecoversFromTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: testFP, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDelta(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDelta(1, 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash mid-append: garbage half-line at the journal tail.
	f, err := os.OpenFile(filepath.Join(dir, "journal"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"kind":"delta","seq":3,"del`)
	f.Close()

	s2, err := Open(dir, Options{Fingerprint: testFP, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, s2)
	if len(got) != 2 {
		t.Fatalf("replayed %d deltas after torn tail, want 2", len(got))
	}
	if st := s2.Stats(); st.DroppedRecords != 1 || st.Seq != 2 {
		t.Fatalf("stats after torn-tail recovery: %+v", st)
	}
	// The journal was truncated to the valid prefix: appends work and a
	// third open sees a clean log.
	if err := s2.Append(testDelta(2, 0)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir, Options{Fingerprint: testFP, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := replayAll(t, s3); len(got) != 3 {
		t.Fatalf("replayed %d deltas after repair+append, want 3", len(got))
	}
	if st := s3.Stats(); st.DroppedRecords != 0 {
		t.Fatalf("repaired journal still dropping records: %+v", st)
	}
}

func TestStoreQuarantinesCorruptSegmentAndKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: testFP, InlineLimit: 1, CompactAfter: -1}) // everything becomes a file
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testDelta(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Corrupt the second committed segment file.
	names, _ := filepath.Glob(filepath.Join(dir, "segments", "*.seg"))
	if len(names) != 3 {
		t.Fatalf("want 3 segment files, got %v", names)
	}
	data, _ := os.ReadFile(names[1])
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(names[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Fingerprint: testFP, InlineLimit: 1, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, s2)
	if len(got) != 1 || !deltasEqual(got[0], testDelta(0, 0)) {
		t.Fatalf("replayed %d deltas, want exactly the pre-corruption prefix (1)", len(got))
	}
	st := s2.Stats()
	if st.DroppedRecords != 2 { // the corrupt record and its successor
		t.Fatalf("dropped %d records, want 2 (%+v)", st.DroppedRecords, st)
	}
	// The bad file (and the now-orphaned third) moved to quarantine, and
	// the journal was rewritten to the valid prefix.
	qnames, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(qnames) == 0 {
		t.Fatal("nothing quarantined")
	}
	if err := s2.Append(testDelta(9, 0)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir, Options{Fingerprint: testFP, InlineLimit: 1, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := replayAll(t, s3); len(got) != 2 {
		t.Fatalf("replayed %d deltas after recovery+append, want 2", len(got))
	}
}

func TestStoreQuarantinesForeignFingerprint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: testFP, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDelta(0, 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	other := Fingerprint{Schema: []string{"price", "carat"}, UpstreamK: 25, UpstreamRanker: "sys-"}
	s2, err := Open(dir, Options{Fingerprint: other, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2); len(got) != 0 {
		t.Fatalf("foreign store replayed %d deltas, want 0", len(got))
	}
	qnames, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(qnames) == 0 {
		t.Fatal("foreign journal not quarantined")
	}
	// The fresh store works.
	if err := s2.Append(testDelta(1, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: testFP, InlineLimit: 400, CompactAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []*Delta{testDelta(0, 0), testDelta(1, 50), testDelta(2, 0), testDelta(3, 50)}
	for _, d := range want {
		if err := s.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions != 1 || st.JournalRecords != 1 || st.SegmentFiles != 1 {
		t.Fatalf("stats after auto-compaction: %+v", st)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "segments", "*.seg"))
	if len(names) != 1 {
		t.Fatalf("superseded segment files not removed: %v", names)
	}
	s.Close()

	s2, err := Open(dir, Options{Fingerprint: testFP, InlineLimit: 400, CompactAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := replayAll(t, s2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d deltas after compaction, want %d", len(got), len(want))
	}
	for i := range want {
		if !deltasEqual(got[i], want[i]) {
			t.Fatalf("delta %d mismatch after compaction", i)
		}
	}
}

func TestStoreAppendFailpointRollsBack(t *testing.T) {
	dir := t.TempDir()
	fail := ""
	s, err := Open(dir, Options{
		Fingerprint:  testFP,
		CompactAfter: -1,
		Failpoint: func(stage string) error {
			if stage == fail {
				return errors.New("injected writer failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDelta(0, 0)); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"journal-write", "journal-sync"} {
		fail = stage
		if err := s.Append(testDelta(1, 0)); err == nil {
			t.Fatalf("append with %s failpoint succeeded", stage)
		}
	}
	fail = ""
	// The failed appends rolled back: the retry commits cleanly and a cold
	// reopen sees exactly the committed records.
	if err := s.Append(testDelta(1, 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{Fingerprint: testFP, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2); len(got) != 2 {
		t.Fatalf("replayed %d deltas, want 2", len(got))
	}
	if st := s2.Stats(); st.DroppedRecords != 0 {
		t.Fatalf("rollback left a torn tail: %+v", st)
	}
}

func TestStoreSweepsUncommittedSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: testFP, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDelta(0, 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A segment file written but never committed (crash between the file
	// write and the journal append).
	stray := filepath.Join(dir, "segments", "99999999-deadbeefdead.seg")
	if err := os.WriteFile(stray, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Fingerprint: testFP, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("uncommitted segment file not swept")
	}
	if got := replayAll(t, s2); len(got) != 1 {
		t.Fatalf("replayed %d deltas, want 1", len(got))
	}
}
