// Durable file writes. The classic temp+rename idiom is atomic with respect
// to concurrent readers but NOT crash-safe on its own: without an fsync of
// the file a power loss after the rename can surface an empty or partial
// file under the final name, and without an fsync of the parent directory
// the rename itself may not survive. WriteFileAtomic does all three steps,
// and is shared by the journal/segment writers here and by cmd/rerankd's
// snapshot export.

package segment

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic durably writes data to path: it writes a temp file in the
// same directory, fsyncs it, renames it over path, then fsyncs the parent
// directory so the rename itself is durable. After a crash at any point,
// path holds either its previous content or the complete new content.
func WriteFileAtomic(path string, write func(f *os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(dir)
}

// WriteBytesAtomic is WriteFileAtomic for a ready-made byte slice.
func WriteBytesAtomic(path string, data []byte) error {
	return WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// SyncDir fsyncs a directory, making recent renames/creates/removes in it
// durable. Some platforms refuse to fsync directories; those errors are
// swallowed — the caller did its best-effort duty, matching the behavior of
// well-known storage engines on such filesystems.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is unsupported on some platforms/filesystems; treat
	// that as best-effort rather than failing the (already durable) write.
	_ = d.Sync()
	return nil
}
