// Store: the on-disk segment/journal knowledge store. See the package
// comment for the design; this file implements open/recovery, committed
// appends, replay, compaction, and quarantine of corrupt or foreign files.

package segment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Options configure a Store.
type Options struct {
	// Fingerprint identifies the upstream this store's knowledge belongs
	// to. An existing store whose fingerprint does not match is quarantined
	// wholesale at Open and a fresh store is started.
	Fingerprint Fingerprint
	// InlineLimit is the encoded-delta size (bytes) up to which a
	// checkpoint is inlined into its journal record instead of sealed into
	// a segment file. 0 means the default (64 KiB).
	InlineLimit int
	// CompactAfter triggers compaction once this many commit records
	// accumulate in the journal. 0 means the default (16); negative
	// disables automatic compaction.
	CompactAfter int
	// Logf receives recovery and compaction warnings (default: discard).
	Logf func(format string, args ...any)
	// Failpoint, when set, is invoked at named stages of Append ("segment",
	// "journal-write", "journal-sync"); returning an error aborts the
	// append at that stage. It exists so tests can simulate a persistence
	// writer dying mid-checkpoint.
	Failpoint func(stage string) error
}

func (o Options) withDefaults() Options {
	if o.InlineLimit == 0 {
		o.InlineLimit = 64 << 10
	}
	if o.CompactAfter == 0 {
		o.CompactAfter = 16
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats describe a store's on-disk and lifetime state.
type Stats struct {
	// Seq is the sequence number of the last committed record.
	Seq uint64 `json:"seq"`
	// JournalRecords is the number of committed commit records currently
	// in the journal (drops back to 1 after compaction).
	JournalRecords int `json:"journalRecords"`
	// SegmentFiles is the number of live immutable segment files.
	SegmentFiles int `json:"segmentFiles"`
	// Checkpoints counts successful Append calls since Open.
	Checkpoints int64 `json:"checkpoints"`
	// Compactions counts journal compactions since Open.
	Compactions int64 `json:"compactions"`
	// BytesAppended counts bytes durably written (journal + segments)
	// since Open.
	BytesAppended int64 `json:"bytesAppended"`
	// ReplayedDeltas is the number of committed deltas handed to Replay.
	ReplayedDeltas int `json:"replayedDeltas"`
	// DroppedRecords counts committed-looking records discarded during
	// open/replay recovery (torn journal tail lines, records referencing
	// corrupt segments).
	DroppedRecords int `json:"droppedRecords"`
}

// Store is an open segment/journal knowledge store. All methods are safe
// for concurrent use; Append and Compact serialize internally.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	journal  *os.File
	goodSize int64 // journal bytes known durable; rollback point for failed appends
	seq      uint64
	records  []*journalRecord // committed commit records, in order
	broken   bool             // a failed append could not be rolled back

	checkpoints    int64
	compactions    int64
	bytesAppended  int64
	replayedDeltas int
	dropped        int
}

// Open opens (or creates) the store in dir, recovering from any torn
// journal tail left by a crash. Foreign stores (fingerprint mismatch) are
// quarantined and a fresh store is started in their place.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{dir: dir, opts: opts}
	if err := os.MkdirAll(s.segmentsDir(), 0o755); err != nil {
		return nil, err
	}
	jpath := s.journalPath()
	if _, err := os.Stat(jpath); os.IsNotExist(err) {
		if err := s.initJournal(); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	} else if err := s.recover(); err != nil {
		return nil, err
	}
	s.sweepOrphans()
	var err error
	s.journal, err = os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if fi, err := s.journal.Stat(); err == nil {
		s.goodSize = fi.Size()
	}
	return s, nil
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, "journal") }
func (s *Store) segmentsDir() string { return filepath.Join(s.dir, "segments") }
func (s *Store) segmentPath(name string) string {
	return filepath.Join(s.segmentsDir(), name)
}

// initJournal writes a fresh journal holding only the header record.
func (s *Store) initJournal() error {
	line, err := encodeRecord(&journalRecord{Kind: "header", Format: Format, Fingerprint: &s.opts.Fingerprint})
	if err != nil {
		return err
	}
	return WriteBytesAtomic(s.journalPath(), line)
}

// recover scans an existing journal, truncating a torn tail and
// quarantining the whole store when it belongs to another upstream.
func (s *Store) recover() error {
	recs, validBytes, torn, err := scanJournal(s.journalPath())
	if err != nil {
		return err
	}
	if len(recs) == 0 || recs[0].Kind != "header" || recs[0].Format != Format ||
		recs[0].Fingerprint == nil || !recs[0].Fingerprint.Matches(s.opts.Fingerprint) {
		s.opts.Logf("segment: store at %s has no valid header or a foreign fingerprint; quarantining and starting cold", s.dir)
		s.dropped += len(recs)
		if err := s.quarantineAll(); err != nil {
			return err
		}
		return s.initJournal()
	}
	if torn {
		s.opts.Logf("segment: journal has a torn tail (crash mid-append); truncating to last committed record (%d bytes)", validBytes)
		s.dropped++
		if err := os.Truncate(s.journalPath(), validBytes); err != nil {
			return err
		}
		if err := SyncDir(s.dir); err != nil {
			return err
		}
	}
	for _, rec := range recs[1:] {
		switch rec.Kind {
		case "delta", "segment":
			s.records = append(s.records, rec)
			if rec.Seq > s.seq {
				s.seq = rec.Seq
			}
		default:
			// Unknown record kinds from a future format are not safely
			// skippable (later records may depend on them); treat like a
			// foreign store.
			s.opts.Logf("segment: journal holds unknown record kind %q; quarantining store", rec.Kind)
			s.records = nil
			s.seq = 0
			s.dropped += len(recs)
			if err := s.quarantineAll(); err != nil {
				return err
			}
			return s.initJournal()
		}
	}
	return nil
}

// quarantineAll moves the journal and every segment file into quarantine/.
func (s *Store) quarantineAll() error {
	if err := s.quarantine(s.journalPath()); err != nil && !os.IsNotExist(err) {
		return err
	}
	names, _ := filepath.Glob(filepath.Join(s.segmentsDir(), "*.seg"))
	for _, n := range names {
		if err := s.quarantine(n); err != nil {
			return err
		}
	}
	return nil
}

// quarantine moves one file aside under quarantine/ with a unique name.
func (s *Store) quarantine(path string) error {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(qdir, fmt.Sprintf("%d-%s", time.Now().UnixNano(), filepath.Base(path)))
	if err := os.Rename(path, dst); err != nil {
		return err
	}
	s.opts.Logf("segment: quarantined %s -> %s", path, dst)
	return SyncDir(s.dir)
}

// sweepOrphans quarantines segment files not referenced by the journal —
// leftovers of a crash between writing a segment and committing it, or
// between a compaction's journal rewrite and its cleanup.
func (s *Store) sweepOrphans() {
	referenced := make(map[string]bool, len(s.records))
	for _, rec := range s.records {
		if rec.Kind == "segment" {
			referenced[rec.File] = true
		}
	}
	names, _ := filepath.Glob(filepath.Join(s.segmentsDir(), "*.seg"))
	for _, n := range names {
		if !referenced[filepath.Base(n)] {
			s.opts.Logf("segment: uncommitted segment file %s (crash before commit); quarantining", filepath.Base(n))
			if err := s.quarantine(n); err != nil {
				s.opts.Logf("segment: quarantine %s: %v", n, err)
			}
		}
	}
}

// Replay hands every committed delta, in commit order, to fn. It must be
// called (once) before the first Append. If a committed segment file turns
// out missing or corrupt, it is quarantined, the journal is rewritten to
// the valid prefix, and replay stops there: knowledge committed before the
// corruption survives, later records are dropped with a logged warning.
func (s *Store) Replay(fn func(*Delta) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, rec := range s.records {
		var deltas []*Delta
		switch rec.Kind {
		case "delta":
			deltas = []*Delta{rec.Delta}
		case "segment":
			sf, err := s.readSegment(rec)
			if err != nil {
				s.opts.Logf("segment: committed segment %s unreadable (%v); quarantining and recovering to last good record", rec.File, err)
				if qerr := s.quarantine(s.segmentPath(rec.File)); qerr != nil && !os.IsNotExist(qerr) {
					s.opts.Logf("segment: quarantine %s: %v", rec.File, qerr)
				}
				return s.truncateRecordsLocked(i)
			}
			deltas = sf.Deltas
		}
		for _, d := range deltas {
			if err := fn(d); err != nil {
				s.opts.Logf("segment: replaying committed record seq %d failed (%v); recovering to last good record", rec.Seq, err)
				return s.truncateRecordsLocked(i)
			}
			s.replayedDeltas++
		}
	}
	return nil
}

// readSegment loads and verifies one committed segment file.
func (s *Store) readSegment(rec *journalRecord) (*segmentFile, error) {
	data, err := os.ReadFile(s.segmentPath(rec.File))
	if err != nil {
		return nil, err
	}
	if sum := shaHex(data); sum != rec.SHA256 {
		return nil, fmt.Errorf("sha256 %s, committed %s", sum, rec.SHA256)
	}
	return decodeSegment(data, s.opts.Fingerprint)
}

// truncateRecordsLocked drops committed records from index i on and
// rewrites the journal to match, so disk state agrees with what was
// replayed. Callers hold s.mu.
func (s *Store) truncateRecordsLocked(i int) error {
	s.dropped += len(s.records) - i
	s.records = s.records[:i]
	if err := s.rewriteJournalLocked(); err != nil {
		return err
	}
	s.sweepOrphans()
	return nil
}

// rewriteJournalLocked atomically rewrites the journal to header +
// s.records and repoints the append handle at the new file.
func (s *Store) rewriteJournalLocked() error {
	var buf []byte
	line, err := encodeRecord(&journalRecord{Kind: "header", Format: Format, Fingerprint: &s.opts.Fingerprint})
	if err != nil {
		return err
	}
	buf = append(buf, line...)
	for _, rec := range s.records {
		line, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
	}
	if err := WriteBytesAtomic(s.journalPath(), buf); err != nil {
		return err
	}
	if s.journal != nil {
		s.journal.Close()
	}
	s.journal, err = os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.goodSize = int64(len(buf))
	s.broken = false
	return nil
}

// failpoint invokes the test-only failure hook.
func (s *Store) failpoint(stage string) error {
	if s.opts.Failpoint == nil {
		return nil
	}
	return s.opts.Failpoint(stage)
}

// Append durably commits one checkpoint delta: small deltas are inlined
// into the journal record, large ones are sealed into an immutable segment
// file first and committed by reference. Append returns only after the
// commit record is fsynced; on error nothing is committed and the store
// rolls the journal back to its last durable state, so the caller may
// safely retry with the same (or a merged) delta.
func (s *Store) Append(d *Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return fmt.Errorf("segment: store is broken (a failed append could not be rolled back)")
	}
	rec := &journalRecord{Kind: "delta", Seq: s.seq + 1, Delta: d}
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if len(line) > s.opts.InlineLimit {
		body, err := encodeSegment(s.opts.Fingerprint, []*Delta{d})
		if err != nil {
			return err
		}
		sum := shaHex(body)
		name := fmt.Sprintf("%08d-%s.seg", s.seq+1, sum[:12])
		if err := s.failpoint("segment"); err != nil {
			return err
		}
		if err := WriteBytesAtomic(s.segmentPath(name), body); err != nil {
			return err
		}
		s.bytesAppended += int64(len(body))
		rec = &journalRecord{Kind: "segment", Seq: s.seq + 1, File: name, SHA256: sum, Deltas: 1}
		if line, err = encodeRecord(rec); err != nil {
			return err
		}
	}
	if err := s.appendLineLocked(line); err != nil {
		return err
	}
	s.seq++
	s.records = append(s.records, rec)
	s.checkpoints++
	if s.opts.CompactAfter > 0 && len(s.records) >= s.opts.CompactAfter {
		if err := s.compactLocked(); err != nil {
			// The append itself is committed; compaction is advisory and
			// will be retried after the next append.
			s.opts.Logf("segment: compaction failed (will retry): %v", err)
		}
	}
	return nil
}

// appendLineLocked writes one framed record to the journal and fsyncs it.
// On failure it truncates back to the last durable size so an in-process
// retry cannot follow garbage bytes with a valid line.
func (s *Store) appendLineLocked(line []byte) error {
	rollback := func(err error) error {
		if terr := s.journal.Truncate(s.goodSize); terr != nil {
			s.broken = true
			return fmt.Errorf("%w (rollback failed: %v)", err, terr)
		}
		if _, serr := s.journal.Seek(s.goodSize, 0); serr != nil {
			s.broken = true
		}
		return err
	}
	if err := s.failpoint("journal-write"); err != nil {
		return rollback(err)
	}
	if _, err := s.journal.Write(line); err != nil {
		return rollback(err)
	}
	if err := s.failpoint("journal-sync"); err != nil {
		return rollback(err)
	}
	if err := s.journal.Sync(); err != nil {
		return rollback(err)
	}
	s.goodSize += int64(len(line))
	s.bytesAppended += int64(len(line))
	return nil
}

// Compact folds every committed delta into a single segment file and
// rewrites the journal to one commit record. Compaction reads only
// committed state, never the live engine, so it is safe at any time; a
// crash mid-compaction recovers to either the old chain or the new record.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if len(s.records) <= 1 {
		return nil
	}
	var deltas []*Delta
	oldFiles := make([]string, 0, len(s.records))
	for _, rec := range s.records {
		switch rec.Kind {
		case "delta":
			deltas = append(deltas, rec.Delta)
		case "segment":
			sf, err := s.readSegment(rec)
			if err != nil {
				return fmt.Errorf("segment: compaction aborted, committed segment %s unreadable: %w", rec.File, err)
			}
			deltas = append(deltas, sf.Deltas...)
			oldFiles = append(oldFiles, rec.File)
		}
	}
	body, err := encodeSegment(s.opts.Fingerprint, deltas)
	if err != nil {
		return err
	}
	sum := shaHex(body)
	name := fmt.Sprintf("%08d-%s.seg", s.seq+1, sum[:12])
	if err := WriteBytesAtomic(s.segmentPath(name), body); err != nil {
		return err
	}
	s.bytesAppended += int64(len(body))
	s.seq++
	s.records = []*journalRecord{{Kind: "segment", Seq: s.seq, File: name, SHA256: sum, Deltas: len(deltas)}}
	if err := s.rewriteJournalLocked(); err != nil {
		return err
	}
	for _, f := range oldFiles {
		if f != name {
			os.Remove(s.segmentPath(f))
		}
	}
	_ = SyncDir(s.segmentsDir())
	s.compactions++
	return nil
}

// Stats returns the store's current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := 0
	for _, rec := range s.records {
		if rec.Kind == "segment" {
			segs++
		}
	}
	return Stats{
		Seq:            s.seq,
		JournalRecords: len(s.records),
		SegmentFiles:   segs,
		Checkpoints:    s.checkpoints,
		Compactions:    s.compactions,
		BytesAppended:  s.bytesAppended,
		ReplayedDeltas: s.replayedDeltas,
		DroppedRecords: s.dropped,
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the journal handle. It does not checkpoint; callers
// wanting a final commit append it first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

func shaHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
