package history

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/query"
	"repro/internal/types"
)

// TestForEachMatchingReentrant is the regression test for the old design's
// self-deadlock: ForEachMatching used to hold the store's read lock for the
// whole user callback, so a callback that called back into the store (an
// Add taking the write lock, or a read racing a blocked writer) wedged
// forever. Iteration now runs over an immutable snapshot, so re-entry —
// including mutation — is legal.
func TestForEachMatchingReentrant(t *testing.T) {
	s := NewStore(schema())
	s.Add(
		types.Tuple{ID: 1, Ord: []float64{10, 0, 0}, Cat: map[string]string{"c": "x"}},
		types.Tuple{ID: 2, Ord: []float64{20, 0, 0}, Cat: map[string]string{"c": "x"}},
	)
	visited := 0
	s.ForEachMatching(query.New(), func(tp types.Tuple) bool {
		visited++
		// Re-enter with reads of every flavor.
		if n := s.CountMatching(query.New()); n < 2 {
			t.Errorf("re-entrant CountMatching = %d, want ≥ 2", n)
		}
		if _, ok := s.MinMatching(query.New(), 0, types.FullInterval()); !ok {
			t.Error("re-entrant MinMatching found nothing")
		}
		if _, ok := s.Get(tp.ID); !ok {
			t.Errorf("re-entrant Get(%d) missed", tp.ID)
		}
		// Re-enter with a write: tuples added mid-iteration must not be
		// visited (the snapshot is immutable) and must not deadlock.
		s.Add(types.Tuple{ID: 100 + tp.ID, Ord: []float64{5, 0, 0}, Cat: map[string]string{"c": "x"}})
		return true
	})
	if visited != 2 {
		t.Fatalf("visited %d tuples, want exactly the 2 present at iteration start", visited)
	}
	if s.Size() != 4 {
		t.Fatalf("Size = %d after re-entrant Adds, want 4", s.Size())
	}
}

// TestConcurrentAddReadStress hammers one store from many goroutines under
// -race: writers stream batches in (crossing the flush threshold many times
// on every shard), while readers run indexed lookups across all attributes
// and whole-store scans, asserting only invariants that hold mid-write (a
// returned tuple must really match, monotone growth, snapshot consistency).
func TestConcurrentAddReadStress(t *testing.T) {
	defer func(old int) { maxBufferLen = old }(maxBufferLen)
	maxBufferLen = 32

	s := NewStore(schema())
	const (
		writers = 4
		readers = 4
		perW    = 2000
	)
	var writeWG, readWG sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				id := w*perW + i
				s.Add(types.Tuple{
					ID:  id,
					Ord: []float64{rng.Float64() * 100, rng.Float64() * 100, 0},
					Cat: map[string]string{"c": []string{"x", "y"}[rng.Intn(2)]},
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for !stop.Load() {
				attr := rng.Intn(2)
				lo := rng.Float64() * 80
				iv := types.Interval{Lo: lo, Hi: lo + 20, LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0}
				q := query.New()
				if rng.Intn(2) == 0 {
					q = q.WithCat("c", "x")
				}
				if tp, ok := s.MinMatching(q, attr, iv); ok {
					if !q.Matches(tp) || !iv.Contains(tp.Ord[attr]) {
						t.Errorf("MinMatching returned non-qualifying tuple %v for %s ∩ %s", tp, q, iv)
						return
					}
				}
				if tp, ok := s.MaxMatching(q, attr, iv); ok {
					if !q.Matches(tp) || !iv.Contains(tp.Ord[attr]) {
						t.Errorf("MaxMatching returned non-qualifying tuple %v for %s ∩ %s", tp, q, iv)
						return
					}
				}
				before := s.Size()
				n := s.CountMatching(query.New())
				if n < before {
					t.Errorf("CountMatching(TRUE) = %d below earlier Size %d: snapshot shrank", n, before)
					return
				}
				s.ForEachMatching(q, func(tp types.Tuple) bool {
					if !q.Matches(tp) {
						t.Errorf("ForEachMatching yielded non-matching tuple %v", tp)
						return false
					}
					return true
				})
				if tp, ok := s.BestMatching(q, func(tp types.Tuple) float64 { return tp.Ord[0] }); ok && !q.Matches(tp) {
					t.Errorf("BestMatching yielded non-matching tuple %v for %s", tp, q)
					return
				}
			}
		}(r)
	}
	// Readers overlap the whole write phase, then are released.
	writeWG.Wait()
	stop.Store(true)
	readWG.Wait()

	if s.Size() != writers*perW {
		t.Fatalf("Size = %d, want %d", s.Size(), writers*perW)
	}
	// Post-stress serial sanity: indexed lookups agree with brute force.
	ref := newReferenceStore()
	s.ForEachMatching(query.New(), func(tp types.Tuple) bool { ref.Add(tp); return true })
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q, attr, iv := randomQuery(rng), rng.Intn(2), randomInterval(rng)
		got, gok := s.MinMatching(q, attr, iv)
		want, wok := ref.MinMatching(q, attr, iv)
		if gok != wok || (gok && got.ID != want.ID) {
			t.Fatalf("post-stress MinMatching mismatch: (%v,%v) vs reference (%v,%v)", got, gok, want, wok)
		}
	}
}
