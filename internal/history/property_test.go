package history

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/types"
)

// referenceStore is the brute-force oracle for the sharded store: a plain
// linear-scan implementation with no indexes and the same tie-break rules
// (min: smallest ID, max: largest ID, best: smallest ID).
type referenceStore struct {
	byID map[int]types.Tuple
	all  []types.Tuple
}

func newReferenceStore() *referenceStore {
	return &referenceStore{byID: make(map[int]types.Tuple)}
}

func (r *referenceStore) Add(tuples ...types.Tuple) int {
	added := 0
	for _, t := range tuples {
		if _, seen := r.byID[t.ID]; seen {
			continue
		}
		c := t.Clone()
		r.byID[t.ID] = c
		r.all = append(r.all, c)
		added++
	}
	return added
}

func (r *referenceStore) MinMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	var best types.Tuple
	found := false
	for _, t := range r.all {
		if !q.Matches(t) || !iv.Contains(t.Ord[attr]) {
			continue
		}
		if !found || t.Ord[attr] < best.Ord[attr] ||
			(t.Ord[attr] == best.Ord[attr] && t.ID < best.ID) {
			best, found = t, true
		}
	}
	return best, found
}

func (r *referenceStore) MaxMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	var best types.Tuple
	found := false
	for _, t := range r.all {
		if !q.Matches(t) || !iv.Contains(t.Ord[attr]) {
			continue
		}
		if !found || t.Ord[attr] > best.Ord[attr] ||
			(t.Ord[attr] == best.Ord[attr] && t.ID > best.ID) {
			best, found = t, true
		}
	}
	return best, found
}

func (r *referenceStore) BestMatching(q query.Query, score func(types.Tuple) float64) (types.Tuple, bool) {
	var best types.Tuple
	bestScore := 0.0
	found := false
	for _, t := range r.all {
		if !q.Matches(t) {
			continue
		}
		sc := score(t)
		if !found || sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore, found = t, sc, true
		}
	}
	return best, found
}

func (r *referenceStore) CountMatching(q query.Query) int {
	n := 0
	for _, t := range r.all {
		if q.Matches(t) {
			n++
		}
	}
	return n
}

func (r *referenceStore) MatchingIDs(q query.Query) map[int]bool {
	ids := make(map[int]bool)
	for _, t := range r.all {
		if q.Matches(t) {
			ids[t.ID] = true
		}
	}
	return ids
}

// gridValue draws attribute values from a coarse grid so that duplicates and
// exact interval-endpoint hits are common — the cases where open/closed
// endpoint handling and tie-breaking actually matter.
func gridValue(rng *rand.Rand) float64 { return float64(rng.Intn(21)) * 5 }

// randomInterval builds intervals whose endpoints frequently coincide with
// grid values, with independently open/closed (and occasionally unbounded or
// empty) sides.
func randomInterval(rng *rand.Rand) types.Interval {
	switch rng.Intn(10) {
	case 0:
		return types.FullInterval()
	case 1: // point interval, possibly degenerate-empty when a side is open
		v := gridValue(rng)
		return types.Interval{Lo: v, Hi: v, LoOpen: rng.Intn(3) == 0, HiOpen: rng.Intn(3) == 0}
	case 2: // half-unbounded
		v := gridValue(rng)
		if rng.Intn(2) == 0 {
			return types.Interval{Lo: math.Inf(-1), Hi: v, LoOpen: true, HiOpen: rng.Intn(2) == 0}
		}
		return types.Interval{Lo: v, Hi: math.Inf(1), LoOpen: rng.Intn(2) == 0, HiOpen: true}
	default:
		lo, hi := gridValue(rng), gridValue(rng)
		if lo > hi {
			lo, hi = hi, lo
		}
		return types.Interval{Lo: lo, Hi: hi, LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0}
	}
}

// randomQuery mixes categorical filters and range predicates on either
// ordinal attribute (including the one being scanned).
func randomQuery(rng *rand.Rand) query.Query {
	q := query.New()
	if rng.Intn(2) == 0 {
		q = q.WithCat("c", []string{"x", "y"}[rng.Intn(2)])
	}
	if rng.Intn(3) == 0 {
		q = q.WithRange(rng.Intn(2), randomInterval(rng))
	}
	return q
}

func randomTuple(rng *rand.Rand, id int) types.Tuple {
	return types.Tuple{
		ID:  id,
		Ord: []float64{gridValue(rng), gridValue(rng), 0},
		Cat: map[string]string{"c": []string{"x", "y"}[rng.Intn(2)]},
	}
}

// TestShardedStoreMatchesReference interleaves Add / MinMatching /
// MaxMatching / BestMatching / CountMatching / ForEachMatching / Get calls
// against the columnar store and the brute-force row-struct reference,
// asserting identical results throughout (including categorical predicates
// and open/closed interval endpoints, via randomQuery/randomInterval). The
// flush threshold is shrunk so buffer merges happen constantly, and tuple
// IDs are drawn from a small range so duplicate Adds are exercised too.
func TestShardedStoreMatchesReference(t *testing.T) {
	defer func(old int) { maxBufferLen = old }(maxBufferLen)
	maxBufferLen = 8

	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(schema())
		ref := newReferenceStore()
		for op := 0; op < 400; op++ {
			switch rng.Intn(8) {
			case 0, 1: // Add a batch, IDs from a small range to force dups
				batch := make([]types.Tuple, 1+rng.Intn(5))
				for i := range batch {
					batch[i] = randomTuple(rng, rng.Intn(200))
				}
				if got, want := s.Add(batch...), ref.Add(batch...); got != want {
					t.Fatalf("seed %d op %d: Add returned %d, reference %d", seed, op, got, want)
				}
			case 2:
				q, attr, iv := randomQuery(rng), rng.Intn(2), randomInterval(rng)
				got, gok := s.MinMatching(q, attr, iv)
				want, wok := ref.MinMatching(q, attr, iv)
				if gok != wok || (gok && got.ID != want.ID) {
					t.Fatalf("seed %d op %d: MinMatching(%s, A%d, %s) = (%v,%v), reference (%v,%v)",
						seed, op, q, attr, iv, got, gok, want, wok)
				}
			case 3:
				q, attr, iv := randomQuery(rng), rng.Intn(2), randomInterval(rng)
				got, gok := s.MaxMatching(q, attr, iv)
				want, wok := ref.MaxMatching(q, attr, iv)
				if gok != wok || (gok && got.ID != want.ID) {
					t.Fatalf("seed %d op %d: MaxMatching(%s, A%d, %s) = (%v,%v), reference (%v,%v)",
						seed, op, q, attr, iv, got, gok, want, wok)
				}
			case 4:
				q := randomQuery(rng)
				w0, w1 := rng.Float64(), rng.Float64()
				score := func(tp types.Tuple) float64 { return w0*tp.Ord[0] + w1*tp.Ord[1] }
				got, gok := s.BestMatching(q, score)
				want, wok := ref.BestMatching(q, score)
				if gok != wok || (gok && got.ID != want.ID) {
					t.Fatalf("seed %d op %d: BestMatching(%s) = (%v,%v), reference (%v,%v)",
						seed, op, q, got, gok, want, wok)
				}
			case 5:
				q := randomQuery(rng)
				if got, want := s.CountMatching(q), ref.CountMatching(q); got != want {
					t.Fatalf("seed %d op %d: CountMatching(%s) = %d, reference %d", seed, op, q, got, want)
				}
			case 6: // ForEachMatching visits exactly the matching set, fully materialized
				q := randomQuery(rng)
				want := ref.MatchingIDs(q)
				got := make(map[int]bool)
				s.ForEachMatching(q, func(tp types.Tuple) bool {
					if got[tp.ID] {
						t.Fatalf("seed %d op %d: ForEachMatching(%s) visited t#%d twice", seed, op, q, tp.ID)
					}
					got[tp.ID] = true
					refT := ref.byID[tp.ID]
					if len(tp.Ord) != len(refT.Ord) {
						t.Fatalf("seed %d op %d: t#%d Ord len %d, reference %d", seed, op, tp.ID, len(tp.Ord), len(refT.Ord))
					}
					for i := range tp.Ord {
						if tp.Ord[i] != refT.Ord[i] {
							t.Fatalf("seed %d op %d: t#%d Ord[%d]=%g, reference %g", seed, op, tp.ID, i, tp.Ord[i], refT.Ord[i])
						}
					}
					if tp.Cat["c"] != refT.Cat["c"] {
						t.Fatalf("seed %d op %d: t#%d Cat=%q, reference %q", seed, op, tp.ID, tp.Cat["c"], refT.Cat["c"])
					}
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("seed %d op %d: ForEachMatching(%s) visited %d, reference %d", seed, op, q, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("seed %d op %d: ForEachMatching(%s) missed t#%d", seed, op, q, id)
					}
				}
			case 7: // Get / Has round-trip through the columnar arena
				id := rng.Intn(200)
				got, gok := s.Get(id)
				want, wok := ref.byID[id]
				if gok != wok || s.Has(id) != wok {
					t.Fatalf("seed %d op %d: Get(%d) ok=%v, reference %v", seed, op, id, gok, wok)
				}
				if gok && (got.ID != want.ID || got.Ord[0] != want.Ord[0] || got.Cat["c"] != want.Cat["c"]) {
					t.Fatalf("seed %d op %d: Get(%d) = %v, reference %v", seed, op, id, got, want)
				}
			}
		}
		if s.Size() != len(ref.all) {
			t.Fatalf("seed %d: Size = %d, reference %d", seed, s.Size(), len(ref.all))
		}
	}
}
