// Package history implements the "leveraging history" idea of §3.1.1: every
// tuple ever returned by the hidden database is cached, deduplicated by ID,
// and indexed per ordinal attribute, so the processing of one user query can
// prune the search space using answers observed while processing others.
//
// # Columnar storage
//
// Tuples live in an append-only colstore.Arena: flat column slices plus a
// shared string dictionary, so a million cached tuples cost a handful of
// large allocations instead of a million row structs each carrying its own
// Ord slice and Cat map. The row-struct types.Tuple stays the API type,
// materialized from the columns only when a lookup actually returns a row;
// ScanMatching exposes the raw view for consumers that can score rows
// without materializing at all.
//
// # Sharded incremental indexes
//
// The store is write-heavy by nature — sustained discovery traffic keeps
// appending freshly observed tuples — so index maintenance is incremental and
// sharded per attribute. Each ordinal attribute owns an independent shard
// guarded by its own lock, holding
//
//   - a sealed sorted run of row numbers (ascending by value, ties by ID),
//     replaced wholesale and never mutated in place, and
//   - a small sorted "recent" buffer that absorbs inserts.
//
// When the buffer fills it is merged into the run — a linear merge of two
// sorted runs, never a full re-sort — so no reader ever pays an O(n log n)
// rebuild, and readers of attribute A never contend with a writer flushing
// attribute B. MinMatching/MaxMatching scan run and buffer cooperatively and
// combine the two candidates.
//
// Whole-store scans (BestMatching, ForEachMatching, CountMatching) iterate an
// immutable point-in-time arena view in insertion order; the iteration runs
// lock-free, so callbacks may re-enter the store freely.
package history

import (
	"sync"

	"repro/internal/colstore"
	"repro/internal/query"
	"repro/internal/types"
)

// maxBufferLen is the per-shard recent-buffer flush threshold. A larger
// buffer amortizes merges over more inserts at the price of a longer buffer
// scan on every read; 256 keeps both sides trivially cheap. It is a variable
// so tests can shrink it to force frequent merges.
var maxBufferLen = 256

// shard is the sorted-run index for one ordinal attribute: row numbers into
// the store's arena ordered by (attribute value, tuple ID).
type shard struct {
	attr int
	mu   sync.RWMutex
	run  colstore.Run // sealed sorted run
	buf  colstore.Run // small sorted recent buffer
}

// insert adds freshly appended rows to the shard. Small batches binary-insert
// into the buffer; once the buffer would exceed maxBufferLen the batch is
// sorted wholesale and buffer+batch are merged into the sealed run.
func (sh *shard) insert(v colstore.View, news []uint32) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.buf.Len()+len(news) >= maxBufferLen {
		batch := colstore.NewRun(v, sh.attr, news)
		sh.run = colstore.MergeRuns(v, sh.run, colstore.MergeRuns(v, sh.buf, batch))
		sh.buf = colstore.Run{}
		return
	}
	for _, row := range news {
		sh.buf.Insert(v, v.Ord(int(row), sh.attr), row)
	}
}

// minMatching returns the matching row with the smallest attribute value in
// iv (ties: smallest ID), scanning the sealed run and the buffer.
func (sh *shard) minMatching(m *colstore.Matcher, iv types.Interval) (int, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	aRow, aVal, aOK := sh.run.ScanMin(m, iv)
	bRow, bVal, bOK := sh.buf.ScanMin(m, iv)
	switch {
	case aOK && bOK:
		v := m.View()
		if bVal < aVal || (bVal == aVal && v.ID(int(bRow)) < v.ID(int(aRow))) {
			return int(bRow), true
		}
		return int(aRow), true
	case aOK:
		return int(aRow), true
	case bOK:
		return int(bRow), true
	}
	return 0, false
}

// maxMatching is minMatching's mirror (ties: largest ID).
func (sh *shard) maxMatching(m *colstore.Matcher, iv types.Interval) (int, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	aRow, aVal, aOK := sh.run.ScanMax(m, iv)
	bRow, bVal, bOK := sh.buf.ScanMax(m, iv)
	switch {
	case aOK && bOK:
		v := m.View()
		if bVal > aVal || (bVal == aVal && v.ID(int(bRow)) > v.ID(int(aRow))) {
			return int(bRow), true
		}
		return int(aRow), true
	case aOK:
		return int(aRow), true
	case bOK:
		return int(bRow), true
	}
	return 0, false
}

// Store is the thread-safe tuple history, deduplicated by tuple ID, with a
// sorted shard per indexed ordinal attribute.
type Store struct {
	schema *types.Schema
	arena  *colstore.Arena

	mu   sync.RWMutex
	byID map[int]uint32 // tuple ID -> arena row

	shards map[int]*shard // ordinal attr index -> shard
}

// NewStore builds an empty history over schema, indexing every ordinal
// attribute.
func NewStore(schema *types.Schema) *Store {
	s := &Store{
		schema: schema,
		arena:  colstore.NewArena(colstore.NewLayout(schema), colstore.NewDict()),
		byID:   make(map[int]uint32),
		shards: make(map[int]*shard),
	}
	for _, attr := range schema.OrdinalIndexes() {
		s.shards[attr] = &shard{attr: attr}
	}
	return s
}

// Schema returns the schema the store indexes.
func (s *Store) Schema() *types.Schema { return s.schema }

// Layout returns the store's column layout (shared with probe caches).
func (s *Store) Layout() *colstore.Layout { return s.arena.Layout() }

// Dict returns the store's shared string dictionary.
func (s *Store) Dict() *colstore.Dict { return s.arena.Dict() }

// View snapshots the store's current rows for index-based scanning.
func (s *Store) View() colstore.View { return s.arena.View() }

// matcherPool recycles compiled matchers so steady-state lookups allocate
// nothing for predicate compilation.
var matcherPool = sync.Pool{New: func() any { return new(colstore.Matcher) }}

// Add inserts tuples not already present (by ID) and returns how many were
// new. The tuples' values are copied into columns; callers may reuse their
// slices. Add returns only after every shard reflects the new tuples.
func (s *Store) Add(tuples ...types.Tuple) int {
	var news []uint32
	s.mu.Lock()
	for _, t := range tuples {
		if _, seen := s.byID[t.ID]; seen {
			continue
		}
		row := s.arena.Append(t)
		s.byID[t.ID] = row
		news = append(news, row)
	}
	s.mu.Unlock()
	if len(news) == 0 {
		return 0
	}
	v := s.arena.View()
	for _, sh := range s.shards {
		sh.insert(v, news)
	}
	return len(news)
}

// Rows returns the arena row watermark: rows [0, Rows()) are stored and,
// because the arena is append-only, will never change or move. Persistence
// uses contiguous row ranges below this watermark as its incremental unit.
func (s *Store) Rows() int { return s.arena.Len() }

// RowOf returns the arena row number of the tuple with the given ID.
func (s *Store) RowOf(id int) (int, bool) {
	s.mu.RLock()
	row, ok := s.byID[id]
	s.mu.RUnlock()
	return int(row), ok
}

// ExportRows materializes the tuples in arena rows [lo, hi), clamped to the
// currently published rows. Row order is insertion order, so replaying
// exported ranges through Add reproduces identical row numbers.
func (s *Store) ExportRows(lo, hi int) []types.Tuple {
	return s.arena.View().TupleRange(lo, hi)
}

// Size returns the number of distinct tuples stored.
func (s *Store) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// Has reports whether a tuple with the given ID is stored.
func (s *Store) Has(id int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byID[id]
	return ok
}

// Get returns a copy of the stored tuple with the given ID.
func (s *Store) Get(id int) (types.Tuple, bool) {
	s.mu.RLock()
	row, ok := s.byID[id]
	s.mu.RUnlock()
	if !ok {
		return types.Tuple{}, false
	}
	return s.arena.View().Tuple(int(row)), true
}

// MinMatching returns the stored tuple matching q whose value on attr lies
// in iv and is smallest (ties: smallest ID).
func (s *Store) MinMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	sh, ok := s.shards[attr]
	if !ok {
		return types.Tuple{}, false
	}
	v := s.arena.View()
	m := matcherPool.Get().(*colstore.Matcher)
	m.Reset(v, q)
	row, found := sh.minMatching(m, iv)
	matcherPool.Put(m)
	if !found {
		return types.Tuple{}, false
	}
	return v.Tuple(row), true
}

// MaxMatching is MinMatching's mirror (ties: largest ID).
func (s *Store) MaxMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	sh, ok := s.shards[attr]
	if !ok {
		return types.Tuple{}, false
	}
	v := s.arena.View()
	m := matcherPool.Get().(*colstore.Matcher)
	m.Reset(v, q)
	row, found := sh.maxMatching(m, iv)
	matcherPool.Put(m)
	if !found {
		return types.Tuple{}, false
	}
	return v.Tuple(row), true
}

// BestMatching returns the stored tuple matching q with the smallest score
// (ties: smallest ID). The tuple handed to the score callback is a scratch
// materialization valid only for the duration of that call.
func (s *Store) BestMatching(q query.Query, score func(types.Tuple) float64) (types.Tuple, bool) {
	v := s.arena.View()
	m := matcherPool.Get().(*colstore.Matcher)
	m.Reset(v, q)
	var scratch types.Tuple
	bestRow, found := -1, false
	bestScore, bestID := 0.0, 0
	for row := 0; row < v.Len(); row++ {
		if !m.Match(row) {
			continue
		}
		v.MaterializeInto(row, &scratch)
		sc := score(scratch)
		if !found || sc < bestScore || (sc == bestScore && scratch.ID < bestID) {
			bestRow, bestScore, bestID, found = row, sc, scratch.ID, true
		}
	}
	matcherPool.Put(m)
	if !found {
		return types.Tuple{}, false
	}
	return v.Tuple(bestRow), true
}

// ForEachMatching calls fn for every stored tuple matching q, in insertion
// order, until fn returns false. Iteration covers an immutable point-in-time
// snapshot: fn may re-enter the store (including Add), and tuples added
// during iteration are not visited. Each tuple passed to fn is freshly
// materialized and shares no storage with the store — fn may retain it.
func (s *Store) ForEachMatching(q query.Query, fn func(types.Tuple) bool) {
	v := s.arena.View()
	m := matcherPool.Get().(*colstore.Matcher)
	m.Reset(v, q)
	for row := 0; row < v.Len(); row++ {
		if !m.Match(row) {
			continue
		}
		if !fn(v.Tuple(row)) {
			break
		}
	}
	matcherPool.Put(m)
}

// ScanMatching is ForEachMatching without materialization: fn receives the
// arena view and a row number and reads attribute values straight from the
// columns — the zero-alloc hot path for scoring scans (MD frontier seeding).
// The same snapshot and re-entrancy rules apply.
func (s *Store) ScanMatching(q query.Query, fn func(v colstore.View, row int) bool) {
	v := s.arena.View()
	m := matcherPool.Get().(*colstore.Matcher)
	m.Reset(v, q)
	for row := 0; row < v.Len(); row++ {
		if !m.Match(row) {
			continue
		}
		if !fn(v, row) {
			break
		}
	}
	matcherPool.Put(m)
}

// CountMatching returns the number of stored tuples matching q.
func (s *Store) CountMatching(q query.Query) int {
	v := s.arena.View()
	m := matcherPool.Get().(*colstore.Matcher)
	m.Reset(v, q)
	n := 0
	for row := 0; row < v.Len(); row++ {
		if m.Match(row) {
			n++
		}
	}
	matcherPool.Put(m)
	return n
}

// StorageStats describes the store's columnar footprint.
type StorageStats struct {
	// Tuples is the number of resident (deduplicated) tuples.
	Tuples int
	// Blocks is the number of sealed column blocks.
	Blocks int
	// DictEntries is the number of interned categorical symbols.
	DictEntries int
	// DictBytes approximates the string bytes retained by the dictionary.
	DictBytes int64
	// ApproxBytes approximates total resident storage: column blocks,
	// per-shard sorted runs, and the dictionary.
	ApproxBytes int64
}

// StorageStats returns the store's current storage counters.
func (s *Store) StorageStats() StorageStats {
	ast := s.arena.Stats()
	dict := s.arena.Dict()
	st := StorageStats{
		Tuples:      ast.Rows,
		Blocks:      ast.Blocks,
		DictEntries: dict.Len(),
		DictBytes:   dict.Bytes(),
	}
	shardBytes := int64(0)
	for _, sh := range s.shards {
		sh.mu.RLock()
		shardBytes += int64(12 * (sh.run.Len() + sh.buf.Len())) // 8B val + 4B row
		sh.mu.RUnlock()
	}
	st.ApproxBytes = ast.Bytes + shardBytes + st.DictBytes
	return st
}
