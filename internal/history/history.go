// Package history implements the "leveraging history" idea of §3.1.1: every
// tuple ever returned by the hidden database is cached, deduplicated by ID,
// and indexed per ordinal attribute, so the processing of one user query can
// prune the search space using answers observed while processing others.
//
// # Sharded incremental indexes
//
// The store is write-heavy by nature — sustained discovery traffic keeps
// appending freshly observed tuples — so index maintenance is incremental and
// sharded per attribute. Each ordinal attribute owns an independent shard
// guarded by its own lock, holding
//
//   - an immutable sorted run (ascending by value, ties by ID), replaced
//     wholesale and never mutated in place, and
//   - a small sorted "recent" buffer that absorbs inserts.
//
// When the buffer fills it is merged into the run — a linear merge of two
// sorted runs, never a full re-sort — so no reader ever pays an O(n log n)
// rebuild, and readers of attribute A never contend with a writer flushing
// attribute B. MinMatching/MaxMatching scan run and buffer cooperatively and
// combine the two candidates.
//
// Whole-store scans (BestMatching, ForEachMatching, CountMatching) iterate an
// append-only insertion-order snapshot slice captured under a brief read
// lock; the iteration itself runs lock-free, so callbacks may re-enter the
// store freely.
package history

import (
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/types"
)

// maxBufferLen is the per-shard recent-buffer flush threshold. A larger
// buffer amortizes merges over more inserts at the price of a longer buffer
// scan on every read; 256 keeps both sides trivially cheap. It is a variable
// so tests can shrink it to exercise flushes aggressively.
var maxBufferLen = 256

// shard is the incrementally maintained sorted index of one ordinal
// attribute. run and buf are both ordered ascending by (Ord[attr], ID) and
// never share a tuple; run is immutable once published.
type shard struct {
	attr int
	mu   sync.RWMutex
	run  []types.Tuple
	buf  []types.Tuple
}

// less orders tuples by (Ord[attr], ID) — the canonical run order.
func (sh *shard) less(a, b types.Tuple) bool {
	if a.Ord[sh.attr] != b.Ord[sh.attr] {
		return a.Ord[sh.attr] < b.Ord[sh.attr]
	}
	return a.ID < b.ID
}

// insert adds tuples (already deduplicated by the store) to the recent
// buffer, flushing into the run when it fills. A batch that would overfill
// the buffer skips per-tuple insertion entirely: it is sorted once and
// folded into the run with linear merges, so bulk loads (snapshot restore,
// large crawl pages) stay O(n log n) instead of quadratic.
func (sh *shard) insert(news []types.Tuple) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.buf)+len(news) >= maxBufferLen {
		batch := append([]types.Tuple(nil), news...)
		sort.Slice(batch, func(i, j int) bool { return sh.less(batch[i], batch[j]) })
		sh.run = mergeRuns(sh.run, mergeRuns(sh.buf, batch, sh.less), sh.less)
		sh.buf = nil
		return
	}
	for _, t := range news {
		i := sort.Search(len(sh.buf), func(i int) bool { return sh.less(t, sh.buf[i]) })
		sh.buf = append(sh.buf, types.Tuple{})
		copy(sh.buf[i+1:], sh.buf[i:])
		sh.buf[i] = t
	}
}

// mergeRuns combines two sorted runs into a fresh sorted slice. Linear in
// the total size: both inputs are already sorted by less.
func mergeRuns(a, b []types.Tuple, less func(x, y types.Tuple) bool) []types.Tuple {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]types.Tuple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// minMatching scans run and buffer cooperatively for the smallest qualifying
// value (ties by smallest ID).
func (sh *shard) minMatching(q query.Query, iv types.Interval) (types.Tuple, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	a, aok := index.ScanMinMatching(sh.run, q, sh.attr, iv)
	b, bok := index.ScanMinMatching(sh.buf, q, sh.attr, iv)
	switch {
	case aok && bok:
		if sh.less(b, a) {
			return b, true
		}
		return a, true
	case aok:
		return a, true
	default:
		return b, bok
	}
}

// maxMatching mirrors minMatching: the largest qualifying value, ties by
// largest ID.
func (sh *shard) maxMatching(q query.Query, iv types.Interval) (types.Tuple, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	a, aok := index.ScanMaxMatching(sh.run, q, sh.attr, iv)
	b, bok := index.ScanMaxMatching(sh.buf, q, sh.attr, iv)
	switch {
	case aok && bok:
		if sh.less(a, b) {
			return b, true
		}
		return a, true
	case aok:
		return a, true
	default:
		return b, bok
	}
}

// Store caches observed tuples with a sharded, incrementally maintained
// sorted index per ordinal attribute. It is safe for concurrent use: the
// engine's knowledge layer shares one store across every session.
type Store struct {
	schema *types.Schema

	mu   sync.RWMutex
	byID map[int]types.Tuple
	// all holds the cached tuples in insertion order. It is append-only:
	// a slice header captured under the read lock is an immutable snapshot,
	// so whole-store scans run without holding any lock.
	all []types.Tuple

	// shards maps ordinal attribute index -> its index shard. The map
	// itself is immutable after NewStore.
	shards map[int]*shard
}

// NewStore builds an empty history over the given schema, with one index
// shard per ordinal attribute.
func NewStore(schema *types.Schema) *Store {
	s := &Store{
		schema: schema,
		byID:   make(map[int]types.Tuple),
		shards: make(map[int]*shard, schema.NumOrdinal()),
	}
	for _, attr := range schema.OrdinalIndexes() {
		s.shards[attr] = &shard{attr: attr}
	}
	return s
}

// Add records tuples returned by a query; duplicates (by ID) are ignored.
// It returns how many tuples were new. Tuples this call inserted are visible
// to every index shard by the time it returns; a concurrent duplicate Add
// may return before the first inserter has finished indexing, in which case
// lookups can briefly miss the tuple — always safe, since a history miss
// only costs an upstream probe the cache could have pruned.
func (s *Store) Add(tuples ...types.Tuple) int {
	var news []types.Tuple
	s.mu.Lock()
	for _, t := range tuples {
		if _, seen := s.byID[t.ID]; seen {
			continue
		}
		c := t.Clone()
		s.byID[t.ID] = c
		s.all = append(s.all, c)
		news = append(news, c)
	}
	s.mu.Unlock()
	if len(news) == 0 {
		return 0
	}
	for _, sh := range s.shards {
		sh.insert(news)
	}
	return len(news)
}

// Size returns the number of distinct tuples observed.
func (s *Store) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// Has reports whether the tuple ID has been observed.
func (s *Store) Has(id int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byID[id]
	return ok
}

// Get returns the cached tuple with the given ID.
func (s *Store) Get(id int) (types.Tuple, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.byID[id]
	return t, ok
}

// snapshot captures the insertion-order tuple list. The returned slice is an
// immutable point-in-time view: Add only ever appends past its length.
func (s *Store) snapshot() []types.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.all
}

// MinMatching returns the cached tuple matching q with the smallest value of
// attr inside iv (ties broken by smallest ID), scanning the attribute
// shard's sorted run and recent buffer cooperatively. ok is false when no
// cached tuple qualifies.
func (s *Store) MinMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	sh, ok := s.shards[attr]
	if !ok {
		return types.Tuple{}, false
	}
	return sh.minMatching(q, iv)
}

// MaxMatching is MinMatching's mirror: the largest value of attr inside iv,
// ties broken by largest ID.
func (s *Store) MaxMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	sh, ok := s.shards[attr]
	if !ok {
		return types.Tuple{}, false
	}
	return sh.maxMatching(q, iv)
}

// BestMatching returns the cached tuple matching q minimizing score(t), ties
// broken by smallest ID. Useful for seeding multi-dimensional search with
// the best tuple observed so far.
func (s *Store) BestMatching(q query.Query, score func(types.Tuple) float64) (types.Tuple, bool) {
	var best types.Tuple
	bestScore := 0.0
	found := false
	for _, t := range s.snapshot() {
		if !q.Matches(t) {
			continue
		}
		sc := score(t)
		if !found || sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore, found = t, sc, true
		}
	}
	return best, found
}

// ForEachMatching invokes fn for every cached tuple matching q, in insertion
// order; fn returning false stops early. Iteration runs over an immutable
// snapshot taken when the call starts: fn may safely call back into the
// store (including Add — tuples added during iteration are not visited).
func (s *Store) ForEachMatching(q query.Query, fn func(types.Tuple) bool) {
	for _, t := range s.snapshot() {
		if q.Matches(t) {
			if !fn(t) {
				return
			}
		}
	}
}

// CountMatching returns how many cached tuples match q.
func (s *Store) CountMatching(q query.Query) int {
	n := 0
	for _, t := range s.snapshot() {
		if q.Matches(t) {
			n++
		}
	}
	return n
}
