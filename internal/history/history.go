// Package history implements the "leveraging history" idea of §3.1.1: every
// tuple ever returned by the hidden database is cached, deduplicated by ID,
// and indexed per ordinal attribute, so the processing of one user query can
// prune the search space using answers observed while processing others.
package history

import (
	"sort"
	"sync"

	"repro/internal/query"
	"repro/internal/types"
)

// Store caches observed tuples with a sorted index per ordinal attribute.
// It is safe for concurrent use: the engine's knowledge layer shares one
// store across every session. Per-attribute sorted indexes are rebuilt
// lazily after inserts; once built, an index slice is immutable, so readers
// scan it without holding the lock.
type Store struct {
	schema *types.Schema

	mu   sync.RWMutex
	byID map[int]types.Tuple
	// sorted[attr] holds the cached tuples ordered ascending by
	// attribute attr. Rebuilt lazily after inserts; slices are
	// replaced wholesale, never mutated in place.
	sorted map[int][]types.Tuple
	dirty  map[int]bool
}

// NewStore builds an empty history over the given schema.
func NewStore(schema *types.Schema) *Store {
	return &Store{
		schema: schema,
		byID:   make(map[int]types.Tuple),
		sorted: make(map[int][]types.Tuple),
		dirty:  make(map[int]bool),
	}
}

// Add records tuples returned by a query; duplicates (by ID) are ignored.
// It returns how many tuples were new.
func (s *Store) Add(tuples ...types.Tuple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, t := range tuples {
		if _, seen := s.byID[t.ID]; seen {
			continue
		}
		s.byID[t.ID] = t.Clone()
		added++
	}
	if added > 0 {
		for a := range s.sorted {
			s.dirty[a] = true
		}
	}
	return added
}

// Size returns the number of distinct tuples observed.
func (s *Store) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// Has reports whether the tuple ID has been observed.
func (s *Store) Has(id int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byID[id]
	return ok
}

// Get returns the cached tuple with the given ID.
func (s *Store) Get(id int) (types.Tuple, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.byID[id]
	return t, ok
}

// index returns the sorted-by-attr view, rebuilding it if stale. The
// returned slice is immutable: rebuilds allocate a fresh slice, so callers
// may scan it after the lock is released.
func (s *Store) index(attr int) []types.Tuple {
	s.mu.RLock()
	lst, ok := s.sorted[attr]
	fresh := ok && !s.dirty[attr] && len(lst) == len(s.byID)
	s.mu.RUnlock()
	if fresh {
		return lst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lst, ok = s.sorted[attr]
	if ok && !s.dirty[attr] && len(lst) == len(s.byID) {
		return lst // another goroutine rebuilt it while we upgraded
	}
	lst = make([]types.Tuple, 0, len(s.byID))
	for _, t := range s.byID {
		lst = append(lst, t)
	}
	sort.Slice(lst, func(i, j int) bool {
		if lst[i].Ord[attr] != lst[j].Ord[attr] {
			return lst[i].Ord[attr] < lst[j].Ord[attr]
		}
		return lst[i].ID < lst[j].ID
	})
	s.sorted[attr] = lst
	s.dirty[attr] = false
	return lst
}

// MinMatching returns the cached tuple matching q with the smallest value of
// attr inside iv, scanning the per-attribute index in ascending order.
// ok is false when no cached tuple qualifies.
func (s *Store) MinMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	lst := s.index(attr)
	// Binary search to the first tuple with value ≥ iv.Lo.
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Ord[attr] >= iv.Lo })
	for ; i < len(lst); i++ {
		v := lst[i].Ord[attr]
		if v > iv.Hi || (v == iv.Hi && iv.HiOpen) {
			break
		}
		if v == iv.Lo && iv.LoOpen {
			continue
		}
		if q.Matches(lst[i]) {
			return lst[i], true
		}
	}
	return types.Tuple{}, false
}

// MaxMatching is MinMatching's mirror: the largest value of attr inside iv.
func (s *Store) MaxMatching(q query.Query, attr int, iv types.Interval) (types.Tuple, bool) {
	lst := s.index(attr)
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Ord[attr] > iv.Hi })
	for i--; i >= 0; i-- {
		v := lst[i].Ord[attr]
		if v < iv.Lo || (v == iv.Lo && iv.LoOpen) {
			break
		}
		if v == iv.Hi && iv.HiOpen {
			continue
		}
		if q.Matches(lst[i]) {
			return lst[i], true
		}
	}
	return types.Tuple{}, false
}

// BestMatching returns the cached tuple matching q minimizing score(t).
// Useful for seeding multi-dimensional search with the best tuple observed
// so far.
func (s *Store) BestMatching(q query.Query, score func(types.Tuple) float64) (types.Tuple, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best types.Tuple
	bestScore := 0.0
	found := false
	for _, t := range s.byID {
		if !q.Matches(t) {
			continue
		}
		sc := score(t)
		if !found || sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore, found = t, sc, true
		}
	}
	return best, found
}

// ForEachMatching invokes fn for every cached tuple matching q. Iteration
// order is unspecified; fn returning false stops early. The store's lock is
// held for the duration: fn must not call back into the store.
func (s *Store) ForEachMatching(q query.Query, fn func(types.Tuple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, t := range s.byID {
		if q.Matches(t) {
			if !fn(t) {
				return
			}
		}
	}
}

// CountMatching returns how many cached tuples match q.
func (s *Store) CountMatching(q query.Query) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, t := range s.byID {
		if q.Matches(t) {
			n++
		}
	}
	return n
}
