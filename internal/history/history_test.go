package history

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/types"
)

func schema() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "a", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "b", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "c", Kind: types.Categorical, Values: []string{"x", "y"}},
	})
}

func tuples(rng *rand.Rand, n int) []types.Tuple {
	out := make([]types.Tuple, n)
	for i := range out {
		out[i] = types.Tuple{
			ID:  i,
			Ord: []float64{rng.Float64() * 100, rng.Float64() * 100, 0},
			Cat: map[string]string{"c": []string{"x", "y"}[rng.Intn(2)]},
		}
	}
	return out
}

func TestAddDeduplicates(t *testing.T) {
	s := NewStore(schema())
	tp := types.Tuple{ID: 1, Ord: []float64{1, 2, 0}}
	if got := s.Add(tp, tp); got != 1 {
		t.Fatalf("Add returned %d, want 1", got)
	}
	if got := s.Add(tp); got != 0 {
		t.Fatalf("re-Add returned %d, want 0", got)
	}
	if s.Size() != 1 || !s.Has(1) || s.Has(2) {
		t.Fatal("membership broken")
	}
	got, ok := s.Get(1)
	if !ok || got.Ord[0] != 1 {
		t.Fatal("Get broken")
	}
}

// TestMinMaxMatchingProperty compares the indexed lookups against a brute
// force scan across random stores, queries, and intervals.
func TestMinMaxMatchingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rng.Seed(seed)
		s := NewStore(schema())
		all := tuples(rng, 30+rng.Intn(100))
		s.Add(all...)
		q := query.New()
		if rng.Intn(2) == 0 {
			q = q.WithCat("c", "x")
		}
		attr := rng.Intn(2)
		lo := rng.Float64() * 90
		iv := types.Interval{
			Lo: lo, Hi: lo + rng.Float64()*30,
			LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0,
		}
		// Brute force.
		var wantMin, wantMax *types.Tuple
		for i := range all {
			tp := all[i]
			if !q.Matches(tp) || !iv.Contains(tp.Ord[attr]) {
				continue
			}
			if wantMin == nil || tp.Ord[attr] < wantMin.Ord[attr] {
				wantMin = &all[i]
			}
			if wantMax == nil || tp.Ord[attr] > wantMax.Ord[attr] {
				wantMax = &all[i]
			}
		}
		gotMin, okMin := s.MinMatching(q, attr, iv)
		gotMax, okMax := s.MaxMatching(q, attr, iv)
		if (wantMin != nil) != okMin || (wantMax != nil) != okMax {
			return false
		}
		if okMin && gotMin.Ord[attr] != wantMin.Ord[attr] {
			return false
		}
		if okMax && gotMax.Ord[attr] != wantMax.Ord[attr] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBestMatchingAndIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewStore(schema())
	all := tuples(rng, 80)
	s.Add(all...)
	q := query.New().WithCat("c", "y")
	score := func(tp types.Tuple) float64 { return tp.Ord[0] + tp.Ord[1] }
	got, ok := s.BestMatching(q, score)
	want := 1e18
	n := 0
	for _, tp := range all {
		if q.Matches(tp) {
			n++
			if sc := score(tp); sc < want {
				want = sc
			}
		}
	}
	if n == 0 {
		t.Skip("unlucky seed: no matches")
	}
	if !ok || score(got) != want {
		t.Fatalf("BestMatching = %g, want %g", score(got), want)
	}
	if s.CountMatching(q) != n {
		t.Fatalf("CountMatching = %d, want %d", s.CountMatching(q), n)
	}
	seen := 0
	s.ForEachMatching(q, func(types.Tuple) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Fatalf("ForEachMatching early stop broken: %d", seen)
	}
}

// TestIndexRebuildAfterAdd ensures lookups stay correct as tuples stream in
// (the index is rebuilt lazily).
func TestIndexRebuildAfterAdd(t *testing.T) {
	s := NewStore(schema())
	s.Add(types.Tuple{ID: 1, Ord: []float64{50, 0, 0}})
	if got, ok := s.MinMatching(query.New(), 0, types.FullInterval()); !ok || got.ID != 1 {
		t.Fatal("initial lookup broken")
	}
	s.Add(types.Tuple{ID: 2, Ord: []float64{10, 0, 0}})
	if got, ok := s.MinMatching(query.New(), 0, types.FullInterval()); !ok || got.ID != 2 {
		t.Fatal("lookup after Add did not see the new minimum")
	}
}
