// Package query models the "simplistic" conjunctive search queries that a
// client-server database accepts (§2.1 of the paper): range predicates on a
// subset of ordinal attributes plus equality predicates on categorical
// attributes. It also provides Box, the axis-aligned hyper-rectangle geometry
// used by the multi-dimensional reranking algorithms.
package query

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/types"
)

// Query is a conjunctive selection over a schema: at most one interval per
// ordinal attribute (missing means unconstrained) and equality predicates on
// categorical attributes.
type Query struct {
	// Ranges maps ordinal-attribute schema index -> interval constraint.
	Ranges map[int]types.Interval
	// Cats maps categorical attribute name -> required value.
	Cats map[string]string
}

// New returns an empty (match-all) query.
func New() Query {
	return Query{Ranges: map[int]types.Interval{}, Cats: map[string]string{}}
}

// Clone returns a deep copy of q.
func (q Query) Clone() Query {
	c := Query{
		Ranges: make(map[int]types.Interval, len(q.Ranges)),
		Cats:   make(map[string]string, len(q.Cats)),
	}
	for k, v := range q.Ranges {
		c.Ranges[k] = v
	}
	for k, v := range q.Cats {
		c.Cats[k] = v
	}
	return c
}

// WithRange returns a copy of q whose constraint on ordinal attribute attr is
// intersected with iv.
func (q Query) WithRange(attr int, iv types.Interval) Query {
	c := q.Clone()
	c.AddRange(attr, iv)
	return c
}

// AddRange intersects iv onto q's constraint on attr in place — the
// allocation-free counterpart of WithRange for callers that own q (e.g. a
// probe scratch buffer being rebuilt for every box).
func (q *Query) AddRange(attr int, iv types.Interval) {
	if old, ok := q.Ranges[attr]; ok {
		iv = old.Intersect(iv)
	}
	q.Ranges[attr] = iv
}

// CopyFrom resets q to a deep copy of src, reusing q's existing maps so a
// long-lived scratch query allocates nothing after warm-up.
func (q *Query) CopyFrom(src Query) {
	if q.Ranges == nil {
		q.Ranges = make(map[int]types.Interval, len(src.Ranges))
	} else {
		clear(q.Ranges)
	}
	if q.Cats == nil {
		q.Cats = make(map[string]string, len(src.Cats))
	} else {
		clear(q.Cats)
	}
	for k, v := range src.Ranges {
		q.Ranges[k] = v
	}
	for k, v := range src.Cats {
		q.Cats[k] = v
	}
}

// WithCat returns a copy of q with an added categorical equality predicate.
func (q Query) WithCat(name, value string) Query {
	c := q.Clone()
	c.Cats[name] = value
	return c
}

// Matches reports whether tuple t satisfies every predicate of q.
func (q Query) Matches(t types.Tuple) bool {
	for attr, iv := range q.Ranges {
		if !iv.Contains(t.Ord[attr]) {
			return false
		}
	}
	for name, want := range q.Cats {
		if t.Cat[name] != want {
			return false
		}
	}
	return true
}

// Empty reports whether the query is trivially unsatisfiable (some range is
// empty). A false return does not guarantee matching tuples exist.
func (q Query) Empty() bool {
	for _, iv := range q.Ranges {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// NumPredicates returns the total number of predicates.
func (q Query) NumPredicates() int { return len(q.Ranges) + len(q.Cats) }

// String renders the query as a WHERE-clause-like description. It is also
// the canonical probe-cache and singleflight key, built on every upstream
// probe and persisted inside snapshots — so it is assembled with strconv
// into one buffer (no fmt, no intermediate part strings) and its byte-level
// format must never change.
func (q Query) String() string {
	if len(q.Ranges) == 0 && len(q.Cats) == 0 {
		return "TRUE"
	}
	sc := keyScratch.Get().(*queryScratch)
	b := sc.buf[:0]
	attrs := sc.attrs[:0]
	for a := range q.Ranges {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	for i, a := range attrs {
		if i > 0 {
			b = append(b, " AND "...)
		}
		b = append(b, 'A')
		b = strconv.AppendInt(b, int64(a), 10)
		b = append(b, " ∈ "...)
		iv := q.Ranges[a]
		if iv.LoOpen {
			b = append(b, '(')
		} else {
			b = append(b, '[')
		}
		b = strconv.AppendFloat(b, iv.Lo, 'g', -1, 64)
		b = append(b, ", "...)
		b = strconv.AppendFloat(b, iv.Hi, 'g', -1, 64)
		if iv.HiOpen {
			b = append(b, ')')
		} else {
			b = append(b, ']')
		}
	}
	names := sc.names[:0]
	for n := range q.Cats {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		if i > 0 || len(attrs) > 0 {
			b = append(b, " AND "...)
		}
		b = append(b, n...)
		b = append(b, " = "...)
		b = strconv.AppendQuote(b, q.Cats[n])
	}
	out := string(b)
	clear(names) // drop borrowed name strings before pooling
	sc.buf, sc.attrs, sc.names = b[:0], attrs[:0], names[:0]
	keyScratch.Put(sc)
	return out
}

// queryScratch pools the buffers String needs, so building a probe key
// allocates only the key itself once the pool is warm.
type queryScratch struct {
	buf   []byte
	attrs []int
	names []string
}

var keyScratch = sync.Pool{New: func() any { return new(queryScratch) }}

// Box is an axis-aligned hyper-rectangle over a fixed list of ordinal
// attributes, expressed in *axis coordinates* (see package ranking: axis
// coordinates are oriented so that smaller is always better). Dims[i]
// constrains the i-th attribute of the owning searcher's attribute list.
type Box struct {
	Dims []types.Interval
}

// FullBox returns the box covering all of the m-dimensional axis space.
func FullBox(m int) Box {
	b := Box{Dims: make([]types.Interval, m)}
	for i := range b.Dims {
		b.Dims[i] = types.FullInterval()
	}
	return b
}

// Clone returns a deep copy of b.
func (b Box) Clone() Box {
	return Box{Dims: append([]types.Interval(nil), b.Dims...)}
}

// Empty reports whether any dimension is empty.
func (b Box) Empty() bool {
	for _, iv := range b.Dims {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// Contains reports whether axis point z lies inside the box.
func (b Box) Contains(z []float64) bool {
	for i, iv := range b.Dims {
		if !iv.Contains(z[i]) {
			return false
		}
	}
	return true
}

// Intersect returns the dimension-wise intersection of two boxes.
func (b Box) Intersect(o Box) Box {
	r := b.Clone()
	for i := range r.Dims {
		r.Dims[i] = r.Dims[i].Intersect(o.Dims[i])
	}
	return r
}

// ContainsBox reports whether o is entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	for i, iv := range b.Dims {
		olo, ohi := o.Dims[i].Lo, o.Dims[i].Hi
		if olo < iv.Lo || (olo == iv.Lo && iv.LoOpen && !o.Dims[i].LoOpen) {
			return false
		}
		if ohi > iv.Hi || (ohi == iv.Hi && iv.HiOpen && !o.Dims[i].HiOpen) {
			return false
		}
	}
	return true
}

// Volume returns the product of dimension widths. Unbounded dimensions yield
// +Inf; empty boxes yield 0.
func (b Box) Volume() float64 {
	if b.Empty() {
		return 0
	}
	v := 1.0
	for _, iv := range b.Dims {
		v *= iv.Width()
	}
	return v
}

// ClampTo returns b intersected with the closed box [lo_i, hi_i] per
// dimension, useful for restricting to attribute domains.
func (b Box) ClampTo(lo, hi []float64) Box {
	r := b.Clone()
	for i := range r.Dims {
		r.Dims[i] = r.Dims[i].Intersect(types.ClosedInterval(lo[i], hi[i]))
	}
	return r
}

// String renders the box as a product of intervals.
func (b Box) String() string {
	parts := make([]string, len(b.Dims))
	for i, iv := range b.Dims {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " × ")
}

// IsFinite reports whether all dimensions are bounded.
func (b Box) IsFinite() bool {
	for _, iv := range b.Dims {
		if math.IsInf(iv.Lo, -1) || math.IsInf(iv.Hi, 1) {
			return false
		}
	}
	return true
}
