package query

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func tuple(vals ...float64) types.Tuple {
	return types.Tuple{ID: 0, Ord: vals, Cat: map[string]string{"c": "x"}}
}

func TestQueryMatches(t *testing.T) {
	q := New().
		WithRange(0, types.ClosedInterval(1, 3)).
		WithRange(1, types.OpenInterval(0, 10)).
		WithCat("c", "x")
	cases := []struct {
		tp   types.Tuple
		want bool
	}{
		{tuple(2, 5), true},
		{tuple(0.5, 5), false},
		{tuple(2, 0), false},
		{tuple(3, 9.999), true},
	}
	for i, c := range cases {
		if q.Matches(c.tp) != c.want {
			t.Errorf("case %d: Matches = %v", i, !c.want)
		}
	}
	bad := tuple(2, 5)
	bad.Cat["c"] = "y"
	if q.Matches(bad) {
		t.Error("categorical mismatch accepted")
	}
	if q.NumPredicates() != 3 {
		t.Errorf("NumPredicates = %d", q.NumPredicates())
	}
}

func TestQueryCloneIsolation(t *testing.T) {
	q := New().WithRange(0, types.ClosedInterval(0, 1)).WithCat("c", "x")
	c := q.Clone()
	c.Ranges[0] = types.ClosedInterval(5, 6)
	c.Cats["c"] = "y"
	if q.Ranges[0].Hi != 1 || q.Cats["c"] != "x" {
		t.Error("Clone shares maps")
	}
}

func TestWithRangeIntersects(t *testing.T) {
	q := New().WithRange(0, types.ClosedInterval(0, 10)).WithRange(0, types.ClosedInterval(5, 20))
	iv := q.Ranges[0]
	if iv.Lo != 5 || iv.Hi != 10 {
		t.Errorf("stacked ranges = %v, want [5,10]", iv)
	}
	q2 := q.WithRange(0, types.ClosedInterval(11, 12))
	if !q2.Empty() {
		t.Error("contradictory ranges should yield Empty query")
	}
}

func TestQueryString(t *testing.T) {
	q := New().WithRange(1, types.OpenInterval(0, 1)).WithCat("b", "v").WithCat("a", "u")
	s := q.String()
	if !strings.Contains(s, "A1") || !strings.Contains(s, `"u"`) {
		t.Errorf("String = %q", s)
	}
	if New().String() != "TRUE" {
		t.Error("empty query should print TRUE")
	}
	// Deterministic ordering: categorical names sorted.
	if strings.Index(s, `"u"`) > strings.Index(s, `"v"`) {
		t.Errorf("cats not sorted: %q", s)
	}
}

func TestBoxBasics(t *testing.T) {
	b := FullBox(2)
	if b.Empty() || !b.Contains([]float64{1e12, -1e12}) {
		t.Error("FullBox broken")
	}
	b.Dims[0] = types.ClosedInterval(0, 2)
	b.Dims[1] = types.ClosedInterval(1, 3)
	if b.Volume() != 4 {
		t.Errorf("Volume = %g, want 4", b.Volume())
	}
	if !b.IsFinite() {
		t.Error("finite box reported infinite")
	}
	inner := Box{Dims: []types.Interval{types.ClosedInterval(0.5, 1), types.ClosedInterval(2, 3)}}
	if !b.ContainsBox(inner) {
		t.Error("ContainsBox(inner) = false")
	}
	if inner.ContainsBox(b) {
		t.Error("inner contains outer?")
	}
	// Open-endpoint subtlety: [0,2] does not contain (…,2]'s closed end
	// reversed — an outer open end cannot cover an inner closed end.
	outer := Box{Dims: []types.Interval{{Lo: 0, Hi: 2, HiOpen: true}, types.ClosedInterval(1, 3)}}
	innerClosed := Box{Dims: []types.Interval{types.ClosedInterval(0, 2), types.ClosedInterval(1, 3)}}
	if outer.ContainsBox(innerClosed) {
		t.Error("open outer end must not cover closed inner end")
	}
}

// TestBoxIntersectProperty: box intersection is pointwise conjunction.
func TestBoxIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genBox := func(m int) Box {
		b := Box{Dims: make([]types.Interval, m)}
		for i := range b.Dims {
			lo := rng.Float64()*10 - 5
			b.Dims[i] = types.Interval{
				Lo: lo, Hi: lo + rng.Float64()*6 - 1,
				LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0,
			}
		}
		return b
	}
	f := func(seed int64) bool {
		rng.Seed(seed)
		m := 1 + rng.Intn(3)
		a, b := genBox(m), genBox(m)
		x := a.Intersect(b)
		for trial := 0; trial < 40; trial++ {
			p := make([]float64, m)
			for i := range p {
				p[i] = rng.Float64()*12 - 6
			}
			if x.Contains(p) != (a.Contains(p) && b.Contains(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxClampTo(t *testing.T) {
	b := FullBox(2).ClampTo([]float64{0, 0}, []float64{1, 2})
	if b.Volume() != 2 {
		t.Errorf("clamped volume = %g, want 2", b.Volume())
	}
	if b.String() == "" {
		t.Error("String empty")
	}
}

// TestQueryStringFormatStable pins the strconv-based String against the
// original fmt-based rendering byte for byte across randomized queries.
// Query strings are the probe-cache keys persisted inside snapshots, so any
// format drift would silently invalidate warm-restart probe replay.
func TestQueryStringFormatStable(t *testing.T) {
	reference := func(q Query) string {
		if len(q.Ranges) == 0 && len(q.Cats) == 0 {
			return "TRUE"
		}
		parts := make([]string, 0, len(q.Ranges)+len(q.Cats))
		attrs := make([]int, 0, len(q.Ranges))
		for a := range q.Ranges {
			attrs = append(attrs, a)
		}
		sort.Ints(attrs)
		for _, a := range attrs {
			parts = append(parts, fmt.Sprintf("A%d ∈ %s", a, q.Ranges[a]))
		}
		names := make([]string, 0, len(q.Cats))
		for n := range q.Cats {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s = %q", n, q.Cats[n]))
		}
		return strings.Join(parts, " AND ")
	}

	rng := rand.New(rand.NewSource(42))
	vals := []float64{0, 1, -1, 0.5, 1e-9, 1e17, 123456.789, math.Inf(-1), math.Inf(1), math.Pi}
	for trial := 0; trial < 500; trial++ {
		q := New()
		for a := 0; a < rng.Intn(4); a++ {
			q.Ranges[rng.Intn(6)] = types.Interval{
				Lo: vals[rng.Intn(len(vals))], Hi: vals[rng.Intn(len(vals))],
				LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0,
			}
		}
		for c := 0; c < rng.Intn(3); c++ {
			q.Cats[[]string{"make", "color", "x y", `q"uote`}[rng.Intn(4)]] =
				[]string{"", "UA", `he said "hi"`, "uniçode"}[rng.Intn(4)]
		}
		if got, want := q.String(), reference(q); got != want {
			t.Fatalf("String drifted:\n got %q\nwant %q", got, want)
		}
	}
}
