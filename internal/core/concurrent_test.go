package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// concurrentWorkItem is one (query, ranker, variant, h) unit of the shared
// concurrency workload.
type concurrentWorkItem struct {
	q query.Query
	r ranking.Ranker
	v Variant
	h int
}

// concurrentWorkload builds a mixed 1D / MD / TA workload over the test
// schema: the shapes a real multi-user service would see at once.
func concurrentWorkload(rng *rand.Rand) []concurrentWorkItem {
	var items []concurrentWorkItem
	cats := []string{"x", "y", "z"}
	for i := 0; i < 6; i++ {
		q := query.New().WithCat("cat", cats[i%3])
		dir := ranking.Asc
		if i%2 == 1 {
			dir = ranking.Desc
		}
		items = append(items, concurrentWorkItem{
			q: q, r: ranking.NewSingle("s", i%2, dir), v: Rerank, h: 8,
		})
	}
	for i := 0; i < 6; i++ {
		q := query.New()
		if i%2 == 0 {
			q = q.WithCat("cat", cats[i%3])
		}
		w := []float64{1, 1 + float64(i)*0.5}
		items = append(items, concurrentWorkItem{
			q: q, r: ranking.MustLinear("l", []int{0, 1}, w),
			v: []Variant{Rerank, Binary, Baseline}[i%3], h: 6,
		})
	}
	for i := 0; i < 4; i++ {
		items = append(items, concurrentWorkItem{
			q: query.New().WithCat("cat", cats[i%3]),
			r: ranking.MustLinear("t", []int{0, 1}, []float64{1, 2}),
			v: TAOverOneD, h: 5,
		})
	}
	_ = rng
	return items
}

// TestConcurrentSessionsExact drives many goroutines × cursors × rankers
// against one shared engine with -race in mind: every concurrent answer must
// equal the serial engine's answer, and the probe accounting must be exact —
// the engine counter equals the upstream's own counter, and the per-session
// ledgers partition it.
func TestConcurrentSessionsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db, all := newTestDB(t, rng, 2, 700, 5, true, systemRankers(2)[1])
	items := concurrentWorkload(rng)

	// Serial reference: one engine, items processed in order.
	serial := NewEngine(db, Options{N: 700})
	want := make([][]types.Tuple, len(items))
	for i, it := range items {
		cur, err := serial.NewCursor(it.q, it.r, it.v)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = TopH(cur, it.h); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent run: fresh engine, every item on its own goroutine and
	// session, several rounds so later rounds hit warm shared knowledge.
	db.ResetCounter()
	e := NewEngine(db, Options{N: 700})
	const rounds = 3
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		sessions []*Session
	)
	errs := make(chan error, rounds*len(items))
	got := make([][][]types.Tuple, rounds)
	for round := 0; round < rounds; round++ {
		got[round] = make([][]types.Tuple, len(items))
		for i, it := range items {
			wg.Add(1)
			go func(round, i int, it concurrentWorkItem) {
				defer wg.Done()
				sess := e.NewSession()
				mu.Lock()
				sessions = append(sessions, sess)
				mu.Unlock()
				cur, err := sess.NewCursor(it.q, it.r, it.v)
				if err != nil {
					errs <- err
					return
				}
				res, err := TopH(cur, it.h)
				if err != nil {
					errs <- fmt.Errorf("item %d round %d: %w", i, round, err)
					return
				}
				got[round][i] = res
			}(round, i, it)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for round := 0; round < rounds; round++ {
		for i, it := range items {
			full := oracleTopH(all, it.q, it.r, 1<<30)
			if it.v == TAOverOneD {
				// TA's emission order within an exact-score tie group
				// depends on sorted-access progress; compare as a
				// ranking.
				assertSameRanking(t, it.r, got[round][i], want[i], full)
				continue
			}
			// 1D and MD emission order is fully deterministic: exact
			// sequence equality with the serial run.
			if len(got[round][i]) != len(want[i]) {
				t.Fatalf("item %d round %d: got %d tuples, want %d",
					i, round, len(got[round][i]), len(want[i]))
			}
			for j := range want[i] {
				if got[round][i][j].ID != want[i][j].ID {
					t.Fatalf("item %d round %d rank %d: got ID %d, want %d",
						i, round, j, got[round][i][j].ID, want[i][j].ID)
				}
			}
		}
	}

	// Probe accounting must be exact: every upstream call counted once by
	// the engine, and the session ledgers partition the engine total.
	if e.Queries() != db.QueryCount() {
		t.Errorf("engine counted %d queries, upstream answered %d", e.Queries(), db.QueryCount())
	}
	var sum int64
	for _, s := range sessions {
		sum += s.Queries()
	}
	if sum != e.Queries() {
		t.Errorf("session ledgers sum to %d, engine counted %d", sum, e.Queries())
	}
	if e.Queries() == 0 {
		t.Error("concurrent run issued no upstream queries at all")
	}
}

// TestProbeCacheAmortizesRepeats verifies the coalescing cache's half of the
// acceptance criterion deterministically: repeating an identical request on
// a warm engine costs strictly less with the complete-answer LRU than
// without it, and QueriesIssued semantics hold (deduped probes count once:
// engine counter == upstream counter in both configurations).
func TestProbeCacheAmortizesRepeats(t *testing.T) {
	run := func(opts Options) int64 {
		rng := rand.New(rand.NewSource(17))
		db, _ := newTestDB(t, rng, 2, 500, 5, false, systemRankers(2)[1])
		db.ResetCounter()
		e := NewEngine(db, opts)
		r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})
		for i := 0; i < 6; i++ {
			cur, err := e.NewCursor(query.New().WithCat("cat", "x"), r, Rerank)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := TopH(cur, 8); err != nil {
				t.Fatal(err)
			}
		}
		if e.Queries() != db.QueryCount() {
			t.Fatalf("engine counted %d, upstream answered %d", e.Queries(), db.QueryCount())
		}
		return db.QueryCount()
	}
	with := run(Options{N: 500})
	without := run(Options{N: 500, DisableCoalescing: true})
	t.Logf("6 identical requests: %d queries with coalescing, %d without", with, without)
	if with >= without {
		t.Errorf("coalescing cache saved nothing: %d with vs %d without", with, without)
	}
}

// TestFlightGroupCoalesces exercises the in-flight dedup directly: a burst
// of identical slow probes must collapse to far fewer upstream executions.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var execs, leaders int64
	var mu sync.Mutex
	release := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, leader, err := g.Do("k", func() (hidden.Result, error) {
				mu.Lock()
				execs++
				mu.Unlock()
				<-release
				return hidden.Result{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			if leader {
				mu.Lock()
				leaders++
				mu.Unlock()
			}
		}()
	}
	// Let the burst pile onto the in-flight call, then release it. The
	// sleep-free guarantee is one leader per execution; the burst timing
	// makes full coalescing overwhelmingly likely.
	for {
		g.mu.Lock()
		_, inflight := g.inflight["k"]
		g.mu.Unlock()
		if inflight {
			break
		}
	}
	close(release)
	wg.Wait()
	if execs != leaders {
		t.Fatalf("%d executions but %d leaders", execs, leaders)
	}
	if execs >= callers {
		t.Fatalf("no coalescing at all: %d executions for %d callers", execs, callers)
	}
	t.Logf("%d callers collapsed to %d upstream executions", callers, execs)
}

// TestFlightGroupLeaderPanic pins the panic contract: a caller that
// coalesced onto a flight whose leader panics never observes a fabricated
// empty success — it re-issues on its own behalf and succeeds as a new
// leader — and the group stays usable afterwards.
func TestFlightGroupLeaderPanic(t *testing.T) {
	g := newFlightGroup()
	proceed := make(chan struct{})
	go func() {
		defer func() { _ = recover() }()
		_, _, _ = g.Do("k", func() (hidden.Result, error) {
			<-proceed
			panic("boom")
		})
	}()
	for {
		g.mu.Lock()
		_, inflight := g.inflight["k"]
		g.mu.Unlock()
		if inflight {
			break
		}
	}
	type outcome struct {
		leader bool
		ran    bool
		err    error
	}
	res := make(chan outcome, 1)
	go func() {
		ran := false
		_, leader, err := g.Do("k", func() (hidden.Result, error) {
			ran = true
			return hidden.Result{}, nil
		})
		res <- outcome{leader, ran, err}
	}()
	// Give the follower a beat to park on the flight before releasing the
	// leader. Whether it parked (re-contends after the panic) or arrived
	// just after the flight died (leads directly), the contract is the
	// same: its own fn runs and it succeeds.
	time.Sleep(time.Millisecond)
	close(proceed)
	o := <-res
	if o.err != nil {
		t.Fatalf("caller inherited the panicked flight's failure: %v", o.err)
	}
	if !o.leader || !o.ran {
		t.Fatalf("caller did not re-issue after the panicked flight: leader=%v ran=%v", o.leader, o.ran)
	}
	// The group must not be wedged: a fresh call leads and succeeds.
	if _, leader, err := g.Do("k", func() (hidden.Result, error) {
		return hidden.Result{}, nil
	}); !leader || err != nil {
		t.Fatalf("group wedged after panic: leader=%v err=%v", leader, err)
	}
}

// TestProbeCacheLRU pins the cache's bounded-LRU behavior: complete answers
// are served back, overflow pages are never stored, and the oldest entry is
// evicted first. Run without a column layout, the cache stores row results
// directly (the fallback path).
func TestProbeCacheLRU(t *testing.T) {
	p := newProbeCache(2, nil, nil)
	mk := func(id int) hidden.Result {
		return hidden.Result{Tuples: []types.Tuple{{ID: id}}}
	}
	p.put("a", mk(1), 1)
	p.put("b", mk(2), 1)
	if _, _, ok := p.get("a"); !ok {
		t.Fatal("a missing")
	}
	p.put("c", mk(3), 1) // evicts b (a was just touched)
	if _, _, ok := p.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, _, ok := p.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	p.put("d", hidden.Result{Overflow: true, Tuples: []types.Tuple{{ID: 4}}}, 1)
	if _, _, ok := p.get("d"); ok {
		t.Fatal("overflow pages must not be cached")
	}
	if res, _, ok := p.get("c"); !ok || res.Tuples[0].ID != 3 {
		t.Fatalf("c = %v, %v", res, ok)
	}
}

// TestProbeCacheColumnar pins the columnar storage path: regular answers are
// compacted through colstore and materialized lazily (repeat hits share one
// memoized decode), while irregular tuples fall back to row storage intact.
func TestProbeCacheColumnar(t *testing.T) {
	schema := types.MustSchema([]types.Attribute{
		{Name: "a", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 10}},
		{Name: "c", Kind: types.Categorical, Values: []string{"x", "y"}},
	})
	p := newProbeCache(4, colstore.NewLayout(schema), colstore.NewDict())
	reg := hidden.Result{Tuples: []types.Tuple{
		{ID: 1, Ord: []float64{1, 0}, Cat: map[string]string{"c": "x"}},
		{ID: 2, Ord: []float64{2, 0}},
	}}
	p.put("reg", reg, 1)
	got1, _, ok := p.get("reg")
	if !ok || len(got1.Tuples) != 2 || got1.Tuples[0].Cat["c"] != "x" || got1.Tuples[1].Ord[1] != 0 {
		t.Fatalf("columnar round-trip broken: %v %v", got1, ok)
	}
	got2, _, _ := p.get("reg")
	if &got1.Tuples[0] != &got2.Tuples[0] {
		t.Fatal("repeat hit re-materialized instead of sharing the memoized decode")
	}
	if p.approxBytes() <= 0 {
		t.Fatal("approxBytes not positive with a columnar entry")
	}
	// Irregular tuple (short Ord): must fall back to row storage, unchanged.
	irr := hidden.Result{Tuples: []types.Tuple{{ID: 3, Ord: []float64{5}}}}
	p.put("irr", irr, 1)
	got, _, ok := p.get("irr")
	if !ok || len(got.Tuples) != 1 || len(got.Tuples[0].Ord) != 1 {
		t.Fatalf("irregular fallback broken: %v %v", got, ok)
	}
}

// TestLiveSnapshotUnderLoad saves a snapshot while sessions are mutating the
// knowledge layer and restores it into a fresh engine: the restore must
// never reject the snapshot (dense regions reference only serialized
// tuples), and the warm engine must still answer exactly.
func TestLiveSnapshotUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db, all := newTestDB(t, rng, 2, 600, 5, true, systemRankers(2)[1])
	e := NewEngine(db, Options{N: 600})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := ranking.NewSingle("s", g%2, ranking.Asc)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cur, err := e.NewCursor(query.New().WithCat("cat", []string{"x", "y", "z"}[(g+i)%3]), r, Rerank)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := TopH(cur, 6); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	var snaps []string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := e.SaveSnapshot(&buf); err != nil {
			t.Fatalf("live snapshot %d: %v", i, err)
		}
		snaps = append(snaps, buf.String())
	}
	close(stop)
	wg.Wait()

	for i, snap := range snaps {
		warm := NewEngine(db, Options{N: 600})
		if err := warm.LoadSnapshot(strings.NewReader(snap)); err != nil {
			t.Fatalf("snapshot %d does not restore: %v", i, err)
		}
		r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})
		cur, err := warm.NewCursor(query.New(), r, Rerank)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TopH(cur, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleTopH(all, query.New(), r, 10)
		assertSameRanking(t, r, got, want, oracleTopH(all, query.New(), r, 1<<30))
	}
}
