// Engine state persistence.
//
// The whole value of the reranking service compounds over time: every
// upstream answer lands in the history store and every crawled dense region
// in the on-the-fly indexes. Real deployments restart; losing that state
// means re-spending rate-limited upstream queries. Snapshot serializes the
// engine's accumulated knowledge (history tuples + 1D dense regions) to
// JSON so a service can restart warm.
//
// Snapshots may be taken while sessions are running: the knowledge layer is
// internally guarded, and SaveSnapshot captures the dense regions before the
// history dump, so every tuple a region references is guaranteed to be in
// the (monotonically growing) tuple list. Tuples referenced by a region but
// absent from history (possible under DisableHistory) are appended
// explicitly.
//
// MD dense regions are rebuilt from history on demand rather than
// serialized: their tuples are a subset of history, and region boxes are
// cheap to re-crawl relative to their payload.

package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/types"
)

// snapshotVersion guards against loading incompatible files.
const snapshotVersion = 1

// Snapshot is the serialized engine state.
type Snapshot struct {
	Version int            `json:"version"`
	Queries int64          `json:"queries"`
	Tuples  []snapTuple    `json:"tuples"`
	Dense1D []snapInterval `json:"dense1d"`
	Schema  []string       `json:"schema"` // attribute names, for validation
}

type snapTuple struct {
	ID  int               `json:"id"`
	Ord []float64         `json:"ord"`
	Cat map[string]string `json:"cat,omitempty"`
}

type snapInterval struct {
	Attr   int     `json:"attr"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	LoOpen bool    `json:"loOpen"`
	HiOpen bool    `json:"hiOpen"`
	IDs    []int   `json:"ids"` // tuple IDs; payloads live in Tuples
}

// SaveSnapshot writes the engine's accumulated knowledge to w. It is safe
// to call while sessions are running concurrently.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	snap := Snapshot{
		Version: snapshotVersion,
		Queries: e.know.queries.Load(),
		Schema:  e.db.Schema().Names(),
	}
	// Dense regions first: history only grows, so capturing regions before
	// the tuple dump keeps region ID references resolvable even when other
	// sessions insert concurrently.
	var regions [][]index.Interval1D
	attrs := e.db.Schema().OrdinalIndexes()
	for _, attr := range attrs {
		regions = append(regions, e.know.dense1.Export(attr))
	}
	seen := make(map[int]bool)
	e.know.hist.ForEachMatching(query.New(), func(t types.Tuple) bool {
		snap.Tuples = append(snap.Tuples, snapTuple{ID: t.ID, Ord: t.Ord, Cat: t.Cat})
		seen[t.ID] = true
		return true
	})
	for i, attr := range attrs {
		for _, reg := range regions[i] {
			si := snapInterval{
				Attr: attr,
				Lo:   reg.Range.Lo, Hi: reg.Range.Hi,
				LoOpen: reg.Range.LoOpen, HiOpen: reg.Range.HiOpen,
			}
			for _, t := range reg.Tuples {
				si.IDs = append(si.IDs, t.ID)
				if !seen[t.ID] {
					seen[t.ID] = true
					snap.Tuples = append(snap.Tuples, snapTuple{ID: t.ID, Ord: t.Ord, Cat: t.Cat})
				}
			}
			snap.Dense1D = append(snap.Dense1D, si)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// LoadSnapshot restores previously saved knowledge into a fresh engine.
// The snapshot must come from an engine over the same schema. Dense-region
// tuples that reference IDs missing from the snapshot are rejected.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	names := e.db.Schema().Names()
	if len(names) != len(snap.Schema) {
		return fmt.Errorf("core: snapshot schema has %d attributes, database has %d", len(snap.Schema), len(names))
	}
	for i := range names {
		if names[i] != snap.Schema[i] {
			return fmt.Errorf("core: snapshot schema mismatch at %d: %q vs %q", i, snap.Schema[i], names[i])
		}
	}
	byID := make(map[int]types.Tuple, len(snap.Tuples))
	for _, st := range snap.Tuples {
		if len(st.Ord) != len(names) {
			return fmt.Errorf("core: snapshot tuple %d has %d values, want %d", st.ID, len(st.Ord), len(names))
		}
		t := types.Tuple{ID: st.ID, Ord: st.Ord, Cat: st.Cat}
		byID[st.ID] = t
		e.know.hist.Add(t)
	}
	for _, si := range snap.Dense1D {
		if si.Attr < 0 || si.Attr >= len(names) {
			return fmt.Errorf("core: snapshot dense region on invalid attribute %d", si.Attr)
		}
		tuples := make([]types.Tuple, 0, len(si.IDs))
		for _, id := range si.IDs {
			t, ok := byID[id]
			if !ok {
				return fmt.Errorf("core: dense region references unknown tuple %d", id)
			}
			tuples = append(tuples, t)
		}
		e.know.dense1.Insert(si.Attr, types.Interval{
			Lo: si.Lo, Hi: si.Hi, LoOpen: si.LoOpen, HiOpen: si.HiOpen,
		}, tuples)
	}
	return nil
}
