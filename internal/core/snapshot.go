// Engine state persistence.
//
// The whole value of the reranking service compounds over time: every
// upstream answer lands in the history store and every crawled dense region
// in the on-the-fly indexes. Real deployments restart; losing that state
// means re-spending rate-limited upstream queries. Snapshot serializes the
// engine's accumulated knowledge — history tuples, 1D dense regions, MD
// dense regions, and the probe-coalescing LRU's complete answers — to JSON
// so a service restarts warm at the tuple, region, and probe level: an
// MD-RERANK session over a previously-crawled dense region costs a restarted
// service zero upstream queries.
//
// Snapshots may be taken while sessions are running: the knowledge layer is
// internally guarded, and SaveSnapshot captures the dense regions and probe
// entries before the history dump, so every tuple a region references is
// guaranteed to be in the (monotonically growing) tuple list. Tuples
// referenced by a region but absent from history (possible under
// DisableHistory) are appended explicitly.
//
// # Format versions
//
// Version 1 (PR 1): queries counter, history tuples, 1D dense regions.
//
// Version 2 (PR 2) adds "probes": the probe-coalescing LRU's complete
// (valid/underflow) answers, keyed by canonical query string and referencing
// tuples by ID in upstream rank order, so a restarted service answers a
// repeated probe for zero upstream queries. It also adds the upstream
// fingerprint (system-k and system-ranker name) guarding their restore.
//
// Version 3 (PR 3) adds "denseMD": the crawled MD dense regions, one entry
// per (attribute subset, box) with the region bounds, the crawled tuples'
// IDs, and a completion marker. Previously MD regions were discarded on
// restart and re-crawled from upstream on demand — exactly the amortized
// knowledge the system exists to accumulate. Version 3 also brings the 1D
// dense regions under the fingerprint gate that v2 introduced for probes:
// dense regions (1D and MD) and probes restore only when the upstream
// fingerprint matches, because a region's authority ("these are ALL the
// corpus tuples in this range") assumes the same corpus, and a visibly
// different upstream (different k or system ranker) is evidence the
// deployment changed. History tuples are restored either way — an observed
// tuple is a corpus fact under the Database contract.
//
// Version 4 (PR 9) adds "heat": the request-window heat sketch feeding the
// background knowledge acquirer (internal/acquire), so proactive
// acquisition resumes where it left off after a restart. Heat is demand
// statistics — facts about what users asked, not about the corpus — so it
// restores without the fingerprint gate, like history.
//
// Version 5 (PR 10) adds knowledge epochs: the namespace's current epoch
// ("epoch" on the snapshot) and each dense region's / cached probe's
// acquisition epoch. A restored engine knows which of its knowledge is
// current and which predates the last detected upstream drift and must be
// lazily re-validated before answering. Absent epochs (older formats) load
// as the first epoch. (The ISSUE text calls this the "v4 bump"; v4 was
// already taken by heat, so epochs land in v5.)
//
// Older versions always load: a vN engine reading a v(N-1) snapshot restores
// every section the older format carries and leaves the rest cold. Snapshots
// are written at the current version unconditionally.
//
// Snapshots persist dense regions as plain (bounds, tuple IDs) records; the
// sub-linear lookup structures around them — the 1D sorted region arrays
// and the MD centroid-grid buckets — are not serialized. LoadSnapshot
// replays every region through the live Insert path, which rebuilds both
// incrementally, so a restored engine's indexes are bit-identical to the
// saved engine's (asserted by TestSnapshotRebuildsDenseStructures).

package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/acquire"
	"repro/internal/hidden"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/types"
)

// snapshotVersion is the version written by SaveSnapshot; LoadSnapshot
// accepts any version from snapshotVersionMin up to it.
const (
	snapshotVersionMin = 1
	snapshotVersion    = 5
)

// Snapshot is the serialized engine state.
type Snapshot struct {
	Version int            `json:"version"`
	Queries int64          `json:"queries"`
	Tuples  []snapTuple    `json:"tuples"`
	Dense1D []snapInterval `json:"dense1d"`
	// DenseMD holds the crawled MD dense regions (v3+; absent before).
	// Restored only under a matching upstream fingerprint, like Probes.
	DenseMD []snapMDRegion `json:"denseMD,omitempty"`
	// Probes holds the probe-coalescing LRU's complete answers, least
	// recently used first (v2+; absent in v1 snapshots).
	Probes []snapProbe `json:"probes,omitempty"`
	// UpstreamK and UpstreamRanker fingerprint the upstream that produced
	// the cached probe answers (v2+). Cached answers replay upstream
	// responses verbatim, so LoadSnapshot drops the probe section — never
	// the history — when the fingerprint visibly differs; history tuples
	// are corpus facts either way, but probe answers also encode the
	// upstream's ranking behavior.
	UpstreamK      int      `json:"upstreamK,omitempty"`
	UpstreamRanker string   `json:"upstreamRanker,omitempty"`
	Schema         []string `json:"schema"` // attribute names, for validation
	// Heat is the request-window heat sketch (v4+; absent before, and
	// omitted when no heat is live). Restored without the fingerprint
	// gate: it describes user demand, not the corpus.
	Heat *acquire.HeatExport `json:"heat,omitempty"`
	// Epoch is the namespace's knowledge epoch at save time (v5+; absent
	// loads as the first epoch).
	Epoch int64 `json:"epoch,omitempty"`
}

type snapTuple struct {
	ID  int               `json:"id"`
	Ord []float64         `json:"ord"`
	Cat map[string]string `json:"cat,omitempty"`
}

// snapProbe is one cached complete probe answer: the canonical query key and
// the answered tuple IDs in upstream rank order. Only complete answers are
// ever cached, so no overflow flag is needed.
type snapProbe struct {
	Key   string `json:"key"`
	IDs   []int  `json:"ids"`             // payloads live in Tuples
	Epoch int64  `json:"epoch,omitempty"` // acquisition epoch (v5+)
}

type snapInterval struct {
	Attr   int     `json:"attr"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	LoOpen bool    `json:"loOpen"`
	HiOpen bool    `json:"hiOpen"`
	IDs    []int   `json:"ids"`             // tuple IDs; payloads live in Tuples
	Epoch  int64   `json:"epoch,omitempty"` // acquisition epoch (v5+)
}

// snapDim is one side of an MD region's box in real-value space.
type snapDim struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	LoOpen bool    `json:"loOpen,omitempty"`
	HiOpen bool    `json:"hiOpen,omitempty"`
}

// snapMDRegion is one fully-crawled MD dense region (v3+): the canonical
// sorted attribute subset it indexes under, the region's box (one dimension
// per attribute, same order), and the crawled tuples' IDs. Complete marks
// the crawl as finished — only complete regions are authoritative, and
// LoadSnapshot skips any region not marked so (a forward-compatibility hook
// for partially-persisted crawls).
type snapMDRegion struct {
	Attrs    []int     `json:"attrs"`
	Dims     []snapDim `json:"dims"`
	IDs      []int     `json:"ids"` // payloads live in Tuples
	Complete bool      `json:"complete"`
	Epoch    int64     `json:"epoch,omitempty"` // acquisition epoch (v5+)
}

// SaveSnapshot writes the engine's accumulated knowledge to w. It is safe
// to call while sessions are running concurrently.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	snap := Snapshot{
		Version:        snapshotVersion,
		Queries:        e.know.queries.Load(),
		Schema:         e.db.Schema().Names(),
		UpstreamK:      e.db.K(),
		UpstreamRanker: upstreamRankerName(e.db),
		Heat:           e.know.heat.Export(),
		Epoch:          e.know.Epoch(),
	}
	// Dense regions and probe-cache entries first: history only grows, so
	// capturing them before the tuple dump keeps most ID references
	// resolvable even when other sessions insert concurrently; the few
	// referenced tuples still missing from history (possible under
	// DisableHistory, or for a probe cached just before its leader's
	// history insert) are appended explicitly below.
	var regions [][]index.Interval1D
	attrs := e.db.Schema().OrdinalIndexes()
	for _, attr := range attrs {
		regions = append(regions, e.know.dense1.Export(attr))
	}
	mdExports := e.know.exportMD()
	probes := e.probes.export()
	seen := make(map[int]bool)
	addTuple := func(t types.Tuple) {
		if !seen[t.ID] {
			seen[t.ID] = true
			snap.Tuples = append(snap.Tuples, snapTuple{ID: t.ID, Ord: t.Ord, Cat: t.Cat})
		}
	}
	e.know.hist.ForEachMatching(query.New(), func(t types.Tuple) bool {
		addTuple(t)
		return true
	})
	for _, pe := range probes {
		sp := snapProbe{Key: pe.Key, Epoch: pe.Epoch, IDs: make([]int, 0, len(pe.Res.Tuples))}
		for _, t := range pe.Res.Tuples {
			sp.IDs = append(sp.IDs, t.ID)
			addTuple(t)
		}
		snap.Probes = append(snap.Probes, sp)
	}
	for i, attr := range attrs {
		for _, reg := range regions[i] {
			si := snapInterval{
				Attr: attr,
				Lo:   reg.Range.Lo, Hi: reg.Range.Hi,
				LoOpen: reg.Range.LoOpen, HiOpen: reg.Range.HiOpen,
				Epoch: reg.Epoch,
			}
			for _, t := range reg.Tuples {
				si.IDs = append(si.IDs, t.ID)
				addTuple(t)
			}
			snap.Dense1D = append(snap.Dense1D, si)
		}
	}
	for _, ex := range mdExports {
		for _, reg := range ex.regions {
			sr := snapMDRegion{
				Attrs:    ex.attrs,
				Dims:     make([]snapDim, len(reg.Box.Dims)),
				Complete: true, // only fully-crawled regions enter the index
				Epoch:    reg.Epoch,
			}
			for j, iv := range reg.Box.Dims {
				sr.Dims[j] = snapDim{Lo: iv.Lo, Hi: iv.Hi, LoOpen: iv.LoOpen, HiOpen: iv.HiOpen}
			}
			for _, t := range reg.Tuples {
				sr.IDs = append(sr.IDs, t.ID)
				addTuple(t)
			}
			snap.DenseMD = append(snap.DenseMD, sr)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// LoadSnapshot restores previously saved knowledge into a fresh engine.
// The snapshot must come from an engine over the same schema. Dense-region
// tuples that reference IDs missing from the snapshot are rejected.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	if snap.Version < snapshotVersionMin || snap.Version > snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d..%d", snap.Version, snapshotVersionMin, snapshotVersion)
	}
	names := e.db.Schema().Names()
	if len(names) != len(snap.Schema) {
		return fmt.Errorf("core: snapshot schema has %d attributes, database has %d", len(snap.Schema), len(names))
	}
	for i := range names {
		if names[i] != snap.Schema[i] {
			return fmt.Errorf("core: snapshot schema mismatch at %d: %q vs %q", i, snap.Schema[i], names[i])
		}
	}
	byID := make(map[int]types.Tuple, len(snap.Tuples))
	batch := make([]types.Tuple, 0, len(snap.Tuples))
	for _, st := range snap.Tuples {
		if len(st.Ord) != len(names) {
			return fmt.Errorf("core: snapshot tuple %d has %d values, want %d", st.ID, len(st.Ord), len(names))
		}
		t := types.Tuple{ID: st.ID, Ord: st.Ord, Cat: st.Cat}
		byID[st.ID] = t
		batch = append(batch, t)
	}
	// One variadic Add: the store batches its per-shard index inserts per
	// call, so this restores in one pass instead of n lock round-trips.
	e.know.hist.Add(batch...)
	// Heat (v4+) restores like history, outside the fingerprint gate: it
	// records what users asked for, which stays true whatever the upstream
	// looks like now. Import clamps unknown attributes/cells away.
	e.know.heat.Import(snap.Heat)
	// The namespace epoch (v5+) restores forward-only, before the regions
	// below, so regions persisted at the then-current epoch read as fresh
	// and older ones as stale — exactly the saved engine's view.
	if snap.Epoch > 0 {
		e.know.restoreEpoch(snap.Epoch)
	}
	// Everything below — dense regions (1D and MD) and the probe cache —
	// restores only under a matching upstream fingerprint: cached probe
	// answers replay one specific upstream's responses verbatim, and a
	// crawled region's authority ("these are ALL the corpus tuples in this
	// range") assumes the same corpus — a changed k or system ranker is
	// evidence the deployment changed, so they stay cold rather than
	// serving another upstream's state. (An unknown fingerprint side —
	// zero k or empty ranker name, as in v1 snapshots — skips that
	// comparison.) History tuples above restore either way: an observed
	// tuple is a corpus fact.
	if snap.UpstreamK != 0 && snap.UpstreamK != e.db.K() {
		return nil
	}
	if name := upstreamRankerName(e.db); snap.UpstreamRanker != "" && name != "" && snap.UpstreamRanker != name {
		return nil
	}
	for _, si := range snap.Dense1D {
		if si.Attr < 0 || si.Attr >= len(names) {
			return fmt.Errorf("core: snapshot dense region on invalid attribute %d", si.Attr)
		}
		tuples := make([]types.Tuple, 0, len(si.IDs))
		for _, id := range si.IDs {
			t, ok := byID[id]
			if !ok {
				return fmt.Errorf("core: dense region references unknown tuple %d", id)
			}
			tuples = append(tuples, t)
		}
		e.know.insertDense1Epoch(si.Attr, types.Interval{
			Lo: si.Lo, Hi: si.Hi, LoOpen: si.LoOpen, HiOpen: si.HiOpen,
		}, tuples, epochOrFirst(si.Epoch))
	}
	// MD dense-region warm restart (v3+). Incomplete regions (a
	// forward-compatibility hook; never written today) are skipped, not
	// rejected: they are merely not authoritative.
	for _, sr := range snap.DenseMD {
		if !sr.Complete {
			continue
		}
		if len(sr.Attrs) == 0 || len(sr.Dims) != len(sr.Attrs) {
			return fmt.Errorf("core: snapshot MD region has %d dims for %d attributes", len(sr.Dims), len(sr.Attrs))
		}
		for i, a := range sr.Attrs {
			if a < 0 || a >= len(names) {
				return fmt.Errorf("core: snapshot MD region on invalid attribute %d", a)
			}
			if i > 0 && sr.Attrs[i-1] >= a {
				return fmt.Errorf("core: snapshot MD region attributes %v not strictly ascending", sr.Attrs)
			}
		}
		box := query.Box{Dims: make([]types.Interval, len(sr.Dims))}
		for j, d := range sr.Dims {
			box.Dims[j] = types.Interval{Lo: d.Lo, Hi: d.Hi, LoOpen: d.LoOpen, HiOpen: d.HiOpen}
		}
		tuples := make([]types.Tuple, 0, len(sr.IDs))
		for _, id := range sr.IDs {
			t, ok := byID[id]
			if !ok {
				return fmt.Errorf("core: MD dense region references unknown tuple %d", id)
			}
			tuples = append(tuples, t)
		}
		e.know.insertDenseMDEpoch(sr.Attrs, box, tuples, epochOrFirst(sr.Epoch))
	}
	// Probe-cache warm restart (v2+). Entries are stored least recently
	// used first, so replaying them in order reproduces the LRU state.
	for _, sp := range snap.Probes {
		res := hidden.Result{Tuples: make([]types.Tuple, 0, len(sp.IDs))}
		for _, id := range sp.IDs {
			t, ok := byID[id]
			if !ok {
				return fmt.Errorf("core: cached probe %q references unknown tuple %d", sp.Key, id)
			}
			res.Tuples = append(res.Tuples, t)
		}
		e.probes.restore(sp.Key, res, epochOrFirst(sp.Epoch))
	}
	return nil
}

// upstreamRankerName identifies the upstream's system ranking when the
// database exposes one (in-process hidden.DB); remote upstreams return "".
func upstreamRankerName(db hidden.Database) string {
	if hdb, ok := db.(*hidden.DB); ok {
		return hdb.RankerName()
	}
	return ""
}
