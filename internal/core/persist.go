// Incremental knowledge persistence: the engine side of the segment store.
//
// A Persister turns the engine's accumulated knowledge into a stream of
// checkpoint deltas (segment.Delta) committed through a segment.Store, and
// replays a store's committed deltas back into a fresh engine at startup.
// Unlike SaveSnapshot — which rewrites ALL knowledge at drain time — a
// checkpoint commits only what changed since the previous one, so it runs
// concurrently with serving and a crash loses at most one checkpoint
// interval of knowledge.
//
// # What a delta contains, and how it stays cheap
//
// History needs no per-insert hook: the store's append-only columnar arena
// gives every tuple a monotone row number, so "what is new since the last
// checkpoint" is simply the contiguous row range [histLo, Rows()). Dense
// region inserts and probe-cache admissions are recorded as logical
// operations (attribute/box/key plus tuple IDs) by thin wrappers on the live
// insert paths; replay pushes them back through those same live paths, so a
// rebuilt engine's index structures are bit-identical to the saved engine's
// — the same property the snapshot loader asserts.
//
// Operations reference tuples by ID. A referenced tuple is normally covered
// by the committed history prefix (sessions add probe pages to history
// before inserting regions built from them); when it is not — DisableHistory,
// or a probe recorded in the window before its leader's history insert — the
// payload is inlined into the delta's Tuples section, so every committed
// delta is self-contained given its committed predecessors.
//
// # Failure handling
//
// A failed append re-queues the captured operations ahead of anything
// recorded meanwhile and keeps the history watermark, so the next checkpoint
// retries the same knowledge; the store itself rolls the journal back to its
// last committed record. Nothing is ever dropped silently — the last error
// is surfaced through Stats.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hidden"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/types"
)

// PersistOptions tune AttachPersistence.
type PersistOptions struct {
	// Interval is the background checkpoint period; 0 disables the
	// background loop (checkpoints then happen only via Checkpoint/Close).
	Interval time.Duration
	// Logf, when set, receives background checkpoint failures.
	Logf func(format string, args ...any)
}

// Persister incrementally checkpoints an engine's knowledge into a
// segment.Store. It is safe for concurrent use with serving sessions: the
// recording hooks take a short mutex, and checkpoint capture holds it only
// long enough to swap the pending-operation queue.
type Persister struct {
	e     *Engine
	store *segment.Store
	logf  func(format string, args ...any)

	mu      sync.Mutex
	histLo  int         // next history arena row not yet committed
	heatObs int64       // heat-sketch observation count at last committed capture
	ops     []pendingOp // dense/probe mutations since the last capture
	lastErr error

	stop chan struct{} // closes to stop the background loop (nil when none)
	done chan struct{}
	once sync.Once
}

type opKind int

const (
	opDense1 opKind = iota
	opDenseMD
	opProbe
	opEpoch
)

// pendingOp is one recorded knowledge mutation awaiting checkpoint. The
// tuple slice is shared with the engine (engine-wide immutable), not copied.
type pendingOp struct {
	kind   opKind
	attr   int            // opDense1
	iv     types.Interval // opDense1
	attrs  []int          // opDenseMD, canonical sorted order
	box    query.Box      // opDenseMD
	key    string         // opProbe
	tuples []types.Tuple
	epoch  int64 // acquisition epoch (opDense1/opDenseMD/opProbe), or the new epoch (opEpoch)
}

// PersistFingerprint identifies this engine's upstream deployment for the
// segment store — the same identity the snapshot format guards probe and
// dense-region restores with.
func (e *Engine) PersistFingerprint() segment.Fingerprint {
	return segment.Fingerprint{
		Schema:         e.db.Schema().Names(),
		UpstreamK:      e.db.K(),
		UpstreamRanker: upstreamRankerName(e.db),
	}
}

// AttachPersistence replays the store's committed knowledge into the engine,
// then installs the recording hooks and (when opts.Interval > 0) starts the
// background checkpoint loop. Attach before loading any -state snapshot:
// replay must see the engine exactly as the recorded operations left it, and
// a snapshot loaded afterwards flows through the recording hooks so its
// knowledge is persisted too.
//
// The returned Persister owns the store: Close checkpoints once more and
// closes it. At most one Persister may be attached to an engine.
func (e *Engine) AttachPersistence(store *segment.Store, opts PersistOptions) (*Persister, error) {
	if e.know.persist.Load() != nil {
		return nil, fmt.Errorf("core: persistence already attached")
	}
	if err := store.Replay(func(d *segment.Delta) error { return e.applyDelta(d) }); err != nil {
		return nil, fmt.Errorf("core: segment replay: %w", err)
	}
	p := &Persister{
		e:       e,
		store:   store,
		logf:    opts.Logf,
		histLo:  e.know.hist.Rows(),
		heatObs: e.know.heat.Observations(),
	}
	e.know.persist.Store(p)
	e.probes.persist.Store(p)
	if opts.Interval > 0 {
		p.stop = make(chan struct{})
		p.done = make(chan struct{})
		go p.loop(opts.Interval)
	}
	return p, nil
}

// Persister returns the attached persister, or nil.
func (e *Engine) Persister() *Persister { return e.know.persist.Load() }

// applyDelta replays one committed delta through the engine's live insert
// paths. Tuple IDs resolve from the delta itself (its Hist range and inline
// Tuples) or from history committed by earlier deltas; an unresolvable ID
// means the store's invariants are broken and the error makes Replay
// quarantine from this record on.
func (e *Engine) applyDelta(d *segment.Delta) error {
	byID := make(map[int]types.Tuple, len(d.Hist)+len(d.Tuples))
	for _, st := range append(append([]segment.Tuple(nil), d.Hist...), d.Tuples...) {
		byID[st.ID] = types.Tuple{ID: st.ID, Ord: st.Ord, Cat: st.Cat}
	}
	if len(d.Hist) > 0 {
		batch := make([]types.Tuple, 0, len(d.Hist))
		for _, st := range d.Hist {
			batch = append(batch, byID[st.ID])
		}
		e.know.hist.Add(batch...)
	}
	resolve := func(ids []int) ([]types.Tuple, error) {
		tuples := make([]types.Tuple, 0, len(ids))
		for _, id := range ids {
			t, ok := byID[id]
			if !ok {
				if t, ok = e.know.hist.Get(id); !ok {
					return nil, fmt.Errorf("core: delta references unknown tuple %d", id)
				}
			}
			tuples = append(tuples, t)
		}
		return tuples, nil
	}
	// Restore the epoch before region inserts so that any region this delta
	// carries at the (now current) epoch reads as fresh, not stale.
	if d.Epoch > 0 {
		e.know.restoreEpoch(d.Epoch)
	}
	for _, op := range d.Dense1 {
		tuples, err := resolve(op.IDs)
		if err != nil {
			return err
		}
		e.know.dense1.InsertEpoch(op.Attr, coreInterval(op.Dim), tuples, epochOrFirst(op.Epoch))
	}
	for _, op := range d.DenseMD {
		if len(op.Attrs) == 0 || len(op.Dims) != len(op.Attrs) {
			return fmt.Errorf("core: delta MD region has %d dims for %d attributes", len(op.Dims), len(op.Attrs))
		}
		tuples, err := resolve(op.IDs)
		if err != nil {
			return err
		}
		box := query.Box{Dims: make([]types.Interval, len(op.Dims))}
		for i, dim := range op.Dims {
			box.Dims[i] = coreInterval(dim)
		}
		e.know.mdIndexFor(op.Attrs).InsertEpoch(box, tuples, epochOrFirst(op.Epoch))
	}
	for _, op := range d.Probes {
		tuples, err := resolve(op.IDs)
		if err != nil {
			return err
		}
		e.probes.seed(op.Key, hidden.Result{Tuples: tuples}, epochOrFirst(op.Epoch))
	}
	// Heat is last-wins across deltas and Import is idempotent, so replaying
	// a committed prefix (or the same delta twice after a retry) converges.
	e.know.heat.Import(d.Heat)
	// d.Queries is informational (lifetime counter at capture time) and not
	// restored, matching LoadSnapshot: a restarted engine's counter measures
	// cost paid by THIS process.
	return nil
}

// recordDense1 queues a 1D dense-region insert for the next checkpoint.
func (p *Persister) recordDense1(attr int, iv types.Interval, tuples []types.Tuple, epoch int64) {
	p.mu.Lock()
	p.ops = append(p.ops, pendingOp{kind: opDense1, attr: attr, iv: iv, tuples: tuples, epoch: epoch})
	p.mu.Unlock()
}

// recordDenseMD queues an MD dense-region insert for the next checkpoint.
// attrs must already be in canonical sorted order (Knowledge.InsertDenseMD
// guarantees this).
func (p *Persister) recordDenseMD(attrs []int, box query.Box, tuples []types.Tuple, epoch int64) {
	p.mu.Lock()
	p.ops = append(p.ops, pendingOp{kind: opDenseMD, attrs: attrs, box: box, tuples: tuples, epoch: epoch})
	p.mu.Unlock()
}

// recordProbe queues a cached complete probe answer for the next checkpoint.
func (p *Persister) recordProbe(key string, res hidden.Result, epoch int64) {
	p.mu.Lock()
	p.ops = append(p.ops, pendingOp{kind: opProbe, key: key, tuples: res.Tuples, epoch: epoch})
	p.mu.Unlock()
}

// recordEpoch queues a knowledge-epoch bump for the next checkpoint. A bump
// is durable knowledge in its own right: losing it would resurrect stale
// regions as current after a restart.
func (p *Persister) recordEpoch(epoch int64) {
	p.mu.Lock()
	p.ops = append(p.ops, pendingOp{kind: opEpoch, epoch: epoch})
	p.mu.Unlock()
}

// Checkpoint captures everything recorded since the last successful
// checkpoint and commits it as one delta. Concurrent sessions keep serving
// (and recording) throughout: capture is a queue swap under a short mutex,
// and the delta is built and written entirely off-lock. An empty capture
// writes nothing. On append failure the captured work is re-queued and the
// error is also surfaced via Stats.
func (p *Persister) Checkpoint() error {
	p.mu.Lock()
	ops := p.ops
	p.ops = nil
	histLo := p.histLo
	heatObs := p.heatObs
	p.mu.Unlock()

	// The watermark is read AFTER the queue swap: any tuple a captured op
	// references that reached history before the op was recorded is below
	// this histHi, so it commits by reference in this very delta.
	histHi := p.e.know.hist.Rows()
	d := p.buildDelta(histLo, histHi, ops)
	// Heat rides the delta only when observations advanced since the last
	// committed capture, so an idle engine stays checkpoint-quiet. The
	// observation count is read BEFORE the export: observations arriving in
	// between are exported now and re-exported next time — harmless, since
	// Import is idempotent — whereas the opposite order could mark them
	// committed without capturing them.
	obs := p.e.know.heat.Observations()
	if obs != heatObs {
		d.Heat = p.e.know.heat.Export()
	}
	if d.Empty() {
		return nil
	}
	if err := p.store.Append(d); err != nil {
		p.mu.Lock()
		p.ops = append(ops, p.ops...) // retry before anything recorded since
		p.lastErr = err
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	p.histLo = histHi
	p.heatObs = obs
	p.lastErr = nil
	p.mu.Unlock()
	return nil
}

// buildDelta assembles one checkpoint delta: the new history row range plus
// the captured operations, inlining payloads for any referenced tuple not
// covered by the committed history prefix.
func (p *Persister) buildDelta(histLo, histHi int, ops []pendingOp) *segment.Delta {
	d := &segment.Delta{HistLo: histLo, HistHi: histHi, Queries: p.e.know.queries.Load()}
	hist := p.e.know.hist
	for _, t := range hist.ExportRows(histLo, histHi) {
		d.Hist = append(d.Hist, segTuple(t))
	}
	inlined := make(map[int]bool)
	resolve := func(tuples []types.Tuple) []int {
		ids := make([]int, 0, len(tuples))
		for _, t := range tuples {
			ids = append(ids, t.ID)
			if row, ok := hist.RowOf(t.ID); ok && row < histHi {
				continue // committed by this delta's Hist range or earlier
			}
			if !inlined[t.ID] {
				inlined[t.ID] = true
				d.Tuples = append(d.Tuples, segTuple(t))
			}
		}
		return ids
	}
	for _, op := range ops {
		switch op.kind {
		case opDense1:
			d.Dense1 = append(d.Dense1, segment.Dense1Op{Attr: op.attr, Dim: segDim(op.iv), IDs: resolve(op.tuples), Epoch: op.epoch})
		case opDenseMD:
			md := segment.MDOp{Attrs: op.attrs, Dims: make([]segment.Dim, len(op.box.Dims)), IDs: resolve(op.tuples), Epoch: op.epoch}
			for i, iv := range op.box.Dims {
				md.Dims[i] = segDim(iv)
			}
			d.DenseMD = append(d.DenseMD, md)
		case opProbe:
			d.Probes = append(d.Probes, segment.ProbeOp{Key: op.key, IDs: resolve(op.tuples), Epoch: op.epoch})
		case opEpoch:
			if op.epoch > d.Epoch {
				d.Epoch = op.epoch
			}
		}
	}
	return d
}

// loop runs background checkpoints until Close.
func (p *Persister) loop(interval time.Duration) {
	defer close(p.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			if err := p.Checkpoint(); err != nil && p.logf != nil {
				p.logf("checkpoint failed (will retry): %v", err)
			}
		}
	}
}

// Close stops the background loop, takes one final checkpoint, detaches the
// recording hooks, and closes the store. Safe to call more than once.
func (p *Persister) Close() error {
	var err error
	p.once.Do(func() {
		if p.stop != nil {
			close(p.stop)
			<-p.done
		}
		err = p.Checkpoint()
		p.e.know.persist.CompareAndSwap(p, nil)
		p.e.probes.persist.CompareAndSwap(p, nil)
		if cerr := p.store.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// PersistStats describes the persister's progress for observability.
type PersistStats struct {
	// Store mirrors the underlying segment store's counters.
	Store segment.Stats
	// PendingOps is the number of recorded operations awaiting checkpoint.
	PendingOps int
	// HistLo is the history row watermark: rows below it are committed.
	HistLo int
	// LastError is the most recent checkpoint failure ("" when healthy).
	LastError string
}

// Stats returns the persister's current counters.
func (p *Persister) Stats() PersistStats {
	p.mu.Lock()
	st := PersistStats{PendingOps: len(p.ops), HistLo: p.histLo}
	if p.lastErr != nil {
		st.LastError = p.lastErr.Error()
	}
	p.mu.Unlock()
	st.Store = p.store.Stats()
	return st
}

func segTuple(t types.Tuple) segment.Tuple {
	return segment.Tuple{ID: t.ID, Ord: t.Ord, Cat: t.Cat}
}

func segDim(iv types.Interval) segment.Dim {
	return segment.Dim{Lo: iv.Lo, Hi: iv.Hi, LoOpen: iv.LoOpen, HiOpen: iv.HiOpen}
}

func coreInterval(d segment.Dim) types.Interval {
	return types.Interval{Lo: d.Lo, Hi: d.Hi, LoOpen: d.LoOpen, HiOpen: d.HiOpen}
}

// epochOrFirst maps a persisted epoch to its replay value: 0 (older
// formats without epoch fields) means the first epoch.
func epochOrFirst(e int64) int64 {
	if e <= 0 {
		return index.FirstEpoch
	}
	return e
}
