package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// testSchema builds an m-ordinal-attribute schema with one categorical
// filter column.
func testSchema(m int) *types.Schema {
	attrs := make([]types.Attribute, 0, m+1)
	for i := 0; i < m; i++ {
		attrs = append(attrs, types.Attribute{
			Name: fmt.Sprintf("A%d", i), Kind: types.Ordinal,
			Domain: types.Domain{Min: 0, Max: 100},
		})
	}
	attrs = append(attrs, types.Attribute{
		Name: "cat", Kind: types.Categorical, Values: []string{"x", "y", "z"},
	})
	return types.MustSchema(attrs)
}

// genTuples generates n random tuples. When ties is true, values are drawn
// from a coarse grid so duplicates (non-general-positioning) occur.
func genTuples(rng *rand.Rand, schema *types.Schema, n int, ties bool) []types.Tuple {
	m := schema.Len()
	cats := []string{"x", "y", "z"}
	out := make([]types.Tuple, n)
	for i := range out {
		ord := make([]float64, m)
		for j := 0; j < m-1; j++ {
			if ties && j < m-2 {
				// Coarse grid on all but the last ordinal attribute
				// so duplicates occur, while full tuples stay
				// separable (no search interface can split more
				// than k fully-identical tuples).
				ord[j] = float64(rng.Intn(12)) * 8.5
			} else {
				ord[j] = rng.Float64() * 100
			}
		}
		out[i] = types.Tuple{
			ID:  i,
			Ord: ord,
			Cat: map[string]string{"cat": cats[rng.Intn(len(cats))]},
		}
	}
	return out
}

// oracleTopH computes the exact top-h of q under r by full scan.
func oracleTopH(all []types.Tuple, q query.Query, r ranking.Ranker, h int) []types.Tuple {
	var match []types.Tuple
	for _, t := range all {
		if q.Matches(t) {
			match = append(match, t)
		}
	}
	sort.Slice(match, func(i, j int) bool {
		si, sj := ranking.ScoreTuple(r, match[i]), ranking.ScoreTuple(r, match[j])
		if si != sj {
			return si < sj
		}
		return match[i].ID < match[j].ID
	})
	if len(match) > h {
		match = match[:h]
	}
	return match
}

// assertSameRanking checks that got matches want as a ranking: identical
// score sequences, and within each tie group identical ID sets.
// When full (the complete sorted match set) is provided, the boundary group
// cut by h is checked for membership against the full tie group.
func assertSameRanking(t *testing.T, r ranking.Ranker, got, want []types.Tuple, full ...[]types.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		sg, sw := ranking.ScoreTuple(r, got[i]), ranking.ScoreTuple(r, want[i])
		if math.Abs(sg-sw) > 1e-9 {
			t.Fatalf("rank %d: score %g, want %g (got %v want %v)", i, sg, sw, got[i], want[i])
		}
	}
	// Group by score and compare ID sets.
	groups := func(ts []types.Tuple) map[float64][]int {
		g := map[float64][]int{}
		for _, tt := range ts {
			s := ranking.ScoreTuple(r, tt)
			g[s] = append(g[s], tt.ID)
		}
		for _, ids := range g {
			sort.Ints(ids)
		}
		return g
	}
	gg, gw := groups(got), groups(want)
	// The boundary (highest-score) group may be cut by h, in which case
	// any subset of the full tie group is a correct answer — skip its
	// membership check.
	boundary := math.Inf(-1)
	if len(want) > 0 {
		boundary = ranking.ScoreTuple(r, want[len(want)-1])
	}
	for s, ids := range gw {
		if s == boundary {
			// Any subset of the full tie group is correct; verify
			// membership against it when available.
			if len(full) == 1 {
				valid := map[int]bool{}
				for _, tt := range full[0] {
					if ranking.ScoreTuple(r, tt) == s {
						valid[tt.ID] = true
					}
				}
				for _, id := range gg[s] {
					if !valid[id] {
						t.Fatalf("boundary score %g: got ID %d outside the true tie group", s, id)
					}
				}
			}
			continue
		}
		gi := gg[s]
		if len(gi) != len(ids) {
			t.Fatalf("score %g: got %d IDs %v, want %d IDs %v", s, len(gi), gi, len(ids), ids)
		}
		for i := range ids {
			if gi[i] != ids[i] {
				t.Fatalf("score %g: got IDs %v, want %v", s, gi, ids)
			}
		}
	}
}

// randQuery builds a random user query.
func randQuery(rng *rand.Rand, schema *types.Schema) query.Query {
	q := query.New()
	if rng.Intn(2) == 0 {
		q = q.WithCat("cat", []string{"x", "y", "z"}[rng.Intn(3)])
	}
	m := schema.NumOrdinal()
	if rng.Intn(3) == 0 {
		a := rng.Intn(m)
		lo := rng.Float64() * 50
		q = q.WithRange(a, types.ClosedInterval(lo, lo+20+rng.Float64()*50))
	}
	return q
}

// randLinear builds a random linear ranker over up to maxAttrs attributes.
func randLinear(rng *rand.Rand, m, nAttrs int) ranking.Ranker {
	perm := rng.Perm(m)[:nAttrs]
	w := make([]float64, nAttrs)
	for i := range w {
		w[i] = (rng.Float64() + 0.1)
		if rng.Intn(2) == 0 {
			w[i] = -w[i]
		}
	}
	return ranking.MustLinear("rand", perm, w)
}

func newTestDB(t testing.TB, rng *rand.Rand, m, n, k int, ties bool, sys hidden.SystemRanker) (*hidden.DB, []types.Tuple) {
	t.Helper()
	schema := testSchema(m)
	tuples := genTuples(rng, schema, n, ties)
	db := hidden.MustDB(schema, tuples, hidden.Options{K: k, Ranker: sys})
	return db, tuples
}

// systemRankers returns a friendly, an adversarial, and an arbitrary system
// ranking for the test schema.
func systemRankers(m int) []hidden.SystemRanker {
	attrs := make([]int, m)
	w := make([]float64, m)
	for i := range attrs {
		attrs[i], w[i] = i, 1
	}
	friendly := hidden.RankerAdapter{R: ranking.MustLinear("sys+", attrs, w)}
	wneg := make([]float64, m)
	for i := range wneg {
		wneg[i] = -1
	}
	hostile := hidden.RankerAdapter{R: ranking.MustLinear("sys-", attrs, wneg)}
	arbitrary := hidden.FuncRanker{
		Label: "hash",
		F: func(t types.Tuple) float64 {
			return float64((t.ID*2654435761)%1000) + t.Ord[0]*0.001
		},
	}
	return []hidden.SystemRanker{friendly, hostile, arbitrary}
}

func TestOneDExactness(t *testing.T) {
	for _, variant := range []Variant{Baseline, Binary, Rerank} {
		for _, ties := range []bool{false, true} {
			name := fmt.Sprintf("%v/ties=%v", variant, ties)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				for trial := 0; trial < 12; trial++ {
					m := 2 + rng.Intn(2)
					n := 50 + rng.Intn(300)
					k := 1 + rng.Intn(9)
					sys := systemRankers(m)[trial%3]
					db, all := newTestDB(t, rng, m, n, k, ties, sys)
					e := NewEngine(db, Options{N: n})
					for sub := 0; sub < 3; sub++ {
						q := randQuery(rng, db.Schema())
						attr := rng.Intn(m)
						dir := ranking.Asc
						if rng.Intn(2) == 0 {
							dir = ranking.Desc
						}
						r := ranking.NewSingle("1d", attr, dir)
						cur := e.NewOneDCursor(q, attr, dir, variant)
						h := 1 + rng.Intn(20)
						got, err := TopH(cur, h)
						if err != nil {
							t.Fatalf("trial %d: %v", trial, err)
						}
						want := oracleTopH(all, q, r, h)
						assertSameRanking(t, r, got, want, oracleTopH(all, q, r, 1<<30))
					}
				}
			})
		}
	}
}

func TestMDExactness(t *testing.T) {
	for _, variant := range []Variant{Baseline, Binary, Rerank} {
		for _, ties := range []bool{false, true} {
			name := fmt.Sprintf("%v/ties=%v", variant, ties)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				for trial := 0; trial < 10; trial++ {
					m := 2 + rng.Intn(2)
					n := 40 + rng.Intn(200)
					k := 1 + rng.Intn(9)
					sys := systemRankers(m)[trial%3]
					db, all := newTestDB(t, rng, m, n, k, ties, sys)
					e := NewEngine(db, Options{N: n})
					for sub := 0; sub < 2; sub++ {
						q := randQuery(rng, db.Schema())
						nr := 2 + rng.Intn(m-1)
						r := randLinear(rng, m, nr)
						cur := e.NewMDCursor(q, r, variant)
						h := 1 + rng.Intn(12)
						got, err := TopH(cur, h)
						if err != nil {
							t.Fatalf("trial %d sub %d (%v): %v", trial, sub, r, err)
						}
						want := oracleTopH(all, q, r, h)
						assertSameRanking(t, r, got, want, oracleTopH(all, q, r, 1<<30))
					}
				}
			})
		}
	}
}

func TestTAExactness(t *testing.T) {
	for _, ties := range []bool{false, true} {
		t.Run(fmt.Sprintf("ties=%v", ties), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 8; trial++ {
				m := 2 + rng.Intn(2)
				n := 40 + rng.Intn(150)
				k := 1 + rng.Intn(9)
				sys := systemRankers(m)[trial%3]
				db, all := newTestDB(t, rng, m, n, k, ties, sys)
				e := NewEngine(db, Options{N: n})
				q := randQuery(rng, db.Schema())
				r := randLinear(rng, m, m)
				cur := e.NewTACursor(q, r)
				h := 1 + rng.Intn(12)
				got, err := TopH(cur, h)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				want := oracleTopH(all, q, r, h)
				assertSameRanking(t, r, got, want, oracleTopH(all, q, r, 1<<30))
			}
		})
	}
}

// TestExhaustion drains cursors past the end of R(q) and checks every
// matching tuple is produced exactly once.
func TestExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, all := newTestDB(t, rng, 2, 80, 4, true, systemRankers(2)[1])
	q := query.New().WithCat("cat", "x")
	for _, variant := range []Variant{Baseline, Binary, Rerank} {
		e := NewEngine(db, Options{N: 80})
		r := ranking.MustLinear("lin", []int{0, 1}, []float64{1, 2})
		cur := e.NewMDCursor(q, r, variant)
		got, err := TopH(cur, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleTopH(all, q, r, 10_000)
		assertSameRanking(t, r, got, want, oracleTopH(all, q, r, 1<<30))
		// One more Next must report exhaustion without error.
		_, ok, err := cur.Next()
		if ok || err != nil {
			t.Fatalf("expected clean exhaustion, got ok=%v err=%v", ok, err)
		}
	}
}
