// Multi-dimensional query reranking (§4): MD-BASELINE, MD-BINARY and
// MD-RERANK.
//
// The search is a branch-and-bound over axis-space boxes:
//
//   - Boxes are tightened against the current threshold score using the
//     rank-contour bounds (ranking.Tighten unifies the paper's Eq. 6 ℓ(A_i)
//     and Eq. 8 b(A_j)).
//   - An overflowing box is partitioned around a pivot point into disjoint
//     children whose union covers every potentially-better tuple; the
//     pivot's anti-dominance region is pruned when sound (its score is at
//     least the threshold).
//   - MD-BINARY replaces the discovered-tuple pivot with a virtual tuple v'
//     on the threshold contour (§4.3.2), maximizing pruned volume, and
//     probes v''s dominance box first (direct domination detection).
//   - MD-RERANK answers boxes smaller than the dense-region volume
//     threshold from the on-the-fly crawled-box index (§4.4, Algorithm 6).
//
// MD-BASELINE and MD-BINARY restart the whole search on improvement, as the
// paper prescribes ("we restart the entire process with t = t'"). MD-RERANK
// keeps the box queue and re-tightens boxes against the latest threshold
// when popped — a documented refinement with identical coverage and fewer
// repeated queries.
//
// Top-k proceeds by subspace splitting (§4.2.2): emitting a tuple splits its
// box on the first ranked attribute at the tuple's value, and the next
// answer is the best of the per-box top-1s.

package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hidden"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// MDCursor incrementally returns tuples matching a user query in ascending
// order of an arbitrary monotone multi-attribute ranking function.
type MDCursor struct {
	s       *Session
	q       query.Query
	axis    *ranking.Axis
	variant Variant

	started   bool
	regions   []mdRegion
	emitted   map[int]bool
	pending   []types.Tuple
	exhausted bool
	opQueries int64

	denseVol float64
	denseDim []float64      // per-dimension dense-region width thresholds
	sorted   []int          // ranked attrs sorted ascending (dense-index canonical order)
	denseIdx *index.DenseMD // shared MD index for this attribute subset
}

type mdRegion struct {
	box      query.Box
	best     types.Tuple
	have     bool
	resolved bool
}

// NewMDCursor builds an MD cursor for ranker r in a fresh single-cursor
// session.
func (e *Engine) NewMDCursor(q query.Query, r ranking.Ranker, v Variant) *MDCursor {
	return e.NewSession().NewMDCursor(q, r, v)
}

// NewMDCursor builds an MD cursor for ranker r (which must rank ≥ 2
// attributes; single-attribute rankers should use NewOneDCursor).
func (s *Session) NewMDCursor(q query.Query, r ranking.Ranker, v Variant) *MDCursor {
	e := s.e
	ax := ranking.NewAxis(r, e.db.Schema())
	c := &MDCursor{
		s: s, q: q.Clone(), axis: ax, variant: v,
		emitted: make(map[int]bool),
	}
	if v == Rerank {
		c.denseVol = e.denseVolumeMD(ax.Attrs())
		// Per-dimension dense widths: the volume test alone would
		// classify thin full-width slabs (which tightening produces
		// constantly) as dense regions and crawl them; requiring every
		// side below the m-th root of the relative volume threshold
		// restricts the oracle to genuinely small boxes while keeping
		// the same |V|·(s/n)/c volume bound for cubes.
		rel := (e.sParam() / math.Max(float64(e.opts.N), 1)) / math.Max(e.cParam(), 1)
		side := math.Pow(rel, 1/float64(ax.M()))
		for j := 0; j < ax.M(); j++ {
			c.denseDim = append(c.denseDim, (ax.Hi()[j]-ax.Lo()[j])*side)
		}
	}
	c.sorted = append([]int(nil), ax.Attrs()...)
	sort.Ints(c.sorted)
	// Resolve the shared index once: the map entry is created on first use
	// and never replaced, so caching it keeps the per-box fast path off
	// the engine-wide map mutex.
	c.denseIdx = e.know.mdIndexFor(c.sorted)
	return c
}

// issue sends one box-restricted query, charging the per-op budget.
func (c *MDCursor) issue(b query.Box) (hidden.Result, error) {
	if c.s.e.opts.MaxQueriesPerOp > 0 && c.opQueries >= c.s.e.opts.MaxQueriesPerOp {
		return hidden.Result{}, ErrBudget
	}
	c.opQueries++
	return c.s.issue(c.axis.BoxToQuery(c.q, b))
}

// Next implements Cursor.
func (c *MDCursor) Next() (types.Tuple, bool, error) {
	if len(c.pending) > 0 {
		t := c.pending[0]
		c.pending = c.pending[1:]
		return t, true, nil
	}
	if c.exhausted {
		return types.Tuple{}, false, nil
	}
	c.opQueries = 0
	if !c.started {
		c.started = true
		root := c.axis.QueryToBox(c.q)
		c.regions = []mdRegion{{box: root}}
	}
	// Resolve the top-1 of every unresolved region.
	live := c.regions[:0]
	for _, r := range c.regions {
		if !r.resolved {
			best, have, err := c.top1(r.box)
			if err != nil {
				return types.Tuple{}, false, err
			}
			r.best, r.have, r.resolved = best, have, true
		}
		if r.have {
			live = append(live, r)
		}
	}
	c.regions = live
	if len(c.regions) == 0 {
		c.exhausted = true
		return types.Tuple{}, false, nil
	}
	// Emit the best region's top-1 and split that region.
	bi := 0
	for i := 1; i < len(c.regions); i++ {
		if c.regionLess(c.regions[i], c.regions[bi]) {
			bi = i
		}
	}
	reg := c.regions[bi]
	t := reg.best
	if err := c.collectTies(t); err != nil {
		return types.Tuple{}, false, err
	}
	for _, tt := range c.pending {
		c.emitted[tt.ID] = true
	}
	// Split the region on the first ranked attribute at t's value. The
	// right part keeps the boundary (closed) so tuples sharing the split
	// coordinate remain reachable; the emitted set excludes the tie
	// group itself.
	z0 := c.axis.ToAxis(t)[0]
	b1 := reg.box.Clone()
	b1.Dims[0] = b1.Dims[0].Intersect(types.Interval{Lo: math.Inf(-1), Hi: z0, HiOpen: true})
	b2 := reg.box.Clone()
	b2.Dims[0] = b2.Dims[0].Intersect(types.Interval{Lo: z0, Hi: math.Inf(1), HiOpen: true})
	c.regions = append(c.regions[:bi], c.regions[bi+1:]...)
	if !b1.Empty() {
		c.regions = append(c.regions, mdRegion{box: b1})
	}
	if !b2.Empty() {
		c.regions = append(c.regions, mdRegion{box: b2})
	}
	out := c.pending[0]
	c.pending = c.pending[1:]
	return out, true, nil
}

// regionLess orders resolved regions by (score, tuple ID).
func (c *MDCursor) regionLess(a, b mdRegion) bool {
	sa, sb := c.axis.ScoreTuple(a.best), c.axis.ScoreTuple(b.best)
	if sa != sb {
		return sa < sb
	}
	return a.best.ID < b.best.ID
}

// collectTies fills the pending buffer with every tuple matching q that
// shares t's values on all ranked attributes (§5).
func (c *MDCursor) collectTies(t types.Tuple) error {
	if c.s.e.opts.AssumeGeneralPositioning {
		c.pending = []types.Tuple{t}
		return nil
	}
	z := c.axis.ToAxis(t)
	point := query.Box{Dims: make([]types.Interval, len(z))}
	for j, v := range z {
		point.Dims[j] = types.ClosedInterval(v, v)
	}
	res, err := c.issue(point)
	if err != nil {
		return err
	}
	var ties []types.Tuple
	if !res.Overflow {
		ties = res.Tuples
	} else {
		ties, err = c.s.crawlRegion(c.axis.BoxToQuery(c.q, point), nil)
		if err != nil {
			return err
		}
	}
	seen := map[int]bool{}
	c.pending = c.pending[:0]
	for _, tt := range ties {
		if !seen[tt.ID] && !c.emitted[tt.ID] {
			seen[tt.ID] = true
			c.pending = append(c.pending, tt)
		}
	}
	if !seen[t.ID] && !c.emitted[t.ID] {
		c.pending = append(c.pending, t)
	}
	sort.Slice(c.pending, func(i, j int) bool { return c.pending[i].ID < c.pending[j].ID })
	return nil
}

// candidate tracks the best non-emitted tuple found during one top-1 search.
type candidate struct {
	t     types.Tuple
	score float64
	have  bool
}

func (c *MDCursor) improve(cand *candidate, ts []types.Tuple, box query.Box) {
	for _, t := range ts {
		if c.emitted[t.ID] || !c.q.Matches(t) {
			continue
		}
		z := c.axis.ToAxis(t)
		if !box.Contains(z) {
			continue
		}
		s := c.axis.ScoreTuple(t)
		if !cand.have || s < cand.score || (s == cand.score && t.ID < cand.t.ID) {
			cand.t, cand.score, cand.have = t, s, true
		}
	}
}

// top1 finds the best non-emitted tuple matching q inside box.
func (c *MDCursor) top1(box query.Box) (types.Tuple, bool, error) {
	var cand candidate
	// Seed from history (§3.1.1 applied to MD).
	if !c.s.e.opts.DisableHistory {
		c.s.e.know.hist.ForEachMatching(c.q, func(t types.Tuple) bool {
			c.improve(&cand, []types.Tuple{t}, box)
			return true
		})
	}
	stack := []query.Box{box}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b.Empty() {
			continue
		}
		if cand.have {
			tb, ok := c.axis.Tighten(b, cand.score)
			if !ok {
				continue
			}
			b = tb
		}
		// MD-RERANK fast path: a box already covered by a crawled
		// dense region is answered locally with zero queries.
		if c.variant == Rerank && c.denseVol > 0 && b.IsFinite() && c.isDense(b) {
			if reg, ok := c.denseIdx.Lookup(c.realBoxOf(b)); ok {
				c.improve(&cand, reg.Tuples, b)
				continue
			}
		}
		res, err := c.issue(b)
		if err != nil {
			return types.Tuple{}, false, err
		}
		prevScore, prevHave := cand.score, cand.have
		c.improve(&cand, res.Tuples, b)
		if !res.Overflow {
			continue
		}
		// MD-RERANK dense-region handling (Algorithm 6): an overflowing
		// sub-threshold box is a certified dense region — crawl it once
		// (generically, without Sel(q)) and index it for every future
		// user query.
		if c.variant == Rerank && c.denseVol > 0 && b.IsFinite() && c.isDense(b) {
			if err := c.denseAnswer(b, &cand); err != nil {
				return types.Tuple{}, false, err
			}
			continue
		}
		if cand.have && (!prevHave || cand.score < prevScore) {
			// The query improved the threshold. MD-BASELINE and
			// MD-BINARY restart the whole search around the new
			// contour ("we restart the entire process with t = t'",
			// §4.2.1 / Algorithm 5 line 7). MD-RERANK instead keeps
			// the partition queue and only re-searches the
			// overflowing box re-tightened — a documented
			// refinement with identical coverage and fewer
			// repeated queries.
			if c.variant == Rerank {
				if tb, ok := c.axis.Tighten(b, cand.score); ok {
					stack = append(stack, tb)
				}
			} else {
				stack = stack[:0]
				if tb, ok := c.axis.Tighten(box, cand.score); ok {
					stack = append(stack, tb)
				}
			}
			continue
		}
		kids, err := c.partition(b, res.Tuples, &cand)
		if err != nil {
			return types.Tuple{}, false, err
		}
		stack = append(stack, kids...)
	}
	return cand.t, cand.have, nil
}

// partition splits an overflowing box into disjoint children covering every
// potentially-better tuple, excluding all returned tuples so the search
// always progresses.
func (c *MDCursor) partition(b query.Box, returned []types.Tuple, cand *candidate) ([]query.Box, error) {
	var kids []query.Box
	// Pivot on the lowest-score returned tuple by default; switch to the
	// virtual-tuple machinery when the pivot sits so close to the box's
	// best corner that splitting around it prunes almost nothing — the
	// ill-conditioned-system-ranking pathology of §4.3.1.
	pi := 0
	for i := 1; i < len(returned); i++ {
		if c.axis.ScoreTuple(returned[i]) < c.axis.ScoreTuple(returned[pi]) {
			pi = i
		}
	}
	// MD-BINARY applies the virtual-tuple machinery on every stuck
	// overflow (Algorithm 5); MD-RERANK reserves it for boxes where the
	// pivot split would prune almost nothing.
	useVirtual := c.variant != Baseline && !c.s.e.opts.DisableVirtualTuples && cand.have &&
		(c.variant == Binary || c.prunedFraction(b, c.axis.ToAxis(returned[pi])) < 0.02)
	placed := false
	if useVirtual {
		if vp, ok := c.axis.VirtualTuple(b, cand.score); ok {
			if !c.s.e.opts.DisableDominationProbe {
				// Direct domination detection (§4.3.2): probe
				// the box dominating v' for a better tuple.
				domB := b.Clone()
				for j := range domB.Dims {
					domB.Dims[j] = domB.Dims[j].Intersect(types.ClosedInterval(math.Inf(-1), vp[j]))
				}
				if !domB.Empty() {
					res, err := c.issue(domB)
					if err != nil {
						return nil, err
					}
					c.improve(cand, res.Tuples, b)
				}
			}
			// Virtual-tuple pruning: children exclude the
			// anti-dominance region of v', which is sound because
			// S(v') ≥ threshold.
			kids = c.splitAt(b, vp, true)
			placed = true
		}
	}
	if !placed {
		zp := c.axis.ToAxis(returned[pi])
		kids = c.splitAt(b, zp, c.pruneAntiOK(returned[pi], cand))
		returned = append(returned[:pi:pi], returned[pi+1:]...)
	}
	// Exclude every remaining returned tuple from whichever child
	// contains it (children are disjoint), so no query can return an
	// already-seen page forever.
	for _, t := range returned {
		z := c.axis.ToAxis(t)
		for i := 0; i < len(kids); i++ {
			if kids[i].Contains(z) {
				repl := c.splitAt(kids[i], z, c.pruneAntiOK(t, cand))
				kids = append(append(kids[:i:i], repl...), kids[i+1:]...)
				break
			}
		}
	}
	return kids, nil
}

// prunedFraction estimates how much of box b the anti-dominance region of
// axis point z occupies — the pruning power of a pivot split around z.
// Unbounded dimensions contribute zero (the pivot prunes a negligible
// sliver of an unbounded box).
func (c *MDCursor) prunedFraction(b query.Box, z []float64) float64 {
	frac := 1.0
	for j, iv := range b.Dims {
		lo := math.Max(iv.Lo, c.axis.Lo()[j])
		hi := math.Min(iv.Hi, c.axis.Hi()[j])
		w := hi - lo
		if w <= 0 || math.IsInf(w, 1) {
			return 0
		}
		frac *= math.Max(0, hi-z[j]) / w
	}
	return frac
}

// pruneAntiOK reports whether pruning t's anti-dominance region is sound:
// every tuple there scores at least S(t), so the region can be dropped only
// when S(t) is at least the current threshold.
func (c *MDCursor) pruneAntiOK(t types.Tuple, cand *candidate) bool {
	return cand.have && c.axis.ScoreTuple(t) >= cand.score
}

// splitAt partitions box b minus the point z into disjoint children:
// child j  = b ∧ {dim j < z_j} ∧ {dim l ≥ z_l for l < j}      (j = 0..m-1)
// covering b minus the anti-dominance region of z. When pruneAnti is false
// the anti-dominance region minus the point itself is also covered, with
// degenerate-slice children:
// anti  j  = b ∧ {dim i = z_i for i < j} ∧ {dim j > z_j} ∧ {dim l ≥ z_l for l > j}.
func (c *MDCursor) splitAt(b query.Box, z []float64, pruneAnti bool) []query.Box {
	m := len(z)
	var out []query.Box
	for j := 0; j < m; j++ {
		kid := b.Clone()
		kid.Dims[j] = kid.Dims[j].Intersect(types.Interval{Lo: math.Inf(-1), Hi: z[j], HiOpen: true})
		for l := 0; l < j; l++ {
			kid.Dims[l] = kid.Dims[l].Intersect(types.Interval{Lo: z[l], Hi: math.Inf(1), HiOpen: true})
		}
		if !kid.Empty() {
			out = append(out, kid)
		}
	}
	if !pruneAnti {
		for j := 0; j < m; j++ {
			kid := b.Clone()
			for i := 0; i < j; i++ {
				kid.Dims[i] = kid.Dims[i].Intersect(types.ClosedInterval(z[i], z[i]))
			}
			kid.Dims[j] = kid.Dims[j].Intersect(types.Interval{Lo: z[j], LoOpen: true, Hi: math.Inf(1), HiOpen: true})
			for l := j + 1; l < m; l++ {
				kid.Dims[l] = kid.Dims[l].Intersect(types.Interval{Lo: z[l], Hi: math.Inf(1), HiOpen: true})
			}
			if !kid.Empty() {
				out = append(out, kid)
			}
		}
	}
	return out
}

// isDense reports whether the box qualifies for dense-region handling:
// every side below its per-dimension threshold (hence volume below the
// paper's |V|·(s/n)/c bound).
func (c *MDCursor) isDense(b query.Box) bool {
	for j, iv := range b.Dims {
		if iv.Width() >= c.denseDim[j] {
			return false
		}
	}
	return true
}

// denseAnswer resolves a sub-threshold box through the MD dense index,
// crawling it generically (without Sel(q)) on a miss so the region serves
// every future user query (Algorithm 6).
func (c *MDCursor) denseAnswer(b query.Box, cand *candidate) error {
	realBox := c.realBoxOf(b)
	idx := c.denseIdx
	reg, ok := idx.Lookup(realBox)
	if !ok {
		// Crawl-and-index, deduplicated: concurrent sessions hitting the
		// same dense box crawl it once; followers read it from the index.
		if err := c.s.crawlDenseMD(c.sorted, realBox); err != nil {
			return err
		}
		reg, ok = idx.Lookup(realBox)
		if !ok {
			// Coverage is monotone: a crawled box stays covered, so
			// this indicates index corruption, never a benign miss.
			return fmt.Errorf("core: dense region %v missing after crawl", realBox)
		}
	}
	c.improve(cand, reg.Tuples, b)
	return nil
}

// realBoxOf converts an axis box to real-value space with dimensions in
// canonical (sorted attribute) order so that rankers sharing an attribute
// subset share index regions.
func (c *MDCursor) realBoxOf(b query.Box) query.Box {
	attrs := c.axis.Attrs()
	pos := make(map[int]int, len(attrs)) // attr -> axis dim
	for j, a := range attrs {
		pos[a] = j
	}
	rb := query.Box{Dims: make([]types.Interval, len(c.sorted))}
	for i, a := range c.sorted {
		j := pos[a]
		rb.Dims[i] = c.axis.RealInterval(j, b.Dims[j])
	}
	return rb
}
