// Multi-dimensional query reranking (§4): MD-BASELINE, MD-BINARY and
// MD-RERANK.
//
// The search is a branch-and-bound over axis-space boxes:
//
//   - Boxes are tightened against the current threshold score using the
//     rank-contour bounds (ranking.Tighten unifies the paper's Eq. 6 ℓ(A_i)
//     and Eq. 8 b(A_j)).
//   - An overflowing box is partitioned around a pivot point into disjoint
//     children whose union covers every potentially-better tuple; the
//     pivot's anti-dominance region is pruned when sound (its score is at
//     least the threshold).
//   - MD-BINARY replaces the discovered-tuple pivot with a virtual tuple v'
//     on the threshold contour (§4.3.2), maximizing pruned volume, and
//     probes the box dominating v' first (direct domination detection).
//   - MD-RERANK answers boxes smaller than the dense-region volume
//     threshold from the on-the-fly crawled-box index (§4.4, Algorithm 6).
//
// MD-BASELINE and MD-BINARY restart the whole search on improvement, as the
// paper prescribes ("we restart the entire process with t = t'"). MD-RERANK
// keeps the box queue and re-tightens boxes against the latest threshold
// when popped — a documented refinement with identical coverage and fewer
// repeated queries.
//
// Top-k proceeds by subspace splitting (§4.2.2): emitting a tuple splits its
// box on the first ranked attribute at the tuple's value, and the next
// answer is the best of the per-box top-1s.
//
// # Parallel speculative search
//
// The paper describes the search as sequential: one probe, then the next —
// which, against a remote upstream, serializes round-trip latency. This
// cursor instead exposes parallelism at two levels, both speculative and
// both bounded by the session's worker pool (Options.SearchParallelism = W):
//
//   - Top-level partition regions live in a score-ordered heap. Unresolved
//     regions are keyed by an admissible lower bound (the score of the
//     region's best corner); resolved regions by their exact top-1 score.
//     Regions resolve lazily, best-first: once the heap minimum is a
//     resolved region, every unresolved lower bound is strictly worse and
//     the minimum is the exact next answer. Each resolution round takes up
//     to W unresolved regions off the top of the heap and resolves them
//     concurrently — slots beyond the first are speculative (the first
//     resolution alone might already beat every remaining lower bound), but
//     their results are exact and persist in the heap, so speculative
//     resolutions are work done early, not work done wrong.
//   - Within one region's top-1 search, unexplored boxes live in a
//     best-first frontier heap. Each round pops the best W frontier boxes,
//     tightens them against the current threshold, and issues the probes
//     concurrently through the engine's singleflight+LRU coalescer. Probes
//     beyond the first assume the earlier probes of the round will not
//     improve the threshold; when one does, a later overflow result is
//     invalidated — sequential execution would have probed a smaller,
//     re-tightened box — and counted as waste (complete answers are never
//     waste: a complete page over a superset box resolves the box exactly).
//
// Determinism. Every decision point runs in a fixed order on the cursor
// goroutine: region rounds are composed and their results applied in heap
// order, frontier rounds are composed and processed in pop order, and
// history is read for seeding only between rounds. Concurrent resolutions
// touch disjoint boxes, so their probes cannot serve one another through the
// coalescing layer. The emitted tuple sequence is therefore identical for
// every W (each top-1 is an exact minimum regardless of exploration order),
// and the session ledger is exactly reproducible for a fixed W — speculation
// changes how much is charged, never making the charge nondeterministic.
// (The one caveat: ledger reproducibility assumes the engine-wide probe LRU
// is not evicting mid-run and no unrelated session is mutating it, the same
// caveat PR 1 established for cross-session cost attribution.)
//
// Cost accounting is charge-at-issue: the per-op budget (MaxQueriesPerOp) is
// charged in round order before a round is dispatched, the session ledger is
// charged for exactly the probes that reach the upstream, and wasted probes'
// pages still land in the shared history and probe LRU so their cost is
// never paid twice.
package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/hidden"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// MDCursor incrementally returns tuples matching a user query in ascending
// order of an arbitrary monotone multi-attribute ranking function.
type MDCursor struct {
	s       *Session
	q       query.Query
	variant Variant

	started   bool
	regions   regionHeap // unresolved (lower bound) + resolved (exact) regions
	regionSeq int64
	emitted   map[int]bool
	pending   []types.Tuple
	exhausted bool
	opQueries atomic.Int64 // shared by concurrent resolvers (charge-at-issue)

	denseVol float64
	denseDim []float64      // per-dimension dense-region width thresholds
	sorted   []int          // ranked attrs sorted ascending (dense-index canonical order)
	axisPos  []int          // per position in sorted: the axis dimension of that attr
	denseIdx *index.DenseMD // shared MD index for this attribute subset

	width     int           // speculative width W (regions per round, probes per frontier round)
	resolvers []*mdResolver // [0] drives sequential ops; [1..] speculative round slots

	// excludeID/excludeOK name the tuple being emitted while the prefetch
	// round runs: it is certain to be marked emitted the moment tie
	// collection returns, so prefetched resolutions must not pick it (they
	// would be invalidated immediately). Written on the cursor goroutine
	// before the round launches, cleared after it joins.
	excludeID int
	excludeOK bool
}

// mdResolver is the per-resolution mutable state of one top-1 search: its
// own Axis (whose geometric primitives carry scratch buffers), frontier
// heap, probe round scratch and axis-point buffers. Up to W resolvers run
// concurrently during a region round; everything they share through the
// cursor (query, emitted set, dense thresholds) is read-only while a round
// is in flight.
type mdResolver struct {
	c    *MDCursor
	axis *ranking.Axis

	frontier boxHeap
	boxSeq   int64
	charged  int64       // upstream probes this resolution charged the ledger
	spec     bool        // a speculative region-round slot: all its probes count as speculative
	chain    int         // consecutive single-box improvement rounds (ladder trigger)
	covered  []query.Box // boxes answered completely during this top-1 search
	batch    []batchItem
	results  []probeResult
	probeQs  []query.Query
	zbuf     []float64 // ToAxisInto scratch for improve
	rlkBuf   query.Box // realBoxInto scratch for dense-index lookups
}

// mdRegion is one top-level partition region in the region heap.
type mdRegion struct {
	box      query.Box
	best     types.Tuple
	have     bool
	resolved bool
	key      float64 // lower-bound score (unresolved) or exact score (resolved)
	seq      int64
}

// regionHeap orders regions by (key, unresolved-first, best.ID/seq). When the
// minimum is a resolved region, every unresolved region's lower bound is
// strictly larger (equal bounds sort unresolved first), so its contents score
// strictly worse and the minimum is exactly the tuple the eager search would
// emit.
type regionHeap []*mdRegion

func (h regionHeap) Len() int { return len(h) }
func (h regionHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.key != b.key {
		return a.key < b.key
	}
	if a.resolved != b.resolved {
		return !a.resolved
	}
	if a.resolved {
		return a.best.ID < b.best.ID
	}
	return a.seq < b.seq
}
func (h regionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *regionHeap) Push(x any)   { *h = append(*h, x.(*mdRegion)) }
func (h *regionHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// frontierBox is one unexplored box in a top-1 search's best-first frontier.
type frontierBox struct {
	box query.Box
	lb  float64 // admissible lower bound: score of the box's best corner
	seq int64
}

// boxHeap is a min-heap of frontier boxes by (lb, seq); seq makes pop order
// deterministic under equal bounds.
type boxHeap []frontierBox

func (h boxHeap) Len() int { return len(h) }
func (h boxHeap) Less(i, j int) bool {
	if h[i].lb != h[j].lb {
		return h[i].lb < h[j].lb
	}
	return h[i].seq < h[j].seq
}
func (h boxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *boxHeap) Push(x any)   { *h = append(*h, x.(frontierBox)) }
func (h *boxHeap) Pop() any {
	old := *h
	n := len(old)
	b := old[n-1]
	old[n-1] = frontierBox{}
	*h = old[:n-1]
	return b
}

// batchItem is one box of a speculative probe round, with the threshold it
// was tightened against at issue time. ladder marks a speculative tightening
// rung: a copy of the round's best box tightened against an optimistically
// improved threshold, processed improve-only (see padLadder).
type batchItem struct {
	box      query.Box
	thrScore float64
	thrHave  bool
	ladder   bool
}

// NewMDCursor builds an MD cursor for ranker r in a fresh single-cursor
// session.
func (e *Engine) NewMDCursor(q query.Query, r ranking.Ranker, v Variant) *MDCursor {
	return e.NewSession().NewMDCursor(q, r, v)
}

// NewMDCursor builds an MD cursor for ranker r (which must rank ≥ 2
// attributes; single-attribute rankers should use NewOneDCursor).
func (s *Session) NewMDCursor(q query.Query, r ranking.Ranker, v Variant) *MDCursor {
	e := s.e
	ax := ranking.NewAxis(r, e.db.Schema())
	c := &MDCursor{
		s: s, q: q.Clone(), variant: v,
		emitted: make(map[int]bool),
		width:   e.searchWidth(),
	}
	if v == Rerank {
		c.denseVol = e.denseVolumeMD(ax.Attrs())
		// Per-dimension dense widths: the volume test alone would
		// classify thin full-width slabs (which tightening produces
		// constantly) as dense regions and crawl them; requiring every
		// side below the m-th root of the relative volume threshold
		// restricts the oracle to genuinely small boxes while keeping
		// the same |V|·(s/n)/c volume bound for cubes.
		rel := (e.sParam() / math.Max(float64(e.opts.N), 1)) / math.Max(e.cParam(), 1)
		side := math.Pow(rel, 1/float64(ax.M()))
		for j := 0; j < ax.M(); j++ {
			c.denseDim = append(c.denseDim, (ax.Hi()[j]-ax.Lo()[j])*side)
		}
	}
	c.sorted = append([]int(nil), ax.Attrs()...)
	sort.Ints(c.sorted)
	pos := make(map[int]int, len(c.sorted))
	for j, a := range ax.Attrs() {
		pos[a] = j
	}
	for _, a := range c.sorted {
		c.axisPos = append(c.axisPos, pos[a])
	}
	// Resolve the shared index once: the map entry is created on first use
	// and never replaced, so caching it keeps the per-box fast path off
	// the engine-wide map mutex.
	c.denseIdx = e.know.mdIndexFor(c.sorted)
	// Resolver 0 reuses the axis built above; the speculative slots get
	// their own axes (axis scratch buffers are single-goroutine).
	c.resolvers = make([]*mdResolver, c.width)
	for i := range c.resolvers {
		if i > 0 {
			ax = ranking.NewAxis(r, e.db.Schema())
		}
		c.resolvers[i] = &mdResolver{
			c:       c,
			axis:    ax,
			spec:    i > 0,
			batch:   make([]batchItem, 0, c.width),
			results: make([]probeResult, c.width),
			probeQs: make([]query.Query, c.width),
			zbuf:    make([]float64, ax.M()),
			rlkBuf:  query.Box{Dims: make([]types.Interval, len(c.sorted))},
		}
	}
	return c
}

// axis returns the cursor's sequential-path axis (resolver 0's). Only valid
// on the cursor goroutine while no region round is in flight.
func (c *MDCursor) axis() *ranking.Axis { return c.resolvers[0].axis }

// chargeOp charges one probe attempt against the per-op budget, reporting
// whether the budget allows it. Attempts are charged before coalescing so
// the bound is stable regardless of cache state; the check-and-add is a
// single atomic Add so concurrent resolvers cannot over-admit.
func (c *MDCursor) chargeOp() bool {
	if max := c.s.e.opts.MaxQueriesPerOp; max > 0 {
		return c.opQueries.Add(1) <= max
	}
	c.opQueries.Add(1)
	return true
}

// issue sends one box-restricted query, charging the per-op budget — the
// sequential probe path used by tie collection and domination probes.
func (r *mdResolver) issue(b query.Box) (hidden.Result, error) {
	if !r.c.chargeOp() {
		return hidden.Result{}, ErrBudget
	}
	r.axis.BoxToQueryInto(r.c.q, b, &r.probeQs[0])
	res, issued, err := r.c.s.issueCounted(r.probeQs[0])
	if issued {
		r.charged++
	}
	return res, err
}

// pushRegion adds an unresolved region for box to the region heap and
// returns it (so Next can roll a split back on error).
func (c *MDCursor) pushRegion(box query.Box) *mdRegion {
	c.regionSeq++
	reg := &mdRegion{
		box: box,
		key: c.axis().LowerBound(box),
		seq: c.regionSeq,
	}
	heap.Push(&c.regions, reg)
	return reg
}

// Next implements Cursor.
func (c *MDCursor) Next() (types.Tuple, bool, error) {
	if len(c.pending) > 0 {
		t := c.pending[0]
		c.pending = c.pending[1:]
		return t, true, nil
	}
	if c.exhausted {
		return types.Tuple{}, false, nil
	}
	c.opQueries.Store(0)
	if !c.started {
		c.started = true
		c.pushRegion(c.axis().QueryToBox(c.q))
	}
	// Lazily resolve regions best-first until the heap minimum is resolved:
	// at that point every unresolved region's lower bound is strictly worse
	// than the resolved top-1, so no other region can supply the answer.
	// Each round resolves up to W of the best unresolved regions
	// concurrently; slots beyond the first are speculative (their results
	// persist in the heap, so early work is never thrown away).
	for c.regions.Len() > 0 && !c.regions[0].resolved {
		regs := c.popRound(c.width, true)
		seeds := c.seedRound(regs, 0)
		if err := c.runRound(regs, seeds, 0); err != nil {
			return types.Tuple{}, false, err
		}
	}
	if c.regions.Len() == 0 {
		c.exhausted = true
		return types.Tuple{}, false, nil
	}
	// The winner is now certain. Split its region first (the split needs
	// only the winning tuple), so the winner's tie point probe and a
	// prefetch round resolving the freshly split children — the regions
	// the NEXT call will almost surely block on — can overlap in one
	// concurrent section instead of costing two serial round-trips.
	reg := heap.Pop(&c.regions).(*mdRegion)
	t := reg.best
	// Split the region on the first ranked attribute at t's value. The
	// right part keeps the boundary (closed) so tuples sharing the split
	// coordinate remain reachable; the emitted set excludes the tie
	// group itself.
	z0 := c.axis().ToAxis(t)[0]
	b1 := reg.box.Clone()
	b1.Dims[0] = b1.Dims[0].Intersect(types.Interval{Lo: math.Inf(-1), Hi: z0, HiOpen: true})
	b2 := reg.box.Clone()
	b2.Dims[0] = b2.Dims[0].Intersect(types.Interval{Lo: z0, Hi: math.Inf(1), HiOpen: true})
	var children []*mdRegion
	if !b1.Empty() {
		children = append(children, c.pushRegion(b1))
	}
	if !b2.Empty() {
		children = append(children, c.pushRegion(b2))
	}
	c.excludeID, c.excludeOK = t.ID, true
	err := c.collectTiesPipelined(t)
	c.excludeOK = false
	if err != nil {
		// Roll the split back so a retry sees the region exactly once.
		c.unsplit(reg, children)
		return types.Tuple{}, false, err
	}
	for _, tt := range c.pending {
		c.emitted[tt.ID] = true
	}
	// A prefetched region resolved concurrently with the tie probe may
	// have picked a tuple that just became emitted (a tie of t living in
	// the right split child): its resolution is stale — demote it back to
	// unresolved so it is re-searched with the updated emitted set.
	c.invalidateEmitted()
	out := c.pending[0]
	c.pending = c.pending[1:]
	return out, true, nil
}

// unsplit removes the exact child regions pushed for reg's split and
// re-pushes reg — the error-path rollback of the early split in Next. The
// identity filter compacts the heap array out of order, so the heap
// invariant is re-established before pushing.
func (c *MDCursor) unsplit(reg *mdRegion, children []*mdRegion) {
	kept := c.regions[:0]
	for _, r := range c.regions {
		drop := false
		for _, ch := range children {
			if r == ch {
				drop = true
				break
			}
		}
		if !drop {
			kept = append(kept, r)
		}
	}
	c.regions = kept
	heap.Init(&c.regions)
	heap.Push(&c.regions, reg)
}

// collectTiesPipelined runs the §5 tie collection for t while a prefetch
// round resolves the best unresolved regions in the background: the tie
// point probe and the prefetch probes share one concurrent section, so the
// per-emit tie round-trip stops serializing the search. The prefetch uses
// resolver slots 1.., leaving slot 0 (whose axis scratch the tie path uses)
// to collectTies; its seeding happens before the tie goroutine launches so
// every probe stream stays deterministic. Prefetch errors are swallowed —
// the affected regions are re-pushed unresolved and the next call retries
// them against a fresh per-op budget.
func (c *MDCursor) collectTiesPipelined(t types.Tuple) error {
	if c.s.e.opts.AssumeGeneralPositioning || c.width <= 1 {
		return c.collectTies(t)
	}
	prefetch := c.popRound(c.width-1, false)
	if len(prefetch) == 0 {
		return c.collectTies(t)
	}
	seeds := c.seedRound(prefetch, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var tieErr error
	go func() {
		defer wg.Done()
		tieErr = c.collectTies(t)
	}()
	_ = c.runRound(prefetch, seeds, 1)
	wg.Wait()
	return tieErr
}

// invalidateEmitted demotes resolved regions whose best tuple has been
// emitted back to unresolved (lower-bound key), rebuilding the heap when
// any demotion happened.
func (c *MDCursor) invalidateEmitted() {
	changed := false
	for _, reg := range c.regions {
		if reg.resolved && c.emitted[reg.best.ID] {
			reg.resolved, reg.have = false, false
			reg.best = types.Tuple{}
			reg.key = c.axis().LowerBound(reg.box)
			changed = true
		}
	}
	if changed {
		heap.Init(&c.regions)
	}
}

// popRound pops up to limit of the best unresolved regions off the heap, in
// deterministic heap order. Speculative slots are bounded by the best
// already-resolved score: an unresolved region whose lower bound exceeds it
// can never block the next emit, so resolving it would be eagerness the lazy
// discipline exists to avoid. When mandatory is set the first slot ignores
// the bound (the blocking loop must make progress).
func (c *MDCursor) popRound(limit int, mandatory bool) []*mdRegion {
	bound, haveBound := 0.0, false
	for _, r := range c.regions {
		if r.resolved && (!haveBound || r.key < bound) {
			bound, haveBound = r.key, true
		}
	}
	out := make([]*mdRegion, 0, limit)
	for len(out) < limit && c.regions.Len() > 0 && !c.regions[0].resolved {
		if haveBound && c.regions[0].key > bound && (len(out) > 0 || !mandatory) {
			break
		}
		out = append(out, heap.Pop(&c.regions).(*mdRegion))
	}
	return out
}

// seedRound seeds one candidate per region from the shared history, on the
// cursor goroutine, before any of the round's probes can grow the history —
// the ordering that keeps each resolution's probe stream deterministic.
// Region i uses resolver i+off.
func (c *MDCursor) seedRound(regs []*mdRegion, off int) []candidate {
	cands := make([]candidate, len(regs))
	if c.s.e.opts.DisableHistory {
		return cands
	}
	// One pass over the matching history seeds every slot: all callbacks
	// run on the cursor goroutine, so sharing the scan preserves the
	// deterministic seeding order while keeping the cost independent of W.
	// The scan reads the columnar view directly — a candidate tuple is
	// materialized only when a slot actually adopts it.
	c.s.e.know.hist.ScanMatching(c.q, func(v colstore.View, row int) bool {
		for i, reg := range regs {
			c.resolvers[i+off].improveRow(&cands[i], v, row, reg.box)
		}
		return true
	})
	return cands
}

// runRound resolves the round's regions concurrently (region i on resolver
// i+off) and applies the results in slot order. Slots beyond the heap
// minimum are speculative: the minimum's result alone might have unblocked
// the emit, so the extra resolutions are work done early, counted into the
// engine's speculation ledger.
func (c *MDCursor) runRound(regs []*mdRegion, cands []candidate, off int) error {
	type outcome struct {
		best types.Tuple
		have bool
		err  error
	}
	outs := make([]outcome, len(regs))
	if len(regs) == 1 && off == 0 {
		outs[0].best, outs[0].have, outs[0].err = c.resolvers[0].top1(regs[0].box, &cands[0])
	} else {
		var wg sync.WaitGroup
		for i := range regs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r := c.resolvers[i+off]
				outs[i].best, outs[i].have, outs[i].err = r.top1(regs[i].box, &cands[i])
				if i > 0 || off > 0 {
					c.s.e.specIssued.Add(r.charged)
				}
			}(i)
		}
		wg.Wait()
	}
	// Apply results in slot order; on error, surface the first and re-push
	// the regions so the cursor stays consistent for a retry. Scoring uses
	// each slot's own axis: resolver 0's scratch may be serving the
	// pipelined tie path concurrently.
	var firstErr error
	for i, reg := range regs {
		if outs[i].err != nil {
			if firstErr == nil {
				firstErr = outs[i].err
			}
			heap.Push(&c.regions, reg)
			continue
		}
		if firstErr != nil {
			heap.Push(&c.regions, reg)
			continue
		}
		if outs[i].have {
			reg.best, reg.have, reg.resolved = outs[i].best, true, true
			reg.key = c.resolvers[i+off].axis.ScoreTuple(outs[i].best)
			heap.Push(&c.regions, reg)
		}
	}
	return firstErr
}

// collectTies fills the pending buffer with every tuple matching q that
// shares t's values on all ranked attributes (§5).
func (c *MDCursor) collectTies(t types.Tuple) error {
	if c.s.e.opts.AssumeGeneralPositioning {
		c.pending = []types.Tuple{t}
		return nil
	}
	z := c.axis().ToAxis(t)
	point := query.Box{Dims: make([]types.Interval, len(z))}
	for j, v := range z {
		point.Dims[j] = types.ClosedInterval(v, v)
	}
	res, err := c.resolvers[0].issue(point)
	if err != nil {
		return err
	}
	var ties []types.Tuple
	if !res.Overflow {
		ties = res.Tuples
	} else {
		ties, err = c.s.crawlRegion(c.axis().BoxToQuery(c.q, point), nil)
		if err != nil {
			return err
		}
	}
	seen := map[int]bool{}
	c.pending = c.pending[:0]
	for _, tt := range ties {
		if !seen[tt.ID] && !c.emitted[tt.ID] {
			seen[tt.ID] = true
			c.pending = append(c.pending, tt)
		}
	}
	if !seen[t.ID] && !c.emitted[t.ID] {
		c.pending = append(c.pending, t)
	}
	sort.Slice(c.pending, func(i, j int) bool { return c.pending[i].ID < c.pending[j].ID })
	return nil
}

// candidate tracks the best non-emitted tuple found during one top-1 search.
type candidate struct {
	t     types.Tuple
	score float64
	have  bool
}

func (r *mdResolver) improve(cand *candidate, ts []types.Tuple, box query.Box) {
	for _, t := range ts {
		r.improveOne(cand, t, box)
	}
}

// improveOne considers a single tuple for the candidate, reusing the
// resolver's axis-point scratch.
func (r *mdResolver) improveOne(cand *candidate, t types.Tuple, box query.Box) {
	if r.c.emitted[t.ID] || (r.c.excludeOK && t.ID == r.c.excludeID) || !r.c.q.Matches(t) {
		return
	}
	z := r.axis.ToAxisInto(t, r.zbuf)
	if !box.Contains(z) {
		return
	}
	s := r.axis.ScoreTuple(t)
	if !cand.have || s < cand.score || (s == cand.score && t.ID < cand.t.ID) {
		cand.t, cand.score, cand.have = t, s, true
	}
}

// improveRow is improveOne reading straight from a columnar history row. The
// scan that feeds it has already filtered by the cursor's query, so only the
// emitted/excluded checks remain, and the tuple is materialized only when
// the candidate actually adopts it.
func (r *mdResolver) improveRow(cand *candidate, v colstore.View, row int, box query.Box) {
	id := v.ID(row)
	if r.c.emitted[id] || (r.c.excludeOK && id == r.c.excludeID) {
		return
	}
	z := r.axis.ToAxisViewInto(v, row, r.zbuf)
	if !box.Contains(z) {
		return
	}
	s := r.axis.ScoreView(v, row)
	if !cand.have || s < cand.score || (s == cand.score && id < cand.t.ID) {
		cand.t, cand.score, cand.have = v.Tuple(row), s, true
	}
}

// pushBox adds a box to the top-1 frontier with its lower-bound key.
func (r *mdResolver) pushBox(b query.Box) {
	r.boxSeq++
	heap.Push(&r.frontier, frontierBox{box: b, lb: r.axis.LowerBound(b), seq: r.boxSeq})
}

// top1 finds the best non-emitted tuple matching q inside box, starting from
// the pre-seeded candidate.
//
// The frontier is explored best-first in speculative rounds of up to W
// boxes: round composition (pop, tighten, dense fast path), budget charging
// and result processing all happen in deterministic frontier order on the
// resolver's goroutine; only the upstream probes of one round run
// concurrently.
func (r *mdResolver) top1(box query.Box, cand *candidate) (types.Tuple, bool, error) {
	c := r.c
	r.frontier = r.frontier[:0]
	r.boxSeq = 0
	r.charged = 0
	r.chain = 0
	r.covered = r.covered[:0]
	r.pushBox(box)
	for r.frontier.Len() > 0 {
		// Compose one speculative round: the W best frontier boxes that
		// survive tightening and the dense-index fast path.
		r.batch = r.batch[:0]
		for len(r.batch) < c.width && r.frontier.Len() > 0 {
			fb := heap.Pop(&r.frontier).(frontierBox)
			b := fb.box
			if b.Empty() {
				continue
			}
			if cand.have {
				tb, ok := r.axis.Tighten(b, cand.score)
				if !ok {
					continue
				}
				b = tb
			}
			// A box inside an already-answered complete page is fully
			// known: improve has seen every tuple in it, so probing it
			// again (typically the confirm probe after a ladder rung
			// collapsed the improvement chain) buys nothing.
			if r.coveredBy(b) {
				continue
			}
			// MD-RERANK fast path: a box already covered by a crawled
			// dense region at the current epoch is answered locally with
			// zero queries. A stale covering region is re-validated first
			// (one confirming probe); if it drifted, it is evicted and the
			// box falls through to ordinary batch probing.
			if c.variant == Rerank && c.denseVol > 0 && b.IsFinite() && r.isDense(b) {
				reg, ok, err := c.s.denseLookupMD(c.denseIdx, c.sorted, r.realBoxInto(b))
				if err != nil {
					return types.Tuple{}, false, err
				}
				if ok {
					r.improve(cand, reg.Tuples, b)
					continue
				}
			}
			r.batch = append(r.batch, batchItem{box: b, thrScore: cand.score, thrHave: cand.have})
		}
		if len(r.batch) == 0 {
			continue
		}
		if len(r.batch) < c.width && r.chain > 0 {
			// A detected improvement chain: the previous round was a
			// lone box whose probe improved the threshold, and this
			// round is re-probing it — the regime where the search
			// degenerates to one improvement per round-trip. Fill the
			// free slots with a speculative tightening ladder over the
			// round's best box to collapse the chase. (Gating on a
			// detected chain keeps ordinary one-probe resolutions at
			// one probe.)
			r.padLadder(cand)
		}
		// Charge the per-op budget at issue, in deterministic round order.
		// Boxes the budget cannot cover go back to the frontier un-probed.
		issuable := len(r.batch)
		for i := range r.batch {
			if !c.chargeOp() {
				issuable = i
				break
			}
		}
		if issuable == 0 {
			for i := range r.batch {
				r.pushBox(r.batch[i].box)
			}
			return types.Tuple{}, false, ErrBudget
		}
		for i := issuable; i < len(r.batch); i++ {
			r.pushBox(r.batch[i].box)
		}
		r.batch = r.batch[:issuable]
		// Issue the round concurrently; slots beyond the first are
		// speculative.
		for i := range r.batch {
			r.axis.BoxToQueryInto(c.q, r.batch[i].box, &r.probeQs[i])
		}
		c.s.issueAll(r.probeQs[:len(r.batch)], r.results[:len(r.batch)])
		for i := range r.batch {
			if r.results[i].issued {
				r.charged++
				// Frontier slots beyond the first are speculative probes
				// (unless this whole resolution is a speculative region
				// slot, whose probes are all counted by resolveRound).
				if i > 0 && !r.spec {
					c.s.e.specIssued.Add(1)
				}
			}
		}
		// Process results strictly in round order.
		restarted := false
		nonLadder := 0
		for i := range r.batch {
			if !r.batch[i].ladder {
				nonLadder++
			}
		}
		singleImproved := false
		for i := range r.batch {
			it := &r.batch[i]
			if err := r.results[i].err; err != nil {
				return types.Tuple{}, false, err
			}
			res := r.results[i].res
			prevScore, prevHave := cand.score, cand.have
			r.improve(cand, res.Tuples, it.box)
			if !res.Overflow {
				// A complete answer authoritatively resolves the probed
				// box whatever the threshold did since issue: everything
				// in it has been seen. Never waste; remember the cover
				// so later frontier boxes inside it are skipped.
				r.covered = append(r.covered, it.box)
				continue
			}
			if it.ladder {
				// An overflowing ladder rung guessed too loose a
				// threshold: its page still improved the candidate and
				// fed history, but the rung resolves nothing — count it
				// wasted (only if it actually reached the upstream:
				// free cache replays cost nothing to waste) and let the
				// canonical chain (the round's first slot re-pushed
				// tightened) carry the coverage argument.
				if r.results[i].issued {
					c.s.e.specWasted.Add(1)
				}
				continue
			}
			if restarted {
				// A restart discarded the whole partition; the re-pushed
				// root covers this box, so the speculative probe was
				// waste (its page still fed history above).
				if r.results[i].issued {
					c.s.e.specWasted.Add(1)
				}
				continue
			}
			// MD-RERANK dense-region handling (Algorithm 6): an
			// overflowing sub-threshold box is a certified dense region —
			// crawl it once (generically, without Sel(q)) and index it
			// for every future user query.
			if c.variant == Rerank && c.denseVol > 0 && it.box.IsFinite() && r.isDense(it.box) {
				if err := r.denseAnswer(it.box, cand); err != nil {
					return types.Tuple{}, false, err
				}
				continue
			}
			if cand.have && (!prevHave || cand.score < prevScore) {
				// The probe improved the threshold. MD-BASELINE and
				// MD-BINARY restart the whole search around the new
				// contour ("we restart the entire process with t = t'",
				// §4.2.1 / Algorithm 5 line 7). MD-RERANK instead keeps
				// the partition queue and only re-searches the
				// overflowing box re-tightened — a documented
				// refinement with identical coverage and fewer
				// repeated queries.
				if nonLadder == 1 {
					singleImproved = true
				}
				if c.variant == Rerank {
					if tb, ok := r.axis.Tighten(it.box, cand.score); ok {
						r.pushBox(tb)
					}
				} else {
					r.frontier = r.frontier[:0]
					if tb, ok := r.axis.Tighten(box, cand.score); ok {
						r.pushBox(tb)
					}
					restarted = true
				}
				continue
			}
			if cand.have && (!it.thrHave || cand.score < it.thrScore) {
				// The threshold improved between issue and processing
				// (an earlier result of this round): sequential
				// execution would have probed this box re-tightened, so
				// the stale overflow is speculative waste (when it
				// reached the upstream — cache replays are free).
				// Re-enqueue the box; its next probe pays only what the
				// tightened form costs, and this probe's page already
				// fed history. Slot 0 can only go stale through
				// compose-time dense-hit improvements — itself a
				// width>1 artifact — so its probe is counted into the
				// speculative ledger here to keep wasted ≤ issued.
				if r.results[i].issued {
					c.s.e.specWasted.Add(1)
					if i == 0 && !r.spec {
						c.s.e.specIssued.Add(1)
					}
				}
				if tb, ok := r.axis.Tighten(it.box, cand.score); ok {
					r.pushBox(tb)
				}
				continue
			}
			kids, err := r.partition(it.box, res.Tuples, cand)
			if err != nil {
				return types.Tuple{}, false, err
			}
			for _, k := range kids {
				r.pushBox(k)
			}
		}
		if singleImproved {
			r.chain++
		} else {
			r.chain = 0
		}
	}
	return cand.t, cand.have, nil
}

// padLadder fills the round's free slots with a speculative tightening
// ladder: copies of the round's best box tightened against geometrically
// more optimistic thresholds between the box's lower bound and the
// threshold it was composed under. The chase a sequential search runs —
// probe, improve, re-tighten, probe again, one upstream round-trip per
// improvement — collapses when a deep rung comes back complete: a complete
// page over Tighten(b, θ_j) reveals the true minimum of everything under
// θ_j at once, a parallel exponential search down the score axis. Rungs are
// processed improve-only (never partitioned — they overlap the canonical
// slot), so they can accelerate the search but never steer it; an
// overflowing rung is counted as speculative waste.
func (r *mdResolver) padLadder(cand *candidate) {
	base := r.batch[0]
	lb := r.axis.LowerBound(base.box)
	up := base.thrScore
	if !base.thrHave {
		up = r.axis.UpperBound(base.box)
	}
	if !(up > lb) || math.IsInf(up, 1) || math.IsInf(lb, -1) {
		return
	}
	theta := up
	for len(r.batch) < r.c.width {
		theta = lb + (theta-lb)/4
		if !(theta > lb) {
			return // hit the numeric floor above the lower bound
		}
		tb, ok := r.axis.Tighten(base.box, theta)
		if !ok {
			return
		}
		if r.dupInBatch(tb) {
			continue // same tightening as an existing slot; descend further
		}
		r.batch = append(r.batch, batchItem{box: tb, thrScore: theta, thrHave: true, ladder: true})
	}
}

// coveredBy reports whether b lies entirely inside a box this top-1 search
// has already received a complete answer for.
func (r *mdResolver) coveredBy(b query.Box) bool {
	for i := range r.covered {
		if r.covered[i].ContainsBox(b) {
			return true
		}
	}
	return false
}

// dupInBatch reports whether box equals any box already in the round —
// identical probes inside one round must not happen (whether a duplicate
// coalesces or replays from cache would depend on timing, breaking ledger
// reproducibility).
func (r *mdResolver) dupInBatch(b query.Box) bool {
	for i := range r.batch {
		if boxesEqual(r.batch[i].box, b) {
			return true
		}
	}
	return false
}

func boxesEqual(a, b query.Box) bool {
	if len(a.Dims) != len(b.Dims) {
		return false
	}
	for j := range a.Dims {
		if a.Dims[j] != b.Dims[j] {
			return false
		}
	}
	return true
}

// partition splits an overflowing box into disjoint children covering every
// potentially-better tuple, excluding all returned tuples so the search
// always progresses.
func (r *mdResolver) partition(b query.Box, returned []types.Tuple, cand *candidate) ([]query.Box, error) {
	var kids []query.Box
	// Pivot on the lowest-score returned tuple by default; switch to the
	// virtual-tuple machinery when the pivot sits so close to the box's
	// best corner that splitting around it prunes almost nothing — the
	// ill-conditioned-system-ranking pathology of §4.3.1.
	pi := 0
	for i := 1; i < len(returned); i++ {
		if r.axis.ScoreTuple(returned[i]) < r.axis.ScoreTuple(returned[pi]) {
			pi = i
		}
	}
	// MD-BINARY applies the virtual-tuple machinery on every stuck
	// overflow (Algorithm 5); MD-RERANK reserves it for boxes where the
	// pivot split would prune almost nothing.
	c := r.c
	useVirtual := c.variant != Baseline && !c.s.e.opts.DisableVirtualTuples && cand.have &&
		(c.variant == Binary || r.prunedFraction(b, r.axis.ToAxis(returned[pi])) < 0.02)
	placed := false
	if useVirtual {
		if vp, ok := r.axis.VirtualTuple(b, cand.score); ok {
			if !c.s.e.opts.DisableDominationProbe {
				// Direct domination detection (§4.3.2): probe
				// the box dominating v' for a better tuple.
				domB := b.Clone()
				for j := range domB.Dims {
					domB.Dims[j] = domB.Dims[j].Intersect(types.ClosedInterval(math.Inf(-1), vp[j]))
				}
				if !domB.Empty() {
					res, err := r.issue(domB)
					if err != nil {
						return nil, err
					}
					r.improve(cand, res.Tuples, b)
				}
			}
			// Virtual-tuple pruning: children exclude the
			// anti-dominance region of v', which is sound because
			// S(v') ≥ threshold.
			kids = r.splitAt(b, vp, true)
			placed = true
		}
	}
	if !placed {
		zp := r.axis.ToAxis(returned[pi])
		kids = r.splitAt(b, zp, r.pruneAntiOK(returned[pi], cand))
		returned = append(returned[:pi:pi], returned[pi+1:]...)
	}
	// Exclude every remaining returned tuple from whichever child
	// contains it (children are disjoint), so no query can return an
	// already-seen page forever.
	for _, t := range returned {
		z := r.axis.ToAxis(t)
		for i := 0; i < len(kids); i++ {
			if kids[i].Contains(z) {
				repl := r.splitAt(kids[i], z, r.pruneAntiOK(t, cand))
				kids = append(append(kids[:i:i], repl...), kids[i+1:]...)
				break
			}
		}
	}
	return kids, nil
}

// prunedFraction estimates how much of box b the anti-dominance region of
// axis point z occupies — the pruning power of a pivot split around z.
// Unbounded dimensions contribute zero (the pivot prunes a negligible
// sliver of an unbounded box).
func (r *mdResolver) prunedFraction(b query.Box, z []float64) float64 {
	frac := 1.0
	for j, iv := range b.Dims {
		lo := math.Max(iv.Lo, r.axis.Lo()[j])
		hi := math.Min(iv.Hi, r.axis.Hi()[j])
		w := hi - lo
		if w <= 0 || math.IsInf(w, 1) {
			return 0
		}
		frac *= math.Max(0, hi-z[j]) / w
	}
	return frac
}

// pruneAntiOK reports whether pruning t's anti-dominance region is sound:
// every tuple there scores at least S(t), so the region can be dropped only
// when S(t) is at least the current threshold.
func (r *mdResolver) pruneAntiOK(t types.Tuple, cand *candidate) bool {
	return cand.have && r.axis.ScoreTuple(t) >= cand.score
}

// splitAt partitions box b minus the point z into disjoint children:
// child j  = b ∧ {dim j < z_j} ∧ {dim l ≥ z_l for l < j}      (j = 0..m-1)
// covering b minus the anti-dominance region of z. When pruneAnti is false
// the anti-dominance region minus the point itself is also covered, with
// degenerate-slice children:
// anti  j  = b ∧ {dim i = z_i for i < j} ∧ {dim j > z_j} ∧ {dim l ≥ z_l for l > j}.
func (r *mdResolver) splitAt(b query.Box, z []float64, pruneAnti bool) []query.Box {
	m := len(z)
	var out []query.Box
	for j := 0; j < m; j++ {
		kid := b.Clone()
		kid.Dims[j] = kid.Dims[j].Intersect(types.Interval{Lo: math.Inf(-1), Hi: z[j], HiOpen: true})
		for l := 0; l < j; l++ {
			kid.Dims[l] = kid.Dims[l].Intersect(types.Interval{Lo: z[l], Hi: math.Inf(1), HiOpen: true})
		}
		if !kid.Empty() {
			out = append(out, kid)
		}
	}
	if !pruneAnti {
		for j := 0; j < m; j++ {
			kid := b.Clone()
			for i := 0; i < j; i++ {
				kid.Dims[i] = kid.Dims[i].Intersect(types.ClosedInterval(z[i], z[i]))
			}
			kid.Dims[j] = kid.Dims[j].Intersect(types.Interval{Lo: z[j], LoOpen: true, Hi: math.Inf(1), HiOpen: true})
			for l := j + 1; l < m; l++ {
				kid.Dims[l] = kid.Dims[l].Intersect(types.Interval{Lo: z[l], Hi: math.Inf(1), HiOpen: true})
			}
			if !kid.Empty() {
				out = append(out, kid)
			}
		}
	}
	return out
}

// isDense reports whether the box qualifies for dense-region handling:
// every side below its per-dimension threshold (hence volume below the
// paper's |V|·(s/n)/c bound).
func (r *mdResolver) isDense(b query.Box) bool {
	for j, iv := range b.Dims {
		if iv.Width() >= r.c.denseDim[j] {
			return false
		}
	}
	return true
}

// denseAnswer resolves a sub-threshold box through the MD dense index,
// crawling it generically (without Sel(q)) on a miss so the region serves
// every future user query (Algorithm 6).
func (r *mdResolver) denseAnswer(b query.Box, cand *candidate) error {
	realBox := r.realBoxOf(b)
	idx := r.c.denseIdx
	// Epoch-aware lookup: a stale covering region is re-validated with one
	// confirming probe before it may answer locally.
	reg, ok, err := r.c.s.denseLookupMD(idx, r.c.sorted, realBox)
	if err != nil {
		return err
	}
	if !ok {
		// Crawl-and-index, deduplicated: concurrent sessions hitting the
		// same dense box crawl it once; followers read it from the index.
		if err := r.c.s.crawlDenseMD(r.c.sorted, realBox); err != nil {
			return err
		}
		reg, ok, err = r.c.s.denseLookupMD(idx, r.c.sorted, realBox)
		if err != nil {
			return err
		}
		if !ok {
			// Coverage is monotone within an epoch: a freshly crawled box
			// stays covered, so this indicates index corruption, never a
			// benign miss.
			return fmt.Errorf("core: dense region %v missing after crawl", realBox)
		}
	}
	r.improve(cand, reg.Tuples, b)
	return nil
}

// realBoxOf converts an axis box to real-value space with dimensions in
// canonical (sorted attribute) order so that rankers sharing an attribute
// subset share index regions. The result is freshly allocated (the crawl
// path stores it in the shared index).
func (r *mdResolver) realBoxOf(b query.Box) query.Box {
	rb := query.Box{Dims: make([]types.Interval, len(r.c.sorted))}
	r.fillRealBox(b, rb)
	return rb
}

// realBoxInto is realBoxOf into the resolver's scratch box — for index
// lookups, which do not retain their argument.
func (r *mdResolver) realBoxInto(b query.Box) query.Box {
	r.fillRealBox(b, r.rlkBuf)
	return r.rlkBuf
}

func (r *mdResolver) fillRealBox(b query.Box, dst query.Box) {
	for i := range r.c.sorted {
		j := r.c.axisPos[i]
		dst.Dims[i] = r.axis.RealInterval(j, b.Dims[j])
	}
}
