// Engine-level tests for background acquisition primitives: low-priority
// admission with a user reserve, the user-pressure signal, WarmWindow's
// ledger separation and zero-upstream replay guarantee (live, across
// snapshot restarts, and across segment-store restarts), and heat-sketch
// persistence through both the snapshot and checkpoint paths.

package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/segment"
	"repro/internal/types"
)

func TestAdmitLowPriorityReserve(t *testing.T) {
	e := admissionEngine(t, 4) // reserve = 4/4 = 1 slot
	var rels []func()
	for i := 0; i < 3; i++ {
		rel, ok := e.TryAdmitLowPriority(1)
		if !ok {
			t.Fatalf("low-priority admit %d rejected with reserve free", i)
		}
		rels = append(rels, rel)
	}
	// The 4th slot is the user reserve: low priority must never take it.
	if _, ok := e.TryAdmitLowPriority(1); ok {
		t.Fatal("low-priority admit took the user reserve slot")
	}
	// A user request still fits in the reserve.
	rel, ok := e.TryAdmit(1)
	if !ok {
		t.Fatal("user admit rejected from the reserve slot")
	}
	rel()
	for _, r := range rels {
		r()
	}
	// Weighted: a low-priority batch must fit entirely outside the reserve.
	if _, ok := e.TryAdmitLowPriority(4); ok {
		t.Fatal("weight-4 low-priority admit overlapped the reserve")
	}
	if rel, ok := e.TryAdmitLowPriority(3); !ok {
		t.Fatal("weight-3 low-priority admit rejected at empty gate")
	} else {
		rel()
	}
	// An unlimited gate has no reserve to protect.
	eu := admissionEngine(t, 0)
	if rel, ok := eu.TryAdmitLowPriority(5); !ok {
		t.Fatal("low-priority admit rejected on unlimited gate")
	} else {
		rel()
	}
}

func TestUserPressureSignal(t *testing.T) {
	e := admissionEngine(t, 4)
	if e.UserPressure(time.Hour) {
		t.Fatal("pressure reported on an idle gate")
	}
	// Occupying up to the reserve boundary is pressure: users are using
	// everything the acquirer would be allowed to touch.
	rel1, _ := e.TryAdmit(2)
	rel2, _ := e.TryAdmit(1)
	if !e.UserPressure(time.Hour) {
		t.Fatal("no pressure with used == cap-reserve")
	}
	rel1()
	rel2()

	// A denied user admission stamps pressure for the window, even after
	// the load that caused it drained.
	rel, _ := e.TryAdmit(4)
	if _, ok := e.TryAdmit(1); ok {
		t.Fatal("admit beyond capacity succeeded")
	}
	rel()
	if !e.UserPressure(time.Hour) {
		t.Fatal("denied admission did not register as pressure")
	}
	time.Sleep(20 * time.Millisecond)
	if e.UserPressure(10 * time.Millisecond) {
		t.Fatal("pressure persisted past the window with the gate drained")
	}

	// Only user-held weight counts toward pressure: at cap=2 (reserve 1)
	// the acquirer's own admitted slot fills cap-reserve, and if that read
	// as pressure every in-flight acquisition would abort itself at its
	// first probe.
	e2 := admissionEngine(t, 2)
	relLow, ok := e2.TryAdmitLowPriority(1)
	if !ok {
		t.Fatal("low-priority admit refused on an idle cap-2 gate")
	}
	if e2.UserPressure(time.Hour) {
		t.Fatal("acquirer's own admission registered as user pressure")
	}
	// A user arriving alongside the in-flight acquisition IS pressure.
	relUser, ok := e2.TryAdmit(1)
	if !ok {
		t.Fatal("user admit refused with the reserve free")
	}
	if !e2.UserPressure(time.Hour) {
		t.Fatal("no pressure with a user holding the reserve")
	}
	relUser()
	relLow()
}

// TestAdmitLowPriorityConcurrent hammers the gate with mixed user and
// low-priority traffic (run with -race): the total bound must hold, and
// during a phase where users pin everything outside the reserve, low
// priority must be shut out completely.
func TestAdmitLowPriorityConcurrent(t *testing.T) {
	const capacity = 8
	e := admissionEngine(t, capacity)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			weight := 1 + g%2
			low := g%3 == 0
			for i := 0; i < 300; i++ {
				var rel func()
				var ok bool
				if low {
					rel, ok = e.TryAdmitLowPriority(weight)
				} else {
					rel, ok = e.TryAdmit(weight)
				}
				if !ok {
					continue
				}
				cur := inFlight.Add(int64(weight))
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inFlight.Add(-int64(weight))
				rel()
			}
		}(g)
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("observed %d in-flight weight, bound is %d", p, capacity)
	}
	if got := e.SessionsInFlight(); got != 0 {
		t.Fatalf("SessionsInFlight = %d after all releases, want 0", got)
	}
	// Users hold cap-reserve: every low-priority admit must fail.
	rel, ok := e.TryAdmit(capacity - 1)
	if !ok {
		t.Fatal("user admit of cap-reserve rejected on drained gate")
	}
	for i := 0; i < 50; i++ {
		if _, ok := e.TryAdmitLowPriority(1); ok {
			t.Fatal("low-priority admit succeeded with only the reserve free")
		}
	}
	rel()
}

// acquireWindow is the window the WarmWindow tests warm and then re-query.
func acquireWindow() types.Interval { return types.ClosedInterval(20, 30) }

// warmedEngine builds a deterministic world and warms one window through an
// acquirer-style session, returning the engine, the db, and the acquirer
// session's ledger total.
func warmedEngine(t *testing.T, depth int) (*Engine, *hiddenDBHandle) {
	t.Helper()
	rng := rand.New(rand.NewSource(83))
	db, _ := newTestDB(t, rng, 2, 500, 10, false, nil)
	e := NewEngine(db, Options{N: 500})
	acq := e.NewSession()
	if err := acq.WarmWindow(0, acquireWindow(), depth); err != nil {
		t.Fatal(err)
	}
	if acq.Queries() == 0 {
		t.Fatal("cold WarmWindow issued no upstream queries")
	}
	if !e.WindowWarm(0, acquireWindow()) {
		t.Fatal("WarmWindow did not mark the window warm")
	}
	return e, &hiddenDBHandle{db: db, acquired: acq.Queries()}
}

// hiddenDBHandle pairs the upstream with the acquirer's spend, so restart
// tests can reset and re-read the counter.
type hiddenDBHandle struct {
	db interface {
		ResetCounter()
		QueryCount() int64
	}
	acquired int64
}

// reloadViaSnapshot snapshots e into memory and loads it into a fresh engine
// over the same upstream.
func reloadViaSnapshot(t *testing.T, e *Engine) *Engine {
	t.Helper()
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(e.db, e.opts)
	if err := e2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	return e2
}

// assertUserFree drives a user 1D cursor over the warmed window in dir to
// depth h and asserts it costs zero upstream and zero session ledger.
func assertUserFree(t *testing.T, e *Engine, h *hiddenDBHandle, dir ranking.Direction, depth int) {
	t.Helper()
	h.db.ResetCounter()
	user := e.NewSession()
	q := query.New().WithRange(0, acquireWindow())
	cur := user.NewOneDCursor(q, 0, dir, Rerank)
	got, err := TopH(cur, depth)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("warmed window returned no tuples")
	}
	if n := h.db.QueryCount(); n != 0 {
		t.Errorf("user query over warmed window (dir %v) cost %d upstream, want 0", dir, n)
	}
	if n := user.Queries(); n != 0 {
		t.Errorf("user session charged %d queries for a warmed window, want 0", n)
	}
}

// TestWarmWindowLedgerSeparation: acquisition cost lands on the acquirer's
// session and the engine-wide counter, never on a later user session — and
// the warmed window answers users for zero upstream in both directions.
func TestWarmWindowLedgerSeparation(t *testing.T) {
	const depth = 12
	e, h := warmedEngine(t, depth)
	if got := e.Queries(); got != h.acquired {
		t.Fatalf("engine-wide counter %d, want acquirer's %d", got, h.acquired)
	}
	assertUserFree(t, e, h, ranking.Asc, depth)
	assertUserFree(t, e, h, ranking.Desc, depth)
	// A shallower user query replays a strict prefix of the cached stream.
	assertUserFree(t, e, h, ranking.Asc, depth/2)
}

// TestWarmWindowSurvivesSnapshotRestart: the acquired knowledge — dense
// coverage, history, and the cached probe stream — survives a snapshot
// round-trip, so the warmed window still answers users for zero upstream
// after a restart.
func TestWarmWindowSurvivesSnapshotRestart(t *testing.T) {
	const depth = 12
	e1, h := warmedEngine(t, depth)
	e2 := reloadViaSnapshot(t, e1)
	if !e2.WindowWarm(0, acquireWindow()) {
		t.Fatal("warm marker lost across snapshot restart")
	}
	assertUserFree(t, e2, h, ranking.Asc, depth)
	assertUserFree(t, e2, h, ranking.Desc, depth)
}

// TestWarmWindowSurvivesCheckpointRestart: same guarantee through the
// incremental segment-store path.
func TestWarmWindowSurvivesCheckpointRestart(t *testing.T) {
	const depth = 12
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(83))
	db, _ := newTestDB(t, rng, 2, 500, 10, false, nil)
	e1 := NewEngine(db, Options{N: 500})
	st1 := openStore(t, e1, dir, segment.Options{})
	p1, err := e1.AttachPersistence(st1, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acq := e1.NewSession()
	if err := acq.WarmWindow(0, acquireWindow(), depth); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(db, Options{N: 500})
	st2 := openStore(t, e2, dir, segment.Options{})
	p2, err := e2.AttachPersistence(st2, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if !e2.WindowWarm(0, acquireWindow()) {
		t.Fatal("warm marker lost across checkpoint restart")
	}
	h := &hiddenDBHandle{db: db}
	assertUserFree(t, e2, h, ranking.Asc, depth)
	assertUserFree(t, e2, h, ranking.Desc, depth)
}

// TestWarmWindowAbort: an abort hook that fires mid-acquisition surfaces
// ErrAcquireAborted without charging further probes.
func TestWarmWindowAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	db, _ := newTestDB(t, rng, 2, 500, 10, false, nil)
	e := NewEngine(db, Options{N: 500})
	acq := e.NewSession()
	var probes atomic.Int64
	acq.SetAbort(func() bool { return probes.Add(1) > 3 })
	err := acq.WarmWindow(0, acquireWindow(), 12)
	if !errors.Is(err, ErrAcquireAborted) {
		t.Fatalf("aborted WarmWindow returned %v, want ErrAcquireAborted", err)
	}
	// abort fires from the 4th poll on, and every probe polls first: at
	// most 3 probes can have reached the upstream.
	if charged := acq.Queries(); charged > 3 {
		t.Fatalf("aborted acquisition kept issuing: session charged %d, want ≤ 3", charged)
	}
	// The abort is sticky here, so a retry aborts immediately at cost 0.
	before := acq.Queries()
	if err := acq.WarmWindow(0, acquireWindow(), 12); !errors.Is(err, ErrAcquireAborted) {
		t.Fatalf("retry returned %v, want ErrAcquireAborted", err)
	}
	if acq.Queries() != before {
		t.Fatal("aborted retry still charged the session")
	}
}

// TestHeatSnapshotRoundTrip: the request-heat sketch rides the snapshot and
// restores candidate-for-candidate, so acquisition resumes where it left
// off after a drain/restart.
func TestHeatSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	db, _ := newTestDB(t, rng, 2, 200, 10, false, nil)
	e1 := NewEngine(db, Options{N: 200})
	hot := query.New().WithRange(0, types.ClosedInterval(10, 20))
	warm := query.New().WithRange(1, types.ClosedInterval(50, 60))
	for i := 0; i < 5; i++ {
		e1.RecordHeat(hot)
	}
	e1.RecordHeat(warm)
	want := e1.Heat().Candidates(4)
	if len(want) != 2 || want[0].Window.Attr != 0 {
		t.Fatalf("precondition: candidates = %+v", want)
	}

	e2 := reloadViaSnapshot(t, e1)
	got := e2.Heat().Candidates(4)
	if len(got) != len(want) {
		t.Fatalf("restored %d heat candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Window != want[i].Window {
			t.Fatalf("candidate %d window %+v, want %+v", i, got[i].Window, want[i].Window)
		}
		if got[i].Heat < want[i].Heat*0.99 || got[i].Heat > want[i].Heat*1.01 {
			t.Fatalf("candidate %d heat %g, want ≈%g", i, got[i].Heat, want[i].Heat)
		}
	}
}

// TestHeatCheckpointRoundTrip: heat rides incremental checkpoints — it is
// committed when observations advanced, skipped when nothing changed, and
// replays into a restarted engine.
func TestHeatCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(87))
	db, _ := newTestDB(t, rng, 2, 200, 10, false, nil)
	e1 := NewEngine(db, Options{N: 200})
	st1 := openStore(t, e1, dir, segment.Options{})
	p1, err := e1.AttachPersistence(st1, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hot := query.New().WithRange(0, types.ClosedInterval(10, 20))
	for i := 0; i < 5; i++ {
		e1.RecordHeat(hot)
	}
	if err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	records := st1.Stats().JournalRecords
	if records == 0 {
		t.Fatal("heat-only change produced no checkpoint record")
	}
	// Nothing changed since: the next checkpoint must write nothing.
	if err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st1.Stats().JournalRecords; got != records {
		t.Fatalf("idle checkpoint appended a record (%d -> %d)", records, got)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(db, Options{N: 200})
	st2 := openStore(t, e2, dir, segment.Options{})
	p2, err := e2.AttachPersistence(st2, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := e2.Heat().Candidates(4)
	if len(got) != 1 || got[0].Window.Attr != 0 || got[0].Window.Lo != 10 || got[0].Window.Hi != 20 {
		t.Fatalf("restored heat candidates = %+v, want the hot window on attr 0", got)
	}
}
