package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/hidden"
	"repro/internal/types"
)

func admissionEngine(t *testing.T, maxSessions int) *Engine {
	t.Helper()
	schema := types.MustSchema([]types.Attribute{
		{Name: "A", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
	tuples := []types.Tuple{{ID: 0, Ord: []float64{1}}}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 5})
	return NewEngine(db, Options{N: 1, MaxConcurrentSessions: maxSessions})
}

func TestAdmitBound(t *testing.T) {
	e := admissionEngine(t, 3)
	if got := e.SessionCapacity(); got != 3 {
		t.Fatalf("SessionCapacity = %d, want 3", got)
	}
	var releases []func()
	for i := 0; i < 3; i++ {
		rel, ok := e.TryAdmit(1)
		if !ok {
			t.Fatalf("admit %d rejected below capacity", i)
		}
		releases = append(releases, rel)
	}
	if got := e.SessionsInFlight(); got != 3 {
		t.Fatalf("SessionsInFlight = %d, want 3", got)
	}
	if _, ok := e.TryAdmit(1); ok {
		t.Fatal("admit beyond capacity succeeded")
	}
	releases[0]()
	if rel, ok := e.TryAdmit(1); !ok {
		t.Fatal("admit after release rejected")
	} else {
		rel()
	}
	// release is idempotent: calling it twice must not free a phantom slot.
	releases[1]()
	releases[1]()
	if got := e.SessionsInFlight(); got != 1 {
		t.Fatalf("after double release SessionsInFlight = %d, want 1", got)
	}
}

func TestAdmitWeighted(t *testing.T) {
	e := admissionEngine(t, 4)
	// A weight-3 batch fits; a second weight-3 batch must be rejected
	// whole, not half-admitted.
	rel, ok := e.TryAdmit(3)
	if !ok {
		t.Fatal("weight-3 admit rejected at empty gate")
	}
	if _, ok := e.TryAdmit(3); ok {
		t.Fatal("second weight-3 admit fit in 1 remaining slot")
	}
	if got := e.SessionsInFlight(); got != 3 {
		t.Fatalf("half-admitted batch leaked weight: in-flight = %d, want 3", got)
	}
	if rel2, ok := e.TryAdmit(1); !ok {
		t.Fatal("weight-1 admit rejected with 1 slot free")
	} else {
		rel2()
	}
	rel()
	if got := e.SessionsInFlight(); got != 0 {
		t.Fatalf("SessionsInFlight = %d after full release, want 0", got)
	}
	// Non-positive weight normalizes to 1 on acquire and release alike.
	rel, ok = e.TryAdmit(0)
	if !ok {
		t.Fatal("weight-0 admit rejected")
	}
	if got := e.SessionsInFlight(); got != 1 {
		t.Fatalf("weight-0 admit holds %d, want 1", got)
	}
	rel()
}

func TestAdmitUnlimited(t *testing.T) {
	e := admissionEngine(t, 0)
	var rels []func()
	for i := 0; i < 100; i++ {
		rel, ok := e.TryAdmit(7)
		if !ok {
			t.Fatalf("unlimited gate rejected admit %d", i)
		}
		rels = append(rels, rel)
	}
	if got := e.SessionsInFlight(); got != 700 {
		t.Fatalf("SessionsInFlight = %d, want 700 (tracked even when unlimited)", got)
	}
	for _, rel := range rels {
		rel()
	}
	if got := e.SessionsInFlight(); got != 0 {
		t.Fatalf("SessionsInFlight = %d after releases, want 0", got)
	}
}

// TestAdmitConcurrentBound hammers the gate from many goroutines (run with
// -race) and asserts the admitted in-flight weight never exceeds the bound.
func TestAdmitConcurrentBound(t *testing.T) {
	const capacity = 8
	e := admissionEngine(t, capacity)
	var inFlight, peak, admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			weight := 1 + g%3
			for i := 0; i < 400; i++ {
				rel, ok := e.TryAdmit(weight)
				if !ok {
					continue
				}
				admitted.Add(1)
				cur := inFlight.Add(int64(weight))
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inFlight.Add(-int64(weight))
				rel()
			}
		}(g)
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("observed %d in-flight weight, bound is %d", p, capacity)
	}
	if admitted.Load() == 0 {
		t.Fatal("no admissions succeeded at all")
	}
	if got := e.SessionsInFlight(); got != 0 {
		t.Fatalf("SessionsInFlight = %d after all releases, want 0", got)
	}
}
