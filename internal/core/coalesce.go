// Probe coalescing: the issue-path layer that keeps concurrent users from
// multiplying upstream cost — the paper's sole cost measure.
//
// Two mechanisms, both keyed by the query's canonical string form:
//
//   - Singleflight: identical upstream TopK probes in flight at the same
//     moment are issued once; followers block on the leader's result. This
//     matters exactly when many users ask overlapping queries concurrently.
//   - A small bounded LRU of recent *complete* probe answers (valid or
//     underflow results, §2.1). A complete answer is authoritative — the
//     upstream returned every matching tuple — so replaying it is exact.
//     Overflow pages are partial and are never cached.
//
// Deduplicated probes count once: only the call that actually reaches the
// upstream charges the engine-wide and session query counters. Results are
// shared across goroutines and must be treated as immutable (the reranking
// algorithms only read them; the history store clones on insert).
//
// Correctness rests on the Database contract being deterministic for the
// lifetime of the engine (the upstream corpus does not change mid-run) —
// the same assumption the history store and dense indexes already make.
// Options.DisableCoalescing opts out for volatile upstreams.
//
// The parallel speculative MD search (md.go) leans on this layer twice
// over: its concurrent probe rounds dedup against other sessions' in-flight
// probes exactly like sequential ones, and the complete answers of wasted
// speculative probes land in the LRU, so a mis-speculation's upstream cost
// is never paid a second time.

package core

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/hidden"
	"repro/internal/query"
)

// defaultProbeCacheSize bounds the probe LRU when Options.ProbeCacheSize is
// zero. Entries are whole top-k pages, so the worst-case footprint is
// defaultProbeCacheSize·k tuples.
const defaultProbeCacheSize = 1024

// flight is one in-flight upstream call shared by its followers.
type flight struct {
	done chan struct{}
	res  hidden.Result
	err  error
}

// flightGroup is a minimal singleflight: Do runs fn once per key among
// concurrent callers and hands every caller the same result.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[string]*flight)}
}

// Do executes fn for key, coalescing concurrent callers onto one execution.
// leader reports whether this caller actually ran fn.
func (g *flightGroup) Do(key string, fn func() (hidden.Result, error)) (res hidden.Result, leader bool, err error) {
	g.mu.Lock()
	if f, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.res, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.inflight[key] = f
	g.mu.Unlock()

	// Complete the flight even if fn panics: a leaked inflight entry would
	// wedge every future caller of this key on <-f.done forever. The
	// pre-set error stands when fn panics (the assignment below never
	// runs), so followers fail loudly instead of reading a fabricated
	// empty success while the panic unwinds the leader.
	f.err = errFlightPanicked
	defer func() {
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.res, f.err = fn()
	return f.res, true, f.err
}

// errFlightPanicked is what coalesced followers observe when the leader's
// upstream call panicked before producing a result.
var errFlightPanicked = fmt.Errorf("core: coalesced upstream probe aborted by panic")

// probeCache is a bounded LRU of complete (valid/underflow) probe results.
type probeCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res hidden.Result
}

func newProbeCache(capacity int) *probeCache {
	if capacity <= 0 {
		return nil
	}
	return &probeCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

func (p *probeCache) get(key string) (hidden.Result, bool) {
	if p == nil {
		return hidden.Result{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.byKey[key]
	if !ok {
		return hidden.Result{}, false
	}
	p.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// export returns the cached entries ordered least-recently-used first, so
// replaying them through put reproduces the eviction order. Results are
// shared, not copied: callers must treat them as immutable (they already
// are engine-wide).
func (p *probeCache) export() []probeEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]probeEntry, 0, p.order.Len())
	for el := p.order.Back(); el != nil; el = el.Prev() {
		ce := el.Value.(*cacheEntry)
		out = append(out, probeEntry{Key: ce.key, Res: ce.res})
	}
	return out
}

// size returns the number of cached complete answers.
func (p *probeCache) size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len()
}

func (p *probeCache) put(key string, res hidden.Result) {
	if p == nil || res.Overflow {
		return // only complete answers are authoritative
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		p.order.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	p.byKey[key] = p.order.PushFront(&cacheEntry{key: key, res: res})
	for p.order.Len() > p.cap {
		oldest := p.order.Back()
		p.order.Remove(oldest)
		delete(p.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// probeEntry is one exported probe-LRU entry: a canonical query key and its
// complete (valid/underflow) answer. Snapshots persist these so a restarted
// service stays warm at the probe level, not just the tuple level.
type probeEntry struct {
	Key string
	Res hidden.Result
}

// coalescer wraps the engine's primary database with singleflight dedup and
// the complete-answer LRU. It is safe for concurrent use.
type coalescer struct {
	db       hidden.Database
	flights  *flightGroup
	cache    *probeCache
	disabled bool // pass every probe straight through
}

func newCoalescer(db hidden.Database, cacheSize int, disabled bool) *coalescer {
	if cacheSize == 0 {
		cacheSize = defaultProbeCacheSize
	}
	return &coalescer{
		db:       db,
		flights:  newFlightGroup(),
		cache:    newProbeCache(cacheSize),
		disabled: disabled,
	}
}

// export dumps the complete-answer LRU, least recently used first. Empty
// when coalescing is disabled or the cache is turned off.
func (c *coalescer) export() []probeEntry {
	if c.disabled {
		return nil
	}
	return c.cache.export()
}

// restore seeds one complete answer into the LRU (snapshot warm-restart).
// A no-op when coalescing is disabled, the cache is off, or the result is
// not complete.
func (c *coalescer) restore(key string, res hidden.Result) {
	if c.disabled {
		return
	}
	c.cache.put(key, res)
}

// cacheSize returns the number of complete answers currently cached.
func (c *coalescer) cacheSize() int {
	if c.disabled {
		return 0
	}
	return c.cache.size()
}

// TopK answers q, deduplicating in-flight identical probes and serving
// recent complete answers from the LRU. issued reports whether this call
// actually reached the upstream (cache hits and coalesced followers are
// free and must not be charged).
func (c *coalescer) TopK(q query.Query) (res hidden.Result, issued bool, err error) {
	if c.disabled {
		res, err = c.db.TopK(q)
		return res, true, err
	}
	key := q.String()
	if res, ok := c.cache.get(key); ok {
		return res, false, nil
	}
	return c.flights.Do(key, func() (hidden.Result, error) {
		res, err := c.db.TopK(q)
		if err == nil {
			// Populate the cache while the flight is still registered, so
			// a caller arriving between flight completion and cache write
			// cannot slip through both and re-issue the probe upstream.
			c.cache.put(key, res)
		}
		return res, err
	})
}
