// Probe coalescing: the issue-path layer that keeps concurrent users from
// multiplying upstream cost — the paper's sole cost measure.
//
// Two mechanisms, both keyed by the query's canonical string form:
//
//   - Singleflight: identical upstream TopK probes in flight at the same
//     moment are issued once; followers block on the leader's result. This
//     matters exactly when many users ask overlapping queries concurrently.
//   - A small bounded LRU of recent *complete* probe answers (valid or
//     underflow results, §2.1). A complete answer is authoritative — the
//     upstream returned every matching tuple — so replaying it is exact.
//     Overflow pages are partial and are never cached.
//
// Deduplicated probes count once: only the call that actually reaches the
// upstream charges the engine-wide and session query counters. Results are
// shared across goroutines and must be treated as immutable (the reranking
// algorithms only read them; the history store clones on insert).
//
// Correctness against *living* upstreams comes from knowledge epochs:
// every cached answer carries the epoch it was learned under, and an entry
// whose epoch trails the engine's current epoch (a sentinel detected
// upstream drift) is not replayed blindly. Its first touch issues exactly
// one confirming probe through the flight group: an unchanged answer
// promotes the entry to the current epoch, a changed one replaces (or, on
// overflow, evicts) just that entry. Options.DisableCoalescing opts out
// entirely for upstreams too volatile even for that.
//
// The parallel speculative MD search (md.go) leans on this layer twice
// over: its concurrent probe rounds dedup against other sessions' in-flight
// probes exactly like sequential ones, and the complete answers of wasted
// speculative probes land in the LRU, so a mis-speculation's upstream cost
// is never paid a second time.

package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/hidden"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/types"
)

// defaultProbeCacheSize bounds the probe LRU when Options.ProbeCacheSize is
// zero. Entries are whole top-k pages, so the worst-case footprint is
// defaultProbeCacheSize·k tuples.
const defaultProbeCacheSize = 1024

// flight is one in-flight upstream call shared by its followers.
type flight struct {
	done chan struct{}
	res  hidden.Result
	err  error
}

// flightGroup is a minimal singleflight: Do runs fn once per key among
// concurrent callers and hands every caller the same result.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[string]*flight)}
}

// Do executes fn for key, coalescing concurrent callers onto one execution.
// leader reports whether this caller actually ran fn.
//
// A follower only ever inherits a SUCCESSFUL flight. When the leader's call
// fails, the failure is the leader's alone — handing its error to every
// coalesced follower would fan one transient upstream hiccup out to N
// independent requests that never touched the upstream. Instead a follower
// waking to a failed flight re-contends for the key: it becomes the new
// leader (or follows a newer one), so each caller's outcome reflects an
// upstream attempt made on its own behalf. Leaders still see their own
// error, so retry/backoff policy stays with the caller that paid the probe.
func (g *flightGroup) Do(key string, fn func() (hidden.Result, error)) (res hidden.Result, leader bool, err error) {
	for {
		g.mu.Lock()
		if f, ok := g.inflight[key]; ok {
			g.mu.Unlock()
			<-f.done
			if f.err != nil {
				continue // leader failed; re-contend instead of inheriting
			}
			return f.res, false, nil
		}
		f := &flight{done: make(chan struct{})}
		g.inflight[key] = f
		g.mu.Unlock()

		// Complete the flight even if fn panics: a leaked inflight entry
		// would wedge every future caller of this key on <-f.done forever.
		// The pre-set error stands when fn panics (the assignment below
		// never runs), so followers re-issue instead of reading a fabricated
		// empty success while the panic unwinds the leader.
		f.err = errFlightPanicked
		defer func() {
			g.mu.Lock()
			delete(g.inflight, key)
			g.mu.Unlock()
			close(f.done)
		}()
		f.res, f.err = fn()
		return f.res, true, f.err
	}
}

// errFlightPanicked is what coalesced followers observe when the leader's
// upstream call panicked before producing a result.
var errFlightPanicked = fmt.Errorf("core: coalesced upstream probe aborted by panic")

// probeCache is a bounded LRU of complete (valid/underflow) probe results.
//
// Entries are stored in columnar form (colstore.Answer: flat ID/value/symbol
// lanes interned into the history's shared dictionary) rather than as row
// structs, so a full cache of top-k pages costs a few slices per entry
// instead of cap·k tuples each with its own Ord slice and Cat map. The row
// form is materialized lazily on first hit and memoized — repeated hits on a
// hot probe return the same shared immutable tuples with zero allocation.
// Answers that cannot be encoded exactly (irregular tuples) fall back to
// plain row storage.
type probeCache struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recent; values are *cacheEntry
	byKey  map[string]*list.Element
	layout *colstore.Layout
	dict   *colstore.Dict
}

type cacheEntry struct {
	key   string
	ans   *colstore.Answer // columnar form; nil when not exactly representable
	res   hidden.Result    // row form: direct storage, or memoized from ans
	memo  bool             // res has been materialized from ans
	epoch int64            // knowledge epoch the answer was learned under
}

func newProbeCache(capacity int, layout *colstore.Layout, dict *colstore.Dict) *probeCache {
	if capacity <= 0 {
		return nil
	}
	return &probeCache{
		cap:    capacity,
		order:  list.New(),
		byKey:  make(map[string]*list.Element, capacity),
		layout: layout,
		dict:   dict,
	}
}

// fill stores res into ce, compacting to columnar form when possible.
func (p *probeCache) fill(ce *cacheEntry, res hidden.Result) {
	ce.ans, ce.res, ce.memo = nil, res, false
	if p.layout == nil || len(res.Tuples) == 0 {
		return
	}
	if ans, ok := colstore.EncodeAnswer(p.layout, p.dict, res.Tuples); ok {
		ce.ans = ans
		ce.res = hidden.Result{Overflow: res.Overflow}
	}
}

// rowForm returns ce's answer as shared immutable tuples, materializing and
// memoizing the columnar form on first use. Callers hold p.mu.
func (ce *cacheEntry) rowForm() hidden.Result {
	if ce.ans != nil && !ce.memo {
		ce.res.Tuples = ce.ans.Decode()
		ce.memo = true
	}
	return ce.res
}

func (p *probeCache) get(key string) (hidden.Result, int64, bool) {
	if p == nil {
		return hidden.Result{}, 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.byKey[key]
	if !ok {
		return hidden.Result{}, 0, false
	}
	p.order.MoveToFront(el)
	ce := el.Value.(*cacheEntry)
	return ce.rowForm(), ce.epoch, true
}

// remove evicts one entry (its cached answer no longer matches the
// upstream and the fresh answer is not cacheable).
func (p *probeCache) remove(key string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		p.order.Remove(el)
		delete(p.byKey, key)
	}
}

// export returns the cached entries ordered least-recently-used first, so
// replaying them through put reproduces the eviction order. Results are
// shared, not copied: callers must treat them as immutable (they already
// are engine-wide).
func (p *probeCache) export() []probeEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]probeEntry, 0, p.order.Len())
	for el := p.order.Back(); el != nil; el = el.Prev() {
		ce := el.Value.(*cacheEntry)
		out = append(out, probeEntry{Key: ce.key, Res: ce.rowForm(), Epoch: ce.epoch})
	}
	return out
}

// size returns the number of cached complete answers.
func (p *probeCache) size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len()
}

// approxBytes estimates the resident bytes of the columnar-encoded entries.
func (p *probeCache) approxBytes() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var b int64
	for el := p.order.Front(); el != nil; el = el.Next() {
		if ce := el.Value.(*cacheEntry); ce.ans != nil {
			b += ce.ans.Bytes()
		}
	}
	return b
}

func (p *probeCache) put(key string, res hidden.Result, epoch int64) {
	if p == nil || res.Overflow {
		return // only complete answers are authoritative
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		p.order.MoveToFront(el)
		ce := el.Value.(*cacheEntry)
		p.fill(ce, res)
		ce.epoch = epoch
		return
	}
	ce := &cacheEntry{key: key, epoch: epoch}
	p.fill(ce, res)
	p.byKey[key] = p.order.PushFront(ce)
	for p.order.Len() > p.cap {
		oldest := p.order.Back()
		p.order.Remove(oldest)
		delete(p.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// probeEntry is one exported probe-LRU entry: a canonical query key, its
// complete (valid/underflow) answer, and the knowledge epoch the answer was
// learned under. Snapshots persist these so a restarted service stays warm
// at the probe level, not just the tuple level.
type probeEntry struct {
	Key   string
	Res   hidden.Result
	Epoch int64
}

// coalescer wraps the engine's primary database with singleflight dedup and
// the complete-answer LRU. It is safe for concurrent use.
type coalescer struct {
	db       hidden.Database
	flights  *flightGroup
	cache    *probeCache
	disabled bool // pass every probe straight through

	// epochFn reports the engine's current knowledge epoch; cache entries
	// learned under an older epoch are re-validated before replay.
	epochFn func() int64

	// Lazy re-validation outcome counters (see TopK).
	revalPromoted atomic.Int64
	revalEvicted  atomic.Int64

	// persist, when attached, records every complete answer admitted to the
	// cache so incremental checkpoints persist probe-level warmth.
	persist atomic.Pointer[Persister]
}

// newCoalescer builds the coalescing layer. layout and dict come from the
// engine's history store, so cached answers intern their categorical values
// into the same dictionary as the tuple history. epochFn supplies the
// current knowledge epoch (nil pins every entry to index.FirstEpoch).
func newCoalescer(db hidden.Database, cacheSize int, disabled bool, layout *colstore.Layout, dict *colstore.Dict, epochFn func() int64) *coalescer {
	if cacheSize == 0 {
		cacheSize = defaultProbeCacheSize
	}
	return &coalescer{
		db:       db,
		flights:  newFlightGroup(),
		cache:    newProbeCache(cacheSize, layout, dict),
		disabled: disabled,
		epochFn:  epochFn,
	}
}

// curEpoch returns the engine's current knowledge epoch.
func (c *coalescer) curEpoch() int64 {
	if c.epochFn == nil {
		return index.FirstEpoch
	}
	return c.epochFn()
}

// revalStats returns how many stale cache entries were promoted (confirmed
// unchanged) vs replaced/evicted (drifted) by lazy re-validation.
func (c *coalescer) revalStats() (promoted, evicted int64) {
	return c.revalPromoted.Load(), c.revalEvicted.Load()
}

// export dumps the complete-answer LRU, least recently used first. Empty
// when coalescing is disabled or the cache is turned off.
func (c *coalescer) export() []probeEntry {
	if c.disabled {
		return nil
	}
	return c.cache.export()
}

// restore seeds one complete answer into the LRU (snapshot warm-restart)
// at the epoch it was learned under, recording it for persistence like a
// freshly cached answer: a snapshot imported with -state must survive the
// next restart through the segment store, not just this process's lifetime.
// A no-op when coalescing is disabled, the cache is off, or the result is
// not complete.
func (c *coalescer) restore(key string, res hidden.Result, epoch int64) {
	if c.disabled {
		return
	}
	c.cache.put(key, res, epoch)
	c.recordPut(key, res, epoch)
}

// seed is restore without the persistence record — the segment-replay path,
// where the answer being inserted is already committed on disk.
func (c *coalescer) seed(key string, res hidden.Result, epoch int64) {
	if c.disabled {
		return
	}
	c.cache.put(key, res, epoch)
}

// recordPut forwards a complete, cacheable answer to the attached persister.
// Mirrors put's own admission rules (no cache, or overflow ⇒ not cached ⇒
// not recorded) so the journal never carries entries replay would drop.
func (c *coalescer) recordPut(key string, res hidden.Result, epoch int64) {
	if c.cache == nil || res.Overflow {
		return
	}
	if p := c.persist.Load(); p != nil {
		p.recordProbe(key, res, epoch)
	}
}

// cacheSize returns the number of complete answers currently cached.
func (c *coalescer) cacheSize() int {
	if c.disabled {
		return 0
	}
	return c.cache.size()
}

// cacheBytes approximates the resident bytes of columnar-encoded cached
// answers.
func (c *coalescer) cacheBytes() int64 {
	if c.disabled {
		return 0
	}
	return c.cache.approxBytes()
}

// TopK answers q, deduplicating in-flight identical probes and serving
// recent complete answers from the LRU. issued reports whether this call
// actually reached the upstream (cache hits and coalesced followers are
// free and must not be charged).
//
// A cache hit whose epoch trails the current knowledge epoch is *stale*:
// instead of replaying it, the flight group issues exactly one confirming
// upstream probe. An identical fresh answer promotes the entry to the
// current epoch (the knowledge survived the drift); a different one
// replaces the entry — or evicts it, when the fresh answer overflowed and
// is no longer cacheable. Either way the stale entry costs one probe on
// first touch, never a wholesale cache flush.
func (c *coalescer) TopK(q query.Query) (res hidden.Result, issued bool, err error) {
	if c.disabled {
		res, err = c.db.TopK(q)
		return res, true, err
	}
	key := q.String()
	cur := c.curEpoch()
	stale, staleEpoch, inCache := c.cache.get(key)
	if inCache && staleEpoch >= cur {
		return stale, false, nil
	}
	res, _, err = c.flights.Do(key, func() (hidden.Result, error) {
		// Re-check under the flight: another leader may have filled or
		// re-validated the entry while this caller contended for the key.
		if r2, e2, ok2 := c.cache.get(key); ok2 && e2 >= cur {
			return r2, nil
		}
		issued = true
		fres, ferr := c.db.TopK(q)
		if ferr != nil {
			return fres, ferr
		}
		switch {
		case inCache && resultsEqual(fres, stale):
			c.revalPromoted.Add(1)
		case inCache:
			c.revalEvicted.Add(1)
			if fres.Overflow {
				// The drifted answer is partial now; the stale complete
				// answer must not survive to mislead anyone.
				c.cache.remove(key)
			}
		}
		// Populate the cache while the flight is still registered, so a
		// caller arriving between flight completion and cache write cannot
		// slip through both and re-issue the probe upstream. put is also
		// the promote path: same answer, current epoch.
		c.cache.put(key, fres, cur)
		c.recordPut(key, fres, cur)
		return fres, ferr
	})
	return res, issued, err
}

// resultsEqual reports whether two complete probe answers are identical:
// same overflow flag and the same tuples (ID, ordinal values, categorical
// values) in the same order. Used to decide promote-vs-evict during lazy
// re-validation.
func resultsEqual(a, b hidden.Result) bool {
	if a.Overflow != b.Overflow || len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if !sameTuple(a.Tuples[i], b.Tuples[i]) {
			return false
		}
	}
	return true
}

// sameTuple compares ID and attribute values (not slice identity).
func sameTuple(a, b types.Tuple) bool {
	if a.ID != b.ID || len(a.Ord) != len(b.Ord) || len(a.Cat) != len(b.Cat) {
		return false
	}
	for i := range a.Ord {
		if a.Ord[i] != b.Ord[i] {
			return false
		}
	}
	for k, v := range a.Cat {
		if b.Cat[k] != v {
			return false
		}
	}
	return true
}
