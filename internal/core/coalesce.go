// Probe coalescing: the issue-path layer that keeps concurrent users from
// multiplying upstream cost — the paper's sole cost measure.
//
// Two mechanisms, both keyed by the query's canonical string form:
//
//   - Singleflight: identical upstream TopK probes in flight at the same
//     moment are issued once; followers block on the leader's result. This
//     matters exactly when many users ask overlapping queries concurrently.
//   - A small bounded LRU of recent *complete* probe answers (valid or
//     underflow results, §2.1). A complete answer is authoritative — the
//     upstream returned every matching tuple — so replaying it is exact.
//     Overflow pages are partial and are never cached.
//
// Deduplicated probes count once: only the call that actually reaches the
// upstream charges the engine-wide and session query counters. Results are
// shared across goroutines and must be treated as immutable (the reranking
// algorithms only read them; the history store clones on insert).
//
// Correctness rests on the Database contract being deterministic for the
// lifetime of the engine (the upstream corpus does not change mid-run) —
// the same assumption the history store and dense indexes already make.
// Options.DisableCoalescing opts out for volatile upstreams.
//
// The parallel speculative MD search (md.go) leans on this layer twice
// over: its concurrent probe rounds dedup against other sessions' in-flight
// probes exactly like sequential ones, and the complete answers of wasted
// speculative probes land in the LRU, so a mis-speculation's upstream cost
// is never paid a second time.

package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/hidden"
	"repro/internal/query"
)

// defaultProbeCacheSize bounds the probe LRU when Options.ProbeCacheSize is
// zero. Entries are whole top-k pages, so the worst-case footprint is
// defaultProbeCacheSize·k tuples.
const defaultProbeCacheSize = 1024

// flight is one in-flight upstream call shared by its followers.
type flight struct {
	done chan struct{}
	res  hidden.Result
	err  error
}

// flightGroup is a minimal singleflight: Do runs fn once per key among
// concurrent callers and hands every caller the same result.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[string]*flight)}
}

// Do executes fn for key, coalescing concurrent callers onto one execution.
// leader reports whether this caller actually ran fn.
//
// A follower only ever inherits a SUCCESSFUL flight. When the leader's call
// fails, the failure is the leader's alone — handing its error to every
// coalesced follower would fan one transient upstream hiccup out to N
// independent requests that never touched the upstream. Instead a follower
// waking to a failed flight re-contends for the key: it becomes the new
// leader (or follows a newer one), so each caller's outcome reflects an
// upstream attempt made on its own behalf. Leaders still see their own
// error, so retry/backoff policy stays with the caller that paid the probe.
func (g *flightGroup) Do(key string, fn func() (hidden.Result, error)) (res hidden.Result, leader bool, err error) {
	for {
		g.mu.Lock()
		if f, ok := g.inflight[key]; ok {
			g.mu.Unlock()
			<-f.done
			if f.err != nil {
				continue // leader failed; re-contend instead of inheriting
			}
			return f.res, false, nil
		}
		f := &flight{done: make(chan struct{})}
		g.inflight[key] = f
		g.mu.Unlock()

		// Complete the flight even if fn panics: a leaked inflight entry
		// would wedge every future caller of this key on <-f.done forever.
		// The pre-set error stands when fn panics (the assignment below
		// never runs), so followers re-issue instead of reading a fabricated
		// empty success while the panic unwinds the leader.
		f.err = errFlightPanicked
		defer func() {
			g.mu.Lock()
			delete(g.inflight, key)
			g.mu.Unlock()
			close(f.done)
		}()
		f.res, f.err = fn()
		return f.res, true, f.err
	}
}

// errFlightPanicked is what coalesced followers observe when the leader's
// upstream call panicked before producing a result.
var errFlightPanicked = fmt.Errorf("core: coalesced upstream probe aborted by panic")

// probeCache is a bounded LRU of complete (valid/underflow) probe results.
//
// Entries are stored in columnar form (colstore.Answer: flat ID/value/symbol
// lanes interned into the history's shared dictionary) rather than as row
// structs, so a full cache of top-k pages costs a few slices per entry
// instead of cap·k tuples each with its own Ord slice and Cat map. The row
// form is materialized lazily on first hit and memoized — repeated hits on a
// hot probe return the same shared immutable tuples with zero allocation.
// Answers that cannot be encoded exactly (irregular tuples) fall back to
// plain row storage.
type probeCache struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recent; values are *cacheEntry
	byKey  map[string]*list.Element
	layout *colstore.Layout
	dict   *colstore.Dict
}

type cacheEntry struct {
	key  string
	ans  *colstore.Answer // columnar form; nil when not exactly representable
	res  hidden.Result    // row form: direct storage, or memoized from ans
	memo bool             // res has been materialized from ans
}

func newProbeCache(capacity int, layout *colstore.Layout, dict *colstore.Dict) *probeCache {
	if capacity <= 0 {
		return nil
	}
	return &probeCache{
		cap:    capacity,
		order:  list.New(),
		byKey:  make(map[string]*list.Element, capacity),
		layout: layout,
		dict:   dict,
	}
}

// fill stores res into ce, compacting to columnar form when possible.
func (p *probeCache) fill(ce *cacheEntry, res hidden.Result) {
	ce.ans, ce.res, ce.memo = nil, res, false
	if p.layout == nil || len(res.Tuples) == 0 {
		return
	}
	if ans, ok := colstore.EncodeAnswer(p.layout, p.dict, res.Tuples); ok {
		ce.ans = ans
		ce.res = hidden.Result{Overflow: res.Overflow}
	}
}

// rowForm returns ce's answer as shared immutable tuples, materializing and
// memoizing the columnar form on first use. Callers hold p.mu.
func (ce *cacheEntry) rowForm() hidden.Result {
	if ce.ans != nil && !ce.memo {
		ce.res.Tuples = ce.ans.Decode()
		ce.memo = true
	}
	return ce.res
}

func (p *probeCache) get(key string) (hidden.Result, bool) {
	if p == nil {
		return hidden.Result{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.byKey[key]
	if !ok {
		return hidden.Result{}, false
	}
	p.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rowForm(), true
}

// export returns the cached entries ordered least-recently-used first, so
// replaying them through put reproduces the eviction order. Results are
// shared, not copied: callers must treat them as immutable (they already
// are engine-wide).
func (p *probeCache) export() []probeEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]probeEntry, 0, p.order.Len())
	for el := p.order.Back(); el != nil; el = el.Prev() {
		ce := el.Value.(*cacheEntry)
		out = append(out, probeEntry{Key: ce.key, Res: ce.rowForm()})
	}
	return out
}

// size returns the number of cached complete answers.
func (p *probeCache) size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len()
}

// approxBytes estimates the resident bytes of the columnar-encoded entries.
func (p *probeCache) approxBytes() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var b int64
	for el := p.order.Front(); el != nil; el = el.Next() {
		if ce := el.Value.(*cacheEntry); ce.ans != nil {
			b += ce.ans.Bytes()
		}
	}
	return b
}

func (p *probeCache) put(key string, res hidden.Result) {
	if p == nil || res.Overflow {
		return // only complete answers are authoritative
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		p.order.MoveToFront(el)
		p.fill(el.Value.(*cacheEntry), res)
		return
	}
	ce := &cacheEntry{key: key}
	p.fill(ce, res)
	p.byKey[key] = p.order.PushFront(ce)
	for p.order.Len() > p.cap {
		oldest := p.order.Back()
		p.order.Remove(oldest)
		delete(p.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// probeEntry is one exported probe-LRU entry: a canonical query key and its
// complete (valid/underflow) answer. Snapshots persist these so a restarted
// service stays warm at the probe level, not just the tuple level.
type probeEntry struct {
	Key string
	Res hidden.Result
}

// coalescer wraps the engine's primary database with singleflight dedup and
// the complete-answer LRU. It is safe for concurrent use.
type coalescer struct {
	db       hidden.Database
	flights  *flightGroup
	cache    *probeCache
	disabled bool // pass every probe straight through

	// persist, when attached, records every complete answer admitted to the
	// cache so incremental checkpoints persist probe-level warmth.
	persist atomic.Pointer[Persister]
}

// newCoalescer builds the coalescing layer. layout and dict come from the
// engine's history store, so cached answers intern their categorical values
// into the same dictionary as the tuple history.
func newCoalescer(db hidden.Database, cacheSize int, disabled bool, layout *colstore.Layout, dict *colstore.Dict) *coalescer {
	if cacheSize == 0 {
		cacheSize = defaultProbeCacheSize
	}
	return &coalescer{
		db:       db,
		flights:  newFlightGroup(),
		cache:    newProbeCache(cacheSize, layout, dict),
		disabled: disabled,
	}
}

// export dumps the complete-answer LRU, least recently used first. Empty
// when coalescing is disabled or the cache is turned off.
func (c *coalescer) export() []probeEntry {
	if c.disabled {
		return nil
	}
	return c.cache.export()
}

// restore seeds one complete answer into the LRU (snapshot warm-restart),
// recording it for persistence like a freshly cached answer: a snapshot
// imported with -state must survive the next restart through the segment
// store, not just this process's lifetime. A no-op when coalescing is
// disabled, the cache is off, or the result is not complete.
func (c *coalescer) restore(key string, res hidden.Result) {
	if c.disabled {
		return
	}
	c.cache.put(key, res)
	c.recordPut(key, res)
}

// seed is restore without the persistence record — the segment-replay path,
// where the answer being inserted is already committed on disk.
func (c *coalescer) seed(key string, res hidden.Result) {
	if c.disabled {
		return
	}
	c.cache.put(key, res)
}

// recordPut forwards a complete, cacheable answer to the attached persister.
// Mirrors put's own admission rules (no cache, or overflow ⇒ not cached ⇒
// not recorded) so the journal never carries entries replay would drop.
func (c *coalescer) recordPut(key string, res hidden.Result) {
	if c.cache == nil || res.Overflow {
		return
	}
	if p := c.persist.Load(); p != nil {
		p.recordProbe(key, res)
	}
}

// cacheSize returns the number of complete answers currently cached.
func (c *coalescer) cacheSize() int {
	if c.disabled {
		return 0
	}
	return c.cache.size()
}

// cacheBytes approximates the resident bytes of columnar-encoded cached
// answers.
func (c *coalescer) cacheBytes() int64 {
	if c.disabled {
		return 0
	}
	return c.cache.approxBytes()
}

// TopK answers q, deduplicating in-flight identical probes and serving
// recent complete answers from the LRU. issued reports whether this call
// actually reached the upstream (cache hits and coalesced followers are
// free and must not be charged).
func (c *coalescer) TopK(q query.Query) (res hidden.Result, issued bool, err error) {
	if c.disabled {
		res, err = c.db.TopK(q)
		return res, true, err
	}
	key := q.String()
	if res, ok := c.cache.get(key); ok {
		return res, false, nil
	}
	return c.flights.Do(key, func() (hidden.Result, error) {
		res, err := c.db.TopK(q)
		if err == nil {
			// Populate the cache while the flight is still registered, so
			// a caller arriving between flight completion and cache write
			// cannot slip through both and re-issue the probe upstream.
			c.cache.put(key, res)
			c.recordPut(key, res)
		}
		return res, err
	})
}
