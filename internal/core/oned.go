// 1D query reranking (§3): Get-Next on a single ordinal attribute.
//
// All three variants share one cursor type. Coordinates are handled in axis
// space (value·direction) so ascending and descending preferences use the
// same logic; axis intervals are translated back to real ranges when queries
// are issued.
//
// Ties (the removal of the general positioning assumption, §5) are handled
// at emission time: when the search pins down the next attribute value, a
// fully-specified point query collects every tuple sharing it (crawling the
// point region if even that overflows), and the tie group is emitted from a
// buffer. All search ranges are therefore strictly open at the cursor
// position.

package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hidden"
	"repro/internal/ranking"
	"repro/internal/types"

	"repro/internal/query"
)

// OneDCursor incrementally returns the tuples matching a user query in
// ascending order of one attribute along a direction. It implements
// 1D-BASELINE (Algorithm 1), 1D-BINARY (Algorithm 2) or 1D-RERANK
// (Algorithm 3 + the Algorithm 4 oracle) depending on the variant.
type OneDCursor struct {
	s       *Session
	q       query.Query
	attr    int
	dir     ranking.Direction
	variant Variant

	lastAxis  float64       // axis value of the last emitted tie group
	pending   []types.Tuple // small tie group awaiting emission
	exhausted bool
	opQueries int64 // queries spent in the current Next call

	// Plateau state (§5): when more than k tuples share one attribute
	// value, they are enumerated lazily — "one at a time" — through a
	// sub-cursor ordered by another ordinal attribute, instead of
	// crawling the whole plateau eagerly.
	sub         *OneDCursor
	plateauAxis float64
}

// NewOneDCursor builds a 1D cursor over ordinal attribute attr along dir, in
// a fresh single-cursor session.
func (e *Engine) NewOneDCursor(q query.Query, attr int, dir ranking.Direction, v Variant) *OneDCursor {
	return e.NewSession().NewOneDCursor(q, attr, dir, v)
}

// NewOneDCursor builds a 1D cursor over ordinal attribute attr along dir.
// Variant TAOverOneD is treated as Rerank (TA's sorted access is built from
// 1D-RERANK cursors).
func (s *Session) NewOneDCursor(q query.Query, attr int, dir ranking.Direction, v Variant) *OneDCursor {
	if v == TAOverOneD {
		v = Rerank
	}
	return &OneDCursor{
		s: s, q: q.Clone(), attr: attr, dir: dir, variant: v,
		lastAxis: math.Inf(-1),
	}
}

// axisOf returns the tuple's axis coordinate on the cursor's attribute.
func (c *OneDCursor) axisOf(t types.Tuple) float64 {
	return float64(c.dir) * t.Ord[c.attr]
}

// axisDomainLo returns the smallest axis coordinate inside the attribute's
// domain.
func (c *OneDCursor) axisDomainLo() float64 {
	d := c.s.e.db.Schema().Domain(c.attr)
	if c.dir == ranking.Asc {
		return d.Min
	}
	return -d.Max
}

// realRange converts an axis interval to the real-value interval for the
// cursor's attribute.
func (c *OneDCursor) realRange(iv types.Interval) types.Interval {
	if c.dir == ranking.Asc {
		return iv
	}
	return types.Interval{Lo: -iv.Hi, Hi: -iv.Lo, LoOpen: iv.HiOpen, HiOpen: iv.LoOpen}
}

// issue sends one range-restricted query, charging the per-op budget.
func (c *OneDCursor) issue(iv types.Interval) (hidden.Result, error) {
	if c.s.e.opts.MaxQueriesPerOp > 0 && c.opQueries >= c.s.e.opts.MaxQueriesPerOp {
		return hidden.Result{}, ErrBudget
	}
	c.opQueries++
	return c.s.issue(c.q.WithRange(c.attr, c.realRange(iv)))
}

// minAxis returns the returned tuple with the smallest axis value strictly
// beyond the cursor position.
func (c *OneDCursor) minAxis(ts []types.Tuple) (types.Tuple, bool) {
	var best types.Tuple
	found := false
	for _, t := range ts {
		if c.axisOf(t) <= c.lastAxis {
			continue
		}
		if !found || c.axisOf(t) < c.axisOf(best) ||
			(c.axisOf(t) == c.axisOf(best) && t.ID < best.ID) {
			best, found = t, true
		}
	}
	return best, found
}

// histNext returns the best known (from history) tuple strictly after the
// cursor position.
func (c *OneDCursor) histNext() (types.Tuple, bool) {
	if c.s.e.opts.DisableHistory {
		return types.Tuple{}, false
	}
	iv := types.Interval{Lo: c.lastAxis, LoOpen: true, Hi: math.Inf(1), HiOpen: true}
	real := c.realRange(iv)
	if c.dir == ranking.Asc {
		return c.s.e.know.hist.MinMatching(c.q, c.attr, real)
	}
	return c.s.e.know.hist.MaxMatching(c.q, c.attr, real)
}

// Next implements Cursor.
func (c *OneDCursor) Next() (types.Tuple, bool, error) {
	if len(c.pending) > 0 {
		t := c.pending[0]
		c.pending = c.pending[1:]
		return t, true, nil
	}
	if c.sub != nil {
		t, ok, err := c.sub.Next()
		if err != nil {
			return types.Tuple{}, false, err
		}
		if ok {
			return t, true, nil
		}
		// Plateau drained: resume the main search beyond it.
		c.sub = nil
		c.lastAxis = c.plateauAxis
	}
	if c.exhausted {
		return types.Tuple{}, false, nil
	}
	c.opQueries = 0
	var (
		t   types.Tuple
		ok  bool
		err error
	)
	switch c.variant {
	case Baseline:
		t, ok, err = c.nextBaseline()
	case Binary:
		t, ok, err = c.nextBinary(false)
	default:
		t, ok, err = c.nextBinary(true)
	}
	if err != nil {
		return types.Tuple{}, false, err
	}
	if !ok {
		c.exhausted = true
		return types.Tuple{}, false, nil
	}
	if err := c.collectTies(t); err != nil {
		return types.Tuple{}, false, err
	}
	if c.sub != nil {
		// Large plateau: emissions stream from the sub-cursor; the
		// first pull must yield a tuple (t itself is in the plateau).
		tt, ok, err := c.sub.Next()
		if err != nil {
			return types.Tuple{}, false, err
		}
		if ok {
			return tt, true, nil
		}
		c.sub = nil
		c.lastAxis = c.plateauAxis
		return t, true, nil
	}
	c.lastAxis = c.axisOf(t)
	out := c.pending[0]
	c.pending = c.pending[1:]
	return out, true, nil
}

// collectTies fills the pending buffer with every tuple matching q that
// shares t's attribute value (§5 general-positioning removal). Under
// Options.AssumeGeneralPositioning the point query is skipped.
func (c *OneDCursor) collectTies(t types.Tuple) error {
	if c.s.e.opts.AssumeGeneralPositioning {
		c.pending = []types.Tuple{t}
		return nil
	}
	v := t.Ord[c.attr]
	point := types.ClosedInterval(v, v)
	res, err := c.issue(types.Interval{Lo: c.axisOf(t), Hi: c.axisOf(t)})
	if err != nil {
		return err
	}
	var ties []types.Tuple
	if !res.Overflow {
		ties = res.Tuples
	} else {
		// More than k ties (a value plateau): enumerate lazily via a
		// sub-cursor ordered by another ordinal attribute, one tuple
		// per Get-Next, as §5 prescribes ("one at a time").
		if sub, ok := c.plateauCursor(v); ok {
			c.sub = sub
			c.plateauAxis = c.axisOf(t)
			c.pending = c.pending[:0]
			return nil
		}
		// No free ordinal attribute remains: crawl the fully-pinned
		// region, splitting on categorical attributes.
		ties, err = c.s.crawlRegion(c.q.WithRange(c.attr, point), nil)
		if err != nil {
			return err
		}
	}
	seen := map[int]bool{}
	c.pending = c.pending[:0]
	for _, tt := range ties {
		if tt.Ord[c.attr] == v && !seen[tt.ID] {
			seen[tt.ID] = true
			c.pending = append(c.pending, tt)
		}
	}
	if !seen[t.ID] {
		c.pending = append(c.pending, t)
	}
	sort.Slice(c.pending, func(i, j int) bool { return c.pending[i].ID < c.pending[j].ID })
	return nil
}

// plateauCursor builds the lazy plateau enumerator: a cursor over the same
// query with this attribute pinned to v, ordered by the first ordinal
// attribute whose range is not yet a single point. ok is false when every
// ordinal attribute is pinned.
func (c *OneDCursor) plateauCursor(v float64) (*OneDCursor, bool) {
	subQ := c.q.WithRange(c.attr, types.ClosedInterval(v, v))
	for _, a := range c.s.e.db.Schema().OrdinalIndexes() {
		if a == c.attr {
			continue
		}
		if iv, ok := subQ.Ranges[a]; ok && iv.Lo == iv.Hi {
			continue // already pinned by an outer plateau level
		}
		return c.s.NewOneDCursor(subQ, a, ranking.Asc, c.variant), true
	}
	return nil, false
}

// nextBaseline is Algorithm 1: repeatedly narrow (last, cand) until the
// query stops overflowing.
func (c *OneDCursor) nextBaseline() (types.Tuple, bool, error) {
	cand, have := c.histNext()
	for {
		hi := math.Inf(1)
		if have {
			hi = c.axisOf(cand)
		}
		res, err := c.issue(types.Interval{Lo: c.lastAxis, LoOpen: true, Hi: hi, HiOpen: true})
		if err != nil {
			return types.Tuple{}, false, err
		}
		m, found := c.minAxis(res.Tuples)
		if !res.Overflow {
			if found && (!have || c.better(m, cand)) {
				return m, true, nil
			}
			return cand, have, nil
		}
		// Overflow always yields a strictly-later tuple (every return
		// lies strictly inside the open range).
		cand, have = m, true
		_ = found
	}
}

// better reports whether a precedes b in cursor order.
func (c *OneDCursor) better(a, b types.Tuple) bool {
	if c.axisOf(a) != c.axisOf(b) {
		return c.axisOf(a) < c.axisOf(b)
	}
	return a.ID < b.ID
}

// nextBinary is Algorithm 2 (dense=false) and Algorithm 3 (dense=true):
// halve the search interval; with dense indexing, hand narrow intervals to
// the oracle.
func (c *OneDCursor) nextBinary(dense bool) (types.Tuple, bool, error) {
	cand, have := c.histNext()
	if !have {
		// No known upper bound: one unbounded probe (as in Algorithm
		// 1's first step) to obtain a candidate or prove exhaustion.
		res, err := c.issue(types.Interval{Lo: c.lastAxis, LoOpen: true, Hi: math.Inf(1), HiOpen: true})
		if err != nil {
			return types.Tuple{}, false, err
		}
		m, found := c.minAxis(res.Tuples)
		if !found {
			return types.Tuple{}, false, nil
		}
		if !res.Overflow {
			return m, true, nil
		}
		cand = m
	}
	// Invariant: the next tuple's axis value lies in (searchLo,
	// cand.axis], where cand is a known, not-yet-emitted tuple. Before
	// the first emission the search floor is the attribute's domain
	// minimum (binary search runs over V(Ai), §3.2.1).
	searchLo, searchLoOpen := c.lastAxis, true
	if math.IsInf(searchLo, -1) {
		searchLo, searchLoOpen = c.axisDomainLo(), false
	}
	threshold := 0.0
	if dense {
		threshold = c.s.e.denseWidth1D(c.attr)
	}
	for {
		width := c.axisOf(cand) - searchLo
		if dense && threshold > 0 && width < threshold && !math.IsInf(searchLo, -1) {
			return c.oracle(searchLo, searchLoOpen, cand)
		}
		mid := searchLo + width/2
		if !(mid > searchLo) || !(mid < c.axisOf(cand)) || math.IsInf(searchLo, -1) {
			// Interval no longer splittable (or unbounded below):
			// finish with baseline narrowing.
			return c.finishNarrow(searchLo, searchLoOpen, cand)
		}
		res, err := c.issue(types.Interval{Lo: searchLo, LoOpen: searchLoOpen, Hi: mid, HiOpen: true})
		if err != nil {
			return types.Tuple{}, false, err
		}
		if m, found := c.minAxis(res.Tuples); found {
			if !res.Overflow {
				return m, true, nil
			}
			cand = m
			continue
		}
		// Lower half empty: probe the upper half [mid, cand.axis).
		res2, err := c.issue(types.Interval{Lo: mid, LoOpen: false, Hi: c.axisOf(cand), HiOpen: true})
		if err != nil {
			return types.Tuple{}, false, err
		}
		m2, found2 := c.minAxis(res2.Tuples)
		if !found2 {
			return cand, true, nil
		}
		if !res2.Overflow {
			return m2, true, nil
		}
		cand = m2
		searchLo, searchLoOpen = mid, false
	}
}

// finishNarrow completes the search with baseline narrowing inside
// (searchLo, cand.axis).
func (c *OneDCursor) finishNarrow(searchLo float64, searchLoOpen bool, cand types.Tuple) (types.Tuple, bool, error) {
	for {
		res, err := c.issue(types.Interval{Lo: searchLo, LoOpen: searchLoOpen, Hi: c.axisOf(cand), HiOpen: true})
		if err != nil {
			return types.Tuple{}, false, err
		}
		m, found := c.minAxis(res.Tuples)
		if !res.Overflow {
			if found && c.better(m, cand) {
				return m, true, nil
			}
			return cand, true, nil
		}
		cand = m
	}
}

// oracle is Algorithm 4: answer the narrow interval (searchLo, cand.axis]
// from the dense index, crawling it on a miss. The crawl deliberately drops
// the user query's selection condition so the indexed region serves every
// future user query.
func (c *OneDCursor) oracle(searchLo float64, searchLoOpen bool, cand types.Tuple) (types.Tuple, bool, error) {
	// The region is open at cand: on plateau-heavy (discrete) data a
	// closed end would drag cand's entire tie plateau into the crawl,
	// which the lazy §5 tie machinery already handles.
	axisIv := types.Interval{Lo: searchLo, LoOpen: searchLoOpen, Hi: c.axisOf(cand), HiOpen: true}
	realIv := c.realRange(axisIv)
	// Epoch-aware lookup: a stale covering region is re-validated with one
	// confirming probe (promoted if unchanged, evicted if drifted) before
	// it may answer with zero probes.
	reg, ok, err := c.s.denseLookup1(c.attr, realIv)
	if err != nil {
		return types.Tuple{}, false, err
	}
	if !ok {
		// Crawl-and-index, deduplicated: concurrent sessions wanting the
		// same region crawl it once; followers read it from the index.
		if err := c.s.crawlDense1(c.attr, realIv); err != nil {
			return types.Tuple{}, false, err
		}
		reg, ok, err = c.s.denseLookup1(c.attr, realIv)
		if err != nil {
			return types.Tuple{}, false, err
		}
		if !ok {
			// Coverage is monotone within an epoch: a freshly crawled
			// interval stays covered, so this indicates index corruption,
			// never a benign miss.
			return types.Tuple{}, false, fmt.Errorf("core: dense interval %s missing after crawl", realIv)
		}
	}
	var t types.Tuple
	var found bool
	if c.dir == ranking.Asc {
		t, found = reg.MinMatching(c.q, c.attr, realIv)
	} else {
		t, found = reg.MaxMatching(c.q, c.attr, realIv)
	}
	if found && c.axisOf(t) > c.lastAxis && c.better(t, cand) {
		return t, true, nil
	}
	return cand, true, nil
}
