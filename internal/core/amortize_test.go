package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// TestDenseIndexAmortization reproduces the §3.2.2 story end to end: a
// dense value cluster at the bottom of an attribute, an adversarial system
// ranking, and a stream of user queries hitting the same region. The first
// query pays for crawling the dense region; subsequent queries answer from
// the index for a fraction of the cost.
func TestDenseIndexAmortization(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	schema := testSchema(2)
	n := 4000
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		ord := make([]float64, schema.Len())
		if i < n/3 {
			ord[0] = 0.5 + rng.Float64()*0.05 // dense cluster at the bottom
		} else {
			ord[0] = 1 + rng.Float64()*99
		}
		ord[1] = rng.Float64() * 100
		tuples[i] = types.Tuple{ID: i, Ord: ord,
			Cat: map[string]string{"cat": []string{"x", "y", "z"}[i%3]}}
	}
	sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Desc)}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})
	e := NewEngine(db, Options{N: n})

	// Different user queries (different categorical filters) over the
	// same ranked attribute all hit the same dense region.
	costs := make([]int64, 0, 3)
	for _, cat := range []string{"x", "y", "z"} {
		before := db.QueryCount()
		cur := e.NewOneDCursor(query.New().WithCat("cat", cat), 0, ranking.Asc, Rerank)
		if _, err := TopH(cur, 10); err != nil {
			t.Fatal(err)
		}
		costs = append(costs, db.QueryCount()-before)
	}
	if e.DenseIndex1D().Regions(0) == 0 {
		t.Fatal("dense region never indexed")
	}
	if costs[1] >= costs[0] || costs[2] >= costs[0] {
		t.Errorf("index did not amortize: costs %v", costs)
	}
	t.Logf("per-query costs across users: %v (crawl ledger %d)",
		costs, e.DenseIndex1D().CrawlCost())
}

// TestDOTSpotExactness validates the full stack against the synthetic DOT
// dataset at moderate scale: 1D and MD cursors versus a local oracle.
func TestDOTSpotExactness(t *testing.T) {
	ds := dataset.DOT(77, 6000)
	db := ds.DBWith(10, dataset.DOTSystemRanker2())
	e := NewEngine(db, Options{N: 6000})

	// 1D: taxi-in ascending with a carrier filter (heavy integer ties).
	q := query.New().WithCat("Carrier", "AA")
	r1 := ranking.NewSingle("taxi-in", dataset.DOTTaxiIn, ranking.Asc)
	cur := e.NewOneDCursor(q, dataset.DOTTaxiIn, ranking.Asc, Rerank)
	got, err := TopH(cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopH(ds.Tuples, q, r1, 25)
	assertSameRanking(t, r1, got, want, oracleTopH(ds.Tuples, q, r1, 1<<30))

	// MD: delay blend over a distance range.
	r2 := ranking.MustLinear("blend",
		[]int{dataset.DOTArrDelayNew, dataset.DOTDepDelay, dataset.DOTTaxiOut},
		[]float64{1, 0.5, 0.25})
	q2 := query.New().WithRange(dataset.DOTDistance, types.ClosedInterval(500, 2500))
	cur2, err := e.NewCursor(q2, r2, Rerank)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := TopH(cur2, 15)
	if err != nil {
		t.Fatal(err)
	}
	want2 := oracleTopH(ds.Tuples, q2, r2, 15)
	assertSameRanking(t, r2, got2, want2, oracleTopH(ds.Tuples, q2, r2, 1<<30))

	// Descending 1D on a derived-preference attribute (largest distance).
	r3 := ranking.NewSingle("dist-desc", dataset.DOTDistance, ranking.Desc)
	cur3 := e.NewOneDCursor(query.New(), dataset.DOTDistance, ranking.Desc, Rerank)
	got3, err := TopH(cur3, 10)
	if err != nil {
		t.Fatal(err)
	}
	want3 := oracleTopH(ds.Tuples, query.New(), r3, 10)
	assertSameRanking(t, r3, got3, want3, oracleTopH(ds.Tuples, query.New(), r3, 1<<30))
}

// TestBlueNileRatioExactness checks the ratio ranker (price-per-carat) on
// the Blue Nile generator against the oracle — the §5 "derived attribute"
// scenario the paper motivates with this exact site.
func TestBlueNileRatioExactness(t *testing.T) {
	ds := dataset.BlueNile(78, 4000)
	db := ds.DB()
	e := NewEngine(db, Options{N: 4000})
	r := ranking.NewRatio("ppc", dataset.BNPrice, dataset.BNCarat)
	q := query.New().WithCat("Cut", "Ideal")
	cur, err := e.NewCursor(q, r, Rerank)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopH(cur, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopH(ds.Tuples, q, r, 12)
	assertSameRanking(t, r, got, want, oracleTopH(ds.Tuples, q, r, 1<<30))
}
