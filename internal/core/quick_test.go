package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// TestQuickOneDExactness is the property-based form of the 1D oracle test:
// for arbitrary seeds (databases, queries, k, ties, directions, variants),
// the cursor's output ranking equals the full-scan oracle's.
func TestQuickOneDExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(2)
		n := 30 + rng.Intn(150)
		k := 1 + rng.Intn(7)
		ties := rng.Intn(2) == 0
		sys := systemRankers(m)[rng.Intn(3)]
		schema := testSchema(m)
		tuples := genTuples(rng, schema, n, ties)
		db := hidden.MustDB(schema, tuples, hidden.Options{K: k, Ranker: sys})
		e := NewEngine(db, Options{N: n})
		q := randQuery(rng, schema)
		attr := rng.Intn(m)
		dir := ranking.Asc
		if rng.Intn(2) == 0 {
			dir = ranking.Desc
		}
		variant := []Variant{Baseline, Binary, Rerank}[rng.Intn(3)]
		r := ranking.NewSingle("1d", attr, dir)
		cur := e.NewOneDCursor(q, attr, dir, variant)
		h := 1 + rng.Intn(15)
		got, err := TopH(cur, h)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return sameScores(r, got, oracleTopH(tuples, q, r, h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMDExactness is the MD property-based oracle test.
func TestQuickMDExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(2)
		n := 30 + rng.Intn(120)
		k := 1 + rng.Intn(7)
		ties := rng.Intn(2) == 0
		sys := systemRankers(m)[rng.Intn(3)]
		schema := testSchema(m)
		tuples := genTuples(rng, schema, n, ties)
		db := hidden.MustDB(schema, tuples, hidden.Options{K: k, Ranker: sys})
		e := NewEngine(db, Options{N: n})
		q := randQuery(rng, schema)
		r := randLinear(rng, m, 2+rng.Intn(m-1))
		variant := []Variant{Baseline, Binary, Rerank, TAOverOneD}[rng.Intn(4)]
		cur, err := e.NewCursor(q, r, variant)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		h := 1 + rng.Intn(10)
		got, err := TopH(cur, h)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return sameScores(r, got, oracleTopH(tuples, q, r, h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// sameScores compares two rankings by score sequence only (ID sets within
// tie groups are validated by the deterministic tests).
func sameScores(r ranking.Ranker, got, want []types.Tuple) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if ranking.ScoreTuple(r, got[i]) != ranking.ScoreTuple(r, want[i]) {
			return false
		}
	}
	return true
}

// TestQuickCursorDeterminism: two engines fed the same seed must produce
// identical answer sequences AND identical query costs — the whole stack is
// deterministic.
func TestQuickCursorDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		run := func() ([]float64, int64) {
			rng := rand.New(rand.NewSource(seed))
			schema := testSchema(2)
			tuples := genTuples(rng, schema, 120, true)
			db := hidden.MustDB(schema, tuples, hidden.Options{K: 4, Ranker: systemRankers(2)[1]})
			e := NewEngine(db, Options{N: 120})
			r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 2})
			cur, _ := e.NewCursor(query.New(), r, Rerank)
			out, err := TopH(cur, 9)
			if err != nil {
				return nil, -1
			}
			scores := make([]float64, len(out))
			for i, tp := range out {
				scores[i] = ranking.ScoreTuple(r, tp)
			}
			return scores, db.QueryCount()
		}
		a, ca := run()
		b, cb := run()
		if ca != cb || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
