// Session admission: the engine-level backpressure primitive.
//
// An engine bound to a real upstream has two scarce resources — upstream
// query budget and the goroutines/memory each live session's cursors hold.
// The admission gate bounds the second: Options.MaxConcurrentSessions caps
// how many sessions may be in flight at once, and callers that sit on the
// service edge (HTTP handlers, batch schedulers) reserve their slots through
// TryAdmit BEFORE creating sessions, so overload is rejected cheaply (an
// HTTP 429) instead of queueing unbounded work behind the upstream.
//
// The gate is weighted: a batch request admitting N sub-requests reserves N
// slots in one atomic step, so a batch can never be half-admitted and the
// in-flight total never exceeds the bound regardless of interleaving.
// Admission is deliberately non-blocking — the serving tier's contract is
// "fail fast with Retry-After", not "queue forever" — which also keeps the
// primitive deadlock-free under arbitrary weights.
//
// Library callers that construct sessions directly (experiments, qrank,
// tests) are unaffected: NewSession itself never blocks or rejects. The
// gate only binds callers that opt in through TryAdmit.

package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// admissionGate is a weighted, non-blocking semaphore. The zero capacity
// means unlimited: TryAdmit always succeeds but still counts in-flight
// weight, so SessionsInFlight stays meaningful for metrics either way.
//
// The gate distinguishes two priorities. User-priority acquisition
// (tryAcquire) may use the full capacity; low-priority acquisition
// (tryAcquireLow, used by the background knowledge acquirer) is refused
// whenever admitting it would leave fewer than a reserve of slots free, so
// background work can never squeeze a user burst. Every user-priority
// refusal is timestamped, giving the acquirer a cheap "user traffic was
// just shed" signal to poll between probes.
type admissionGate struct {
	mu   sync.Mutex
	cap  int // 0 = unlimited
	used int
	// lowUsed is the slice of used held at background priority. Pressure is
	// computed on user-held weight only (used-lowUsed): the acquirer's own
	// admitted slot must never read as "a user is waiting", or any gate
	// whose reserve equals its capacity minus the acquisition weight would
	// make the acquirer abort itself at its first probe.
	lowUsed int

	// lastDenied is the unix-nano time of the most recent user-priority
	// refusal (0 = never). Written only on the shed path, read lock-free.
	lastDenied atomic.Int64
}

func newAdmissionGate(capacity int) *admissionGate {
	if capacity < 0 {
		capacity = 0
	}
	return &admissionGate{cap: capacity}
}

// tryAcquire reserves weight slots if they all fit, atomically. A refusal
// stamps lastDenied: user traffic was just shed, so background work must
// back off.
func (g *admissionGate) tryAcquire(weight int) bool {
	if weight <= 0 {
		weight = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cap > 0 && g.used+weight > g.cap {
		g.lastDenied.Store(time.Now().UnixNano())
		return false
	}
	g.used += weight
	return true
}

// reserveSlots returns the capacity withheld from low-priority admission:
// a quarter of the gate, at least one slot. Zero with an unlimited gate
// (capacity is not scarce, so there is nothing to reserve).
func (g *admissionGate) reserveSlots() int {
	if g.cap <= 0 {
		return 0
	}
	r := g.cap / 4
	if r < 1 {
		r = 1
	}
	return r
}

// tryAcquireLow reserves weight slots at background priority: it refuses
// whenever the reservation would dip into the reserve kept free for user
// traffic. Always admits on an unlimited gate.
func (g *admissionGate) tryAcquireLow(weight int) bool {
	if weight <= 0 {
		weight = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cap > 0 && g.used+weight > g.cap-g.reserveSlots() {
		return false
	}
	g.used += weight
	g.lowUsed += weight
	return true
}

// releaseLow returns slots acquired through tryAcquireLow, keeping the
// low-priority accounting in step with the total.
func (g *admissionGate) releaseLow(weight int) {
	if weight <= 0 {
		weight = 1
	}
	g.mu.Lock()
	g.used -= weight
	g.lowUsed -= weight
	if g.used < 0 {
		g.used = 0
	}
	if g.lowUsed < 0 {
		g.lowUsed = 0
	}
	g.mu.Unlock()
}

// userPressure reports whether user traffic is contending for the gate:
// either a user-priority admission was refused within the given window, or
// user-held weight has climbed into the low-priority reserve. Only user
// weight (used-lowUsed) counts — background admissions never pressure
// themselves. The background acquirer polls this between probes to yield
// mid-flight.
func (g *admissionGate) userPressure(window time.Duration) bool {
	if d := g.lastDenied.Load(); d != 0 && time.Now().UnixNano()-d < int64(window) {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cap > 0 && g.used-g.lowUsed >= g.cap-g.reserveSlots()
}

func (g *admissionGate) release(weight int) {
	if weight <= 0 {
		weight = 1
	}
	g.mu.Lock()
	g.used -= weight
	if g.used < 0 {
		g.used = 0
	}
	g.mu.Unlock()
}

func (g *admissionGate) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// TryAdmit reserves weight session slots against the engine's
// MaxConcurrentSessions bound, atomically: either all weight slots are
// reserved or none. It never blocks; ok=false means the caller should shed
// the request (HTTP 429 with Retry-After at the service edge). On success
// the returned release function returns the slots; it is idempotent, so
// calling it from both an error path and a deferred cleanup is safe.
//
// With MaxConcurrentSessions unset (0) admission always succeeds but
// in-flight weight is still tracked for SessionsInFlight.
func (e *Engine) TryAdmit(weight int) (release func(), ok bool) {
	if weight <= 0 {
		weight = 1
	}
	if !e.adm.tryAcquire(weight) {
		return nil, false
	}
	var once sync.Once
	return func() {
		once.Do(func() { e.adm.release(weight) })
	}, true
}

// TryAdmitLowPriority reserves weight slots at background (acquirer)
// priority: admission is refused whenever it would leave less than a
// quarter of the gate's capacity (at least one slot) free for user
// traffic, so background work always yields first under load. Same
// contract as TryAdmit otherwise: non-blocking, idempotent release,
// always-admit on an unlimited gate.
func (e *Engine) TryAdmitLowPriority(weight int) (release func(), ok bool) {
	if weight <= 0 {
		weight = 1
	}
	if !e.adm.tryAcquireLow(weight) {
		return nil, false
	}
	var once sync.Once
	return func() {
		once.Do(func() { e.adm.releaseLow(weight) })
	}, true
}

// UserPressure reports whether user traffic is contending for the engine's
// admission gate: a user-priority admission was refused within the given
// window, or in-flight weight has climbed into the low-priority reserve.
// Background work polls this between probes and aborts when it fires.
func (e *Engine) UserPressure(window time.Duration) bool {
	return e.adm.userPressure(window)
}

// SessionsInFlight reports the total admitted weight currently held — the
// number of in-flight admitted sessions.
func (e *Engine) SessionsInFlight() int { return e.adm.inFlight() }

// SessionCapacity returns the configured MaxConcurrentSessions bound
// (0 = unlimited).
func (e *Engine) SessionCapacity() int { return e.adm.cap }
