// Session admission: the engine-level backpressure primitive.
//
// An engine bound to a real upstream has two scarce resources — upstream
// query budget and the goroutines/memory each live session's cursors hold.
// The admission gate bounds the second: Options.MaxConcurrentSessions caps
// how many sessions may be in flight at once, and callers that sit on the
// service edge (HTTP handlers, batch schedulers) reserve their slots through
// TryAdmit BEFORE creating sessions, so overload is rejected cheaply (an
// HTTP 429) instead of queueing unbounded work behind the upstream.
//
// The gate is weighted: a batch request admitting N sub-requests reserves N
// slots in one atomic step, so a batch can never be half-admitted and the
// in-flight total never exceeds the bound regardless of interleaving.
// Admission is deliberately non-blocking — the serving tier's contract is
// "fail fast with Retry-After", not "queue forever" — which also keeps the
// primitive deadlock-free under arbitrary weights.
//
// Library callers that construct sessions directly (experiments, qrank,
// tests) are unaffected: NewSession itself never blocks or rejects. The
// gate only binds callers that opt in through TryAdmit.

package core

import "sync"

// admissionGate is a weighted, non-blocking semaphore. The zero capacity
// means unlimited: TryAdmit always succeeds but still counts in-flight
// weight, so SessionsInFlight stays meaningful for metrics either way.
type admissionGate struct {
	mu   sync.Mutex
	cap  int // 0 = unlimited
	used int
}

func newAdmissionGate(capacity int) *admissionGate {
	if capacity < 0 {
		capacity = 0
	}
	return &admissionGate{cap: capacity}
}

// tryAcquire reserves weight slots if they all fit, atomically.
func (g *admissionGate) tryAcquire(weight int) bool {
	if weight <= 0 {
		weight = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cap > 0 && g.used+weight > g.cap {
		return false
	}
	g.used += weight
	return true
}

func (g *admissionGate) release(weight int) {
	if weight <= 0 {
		weight = 1
	}
	g.mu.Lock()
	g.used -= weight
	if g.used < 0 {
		g.used = 0
	}
	g.mu.Unlock()
}

func (g *admissionGate) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// TryAdmit reserves weight session slots against the engine's
// MaxConcurrentSessions bound, atomically: either all weight slots are
// reserved or none. It never blocks; ok=false means the caller should shed
// the request (HTTP 429 with Retry-After at the service edge). On success
// the returned release function returns the slots; it is idempotent, so
// calling it from both an error path and a deferred cleanup is safe.
//
// With MaxConcurrentSessions unset (0) admission always succeeds but
// in-flight weight is still tracked for SessionsInFlight.
func (e *Engine) TryAdmit(weight int) (release func(), ok bool) {
	if weight <= 0 {
		weight = 1
	}
	if !e.adm.tryAcquire(weight) {
		return nil, false
	}
	var once sync.Once
	return func() {
		once.Do(func() { e.adm.release(weight) })
	}, true
}

// SessionsInFlight reports the total admitted weight currently held — the
// number of in-flight admitted sessions.
func (e *Engine) SessionsInFlight() int { return e.adm.inFlight() }

// SessionCapacity returns the configured MaxConcurrentSessions bound
// (0 = unlimited).
func (e *Engine) SessionCapacity() int { return e.adm.cap }
