package core

import (
	"math/rand"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// mdParallelCase is one randomized MD workload the parallel-equivalence
// property test replays at several speculative widths.
type mdParallelCase struct {
	name    string
	m       int // ranked attributes
	n       int
	seed    int64
	ties    bool
	variant Variant
	q       func() query.Query
	r       func() ranking.Ranker
}

func mdParallelCases() []mdParallelCase {
	return []mdParallelCase{
		{
			name: "rerank-2d-filter", m: 2, n: 1500, seed: 11, variant: Rerank,
			q: func() query.Query { return query.New().WithCat("cat", "x") },
			r: func() ranking.Ranker { return ranking.MustLinear("u", []int{0, 1}, []float64{1, 1}) },
		},
		{
			name: "rerank-2d-ties-range", m: 2, n: 1200, seed: 12, ties: true, variant: Rerank,
			q: func() query.Query { return query.New().WithRange(1, types.ClosedInterval(10, 90)) },
			r: func() ranking.Ranker { return ranking.MustLinear("u", []int{0, 1}, []float64{2, 1}) },
		},
		{
			name: "binary-3d", m: 3, n: 1000, seed: 13, variant: Binary,
			q: func() query.Query { return query.New() },
			r: func() ranking.Ranker { return ranking.MustLinear("u", []int{0, 1, 2}, []float64{1, 1, 1}) },
		},
		{
			name: "baseline-2d", m: 2, n: 600, seed: 14, variant: Baseline,
			q: func() query.Query { return query.New().WithCat("cat", "y") },
			r: func() ranking.Ranker { return ranking.MustLinear("u", []int{0, 1}, []float64{1, 3}) },
		},
	}
}

// runMDParallel executes one case on a fresh engine at speculative width w
// and returns the emitted tuple IDs in order plus the session ledger.
func runMDParallel(t *testing.T, tc mdParallelCase, db *hidden.DB, w, h int) (ids []int, ledger int64) {
	t.Helper()
	e := NewEngine(db, Options{N: tc.n, SearchParallelism: w})
	sess := e.NewSession()
	cur := sess.NewMDCursor(tc.q(), tc.r(), tc.variant)
	got, err := TopH(cur, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range got {
		ids = append(ids, tt.ID)
	}
	return ids, sess.Queries()
}

// TestMDParallelEquivalence is the parallel-vs-sequential property test: for
// randomized MD workloads across variants, SearchParallelism ∈ {1, 4, 8}
// must emit the identical tuple sequence, every width's ledger must be
// exactly reproducible run-to-run (deterministic charge-at-issue), and the
// session ledger must equal both the engine counter and the upstream's own
// count. Run under -race this also exercises the concurrent probe rounds.
func TestMDParallelEquivalence(t *testing.T) {
	for _, tc := range mdParallelCases() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			schema := testSchema(tc.m)
			tuples := genTuples(rng, schema, tc.n, tc.ties)
			// Adversarial system ranking: anti-correlated with the user's.
			sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Desc)}
			h := 12

			makeDB := func() *hidden.DB {
				return hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})
			}
			refDB := makeDB()
			refIDs, refLedger := runMDParallel(t, tc, refDB, 1, h)
			if refLedger != refDB.QueryCount() {
				t.Fatalf("W=1 ledger %d != upstream count %d", refLedger, refDB.QueryCount())
			}
			// Exactness against the oracle, so "identical across widths"
			// can never mean identically wrong.
			want := oracleTopH(tuples, tc.q(), tc.r(), h)
			if len(refIDs) != len(want) {
				t.Fatalf("W=1 emitted %d tuples, oracle has %d", len(refIDs), len(want))
			}
			for i := range want {
				if refIDs[i] != want[i].ID {
					t.Fatalf("W=1 rank %d: tuple %d, oracle %d", i, refIDs[i], want[i].ID)
				}
			}
			for _, w := range []int{4, 8} {
				db := makeDB()
				ids, ledger := runMDParallel(t, tc, db, w, h)
				if len(ids) != len(refIDs) {
					t.Fatalf("W=%d emitted %d tuples, W=1 emitted %d", w, len(ids), len(refIDs))
				}
				for i := range ids {
					if ids[i] != refIDs[i] {
						t.Fatalf("W=%d rank %d: tuple %d, W=1 emitted %d", w, i, ids[i], refIDs[i])
					}
				}
				if ledger != db.QueryCount() {
					t.Errorf("W=%d ledger %d != upstream count %d", w, ledger, db.QueryCount())
				}
				// Determinism: an identical run must charge the identical
				// ledger (charge-at-issue, processed in round order).
				db2 := makeDB()
				ids2, ledger2 := runMDParallel(t, tc, db2, w, h)
				if ledger2 != ledger {
					t.Errorf("W=%d ledger not deterministic: %d then %d", w, ledger, ledger2)
				}
				for i := range ids2 {
					if ids2[i] != ids[i] {
						t.Fatalf("W=%d emission not deterministic at rank %d", w, i)
					}
				}
			}
		})
	}
}

// TestMDParallelSharedSession drives several concurrent MD cursors from
// sessions of ONE engine at width 8 while asserting the cost invariants that
// the coalescing layer guarantees: engine counter == upstream count, and the
// per-session ledgers partition it exactly. Run under -race this checks the
// worker pool against the shared knowledge layer.
func TestMDParallelSharedSession(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	schema := testSchema(2)
	tuples := genTuples(rng, schema, 1500, false)
	sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Desc)}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})
	e := NewEngine(db, Options{N: 1500, SearchParallelism: 8})

	r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})
	cats := []string{"x", "y", "z"}
	sessions := make([]*Session, len(cats))
	errs := make(chan error, len(cats))
	for i, cat := range cats {
		sessions[i] = e.NewSession()
		go func(s *Session, cat string) {
			cur := s.NewMDCursor(query.New().WithCat("cat", cat), r, Rerank)
			_, err := TopH(cur, 8)
			errs <- err
		}(sessions[i], cat)
	}
	for range cats {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if e.Queries() != db.QueryCount() {
		t.Errorf("engine counted %d queries, upstream answered %d", e.Queries(), db.QueryCount())
	}
	var sum int64
	for _, s := range sessions {
		sum += s.Queries()
	}
	if sum != e.Queries() {
		t.Errorf("session ledgers sum to %d, engine counted %d", sum, e.Queries())
	}
	issued, wasted := e.SpeculationStats()
	if wasted > issued {
		t.Errorf("wasted %d speculative probes but only %d were issued", wasted, issued)
	}
}

// TestMDSpeculationWasteBound pins the acceptance bound on the
// overlapping-window workload BenchmarkMDParallel uses: at width 8, wasted
// speculative probes stay ≤ 25%% of all issued probes. The run is fully
// deterministic (single session, fixed seed), so this is a hard bound, not a
// statistical one.
func TestMDSpeculationWasteBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	schema := testSchema(2)
	tuples := genTuples(rng, schema, 2000, false)
	sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Desc)}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})
	e := NewEngine(db, Options{N: 2000, SearchParallelism: 8})
	r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})
	for i := 0; i < 8; i++ {
		lo := float64(i * 10)
		q := query.New().WithRange(0, types.ClosedInterval(lo, lo+25))
		sess := e.NewSession()
		cur := sess.NewMDCursor(q, r, Rerank)
		if _, err := TopH(cur, 10); err != nil {
			t.Fatal(err)
		}
	}
	issued, wasted := e.SpeculationStats()
	total := e.Queries()
	t.Logf("upstream queries %d, speculative issued %d, wasted %d", total, issued, wasted)
	if total == 0 {
		t.Fatal("workload issued no upstream queries")
	}
	if frac := float64(wasted) / float64(total); frac > 0.25 {
		t.Errorf("wasted speculative probes are %.1f%% of issued probes, want ≤ 25%%", frac*100)
	}
}
