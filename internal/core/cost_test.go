package core

import (
	"math/rand"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// clusteredTuples builds a database with a dense cluster near the low end of
// attribute 0 — the regime where the dense index pays off (§3.2.1).
func clusteredTuples(rng *rand.Rand, schema *types.Schema, n int) []types.Tuple {
	out := make([]types.Tuple, n)
	for i := range out {
		ord := make([]float64, schema.Len())
		if i < n/3 {
			ord[0] = 0.5 + rng.Float64()*0.05 // dense cluster in [0.5, 0.55]
		} else {
			ord[0] = 1 + rng.Float64()*99 // the cluster sits at the bottom
		}
		for j := 1; j < schema.NumOrdinal(); j++ {
			ord[j] = rng.Float64() * 100
		}
		out[i] = types.Tuple{ID: i, Ord: ord, Cat: map[string]string{"cat": "x"}}
	}
	return out
}

// measure1D returns the total query cost of retrieving top-h on attr 0
// ascending for several user queries under the given variant.
func measure1D(t *testing.T, db *hidden.DB, n int, v Variant, h int) int64 {
	t.Helper()
	db.ResetCounter()
	e := NewEngine(db, Options{N: n})
	for trial := 0; trial < 5; trial++ {
		cur := e.NewOneDCursor(query.New(), 0, ranking.Asc, v)
		if _, err := TopH(cur, h); err != nil {
			t.Fatal(err)
		}
	}
	return db.QueryCount()
}

// TestCostOrdering1D checks the paper's qualitative claim: under a system
// ranking anti-correlated with the user's, 1D-RERANK ≤ 1D-BINARY ≪
// 1D-BASELINE in amortized query cost on dense data.
func TestCostOrdering1D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schema := testSchema(2)
	n := 3000
	tuples := clusteredTuples(rng, schema, n)
	// Hostile system ranking: descending attribute 0.
	sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Desc)}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})

	costBase := measure1D(t, db, n, Baseline, 10)
	costBin := measure1D(t, db, n, Binary, 10)
	costRer := measure1D(t, db, n, Rerank, 10)
	t.Logf("1D costs over 5 queries (top-10 each): baseline=%d binary=%d rerank=%d", costBase, costBin, costRer)
	if costBase <= costBin {
		t.Errorf("expected baseline (%d) > binary (%d) on hostile ranking + dense cluster", costBase, costBin)
	}
	if costRer > costBin {
		t.Errorf("expected rerank (%d) ≤ binary (%d)", costRer, costBin)
	}
}

// TestCostOrderingMD checks MD-RERANK beats TA-over-1D when many tuples
// carry extreme values on one attribute (the Figure 1 pathology).
func TestCostOrderingMD(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	schema := testSchema(2)
	n := 2000
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		ord := make([]float64, schema.Len())
		switch {
		case i < n/3: // extreme on attr 0
			ord[0], ord[1] = rng.Float64()*0.3, 20+rng.Float64()*80
		case i < 2*n/3: // extreme on attr 1
			ord[0], ord[1] = 20+rng.Float64()*80, rng.Float64()*0.3
		default:
			ord[0], ord[1] = rng.Float64()*100, rng.Float64()*100
		}
		tuples[i] = types.Tuple{ID: i, Ord: ord, Cat: map[string]string{"cat": "x"}}
	}
	sys := hidden.FuncRanker{Label: "arb", F: func(t types.Tuple) float64 {
		return float64((t.ID * 2654435761) % 100000)
	}}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})
	r := ranking.MustLinear("user", []int{0, 1}, []float64{1, 1})

	run := func(v Variant) int64 {
		db.ResetCounter()
		e := NewEngine(db, Options{N: n})
		cur, err := e.NewCursor(query.New(), r, v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := TopH(cur, 5); err != nil {
			t.Fatal(err)
		}
		return db.QueryCount()
	}
	costTA := run(TAOverOneD)
	costMD := run(Rerank)
	t.Logf("MD top-5 costs: TA=%d MD-RERANK=%d", costTA, costMD)
	if costMD >= costTA {
		t.Errorf("expected MD-RERANK (%d) < TA (%d) with extreme-value tuples", costMD, costTA)
	}
}
