// The Session layer: per-cursor execution state.
//
// A Session is the lightweight, single-request counterpart of the shared
// Knowledge layer: it carries the upstream-cost ledger for one unit of work
// (one service request, one experiment run, one TA cursor tree) while every
// heavyweight structure — history, dense indexes, probe coalescing — is
// shared through the Engine. Sessions are cheap to create; make one per
// request. Many sessions may run concurrently against one engine; the
// cursors created from a single session are themselves sequential objects
// (drive each cursor from one goroutine at a time).

package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/crawl"
	"repro/internal/hidden"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// Session groups the cursors of one logical request against an Engine and
// tracks the upstream queries charged to it. Coalesced and cached probes are
// free — including probes answered from a snapshot-restored cache after a
// warm restart: a session is only charged for probes that actually reached
// the upstream on its behalf.
type Session struct {
	e       *Engine
	queries atomic.Int64
	// workers bounds the session's concurrent speculative probes (nil when
	// Options.SearchParallelism ≤ 1): one MD cursor issues at most one
	// round of SearchParallelism probes at a time, and several cursors of
	// the same session share this pool rather than multiplying it.
	workers chan struct{}
	// abort, when set, is polled before every upstream probe; a true
	// return fails the probe with ErrAcquireAborted. The background
	// acquirer uses it to yield to user traffic mid-crawl at probe
	// granularity. Set before driving cursors; never from another
	// goroutine.
	abort func() bool
}

// ErrAcquireAborted is returned by probes of a session whose abort hook
// fired — background acquisition yielding to user traffic.
var ErrAcquireAborted = fmt.Errorf("core: acquisition aborted for user traffic")

// SetAbort installs a per-probe abort check on the session (nil clears
// it). Install before driving cursors; the hook runs on whichever
// goroutine issues probes.
func (s *Session) SetAbort(f func() bool) { s.abort = f }

// NewSession starts a session against the engine. Sessions are cheap;
// create one per request (or per cursor) and read its Queries ledger for
// the request's upstream cost.
func (e *Engine) NewSession() *Session {
	s := &Session{e: e}
	if w := e.searchWidth(); w > 1 {
		s.workers = make(chan struct{}, w)
	}
	return s
}

// probeResult is one outcome slot of a concurrent probe round. issued
// mirrors issueCounted's flag: whether this probe reached the upstream (and
// was therefore charged), as opposed to replaying a cached or coalesced
// answer for free.
type probeResult struct {
	res    hidden.Result
	issued bool
	err    error
}

// issueAll issues qs concurrently through the coalescing layer, bounded by
// the session's worker pool, writing outcome i into out[i]. Charging is per
// probe exactly as in issue: only calls that reach the upstream are charged,
// atomically, so the ledger total is order-independent and reproducible.
// Callers own qs and out again once issueAll returns.
func (s *Session) issueAll(qs []query.Query, out []probeResult) {
	if len(qs) == 1 || s.workers == nil {
		for i := range qs {
			out[i].res, out[i].issued, out[i].err = s.issueCounted(qs[i])
		}
		return
	}
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.workers <- struct{}{}
			defer func() { <-s.workers }()
			out[i].res, out[i].issued, out[i].err = s.issueCounted(qs[i])
		}(i)
	}
	wg.Wait()
}

// Engine returns the engine the session runs against.
func (s *Session) Engine() *Engine { return s.e }

// Queries returns the number of upstream queries charged to this session —
// the per-request incarnation of the paper's cost measure. Probes answered
// by the coalescing layer or another session's in-flight call cost nothing.
func (s *Session) Queries() int64 { return s.queries.Load() }

// coalescedProbe sends one query to the primary database through the
// coalescing layer. The issuing leader records the returned page in the
// shared history: cache hits and coalesced followers replay tuples the
// leader already added, and skipping the redundant Add keeps free probes off
// the history store's write lock. Charging (engine counter, session ledger)
// is the caller's responsibility — Session.issue charges per probe, while
// crawls charge their crawler's Issued total once at the end.
func (s *Session) coalescedProbe(q query.Query) (res hidden.Result, issued bool, err error) {
	if s.abort != nil && s.abort() {
		return hidden.Result{}, false, ErrAcquireAborted
	}
	res, issued, err = s.e.probes.TopK(q)
	if err != nil {
		return res, issued, err
	}
	if issued && !s.e.opts.DisableHistory {
		s.e.know.hist.Add(res.Tuples...)
	}
	return res, issued, nil
}

// issue sends one query to the primary database through the coalescing
// layer, recording every returned tuple in the shared history.
func (s *Session) issue(q query.Query) (hidden.Result, error) {
	res, _, err := s.issueCounted(q)
	return res, err
}

// issueCounted is issue, additionally reporting whether the probe reached
// the upstream (and was charged) — the hook the MD search's speculation
// accounting needs.
func (s *Session) issueCounted(q query.Query) (hidden.Result, bool, error) {
	res, issued, err := s.coalescedProbe(q)
	if err != nil {
		return res, issued, err
	}
	if issued {
		s.e.know.queries.Add(1)
		s.queries.Add(1)
	}
	return res, issued, nil
}

// issueOn sends one query directly to an alternate database view (e.g. an
// ORDER BY view, §5). Views rank differently from the primary interface, so
// their answers must not share the primary probe cache.
func (s *Session) issueOn(db hidden.Database, q query.Query) (hidden.Result, error) {
	res, err := db.TopK(q)
	if err != nil {
		return res, err
	}
	s.e.know.queries.Add(1)
	s.queries.Add(1)
	if !s.e.opts.DisableHistory {
		s.e.know.hist.Add(res.Tuples...)
	}
	return res, nil
}

// crawlRegion fully crawls the given generic query (already stripped of the
// user query's selection condition) and returns every matching tuple. Every
// sub-query probe routes through the engine's coalescing layer, so
// concurrent crawls of overlapping regions dedup at probe granularity and
// repeat crawls replay cached complete answers for free. Only probes that
// actually reached the upstream are charged — once, to the leader — against
// the engine, this session, and the provided ledger; the issuing probe
// records its page in the shared history.
func (s *Session) crawlRegion(q query.Query, ledger func(int64)) ([]types.Tuple, error) {
	c := crawl.New(s.e.db, crawl.Options{Probe: s.coalescedProbe})
	tuples, err := c.All(q)
	issued := c.Issued()
	s.e.know.queries.Add(issued)
	s.queries.Add(issued)
	if ledger != nil {
		ledger(issued)
	}
	return tuples, err
}

// CrawlAll retrieves every tuple matching q (deduplicated and sorted by ID)
// by completely crawling it through the engine's coalescing layer — the
// engine-integrated counterpart of crawl.Crawler.All. Upstream cost is
// charged to this session's ledger; probes answered by the probe cache or an
// identical in-flight call are free.
func (s *Session) CrawlAll(q query.Query) ([]types.Tuple, error) {
	return s.crawlRegion(q, nil)
}

// denseLookup1 resolves iv against the 1D dense index with lazy epoch
// re-validation: a covering region at the current epoch is returned as-is
// (zero probes); a stale one gets exactly one confirming probe over its
// full range — an unchanged answer promotes the region to the current
// epoch, a drifted one evicts it (and the lookup retries, in case an
// older overlapping region also covers iv). A miss means the caller must
// crawl.
func (s *Session) denseLookup1(attr int, iv types.Interval) (index.Interval1D, bool, error) {
	for {
		reg, ok := s.e.know.dense1.Lookup(attr, iv)
		if !ok {
			return index.Interval1D{}, false, nil
		}
		cur := s.e.know.Epoch()
		if reg.Epoch >= cur {
			return reg, true, nil
		}
		confirm, err := s.issue(query.New().WithRange(attr, reg.Range))
		if err != nil {
			return index.Interval1D{}, false, err
		}
		if confirmsRegion(reg.Tuples, confirm) {
			s.e.know.dense1.Promote(attr, reg.Range, cur)
			s.e.know.denseRevalPromoted.Add(1)
			reg.Epoch = cur
			return reg, true, nil
		}
		s.e.know.dense1.Remove(attr, reg.Range)
		s.e.know.denseRevalEvicted.Add(1)
	}
}

// denseLookupMD is denseLookup1 for an MD dense index: lookup realBox,
// re-validating a stale covering region with one confirming probe over the
// region's full box.
func (s *Session) denseLookupMD(idx *index.DenseMD, sorted []int, realBox query.Box) (index.Region, bool, error) {
	for {
		reg, ok := idx.Lookup(realBox)
		if !ok {
			return index.Region{}, false, nil
		}
		cur := s.e.know.Epoch()
		if reg.Epoch >= cur {
			return reg, true, nil
		}
		generic := query.New()
		for i, attr := range sorted {
			generic = generic.WithRange(attr, reg.Box.Dims[i])
		}
		confirm, err := s.issue(generic)
		if err != nil {
			return index.Region{}, false, err
		}
		if confirmsRegion(reg.Tuples, confirm) {
			idx.Promote(reg.Box, cur)
			s.e.know.denseRevalPromoted.Add(1)
			reg.Epoch = cur
			return reg, true, nil
		}
		idx.Remove(reg.Box)
		s.e.know.denseRevalEvicted.Add(1)
	}
}

// confirmsRegion decides whether a confirming probe's answer is consistent
// with a stored dense region's tuples. A complete answer must match the
// region exactly (same tuple set, same values — the region claims every
// corpus tuple in range). An overflowing answer is partial; every returned
// tuple must then match the stored tuple with the same ID, which is the
// strongest check one probe can buy.
func confirmsRegion(stored []types.Tuple, res hidden.Result) bool {
	if !res.Overflow && len(res.Tuples) != len(stored) {
		return false
	}
	if len(res.Tuples) > len(stored) {
		return false
	}
	byID := make(map[int]types.Tuple, len(stored))
	for _, t := range stored {
		byID[t.ID] = t
	}
	for _, t := range res.Tuples {
		st, ok := byID[t.ID]
		if !ok || !sameTuple(st, t) {
			return false
		}
	}
	return true
}

// crawlDense1 crawls the 1D dense region (attr, iv) and inserts it into the
// shared index, deduplicating concurrent crawls of the same region: one
// session leads, the rest wait and read the inserted region for free.
func (s *Session) crawlDense1(attr int, iv types.Interval) error {
	key := fmt.Sprintf("1d:%d:%s", attr, iv)
	_, _, err := s.e.crawls.Do(key, func() (hidden.Result, error) {
		// Re-check under the flight: a leader that finished between our
		// caller's lookup miss and this Do would otherwise be re-crawled
		// in full (coverage is monotone, so a hit here is authoritative).
		// The epoch-aware lookup re-validates a stale covering region
		// instead of skipping the crawl on its word alone.
		if _, ok, err := s.denseLookup1(attr, iv); err != nil {
			return hidden.Result{}, err
		} else if ok {
			return hidden.Result{}, nil
		}
		generic := query.New().WithRange(attr, iv)
		tuples, err := s.crawlRegion(generic, s.e.know.dense1.AddCrawlCost)
		if err != nil {
			return hidden.Result{}, err
		}
		s.e.know.InsertDense1(attr, iv, tuples)
		return hidden.Result{}, nil
	})
	return err
}

// crawlDenseMD crawls the MD dense region realBox (dimensions in canonical
// sorted-attribute order) and inserts it into the shared index for the given
// attribute subset, with the same one-leader dedup as crawlDense1.
func (s *Session) crawlDenseMD(sorted []int, realBox query.Box) error {
	idx := s.e.know.mdIndexFor(sorted)
	key := fmt.Sprintf("md:%s:%s", attrsKey(sorted), realBox)
	_, _, err := s.e.crawls.Do(key, func() (hidden.Result, error) {
		if _, ok, err := s.denseLookupMD(idx, sorted, realBox); err != nil {
			return hidden.Result{}, err
		} else if ok {
			return hidden.Result{}, nil // crawled by a leader that just finished
		}
		generic := query.New()
		for i, attr := range sorted {
			generic = generic.WithRange(attr, realBox.Dims[i])
		}
		tuples, err := s.crawlRegion(generic, idx.AddCrawlCost)
		if err != nil {
			return hidden.Result{}, err
		}
		s.e.know.InsertDenseMD(sorted, realBox, tuples)
		return hidden.Result{}, nil
	})
	return err
}

// WarmWindow proactively acquires one 1D query window: it crawls the whole
// window into the shared dense index and history (so any ranking over it is
// answered from local knowledge), then replays 1D-RERANK cursors in both
// directions to depth tuples each, which caches the exact probe stream a
// user query over the same window would issue. With the window's contents
// fully in history, that stream is deterministic — a later user request for
// the same window (either direction, h ≤ depth) replays a strict prefix of
// it entirely from the probe cache, for zero upstream queries.
//
// Probes respect the session's abort hook: acquisition yields mid-crawl
// with ErrAcquireAborted when it fires. Upstream cost lands on this
// session's ledger (the acquirer's system ledger), never on any client's.
func (s *Session) WarmWindow(attr int, iv types.Interval, depth int) error {
	schema := s.e.db.Schema()
	if attr < 0 || attr >= schema.Len() || schema.Attr(attr).Kind != types.Ordinal {
		return fmt.Errorf("core: warm-window attribute %d is not an ordinal attribute", attr)
	}
	if iv.Empty() || iv.Unbounded() {
		return fmt.Errorf("core: warm-window interval %s must be bounded and non-empty", iv)
	}
	// Full crawl first: dense-region coverage is the restart-surviving
	// "already warm" marker, and a complete history makes the cursor
	// replays below converge immediately to their fixed-point probe
	// streams.
	if err := s.crawlDense1(attr, iv); err != nil {
		return err
	}
	q := query.New().WithRange(attr, iv)
	for _, dir := range []ranking.Direction{ranking.Asc, ranking.Desc} {
		c := s.NewOneDCursor(q, attr, dir, Rerank)
		for i := 0; i < depth; i++ {
			_, ok, err := c.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
		}
	}
	return nil
}

// NewCursor builds a cursor running the given algorithm variant for user
// query q under ranker r, charging upstream cost to this session.
// Single-attribute rankers use the 1D algorithms; multi-attribute rankers
// use the MD family (or TA). It returns an error for invalid combinations.
func (s *Session) NewCursor(q query.Query, r ranking.Ranker, v Variant) (Cursor, error) {
	attrs := r.Attrs()
	for _, a := range attrs {
		if a < 0 || a >= s.e.db.Schema().Len() || s.e.db.Schema().Attr(a).Kind != types.Ordinal {
			return nil, fmt.Errorf("core: ranker attribute %d is not an ordinal attribute", a)
		}
	}
	if len(attrs) == 1 {
		if v == TAOverOneD {
			return nil, fmt.Errorf("core: TA requires a multi-attribute ranking function")
		}
		return s.NewOneDCursor(q, attrs[0], r.Dir(0), v), nil
	}
	if v == TAOverOneD {
		return s.NewTACursor(q, r), nil
	}
	return s.NewMDCursor(q, r, v), nil
}
