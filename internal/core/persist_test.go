// Engine-level tests for incremental segment/journal persistence: warm
// restart with zero upstream re-spend, crash mid-checkpoint recovering to
// the last committed journal entry, inline payloads under DisableHistory,
// and checkpointing running concurrently with serving.

package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/types"
)

// persistTestWorld builds a deterministic corpus and engine for persistence
// tests: 400 tuples, k=10, no system ranker.
func persistTestWorld(t *testing.T, seed int64) (*hidden.DB, []types.Tuple, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := testSchema(2)
	tuples := genTuples(rng, schema, 400, false)
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10})
	return db, tuples, NewEngine(db, Options{N: 400})
}

// openStore opens a segment store for e's upstream in dir.
func openStore(t *testing.T, e *Engine, dir string, opts segment.Options) *segment.Store {
	t.Helper()
	opts.Fingerprint = e.PersistFingerprint()
	st, err := segment.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// persistProbes is a fixed set of narrow queries with complete answers —
// cacheable, hence persistable.
func persistProbes() []query.Query {
	return []query.Query{
		query.New().WithRange(0, types.ClosedInterval(10, 12)).WithCat("cat", "x"),
		query.New().WithRange(1, types.ClosedInterval(40, 41)),
		query.New().WithRange(0, types.ClosedInterval(200, 300)), // underflow
	}
}

// runPersistWorkload warms e: issues the probe set (filling history and the
// probe LRU) and inserts 1D and MD dense regions through the recording
// wrappers, exactly as live crawls do.
func runPersistWorkload(t *testing.T, e *Engine, tuples []types.Tuple) {
	t.Helper()
	sess := e.NewSession()
	for i, q := range persistProbes() {
		res, err := sess.issue(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Overflow {
			t.Fatalf("precondition: probe %d (%s) overflowed; pick a narrower query", i, q)
		}
	}
	inside1 := func(lo, hi float64) []types.Tuple {
		var out []types.Tuple
		for _, tt := range tuples {
			if tt.Ord[0] >= lo && tt.Ord[0] <= hi {
				out = append(out, tt)
			}
		}
		return out
	}
	e.know.InsertDense1(0, types.Interval{Lo: 3, Hi: 5, HiOpen: true}, inside1(3, 5))
	e.know.InsertDense1(0, types.Interval{Lo: 5, Hi: 8, LoOpen: true}, inside1(5, 8))
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 12; i++ {
		b := query.Box{Dims: []types.Interval{
			{Lo: rng.Float64() * 95, Hi: 0}, {Lo: rng.Float64() * 95, Hi: 0},
		}}
		b.Dims[0].Hi = b.Dims[0].Lo + 0.5 + rng.Float64()
		b.Dims[1].Hi = b.Dims[1].Lo + 0.5 + rng.Float64()
		var in []types.Tuple
		for _, tt := range tuples {
			if b.Contains([]float64{tt.Ord[0], tt.Ord[1]}) {
				in = append(in, tt)
			}
		}
		e.know.InsertDenseMD([]int{0, 1}, b, in)
	}
}

// assertSameKnowledge checks that got's rebuilt knowledge equals want's:
// history size, 1D region array, MD region set (boxes + IDs + grid shape),
// and probe-cache entry count.
func assertSameKnowledge(t *testing.T, got, want *Engine) {
	t.Helper()
	if got.History().Size() != want.History().Size() {
		t.Fatalf("history size %d, want %d", got.History().Size(), want.History().Size())
	}
	r1, r2 := want.know.dense1.Export(0), got.know.dense1.Export(0)
	if len(r2) != len(r1) {
		t.Fatalf("restored %d 1D regions, want %d", len(r2), len(r1))
	}
	for i := range r1 {
		if r2[i].Range != r1[i].Range || len(r2[i].Tuples) != len(r1[i].Tuples) {
			t.Fatalf("1D region %d: %v (%d tuples), want %v (%d tuples)",
				i, r2[i].Range, len(r2[i].Tuples), r1[i].Range, len(r1[i].Tuples))
		}
	}
	m1, m2 := want.know.mdIndexFor([]int{0, 1}), got.know.mdIndexFor([]int{0, 1})
	e1, e2 := m1.Export(), m2.Export()
	if len(e2) != len(e1) {
		t.Fatalf("restored %d MD regions, want %d", len(e2), len(e1))
	}
	for i := range e1 {
		if e2[i].Box.String() != e1[i].Box.String() || len(e2[i].Tuples) != len(e1[i].Tuples) {
			t.Fatalf("MD region %d: %v (%d tuples), want %v (%d tuples)",
				i, e2[i].Box, len(e2[i].Tuples), e1[i].Box, len(e1[i].Tuples))
		}
	}
	if s1, s2 := m1.Stats(), m2.Stats(); s2 != s1 {
		t.Fatalf("MD grid stats after restore %+v, want %+v", s2, s1)
	}
	if got.ProbeCacheEntries() != want.ProbeCacheEntries() {
		t.Fatalf("probe cache holds %d entries, want %d", got.ProbeCacheEntries(), want.ProbeCacheEntries())
	}
}

// TestPersistWarmRestartZeroRespend: knowledge checkpointed to a segment
// store restarts warm — the rebuilt indexes are bit-identical to the saved
// engine's, and the replay itself plus every committed probe costs zero
// upstream queries.
func TestPersistWarmRestartZeroRespend(t *testing.T) {
	dir := t.TempDir()
	db, tuples, e1 := persistTestWorld(t, 71)
	p1, err := e1.AttachPersistence(openStore(t, e1, dir, segment.Options{}), PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runPersistWorkload(t, e1, tuples)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p1.Stats(); st.Store.Checkpoints == 0 {
		t.Fatalf("no checkpoint committed: %+v", st)
	}

	db.ResetCounter()
	e2 := NewEngine(db, Options{N: 400})
	p2, err := e2.AttachPersistence(openStore(t, e2, dir, segment.Options{}), PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if n := db.QueryCount(); n != 0 {
		t.Fatalf("segment replay spent %d upstream queries, want 0", n)
	}
	assertSameKnowledge(t, e2, e1)
	sess := e2.NewSession()
	for _, q := range persistProbes() {
		if _, err := sess.issue(q); err != nil {
			t.Fatal(err)
		}
	}
	if n := sess.Queries(); n != 0 {
		t.Fatalf("committed probes re-spent %d upstream queries after restart, want 0", n)
	}
	if _, ok := e2.know.dense1.Lookup(0, types.Interval{Lo: 3.5, Hi: 4.5}); !ok {
		t.Fatal("committed 1D dense region not answerable after restart")
	}
}

// TestPersistCrashMidCheckpointRecoversToLastCommitted: an injected writer
// failure kills the second checkpoint mid-commit; the process "dies" without
// a clean close. Recovery replays exactly the first (committed) checkpoint:
// its probes cost zero upstream queries, and the uncommitted one is cold.
func TestPersistCrashMidCheckpointRecoversToLastCommitted(t *testing.T) {
	for _, stage := range []string{"journal-write", "journal-sync"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			db, tuples, e1 := persistTestWorld(t, 73)
			var failing atomic.Bool
			st1 := openStore(t, e1, dir, segment.Options{
				Failpoint: func(s string) error {
					if failing.Load() && s == stage {
						return errors.New("injected writer failure")
					}
					return nil
				},
			})
			p1, err := e1.AttachPersistence(st1, PersistOptions{})
			if err != nil {
				t.Fatal(err)
			}
			runPersistWorkload(t, e1, tuples)
			if err := p1.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			committedHist := e1.History().Size()
			committedProbes := e1.ProbeCacheEntries()

			// More knowledge arrives, then the checkpoint trying to commit
			// it dies mid-write.
			extra := query.New().WithRange(1, types.ClosedInterval(70, 71))
			sess := e1.NewSession()
			if _, err := sess.issue(extra); err != nil {
				t.Fatal(err)
			}
			failing.Store(true)
			if err := p1.Checkpoint(); err == nil {
				t.Fatal("checkpoint with injected writer failure succeeded")
			}
			if ps := p1.Stats(); ps.LastError == "" || ps.PendingOps == 0 {
				t.Fatalf("failed checkpoint not re-queued: %+v", ps)
			}
			st1.Close() // crash: no drain, no final checkpoint

			db.ResetCounter()
			e2 := NewEngine(db, Options{N: 400})
			p2, err := e2.AttachPersistence(openStore(t, e2, dir, segment.Options{}), PersistOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer p2.Close()
			if st := p2.Stats(); st.Store.ReplayedDeltas != 1 || st.Store.DroppedRecords != 0 {
				t.Fatalf("recovery replayed %+v, want exactly the 1 committed delta", st.Store)
			}
			// Everything the committed checkpoint covered is warm — and
			// nothing past it: the recovered engine holds exactly the state
			// as of the last committed journal entry.
			if e2.History().Size() != committedHist {
				t.Fatalf("recovered history size %d, want committed %d", e2.History().Size(), committedHist)
			}
			if e2.ProbeCacheEntries() != committedProbes {
				t.Fatalf("recovered probe cache holds %d entries, want committed %d", e2.ProbeCacheEntries(), committedProbes)
			}
			sess2 := e2.NewSession()
			for _, q := range persistProbes() {
				if _, err := sess2.issue(q); err != nil {
					t.Fatal(err)
				}
			}
			if n := sess2.Queries(); n != 0 {
				t.Fatalf("committed knowledge re-spent %d upstream queries, want 0", n)
			}
			// ...and the uncommitted probe is cold (it costs again).
			if _, err := sess2.issue(extra); err != nil {
				t.Fatal(err)
			}
			if n := sess2.Queries(); n == 0 {
				t.Fatal("uncommitted probe answered for free; it cannot have been recovered")
			}
		})
	}
}

// TestPersistInlinesUncommittedTuples: under DisableHistory, recorded probe
// answers reference tuples that never enter the history arena. Their
// payloads must travel inline in the delta, keeping the store self-contained.
func TestPersistInlinesUncommittedTuples(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(77))
	db, _ := newTestDB(t, rng, 2, 400, 10, false, nil)
	e1 := NewEngine(db, Options{N: 400, DisableHistory: true})
	p1, err := e1.AttachPersistence(openStore(t, e1, dir, segment.Options{}), PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := query.New().WithRange(0, types.ClosedInterval(10, 12)).WithCat("cat", "x")
	sess := e1.NewSession()
	res, err := sess.issue(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow || len(res.Tuples) == 0 {
		t.Fatalf("precondition: want a non-empty complete answer, got %d tuples overflow=%v", len(res.Tuples), res.Overflow)
	}
	if e1.History().Size() != 0 {
		t.Fatal("precondition: DisableHistory engine stored history")
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(db, Options{N: 400, DisableHistory: true})
	p2, err := e2.AttachPersistence(openStore(t, e2, dir, segment.Options{}), PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	db.ResetCounter()
	sess2 := e2.NewSession()
	res2, err := sess2.issue(q)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Queries() != 0 {
		t.Fatalf("inlined probe re-spent %d upstream queries, want 0", sess2.Queries())
	}
	if len(res2.Tuples) != len(res.Tuples) {
		t.Fatalf("restored answer has %d tuples, want %d", len(res2.Tuples), len(res.Tuples))
	}
	for i := range res.Tuples {
		if res2.Tuples[i].ID != res.Tuples[i].ID {
			t.Fatalf("restored answer tuple %d: ID %d, want %d", i, res2.Tuples[i].ID, res.Tuples[i].ID)
		}
	}
}

// TestPersistCheckpointDoesNotBlockServing stretches a checkpoint's commit
// window with a slow injected fsync and issues live probes through it: the
// probes must complete while the checkpoint is still in flight (capture is a
// queue swap, the write happens off-lock), and knowledge recorded during the
// window commits in the next checkpoint. Run under -race in CI, this also
// proves the recording hooks and capture are race-clean.
func TestPersistCheckpointDoesNotBlockServing(t *testing.T) {
	dir := t.TempDir()
	db, tuples, e1 := persistTestWorld(t, 79)
	slow := make(chan struct{})  // closed when the slow checkpoint enters its sync
	var inCheckpoint atomic.Bool // true while the stretched commit is in flight
	var slowOnce, armed atomic.Bool
	st1 := openStore(t, e1, dir, segment.Options{
		Failpoint: func(s string) error {
			if s == "journal-sync" && armed.Load() && slowOnce.CompareAndSwap(false, true) {
				close(slow)
				time.Sleep(300 * time.Millisecond)
			}
			return nil
		},
	})
	p1, err := e1.AttachPersistence(st1, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runPersistWorkload(t, e1, tuples)

	armed.Store(true)
	inCheckpoint.Store(true)
	ckptDone := make(chan error, 1)
	go func() {
		err := p1.Checkpoint()
		inCheckpoint.Store(false)
		ckptDone <- err
	}()
	<-slow // the checkpoint is inside its stretched fsync now

	// Serve during the commit: distinct new probes, issued concurrently.
	var wg sync.WaitGroup
	servedDuring := int64(0)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := e1.NewSession()
			q := query.New().WithRange(1, types.ClosedInterval(float64(20+w), float64(20+w)+0.5))
			if _, err := sess.issue(q); err != nil {
				t.Error(err)
				return
			}
			if inCheckpoint.Load() {
				atomic.AddInt64(&servedDuring, 1)
			}
		}(w)
	}
	wg.Wait()
	if servedDuring == 0 {
		t.Fatal("no request completed while the checkpoint was in flight: serving blocked on persistence")
	}
	if err := <-ckptDone; err != nil {
		t.Fatal(err)
	}
	// The knowledge recorded mid-commit lands in the next checkpoint.
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(db, Options{N: 400})
	p2, err := e2.AttachPersistence(openStore(t, e2, dir, segment.Options{}), PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	assertSameKnowledge(t, e2, e1)
}
