package core

import (
	"math/rand"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// TestEmptyResultSets: queries matching nothing must exhaust immediately,
// for every algorithm, without errors.
func TestEmptyResultSets(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db, _ := newTestDB(t, rng, 2, 100, 5, false, nil)
	q := query.New().WithRange(0, types.ClosedInterval(-10, -5)) // out of domain
	for _, v := range []Variant{Baseline, Binary, Rerank, TAOverOneD} {
		e := NewEngine(db, Options{N: 100})
		r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})
		cur, err := e.NewCursor(q, r, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TopH(cur, 5)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(got) != 0 {
			t.Fatalf("%v: got %d tuples from an empty result set", v, len(got))
		}
		// Exhaustion is stable.
		if _, ok, _ := cur.Next(); ok {
			t.Fatalf("%v: produced a tuple after exhaustion", v)
		}
	}
}

// TestSingleTupleDB: the smallest database must round-trip through every
// algorithm.
func TestSingleTupleDB(t *testing.T) {
	schema := testSchema(2)
	tuples := []types.Tuple{{ID: 0, Ord: []float64{5, 7, 0}, Cat: map[string]string{"cat": "x"}}}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 1})
	for _, v := range []Variant{Baseline, Binary, Rerank, TAOverOneD} {
		e := NewEngine(db, Options{N: 1})
		r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})
		cur, err := e.NewCursor(query.New(), r, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TopH(cur, 3)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(got) != 1 || got[0].ID != 0 {
			t.Fatalf("%v: got %v", v, got)
		}
	}
}

// TestDomainBoundaryValues: tuples sitting exactly at domain endpoints must
// be discoverable (off-by-one open/closed bugs bite here).
func TestDomainBoundaryValues(t *testing.T) {
	schema := testSchema(2)
	tuples := []types.Tuple{
		{ID: 0, Ord: []float64{0, 100, 0}, Cat: map[string]string{"cat": "x"}},   // both at min/max
		{ID: 1, Ord: []float64{100, 0, 0}, Cat: map[string]string{"cat": "x"}},   // reversed
		{ID: 2, Ord: []float64{50, 50, 0}, Cat: map[string]string{"cat": "x"}},   // middle
		{ID: 3, Ord: []float64{0, 0, 0}, Cat: map[string]string{"cat": "x"}},     // best corner
		{ID: 4, Ord: []float64{100, 100, 0}, Cat: map[string]string{"cat": "x"}}, // worst corner
	}
	sys := hidden.FuncRanker{Label: "rev", F: func(tp types.Tuple) float64 { return -float64(tp.ID) }}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 1, Ranker: sys})
	for _, v := range []Variant{Baseline, Binary, Rerank} {
		e := NewEngine(db, Options{N: len(tuples)})
		r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})
		cur, err := e.NewCursor(query.New(), r, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TopH(cur, 5)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		want := oracleTopH(tuples, query.New(), r, 5)
		assertSameRanking(t, r, got, want)
		// Descending 1D must surface the max-value boundary tuple first.
		cur1 := e.NewOneDCursor(query.New(), 0, ranking.Desc, v)
		first, ok, err := cur1.Next()
		if err != nil || !ok || first.Ord[0] != 100 {
			t.Fatalf("%v desc: got %v ok=%v err=%v", v, first, ok, err)
		}
	}
}

// TestCursorErrorsOnBadRanker: NewCursor must reject rankers referencing
// categorical or out-of-range attributes.
func TestCursorErrorsOnBadRanker(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	db, _ := newTestDB(t, rng, 2, 20, 3, false, nil)
	e := NewEngine(db, Options{N: 20})
	// Attribute 2 is the categorical "cat" column in testSchema(2).
	if _, err := e.NewCursor(query.New(), ranking.MustLinear("bad", []int{0, 2}, []float64{1, 1}), Rerank); err == nil {
		t.Error("categorical ranking attribute accepted")
	}
	if _, err := e.NewCursor(query.New(), ranking.MustLinear("bad", []int{0, 99}, []float64{1, 1}), Rerank); err == nil {
		t.Error("out-of-range ranking attribute accepted")
	}
}

// TestVariantString covers the diagnostic names used in experiment output.
func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		Baseline: "BASELINE", Binary: "BINARY", Rerank: "RERANK",
		TAOverOneD: "TA-over-1D-RERANK", Variant(9): "Variant(9)",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

// TestHZeroAndNegative: TopH with h ≤ 0 returns empty without touching the
// database.
func TestHZeroAndNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db, _ := newTestDB(t, rng, 2, 50, 5, false, nil)
	db.ResetCounter()
	e := NewEngine(db, Options{N: 50})
	cur := e.NewOneDCursor(query.New(), 0, ranking.Asc, Rerank)
	for _, h := range []int{0, -3} {
		got, err := TopH(cur, h)
		if err != nil || len(got) != 0 {
			t.Fatalf("TopH(%d) = %v, %v", h, got, err)
		}
	}
	if db.QueryCount() != 0 {
		t.Fatalf("TopH(0) issued %d queries", db.QueryCount())
	}
}
