// Knowledge namespaces: one engine per upstream database, owned by a
// Registry.
//
// The paper's engine assumes exactly one hidden database per process. A
// federated deployment fronts many sources from one process, and nothing
// learned from one upstream is valid against another — history tuples,
// dense regions and cached probe answers are all statements about one
// specific corpus. A Namespace is therefore a hard isolation unit: its own
// Knowledge (history arena, 1D/MD dense indexes, query counter), its own
// probe-coalescing layer and LRU, and its own persistence fingerprint.
// Namespaces share exactly one thing, deliberately: the process-wide
// admission gate, because in-flight sessions compete for the same
// goroutines and memory no matter which upstream they probe. Per-namespace
// admission weights let an operator make sessions against an expensive
// upstream count for more of that shared capacity.
//
// Namespace names are constrained to safe path components because the
// service tier keys per-namespace data directories (data-dir/<name>/) by
// them; see internal/service and docs/persistence.md.

package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/hidden"
)

// Registry errors, surfaced by the service tier as 409/404 responses.
var (
	// ErrNamespaceExists is returned by Register for a duplicate name.
	ErrNamespaceExists = errors.New("core: namespace already registered")
	// ErrNamespaceUnknown is returned when resolving a name that is not
	// registered.
	ErrNamespaceUnknown = errors.New("core: unknown namespace")
	// ErrNamespaceDefault is returned by Deregister for the default
	// namespace while other namespaces remain — the default is the
	// back-compat target of un-namespaced requests and may only be removed
	// last.
	ErrNamespaceDefault = errors.New("core: cannot deregister the default namespace while others remain")
)

// MaxNamespaceNameLen bounds namespace name length.
const MaxNamespaceNameLen = 64

// ValidateNamespaceName checks that name is usable as a namespace key: a
// non-empty lowercase identifier ([a-z0-9][a-z0-9._-]*, at most
// MaxNamespaceNameLen bytes) that is safe to use as a single path component
// of a data directory.
func ValidateNamespaceName(name string) error {
	if name == "" {
		return errors.New("core: empty namespace name")
	}
	if len(name) > MaxNamespaceNameLen {
		return fmt.Errorf("core: namespace name longer than %d bytes", MaxNamespaceNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
			(i > 0 && (c == '.' || c == '_' || c == '-'))
		if !ok {
			return fmt.Errorf("core: invalid namespace name %q (want [a-z0-9][a-z0-9._-]*)", name)
		}
	}
	return nil
}

// NamespaceConfig configures one namespace at registration.
type NamespaceConfig struct {
	// Engine configures the namespace's engine. Engine.MaxConcurrentSessions
	// is ignored here: admission capacity is a Registry-level resource (see
	// RegistryOptions).
	Engine Options
	// AdmissionWeight scales what one session against this namespace costs
	// from the registry's shared admission capacity (default 1). Raising it
	// makes sessions on this upstream occupy more of the shared bound.
	AdmissionWeight int
}

// RegistryOptions configure a Registry.
type RegistryOptions struct {
	// MaxConcurrentSessions bounds the total admitted session weight across
	// ALL namespaces (0 = unlimited). Per-namespace AdmissionWeight scales
	// each session's draw on this shared capacity.
	MaxConcurrentSessions int
}

// A Namespace is one registered upstream: a name bound to an isolated
// engine. Values are immutable after Register; resolve them through the
// Registry.
type Namespace struct {
	name   string
	weight int
	engine *Engine
}

// Name returns the namespace's registry key.
func (n *Namespace) Name() string { return n.name }

// Engine returns the namespace's isolated engine.
func (n *Namespace) Engine() *Engine { return n.engine }

// AdmissionWeight returns the per-session multiplier this namespace applies
// to the registry's shared admission capacity.
func (n *Namespace) AdmissionWeight() int { return n.weight }

// Registry owns a set of independent knowledge namespaces and the shared
// admission gate they draw capacity from. The first registered namespace
// becomes the default — the target of un-namespaced legacy requests. All
// methods are safe for concurrent use.
type Registry struct {
	gate *admissionGate

	mu      sync.RWMutex
	byName  map[string]*Namespace
	defName string
}

// NewRegistry builds an empty registry.
func NewRegistry(opts RegistryOptions) *Registry {
	return &Registry{
		gate:   newAdmissionGate(opts.MaxConcurrentSessions),
		byName: make(map[string]*Namespace),
	}
}

// Register creates a new namespace with a fresh engine over db. The first
// registration becomes the default namespace. Returns ErrNamespaceExists
// for a duplicate name.
func (r *Registry) Register(name string, db hidden.Database, cfg NamespaceConfig) (*Namespace, error) {
	if err := ValidateNamespaceName(name); err != nil {
		return nil, err
	}
	weight := cfg.AdmissionWeight
	if weight <= 0 {
		weight = 1
	}
	// Per-namespace engine gates would double-count against the shared
	// registry gate; zero it so the engine's own TryAdmit stays unlimited.
	engOpts := cfg.Engine
	engOpts.MaxConcurrentSessions = 0
	ns := &Namespace{name: name, weight: weight, engine: NewEngine(db, engOpts)}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrNamespaceExists, name)
	}
	if len(r.byName) == 0 {
		r.defName = name
	}
	r.byName[name] = ns
	return ns, nil
}

// Deregister removes a namespace and returns it (so the caller can finalize
// its persistence). The default namespace can only be removed once it is the
// last one left; doing so empties the registry.
func (r *Registry) Deregister(name string) (*Namespace, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ns, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNamespaceUnknown, name)
	}
	if name == r.defName && len(r.byName) > 1 {
		return nil, fmt.Errorf("%w: %q", ErrNamespaceDefault, name)
	}
	delete(r.byName, name)
	if name == r.defName {
		r.defName = ""
	}
	return ns, nil
}

// Resolve returns the namespace registered under name; the empty name
// resolves to the default namespace.
func (r *Registry) Resolve(name string) (*Namespace, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defName
	}
	ns, ok := r.byName[name]
	return ns, ok
}

// Default returns the default namespace (nil while the registry is empty).
func (r *Registry) Default() *Namespace {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[r.defName]
}

// List returns all namespaces sorted by name.
func (r *Registry) List() []*Namespace {
	r.mu.RLock()
	out := make([]*Namespace, 0, len(r.byName))
	for _, ns := range r.byName {
		out = append(out, ns)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of registered namespaces.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// TryAdmit reserves weight sessions' worth of the registry's shared
// capacity for namespace ns, scaled by the namespace's AdmissionWeight,
// atomically and without blocking — the same fail-fast contract as
// Engine.TryAdmit. The returned release is idempotent. With an unlimited
// registry (MaxConcurrentSessions 0) admission always succeeds but weight
// is still tracked for SessionsInFlight.
func (r *Registry) TryAdmit(ns *Namespace, weight int) (release func(), ok bool) {
	if weight <= 0 {
		weight = 1
	}
	weight *= ns.weight
	if !r.gate.tryAcquire(weight) {
		return nil, false
	}
	var once sync.Once
	return func() {
		once.Do(func() { r.gate.release(weight) })
	}, true
}

// TryAdmitAcquire reserves weight sessions' worth of shared capacity for
// namespace ns at background (acquirer) priority, scaled by the namespace's
// AdmissionWeight. Unlike TryAdmit it refuses whenever the reservation
// would dip into the reserve kept free for user traffic (a quarter of the
// shared capacity, at least one slot), so the acquirer always loses the
// race for scarce slots. Non-blocking; idempotent release.
func (r *Registry) TryAdmitAcquire(ns *Namespace, weight int) (release func(), ok bool) {
	if weight <= 0 {
		weight = 1
	}
	weight *= ns.weight
	if !r.gate.tryAcquireLow(weight) {
		return nil, false
	}
	var once sync.Once
	return func() {
		once.Do(func() { r.gate.releaseLow(weight) })
	}, true
}

// UserPressure reports whether user traffic is contending for the shared
// admission gate: a user-priority TryAdmit was refused within the given
// window, or in-flight weight has climbed into the low-priority reserve.
// The background acquirer polls this between probes and aborts when it
// fires.
func (r *Registry) UserPressure(window time.Duration) bool {
	return r.gate.userPressure(window)
}

// SessionsInFlight reports the admitted session weight currently held
// across all namespaces.
func (r *Registry) SessionsInFlight() int { return r.gate.inFlight() }

// SessionCapacity returns the shared MaxConcurrentSessions bound
// (0 = unlimited).
func (r *Registry) SessionCapacity() int { return r.gate.cap }
