package core

import (
	"math/rand"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
)

// TestKnownRankCursorExactness: the pager over an ORDER BY view must emit
// the same ranking as the search-based 1D cursor.
func TestKnownRankCursorExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		ties := trial%2 == 0
		db, all := newTestDB(t, rng, 2, 100+rng.Intn(200), 1+rng.Intn(8), ties, systemRankers(2)[trial%3])
		attr := rng.Intn(2)
		dir := ranking.Asc
		if rng.Intn(2) == 0 {
			dir = ranking.Desc
		}
		view := hidden.NewOrderByView(db, attr, dir)
		e := NewEngine(db, Options{N: db.Size()})
		q := randQuery(rng, db.Schema())
		cur := e.NewKnownRankCursor(view, q, attr, dir)
		h := 1 + rng.Intn(25)
		got, err := TopH(cur, h)
		if err != nil {
			t.Fatal(err)
		}
		r := ranking.NewSingle("1d", attr, dir)
		want := oracleTopH(all, q, r, h)
		assertSameRanking(t, r, got, want, oracleTopH(all, q, r, 1<<30))
	}
}

// TestKnownRankCursorCost: paging must cost about h/k queries — far fewer
// than search-based Get-Next.
func TestKnownRankCursorCost(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	db, _ := newTestDB(t, rng, 2, 600, 10, false, systemRankers(2)[1])
	view := hidden.NewOrderByView(db, 0, ranking.Asc)
	db.ResetCounter()
	e := NewEngine(db, Options{N: 600})
	cur := e.NewKnownRankCursor(view, query.New(), 0, ranking.Asc)
	if _, err := TopH(cur, 100); err != nil {
		t.Fatal(err)
	}
	if got := db.QueryCount(); got > 20 {
		t.Errorf("paged top-100 cost %d queries, want ~10 (h/k)", got)
	}
}

// TestTAWithKnownAccess: TA over ORDER BY views must be exact, and when the
// rankings are public it should beat TA over 1D-RERANK on query cost.
func TestTAWithKnownAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db, all := newTestDB(t, rng, 3, 400, 10, false, systemRankers(3)[2])
	r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 2})
	q := query.New()

	// Known-access TA.
	db.ResetCounter()
	e := NewEngine(db, Options{N: 400})
	var access []Cursor
	for j, attr := range r.Attrs() {
		view := hidden.NewOrderByView(db, attr, r.Dir(j))
		access = append(access, e.NewKnownRankCursor(view, q, attr, r.Dir(j)))
	}
	ta := e.NewTACursorWithAccess(q, r, access)
	got, err := TopH(ta, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopH(all, q, r, 8)
	assertSameRanking(t, r, got, want, oracleTopH(all, q, r, 1<<30))
	knownCost := db.QueryCount()

	// Search-based TA on the same task.
	db.ResetCounter()
	e2 := NewEngine(db, Options{N: 400})
	ta2 := e2.NewTACursor(q, r)
	if _, err := TopH(ta2, 8); err != nil {
		t.Fatal(err)
	}
	searchCost := db.QueryCount()
	if knownCost >= searchCost {
		t.Errorf("known-ranking TA (%d) should beat search-based TA (%d)", knownCost, searchCost)
	}
}
