// Sentinel drift detection: the cheap periodic check that keeps a
// namespace's knowledge epoch honest.
//
// Hidden databases change under us — rows are edited, re-ranked, inserted —
// and every piece of acquired knowledge (dense regions, probe-cache
// answers, history runs) silently describes the upstream as it WAS. Rather
// than expiring knowledge on a clock (wasteful when nothing changed) or
// never (wrong when something did), the engine re-issues a small FIXED set
// of sentinel probes each pass — one narrow TopK per ordinal attribute plus
// one unconstrained TopK — and digests the answers. Any digest differing
// from the previous pass is evidence the corpus moved, so the pass bumps
// the knowledge epoch; everything learned earlier becomes stale and is
// re-validated lazily on first touch (see session.go / coalesce.go).
//
// The probe set is deterministic and tiny (NumOrdinal+1 queries), so a pass
// costs O(attrs) upstream queries regardless of how much knowledge exists.
// Sentinel probes bypass the coalescer's answer cache on purpose: a cached
// answer can never witness drift.

package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/types"
)

// sentinelQueries builds the fixed probe set: for each ordinal attribute
// the lower half of its domain, plus one unconstrained query. The set is a
// pure function of the schema, so digests from different passes are
// comparable.
func (e *Engine) sentinelQueries() []query.Query {
	sch := e.db.Schema()
	qs := make([]query.Query, 0, sch.NumOrdinal()+1)
	for _, attr := range sch.OrdinalIndexes() {
		d := sch.Domain(attr)
		qs = append(qs, query.New().WithRange(attr, types.ClosedInterval(d.Min, (d.Min+d.Max)/2)))
	}
	qs = append(qs, query.New())
	return qs
}

// digestResult hashes a TopK answer's observable content: the overflow
// flag, and each tuple's ID and ordinal values in rank order. Two answers
// digest equal iff the upstream returned the same page.
func digestResult(res hidden.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	if res.Overflow {
		put(1)
	} else {
		put(0)
	}
	put(uint64(len(res.Tuples)))
	for _, t := range res.Tuples {
		put(uint64(t.ID))
		for _, v := range t.Ord {
			put(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// SentinelPass issues the fixed sentinel probe set against the upstream,
// compares the answer digests with the previous pass, and bumps the
// knowledge epoch if any differ. The first pass only records baseline
// digests. Returns whether the epoch was bumped and how many upstream
// queries the pass issued (each counted in the engine ledger). On error the
// stored digests are left untouched, so a flaky pass cannot fake drift.
func (e *Engine) SentinelPass() (bumped bool, queries int64, err error) {
	qs := e.sentinelQueries()
	digests := make(map[string]uint64, len(qs))
	for _, q := range qs {
		res, err := e.db.TopK(q)
		if err != nil {
			return false, queries, err
		}
		queries++
		e.know.queries.Add(1)
		digests[q.String()] = digestResult(res)
	}
	e.sentMu.Lock()
	prev := e.sentDigests
	e.sentDigests = digests
	e.sentMu.Unlock()
	e.sentPasses.Add(1)
	e.sentLast.Store(time.Now().Unix())
	if prev == nil {
		return false, queries, nil // baseline pass: nothing to compare yet
	}
	for k, d := range digests {
		if pd, ok := prev[k]; !ok || pd != d {
			e.know.BumpEpoch()
			e.sentBumps.Add(1)
			return true, queries, nil
		}
	}
	return false, queries, nil
}

// SentinelStats returns the engine-lifetime sentinel counters: completed
// passes, drift-triggered epoch bumps, and the unix time of the last
// completed pass (0 if none yet).
func (e *Engine) SentinelStats() (passes, bumps, lastUnix int64) {
	return e.sentPasses.Load(), e.sentBumps.Load(), e.sentLast.Load()
}
