package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/types"
)

// TestSnapshotRebuildsDenseStructures checks that a v3 snapshot round-trip
// reconstructs the sub-linear dense-index structures losslessly: the
// restored engine's MD region set is bit-identical (boxes and tuple IDs, in
// order), its centroid grid answers every lookup the original answers, and
// the 1D splice-maintained region array survives unchanged.
func TestSnapshotRebuildsDenseStructures(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	schema := testSchema(2)
	tuples := genTuples(rng, schema, 400, false)
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10})
	e := NewEngine(db, Options{N: 400})

	// Populate the MD index with many small regions (plus absorbing
	// overlaps) and the 1D index with touching intervals, through the same
	// Insert paths a live engine uses.
	attrs := []int{0, 1}
	idx := e.know.mdIndexFor(attrs)
	boxAt := func(lo0, lo1, w float64) query.Box {
		return query.Box{Dims: []types.Interval{
			{Lo: lo0, Hi: lo0 + w}, {Lo: lo1, Hi: lo1 + w},
		}}
	}
	var boxes []query.Box
	for i := 0; i < 60; i++ {
		b := boxAt(rng.Float64()*95, rng.Float64()*95, 0.5+rng.Float64())
		var inside []types.Tuple
		for _, tt := range tuples {
			if b.Contains([]float64{tt.Ord[0], tt.Ord[1]}) {
				inside = append(inside, tt)
			}
		}
		idx.Insert(b, inside)
		boxes = append(boxes, b)
	}
	e.know.dense1.Insert(0, types.Interval{Lo: 3, Hi: 5, HiOpen: true}, nil)
	e.know.dense1.Insert(0, types.Interval{Lo: 5, Hi: 8, LoOpen: true}, nil)

	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(hidden.MustDB(schema, tuples, hidden.Options{K: 10}), Options{N: 400})
	if err := e2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Region arrays are reconstructed losslessly and in order.
	idx2 := e2.know.mdIndexFor(attrs)
	got, want := idx2.Export(), idx.Export()
	if len(got) != len(want) {
		t.Fatalf("restored %d MD regions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Box.String() != want[i].Box.String() {
			t.Fatalf("region %d box %v, want %v", i, got[i].Box, want[i].Box)
		}
		if len(got[i].Tuples) != len(want[i].Tuples) {
			t.Fatalf("region %d has %d tuples, want %d", i, len(got[i].Tuples), len(want[i].Tuples))
		}
		for j := range want[i].Tuples {
			if got[i].Tuples[j].ID != want[i].Tuples[j].ID {
				t.Fatalf("region %d tuple %d: ID %d, want %d", i, j, got[i].Tuples[j].ID, want[i].Tuples[j].ID)
			}
		}
	}
	// The centroid grid is rebuilt to an equivalent shape and answers
	// identically, including for boxes absorbed along the way.
	st, st2 := idx.Stats(), idx2.Stats()
	if st2 != st {
		t.Errorf("grid stats after restore %+v, want %+v", st2, st)
	}
	for _, b := range boxes {
		r1, ok1 := idx.Lookup(b)
		r2, ok2 := idx2.Lookup(b)
		if ok1 != ok2 {
			t.Fatalf("lookup %v: original found=%v, restored found=%v", b, ok1, ok2)
		}
		if ok1 && (len(r1.Tuples) != len(r2.Tuples)) {
			t.Fatalf("lookup %v: original region has %d tuples, restored %d", b, len(r1.Tuples), len(r2.Tuples))
		}
	}
	// 1D regions: the splice discipline kept the both-open touch at 5
	// separate; the restored array must match exactly.
	r1d, r1d2 := e.know.dense1.Export(0), e2.know.dense1.Export(0)
	if len(r1d2) != len(r1d) {
		t.Fatalf("restored %d 1D regions, want %d", len(r1d2), len(r1d))
	}
	for i := range r1d {
		if r1d2[i].Range != r1d[i].Range {
			t.Fatalf("1D region %d range %v, want %v", i, r1d2[i].Range, r1d[i].Range)
		}
	}
}
