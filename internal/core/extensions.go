// §5 extensions: exploiting known system ranking functions.
//
// Many real sites (Blue Nile, Yahoo! Autos, Amazon) also expose public
// ORDER BY options on individual attributes. When the ranking the database
// applies is known to equal the attribute order we need, Get-Next does not
// have to search at all — it pages: every top-k answer arrives already
// sorted, so h answers cost about h/k queries. KnownRankCursor implements
// that pager (with the §5 tie handling), and NewTACursorWithAccess lets the
// threshold algorithm consume such cursors for its sorted access, the
// "TA-1D may beat MD-RERANK when rankings align" scenario §5 discusses.

package core

import (
	"math"
	"sort"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// KnownRankCursor enumerates the tuples of q in ascending axis order over
// one attribute, against a database whose system ranking is KNOWN to be
// exactly that order (e.g. a hidden.OrderByView). Each page is consumed
// wholesale; only the page's boundary value group needs care, because it
// may continue onto the next page.
type KnownRankCursor struct {
	s    *Session
	db   hidden.Database // the ORDER BY view; queries counted by its parent
	q    query.Query
	attr int
	dir  ranking.Direction

	buffer    []types.Tuple
	lastAxis  float64
	exhausted bool
}

// NewKnownRankCursor builds the pager in a fresh single-cursor session.
func (e *Engine) NewKnownRankCursor(db hidden.Database, q query.Query, attr int, dir ranking.Direction) *KnownRankCursor {
	return e.NewSession().NewKnownRankCursor(db, q, attr, dir)
}

// NewKnownRankCursor builds the pager. db must return answers ordered
// ascending by dir·attr (best first); the engine is used for history
// bookkeeping and tie crawling only.
func (s *Session) NewKnownRankCursor(db hidden.Database, q query.Query, attr int, dir ranking.Direction) *KnownRankCursor {
	return &KnownRankCursor{
		s: s, db: db, q: q.Clone(), attr: attr, dir: dir,
		lastAxis: math.Inf(-1),
	}
}

func (c *KnownRankCursor) axisOf(t types.Tuple) float64 {
	return float64(c.dir) * t.Ord[c.attr]
}

// Next implements Cursor.
func (c *KnownRankCursor) Next() (types.Tuple, bool, error) {
	if len(c.buffer) > 0 {
		t := c.buffer[0]
		c.buffer = c.buffer[1:]
		return t, true, nil
	}
	if c.exhausted {
		return types.Tuple{}, false, nil
	}
	// Page: everything strictly beyond the last consumed value.
	iv := types.Interval{Lo: c.lastAxis, LoOpen: true, Hi: math.Inf(1), HiOpen: true}
	real := iv
	if c.dir == ranking.Desc {
		real = types.Interval{Lo: math.Inf(-1), LoOpen: true, Hi: -c.lastAxis, HiOpen: true}
	}
	res, err := c.s.issueOn(c.db, c.q.WithRange(c.attr, real))
	if err != nil {
		return types.Tuple{}, false, err
	}
	if len(res.Tuples) == 0 {
		c.exhausted = true
		return types.Tuple{}, false, nil
	}
	page := append([]types.Tuple(nil), res.Tuples...)
	sort.Slice(page, func(i, j int) bool {
		ai, aj := c.axisOf(page[i]), c.axisOf(page[j])
		if ai != aj {
			return ai < aj
		}
		return page[i].ID < page[j].ID
	})
	if !res.Overflow {
		c.buffer = page
		c.exhausted = true
	} else {
		// The page's last value group may be incomplete: keep only
		// complete groups, unless the whole page is one plateau — then
		// collect it exactly (point query / crawl, §5).
		boundary := c.axisOf(page[len(page)-1])
		cut := len(page)
		for cut > 0 && c.axisOf(page[cut-1]) == boundary {
			cut--
		}
		if cut == 0 {
			ties, err := c.collectPlateau(boundary)
			if err != nil {
				return types.Tuple{}, false, err
			}
			c.buffer = ties
		} else {
			c.buffer = page[:cut]
		}
	}
	c.lastAxis = c.axisOf(c.buffer[len(c.buffer)-1])
	t := c.buffer[0]
	c.buffer = c.buffer[1:]
	return t, true, nil
}

// collectPlateau retrieves every tuple of q at exactly the boundary value.
func (c *KnownRankCursor) collectPlateau(boundary float64) ([]types.Tuple, error) {
	v := float64(c.dir) * boundary
	point := c.q.WithRange(c.attr, types.ClosedInterval(v, v))
	res, err := c.s.issueOn(c.db, point)
	if err != nil {
		return nil, err
	}
	var ties []types.Tuple
	if !res.Overflow {
		ties = res.Tuples
	} else {
		// crawlRegion records every issued probe's page in history (via
		// the coalesced probe path), as issueOn did for the non-overflow
		// page. The crawl runs against the primary interface: the
		// matching tuple *set* of a complete crawl is ranking-independent.
		ties, err = c.s.crawlRegion(point, nil)
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(ties, func(i, j int) bool { return ties[i].ID < ties[j].ID })
	return ties, nil
}

// NewTACursorWithAccess runs the threshold algorithm over externally
// provided sorted-access cursors, one per ranked attribute of r, in the
// order of r.Attrs(). Use it when the database publishes ORDER BY options
// (§5): pass KnownRankCursors and TA pays ~1/k queries per sorted access
// instead of a 1D-RERANK search.
func (e *Engine) NewTACursorWithAccess(q query.Query, r ranking.Ranker, access []Cursor) *TACursor {
	return e.NewSession().NewTACursorWithAccess(q, r, access)
}

// NewTACursorWithAccess is the session-scoped form of the engine method of
// the same name; pass cursors created from the same session so the ledger
// captures their sorted-access cost too.
func (s *Session) NewTACursorWithAccess(q query.Query, r ranking.Ranker, access []Cursor) *TACursor {
	ax := ranking.NewAxis(r, s.e.db.Schema())
	t := &TACursor{
		s: s, q: q.Clone(), axis: ax,
		seen:    make(map[int]types.Tuple),
		emitted: make(map[int]bool),
		access:  access,
	}
	for range ax.Attrs() {
		t.frontier = append(t.frontier, math.Inf(-1))
		t.liveAttr = append(t.liveAttr, true)
	}
	return t
}
