// Living-upstreams tests: sentinel drift detection, knowledge epochs, lazy
// re-validation of dense regions and cached probes, epoch-aware warm
// windows, guarded flaky upstreams with exact ledger accounting, and epoch
// persistence across journal replay and snapshots.

package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/hidden"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/segment"
	"repro/internal/types"
)

// narrowWindow finds an interval on attr 0 holding between 2 and k-1 tuples
// — narrow enough that one probe answers it completely (cacheable, dense-
// crawlable in one query).
func narrowWindow(t *testing.T, tuples []types.Tuple, k int) (types.Interval, []types.Tuple) {
	t.Helper()
	for lo := 0.0; lo < 95; lo += 1.5 {
		iv := types.ClosedInterval(lo, lo+1.5)
		var in []types.Tuple
		for _, tt := range tuples {
			if tt.Ord[0] >= iv.Lo && tt.Ord[0] <= iv.Hi {
				in = append(in, tt)
			}
		}
		if len(in) >= 2 && len(in) < k {
			return iv, in
		}
	}
	t.Fatal("no narrow window found in generated corpus")
	return types.Interval{}, nil
}

func TestSentinelDetectsDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db, _ := newTestDB(t, rng, 2, 400, 10, false, nil)
	e := NewEngine(db, Options{N: 400})

	wantQueries := int64(db.Schema().NumOrdinal() + 1)
	before := e.Queries()
	bumped, queries, err := e.SentinelPass()
	if err != nil {
		t.Fatal(err)
	}
	if bumped || queries != wantQueries {
		t.Fatalf("baseline pass: bumped=%v queries=%d, want false/%d", bumped, queries, wantQueries)
	}
	if got := e.Queries() - before; got != wantQueries {
		t.Fatalf("engine ledger charged %d for the pass, want %d", got, wantQueries)
	}
	if e.Epoch() != index.FirstEpoch {
		t.Fatalf("baseline pass moved the epoch to %d", e.Epoch())
	}

	// Nothing changed: the second pass must not bump.
	if bumped, _, err = e.SentinelPass(); err != nil || bumped {
		t.Fatalf("no-drift pass: bumped=%v err=%v, want false/nil", bumped, err)
	}

	// Mutate a tuple the unconstrained sentinel probe returns — drift a
	// sentinel answer can witness.
	res, err := db.TopK(query.New())
	if err != nil {
		t.Fatal(err)
	}
	victim := res.Tuples[0].ID
	if !db.SetOrd(victim, 0, res.Tuples[0].Ord[0]+37.5) {
		t.Fatalf("SetOrd(%d) refused", victim)
	}
	bumped, _, err = e.SentinelPass()
	if err != nil {
		t.Fatal(err)
	}
	if !bumped {
		t.Fatal("sentinel pass after mutation did not bump the epoch")
	}
	if e.Epoch() != index.FirstEpoch+1 {
		t.Fatalf("epoch = %d, want %d", e.Epoch(), index.FirstEpoch+1)
	}
	passes, bumps, lastUnix := e.SentinelStats()
	if passes != 3 || bumps != 1 || lastUnix == 0 {
		t.Fatalf("SentinelStats = %d/%d/%d, want 3 passes, 1 bump, nonzero last", passes, bumps, lastUnix)
	}
	// Drift already absorbed into the stored digests: a further pass with
	// no new mutation must not bump again.
	if bumped, _, err = e.SentinelPass(); err != nil || bumped {
		t.Fatalf("post-drift steady pass: bumped=%v err=%v, want false/nil", bumped, err)
	}
}

// failOnceDB fails its first TopK and then delegates.
type failOnceDB struct {
	hidden.Database
	failed bool
}

func (d *failOnceDB) TopK(q query.Query) (hidden.Result, error) {
	if !d.failed {
		d.failed = true
		return hidden.Result{}, errors.New("injected upstream outage")
	}
	return d.Database.TopK(q)
}

func TestSentinelErrorLeavesDigestsUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db, _ := newTestDB(t, rng, 2, 200, 10, false, nil)
	e := NewEngine(&failOnceDB{Database: db}, Options{N: 200})

	if _, _, err := e.SentinelPass(); err == nil {
		t.Fatal("pass over a failing upstream should error")
	}
	// The failed pass recorded nothing, so the next full pass is still the
	// baseline and cannot fake drift.
	bumped, _, err := e.SentinelPass()
	if err != nil {
		t.Fatal(err)
	}
	if bumped || e.Epoch() != index.FirstEpoch {
		t.Fatalf("recovered pass bumped=%v epoch=%d — a flaky pass faked drift", bumped, e.Epoch())
	}
}

func TestDenseLookup1LazyRevalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db, tuples := newTestDB(t, rng, 2, 400, 10, false, nil)
	e := NewEngine(db, Options{N: 400})
	iv, inside := narrowWindow(t, tuples, 10)

	s := e.NewSession()
	if err := s.crawlDense1(0, iv); err != nil {
		t.Fatal(err)
	}

	// Fresh region at the current epoch: lookups are free.
	s2 := e.NewSession()
	if _, ok, err := s2.denseLookup1(0, iv); err != nil || !ok {
		t.Fatalf("lookup after crawl: ok=%v err=%v", ok, err)
	}
	if s2.Queries() != 0 {
		t.Fatalf("fresh-region lookup spent %d queries, want 0", s2.Queries())
	}

	// Epoch bump marks the region stale; the first touch spends exactly one
	// confirming probe and, with no actual drift, promotes it.
	e.know.BumpEpoch()
	if e.know.StaleRegions() != 1 {
		t.Fatalf("StaleRegions = %d after bump, want 1", e.know.StaleRegions())
	}
	s3 := e.NewSession()
	reg, ok, err := s3.denseLookup1(0, iv)
	if err != nil || !ok {
		t.Fatalf("stale lookup: ok=%v err=%v", ok, err)
	}
	if s3.Queries() != 1 {
		t.Fatalf("stale re-validation spent %d queries, want exactly 1", s3.Queries())
	}
	if reg.Epoch != e.Epoch() {
		t.Fatalf("promoted region epoch %d, want %d", reg.Epoch, e.Epoch())
	}
	if p := e.know.denseRevalPromoted.Load(); p != 1 {
		t.Fatalf("denseRevalPromoted = %d, want 1", p)
	}
	if e.know.StaleRegions() != 0 {
		t.Fatalf("StaleRegions = %d after promotion, want 0", e.know.StaleRegions())
	}

	// Promoted: the next touch is free again.
	s4 := e.NewSession()
	if _, ok, _ := s4.denseLookup1(0, iv); !ok || s4.Queries() != 0 {
		t.Fatalf("post-promotion lookup: ok=%v queries=%d, want true/0", ok, s4.Queries())
	}

	// Real drift: move a region tuple's value out of the window, bump, and
	// the confirming probe must evict the region (not promote a lie).
	if !db.SetOrd(inside[0].ID, 0, iv.Hi+40) {
		t.Fatal("SetOrd refused")
	}
	e.know.BumpEpoch()
	s5 := e.NewSession()
	if _, ok, err := s5.denseLookup1(0, iv); err != nil || ok {
		t.Fatalf("lookup after drift: ok=%v err=%v, want miss (evicted)", ok, err)
	}
	if s5.Queries() != 1 {
		t.Fatalf("drift detection spent %d queries, want exactly 1", s5.Queries())
	}
	if ev := e.know.denseRevalEvicted.Load(); ev != 1 {
		t.Fatalf("denseRevalEvicted = %d, want 1", ev)
	}
}

func TestProbeCacheLazyRevalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db, tuples := newTestDB(t, rng, 2, 400, 10, false, nil)
	e := NewEngine(db, Options{N: 400})
	iv, inside := narrowWindow(t, tuples, 10)
	q := query.New().WithRange(0, iv)

	cost := func() int64 {
		s := e.NewSession()
		if _, err := s.issue(q); err != nil {
			t.Fatal(err)
		}
		return s.Queries()
	}
	if got := cost(); got != 1 {
		t.Fatalf("cold probe cost %d, want 1", got)
	}
	if got := cost(); got != 0 {
		t.Fatalf("cached probe cost %d, want 0", got)
	}

	// Stale cache entry: one confirming probe, then free again.
	e.know.BumpEpoch()
	if got := cost(); got != 1 {
		t.Fatalf("stale probe re-validation cost %d, want exactly 1", got)
	}
	if got := cost(); got != 0 {
		t.Fatalf("promoted probe cost %d, want 0", got)
	}

	// Real drift inside the cached answer: the confirming probe replaces the
	// entry with the fresh page, and the caller sees the new value.
	victim := inside[1]
	newVal := (iv.Lo + iv.Hi) / 2
	if newVal == victim.Ord[0] {
		newVal += 0.25
	}
	if !db.SetOrd(victim.ID, 0, newVal) {
		t.Fatal("SetOrd refused")
	}
	e.know.BumpEpoch()
	s := e.NewSession()
	res, err := s.issue(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries() != 1 {
		t.Fatalf("drifted probe cost %d, want exactly 1", s.Queries())
	}
	found := false
	for _, tt := range res.Tuples {
		if tt.ID == victim.ID {
			found = true
			if tt.Ord[0] != newVal {
				t.Fatalf("revalidated answer still carries stale value %g, want %g", tt.Ord[0], newVal)
			}
		}
	}
	if !found {
		t.Fatalf("tuple %d missing from revalidated answer", victim.ID)
	}
	if got := cost(); got != 0 {
		t.Fatalf("replaced entry should serve free, cost %d", got)
	}
}

func TestWindowWarmEpochAware(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db, tuples := newTestDB(t, rng, 2, 400, 10, false, nil)
	e := NewEngine(db, Options{N: 400})
	iv, _ := narrowWindow(t, tuples, 10)

	s := e.NewSession()
	if err := s.WarmWindow(0, iv, 3); err != nil {
		t.Fatal(err)
	}
	if !e.WindowWarm(0, iv) {
		t.Fatal("window not warm after WarmWindow")
	}
	// Stale knowledge is cold again — the acquirer must refresh it.
	e.know.BumpEpoch()
	if e.WindowWarm(0, iv) {
		t.Fatal("stale window still reports warm")
	}
	// One confirming probe promotes the covering region and re-warms it.
	s2 := e.NewSession()
	if _, ok, err := s2.denseLookup1(0, iv); err != nil || !ok {
		t.Fatalf("re-validation: ok=%v err=%v", ok, err)
	}
	if !e.WindowWarm(0, iv) {
		t.Fatal("window not warm after promotion")
	}
}

// driftQueries is the fixed drift-matrix workload: user queries x rankers.
func driftQueries(schema *types.Schema) []query.Query {
	return []query.Query{
		query.New(),
		query.New().WithRange(0, types.ClosedInterval(10, 60)),
		query.New().WithRange(1, types.ClosedInterval(25, 80)).WithCat("cat", "x"),
		query.New().WithCat("cat", "y"),
	}
}

func driftRankers() []ranking.Ranker {
	return []ranking.Ranker{
		ranking.NewSingle("asc0", 0, ranking.Asc),
		ranking.NewSingle("desc1", 1, ranking.Desc),
		ranking.MustLinear("mix", []int{0, 1}, []float64{1, -0.5}),
	}
}

// runDriftMatrix runs every (query, ranker) cell to depth h and checks each
// answer against the oracle over corpus.
func runDriftMatrix(t *testing.T, e *Engine, corpus []types.Tuple, h int) {
	t.Helper()
	for qi, q := range driftQueries(e.db.Schema()) {
		for ri, r := range driftRankers() {
			s := e.NewSession()
			cur, err := s.NewCursor(q, r, Rerank)
			if err != nil {
				t.Fatal(err)
			}
			var got []types.Tuple
			for len(got) < h {
				tp, ok, err := cur.Next()
				if err != nil {
					t.Fatalf("cell q%d/r%d: %v", qi, ri, err)
				}
				if !ok {
					break
				}
				got = append(got, tp)
			}
			full := oracleTopH(corpus, q, r, len(corpus))
			want := full
			if len(want) > h {
				want = want[:h]
			}
			assertSameRanking(t, r, got, want, full)
		}
	}
}

// deepCopyTuples clones tuples including Ord arrays, so the oracle copy can
// track mutations without aliasing the database's storage.
func deepCopyTuples(in []types.Tuple) []types.Tuple {
	out := make([]types.Tuple, len(in))
	for i, tt := range in {
		out[i] = tt
		out[i].Ord = append([]float64(nil), tt.Ord...)
	}
	return out
}

// mutateCorpus drifts the corpus: the top tuple of the unconstrained system
// answer (guaranteed sentinel-visible) plus several random tuples, applied
// to both the live database and the oracle copy.
func mutateCorpus(t *testing.T, db *hidden.DB, oracle []types.Tuple, rng *rand.Rand) {
	t.Helper()
	res, err := db.TopK(query.New())
	if err != nil {
		t.Fatal(err)
	}
	victims := []int{res.Tuples[0].ID}
	for i := 0; i < 8; i++ {
		victims = append(victims, rng.Intn(len(oracle)))
	}
	for _, id := range victims {
		attr := rng.Intn(2)
		v := rng.Float64() * 100
		if !db.SetOrd(id, attr, v) {
			t.Fatalf("SetOrd(%d) refused", id)
		}
		oracle[id].Ord[attr] = v
	}
}

// TestRerankCorrectAfterDrift is the drift matrix: warm the engine over the
// original corpus, mutate it in place, let one sentinel pass detect the
// drift, and require every re-run cell to match the oracle over the MUTATED
// corpus — stale knowledge may save probes but never wrong answers.
func TestRerankCorrectAfterDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	db, tuples := newTestDB(t, rng, 2, 300, 10, false, systemRankers(2)[0])
	e := NewEngine(db, Options{N: 300})
	oracle := deepCopyTuples(tuples)

	runDriftMatrix(t, e, oracle, 5) // warm caches pre-drift
	if _, _, err := e.SentinelPass(); err != nil {
		t.Fatal(err) // baseline
	}

	mutateCorpus(t, db, oracle, rng)
	bumped, _, err := e.SentinelPass()
	if err != nil {
		t.Fatal(err)
	}
	if !bumped {
		t.Fatal("sentinel missed the mutation within one pass")
	}

	runDriftMatrix(t, e, oracle, 5)
	promoted, evicted := e.RevalidationStats()
	if promoted+evicted == 0 {
		t.Fatal("post-drift matrix touched no stale knowledge — test not exercising re-validation")
	}
}

// TestRerankCorrectAfterDriftFlaky is the same matrix over a guarded flaky
// upstream (20% injected failures, hedging enabled): zero wrong answers, and
// the engine ledger charges exactly one query per logical probe the guard
// admitted — retries and hedges never double-charge.
func TestRerankCorrectAfterDriftFlaky(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db, tuples := newTestDB(t, rng, 2, 300, 10, false, systemRankers(2)[0])
	flaky := &hidden.FlakyDB{DB: db, FailEvery: 5}
	g := hidden.NewGuard(flaky, hidden.GuardOptions{
		BackoffBase: time.Nanosecond, // keep retries instant in tests
		HedgeAfter:  time.Nanosecond, // hedge aggressively: worst case for double-charging
	})
	e := NewEngine(g, Options{N: 300})
	oracle := deepCopyTuples(tuples)

	runDriftMatrix(t, e, oracle, 5)
	if _, _, err := e.SentinelPass(); err != nil {
		t.Fatal(err)
	}
	mutateCorpus(t, db, oracle, rng)
	if bumped, _, err := e.SentinelPass(); err != nil || !bumped {
		t.Fatalf("sentinel over flaky upstream: bumped=%v err=%v", bumped, err)
	}
	runDriftMatrix(t, e, oracle, 5)

	h := g.Health()
	if h.Retries == 0 {
		t.Fatal("flaky upstream produced no retries — test not exercising the guard")
	}
	if e.Queries() != h.Probes {
		t.Fatalf("engine ledger %d != guard logical probes %d — a retry or hedge double-charged", e.Queries(), h.Probes)
	}
	if phys := flaky.Calls(); phys <= h.Probes {
		t.Fatalf("physical calls %d <= logical probes %d — hedges/retries not exercised", phys, h.Probes)
	}
	if h.Failures != 0 {
		t.Fatalf("%d logical probes failed outright at 20%% flake with retries", h.Failures)
	}
}

// TestEpochPersistsAcrossJournalReplay: epoch bumps and per-region epochs
// survive a checkpointed restart — a region crawled before the bump comes
// back STALE, not silently fresh.
func TestEpochPersistsAcrossJournalReplay(t *testing.T) {
	dir := t.TempDir()
	db, tuples, e1 := persistTestWorld(t, 81)
	p1, err := e1.AttachPersistence(openStore(t, e1, dir, segment.Options{}), PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := narrowWindow(t, tuples, 10)
	s := e1.NewSession()
	if err := s.crawlDense1(0, iv); err != nil {
		t.Fatal(err)
	}
	e1.know.BumpEpoch()
	e1.know.BumpEpoch()
	// A post-bump probe lands at the current epoch.
	fresh := query.New().WithRange(1, types.ClosedInterval(40, 41))
	if _, err := e1.NewSession().issue(fresh); err != nil {
		t.Fatal(err)
	}
	wantEpoch, wantStale := e1.Epoch(), e1.know.StaleRegions()
	if wantEpoch != index.FirstEpoch+2 || wantStale == 0 {
		t.Fatalf("setup: epoch=%d stale=%d", wantEpoch, wantStale)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(db, Options{N: 400})
	p2, err := e2.AttachPersistence(openStore(t, e2, dir, segment.Options{}), PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if e2.Epoch() != wantEpoch {
		t.Fatalf("replayed epoch %d, want %d", e2.Epoch(), wantEpoch)
	}
	if got := e2.know.StaleRegions(); got != wantStale {
		t.Fatalf("replayed stale regions %d, want %d", got, wantStale)
	}
	r1, r2 := e1.know.dense1.Export(0), e2.know.dense1.Export(0)
	if len(r1) != len(r2) || r2[0].Epoch != r1[0].Epoch {
		t.Fatalf("region epochs not preserved: %v vs %v", r2, r1)
	}
	// The replayed stale region still demands its confirming probe.
	s2 := e2.NewSession()
	if _, ok, err := s2.denseLookup1(0, iv); err != nil || !ok {
		t.Fatalf("replayed region lookup: ok=%v err=%v", ok, err)
	}
	if s2.Queries() != 1 {
		t.Fatalf("replayed stale region cost %d queries to touch, want 1", s2.Queries())
	}
}

// TestEpochPersistsAcrossSnapshot: the v5 snapshot round-trips the epoch and
// per-entry epochs.
func TestEpochPersistsAcrossSnapshot(t *testing.T) {
	db, tuples, e1 := persistTestWorld(t, 83)
	iv, _ := narrowWindow(t, tuples, 10)
	if err := e1.NewSession().crawlDense1(0, iv); err != nil {
		t.Fatal(err)
	}
	e1.know.BumpEpoch()
	if _, err := e1.NewSession().issue(query.New().WithRange(1, types.ClosedInterval(40, 41))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(db, Options{N: 400})
	if err := e2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if e2.Epoch() != e1.Epoch() {
		t.Fatalf("snapshot epoch %d, want %d", e2.Epoch(), e1.Epoch())
	}
	if g, w := e2.know.StaleRegions(), e1.know.StaleRegions(); g != w {
		t.Fatalf("snapshot stale regions %d, want %d", g, w)
	}
	r1, r2 := e1.know.dense1.Export(0), e2.know.dense1.Export(0)
	if len(r1) != len(r2) || r2[0].Epoch != r1[0].Epoch {
		t.Fatalf("snapshot region epochs not preserved: %v vs %v", r2, r1)
	}
}
