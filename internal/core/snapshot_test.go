package core

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// TestSnapshotRoundTrip: a warm-restarted engine must answer a repeated
// query for (almost) no upstream cost, and still exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	schema := testSchema(2)
	n := 2000
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		ord := make([]float64, schema.Len())
		if i < n/3 {
			ord[0] = 0.5 + rng.Float64()*0.05
		} else {
			ord[0] = 1 + rng.Float64()*99
		}
		ord[1] = rng.Float64() * 100
		tuples[i] = types.Tuple{ID: i, Ord: ord, Cat: map[string]string{"cat": "x"}}
	}
	sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Desc)}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})

	// Warm up an engine (builds history + a dense region), snapshot it.
	e1 := NewEngine(db, Options{N: n})
	cur := e1.NewOneDCursor(query.New(), 0, ranking.Asc, Rerank)
	want, err := TopH(cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engine, load the snapshot, repeat the query.
	db.ResetCounter()
	e2 := NewEngine(db, Options{N: n})
	if err := e2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if e2.History().Size() != e1.History().Size() {
		t.Fatalf("history size %d, want %d", e2.History().Size(), e1.History().Size())
	}
	if e2.DenseIndex1D().Regions(0) != e1.DenseIndex1D().Regions(0) {
		t.Fatal("dense regions lost")
	}
	cur2 := e2.NewOneDCursor(query.New(), 0, ranking.Asc, Rerank)
	got, err := TopH(cur2, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := ranking.NewSingle("1d", 0, ranking.Asc)
	assertSameRanking(t, r, got, want)
	// The warm engine should answer mostly from state: far fewer queries
	// than a cold run (which cost well over 20 here).
	if db.QueryCount() > 15 {
		t.Errorf("warm repeat cost %d queries, want ≤ 15", db.QueryCount())
	}
}

// TestSnapshotProbeWarmRestart: since snapshot v2, the probe-coalescing LRU
// survives restarts. A probe answered completely before the snapshot must
// cost a restarted engine zero upstream queries — warm at the probe level,
// not just the tuple level.
func TestSnapshotProbeWarmRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	db, _ := newTestDB(t, rng, 2, 500, 10, false, nil)
	e1 := NewEngine(db, Options{N: 500})
	sess1 := e1.NewSession()

	// Narrow probes with complete (valid or underflow) answers: only those
	// are cacheable, and only complete answers are persisted.
	probes := []query.Query{
		query.New().WithRange(0, types.ClosedInterval(10, 12)).WithCat("cat", "x"),
		query.New().WithRange(1, types.ClosedInterval(40, 41)),
		query.New().WithRange(0, types.ClosedInterval(200, 300)), // underflow
	}
	want := make([]hidden.Result, len(probes))
	for i, q := range probes {
		res, err := sess1.issue(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Overflow {
			t.Fatalf("precondition: probe %d (%s) overflowed; pick a narrower test query", i, q)
		}
		want[i] = res
	}
	if e1.ProbeCacheEntries() != len(probes) {
		t.Fatalf("probe cache holds %d entries, want %d", e1.ProbeCacheEntries(), len(probes))
	}
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engine, load, repeat every probe.
	e2 := NewEngine(db, Options{N: 500})
	if err := e2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if e2.ProbeCacheEntries() != len(probes) {
		t.Fatalf("restored probe cache holds %d entries, want %d", e2.ProbeCacheEntries(), len(probes))
	}
	db.ResetCounter()
	sess2 := e2.NewSession()
	for i, q := range probes {
		res, err := sess2.issue(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != len(want[i].Tuples) {
			t.Fatalf("probe %d: warm answer has %d tuples, want %d", i, len(res.Tuples), len(want[i].Tuples))
		}
		for j := range res.Tuples {
			if res.Tuples[j].ID != want[i].Tuples[j].ID {
				t.Fatalf("probe %d rank %d: warm ID %d, want %d (rank order must survive)",
					i, j, res.Tuples[j].ID, want[i].Tuples[j].ID)
			}
		}
	}
	if n := db.QueryCount(); n != 0 {
		t.Errorf("repeated probes after restart cost %d upstream queries, want 0", n)
	}
	if n := sess2.Queries(); n != 0 {
		t.Errorf("repeated probes after restart charged the session %d queries, want 0", n)
	}
}

// TestSnapshotSaveUnderLoadStaysWarm covers the acceptance criterion
// end-to-end: a snapshot taken while concurrent sessions are mid-flight must
// reload with the probe cache warm enough that a previously answered probe
// costs zero upstream queries.
func TestSnapshotSaveUnderLoadStaysWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	db, _ := newTestDB(t, rng, 2, 600, 8, true, systemRankers(2)[2])
	e := NewEngine(db, Options{N: 600})

	// Pin one complete probe into the cache before the storm.
	pinned := query.New().WithRange(0, types.ClosedInterval(20, 21)).WithCat("cat", "y")
	res, err := e.NewSession().issue(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow {
		t.Fatal("precondition: pinned probe overflowed; pick a narrower test query")
	}

	// Save while a concurrent workload hammers the engine.
	items := concurrentWorkload(rng)
	var wg sync.WaitGroup
	errs := make(chan error, len(items))
	for _, it := range items {
		wg.Add(1)
		go func(it concurrentWorkItem) {
			defer wg.Done()
			cur, err := e.NewSession().NewCursor(it.q, it.r, it.v)
			if err != nil {
				errs <- err
				return
			}
			if _, err := TopH(cur, it.h); err != nil {
				errs <- err
			}
		}(it)
	}
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	warm := NewEngine(db, Options{N: 600})
	if err := warm.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	db.ResetCounter()
	sess := warm.NewSession()
	if _, err := sess.issue(pinned); err != nil {
		t.Fatal(err)
	}
	if n := db.QueryCount(); n != 0 {
		t.Errorf("pinned probe after under-load restart cost %d upstream queries, want 0", n)
	}
	if n := sess.Queries(); n != 0 {
		t.Errorf("pinned probe after under-load restart charged %d, want 0", n)
	}
}

// TestSnapshotProbeFingerprintMismatch: cached probe answers replay one
// specific upstream's responses, so loading a snapshot against an upstream
// with a different k or system ranking must drop the probe section (cold
// cache) while still restoring the history.
func TestSnapshotProbeFingerprintMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	db, tuples := newTestDB(t, rng, 2, 300, 10, false, nil)
	e1 := NewEngine(db, Options{N: 300})
	if _, err := e1.NewSession().issue(query.New().WithRange(0, types.ClosedInterval(10, 12))); err != nil {
		t.Fatal(err)
	}
	if e1.ProbeCacheEntries() == 0 {
		t.Fatal("precondition: no probe cached")
	}
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Same schema and corpus, different system-k: probes must not restore.
	dbK := hidden.MustDB(db.Schema(), tuples, hidden.Options{K: 7})
	eK := NewEngine(dbK, Options{N: 300})
	if err := eK.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if eK.ProbeCacheEntries() != 0 {
		t.Errorf("k-mismatched load restored %d probe entries, want 0", eK.ProbeCacheEntries())
	}
	if eK.History().Size() != e1.History().Size() {
		t.Errorf("k-mismatched load lost history: %d, want %d", eK.History().Size(), e1.History().Size())
	}

	// Different system ranking, same k: probes must not restore either.
	sys := hidden.RankerAdapter{R: ranking.NewSingle("other-sys", 1, ranking.Desc)}
	dbR := hidden.MustDB(db.Schema(), tuples, hidden.Options{K: 10, Ranker: sys})
	eR := NewEngine(dbR, Options{N: 300})
	if err := eR.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if eR.ProbeCacheEntries() != 0 {
		t.Errorf("ranker-mismatched load restored %d probe entries, want 0", eR.ProbeCacheEntries())
	}

	// Matching upstream: probes restore.
	eOK := NewEngine(db, Options{N: 300})
	if err := eOK.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if eOK.ProbeCacheEntries() != e1.ProbeCacheEntries() {
		t.Errorf("matching load restored %d probe entries, want %d", eOK.ProbeCacheEntries(), e1.ProbeCacheEntries())
	}
}

// TestSnapshotV1BackCompat: PR-1-format snapshots (version 1, no probes
// field) must keep loading — they restore history and dense regions and
// simply leave the probe cache cold.
func TestSnapshotV1BackCompat(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	db, _ := newTestDB(t, rng, 2, 50, 5, false, nil)
	e := NewEngine(db, Options{N: 50})
	v1 := `{"version":1,"queries":7,"schema":["A0","A1","cat"],` +
		`"tuples":[{"id":1,"ord":[5,6,0],"cat":{"cat":"x"}},{"id":2,"ord":[7,8,0],"cat":{"cat":"y"}}],` +
		`"dense1d":[{"attr":0,"lo":4,"hi":8,"ids":[1,2]}]}`
	if err := e.LoadSnapshot(strings.NewReader(v1)); err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	if e.History().Size() != 2 {
		t.Fatalf("history size %d, want 2", e.History().Size())
	}
	if e.DenseIndex1D().Regions(0) != 1 {
		t.Fatal("dense region lost")
	}
	if e.ProbeCacheEntries() != 0 {
		t.Fatalf("v1 snapshot restored %d probe entries, want 0", e.ProbeCacheEntries())
	}
	if tp, ok := e.History().MinMatching(query.New(), 0, types.FullInterval()); !ok || tp.ID != 1 {
		t.Fatal("restored history index broken")
	}
}

func TestSnapshotValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	db, _ := newTestDB(t, rng, 2, 50, 5, false, nil)
	e := NewEngine(db, Options{N: 50})
	// Wrong version.
	if err := e.LoadSnapshot(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("version mismatch accepted")
	}
	// Wrong schema arity.
	if err := e.LoadSnapshot(strings.NewReader(`{"version":1,"schema":["only-one"]}`)); err == nil {
		t.Error("schema arity mismatch accepted")
	}
	// Wrong schema names.
	if err := e.LoadSnapshot(strings.NewReader(`{"version":1,"schema":["a","b","c"]}`)); err == nil {
		t.Error("schema name mismatch accepted")
	}
	// Dense region referencing an unknown tuple.
	bad := `{"version":1,"schema":["A0","A1","cat"],"tuples":[],` +
		`"dense1d":[{"attr":0,"lo":0,"hi":1,"ids":[42]}]}`
	if err := e.LoadSnapshot(strings.NewReader(bad)); err == nil {
		t.Error("dangling dense-region reference accepted")
	}
	// Cached probe referencing an unknown tuple.
	badProbe := `{"version":2,"schema":["A0","A1","cat"],"tuples":[],` +
		`"probes":[{"key":"TRUE","ids":[42]}]}`
	if err := e.LoadSnapshot(strings.NewReader(badProbe)); err == nil {
		t.Error("dangling probe-cache reference accepted")
	}
	// MD region referencing an unknown tuple.
	badMD := `{"version":3,"schema":["A0","A1","cat"],"tuples":[],` +
		`"denseMD":[{"attrs":[0,1],"dims":[{"lo":0,"hi":1},{"lo":0,"hi":1}],"ids":[42],"complete":true}]}`
	if err := e.LoadSnapshot(strings.NewReader(badMD)); err == nil {
		t.Error("dangling MD-region reference accepted")
	}
	// MD region with mismatched dims/attrs arity.
	badMDDims := `{"version":3,"schema":["A0","A1","cat"],"tuples":[],` +
		`"denseMD":[{"attrs":[0,1],"dims":[{"lo":0,"hi":1}],"ids":[],"complete":true}]}`
	if err := e.LoadSnapshot(strings.NewReader(badMDDims)); err == nil {
		t.Error("MD region with 1 dim for 2 attributes accepted")
	}
	// MD region on an out-of-range attribute.
	badMDAttr := `{"version":3,"schema":["A0","A1","cat"],"tuples":[],` +
		`"denseMD":[{"attrs":[0,9],"dims":[{"lo":0,"hi":1},{"lo":0,"hi":1}],"ids":[],"complete":true}]}`
	if err := e.LoadSnapshot(strings.NewReader(badMDAttr)); err == nil {
		t.Error("MD region on invalid attribute accepted")
	}
	// An incomplete MD region is skipped (not authoritative), never an
	// error — forward-compatibility for partially-persisted crawls.
	incomplete := `{"version":3,"schema":["A0","A1","cat"],"tuples":[],` +
		`"denseMD":[{"attrs":[0,1],"dims":[{"lo":0,"hi":1},{"lo":0,"hi":1}],"ids":[],"complete":false}]}`
	if err := e.LoadSnapshot(strings.NewReader(incomplete)); err != nil {
		t.Errorf("incomplete MD region rejected: %v", err)
	}
	if e.MDDenseRegions() != 0 {
		t.Errorf("incomplete MD region restored (%d regions), want skipped", e.MDDenseRegions())
	}
	// Malformed JSON.
	if err := e.LoadSnapshot(strings.NewReader(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Tuple with wrong arity.
	bad2 := `{"version":1,"schema":["A0","A1","cat"],"tuples":[{"id":1,"ord":[1]}]}`
	if err := e.LoadSnapshot(strings.NewReader(bad2)); err == nil {
		t.Error("short tuple accepted")
	}
}

// newMDDenseTestDB builds a 2-ordinal-attribute corpus with a tight cluster
// of clustered tuples inside [50, 50.3]² — a certified dense region for the
// default thresholds at n=1200, k=10 — and the rest spread uniformly.
// Values are unique (general positioning not assumed; tie probes are point
// queries with singleton answers).
func newMDDenseTestDB(t *testing.T) (*hidden.DB, []types.Tuple) {
	t.Helper()
	rng := rand.New(rand.NewSource(90))
	schema := testSchema(2)
	n := 1200
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		ord := make([]float64, schema.Len())
		if i < 60 {
			ord[0] = 50 + float64(i)*0.005
			ord[1] = 50 + float64((i*37)%60)*0.005
		} else {
			ord[0] = rng.Float64() * 100
			ord[1] = rng.Float64() * 100
		}
		tuples[i] = types.Tuple{ID: i, Ord: ord, Cat: map[string]string{"cat": "x"}}
	}
	sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Desc)}
	return hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys}), tuples
}

// TestSnapshotV3MDWarmRestart is the acceptance criterion of snapshot v3: a
// restarted engine loading a snapshot answers an MD-RERANK session over a
// previously-crawled dense region with ZERO upstream TopK calls — the dense
// region comes from the persisted MD index and the tie probes from the
// persisted probe LRU.
func TestSnapshotV3MDWarmRestart(t *testing.T) {
	db, all := newMDDenseTestDB(t)
	rk := ranking.MustLinear("sum", []int{0, 1}, []float64{1, 1})
	q := query.New().
		WithRange(0, types.ClosedInterval(50, 50.3)).
		WithRange(1, types.ClosedInterval(50, 50.3))

	// Cold run: the query box overflows, qualifies as dense, and is
	// crawled into the MD index.
	e1 := NewEngine(db, Options{N: 1200})
	sess1 := e1.NewSession()
	cur1, err := sess1.NewCursor(q, rk, Rerank)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopH(cur1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sess1.Queries() == 0 {
		t.Fatal("precondition: cold MD-RERANK run cost 0 queries")
	}
	if e1.MDDenseRegions() == 0 {
		t.Fatal("precondition: cold run crawled no MD dense region")
	}
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engine, load the v3 snapshot, repeat the session.
	db.ResetCounter()
	e2 := NewEngine(db, Options{N: 1200})
	if err := e2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if e2.MDDenseRegions() != e1.MDDenseRegions() {
		t.Fatalf("restored %d MD dense regions, want %d", e2.MDDenseRegions(), e1.MDDenseRegions())
	}
	sess2 := e2.NewSession()
	cur2, err := sess2.NewCursor(q, rk, Rerank)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopH(cur2, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, rk, got, want)
	full := oracleTopH(all, q, rk, 1<<30)
	oracle := full
	if len(oracle) > 5 {
		oracle = oracle[:5]
	}
	assertSameRanking(t, rk, got, oracle, full)
	if n := db.QueryCount(); n != 0 {
		t.Errorf("MD-RERANK session over a previously-crawled dense region cost %d upstream queries after restart, want 0", n)
	}
	if n := sess2.Queries(); n != 0 {
		t.Errorf("warm session charged %d queries, want 0", n)
	}
}

// TestSnapshotMDFingerprintMismatch: a crawled MD region's authority assumes
// the same corpus, so loading against an upstream with a different
// fingerprint must leave the MD index (and the probe cache) cold while still
// restoring the history.
func TestSnapshotMDFingerprintMismatch(t *testing.T) {
	db, tuples := newMDDenseTestDB(t)
	rk := ranking.MustLinear("sum", []int{0, 1}, []float64{1, 1})
	q := query.New().
		WithRange(0, types.ClosedInterval(50, 50.3)).
		WithRange(1, types.ClosedInterval(50, 50.3))
	e1 := NewEngine(db, Options{N: 1200})
	cur, err := e1.NewCursor(q, rk, Rerank)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TopH(cur, 5); err != nil {
		t.Fatal(err)
	}
	if e1.MDDenseRegions() == 0 {
		t.Fatal("precondition: no MD dense region crawled")
	}
	// A crawled 1D region too: the fingerprint gate covers both families.
	var clustered []types.Tuple
	for _, tu := range tuples {
		if tu.Ord[0] >= 50 && tu.Ord[0] <= 50.3 {
			clustered = append(clustered, tu)
		}
	}
	e1.know.dense1.Insert(0, types.ClosedInterval(50, 50.3), clustered)
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Different system-k: dense regions (1D and MD) and probes stay cold,
	// history loads.
	dbK := hidden.MustDB(db.Schema(), tuples, hidden.Options{K: 7})
	eK := NewEngine(dbK, Options{N: 1200})
	if err := eK.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if eK.MDDenseRegions() != 0 {
		t.Errorf("k-mismatched load restored %d MD regions, want 0", eK.MDDenseRegions())
	}
	if eK.DenseIndex1D().Regions(0) != 0 {
		t.Errorf("k-mismatched load restored %d 1D regions, want 0", eK.DenseIndex1D().Regions(0))
	}
	if eK.ProbeCacheEntries() != 0 {
		t.Errorf("k-mismatched load restored %d probe entries, want 0", eK.ProbeCacheEntries())
	}
	// History must survive in full. The snapshot holds e1's history plus
	// the region-referenced tuples appended explicitly by SaveSnapshot, so
	// the restored store can only be larger than e1's.
	if eK.History().Size() < e1.History().Size() {
		t.Errorf("k-mismatched load lost history: %d, want at least %d", eK.History().Size(), e1.History().Size())
	}

	// Matching upstream: everything restores.
	eOK := NewEngine(db, Options{N: 1200})
	if err := eOK.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if eOK.MDDenseRegions() != e1.MDDenseRegions() {
		t.Errorf("matching load restored %d MD regions, want %d", eOK.MDDenseRegions(), e1.MDDenseRegions())
	}
	if eOK.DenseIndex1D().Regions(0) != 1 {
		t.Errorf("matching load restored %d 1D regions, want 1", eOK.DenseIndex1D().Regions(0))
	}
}

// TestSnapshotV2BackCompat: PR-2-format snapshots (version 2, no denseMD
// field) must keep loading — history, 1D regions, and probes restore; the
// MD index simply starts cold.
func TestSnapshotV2BackCompat(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	db, _ := newTestDB(t, rng, 2, 50, 5, false, nil)
	v2 := `{"version":2,"queries":9,"schema":["A0","A1","cat"],` +
		`"tuples":[{"id":1,"ord":[5,6,0],"cat":{"cat":"x"}},{"id":2,"ord":[7,8,0],"cat":{"cat":"y"}}],` +
		`"dense1d":[{"attr":0,"lo":4,"hi":8,"ids":[1,2]}],` +
		`"probes":[{"key":"TRUE","ids":[1,2]}]}`
	e := NewEngine(db, Options{N: 50})
	if err := e.LoadSnapshot(strings.NewReader(v2)); err != nil {
		t.Fatalf("version-2 snapshot rejected: %v", err)
	}
	if e.History().Size() != 2 {
		t.Fatalf("history size %d, want 2", e.History().Size())
	}
	if e.DenseIndex1D().Regions(0) != 1 {
		t.Fatal("dense 1D region lost")
	}
	if e.ProbeCacheEntries() != 1 {
		t.Fatalf("v2 snapshot restored %d probe entries, want 1", e.ProbeCacheEntries())
	}
	if e.MDDenseRegions() != 0 {
		t.Fatalf("v2 snapshot restored %d MD regions, want 0", e.MDDenseRegions())
	}
}
