package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// TestSnapshotRoundTrip: a warm-restarted engine must answer a repeated
// query for (almost) no upstream cost, and still exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	schema := testSchema(2)
	n := 2000
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		ord := make([]float64, schema.Len())
		if i < n/3 {
			ord[0] = 0.5 + rng.Float64()*0.05
		} else {
			ord[0] = 1 + rng.Float64()*99
		}
		ord[1] = rng.Float64() * 100
		tuples[i] = types.Tuple{ID: i, Ord: ord, Cat: map[string]string{"cat": "x"}}
	}
	sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 0, ranking.Desc)}
	db := hidden.MustDB(schema, tuples, hidden.Options{K: 10, Ranker: sys})

	// Warm up an engine (builds history + a dense region), snapshot it.
	e1 := NewEngine(db, Options{N: n})
	cur := e1.NewOneDCursor(query.New(), 0, ranking.Asc, Rerank)
	want, err := TopH(cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engine, load the snapshot, repeat the query.
	db.ResetCounter()
	e2 := NewEngine(db, Options{N: n})
	if err := e2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if e2.History().Size() != e1.History().Size() {
		t.Fatalf("history size %d, want %d", e2.History().Size(), e1.History().Size())
	}
	if e2.DenseIndex1D().Regions(0) != e1.DenseIndex1D().Regions(0) {
		t.Fatal("dense regions lost")
	}
	cur2 := e2.NewOneDCursor(query.New(), 0, ranking.Asc, Rerank)
	got, err := TopH(cur2, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := ranking.NewSingle("1d", 0, ranking.Asc)
	assertSameRanking(t, r, got, want)
	// The warm engine should answer mostly from state: far fewer queries
	// than a cold run (which cost well over 20 here).
	if db.QueryCount() > 15 {
		t.Errorf("warm repeat cost %d queries, want ≤ 15", db.QueryCount())
	}
}

func TestSnapshotValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	db, _ := newTestDB(t, rng, 2, 50, 5, false, nil)
	e := NewEngine(db, Options{N: 50})
	// Wrong version.
	if err := e.LoadSnapshot(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("version mismatch accepted")
	}
	// Wrong schema arity.
	if err := e.LoadSnapshot(strings.NewReader(`{"version":1,"schema":["only-one"]}`)); err == nil {
		t.Error("schema arity mismatch accepted")
	}
	// Wrong schema names.
	if err := e.LoadSnapshot(strings.NewReader(`{"version":1,"schema":["a","b","c"]}`)); err == nil {
		t.Error("schema name mismatch accepted")
	}
	// Dense region referencing an unknown tuple.
	bad := `{"version":1,"schema":["A0","A1","cat"],"tuples":[],` +
		`"dense1d":[{"attr":0,"lo":0,"hi":1,"ids":[42]}]}`
	if err := e.LoadSnapshot(strings.NewReader(bad)); err == nil {
		t.Error("dangling dense-region reference accepted")
	}
	// Malformed JSON.
	if err := e.LoadSnapshot(strings.NewReader(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Tuple with wrong arity.
	bad2 := `{"version":1,"schema":["A0","A1","cat"],"tuples":[{"id":1,"ord":[1]}]}`
	if err := e.LoadSnapshot(strings.NewReader(bad2)); err == nil {
		t.Error("short tuple accepted")
	}
}
