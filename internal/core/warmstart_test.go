package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/types"
)

// TestSerialEqualityAndLedgers locks in that the sharded history store
// changes nothing observable on the serial path: 1D-RERANK and MD-RERANK
// answers equal the brute-force oracle, two identical runs produce identical
// answers and identical per-session cost ledgers (the store is
// deterministic), and the accounting invariant holds — session ledgers
// partition the engine counter, which equals the upstream's own counter.
func TestSerialEqualityAndLedgers(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	db, all := newTestDB(t, rng, 2, 600, 5, true, systemRankers(2)[1])
	items := concurrentWorkload(rng)

	run := func() ([][]types.Tuple, []int64, int64) {
		db.ResetCounter()
		e := NewEngine(db, Options{N: 600})
		answers := make([][]types.Tuple, len(items))
		ledgers := make([]int64, len(items))
		for i, it := range items {
			sess := e.NewSession()
			cur, err := sess.NewCursor(it.q, it.r, it.v)
			if err != nil {
				t.Fatal(err)
			}
			if answers[i], err = TopH(cur, it.h); err != nil {
				t.Fatal(err)
			}
			ledgers[i] = sess.Queries()
		}
		if e.Queries() != db.QueryCount() {
			t.Fatalf("engine counted %d queries, upstream answered %d", e.Queries(), db.QueryCount())
		}
		var sum int64
		for _, l := range ledgers {
			sum += l
		}
		if sum != e.Queries() {
			t.Fatalf("session ledgers sum to %d, engine counted %d", sum, e.Queries())
		}
		return answers, ledgers, e.Queries()
	}

	ans1, led1, total1 := run()
	ans2, led2, total2 := run()

	for i, it := range items {
		full := oracleTopH(all, it.q, it.r, 1<<30)
		want := full
		if len(want) > it.h {
			want = want[:it.h]
		}
		assertSameRanking(t, it.r, ans1[i], want, full)
		// Determinism across runs: exact same emission and cost.
		if len(ans1[i]) != len(ans2[i]) {
			t.Fatalf("item %d: run1 emitted %d tuples, run2 %d", i, len(ans1[i]), len(ans2[i]))
		}
		for j := range ans1[i] {
			if ans1[i][j].ID != ans2[i][j].ID {
				t.Fatalf("item %d rank %d: run1 ID %d, run2 ID %d", i, j, ans1[i][j].ID, ans2[i][j].ID)
			}
		}
		if led1[i] != led2[i] {
			t.Fatalf("item %d: run1 ledger %d, run2 ledger %d", i, led1[i], led2[i])
		}
	}
	if total1 != total2 {
		t.Fatalf("run1 total cost %d, run2 %d", total1, total2)
	}
}

// TestConcurrentStoreReadsWritesLiveSnapshot stress-mixes, under -race,
// everything the sharded store and snapshotter must survive at once:
// sessions streaming tuples into history (concurrent Add), direct indexed
// reads across all attributes, whole-store scans, and live SaveSnapshot.
// The final snapshot must reload into a fresh engine with history intact
// and the probe cache warm (see also the dedicated warmness round-trip).
func TestConcurrentStoreReadsWritesLiveSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	db, _ := newTestDB(t, rng, 2, 600, 5, true, systemRankers(2)[0])
	e := NewEngine(db, Options{N: 600})
	items := concurrentWorkload(rng)

	var wg sync.WaitGroup
	errs := make(chan error, len(items)+8)

	// Request traffic: every item on its own session, writing history.
	for i, it := range items {
		wg.Add(1)
		go func(i int, it concurrentWorkItem) {
			defer wg.Done()
			sess := e.NewSession()
			cur, err := sess.NewCursor(it.q, it.r, it.v)
			if err != nil {
				errs <- err
				return
			}
			if _, err := TopH(cur, it.h); err != nil {
				errs <- fmt.Errorf("item %d: %w", i, err)
			}
		}(i, it)
	}
	// Direct index readers on every ordinal attribute.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(300 + r)))
			hist := e.History()
			for i := 0; i < 400; i++ {
				for _, attr := range db.Schema().OrdinalIndexes() {
					lo := rr.Float64() * 80
					iv := types.ClosedInterval(lo, lo+25)
					q := query.New()
					if rr.Intn(2) == 0 {
						q = q.WithCat("cat", []string{"x", "y", "z"}[rr.Intn(3)])
					}
					if tp, ok := hist.MinMatching(q, attr, iv); ok && (!q.Matches(tp) || !iv.Contains(tp.Ord[attr])) {
						errs <- fmt.Errorf("MinMatching yielded non-qualifying tuple %v", tp)
						return
					}
					if tp, ok := hist.MaxMatching(q, attr, iv); ok && (!q.Matches(tp) || !iv.Contains(tp.Ord[attr])) {
						errs <- fmt.Errorf("MaxMatching yielded non-qualifying tuple %v", tp)
						return
					}
					hist.CountMatching(q)
				}
			}
		}(r)
	}
	// Live snapshotter: serialize continuously while everything runs.
	var lastSnap []byte
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			var buf bytes.Buffer
			if err := e.SaveSnapshot(&buf); err != nil {
				errs <- fmt.Errorf("live snapshot: %w", err)
				return
			}
			lastSnap = buf.Bytes()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// A final snapshot (after load has quiesced) must restore cleanly.
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	warm := NewEngine(db, Options{N: 600})
	if err := warm.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if warm.History().Size() != e.History().Size() {
		t.Fatalf("restored history size %d, want %d", warm.History().Size(), e.History().Size())
	}
	if warm.ProbeCacheEntries() != e.ProbeCacheEntries() {
		t.Fatalf("restored %d cached probes, want %d", warm.ProbeCacheEntries(), e.ProbeCacheEntries())
	}
	// Snapshots taken mid-load must also be loadable (state may be older,
	// never corrupt).
	mid := NewEngine(db, Options{N: 600})
	if err := mid.LoadSnapshot(bytes.NewReader(lastSnap)); err != nil {
		t.Fatalf("mid-load snapshot does not restore: %v", err)
	}
}
