// The Knowledge layer: the concurrency-safe shared state of an Engine.
//
// Everything the paper amortizes across user queries lives here — the
// cross-query answer history (§3.1.1), the 1D and MD dense-region indexes
// (§3.2.2, §4.4), and the lifetime upstream-query counter. All of it is
// guarded internally (the history store shards its sorted indexes per
// attribute with incremental run+buffer maintenance, the dense indexes carry
// their own RWMutexes, the counter is atomic), so arbitrarily many Sessions
// on arbitrarily many goroutines read and grow the same knowledge while it
// stays snapshottable live.

package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/types"
)

// Knowledge is the shared, concurrency-safe state of one Engine: the answer
// history, the dense-region indexes, and the upstream-query counter. It is
// what makes later queries cheaper than earlier ones, regardless of which
// user (session) issued them.
type Knowledge struct {
	hist   *history.Store
	dense1 *index.Dense1D

	mdMu    sync.Mutex
	denseMD map[string]*index.DenseMD // keyed by ranked-attribute signature

	queries atomic.Int64 // upstream queries issued through the engine
}

// newKnowledge builds an empty knowledge layer over the given schema.
func newKnowledge(schema *types.Schema) *Knowledge {
	return &Knowledge{
		hist:    history.NewStore(schema),
		dense1:  index.NewDense1D(),
		denseMD: make(map[string]*index.DenseMD),
	}
}

// History returns the cross-query tuple cache. Safe for concurrent use.
func (k *Knowledge) History() *history.Store { return k.hist }

// DenseIndex1D returns the 1D dense-region index. Safe for concurrent use.
func (k *Knowledge) DenseIndex1D() *index.Dense1D { return k.dense1 }

// Queries returns the number of upstream queries issued so far (coalesced
// probes count once).
func (k *Knowledge) Queries() int64 { return k.queries.Load() }

// mdIndexFor returns the MD dense index shared by all rankers over the same
// attribute subset, creating it on first use.
func (k *Knowledge) mdIndexFor(attrs []int) *index.DenseMD {
	key := attrsKey(attrs)
	k.mdMu.Lock()
	defer k.mdMu.Unlock()
	idx, ok := k.denseMD[key]
	if !ok {
		idx = index.NewDenseMD()
		k.denseMD[key] = idx
	}
	return idx
}
