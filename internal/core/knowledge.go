// The Knowledge layer: the concurrency-safe shared state of an Engine.
//
// Everything the paper amortizes across user queries lives here — the
// cross-query answer history (§3.1.1), the 1D and MD dense-region indexes
// (§3.2.2, §4.4), and the lifetime upstream-query counter. All of it is
// guarded internally (the history store shards its sorted indexes per
// attribute with incremental run+buffer maintenance, the dense indexes carry
// their own RWMutexes, the counter is atomic), so arbitrarily many Sessions
// on arbitrarily many goroutines read and grow the same knowledge while it
// stays snapshottable live.

package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/acquire"
	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/types"
)

// Knowledge is the shared, concurrency-safe state of one Engine: the answer
// history, the dense-region indexes, and the upstream-query counter. It is
// what makes later queries cheaper than earlier ones, regardless of which
// user (session) issued them.
type Knowledge struct {
	hist   *history.Store
	dense1 *index.Dense1D

	mdMu    sync.Mutex
	denseMD map[string]*mdEntry // keyed by ranked-attribute signature

	queries atomic.Int64 // upstream queries issued through the engine

	// epoch is the namespace's current knowledge epoch. Every dense region,
	// probe-LRU entry, and history watermark records the epoch it was
	// learned under; a sentinel-detected upstream drift bumps this counter,
	// turning everything learned earlier stale. Stale knowledge is
	// re-validated lazily on first touch (one confirming probe), never
	// discarded wholesale.
	epoch atomic.Int64
	// histStaleRows is the history row watermark at the last epoch bump:
	// rows below it were learned under an earlier epoch. History rows are
	// candidate hints that always get probe-confirmed before use, so the
	// watermark is observability, not a correctness gate.
	histStaleRows atomic.Int64
	// Lazy re-validation outcomes for dense regions (the probe cache keeps
	// its own pair in the coalescer).
	denseRevalPromoted atomic.Int64
	denseRevalEvicted  atomic.Int64

	// heat is the request-window heat sketch feeding the background
	// acquirer: which exact windows users queried recently, with
	// exponential decay. Fed by RecordHeat on the request path; persisted
	// in snapshots and checkpoints so acquisition resumes after restarts.
	heat *acquire.Sketch

	// persist, when attached, records dense-region inserts so incremental
	// checkpoints can persist them. History needs no recording hook: the
	// append-only arena's row watermark already identifies what is new.
	persist atomic.Pointer[Persister]
}

// mdEntry is one MD dense index together with the canonical (sorted
// ascending) attribute subset it covers — kept alongside so snapshots can
// serialize the subset without re-parsing the map key.
type mdEntry struct {
	attrs []int
	idx   *index.DenseMD
}

// newKnowledge builds an empty knowledge layer over the given schema.
func newKnowledge(schema *types.Schema) *Knowledge {
	k := &Knowledge{
		hist:    history.NewStore(schema),
		dense1:  index.NewDense1D(),
		denseMD: make(map[string]*mdEntry),
		heat:    acquire.NewSketch(schema),
	}
	k.epoch.Store(index.FirstEpoch)
	return k
}

// Epoch returns the current knowledge epoch.
func (k *Knowledge) Epoch() int64 { return k.epoch.Load() }

// EpochBumps returns how many drift-triggered bumps the epoch has seen.
func (k *Knowledge) EpochBumps() int64 { return k.epoch.Load() - index.FirstEpoch }

// BumpEpoch advances the knowledge epoch (a sentinel detected upstream
// drift), marks the current history rows stale, records the bump for
// persistence, and returns the new epoch.
func (k *Knowledge) BumpEpoch() int64 {
	e := k.epoch.Add(1)
	k.histStaleRows.Store(int64(k.hist.Rows()))
	if p := k.persist.Load(); p != nil {
		p.recordEpoch(e)
	}
	return e
}

// restoreEpoch moves the epoch forward to e (snapshot/journal replay).
// Epochs never move backward; an older restore is a no-op.
func (k *Knowledge) restoreEpoch(e int64) {
	for {
		cur := k.epoch.Load()
		if e <= cur || k.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// StaleHistoryRows returns the history row watermark below which rows were
// learned under an earlier epoch.
func (k *Knowledge) StaleHistoryRows() int64 { return k.histStaleRows.Load() }

// StaleRegions counts dense regions (1D and MD) whose epoch trails the
// current one — knowledge awaiting lazy re-validation.
func (k *Knowledge) StaleRegions() int {
	cur := k.Epoch()
	n := k.dense1.StaleCount(cur)
	k.mdMu.Lock()
	entries := make([]*mdEntry, 0, len(k.denseMD))
	for _, e := range k.denseMD {
		entries = append(entries, e)
	}
	k.mdMu.Unlock()
	for _, e := range entries {
		n += e.idx.StaleCount(cur)
	}
	return n
}

// History returns the cross-query tuple cache. Safe for concurrent use.
func (k *Knowledge) History() *history.Store { return k.hist }

// DenseIndex1D returns the 1D dense-region index. Safe for concurrent use.
func (k *Knowledge) DenseIndex1D() *index.Dense1D { return k.dense1 }

// Queries returns the number of upstream queries issued so far (coalesced
// probes count once).
func (k *Knowledge) Queries() int64 { return k.queries.Load() }

// Heat returns the request-window heat sketch. Safe for concurrent use.
func (k *Knowledge) Heat() *acquire.Sketch { return k.heat }

// mdIndexFor returns the MD dense index shared by all rankers over the same
// attribute subset, creating it on first use.
func (k *Knowledge) mdIndexFor(attrs []int) *index.DenseMD {
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	key := attrsKey(sorted)
	k.mdMu.Lock()
	defer k.mdMu.Unlock()
	e, ok := k.denseMD[key]
	if !ok {
		e = &mdEntry{attrs: sorted, idx: index.NewDenseMD()}
		k.denseMD[key] = e
	}
	return e.idx
}

// InsertDense1 inserts a fully-crawled 1D dense region into the shared index
// and records the insert for incremental persistence. All region inserts —
// live crawls and snapshot restores alike — must go through this wrapper
// rather than the index directly, so no committed knowledge is invisible to
// the next checkpoint.
func (k *Knowledge) InsertDense1(attr int, iv types.Interval, tuples []types.Tuple) {
	k.insertDense1Epoch(attr, iv, tuples, k.Epoch())
}

// insertDense1Epoch is InsertDense1 at an explicit epoch (snapshot restore
// inserts regions at the epoch they were persisted under, not the current
// one).
func (k *Knowledge) insertDense1Epoch(attr int, iv types.Interval, tuples []types.Tuple, epoch int64) {
	k.dense1.InsertEpoch(attr, iv, tuples, epoch)
	if p := k.persist.Load(); p != nil {
		p.recordDense1(attr, iv, tuples, epoch)
	}
}

// InsertDenseMD inserts a fully-crawled MD dense region for the given
// attribute subset (sorted canonically here) and records the insert for
// incremental persistence. See InsertDense1 for why inserts must route
// through this wrapper.
func (k *Knowledge) InsertDenseMD(attrs []int, box query.Box, tuples []types.Tuple) {
	k.insertDenseMDEpoch(attrs, box, tuples, k.Epoch())
}

// insertDenseMDEpoch is InsertDenseMD at an explicit epoch (snapshot
// restore).
func (k *Knowledge) insertDenseMDEpoch(attrs []int, box query.Box, tuples []types.Tuple, epoch int64) {
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	k.mdIndexFor(sorted).InsertEpoch(box, tuples, epoch)
	if p := k.persist.Load(); p != nil {
		p.recordDenseMD(sorted, box, tuples, epoch)
	}
}

// mdExport is one attribute subset's crawled regions, as captured for a
// snapshot.
type mdExport struct {
	attrs   []int
	regions []index.Region
}

// exportMD captures every MD dense index's crawled regions. Region tuple
// slices are shared and immutable, and each index's region list is copied
// under its lock, so the export is a consistent per-index snapshot even
// while crawls run. (Region *coverage* is monotone, but the region count is
// not: Insert absorbs regions contained in a newly crawled box.)
func (k *Knowledge) exportMD() []mdExport {
	k.mdMu.Lock()
	entries := make([]*mdEntry, 0, len(k.denseMD))
	for _, e := range k.denseMD {
		entries = append(entries, e)
	}
	k.mdMu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return attrsKey(entries[i].attrs) < attrsKey(entries[j].attrs) })
	out := make([]mdExport, 0, len(entries))
	for _, e := range entries {
		if regs := e.idx.Export(); len(regs) > 0 {
			out = append(out, mdExport{attrs: e.attrs, regions: regs})
		}
	}
	return out
}

// MDBucketStats aggregates every MD dense index's centroid-grid statistics:
// total regions, total occupied buckets, the worst single bucket, and loose
// (ungridded) regions — the observability handle for the sub-linear lookup
// claim (§4.4 oracle cost stays flat as knowledge grows).
func (k *Knowledge) MDBucketStats() index.GridStats {
	k.mdMu.Lock()
	entries := make([]*mdEntry, 0, len(k.denseMD))
	for _, e := range k.denseMD {
		entries = append(entries, e)
	}
	k.mdMu.Unlock()
	var st index.GridStats
	for _, e := range entries {
		s := e.idx.Stats()
		st.Regions += s.Regions
		st.Buckets += s.Buckets
		st.Loose += s.Loose
		if s.MaxBucket > st.MaxBucket {
			st.MaxBucket = s.MaxBucket
		}
	}
	return st
}

// MDRegions returns the total number of crawled MD dense regions across all
// attribute subsets — the regions a restarted engine can answer locally.
func (k *Knowledge) MDRegions() int {
	k.mdMu.Lock()
	entries := make([]*mdEntry, 0, len(k.denseMD))
	for _, e := range k.denseMD {
		entries = append(entries, e)
	}
	k.mdMu.Unlock()
	n := 0
	for _, e := range entries {
		n += e.idx.Len()
	}
	return n
}
