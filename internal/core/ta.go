// TA over 1D-RERANK (§4.1): the strawman that drives Fagin's threshold
// algorithm with one 1D-RERANK Get-Next cursor per ranked attribute. It is
// exact for every monotone ranking function but wastes queries because it
// never issues multi-predicate boxes — the experiments reproduce exactly
// that gap against MD-RERANK (Figures 13–17).

package core

import (
	"math"

	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// TACursor implements Cursor using the threshold algorithm over sorted
// access provided by per-attribute 1D-RERANK cursors. Random access is not
// needed: the search interface returns whole tuples (§4.1).
type TACursor struct {
	s    *Session
	q    query.Query
	axis *ranking.Axis

	cursors  []*OneDCursor
	access   []Cursor  // external sorted access (§5 known rankings); overrides cursors
	frontier []float64 // last axis value seen per ranked attribute
	liveAttr []bool
	anyDone  bool // one cursor exhausted ⇒ R(q) fully enumerated
	rr       int  // round-robin position

	seen    map[int]types.Tuple
	emitted map[int]bool
}

// NewTACursor builds a TA cursor for ranker r over user query q, in a fresh
// single-cursor session.
func (e *Engine) NewTACursor(q query.Query, r ranking.Ranker) *TACursor {
	return e.NewSession().NewTACursor(q, r)
}

// NewTACursor builds a TA cursor for ranker r over user query q. Its
// per-attribute sorted-access sub-cursors share the session's cost ledger.
func (s *Session) NewTACursor(q query.Query, r ranking.Ranker) *TACursor {
	ax := ranking.NewAxis(r, s.e.db.Schema())
	t := &TACursor{
		s: s, q: q.Clone(), axis: ax,
		seen:    make(map[int]types.Tuple),
		emitted: make(map[int]bool),
	}
	for j, attr := range ax.Attrs() {
		t.cursors = append(t.cursors, s.NewOneDCursor(q, attr, r.Dir(j), Rerank))
		t.frontier = append(t.frontier, math.Inf(-1))
		t.liveAttr = append(t.liveAttr, true)
	}
	return t
}

// threshold returns τ = S(frontier): no unseen tuple can score below it,
// because an unseen tuple is at or beyond the frontier on every sorted list.
func (t *TACursor) threshold() float64 {
	for _, f := range t.frontier {
		if math.IsInf(f, -1) {
			return math.Inf(-1)
		}
	}
	return t.axis.ScoreAxis(t.frontier)
}

// bestSeen returns the lowest-score unemitted tuple observed so far.
func (t *TACursor) bestSeen() (types.Tuple, float64, bool) {
	var best types.Tuple
	bestScore := 0.0
	have := false
	for id, tt := range t.seen {
		if t.emitted[id] {
			continue
		}
		s := t.axis.ScoreTuple(tt)
		if !have || s < bestScore || (s == bestScore && tt.ID < best.ID) {
			best, bestScore, have = tt, s, true
		}
	}
	return best, bestScore, have
}

// Next implements Cursor.
func (t *TACursor) Next() (types.Tuple, bool, error) {
	for {
		best, bestScore, have := t.bestSeen()
		if t.anyDone {
			// Every matching tuple has been enumerated through the
			// exhausted attribute's cursor.
			if !have {
				return types.Tuple{}, false, nil
			}
			t.emitted[best.ID] = true
			return best, true, nil
		}
		if have && bestScore <= t.threshold() {
			t.emitted[best.ID] = true
			return best, true, nil
		}
		// Advance sorted access round-robin.
		n := len(t.cursors)
		if len(t.access) > 0 {
			n = len(t.access)
		}
		j := t.rr % n
		t.rr++
		if !t.liveAttr[j] {
			continue
		}
		var (
			tt  types.Tuple
			ok  bool
			err error
		)
		if len(t.access) > 0 {
			tt, ok, err = t.access[j].Next()
		} else {
			tt, ok, err = t.cursors[j].Next()
		}
		if err != nil {
			return types.Tuple{}, false, err
		}
		if !ok {
			t.liveAttr[j] = false
			t.anyDone = true
			continue
		}
		t.frontier[j] = float64(t.axis.R.Dir(j)) * tt.Ord[t.axis.Attrs()[j]]
		if _, dup := t.seen[tt.ID]; !dup {
			t.seen[tt.ID] = tt
		}
	}
}
