// Package core implements the paper's contribution: the query reranking
// algorithms 1D-BASELINE, 1D-BINARY, 1D-RERANK (§3), TA-over-1D-RERANK
// (§4.1), MD-BASELINE (§4.2), MD-BINARY (§4.3) and MD-RERANK (§4.4), all
// exposed through an incremental Get-Next interface (§2.2).
//
// # Concurrency model: Knowledge and Sessions
//
// An Engine is the long-lived state of one reranking service instance bound
// to one hidden database. It is split into two layers:
//
//   - The Knowledge layer (see knowledge.go) holds everything that amortizes
//     across user queries — the cross-query answer history (§3.1.1
//     "Leveraging History"), the on-the-fly dense-region indexes (§3.2.2,
//     §4.4) and the upstream-query counter. It is guarded internally and
//     safe for concurrent use, including live snapshotting.
//   - A Session (see session.go) holds the per-request state: the
//     upstream-cost ledger for one unit of work. Cursors — per-(query,
//     ranking function) Get-Next iterators — are created from sessions and
//     carry all traversal state themselves.
//
// Arbitrarily many sessions from arbitrarily many goroutines may run
// 1D-RERANK / MD-RERANK / TA concurrently against the same engine; each
// individual cursor is a sequential object (drive it from one goroutine at
// a time). A probe coalescing layer (see coalesce.go) deduplicates
// identical in-flight upstream probes and replays recent complete answers,
// so concurrent users with overlapping queries do not multiply upstream
// cost.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/acquire"
	"repro/internal/hidden"
	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// Variant selects which algorithm family a cursor runs.
type Variant int

const (
	// Baseline is 1D-BASELINE / MD-BASELINE.
	Baseline Variant = iota
	// Binary is 1D-BINARY / MD-BINARY.
	Binary
	// Rerank is 1D-RERANK / MD-RERANK (the paper's full algorithms,
	// with on-the-fly dense indexing).
	Rerank
	// TAOverOneD is the §4.1 strawman: Fagin's threshold algorithm
	// driven by per-attribute 1D-RERANK Get-Next cursors. Only valid for
	// multi-attribute rankers.
	TAOverOneD
)

// String names the variant as the paper does.
func (v Variant) String() string {
	switch v {
	case Baseline:
		return "BASELINE"
	case Binary:
		return "BINARY"
	case Rerank:
		return "RERANK"
	case TAOverOneD:
		return "TA-over-1D-RERANK"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options tune an Engine. The zero value enables everything with the
// paper's default parameters.
type Options struct {
	// N is the (estimated) database size used by the dense-region
	// thresholds. Required for Rerank variants; when 0 dense indexing is
	// disabled and Rerank degrades to Binary plus baseline finishing.
	N int
	// S is the dense-region population parameter; 0 means the paper's
	// default s = k·log2(n).
	S float64
	// C is the density-factor parameter; 0 means the paper's default
	// c = n.
	C float64
	// AssumeGeneralPositioning skips the §5 tie-handling point queries.
	// Only safe when every ranked attribute's values are unique.
	AssumeGeneralPositioning bool
	// DisableHistory turns off cross-query answer reuse (ablation).
	DisableHistory bool
	// DisableIndex turns off dense-region indexing (ablation).
	DisableIndex bool
	// DisableVirtualTuples turns off §4.3.2 virtual-tuple pruning in
	// MD-BINARY/MD-RERANK (ablation).
	DisableVirtualTuples bool
	// DisableDominationProbe turns off §4.3.2 direct domination
	// detection (ablation).
	DisableDominationProbe bool
	// MaxQueriesPerOp bounds probes attempted by a single Get-Next
	// call (0 = unlimited); exceeding it returns ErrBudget. The bound is
	// charged per probe attempt, before coalescing, so it is stable
	// regardless of cache state.
	MaxQueriesPerOp int64
	// DisableCoalescing turns off the probe coalescing layer (in-flight
	// dedup and the complete-answer LRU). Use it when the upstream corpus
	// can change during the engine's lifetime, or for paper-faithful
	// per-probe cost accounting in experiments.
	DisableCoalescing bool
	// ProbeCacheSize bounds the complete-answer LRU: 0 means the default
	// (1024 probe results), negative disables the cache while keeping
	// in-flight dedup.
	ProbeCacheSize int
	// MaxConcurrentSessions bounds the total weight of sessions admitted
	// through Engine.TryAdmit at any instant (0 = unlimited). It is the
	// serving tier's backpressure knob: the HTTP layer reserves one slot
	// per request (N for an N-item batch) before creating sessions and
	// sheds the excess with 429 + Retry-After. Sessions created directly
	// via NewSession (library use, experiments) bypass the gate.
	MaxConcurrentSessions int
	// SearchParallelism is the speculative probe width W of the MD search:
	// each best-first round issues up to W frontier probes concurrently
	// through the coalescing layer, bounded by a per-session worker pool.
	// 0 or 1 means sequential. The emitted tuple sequence is identical for
	// every W; speculation can spend extra upstream probes (reported by
	// SpeculationStats), which hide upstream round-trip latency. Ignored
	// (sequential search) when MaxQueriesPerOp is set: under a binding
	// budget, racing speculative charges would make budget exhaustion
	// nondeterministic.
	SearchParallelism int
}

// Engine is one reranking service instance bound to a hidden database. The
// engine itself is safe for concurrent use: shared state lives in the
// internally-guarded Knowledge layer, and per-request state in Sessions.
type Engine struct {
	db   hidden.Database
	opts Options

	know   *Knowledge
	probes *coalescer     // issue-path dedup + complete-answer cache
	crawls *flightGroup   // dense-region crawl dedup
	adm    *admissionGate // session admission (MaxConcurrentSessions)

	// Speculative-search accounting: probes issued beyond the first slot
	// of an MD search round, and the subset invalidated by a threshold
	// improvement before their result could be used.
	specIssued atomic.Int64
	specWasted atomic.Int64

	// Sentinel drift detection (see sentinel.go): digests of the fixed
	// sentinel probe set from the previous pass, compared each pass.
	sentMu      sync.Mutex
	sentDigests map[string]uint64
	sentPasses  atomic.Int64
	sentBumps   atomic.Int64
	sentLast    atomic.Int64 // unix seconds of the last completed pass
}

// NewEngine builds an engine over db.
func NewEngine(db hidden.Database, opts Options) *Engine {
	// The knowledge layer is built first so the probe cache can compact
	// its answers into the history store's column layout and shared
	// string dictionary.
	know := newKnowledge(db.Schema())
	return &Engine{
		db:     db,
		opts:   opts,
		know:   know,
		probes: newCoalescer(db, opts.ProbeCacheSize, opts.DisableCoalescing, know.hist.Layout(), know.hist.Dict(), know.Epoch),
		crawls: newFlightGroup(),
		adm:    newAdmissionGate(opts.MaxConcurrentSessions),
	}
}

// DB returns the engine's database.
func (e *Engine) DB() hidden.Database { return e.db }

// Queries returns the number of database queries issued through the engine
// (including dense-index crawling). Probes deduplicated by the coalescing
// layer count once.
func (e *Engine) Queries() int64 { return e.know.Queries() }

// Knowledge returns the engine's shared, concurrency-safe knowledge layer.
func (e *Engine) Knowledge() *Knowledge { return e.know }

// History returns the engine's cross-query tuple cache.
func (e *Engine) History() *history.Store { return e.know.hist }

// DenseIndex1D exposes the 1D dense index for inspection by experiments.
func (e *Engine) DenseIndex1D() *index.Dense1D { return e.know.dense1 }

// ProbeCacheEntries returns the number of complete probe answers currently
// held by the coalescing layer's LRU (0 when coalescing or the cache is
// disabled). Snapshots persist these entries, so after a warm restart this
// reports how many probes the engine can answer for zero upstream cost.
func (e *Engine) ProbeCacheEntries() int { return e.probes.cacheSize() }

// ProbeCacheBytes approximates the resident bytes of columnar-encoded probe
// answers in the coalescing LRU.
func (e *Engine) ProbeCacheBytes() int64 { return e.probes.cacheBytes() }

// StorageStats returns the history store's columnar storage counters.
func (e *Engine) StorageStats() history.StorageStats { return e.know.hist.StorageStats() }

// Heat returns the engine's request-window heat sketch — the demand signal
// the background acquirer mines. Safe for concurrent use.
func (e *Engine) Heat() *acquire.Sketch { return e.know.heat }

// RecordHeat feeds a user query's bounded range predicates into the heat
// sketch. Call it from the request path after validation: the cost is one
// short mutex acquisition per bounded range, no upstream work.
func (e *Engine) RecordHeat(q query.Query) {
	for attr, iv := range q.Ranges {
		if iv.Empty() || iv.Unbounded() {
			continue
		}
		e.know.heat.Observe(attr, iv.Lo, iv.Hi)
	}
}

// WindowWarm reports whether the 1D window [iv] on attr is already fully
// covered by a crawled dense region AT THE CURRENT EPOCH — acquired
// knowledge that survives restarts, so a restarted acquirer skips instead
// of re-crawling. A covering region learned under an earlier epoch does
// not count as warm: the background acquirer treats such windows as cold
// again, refreshing stale knowledge from idle capacity alongside genuinely
// un-crawled windows.
func (e *Engine) WindowWarm(attr int, iv types.Interval) bool {
	reg, ok := e.know.dense1.Lookup(attr, iv)
	return ok && reg.Epoch >= e.know.Epoch()
}

// Epoch returns the namespace's current knowledge epoch.
func (e *Engine) Epoch() int64 { return e.know.Epoch() }

// RevalidationStats returns the engine-lifetime lazy re-validation
// outcomes, combining dense-region and probe-cache surfaces: stale entries
// confirmed unchanged (promoted to the current epoch) and stale entries
// whose confirming probe showed drift (evicted).
func (e *Engine) RevalidationStats() (promoted, evicted int64) {
	cp, ce := e.probes.revalStats()
	return e.know.denseRevalPromoted.Load() + cp, e.know.denseRevalEvicted.Load() + ce
}

// MDDenseRegions returns the total number of crawled MD dense regions across
// all ranked-attribute subsets. Snapshots (v3+) persist these regions, so
// after a warm restart this reports how many boxes MD-RERANK can answer
// locally for zero upstream cost.
func (e *Engine) MDDenseRegions() int { return e.know.MDRegions() }

// MDBucketStats aggregates the MD dense indexes' centroid-grid shape across
// all ranked-attribute subsets.
func (e *Engine) MDBucketStats() index.GridStats { return e.know.MDBucketStats() }

// searchWidth returns the MD search's speculative probe width (≥ 1). A
// configured per-op budget forces sequential search: under a binding
// budget, concurrent speculative charges would race the mandatory probes
// for the remaining attempts, making WHICH probe exhausts the budget — and
// hence whether an op fails — depend on goroutine interleaving. Sequential
// search keeps MaxQueriesPerOp semantics exactly deterministic.
func (e *Engine) searchWidth() int {
	if e.opts.SearchParallelism > 1 && e.opts.MaxQueriesPerOp <= 0 {
		return e.opts.SearchParallelism
	}
	return 1
}

// SearchParallelism returns the EFFECTIVE speculative probe width (≥ 1):
// the configured Options.SearchParallelism, forced to 1 when a per-op
// budget makes speculation nondeterministic (see searchWidth).
func (e *Engine) SearchParallelism() int { return e.searchWidth() }

// SpeculationStats returns the engine-lifetime count of speculative MD
// probes issued (round slots beyond the first) and the subset wasted (their
// overflow result was invalidated by a threshold improvement from an earlier
// slot of the same round, so the box had to be re-probed tightened). Wasted
// probes' pages still land in the shared history and probe LRU, so their
// upstream cost is never paid twice.
func (e *Engine) SpeculationStats() (issued, wasted int64) {
	return e.specIssued.Load(), e.specWasted.Load()
}

// sParam returns the dense-region population parameter s (§3.2.2), defaulting
// to k·log2(n).
func (e *Engine) sParam() float64 {
	if e.opts.S > 0 {
		return e.opts.S
	}
	n := float64(e.opts.N)
	if n < 2 {
		n = 2
	}
	return float64(e.db.K()) * math.Log2(n)
}

// cParam returns the density factor c, defaulting to n.
func (e *Engine) cParam() float64 {
	if e.opts.C > 0 {
		return e.opts.C
	}
	return float64(e.opts.N)
}

// denseWidth1D returns the 1D dense-region width threshold
// |V(Ai)|·(s/n)/c for the given attribute, or 0 when indexing is disabled.
func (e *Engine) denseWidth1D(attr int) float64 {
	if e.opts.DisableIndex || e.opts.N <= 0 {
		return 0
	}
	d := e.db.Schema().Domain(attr)
	return d.Width() * (e.sParam() / float64(e.opts.N)) / e.cParam()
}

// denseVolumeMD returns the MD dense-region volume threshold |V|·(s/n)/c
// over the given ranked attributes, or 0 when indexing is disabled.
func (e *Engine) denseVolumeMD(attrs []int) float64 {
	if e.opts.DisableIndex || e.opts.N <= 0 {
		return 0
	}
	vol := 1.0
	for _, a := range attrs {
		vol *= e.db.Schema().Domain(a).Width()
	}
	return vol * (e.sParam() / float64(e.opts.N)) / e.cParam()
}

func attrsKey(attrs []int) string {
	s := append([]int(nil), attrs...)
	sort.Ints(s)
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = fmt.Sprint(a)
	}
	return strings.Join(parts, ",")
}

// Cursor is the incremental Get-Next interface of §2.2: each call returns
// the next-best tuple of the user query under the user ranking function.
// ok is false once the query's matching tuples are exhausted.
type Cursor interface {
	Next() (t types.Tuple, ok bool, err error)
}

// TopH drains up to h tuples from a cursor. Non-positive h yields an empty
// result without touching the cursor.
func TopH(c Cursor, h int) ([]types.Tuple, error) {
	if h <= 0 {
		return nil, nil
	}
	out := make([]types.Tuple, 0, h)
	for len(out) < h {
		t, ok, err := c.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out, nil
}

// ErrBudget is returned when a single Get-Next exceeds MaxQueriesPerOp.
var ErrBudget = fmt.Errorf("core: per-operation query budget exhausted")

// NewCursor builds a cursor running the given algorithm variant for user
// query q under ranker r, in a fresh single-cursor session. Callers that
// need a per-request cost ledger spanning several cursors should create a
// Session explicitly.
func (e *Engine) NewCursor(q query.Query, r ranking.Ranker, v Variant) (Cursor, error) {
	return e.NewSession().NewCursor(q, r, v)
}
