// Regression tests for the coalescer's failure semantics: a transient
// upstream failure belongs to the ONE caller whose probe actually failed.
// Before the retry fix, flightGroup.Do handed the leader's error to every
// coalesced follower, fanning a single injected failure out to N unrelated
// requests that never touched the upstream.

package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/types"
)

// TestFlightGroupFollowerRetriesAfterLeaderFailure pins the retry contract
// at the flight-group level with a controlled failing leader: a caller that
// coalesces onto a failing flight must not inherit the leader's error — it
// re-issues as a new leader and succeeds.
func TestFlightGroupFollowerRetriesAfterLeaderFailure(t *testing.T) {
	g := newFlightGroup()
	leaderErr := errors.New("leader-only transient failure")
	block := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do("k", func() (hidden.Result, error) {
			<-block
			return hidden.Result{}, leaderErr
		})
		leaderDone <- err
	}()
	for {
		g.mu.Lock()
		_, inflight := g.inflight["k"]
		g.mu.Unlock()
		if inflight {
			break
		}
	}
	type outcome struct {
		leader bool
		ran    bool
		err    error
	}
	res := make(chan outcome, 1)
	go func() {
		ran := false
		_, leader, err := g.Do("k", func() (hidden.Result, error) {
			ran = true
			return hidden.Result{Tuples: []types.Tuple{{ID: 1}}}, nil
		})
		res <- outcome{leader, ran, err}
	}()
	// Let the follower park on the flight, then fail the leader.
	time.Sleep(time.Millisecond)
	close(block)
	if err := <-leaderDone; !errors.Is(err, leaderErr) {
		t.Fatalf("leader's own error rewritten: %v", err)
	}
	o := <-res
	if o.err != nil {
		t.Fatalf("follower inherited the leader's failure: %v", o.err)
	}
	if !o.leader || !o.ran {
		t.Fatalf("follower did not re-issue after the failed flight: leader=%v ran=%v", o.leader, o.ran)
	}
}

// TestCoalescedTransientFailuresDoNotFanOut hammers one engine from many
// goroutines over a tiny query set through a FlakyDB, so injected transient
// failures regularly hit flights with coalesced followers. The invariant the
// retry fix establishes: every error a caller observes is from its OWN
// upstream attempt, so the number of caller-visible errors equals the number
// of injected failures — no fan-out, and no failure silently swallowed.
func TestCoalescedTransientFailuresDoNotFanOut(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db, _ := newTestDB(t, rng, 2, 400, 10, false, systemRankers(2)[0])
	fdb := &hidden.FlakyDB{DB: &slowDB{inner: db, delay: 200 * time.Microsecond}, FailEvery: 3}
	// No probe cache: every probe must go through a flight, so injected
	// failures keep hitting coalesced groups for the whole test.
	e := NewEngine(fdb, Options{N: 400, ProbeCacheSize: -1})

	queries := []query.Query{
		query.New(),
		query.New().WithCat("cat", "x"),
		query.New().WithCat("cat", "y"),
		query.New().WithCat("cat", "z"),
	}
	const workers, iters = 8, 60
	var wg sync.WaitGroup
	var callerErrs sync.Map
	errCount := int64(0)
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for i := 0; i < iters; i++ {
				_, err := s.issue(queries[(w+i)%len(queries)])
				if err != nil {
					if !errors.Is(err, hidden.ErrTransient) {
						callerErrs.Store(err.Error(), true)
					}
					mu.Lock()
					errCount++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	callerErrs.Range(func(k, _ any) bool {
		t.Errorf("caller observed a non-injected error: %v", k)
		return true
	})
	if errCount != fdb.Injected() {
		t.Fatalf("callers observed %d errors for %d injected failures: "+
			"fan-out (errors > injected) means followers inherited a leader's failure; "+
			"fewer means a real failure was swallowed", errCount, fdb.Injected())
	}
	if fdb.Injected() == 0 {
		t.Fatal("no failures injected; test exercised nothing")
	}
}
