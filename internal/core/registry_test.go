// Registry unit tests: naming, default semantics, shared weighted
// admission, and cross-namespace knowledge isolation at the engine level.

package core

import (
	"errors"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

func registryDB(t *testing.T, seed int64) *hidden.DB {
	t.Helper()
	schema, err := types.NewSchema([]types.Attribute{
		{Name: "A0", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 500
	tuples := make([]types.Tuple, n)
	rng := seed
	for i := range tuples {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := float64(uint64(rng)%10_000) / 100
		tuples[i] = types.Tuple{ID: i, Ord: []float64{v}}
	}
	return hidden.MustDB(schema, tuples, hidden.Options{K: 10})
}

func TestRegistryRegisterResolveDeregister(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	if r.Default() != nil || r.Len() != 0 {
		t.Fatal("fresh registry not empty")
	}
	a, err := r.Register("alpha", registryDB(t, 1), NamespaceConfig{Engine: Options{N: 500}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Register("beta", registryDB(t, 2), NamespaceConfig{Engine: Options{N: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("alpha", registryDB(t, 3), NamespaceConfig{}); !errors.Is(err, ErrNamespaceExists) {
		t.Fatalf("duplicate register: %v, want ErrNamespaceExists", err)
	}

	// First registered is the default, and the empty name resolves to it.
	if r.Default() != a {
		t.Fatal("default is not the first registered namespace")
	}
	if ns, ok := r.Resolve(""); !ok || ns != a {
		t.Fatal("empty name did not resolve to the default")
	}
	if ns, ok := r.Resolve("beta"); !ok || ns != b {
		t.Fatal("beta did not resolve")
	}
	if _, ok := r.Resolve("gamma"); ok {
		t.Fatal("unknown name resolved")
	}
	if got := r.List(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("List() = %v, want [alpha beta]", got)
	}

	// The default is pinned while other namespaces remain.
	if _, err := r.Deregister("alpha"); !errors.Is(err, ErrNamespaceDefault) {
		t.Fatalf("deregister default: %v, want ErrNamespaceDefault", err)
	}
	if _, err := r.Deregister("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deregister("beta"); !errors.Is(err, ErrNamespaceUnknown) {
		t.Fatalf("double deregister: %v, want ErrNamespaceUnknown", err)
	}
	if _, err := r.Deregister("alpha"); err != nil { // last one may go
		t.Fatal(err)
	}
	if r.Default() != nil || r.Len() != 0 {
		t.Fatal("registry not empty after removing every namespace")
	}
}

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	for _, bad := range []string{"", "UPPER", "has space", "a/b", "../evil", ".hidden", "-lead", "_lead",
		"tooooooooooooooooooooooooooooooooooooooooooooooooooooooooooo-long"} {
		if _, err := r.Register(bad, registryDB(t, 1), NamespaceConfig{}); err == nil {
			t.Errorf("Register(%q) accepted an invalid name", bad)
		}
	}
	for _, good := range []string{"a", "diamonds", "yahoo-autos", "v2.corpus", "shard_07"} {
		if _, err := r.Register(good, registryDB(t, 1), NamespaceConfig{}); err != nil {
			t.Errorf("Register(%q): %v", good, err)
		}
	}
}

func TestRegistrySharedWeightedAdmission(t *testing.T) {
	r := NewRegistry(RegistryOptions{MaxConcurrentSessions: 6})
	light, err := r.Register("light", registryDB(t, 1), NamespaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := r.Register("heavy", registryDB(t, 2), NamespaceConfig{AdmissionWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.SessionCapacity(); got != 6 {
		t.Fatalf("SessionCapacity() = %d, want 6", got)
	}

	// One heavy session draws 3 of the 6 shared slots.
	relH, ok := r.TryAdmit(heavy, 1)
	if !ok {
		t.Fatal("heavy admission rejected with free capacity")
	}
	if got := r.SessionsInFlight(); got != 3 {
		t.Fatalf("in-flight weight %d after one heavy session, want 3", got)
	}
	// Three light sessions fill the rest; the fourth is shed.
	var rels []func()
	for i := 0; i < 3; i++ {
		rel, ok := r.TryAdmit(light, 1)
		if !ok {
			t.Fatalf("light session %d rejected with free capacity", i)
		}
		rels = append(rels, rel)
	}
	if _, ok := r.TryAdmit(light, 1); ok {
		t.Fatal("admission exceeded the shared capacity")
	}
	// Releasing the heavy session frees room for a weight-3 batch, and
	// release is idempotent.
	relH()
	relH()
	if got := r.SessionsInFlight(); got != 3 {
		t.Fatalf("in-flight weight %d after heavy release, want 3", got)
	}
	relB, ok := r.TryAdmit(light, 3)
	if !ok {
		t.Fatal("weight-3 batch rejected with exactly enough capacity")
	}
	relB()
	for _, rel := range rels {
		rel()
	}
	if got := r.SessionsInFlight(); got != 0 {
		t.Fatalf("in-flight weight %d after releasing everything, want 0", got)
	}
}

// TestRegistryNamespaceIsolation pins the core isolation property: queries
// against one namespace never touch another's knowledge, ledgers, or
// upstream.
func TestRegistryNamespaceIsolation(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	dbA, dbB := registryDB(t, 11), registryDB(t, 22)
	a, err := r.Register("a", dbA, NamespaceConfig{Engine: Options{N: 500}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Register("b", dbB, NamespaceConfig{Engine: Options{N: 500}})
	if err != nil {
		t.Fatal(err)
	}

	q := query.New().WithRange(0, types.Interval{Lo: 20, Hi: 80})
	rk := ranking.NewSingle("price", 0, ranking.Asc)
	cur, err := a.Engine().NewCursor(q, rk, Rerank)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TopH(cur, 5); err != nil {
		t.Fatal(err)
	}
	if a.Engine().Queries() == 0 {
		t.Fatal("precondition: namespace a issued no upstream queries")
	}
	if got := b.Engine().Queries(); got != 0 {
		t.Fatalf("namespace b's ledger moved (%d) from a's traffic", got)
	}
	if got := dbB.QueryCount(); got != 0 {
		t.Fatalf("namespace b's upstream saw %d queries from a's traffic", got)
	}
	if got := b.Engine().History().Size(); got != 0 {
		t.Fatalf("namespace b's history gained %d tuples from a's traffic", got)
	}
	if got := b.Engine().ProbeCacheEntries(); got != 0 {
		t.Fatalf("namespace b's probe cache gained %d entries from a's traffic", got)
	}

	// The same probe against b is a cold miss there: isolation means no
	// cross-namespace cache hits even for identical queries.
	before := b.Engine().Queries()
	cur, err = b.Engine().NewCursor(q, rk, Rerank)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TopH(cur, 5); err != nil {
		t.Fatal(err)
	}
	if b.Engine().Queries() == before {
		t.Fatal("identical query on namespace b cost nothing: knowledge leaked across namespaces")
	}
}
