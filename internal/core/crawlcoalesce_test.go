package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/types"
)

// slowDB delays every TopK so concurrent identical probes genuinely overlap
// in flight, and counts the calls that reach it.
type slowDB struct {
	inner hidden.Database
	delay time.Duration
	calls atomic.Int64
}

func (s *slowDB) TopK(q query.Query) (hidden.Result, error) {
	s.calls.Add(1)
	time.Sleep(s.delay)
	return s.inner.TopK(q)
}

func (s *slowDB) K() int                { return s.inner.K() }
func (s *slowDB) Schema() *types.Schema { return s.inner.Schema() }

// TestCrawlWarmRepeat: crawl probes route through the engine's coalescer, so
// a repeat crawl of the same region replays every cached complete sub-answer
// for free and re-issues only the overflowing (internal-node) probes.
func TestCrawlWarmRepeat(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	db, all := newTestDB(t, rng, 2, 600, 5, false, nil)
	e := NewEngine(db, Options{N: 600})
	q := query.New().WithRange(0, types.ClosedInterval(10, 45))

	sess1 := e.NewSession()
	got1, err := sess1.CrawlAll(q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tu := range all {
		if q.Matches(tu) {
			want++
		}
	}
	if len(got1) != want {
		t.Fatalf("cold crawl retrieved %d tuples, want %d", len(got1), want)
	}
	cost1 := sess1.Queries()
	if cost1 == 0 {
		t.Fatal("cold crawl cost 0 queries")
	}

	sess2 := e.NewSession()
	got2, err := sess2.CrawlAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(got1) {
		t.Fatalf("warm crawl retrieved %d tuples, want %d", len(got2), len(got1))
	}
	for i := range got2 {
		if got2[i].ID != got1[i].ID {
			t.Fatalf("warm crawl tuple %d has ID %d, want %d", i, got2[i].ID, got1[i].ID)
		}
	}
	cost2 := sess2.Queries()
	if cost2 >= cost1 {
		t.Errorf("warm repeat crawl cost %d, want below the cold cost %d (complete sub-answers must come from the probe LRU)", cost2, cost1)
	}
	if e.Queries() != db.QueryCount() {
		t.Errorf("engine counted %d queries, upstream answered %d", e.Queries(), db.QueryCount())
	}
	if sess1.Queries()+sess2.Queries() != e.Queries() {
		t.Errorf("session ledgers sum to %d, engine counted %d", sess1.Queries()+sess2.Queries(), e.Queries())
	}
}

// TestConcurrentOverlappingCrawlsDedup (-race): concurrent crawls of the
// same and overlapping regions dedup at probe granularity, not just at
// whole-crawl leadership — identical in-flight sub-queries are issued once
// and cached complete answers are shared. Accounting must stay exact: the
// engine counter equals the upstream's own count, and the deduplicated
// probes are charged once, to the sessions that actually issued them.
func TestConcurrentOverlappingCrawlsDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	inner, all := newTestDB(t, rng, 2, 600, 5, false, nil)
	db := &slowDB{inner: inner, delay: 2 * time.Millisecond}

	// Reference cost: one crawl of the shared query, alone, cold.
	ref := NewEngine(db, Options{N: 600})
	q := query.New().WithRange(0, types.ClosedInterval(20, 55))
	if _, err := ref.NewSession().CrawlAll(q); err != nil {
		t.Fatal(err)
	}
	cost1 := db.calls.Load()
	if cost1 == 0 {
		t.Fatal("reference crawl cost 0 probes")
	}

	want := 0
	for _, tu := range all {
		if q.Matches(tu) {
			want++
		}
	}

	db.calls.Store(0)
	e := NewEngine(db, Options{N: 600})
	const g = 8
	sessions := make([]*Session, g)
	var wg sync.WaitGroup
	errs := make(chan error, g)
	for i := 0; i < g; i++ {
		sessions[i] = e.NewSession()
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			got, err := sess.CrawlAll(q)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != want {
				t.Errorf("concurrent crawl retrieved %d tuples, want %d", len(got), want)
			}
		}(sessions[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := db.calls.Load()
	if total >= int64(g)*cost1 {
		t.Errorf("%d concurrent identical crawls cost %d upstream probes, want below %d (no probe-level dedup happened)",
			g, total, int64(g)*cost1)
	}
	if e.Queries() != total {
		t.Errorf("engine counted %d queries, upstream answered %d", e.Queries(), total)
	}
	var sum int64
	for _, s := range sessions {
		sum += s.Queries()
	}
	if sum != total {
		t.Errorf("session ledgers sum to %d, upstream answered %d (deduped probes must be charged exactly once)", sum, total)
	}
}

// TestConcurrentDistinctCrawls (-race): crawls of disjoint regions running
// concurrently must not corrupt each other's results or accounting.
func TestConcurrentDistinctCrawls(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	inner, all := newTestDB(t, rng, 2, 600, 5, true, systemRankers(2)[1])
	db := &slowDB{inner: inner, delay: time.Millisecond}
	e := NewEngine(db, Options{N: 600})

	queries := []query.Query{
		query.New().WithRange(0, types.ClosedInterval(0, 30)),
		query.New().WithRange(0, types.ClosedInterval(30, 60)),
		query.New().WithRange(1, types.ClosedInterval(10, 40)).WithCat("cat", "x"),
		query.New().WithRange(1, types.ClosedInterval(35, 70)),
	}
	var wg sync.WaitGroup
	sessions := make([]*Session, len(queries))
	errs := make(chan error, len(queries))
	for i, qq := range queries {
		sessions[i] = e.NewSession()
		wg.Add(1)
		go func(sess *Session, qq query.Query) {
			defer wg.Done()
			got, err := sess.CrawlAll(qq)
			if err != nil {
				errs <- err
				return
			}
			want := 0
			for _, tu := range all {
				if qq.Matches(tu) {
					want++
				}
			}
			if len(got) != want {
				t.Errorf("crawl of %v retrieved %d tuples, want %d", qq, len(got), want)
			}
		}(sessions[i], qq)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if e.Queries() != db.calls.Load() {
		t.Errorf("engine counted %d queries, upstream answered %d", e.Queries(), db.calls.Load())
	}
	var sum int64
	for _, s := range sessions {
		sum += s.Queries()
	}
	if sum != e.Queries() {
		t.Errorf("session ledgers sum to %d, engine counted %d", sum, e.Queries())
	}
}
