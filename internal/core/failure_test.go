package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
)

// TestTransientFailurePropagates: an injected upstream failure must surface
// as an error from Next, never as a wrong answer, for every algorithm.
func TestTransientFailurePropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db, all := newTestDB(t, rng, 2, 300, 5, false, systemRankers(2)[1])
	for _, v := range []Variant{Baseline, Binary, Rerank, TAOverOneD} {
		flaky := &hidden.FlakyDB{DB: db, FailEvery: 7}
		e := NewEngine(flaky, Options{N: 300})
		r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 1})
		cur, err := e.NewCursor(query.New(), r, v)
		if err != nil {
			t.Fatal(err)
		}
		sawError := false
		var got []float64
		for i := 0; i < 50; i++ {
			tp, ok, err := cur.Next()
			if err != nil {
				if !errors.Is(err, hidden.ErrTransient) {
					t.Fatalf("%v: unexpected error type: %v", v, err)
				}
				sawError = true
				break
			}
			if !ok {
				break
			}
			got = append(got, ranking.ScoreTuple(r, tp))
		}
		if !sawError && flaky.Injected() > 0 {
			t.Fatalf("%v: %d failures injected but none surfaced", v, flaky.Injected())
		}
		// Every answer produced BEFORE the failure must be correct.
		want := oracleTopH(all, query.New(), r, len(got))
		for i := range got {
			if got[i] != ranking.ScoreTuple(r, want[i]) {
				t.Fatalf("%v: answer %d wrong despite clean error: %g vs %g",
					v, i, got[i], ranking.ScoreTuple(r, want[i]))
			}
		}
	}
}

// TestRetryAfterFailure: once the upstream recovers, a FRESH cursor on the
// same engine must produce exact answers — the history gathered before the
// failure stays valid.
func TestRetryAfterFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	db, all := newTestDB(t, rng, 2, 300, 5, true, systemRankers(2)[2])
	flaky := &hidden.FlakyDB{DB: db, FailEvery: 5}
	e := NewEngine(flaky, Options{N: 300})
	r := ranking.MustLinear("u", []int{0, 1}, []float64{2, 1})
	cur, _ := e.NewCursor(query.New(), r, Rerank)
	for i := 0; i < 30; i++ {
		if _, ok, err := cur.Next(); err != nil || !ok {
			break
		}
	}
	// Upstream recovers.
	flaky.FailEvery = 0
	cur2, err := e.NewCursor(query.New(), r, Rerank)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopH(cur2, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopH(all, query.New(), r, 12)
	assertSameRanking(t, r, got, want, oracleTopH(all, query.New(), r, 1<<30))
}

// TestPerOpBudget: MaxQueriesPerOp must bound a single Get-Next and return
// ErrBudget rather than hanging on adversarial inputs.
func TestPerOpBudget(t *testing.T) {
	adv := hidden.NewAdversary(0, 1000, 100000, 1)
	e := NewEngine(adv, Options{N: 100000, MaxQueriesPerOp: 25})
	cur := e.NewOneDCursor(query.New(), 0, ranking.Asc, Baseline)
	_, _, err := cur.Next()
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget against the adversary, got %v", err)
	}
	if adv.QueryCount() > 30 {
		t.Fatalf("budget leak: %d queries issued", adv.QueryCount())
	}
}

// TestRateLimitSurfacesMidStream: when the upstream budget runs dry during
// incremental processing, the error must surface and prior answers remain
// exact.
func TestRateLimitSurfacesMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	schema := testSchema(2)
	tuples := genTuples(rng, schema, 400, false)
	db := hidden.MustDB(schema, tuples, hidden.Options{
		K: 5, Ranker: systemRankers(2)[1], QueryBudget: 30,
	})
	e := NewEngine(db, Options{N: 400})
	r := ranking.MustLinear("u", []int{0, 1}, []float64{1, 3})
	cur, _ := e.NewCursor(query.New(), r, Rerank)
	var got []float64
	var err error
	for {
		var tp struct{}
		_ = tp
		t2, ok, e2 := cur.Next()
		if e2 != nil {
			err = e2
			break
		}
		if !ok {
			break
		}
		got = append(got, ranking.ScoreTuple(r, t2))
	}
	if !errors.Is(err, hidden.ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	want := oracleTopH(tuples, query.New(), r, len(got))
	for i := range got {
		if got[i] != ranking.ScoreTuple(r, want[i]) {
			t.Fatalf("answer %d wrong before rate limit: %g vs %g",
				i, got[i], ranking.ScoreTuple(r, want[i]))
		}
	}
}
