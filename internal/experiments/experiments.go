// Package experiments regenerates every figure of the paper's evaluation
// (§6, Figures 6–17). Each runner returns a Figure — named series of
// (x, average query cost) points — that cmd/rerankbench renders as a text
// table and EXPERIMENTS.md compares against the published shapes.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hidden"
)

// Series is one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID     string // e.g. "fig6"
	Title  string
	XLabel string
	YLabel string
	XTicks []string // optional categorical x labels (Figure 9)
	Series []Series
	Notes  []string
}

// Render writes the figure as an aligned text table.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	nx := 0
	for _, s := range f.Series {
		if len(s.X) > nx {
			nx = len(s.X)
		}
	}
	for i := 0; i < nx; i++ {
		row := make([]string, 0, len(f.Series)+1)
		if len(f.XTicks) > i {
			row = append(row, f.XTicks[i])
		} else if len(f.Series) > 0 && len(f.Series[0].X) > i {
			row = append(row, trimFloat(f.Series[0].X[i]))
		} else {
			row = append(row, "")
		}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.2f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Config scales the experiments. The paper's full scale (n up to 100k, 10
// samples per size) takes minutes; the default is a faithful reduction that
// preserves every qualitative comparison.
type Config struct {
	Seed int64
	// Sizes are the database sizes for the impact-of-n figures.
	Sizes []int
	// Samples is the number of random samples per size (paper: 10).
	Samples int
	// DOTN is the size of the full synthetic DOT dataset to generate.
	DOTN int
	// BNN and YAN are the Blue Nile / Yahoo Autos dataset sizes.
	BNN, YAN int
	// WorkloadCount overrides per-figure workload sizes when > 0.
	WorkloadCount int
	// TopH is the number of answers retrieved in the top-h figures.
	TopH int
}

// Default returns the reduced-scale configuration used by `go test` and the
// default rerankbench run.
func Default() Config {
	return Config{
		Seed:    1602_05100,
		Sizes:   []int{2000, 4000, 6000, 8000, 10000},
		Samples: 3,
		DOTN:    12000,
		BNN:     8000,
		YAN:     6000,
		TopH:    100,
	}
}

// Paper returns the full-scale configuration matching §6.1 (slow).
func Paper() Config {
	return Config{
		Seed:    1602_05100,
		Sizes:   []int{20000, 40000, 60000, 80000, 100000},
		Samples: 10,
		DOTN:    457013,
		BNN:     117641,
		YAN:     13169,
		TopH:    100,
	}
}

// paperOpts returns engine options for paper-faithful cost accounting: the
// probe coalescing layer is disabled so every probe the algorithms issue is
// charged, exactly as the paper counts queries. (The service keeps
// coalescing on by default; the experiments measure the algorithms alone.)
func paperOpts(n int) core.Options {
	return core.Options{N: n, DisableCoalescing: true}
}

// avgCost runs fn against a fresh engine over db and returns queries/ops.
func avgCost(db *hidden.DB, ops int, fn func(e *core.Engine) error) (float64, error) {
	db.ResetCounter()
	e := core.NewEngine(db, paperOpts(db.Size()))
	if err := fn(e); err != nil {
		return 0, err
	}
	if ops == 0 {
		ops = 1
	}
	return float64(db.QueryCount()) / float64(ops), nil
}

// dotSamples draws cfg.Samples random sub-databases of the given size.
func dotSamples(cfg Config, ds *dataset.Dataset, size int, rng *rand.Rand) []*dataset.Dataset {
	out := make([]*dataset.Dataset, cfg.Samples)
	for i := range out {
		out[i] = ds.Sample(rng, size)
	}
	return out
}

// All runs every figure at the given configuration.
func All(cfg Config) ([]Figure, error) {
	runners := []func(Config) (Figure, error){
		Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12,
		Fig13, Fig14, Fig15, Fig16, Fig17,
	}
	figs := make([]Figure, 0, len(runners))
	for _, r := range runners {
		f, err := r(cfg)
		if err != nil {
			return figs, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// ByID returns the runner for a figure id like "fig6".
func ByID(id string) (func(Config) (Figure, error), bool) {
	m := map[string]func(Config) (Figure, error){
		"fig6": Fig6, "fig7": Fig7, "fig8": Fig8, "fig9": Fig9,
		"fig10": Fig10, "fig11": Fig11, "fig12": Fig12, "fig13": Fig13,
		"fig14": Fig14, "fig15": Fig15, "fig16": Fig16, "fig17": Fig17,
	}
	f, ok := m[id]
	return f, ok
}
