package experiments

import (
	"strings"
	"testing"
)

// tinyConfig keeps the per-figure smoke tests under a second or two.
func tinyConfig() Config {
	return Config{
		Seed:          160205100,
		Sizes:         []int{800, 1600},
		Samples:       1,
		DOTN:          3200,
		BNN:           2000,
		YAN:           1500,
		WorkloadCount: 12,
		TopH:          20,
	}
}

// TestEveryFigureRuns executes all twelve runners at tiny scale and checks
// structural invariants: non-empty monotone series, positive costs, and the
// qualitative relations that must hold at any scale.
func TestEveryFigureRuns(t *testing.T) {
	cfg := tinyConfig()
	figs, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 12 {
		t.Fatalf("got %d figures, want 12", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) == 0 {
			t.Errorf("%s: no series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Y) == 0 {
				t.Errorf("%s/%s: empty series", f.ID, s.Name)
			}
			for i, y := range s.Y {
				if y < 0 {
					t.Errorf("%s/%s[%d]: negative cost %g", f.ID, s.Name, i, y)
				}
			}
		}
		var sb strings.Builder
		f.Render(&sb)
		if !strings.Contains(sb.String(), f.ID) {
			t.Errorf("%s: Render output missing figure id", f.ID)
		}
	}
}

// TestCumulativeFiguresMonotone: figures 8, 11, 12, 15, 16, 17 report
// cumulative costs, which must be nondecreasing in h.
func TestCumulativeFiguresMonotone(t *testing.T) {
	cfg := tinyConfig()
	for _, id := range []string{"fig8", "fig11", "fig15", "fig16"} {
		runner, _ := ByID(id)
		fig, err := runner(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, s := range fig.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1]-1e-9 {
					t.Errorf("%s/%s: cumulative cost decreased at %d: %g -> %g",
						id, s.Name, i, s.Y[i-1], s.Y[i])
				}
			}
		}
	}
}

// TestTAWorseThanMD: the central MD claim must hold even at tiny scale.
func TestTAWorseThanMD(t *testing.T) {
	cfg := tinyConfig()
	fig, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ta, md float64
	for _, s := range fig.Series {
		last := s.Y[len(s.Y)-1]
		switch s.Name {
		case "TA over 1D-RERANK":
			ta = last
		case "MD-RERANK":
			md = last
		}
	}
	if !(ta > 2*md) {
		t.Errorf("TA (%g) should cost well over 2x MD-RERANK (%g)", ta, md)
	}
}

// TestSystemKOrdering: larger system-k must not cost more (fig8).
func TestSystemKOrdering(t *testing.T) {
	fig, err := Fig8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := func(name string) float64 {
		for _, s := range fig.Series {
			if s.Name == name {
				return s.Y[len(s.Y)-1]
			}
		}
		t.Fatalf("missing series %q", name)
		return 0
	}
	if last("system-k=1") < last("system-k=10") {
		t.Errorf("k=1 (%g) should cost at least k=10 (%g)", last("system-k=1"), last("system-k=10"))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig6"); !ok {
		t.Error("fig6 missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("fig99 present")
	}
}

func TestConfigs(t *testing.T) {
	d, p := Default(), Paper()
	if d.DOTN >= p.DOTN || p.DOTN != 457013 {
		t.Errorf("configs wrong: default DOTN=%d paper DOTN=%d", d.DOTN, p.DOTN)
	}
	if p.BNN != 117641 || p.YAN != 13169 {
		t.Errorf("paper-scale dataset sizes wrong: %d %d", p.BNN, p.YAN)
	}
}
