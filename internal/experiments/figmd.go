// MD experiments: Figures 13–17.

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hidden"
	"repro/internal/workload"
)

// mdWorkloadSpec is the §6.3 DOT MD workload: 32 queries, 8 unfiltered,
// random-weight linear functions over 2–3 ranked attributes (the full
// 8-attribute space makes the baselines intractable at any scale; the
// paper's cost figures are consistent with low-dimensional functions).
func mdWorkloadSpec(cfg Config) workload.Spec {
	count := 32
	if cfg.WorkloadCount > 0 {
		count = cfg.WorkloadCount
	}
	return workload.Spec{Count: count, NoFilter: count / 4, MinAttrs: 2, MaxAttrs: 3}
}

// runMDWorkload retrieves the top-h of every item with one shared engine.
func runMDWorkload(db *hidden.DB, items []workload.ItemMD, v core.Variant, h int) (float64, error) {
	return avgCost(db, len(items), func(e *core.Engine) error {
		for _, it := range items {
			cur, err := e.NewCursor(it.Q, it.R, v)
			if err != nil {
				return err
			}
			if _, err := core.TopH(cur, h); err != nil {
				return err
			}
		}
		return nil
	})
}

// figMDImpactOfN drives Figures 13 and 14.
func figMDImpactOfN(cfg Config, id, title string, sys func() hidden.SystemRanker) (Figure, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	full := dataset.DOT(cfg.Seed, cfg.DOTN)
	variants := []core.Variant{core.TAOverOneD, core.Baseline, core.Binary, core.Rerank}
	names := []string{"TA over 1D-RERANK", "MD-BASELINE", "MD-BINARY", "MD-RERANK"}
	fig := Figure{ID: id, Title: title, XLabel: "n", YLabel: "avg queries (top-1)"}
	for _, n := range names {
		fig.Series = append(fig.Series, Series{Name: n})
	}
	for _, size := range cfg.Sizes {
		samples := dotSamples(cfg, full, size, rng)
		sums := make([]float64, len(variants))
		for _, s := range samples {
			items := workload.MD(rand.New(rand.NewSource(cfg.Seed+int64(size))), s, mdWorkloadSpec(cfg))
			db := s.DBWith(10, sys())
			for vi, v := range variants {
				c, err := runMDWorkload(db, items, v, 1)
				if err != nil {
					return fig, fmt.Errorf("%s n=%d %v: %w", id, size, v, err)
				}
				sums[vi] += c
			}
		}
		for vi := range variants {
			fig.Series[vi].X = append(fig.Series[vi].X, float64(size))
			fig.Series[vi].Y = append(fig.Series[vi].Y, sums[vi]/float64(len(samples)))
		}
	}
	return fig, nil
}

// Fig13 reproduces "MD: Impact of n (SR1)".
func Fig13(cfg Config) (Figure, error) {
	return figMDImpactOfN(cfg, "fig13", "MD query cost vs database size, SR1 (positively correlated)", dataset.DOTSystemRanker1)
}

// Fig14 reproduces "MD: Impact of n (SR2)".
func Fig14(cfg Config) (Figure, error) {
	return figMDImpactOfN(cfg, "fig14", "MD query cost vs database size, SR2 (anti-correlated)", dataset.DOTSystemRanker2)
}

// Fig15 reproduces "MD: Impact of System-k": cumulative cost of top-1..10
// with MD-RERANK under system-k ∈ {1, 4, 7, 10}.
func Fig15(cfg Config) (Figure, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	full := dataset.DOT(cfg.Seed, cfg.DOTN)
	size := cfg.Sizes[len(cfg.Sizes)-1]
	sample := full.Sample(rng, size)
	items := workload.MD(rand.New(rand.NewSource(cfg.Seed+15)), sample, mdWorkloadSpec(cfg))
	fig := Figure{ID: "fig15", Title: "MD cumulative query cost for top-1..10 vs system-k (SR1, MD-RERANK)",
		XLabel: "top-h", YLabel: "avg cumulative queries"}
	for _, k := range []int{1, 4, 7, 10} {
		db := sample.DBWith(k, dataset.DOTSystemRanker1())
		db.ResetCounter()
		e := core.NewEngine(db, paperOpts(db.Size()))
		s := Series{Name: fmt.Sprintf("system-k=%d", k)}
		cursors := make([]core.Cursor, len(items))
		for i, it := range items {
			cur, err := e.NewCursor(it.Q, it.R, core.Rerank)
			if err != nil {
				return fig, err
			}
			cursors[i] = cur
		}
		for h := 1; h <= 10; h++ {
			for _, cur := range cursors {
				if _, _, err := cur.Next(); err != nil {
					return fig, err
				}
			}
			s.X = append(s.X, float64(h))
			s.Y = append(s.Y, float64(db.QueryCount())/float64(len(items)))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// figMDTopH drives the online MD experiments (Figures 16 and 17):
// MD-RERANK vs TA over 1D-RERANK, cumulative top-h cost.
func figMDTopH(cfg Config, id, title string, ds *dataset.Dataset, spec workload.Spec) (Figure, error) {
	items := workload.MD(rand.New(rand.NewSource(cfg.Seed+int64(len(id)*7))), ds, spec)
	fig := Figure{ID: id, Title: title, XLabel: "top-h", YLabel: "avg cumulative queries"}
	for _, v := range []core.Variant{core.Rerank, core.TAOverOneD} {
		name := "MD-RERANK"
		if v == core.TAOverOneD {
			name = "TA over 1D-RERANK"
		}
		db := ds.DB()
		db.ResetCounter()
		e := core.NewEngine(db, paperOpts(db.Size()))
		s := Series{Name: name}
		cursors := make([]core.Cursor, len(items))
		for i, it := range items {
			cur, err := e.NewCursor(it.Q, it.R, v)
			if err != nil {
				return fig, err
			}
			cursors[i] = cur
		}
		step := 10
		for h := step; h <= cfg.TopH; h += step {
			for _, cur := range cursors {
				for j := 0; j < step; j++ {
					if _, _, err := cur.Next(); err != nil {
						return fig, err
					}
				}
			}
			s.X = append(s.X, float64(h))
			s.Y = append(s.Y, float64(db.QueryCount())/float64(len(items)))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig16 reproduces "MD: Topk Query Cost (BN)".
func Fig16(cfg Config) (Figure, error) {
	ds := dataset.BlueNile(cfg.Seed, cfg.BNN)
	return figMDTopH(cfg, "fig16", "MD top-h query cost, Blue Nile", ds,
		workload.Spec{Count: 12, NoFilter: 3, MinAttrs: 2, MaxAttrs: 3})
}

// Fig17 reproduces "MD: Topk Query Cost (YA)".
func Fig17(cfg Config) (Figure, error) {
	ds := dataset.YahooAutos(cfg.Seed, cfg.YAN)
	return figMDTopH(cfg, "fig17", "MD top-h query cost, Yahoo! Autos", ds,
		workload.Spec{Count: 10, NoFilter: 2, MinAttrs: 2, MaxAttrs: 3})
}
