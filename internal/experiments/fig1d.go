// 1D experiments: Figures 6–12.

package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hidden"
	"repro/internal/workload"
)

// oneDWorkloadSpec is the §6.2 DOT workload: 32 queries, 25% unfiltered.
func oneDWorkloadSpec(cfg Config) workload.Spec {
	count := 32
	if cfg.WorkloadCount > 0 {
		count = cfg.WorkloadCount
	}
	return workload.Spec{Count: count, NoFilter: count / 4}
}

// run1DWorkload retrieves the top-h of every workload item through one
// shared engine and returns the average per-query cost.
func run1DWorkload(db *hidden.DB, items []workload.Item1D, v core.Variant, h int) (float64, error) {
	return avgCost(db, len(items), func(e *core.Engine) error {
		for _, it := range items {
			cur := e.NewOneDCursor(it.Q, it.Attr, it.Dir, v)
			if _, err := core.TopH(cur, h); err != nil {
				return err
			}
		}
		return nil
	})
}

// fig1DImpactOfN is the shared driver for Figures 6 and 7.
func fig1DImpactOfN(cfg Config, id, title string, sys func() hidden.SystemRanker) (Figure, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	full := dataset.DOT(cfg.Seed, cfg.DOTN)
	variants := []core.Variant{core.Baseline, core.Binary, core.Rerank}
	fig := Figure{ID: id, Title: title, XLabel: "n", YLabel: "avg queries (top-1)"}
	for _, v := range variants {
		fig.Series = append(fig.Series, Series{Name: "1D-" + v.String()})
	}
	for _, size := range cfg.Sizes {
		samples := dotSamples(cfg, full, size, rng)
		sums := make([]float64, len(variants))
		for _, s := range samples {
			items := workload.OneD(rand.New(rand.NewSource(cfg.Seed+int64(size))), s, oneDWorkloadSpec(cfg))
			db := s.DBWith(10, sys())
			for vi, v := range variants {
				c, err := run1DWorkload(db, items, v, 1)
				if err != nil {
					return fig, fmt.Errorf("%s n=%d %v: %w", id, size, v, err)
				}
				sums[vi] += c
			}
		}
		for vi := range variants {
			fig.Series[vi].X = append(fig.Series[vi].X, float64(size))
			fig.Series[vi].Y = append(fig.Series[vi].Y, sums[vi]/float64(len(samples)))
		}
	}
	return fig, nil
}

// Fig6 reproduces "1D: Impact of n (SR1)".
func Fig6(cfg Config) (Figure, error) {
	return fig1DImpactOfN(cfg, "fig6", "1D query cost vs database size, SR1 (positively correlated)", dataset.DOTSystemRanker1)
}

// Fig7 reproduces "1D: Impact of n (SR2)".
func Fig7(cfg Config) (Figure, error) {
	return fig1DImpactOfN(cfg, "fig7", "1D query cost vs database size, SR2 (anti-correlated)", dataset.DOTSystemRanker2)
}

// Fig8 reproduces "1D: Impact of System-k": cumulative cost of retrieving
// top-1..top-10 under system-k ∈ {1, 4, 7, 10}, 1D-RERANK, SR1.
func Fig8(cfg Config) (Figure, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	full := dataset.DOT(cfg.Seed, cfg.DOTN)
	size := cfg.Sizes[len(cfg.Sizes)-1]
	sample := full.Sample(rng, size)
	items := workload.OneD(rand.New(rand.NewSource(cfg.Seed+8)), sample, oneDWorkloadSpec(cfg))
	fig := Figure{ID: "fig8", Title: "1D cumulative query cost for top-1..10 vs system-k (SR1, 1D-RERANK)",
		XLabel: "top-h", YLabel: "avg cumulative queries"}
	for _, k := range []int{1, 4, 7, 10} {
		db := sample.DBWith(k, dataset.DOTSystemRanker1())
		s := Series{Name: fmt.Sprintf("system-k=%d", k)}
		// Measure cumulative cost per h with shared engine/workload.
		db.ResetCounter()
		e := core.NewEngine(db, paperOpts(db.Size()))
		cursors := make([]*core.OneDCursor, len(items))
		for i, it := range items {
			cursors[i] = e.NewOneDCursor(it.Q, it.Attr, it.Dir, core.Rerank)
		}
		for h := 1; h <= 10; h++ {
			for _, cur := range cursors {
				if _, _, err := cur.Next(); err != nil {
					return fig, err
				}
			}
			s.X = append(s.X, float64(h))
			s.Y = append(s.Y, float64(db.QueryCount())/float64(len(items)))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig9 reproduces "1D: Impact of s and c": one sweep varying c with s = n,
// one varying s with c = k·log n, measuring average top-1 cost.
func Fig9(cfg Config) (Figure, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	full := dataset.DOT(cfg.Seed, cfg.DOTN)
	size := cfg.Sizes[len(cfg.Sizes)-1]
	sample := full.Sample(rng, size)
	items := workload.OneD(rand.New(rand.NewSource(cfg.Seed+9)), sample, oneDWorkloadSpec(cfg))
	n := float64(size)
	k := 10.0
	logn := math.Log2(n)
	ticks := []string{"10", "klog(n)", "klog^2(n)", "klog^3(n)", "n", "n^2"}
	vals := []float64{10, k * logn, k * logn * logn, k * logn * logn * logn, n, n * n}
	fig := Figure{ID: "fig9", Title: "1D-RERANK: impact of dense-index parameters s and c",
		XLabel: "s (c) value", YLabel: "avg queries (top-1)", XTicks: ticks}

	measure := func(s, c float64) (float64, error) {
		db := sample.DBWith(10, dataset.DOTSystemRanker1())
		db.ResetCounter()
		opts := paperOpts(size)
		opts.S, opts.C = s, c
		e := core.NewEngine(db, opts)
		for _, it := range items {
			cur := e.NewOneDCursor(it.Q, it.Attr, it.Dir, core.Rerank)
			if _, err := core.TopH(cur, 1); err != nil {
				return 0, err
			}
		}
		return float64(db.QueryCount()) / float64(len(items)), nil
	}

	varyC := Series{Name: "varying c, s=n"}
	varyS := Series{Name: "varying s, c=k*log(n)"}
	for i, v := range vals {
		y, err := measure(n, v)
		if err != nil {
			return fig, err
		}
		varyC.X = append(varyC.X, float64(i))
		varyC.Y = append(varyC.Y, y)
		y, err = measure(v, k*logn)
		if err != nil {
			return fig, err
		}
		varyS.X = append(varyS.X, float64(i))
		varyS.Y = append(varyS.Y, y)
	}
	fig.Series = []Series{varyC, varyS}
	return fig, nil
}

// Fig10 reproduces "1D: Impact of Query order in 1D-RERANK": the shared
// on-the-fly index should make issue order immaterial.
func Fig10(cfg Config) (Figure, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	full := dataset.DOT(cfg.Seed, cfg.DOTN)
	orders := []workload.Order{workload.GeneralToSpecial, workload.RandomOrder, workload.SpecialToGeneral}
	fig := Figure{ID: "fig10", Title: "1D-RERANK query cost vs user-query issue order (SR1)",
		XLabel: "n", YLabel: "avg queries (top-1)"}
	for _, o := range orders {
		fig.Series = append(fig.Series, Series{Name: o.String()})
	}
	for _, size := range cfg.Sizes {
		sample := full.Sample(rng, size)
		items := workload.OneD(rand.New(rand.NewSource(cfg.Seed+10)), sample, oneDWorkloadSpec(cfg))
		for oi, o := range orders {
			ordered := workload.Reorder(rand.New(rand.NewSource(cfg.Seed)), sample, items, o)
			db := sample.DBWith(10, dataset.DOTSystemRanker1())
			c, err := run1DWorkload(db, ordered, core.Rerank, 1)
			if err != nil {
				return fig, err
			}
			fig.Series[oi].X = append(fig.Series[oi].X, float64(size))
			fig.Series[oi].Y = append(fig.Series[oi].Y, c)
		}
	}
	return fig, nil
}

// fig1DTopH is the shared driver for the live-site experiments (Figures 11
// and 12): average cumulative cost of top-10..top-h per user query.
func fig1DTopH(cfg Config, id, title string, ds *dataset.Dataset, spec workload.Spec) (Figure, error) {
	items := workload.OneD(rand.New(rand.NewSource(cfg.Seed+int64(len(id)))), ds, spec)
	fig := Figure{ID: id, Title: title, XLabel: "top-h", YLabel: "avg cumulative queries"}
	for _, v := range []core.Variant{core.Baseline, core.Binary, core.Rerank} {
		db := ds.DB()
		db.ResetCounter()
		e := core.NewEngine(db, paperOpts(db.Size()))
		s := Series{Name: "1D-" + v.String()}
		cursors := make([]*core.OneDCursor, len(items))
		for i, it := range items {
			cursors[i] = e.NewOneDCursor(it.Q, it.Attr, it.Dir, v)
		}
		step := 10
		for h := step; h <= cfg.TopH; h += step {
			for _, cur := range cursors {
				for j := 0; j < step; j++ {
					if _, _, err := cur.Next(); err != nil {
						return fig, err
					}
				}
			}
			s.X = append(s.X, float64(h))
			s.Y = append(s.Y, float64(db.QueryCount())/float64(len(items)))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig11 reproduces "1D: Topk Query Cost (BN)" over the Blue Nile generator
// (system-k = 30, ranking by descending price-per-carat).
func Fig11(cfg Config) (Figure, error) {
	ds := dataset.BlueNile(cfg.Seed, cfg.BNN)
	return fig1DTopH(cfg, "fig11", "1D top-h query cost, Blue Nile", ds,
		workload.Spec{Count: 20, NoFilter: 4, AllowDesc: true})
}

// Fig12 reproduces "1D: Topk Query Cost (YA)" over the Yahoo! Autos
// generator (system-k = 15, non-monotone distance ranking).
func Fig12(cfg Config) (Figure, error) {
	ds := dataset.YahooAutos(cfg.Seed, cfg.YAN)
	return fig1DTopH(cfg, "fig12", "1D top-h query cost, Yahoo! Autos", ds,
		workload.Spec{Count: 15, NoFilter: 2, AllowDesc: true})
}
