// Figure export: CSV (for plotting) and Markdown (for reports).

package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the figure as a CSV table: one row per x value, one
// column per series.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	nx := 0
	for _, s := range f.Series {
		if len(s.Y) > nx {
			nx = len(s.Y)
		}
	}
	for i := 0; i < nx; i++ {
		row := make([]string, 0, len(f.Series)+1)
		switch {
		case len(f.XTicks) > i:
			row = append(row, f.XTicks[i])
		case len(f.Series) > 0 && len(f.Series[0].X) > i:
			row = append(row, strconv.FormatFloat(f.Series[0].X[i], 'g', -1, 64))
		default:
			row = append(row, "")
		}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, strconv.FormatFloat(s.Y[i], 'f', 3, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown writes the figure as a GitHub-flavored Markdown table with
// a heading, suitable for pasting into EXPERIMENTS.md.
func (f Figure) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", f.ID, f.Title); err != nil {
		return err
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | "))
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	nx := 0
	for _, s := range f.Series {
		if len(s.Y) > nx {
			nx = len(s.Y)
		}
	}
	for i := 0; i < nx; i++ {
		row := make([]string, 0, len(header))
		switch {
		case len(f.XTicks) > i:
			row = append(row, f.XTicks[i])
		case len(f.Series) > 0 && len(f.Series[0].X) > i:
			row = append(row, trimFloat(f.Series[0].X[i]))
		default:
			row = append(row, "")
		}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.2f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
