package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID: "figX", Title: "sample", XLabel: "n",
		Series: []Series{
			{Name: "alg-a", X: []float64{10, 20}, Y: []float64{1.5, 2.5}},
			{Name: "alg-b", X: []float64{10, 20}, Y: []float64{3, 4}},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleFigure().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1] != "alg-a" || rows[1][0] != "10" || rows[2][2] != "4.000" {
		t.Fatalf("csv content wrong: %v", rows)
	}
}

func TestWriteCSVWithTicks(t *testing.T) {
	f := sampleFigure()
	f.XTicks = []string{"small", "large"}
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "small") {
		t.Fatalf("ticks missing: %s", sb.String())
	}
}

func TestWriteMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := sampleFigure().WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### figX", "| n | alg-a | alg-b |", "| --- | --- | --- |", "| 10 | 1.50 | 3.00 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
