package colstore

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/query"
	"repro/internal/types"
)

func testSchema() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "a", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "b", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "c", Kind: types.Categorical, Values: []string{"x", "y"}},
	})
}

func newTestArena() *Arena {
	return NewArena(NewLayout(testSchema()), NewDict())
}

func TestRoundTrip(t *testing.T) {
	a := newTestArena()
	in := []types.Tuple{
		{ID: 1, Ord: []float64{1, 2, 0}, Cat: map[string]string{"c": "x"}},
		{ID: 2, Ord: []float64{3, 4, 0}},
		{ID: 3, Ord: []float64{5, 6, 7}, Cat: map[string]string{"c": "y"}},
		{ID: 0, Ord: []float64{0, 0, 0}, Cat: map[string]string{"c": ""}},
	}
	for _, tp := range in {
		a.Append(tp)
	}
	v := a.View()
	if v.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(in))
	}
	for i, want := range in {
		got := v.Tuple(i)
		if got.ID != want.ID || !reflect.DeepEqual(got.Ord, want.Ord) {
			t.Fatalf("row %d: got %+v, want %+v", i, got, want)
		}
		for k, val := range want.Cat {
			if got.Cat[k] != val {
				t.Fatalf("row %d: Cat[%q] = %q, want %q", i, k, got.Cat[k], val)
			}
		}
		if v.ID(i) != want.ID {
			t.Fatalf("row %d: ID = %d, want %d", i, v.ID(i), want.ID)
		}
		for p := range want.Ord {
			if v.Ord(i, p) != want.Ord[p] {
				t.Fatalf("row %d pos %d: Ord = %g, want %g", i, p, v.Ord(i, p), want.Ord[p])
			}
		}
	}
}

// TestOverflowRows exercises every column-escape path: short and long Ord
// slices, categorical names outside the schema, and IDs outside int32.
func TestOverflowRows(t *testing.T) {
	a := newTestArena()
	in := []types.Tuple{
		{ID: 1, Ord: []float64{1, 2}},                                                 // short Ord
		{ID: 2, Ord: []float64{1, 2, 3, 4}},                                           // long Ord
		{ID: 3, Ord: []float64{1, 2, 0}, Cat: map[string]string{"c": "x", "zz": "w"}}, // extra cat
		{ID: math.MaxInt32 + 7, Ord: []float64{9, 9, 0}},                              // big ID
		{ID: math.MinInt32, Ord: []float64{8, 8, 0}},                                  // sentinel collision
		{ID: 5, Ord: nil}, // nil Ord
	}
	for _, tp := range in {
		a.Append(tp)
	}
	v := a.View()
	for i, want := range in {
		got := v.Tuple(i)
		if got.ID != want.ID {
			t.Fatalf("row %d: ID = %d, want %d", i, got.ID, want.ID)
		}
		if len(got.Ord) != len(want.Ord) || !reflect.DeepEqual(append([]float64{}, got.Ord...), append([]float64{}, want.Ord...)) {
			t.Fatalf("row %d: Ord = %v, want %v", i, got.Ord, want.Ord)
		}
		if !reflect.DeepEqual(got.Cat, want.Cat) && len(got.Cat)+len(want.Cat) > 0 {
			t.Fatalf("row %d: Cat = %v, want %v", i, got.Cat, want.Cat)
		}
		if v.ID(i) != want.ID {
			t.Fatalf("row %d: view ID = %d, want %d", i, v.ID(i), want.ID)
		}
	}
}

func TestViewSnapshotIsolation(t *testing.T) {
	a := newTestArena()
	a.Append(types.Tuple{ID: 1, Ord: []float64{1, 1, 0}})
	v := a.View()
	a.Append(types.Tuple{ID: 2, Ord: []float64{2, 2, 0}})
	if v.Len() != 1 {
		t.Fatalf("old view Len = %d, want 1", v.Len())
	}
	if a.View().Len() != 2 {
		t.Fatalf("new view Len = %d, want 2", a.View().Len())
	}
}

func TestBlockBoundary(t *testing.T) {
	a := newTestArena()
	n := BlockSize + 17
	for i := 0; i < n; i++ {
		a.Append(types.Tuple{ID: i, Ord: []float64{float64(i), 0, 0}})
	}
	v := a.View()
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
	st := a.Stats()
	if st.Blocks != 2 || st.Rows != n {
		t.Fatalf("Stats = %+v, want 2 blocks / %d rows", st, n)
	}
	for _, row := range []int{0, BlockSize - 1, BlockSize, n - 1} {
		if v.ID(row) != row || v.Ord(row, 0) != float64(row) {
			t.Fatalf("row %d: ID=%d Ord=%g", row, v.ID(row), v.Ord(row, 0))
		}
	}
}

func TestMaterializeIntoReuses(t *testing.T) {
	a := newTestArena()
	a.Append(types.Tuple{ID: 1, Ord: []float64{1, 2, 0}, Cat: map[string]string{"c": "x"}})
	a.Append(types.Tuple{ID: 2, Ord: []float64{3, 4, 0}, Cat: map[string]string{"c": "y"}})
	v := a.View()
	var scratch types.Tuple
	v.MaterializeInto(0, &scratch)
	ordPtr := &scratch.Ord[0]
	v.MaterializeInto(1, &scratch)
	if &scratch.Ord[0] != ordPtr {
		t.Fatal("MaterializeInto reallocated the Ord scratch")
	}
	if scratch.ID != 2 || scratch.Cat["c"] != "y" {
		t.Fatalf("scratch after second materialize: %+v", scratch)
	}
	allocs := testing.AllocsPerRun(100, func() { v.MaterializeInto(0, &scratch) })
	if allocs > 0 {
		t.Fatalf("MaterializeInto allocates %.1f/op, want 0", allocs)
	}
}

// TestMatcherAgainstQueryMatches cross-checks symbol-level matching against
// query.Query.Matches on the materialized tuples across random stores and
// queries.
func TestMatcherAgainstQueryMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := newTestArena()
		var tuples []types.Tuple
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			tp := types.Tuple{
				ID:  i,
				Ord: []float64{float64(rng.Intn(20)) * 5, float64(rng.Intn(20)) * 5, 0},
			}
			if rng.Intn(4) > 0 {
				tp.Cat = map[string]string{"c": []string{"x", "y", ""}[rng.Intn(3)]}
			}
			tuples = append(tuples, tp)
			a.Append(tp)
		}
		for qi := 0; qi < 20; qi++ {
			q := query.New()
			if rng.Intn(2) == 0 {
				lo := float64(rng.Intn(20)) * 5
				q = q.WithRange(rng.Intn(2), types.Interval{
					Lo: lo, Hi: lo + float64(rng.Intn(10))*5,
					LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0,
				})
			}
			switch rng.Intn(5) {
			case 0:
				q = q.WithCat("c", []string{"x", "y"}[rng.Intn(2)])
			case 1:
				q = q.WithCat("c", "") // matches absent and explicitly-empty
			case 2:
				q = q.WithCat("c", "never-interned")
			case 3:
				q = q.WithCat("zz", "w") // out-of-schema name
			}
			v := a.View()
			var m Matcher
			m.Reset(v, q)
			for row := 0; row < v.Len(); row++ {
				want := q.Matches(tuples[row])
				if got := m.Match(row); got != want {
					t.Fatalf("trial %d query %s row %d: Match = %v, Query.Matches = %v (tuple %+v)",
						trial, q, row, got, want, tuples[row])
				}
			}
		}
	}
}

func TestMatcherExtraPredOnOverflowRow(t *testing.T) {
	a := newTestArena()
	a.Append(types.Tuple{ID: 1, Ord: []float64{1, 1, 0}, Cat: map[string]string{"zz": "w"}})
	a.Append(types.Tuple{ID: 2, Ord: []float64{2, 2, 0}})
	v := a.View()
	var m Matcher
	m.Reset(v, query.New().WithCat("zz", "w"))
	if !m.Match(0) || m.Match(1) {
		t.Fatal("out-of-schema categorical predicate broken")
	}
	m.Reset(v, query.New().WithCat("zz", ""))
	if m.Match(0) || !m.Match(1) {
		t.Fatal(`out-of-schema want="" predicate broken`)
	}
}

func TestRunScans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := newTestArena()
	n := 200
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = float64(rng.Intn(25)) * 4
		a.Append(types.Tuple{ID: i, Ord: []float64{vals[i], 0, 0}, Cat: map[string]string{"c": []string{"x", "y"}[i%2]}})
	}
	v := a.View()
	rows := make([]uint32, n)
	for i := range rows {
		rows[i] = uint32(i)
	}
	run := NewRun(v, 0, rows)
	if !sort.SliceIsSorted(run.Vals, func(i, j int) bool { return run.Vals[i] < run.Vals[j] }) {
		t.Fatal("run values not sorted")
	}
	for trial := 0; trial < 200; trial++ {
		lo := float64(rng.Intn(25)) * 4
		iv := types.Interval{Lo: lo, Hi: lo + float64(rng.Intn(8))*4,
			LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0}
		q := query.New()
		if rng.Intn(2) == 0 {
			q = q.WithCat("c", "x")
		}
		var m Matcher
		m.Reset(v, q)
		// Brute force with the same (value, ID) tie-break.
		wantMinRow, wantMaxRow, found := -1, -1, false
		for i := 0; i < n; i++ {
			if !iv.Contains(vals[i]) || !m.Match(i) {
				continue
			}
			if !found {
				wantMinRow, wantMaxRow, found = i, i, true
				continue
			}
			if vals[i] < vals[wantMinRow] || (vals[i] == vals[wantMinRow] && i < wantMinRow) {
				wantMinRow = i
			}
			if vals[i] > vals[wantMaxRow] || (vals[i] == vals[wantMaxRow] && i > wantMaxRow) {
				wantMaxRow = i
			}
		}
		gotMin, _, okMin := run.ScanMin(&m, iv)
		gotMax, _, okMax := run.ScanMax(&m, iv)
		if okMin != found || okMax != found {
			t.Fatalf("trial %d iv %s: ok = (%v,%v), want %v", trial, iv, okMin, okMax, found)
		}
		if found && (int(gotMin) != wantMinRow || int(gotMax) != wantMaxRow) {
			t.Fatalf("trial %d iv %s: rows (%d,%d), want (%d,%d)", trial, iv, gotMin, gotMax, wantMinRow, wantMaxRow)
		}
	}
}

func TestRunInsertAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := newTestArena()
	n := 120
	for i := 0; i < n; i++ {
		a.Append(types.Tuple{ID: i, Ord: []float64{float64(rng.Intn(10)), 0, 0}})
	}
	v := a.View()
	var incr Run
	var batchRows []uint32
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			incr.Insert(v, v.Ord(i, 0), uint32(i))
		} else {
			batchRows = append(batchRows, uint32(i))
		}
	}
	merged := MergeRuns(v, incr, NewRun(v, 0, batchRows))
	if merged.Len() != n {
		t.Fatalf("merged Len = %d, want %d", merged.Len(), n)
	}
	for i := 1; i < merged.Len(); i++ {
		if runLess(v, merged.Vals[i], merged.Rows[i], merged.Vals[i-1], merged.Rows[i-1]) {
			t.Fatalf("merged run out of order at %d", i)
		}
	}
}

func TestAnswerRoundTrip(t *testing.T) {
	l, d := NewLayout(testSchema()), NewDict()
	in := []types.Tuple{
		{ID: 1, Ord: []float64{1, 2, 0}, Cat: map[string]string{"c": "x"}},
		{ID: 2, Ord: []float64{3, 4, 0}},
	}
	ans, ok := EncodeAnswer(l, d, in)
	if !ok || ans.Len() != 2 {
		t.Fatalf("EncodeAnswer failed: ok=%v", ok)
	}
	out := ans.Decode()
	if len(out) != 2 || out[0].ID != 1 || out[0].Cat["c"] != "x" || out[1].Cat != nil {
		t.Fatalf("Decode = %+v", out)
	}
	if !reflect.DeepEqual(out[0].Ord, in[0].Ord) || !reflect.DeepEqual(out[1].Ord, in[1].Ord) {
		t.Fatalf("Decode Ord mismatch: %+v", out)
	}
	if ans.Bytes() <= 0 {
		t.Fatal("Bytes not positive")
	}
}

func TestAnswerEncodeRejectsIrregular(t *testing.T) {
	l, d := NewLayout(testSchema()), NewDict()
	cases := []types.Tuple{
		{ID: math.MaxInt32 + 1, Ord: []float64{1, 2, 0}},
		{ID: 1, Ord: []float64{1, 2}},
		{ID: 1, Ord: []float64{1, 2, 0}, Cat: map[string]string{"zz": "w"}},
	}
	for i, tp := range cases {
		if _, ok := EncodeAnswer(l, d, []types.Tuple{tp}); ok {
			t.Fatalf("case %d: EncodeAnswer accepted irregular tuple %+v", i, tp)
		}
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	x := d.Intern("x")
	if x == 0 {
		t.Fatal("Intern returned the absent sentinel")
	}
	if again := d.Intern("x"); again != x {
		t.Fatal("Intern not stable")
	}
	if d.Value(x) != "x" || d.Value(0) != "" {
		t.Fatal("Value broken")
	}
	if _, ok := d.Lookup("y"); ok {
		t.Fatal("Lookup found an uninterned value")
	}
	d.Intern("hello")
	if d.Len() != 2 || d.Bytes() != int64(len("x")+len("hello")) {
		t.Fatalf("Len=%d Bytes=%d", d.Len(), d.Bytes())
	}
}
