package colstore

import (
	"sort"

	"repro/internal/types"
)

// Run is one sorted run of rows: parallel slices ordered ascending by
// (value, tuple ID). Keeping the sort key in its own contiguous float slice
// makes the binary searches and range walks of Min/Max lookups cache-local —
// no tuple is touched until a row actually matches.
type Run struct {
	Vals []float64
	Rows []uint32
}

// Len returns the number of entries.
func (r Run) Len() int { return len(r.Vals) }

// runLess orders run entries by (value, ID) — the same total order the
// row-struct shards used, so tie-breaking is unchanged.
func runLess(v View, aVal float64, aRow uint32, bVal float64, bRow uint32) bool {
	if aVal != bVal {
		return aVal < bVal
	}
	return v.ID(int(aRow)) < v.ID(int(bRow))
}

// Insert places (val, row) into the run, preserving order.
func (r *Run) Insert(v View, val float64, row uint32) {
	i := sort.Search(len(r.Vals), func(i int) bool {
		return runLess(v, val, row, r.Vals[i], r.Rows[i])
	})
	r.Vals = append(r.Vals, 0)
	r.Rows = append(r.Rows, 0)
	copy(r.Vals[i+1:], r.Vals[i:])
	copy(r.Rows[i+1:], r.Rows[i:])
	r.Vals[i], r.Rows[i] = val, row
}

// NewRun builds a sorted run over rows, keyed by schema position pos.
func NewRun(v View, pos int, rows []uint32) Run {
	r := Run{Vals: make([]float64, len(rows)), Rows: make([]uint32, len(rows))}
	copy(r.Rows, rows)
	for i, row := range r.Rows {
		r.Vals[i] = v.Ord(int(row), pos)
	}
	sort.Sort(runSorter{v: v, r: &r})
	return r
}

type runSorter struct {
	v View
	r *Run
}

func (s runSorter) Len() int { return len(s.r.Vals) }
func (s runSorter) Less(i, j int) bool {
	return runLess(s.v, s.r.Vals[i], s.r.Rows[i], s.r.Vals[j], s.r.Rows[j])
}
func (s runSorter) Swap(i, j int) {
	s.r.Vals[i], s.r.Vals[j] = s.r.Vals[j], s.r.Vals[i]
	s.r.Rows[i], s.r.Rows[j] = s.r.Rows[j], s.r.Rows[i]
}

// MergeRuns linearly merges two sorted runs into a new one.
func MergeRuns(v View, a, b Run) Run {
	if a.Len() == 0 {
		return b
	}
	if b.Len() == 0 {
		return a
	}
	out := Run{
		Vals: make([]float64, 0, a.Len()+b.Len()),
		Rows: make([]uint32, 0, a.Len()+b.Len()),
	}
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if runLess(v, b.Vals[j], b.Rows[j], a.Vals[i], a.Rows[i]) {
			out.Vals = append(out.Vals, b.Vals[j])
			out.Rows = append(out.Rows, b.Rows[j])
			j++
		} else {
			out.Vals = append(out.Vals, a.Vals[i])
			out.Rows = append(out.Rows, a.Rows[i])
			i++
		}
	}
	out.Vals = append(out.Vals, a.Vals[i:]...)
	out.Rows = append(out.Rows, a.Rows[i:]...)
	out.Vals = append(out.Vals, b.Vals[j:]...)
	out.Rows = append(out.Rows, b.Rows[j:]...)
	return out
}

// ScanMin returns the first entry with value inside iv whose row matches m —
// the columnar mirror of index.ScanMinMatching: binary-search to the first
// value >= iv.Lo, then walk forward skipping excluded endpoints until the
// value exceeds iv.Hi.
func (r Run) ScanMin(m *Matcher, iv types.Interval) (row uint32, val float64, ok bool) {
	i := sort.Search(len(r.Vals), func(i int) bool { return r.Vals[i] >= iv.Lo })
	for ; i < len(r.Vals); i++ {
		v := r.Vals[i]
		if !iv.Contains(v) {
			if v > iv.Hi {
				break
			}
			continue
		}
		if m.Match(int(r.Rows[i])) {
			return r.Rows[i], v, true
		}
	}
	return 0, 0, false
}

// ScanMax is ScanMin from the high end: binary-search past iv.Hi, then walk
// backward until the value drops below iv.Lo.
func (r Run) ScanMax(m *Matcher, iv types.Interval) (row uint32, val float64, ok bool) {
	i := sort.Search(len(r.Vals), func(i int) bool { return r.Vals[i] > iv.Hi })
	for i--; i >= 0; i-- {
		v := r.Vals[i]
		if !iv.Contains(v) {
			if v < iv.Lo {
				break
			}
			continue
		}
		if m.Match(int(r.Rows[i])) {
			return r.Rows[i], v, true
		}
	}
	return 0, 0, false
}
