// Package colstore provides append-only, immutable columnar tuple storage:
// fixed-size blocks of contiguous column slices plus a shared string
// dictionary for categorical values. It backs internal/history's sorted runs
// and the probe-LRU answer cache, replacing per-row types.Tuple structs
// (one Ord slice + one Cat map each) with a handful of large flat arrays.
//
// The row-struct types.Tuple stays the boundary type: views materialize rows
// back into tuples only at the edges (API returns, JSON encode, snapshots).
package colstore

import "sync"

// Dict interns categorical strings to dense uint32 symbols. Symbol 0 is
// reserved to mean "attribute absent from the tuple's Cat map"; real symbols
// start at 1. One Dict is shared per Knowledge, so a value like "UA" is
// stored once no matter how many tuples carry it.
//
// Dict is safe for concurrent use.
type Dict struct {
	mu    sync.RWMutex
	syms  map[string]uint32
	strs  []string // strs[sym] = value; strs[0] is the absent sentinel
	bytes int64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{syms: make(map[string]uint32), strs: []string{""}}
}

// Intern returns the symbol for s, assigning a new one on first sight.
func (d *Dict) Intern(s string) uint32 {
	d.mu.RLock()
	sym, ok := d.syms[s]
	d.mu.RUnlock()
	if ok {
		return sym
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if sym, ok := d.syms[s]; ok {
		return sym
	}
	sym = uint32(len(d.strs))
	d.syms[s] = sym
	d.strs = append(d.strs, s)
	d.bytes += int64(len(s))
	return sym
}

// Lookup returns the symbol for s without interning. ok is false when s has
// never been interned — no stored row can carry it.
func (d *Dict) Lookup(s string) (sym uint32, ok bool) {
	d.mu.RLock()
	sym, ok = d.syms[s]
	d.mu.RUnlock()
	return sym, ok
}

// Value returns the string a symbol decodes to. Value(0) is "".
func (d *Dict) Value(sym uint32) string {
	d.mu.RLock()
	s := d.strs[sym]
	d.mu.RUnlock()
	return s
}

// Len reports the number of interned symbols (excluding the absent
// sentinel).
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.strs) - 1
	d.mu.RUnlock()
	return n
}

// Bytes reports the approximate string bytes retained by the dictionary.
func (d *Dict) Bytes() int64 {
	d.mu.RLock()
	b := d.bytes
	d.mu.RUnlock()
	return b
}
