package colstore

import (
	"repro/internal/query"
	"repro/internal/types"
)

// missSym is the compiled form of a categorical predicate whose wanted value
// has never been interned: no stored row can carry it.
const missSym = ^uint32(0)

type rangePred struct {
	pos int
	iv  types.Interval
}

type catPred struct {
	col      int
	sym      uint32 // wanted symbol, or missSym when the value is unknown
	alsoZero bool   // want == "": absent attributes (sym 0) also match
}

// extraPred handles categorical predicates on names outside the schema; the
// values, if any, live only in the overflow map. Mirrors
// query.Query.Matches, where a missing map key compares as "".
type extraPred struct {
	name, want string
}

// Matcher is a query compiled against one View for symbol-level row
// filtering: range predicates compare column floats directly and
// categorical predicates compare interned symbols, so matching a row never
// touches a map or a string.
//
// A Matcher must be compiled (Reset) AFTER taking the view it filters: any
// categorical value carried by a visible row was interned before the row
// was published, so a dictionary miss at compile time proves no visible row
// matches. Reset reuses the matcher's slices, making pooled matchers
// allocation-free after warm-up. A Matcher is not safe for concurrent use.
type Matcher struct {
	v      View
	ranges []rangePred
	cats   []catPred
	extra  []extraPred
	never  bool
}

// View returns the view the matcher was compiled against.
func (m *Matcher) View() View { return m.v }

// Reset compiles q against view v, reusing m's storage.
func (m *Matcher) Reset(v View, q query.Query) {
	m.v = v
	m.ranges = m.ranges[:0]
	m.cats = m.cats[:0]
	m.extra = m.extra[:0]
	m.never = false
	for pos, iv := range q.Ranges {
		m.ranges = append(m.ranges, rangePred{pos: pos, iv: iv})
	}
	for name, want := range q.Cats {
		col, inSchema := v.a.layout.colOf[name]
		if !inSchema {
			m.extra = append(m.extra, extraPred{name: name, want: want})
			continue
		}
		p := catPred{col: col, sym: missSym, alsoZero: want == ""}
		if sym, ok := v.a.dict.Lookup(want); ok {
			p.sym = sym
		}
		if p.sym == missSym && !p.alsoZero {
			m.never = true
		}
		m.cats = append(m.cats, p)
	}
}

// Match reports whether the row satisfies every predicate. Semantics are
// identical to query.Query.Matches on the materialized tuple. Rows outside
// the compiled view's snapshot (published after the view was taken — a
// shard's sorted run may already contain them) never match: the matcher
// answers as of its view.
func (m *Matcher) Match(row int) bool {
	if m.never || row >= m.v.n {
		return false
	}
	b := m.v.blocks[row>>blockShift]
	off := row & blockMask
	for i := range m.ranges {
		if !m.ranges[i].iv.Contains(b.ord[m.ranges[i].pos][off]) {
			return false
		}
	}
	for i := range m.cats {
		sym := b.cat[m.cats[i].col][off]
		if sym == m.cats[i].sym || (m.cats[i].alsoZero && sym == 0) {
			continue
		}
		return false
	}
	if len(m.extra) > 0 {
		ov, ok := m.v.overflow(row)
		for i := range m.extra {
			val := ""
			if ok {
				val = ov.cat[m.extra[i].name]
			}
			if val != m.extra[i].want {
				return false
			}
		}
	}
	return true
}
