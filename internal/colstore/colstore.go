package colstore

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

const (
	blockShift = 12
	// BlockSize is the fixed row capacity of one column block.
	BlockSize = 1 << blockShift
	blockMask = BlockSize - 1
)

// idSentinel marks an ids cell whose real ID does not fit int32 and lives in
// the overflow map instead.
const idSentinel = math.MinInt32

// Layout maps a schema onto column storage: one float64 column per schema
// position (categorical positions included, so a tuple's full Ord slice
// round-trips exactly) plus one symbol column per categorical attribute.
type Layout struct {
	schema   *types.Schema
	catPos   []int          // schema positions of categorical attrs, declaration order
	catNames []string       // attribute names, same order as catPos
	colOf    map[string]int // categorical attribute name -> symbol column index
}

// NewLayout builds the column layout for schema.
func NewLayout(schema *types.Schema) *Layout {
	l := &Layout{schema: schema, colOf: make(map[string]int)}
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		if a.Kind == types.Categorical {
			l.colOf[a.Name] = len(l.catPos)
			l.catPos = append(l.catPos, i)
			l.catNames = append(l.catNames, a.Name)
		}
	}
	return l
}

// Schema returns the schema the layout was built from.
func (l *Layout) Schema() *types.Schema { return l.schema }

// NumCat returns the number of categorical symbol columns.
func (l *Layout) NumCat() int { return len(l.catPos) }

// CatCol returns the symbol column index for a categorical attribute name.
func (l *Layout) CatCol(name string) (int, bool) {
	c, ok := l.colOf[name]
	return c, ok
}

// CatName returns the attribute name of symbol column col.
func (l *Layout) CatName(col int) string { return l.catNames[col] }

// block is one fixed-capacity slab of columns. Cells are written exactly
// once (the store is append-only) and the column slices never grow, so a
// published row can be read without locks.
type block struct {
	ids []int32
	ord [][]float64 // one column per schema position
	cat [][]uint32  // one symbol column per categorical attribute
}

func newBlock(l *Layout) *block {
	b := &block{
		ids: make([]int32, BlockSize),
		ord: make([][]float64, l.schema.Len()),
		cat: make([][]uint32, len(l.catPos)),
	}
	for i := range b.ord {
		b.ord[i] = make([]float64, BlockSize)
	}
	for i := range b.cat {
		b.cat[i] = make([]uint32, BlockSize)
	}
	return b
}

// overflowRow preserves the parts of a tuple the columns cannot encode
// exactly: an Ord slice whose length differs from the schema width,
// categorical values under names outside the schema, or an ID outside
// int32 range. Overflow rows are rare (malformed or adversarial input);
// regular rows never touch the map.
type overflowRow struct {
	id     int
	hasID  bool
	ord    []float64         // full Ord copy, valid when hasOrd
	hasOrd bool              // set when len(Ord) != schema.Len() (including nil Ord)
	cat    map[string]string // out-of-schema categorical entries
}

// Arena is an append-only columnar tuple store. Appends are serialized by an
// internal mutex; reads are lock-free through a View. The row count is
// published with release semantics after all cells of the row are written,
// so any row visible through a View is fully initialized.
type Arena struct {
	layout *Layout
	dict   *Dict

	mu     sync.Mutex
	blocks atomic.Pointer[[]*block] // copy-on-write, grows one block at a time
	count  atomic.Int64             // published row count

	overMu  sync.RWMutex
	over    map[uint32]overflowRow
	hasOver atomic.Bool // fast path: no row has ever overflowed
}

// NewArena builds an empty arena over layout, interning categorical values
// into dict.
func NewArena(layout *Layout, dict *Dict) *Arena {
	a := &Arena{layout: layout, dict: dict}
	empty := []*block{}
	a.blocks.Store(&empty)
	return a
}

// Layout returns the arena's column layout.
func (a *Arena) Layout() *Layout { return a.layout }

// Dict returns the shared string dictionary.
func (a *Arena) Dict() *Dict { return a.dict }

// Len returns the number of published rows.
func (a *Arena) Len() int { return int(a.count.Load()) }

// Append stores t and returns its row number. The tuple's values are copied
// into columns; t's slices and maps are not retained.
func (a *Arena) Append(t types.Tuple) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	row := uint32(a.count.Load())
	bi := int(row >> blockShift)
	off := int(row & blockMask)
	blocks := *a.blocks.Load()
	if bi == len(blocks) {
		grown := make([]*block, len(blocks)+1)
		copy(grown, blocks)
		grown[bi] = newBlock(a.layout)
		a.blocks.Store(&grown)
		blocks = grown
	}
	b := blocks[bi]

	var ov overflowRow
	if int(int32(t.ID)) == t.ID && int32(t.ID) != idSentinel {
		b.ids[off] = int32(t.ID)
	} else {
		b.ids[off] = idSentinel
		ov.id, ov.hasID = t.ID, true
	}
	m := a.layout.schema.Len()
	n := len(t.Ord)
	if n > m {
		n = m
	}
	for p := 0; p < n; p++ {
		b.ord[p][off] = t.Ord[p]
	}
	if len(t.Ord) != m {
		ov.ord = append([]float64(nil), t.Ord...)
		ov.hasOrd = true
	}
	for name, val := range t.Cat {
		if c, ok := a.layout.colOf[name]; ok {
			b.cat[c][off] = a.dict.Intern(val)
		} else {
			if ov.cat == nil {
				ov.cat = make(map[string]string)
			}
			ov.cat[name] = val
		}
	}
	if ov.hasID || ov.hasOrd || ov.cat != nil {
		a.overMu.Lock()
		if a.over == nil {
			a.over = make(map[uint32]overflowRow)
		}
		a.over[row] = ov
		a.overMu.Unlock()
		a.hasOver.Store(true)
	}
	// Publish: every cell of the row is written before the count moves, so
	// readers that observe count > row see a complete row.
	a.count.Store(int64(row) + 1)
	return row
}

// Stats describes the arena's storage footprint.
type Stats struct {
	Rows   int
	Blocks int
	// Bytes approximates the column storage resident for the blocks
	// (allocated capacity, not just used rows).
	Bytes int64
}

// Stats returns the arena's current storage counters.
func (a *Arena) Stats() Stats {
	n := int(a.count.Load())
	blocks := len(*a.blocks.Load())
	perBlock := int64(BlockSize) * int64(4+8*a.layout.schema.Len()+4*len(a.layout.catPos))
	return Stats{Rows: n, Blocks: blocks, Bytes: int64(blocks) * perBlock}
}

// View is an immutable point-in-time snapshot of the arena: rows [0, Len())
// existed when the view was taken and never change afterwards. Views are
// cheap values (three words); take one per operation. Rows appended after
// the view is taken are not visible through it, and a View is never
// invalidated — blocks are append-only and shared.
type View struct {
	a      *Arena
	blocks []*block
	n      int
}

// View snapshots the arena's currently published rows.
func (a *Arena) View() View {
	// Order matters: load the published count first, then the block list.
	// The block covering row count-1 is stored before the count, so the
	// list loaded afterwards always covers every visible row.
	n := int(a.count.Load())
	return View{a: a, blocks: *a.blocks.Load(), n: n}
}

// Len returns the number of rows visible through the view.
func (v View) Len() int { return v.n }

// Layout returns the owning arena's layout.
func (v View) Layout() *Layout { return v.a.layout }

// Dict returns the owning arena's dictionary.
func (v View) Dict() *Dict { return v.a.dict }

// ID returns the tuple ID of a row.
func (v View) ID(row int) int {
	id := v.blocks[row>>blockShift].ids[row&blockMask]
	if id == idSentinel && v.a.hasOver.Load() {
		v.a.overMu.RLock()
		ov, ok := v.a.over[uint32(row)]
		v.a.overMu.RUnlock()
		if ok && ov.hasID {
			return ov.id
		}
	}
	return int(id)
}

// Ord returns the ordinal value at schema position pos of a row.
func (v View) Ord(row, pos int) float64 {
	return v.blocks[row>>blockShift].ord[pos][row&blockMask]
}

// CatSym returns the interned symbol in categorical column col of a row
// (0 when the attribute was absent from the tuple).
func (v View) CatSym(row, col int) uint32 {
	return v.blocks[row>>blockShift].cat[col][row&blockMask]
}

func (v View) overflow(row int) (overflowRow, bool) {
	if !v.a.hasOver.Load() {
		return overflowRow{}, false
	}
	v.a.overMu.RLock()
	ov, ok := v.a.over[uint32(row)]
	v.a.overMu.RUnlock()
	return ov, ok
}

// Tuple materializes a row into a fresh types.Tuple that shares no storage
// with the arena or other materializations — safe to retain and hand across
// API boundaries.
func (v View) Tuple(row int) types.Tuple {
	var t types.Tuple
	v.MaterializeInto(row, &t)
	return t
}

// TupleRange materializes rows [lo, hi) into fresh tuples, clamping the
// range to the view. It is the bulk-export path for incremental persistence:
// because the arena is append-only, a row range exported once never changes,
// so persisted ranges can be laid down contiguously without re-reading old
// rows.
func (v View) TupleRange(lo, hi int) []types.Tuple {
	if lo < 0 {
		lo = 0
	}
	if hi > v.n {
		hi = v.n
	}
	if lo >= hi {
		return nil
	}
	out := make([]types.Tuple, 0, hi-lo)
	for row := lo; row < hi; row++ {
		out = append(out, v.Tuple(row))
	}
	return out
}

// MaterializeInto reconstructs a row into dst, reusing dst's Ord slice and
// Cat map when their capacity allows — the zero-steady-state-alloc path for
// scan loops that inspect one tuple at a time. The result aliases dst's own
// storage only; do not retain dst across iterations without copying.
func (v View) MaterializeInto(row int, dst *types.Tuple) {
	b := v.blocks[row>>blockShift]
	off := row & blockMask
	ov, hasOv := v.overflow(row)

	if hasOv && ov.hasID {
		dst.ID = ov.id
	} else {
		dst.ID = int(b.ids[off])
	}

	if hasOv && ov.hasOrd {
		if ov.ord == nil {
			dst.Ord = nil
		} else {
			dst.Ord = append(dst.Ord[:0], ov.ord...)
		}
	} else {
		m := v.a.layout.schema.Len()
		if cap(dst.Ord) < m {
			dst.Ord = make([]float64, m)
		} else {
			dst.Ord = dst.Ord[:m]
		}
		for p := 0; p < m; p++ {
			dst.Ord[p] = b.ord[p][off]
		}
	}

	nCat := 0
	for c := range b.cat {
		if b.cat[c][off] != 0 {
			nCat++
		}
	}
	if hasOv {
		nCat += len(ov.cat)
	}
	if nCat == 0 {
		dst.Cat = nil
		return
	}
	if dst.Cat == nil {
		dst.Cat = make(map[string]string, nCat)
	} else {
		clear(dst.Cat)
	}
	for c, col := range b.cat {
		if sym := col[off]; sym != 0 {
			dst.Cat[v.a.layout.catNames[c]] = v.a.dict.Value(sym)
		}
	}
	if hasOv {
		for k, val := range ov.cat {
			dst.Cat[k] = val
		}
	}
}
