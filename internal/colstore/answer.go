package colstore

import "repro/internal/types"

// Answer is a probe answer (an ordered list of tuples) compacted into
// columnar form for the probe-LRU cache: one int32 ID lane, a row-major
// float64 lane for the full Ord vector, and a row-major symbol lane for
// categorical values, interned into the shared dictionary. A 10-tuple
// answer over a 5-attribute schema is three flat slices instead of ten
// row structs with ten Ord slices and ten Cat maps.
type Answer struct {
	layout *Layout
	dict   *Dict
	ids    []int32
	ords   []float64 // n × schema.Len(), row-major
	cats   []uint32  // n × layout.NumCat(), row-major
}

// EncodeAnswer compacts tuples. ok is false when some tuple cannot be
// represented exactly (ID outside int32, Ord length differing from the
// schema width, or a categorical name outside the schema) — callers fall
// back to row storage for those rare answers.
func EncodeAnswer(layout *Layout, dict *Dict, tuples []types.Tuple) (*Answer, bool) {
	m := layout.schema.Len()
	nc := len(layout.catPos)
	a := &Answer{
		layout: layout,
		dict:   dict,
		ids:    make([]int32, len(tuples)),
		ords:   make([]float64, len(tuples)*m),
		cats:   make([]uint32, len(tuples)*nc),
	}
	for i, t := range tuples {
		if int(int32(t.ID)) != t.ID || len(t.Ord) != m {
			return nil, false
		}
		a.ids[i] = int32(t.ID)
		copy(a.ords[i*m:(i+1)*m], t.Ord)
		for name, val := range t.Cat {
			c, ok := layout.colOf[name]
			if !ok {
				return nil, false
			}
			a.cats[i*nc+c] = dict.Intern(val)
		}
	}
	return a, true
}

// Len returns the number of encoded tuples.
func (a *Answer) Len() int { return len(a.ids) }

// Bytes approximates the answer's resident size.
func (a *Answer) Bytes() int64 {
	return int64(4*len(a.ids) + 8*len(a.ords) + 4*len(a.cats))
}

// Decode materializes the answer back into fresh tuples that share no
// storage with the answer — safe to retain.
func (a *Answer) Decode() []types.Tuple {
	m := a.layout.schema.Len()
	nc := len(a.layout.catPos)
	out := make([]types.Tuple, len(a.ids))
	for i := range out {
		t := types.Tuple{
			ID:  int(a.ids[i]),
			Ord: append([]float64(nil), a.ords[i*m:(i+1)*m]...),
		}
		for c := 0; c < nc; c++ {
			if sym := a.cats[i*nc+c]; sym != 0 {
				if t.Cat == nil {
					t.Cat = make(map[string]string, nc)
				}
				t.Cat[a.layout.catNames[c]] = a.dict.Value(sym)
			}
		}
		out[i] = t
	}
	return out
}
