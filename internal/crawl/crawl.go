// Package crawl implements a complete crawler for hidden databases in the
// style of Sheng et al. [15], the baseline §1 of the paper argues against:
// retrieve *every* tuple matching a query through the top-k interface by
// recursively splitting overflowing queries into disjoint sub-queries.
//
// Besides serving as the experimental baseline, the crawler is the workhorse
// behind the on-the-fly dense indexes (Algorithms 4 and 6): dense regions
// are small, so crawling them costs O(s/k) queries and the result is stored
// for all future user queries.
//
// # Probe routing and cost accounting
//
// By default every probe goes straight to the Database. Callers that sit
// behind a probe-coalescing layer (the engine's sessions) instead supply
// Options.Probe, which answers each sub-query and reports whether it
// actually reached the upstream: probes served by an in-flight duplicate or
// a cached complete answer are free. The crawler therefore keeps two
// counters — Queries (probes attempted, the budget measure, stable
// regardless of cache state) and Issued (probes that reached the upstream,
// the paper's cost measure). Both are atomic: crawlers are reachable from
// concurrent sessions, and progress may be read while a crawl runs.
package crawl

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/types"
)

// ErrBudget is returned when the crawl exceeds its query budget.
var ErrBudget = errors.New("crawl: query budget exhausted")

// ErrUnsplittable is returned when an overflowing query cannot be split any
// further: more than k tuples share identical values on every splittable
// attribute, which no conjunctive-query interface can separate.
var ErrUnsplittable = errors.New("crawl: overflowing region is unsplittable (more than k identical tuples)")

// Probe answers one sub-query on behalf of the crawler. issued reports
// whether the probe actually reached the upstream: answers replayed from a
// coalescing layer (an identical in-flight call or a cached complete
// answer) are free and must not be charged as upstream cost.
type Probe func(q query.Query) (res hidden.Result, issued bool, err error)

// Options configure a crawl.
type Options struct {
	// SplitAttrs are the ordinal attribute indexes the crawler may split
	// on. Defaults to every ordinal attribute of the database schema.
	SplitAttrs []int
	// MaxQueries bounds the number of probe attempts (0 = unlimited). The
	// budget is charged per attempt, before any coalescing, so it is
	// stable regardless of cache state.
	MaxQueries int64
	// Probe, when non-nil, replaces direct Database.TopK calls — the hook
	// through which the engine routes crawl probes into its coalescing
	// layer so concurrent crawls of overlapping regions dedup at probe
	// granularity. When nil, probes go straight to the database and every
	// attempt counts as issued.
	Probe Probe
}

// Crawler retrieves complete query answers through a top-k interface.
type Crawler struct {
	db   hidden.Database
	opts Options
	// Observe, when non-nil, receives every tuple the crawler sees
	// (including duplicates); used to feed history stores.
	Observe func(types.Tuple)

	queries atomic.Int64 // probe attempts (budget measure)
	issued  atomic.Int64 // probes that reached the upstream (cost measure)
}

// New builds a crawler over db.
func New(db hidden.Database, opts Options) *Crawler {
	if len(opts.SplitAttrs) == 0 {
		opts.SplitAttrs = append([]int(nil), db.Schema().OrdinalIndexes()...)
	}
	return &Crawler{db: db, opts: opts}
}

// Queries returns the number of probes attempted so far — the number that
// would have reached the database without a coalescing layer. Safe to read
// while a crawl is running.
func (c *Crawler) Queries() int64 { return c.queries.Load() }

// Issued returns the number of probes that actually reached the upstream:
// Queries minus the probes answered for free by Options.Probe's coalescing.
// Without Options.Probe, Issued equals Queries. Safe to read while a crawl
// is running.
func (c *Crawler) Issued() int64 { return c.issued.Load() }

// All retrieves every tuple matching q. The result is deduplicated by ID and
// sorted by ID for determinism.
func (c *Crawler) All(q query.Query) ([]types.Tuple, error) {
	seen := make(map[int]types.Tuple)
	if err := c.crawl(q, seen, 0); err != nil {
		return nil, err
	}
	out := make([]types.Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (c *Crawler) crawl(root query.Query, seen map[int]types.Tuple, _ int) error {
	work := []query.Query{root}
	for len(work) > 0 {
		q := work[len(work)-1]
		work = work[:len(work)-1]
		if q.Empty() {
			continue
		}
		if c.opts.MaxQueries > 0 && c.queries.Load() >= c.opts.MaxQueries {
			return ErrBudget
		}
		c.queries.Add(1)
		var res hidden.Result
		var err error
		if c.opts.Probe != nil {
			var issued bool
			res, issued, err = c.opts.Probe(q)
			if issued {
				c.issued.Add(1)
			}
		} else {
			res, err = c.db.TopK(q)
			c.issued.Add(1)
		}
		if err != nil {
			return err
		}
		for _, t := range res.Tuples {
			if c.Observe != nil {
				c.Observe(t)
			}
			seen[t.ID] = t
		}
		if !res.Overflow {
			continue
		}
		parts, err := c.split(q, res.Tuples)
		if err != nil {
			return fmt.Errorf("%w (query %v)", err, q)
		}
		work = append(work, parts...)
	}
	return nil
}

// split partitions q into disjoint sub-queries. It prefers an ordinal
// attribute on which the returned tuples take at least two distinct values
// (binary range split at the median); failing that it enumerates the values
// of a free categorical attribute (conjunctive point predicates, §2.1).
func (c *Crawler) split(q query.Query, returned []types.Tuple) ([]query.Query, error) {
	bestAttr, bestDistinct := -1, 1
	var bestVals []float64
	for _, attr := range c.opts.SplitAttrs {
		vals := make([]float64, 0, len(returned))
		for _, t := range returned {
			vals = append(vals, t.Ord[attr])
		}
		sort.Float64s(vals)
		distinct := 1
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[i-1] {
				distinct++
			}
		}
		if distinct > bestDistinct {
			bestAttr, bestDistinct, bestVals = attr, distinct, vals
		}
	}
	if bestAttr >= 0 {
		distinctVals := bestVals[:0:0]
		for i, v := range bestVals {
			if i == 0 || v != bestVals[i-1] {
				distinctVals = append(distinctVals, v)
			}
		}
		v := distinctVals[len(distinctVals)/2]
		if v == distinctVals[0] {
			v = distinctVals[1]
		}
		cur, has := q.Ranges[bestAttr]
		if !has {
			cur = types.FullInterval()
		}
		loQ := q.Clone()
		loQ.Ranges[bestAttr] = cur.Intersect(types.Interval{Lo: cur.Lo, LoOpen: cur.LoOpen, Hi: v, HiOpen: true})
		hiQ := q.Clone()
		hiQ.Ranges[bestAttr] = cur.Intersect(types.Interval{Lo: v, LoOpen: false, Hi: cur.Hi, HiOpen: cur.HiOpen})
		return []query.Query{loQ, hiQ}, nil
	}
	// No diversity among the returned page (always the case when k = 1):
	// point-split at the returned value of some attribute whose interval
	// is not yet a single point. All three parts strictly shrink.
	for _, attr := range c.opts.SplitAttrs {
		cur, has := q.Ranges[attr]
		if !has {
			cur = types.FullInterval()
		}
		if cur.Lo == cur.Hi {
			continue // already a point predicate
		}
		v := returned[0].Ord[attr]
		loQ := q.Clone()
		loQ.Ranges[attr] = cur.Intersect(types.Interval{Lo: cur.Lo, LoOpen: cur.LoOpen, Hi: v, HiOpen: true})
		midQ := q.Clone()
		midQ.Ranges[attr] = types.ClosedInterval(v, v)
		hiQ := q.Clone()
		hiQ.Ranges[attr] = cur.Intersect(types.Interval{Lo: v, LoOpen: true, Hi: cur.Hi, HiOpen: cur.HiOpen})
		return []query.Query{loQ, midQ, hiQ}, nil
	}
	return c.splitCategorical(q, returned)
}

// splitCategorical partitions q by enumerating the declared values of a
// categorical attribute on which the returned tuples differ.
func (c *Crawler) splitCategorical(q query.Query, returned []types.Tuple) ([]query.Query, error) {
	schema := c.db.Schema()
	for i := 0; i < schema.Len(); i++ {
		attr := schema.Attr(i)
		if attr.Kind != types.Categorical || len(attr.Values) < 2 {
			continue
		}
		if _, fixed := q.Cats[attr.Name]; fixed {
			continue
		}
		parts := make([]query.Query, 0, len(attr.Values))
		for _, v := range attr.Values {
			parts = append(parts, q.WithCat(attr.Name, v))
		}
		return parts, nil
	}
	return nil, ErrUnsplittable
}
