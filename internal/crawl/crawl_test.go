package crawl

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

func schema() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "a", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "b", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "c", Kind: types.Categorical, Values: []string{"x", "y", "z"}},
	})
}

func mkDB(t testing.TB, rng *rand.Rand, n, k int, gridded bool) (*hidden.DB, []types.Tuple) {
	t.Helper()
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		a := rng.Float64() * 100
		if gridded {
			a = float64(rng.Intn(8)) * 12
		}
		tuples[i] = types.Tuple{
			ID:  i,
			Ord: []float64{a, rng.Float64() * 100, 0},
			Cat: map[string]string{"c": []string{"x", "y", "z"}[rng.Intn(3)]},
		}
	}
	sys := hidden.RankerAdapter{R: ranking.NewSingle("sys", 1, ranking.Desc)}
	return hidden.MustDB(schema(), tuples, hidden.Options{K: k, Ranker: sys}), tuples
}

// TestCrawlCompleteProperty: the crawler must retrieve exactly the matching
// tuple set for random databases, k values, and queries.
func TestCrawlCompleteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rng.Seed(seed)
		n := 30 + rng.Intn(200)
		k := 1 + rng.Intn(7)
		db, all := mkDB(t, rng, n, k, rng.Intn(2) == 0)
		q := query.New()
		if rng.Intn(2) == 0 {
			q = q.WithCat("c", "y")
		}
		if rng.Intn(2) == 0 {
			lo := rng.Float64() * 60
			q = q.WithRange(0, types.ClosedInterval(lo, lo+30))
		}
		c := New(db, Options{})
		got, err := c.All(q)
		if err != nil {
			t.Logf("crawl error: %v", err)
			return false
		}
		want := map[int]bool{}
		for _, tp := range all {
			if q.Matches(tp) {
				want[tp.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Logf("got %d, want %d (n=%d k=%d)", len(got), len(want), n, k)
			return false
		}
		for _, tp := range got {
			if !want[tp.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCrawlBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db, _ := mkDB(t, rng, 500, 2, false)
	c := New(db, Options{MaxQueries: 5})
	_, err := c.All(query.New())
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if c.Queries() > 5 {
		t.Fatalf("budget exceeded: %d", c.Queries())
	}
}

func TestCrawlObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, _ := mkDB(t, rng, 60, 4, false)
	c := New(db, Options{})
	seen := 0
	c.Observe = func(types.Tuple) { seen++ }
	got, err := c.All(query.New())
	if err != nil {
		t.Fatal(err)
	}
	if seen < len(got) {
		t.Fatalf("Observe saw %d < %d tuples", seen, len(got))
	}
}

// TestCrawlUnsplittable: >k tuples identical on every attribute cannot be
// separated; the crawler must say so rather than loop.
func TestCrawlUnsplittable(t *testing.T) {
	dup := types.Tuple{Ord: []float64{5, 5, 0}, Cat: map[string]string{"c": "x"}}
	tuples := make([]types.Tuple, 10)
	for i := range tuples {
		tuples[i] = dup.Clone()
		tuples[i].ID = i
	}
	db := hidden.MustDB(schema(), tuples, hidden.Options{K: 3})
	c := New(db, Options{})
	_, err := c.All(query.New())
	if !errors.Is(err, ErrUnsplittable) {
		t.Fatalf("want ErrUnsplittable, got %v", err)
	}
}

// TestCrawlCategoricalSplit: identical ordinals but distinct categories must
// still crawl completely via categorical enumeration.
func TestCrawlCategoricalSplit(t *testing.T) {
	tuples := make([]types.Tuple, 9)
	for i := range tuples {
		tuples[i] = types.Tuple{
			ID:  i,
			Ord: []float64{5, 5, 0},
			Cat: map[string]string{"c": []string{"x", "y", "z"}[i%3]},
		}
	}
	db := hidden.MustDB(schema(), tuples, hidden.Options{K: 4})
	c := New(db, Options{})
	got, err := c.All(query.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("got %d tuples, want 9", len(got))
	}
}

// TestCrawlCostScalesWithK: crawling the same data with a larger k must not
// cost more queries (each page reveals more).
func TestCrawlCostScalesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tuples := make([]types.Tuple, 300)
	for i := range tuples {
		tuples[i] = types.Tuple{
			ID:  i,
			Ord: []float64{rng.Float64() * 100, rng.Float64() * 100, 0},
			Cat: map[string]string{"c": "x"},
		}
	}
	cost := func(k int) int64 {
		db := hidden.MustDB(schema(), tuples, hidden.Options{K: k})
		c := New(db, Options{})
		if _, err := c.All(query.New()); err != nil {
			t.Fatal(err)
		}
		return c.Queries()
	}
	c2, c20 := cost(2), cost(20)
	if c20 >= c2 {
		t.Fatalf("k=20 crawl (%d) not cheaper than k=2 (%d)", c20, c2)
	}
}

// TestProbeHookAccounting: Options.Probe replaces direct database calls and
// splits the counters — every attempt charges Queries, but only probes the
// hook reports as issued charge Issued. This is the contract the engine's
// coalescing layer relies on to charge deduplicated crawl probes once.
func TestProbeHookAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db, all := mkDB(t, rng, 300, 5, false)
	var attempts, issued int64
	c := New(db, Options{Probe: func(q query.Query) (hidden.Result, bool, error) {
		attempts++
		res, err := db.TopK(q)
		// A toy coalescing layer: every other probe is "free" (as if
		// answered by a cache or an in-flight duplicate).
		free := attempts%2 == 0
		if !free {
			issued++
		}
		return res, !free, err
	}})
	got, err := c.All(query.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("crawl through probe hook retrieved %d tuples, want %d", len(got), len(all))
	}
	if attempts == 0 {
		t.Fatal("probe hook never called")
	}
	if c.Queries() != attempts {
		t.Errorf("Queries() = %d, want %d attempts", c.Queries(), attempts)
	}
	if c.Issued() != issued {
		t.Errorf("Issued() = %d, want %d", c.Issued(), issued)
	}
	if c.Issued() >= c.Queries() {
		t.Errorf("Issued() = %d not below Queries() = %d despite free probes", c.Issued(), c.Queries())
	}
}

// TestProbeHookBudget: MaxQueries bounds probe *attempts*, before any
// coalescing — a crawl does not get a bigger budget just because its probes
// were answered for free.
func TestProbeHookBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db, _ := mkDB(t, rng, 500, 2, false)
	c := New(db, Options{MaxQueries: 5, Probe: func(q query.Query) (hidden.Result, bool, error) {
		res, err := db.TopK(q)
		return res, false, err // everything free
	}})
	if _, err := c.All(query.New()); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if c.Queries() > 5 {
		t.Fatalf("budget exceeded: %d attempts", c.Queries())
	}
	if c.Issued() != 0 {
		t.Fatalf("free probes charged as issued: %d", c.Issued())
	}
}
