// Axis-space view of a ranking function.
//
// Every reranking algorithm in internal/core works in "axis coordinates":
// z_j = dir_j · v_j where v_j is the real value of the j-th ranked attribute
// and dir_j ∈ {+1, -1} is the ranker's preference direction. In axis space,
// smaller coordinates are always better and the score function is monotone
// nondecreasing coordinatewise, so the subspace dominating a point is the
// lower-left orthant — the geometry Figures 1–5 of the paper draw.

package ranking

import (
	"math"

	"repro/internal/colstore"
	"repro/internal/query"
	"repro/internal/types"
)

// Axis wraps a Ranker together with the schema it ranks over and provides
// real↔axis coordinate transforms, domain bounds in axis space, and score
// evaluation on axis points.
//
// An Axis carries small scratch buffers reused by the geometric primitives
// (corner evaluation, tightening), so it is NOT safe for concurrent use.
// Every cursor builds its own Axis and drives it from one goroutine, which
// is the established cursor contract.
type Axis struct {
	R      Ranker
	Schema *types.Schema

	attrs []int     // schema indexes, copy of R.Attrs()
	dirs  []float64 // +1 asc, -1 desc, per position in attrs
	lo    []float64 // axis-space domain minima (best possible per attribute)
	hi    []float64 // axis-space domain maxima (worst possible per attribute)

	cornerBuf []float64 // scratch for bestCorner (contour.go)
	scoreBuf  []float64 // scratch for ScoreAxis value conversion
}

// NewAxis builds the axis view of r over schema s.
func NewAxis(r Ranker, s *types.Schema) *Axis {
	attrs := r.Attrs()
	a := &Axis{
		R:      r,
		Schema: s,
		attrs:  append([]int(nil), attrs...),
		dirs:   make([]float64, len(attrs)),
		lo:     make([]float64, len(attrs)),
		hi:     make([]float64, len(attrs)),
	}
	for j, attr := range a.attrs {
		a.dirs[j] = float64(r.Dir(j))
		d := s.Domain(attr)
		z1 := a.dirs[j] * d.Min
		z2 := a.dirs[j] * d.Max
		a.lo[j] = math.Min(z1, z2)
		a.hi[j] = math.Max(z1, z2)
	}
	return a
}

// M returns the number of ranked attributes (the dimensionality of axis
// space).
func (a *Axis) M() int { return len(a.attrs) }

// Attrs returns the schema indexes of the ranked attributes.
func (a *Axis) Attrs() []int { return a.attrs }

// Lo returns the axis-space domain minima (the best corner). Do not modify.
func (a *Axis) Lo() []float64 { return a.lo }

// Hi returns the axis-space domain maxima (the worst corner). Do not modify.
func (a *Axis) Hi() []float64 { return a.hi }

// ToAxis converts tuple t's ranked attributes to an axis point.
func (a *Axis) ToAxis(t types.Tuple) []float64 {
	return a.ToAxisInto(t, make([]float64, len(a.attrs)))
}

// ToAxisInto converts t's ranked attributes into dst (which must have length
// M) and returns it — the allocation-free ToAxis for per-tuple hot loops.
func (a *Axis) ToAxisInto(t types.Tuple, dst []float64) []float64 {
	for j, attr := range a.attrs {
		dst[j] = a.dirs[j] * t.Ord[attr]
	}
	return dst
}

// ToValue converts one axis coordinate back to a real attribute value.
func (a *Axis) ToValue(j int, z float64) float64 { return a.dirs[j] * z }

// ScoreAxis evaluates the ranking score at an axis point.
func (a *Axis) ScoreAxis(z []float64) float64 {
	if a.scoreBuf == nil {
		a.scoreBuf = make([]float64, len(a.attrs))
	}
	for j := range z {
		a.scoreBuf[j] = a.dirs[j] * z[j]
	}
	return a.R.Score(a.scoreBuf)
}

// LowerBound returns the smallest score any tuple inside box b could have:
// the score of b's best corner clamped to the attribute domains. It is the
// admissible bound that orders the best-first frontier and the lazy region
// heap in internal/core.
func (a *Axis) LowerBound(b query.Box) float64 {
	return a.ScoreAxis(a.bestCorner(b))
}

// UpperBound returns the largest score any tuple inside b (clamped to the
// attribute domains) could have — the worst-corner counterpart of
// LowerBound, used to anchor the speculative tightening ladder.
func (a *Axis) UpperBound(b query.Box) float64 {
	if a.cornerBuf == nil {
		a.cornerBuf = make([]float64, a.M())
	}
	c := a.cornerBuf
	for j := range c {
		c[j] = math.Min(b.Dims[j].Hi, a.hi[j])
		if lo := math.Max(b.Dims[j].Lo, a.lo[j]); c[j] < lo {
			c[j] = lo
		}
	}
	return a.ScoreAxis(c)
}

// ScoreTuple evaluates the ranking score of a tuple, reusing the axis's
// scratch buffer (unlike the package-level ScoreTuple, which allocates the
// projection per call).
func (a *Axis) ScoreTuple(t types.Tuple) float64 {
	if a.scoreBuf == nil {
		a.scoreBuf = make([]float64, len(a.attrs))
	}
	for j, attr := range a.attrs {
		a.scoreBuf[j] = t.Ord[attr]
	}
	return a.R.Score(a.scoreBuf)
}

// ToAxisViewInto is ToAxisInto reading the ranked attributes straight from a
// columnar view row, skipping tuple materialization entirely.
func (a *Axis) ToAxisViewInto(v colstore.View, row int, dst []float64) []float64 {
	for j, attr := range a.attrs {
		dst[j] = a.dirs[j] * v.Ord(row, attr)
	}
	return dst
}

// ScoreView evaluates the ranking score of a columnar view row without
// materializing the tuple.
func (a *Axis) ScoreView(v colstore.View, row int) float64 {
	if a.scoreBuf == nil {
		a.scoreBuf = make([]float64, len(a.attrs))
	}
	for j, attr := range a.attrs {
		a.scoreBuf[j] = v.Ord(row, attr)
	}
	return a.R.Score(a.scoreBuf)
}

// DomainBox returns the closed axis-space box spanning the attribute domains.
func (a *Axis) DomainBox() query.Box {
	b := query.Box{Dims: make([]types.Interval, len(a.attrs))}
	for j := range a.attrs {
		b.Dims[j] = types.ClosedInterval(a.lo[j], a.hi[j])
	}
	return b
}

// AxisInterval converts a real-value interval on the j-th ranked attribute to
// axis space (flipping and swapping bounds for Desc attributes).
func (a *Axis) AxisInterval(j int, iv types.Interval) types.Interval {
	if a.dirs[j] > 0 {
		return iv
	}
	return types.Interval{
		Lo: -iv.Hi, Hi: -iv.Lo,
		LoOpen: iv.HiOpen, HiOpen: iv.LoOpen,
	}
}

// RealInterval converts an axis-space interval on the j-th ranked attribute
// back to a real-value interval.
func (a *Axis) RealInterval(j int, iv types.Interval) types.Interval {
	return a.AxisInterval(j, iv) // the transform is an involution
}

// BoxToQuery translates an axis-space box into range predicates on the real
// attributes, intersected onto base. Dimensions spanning the full domain are
// still emitted: real search interfaces require explicit ranges and the
// hidden-DB simulator treats them equivalently.
func (a *Axis) BoxToQuery(base query.Query, b query.Box) query.Query {
	var q query.Query
	a.BoxToQueryInto(base, b, &q)
	return q
}

// BoxToQueryInto is BoxToQuery writing into a caller-owned scratch query,
// reusing its maps. The per-probe fast path: the old clone-per-dimension
// construction allocated m+1 query copies per probe.
func (a *Axis) BoxToQueryInto(base query.Query, b query.Box, dst *query.Query) {
	dst.CopyFrom(base)
	for j, attr := range a.attrs {
		dst.AddRange(attr, a.RealInterval(j, b.Dims[j]))
	}
}

// QueryToBox extracts the constraints base places on the ranked attributes as
// an axis-space box (unconstrained dimensions become the full domain), so
// that search can start from the user query's own region.
func (a *Axis) QueryToBox(base query.Query) query.Box {
	b := a.DomainBox()
	for j, attr := range a.attrs {
		if iv, ok := base.Ranges[attr]; ok {
			b.Dims[j] = b.Dims[j].Intersect(a.AxisInterval(j, iv))
		}
	}
	return b
}

// Dominates reports whether axis point za dominates zb: za is no worse on
// every coordinate (and the two points may be equal).
func Dominates(za, zb []float64) bool {
	for j := range za {
		if za[j] > zb[j] {
			return false
		}
	}
	return true
}
