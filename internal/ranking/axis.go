// Axis-space view of a ranking function.
//
// Every reranking algorithm in internal/core works in "axis coordinates":
// z_j = dir_j · v_j where v_j is the real value of the j-th ranked attribute
// and dir_j ∈ {+1, -1} is the ranker's preference direction. In axis space,
// smaller coordinates are always better and the score function is monotone
// nondecreasing coordinatewise, so the subspace dominating a point is the
// lower-left orthant — the geometry Figures 1–5 of the paper draw.

package ranking

import (
	"math"

	"repro/internal/query"
	"repro/internal/types"
)

// Axis wraps a Ranker together with the schema it ranks over and provides
// real↔axis coordinate transforms, domain bounds in axis space, and score
// evaluation on axis points.
type Axis struct {
	R      Ranker
	Schema *types.Schema

	attrs []int     // schema indexes, copy of R.Attrs()
	dirs  []float64 // +1 asc, -1 desc, per position in attrs
	lo    []float64 // axis-space domain minima (best possible per attribute)
	hi    []float64 // axis-space domain maxima (worst possible per attribute)
}

// NewAxis builds the axis view of r over schema s.
func NewAxis(r Ranker, s *types.Schema) *Axis {
	attrs := r.Attrs()
	a := &Axis{
		R:      r,
		Schema: s,
		attrs:  append([]int(nil), attrs...),
		dirs:   make([]float64, len(attrs)),
		lo:     make([]float64, len(attrs)),
		hi:     make([]float64, len(attrs)),
	}
	for j, attr := range a.attrs {
		a.dirs[j] = float64(r.Dir(j))
		d := s.Domain(attr)
		z1 := a.dirs[j] * d.Min
		z2 := a.dirs[j] * d.Max
		a.lo[j] = math.Min(z1, z2)
		a.hi[j] = math.Max(z1, z2)
	}
	return a
}

// M returns the number of ranked attributes (the dimensionality of axis
// space).
func (a *Axis) M() int { return len(a.attrs) }

// Attrs returns the schema indexes of the ranked attributes.
func (a *Axis) Attrs() []int { return a.attrs }

// Lo returns the axis-space domain minima (the best corner). Do not modify.
func (a *Axis) Lo() []float64 { return a.lo }

// Hi returns the axis-space domain maxima (the worst corner). Do not modify.
func (a *Axis) Hi() []float64 { return a.hi }

// ToAxis converts tuple t's ranked attributes to an axis point.
func (a *Axis) ToAxis(t types.Tuple) []float64 {
	z := make([]float64, len(a.attrs))
	for j, attr := range a.attrs {
		z[j] = a.dirs[j] * t.Ord[attr]
	}
	return z
}

// ToValue converts one axis coordinate back to a real attribute value.
func (a *Axis) ToValue(j int, z float64) float64 { return a.dirs[j] * z }

// ScoreAxis evaluates the ranking score at an axis point.
func (a *Axis) ScoreAxis(z []float64) float64 {
	vals := make([]float64, len(z))
	for j := range z {
		vals[j] = a.dirs[j] * z[j]
	}
	return a.R.Score(vals)
}

// ScoreTuple evaluates the ranking score of a tuple.
func (a *Axis) ScoreTuple(t types.Tuple) float64 { return ScoreTuple(a.R, t) }

// DomainBox returns the closed axis-space box spanning the attribute domains.
func (a *Axis) DomainBox() query.Box {
	b := query.Box{Dims: make([]types.Interval, len(a.attrs))}
	for j := range a.attrs {
		b.Dims[j] = types.ClosedInterval(a.lo[j], a.hi[j])
	}
	return b
}

// AxisInterval converts a real-value interval on the j-th ranked attribute to
// axis space (flipping and swapping bounds for Desc attributes).
func (a *Axis) AxisInterval(j int, iv types.Interval) types.Interval {
	if a.dirs[j] > 0 {
		return iv
	}
	return types.Interval{
		Lo: -iv.Hi, Hi: -iv.Lo,
		LoOpen: iv.HiOpen, HiOpen: iv.LoOpen,
	}
}

// RealInterval converts an axis-space interval on the j-th ranked attribute
// back to a real-value interval.
func (a *Axis) RealInterval(j int, iv types.Interval) types.Interval {
	return a.AxisInterval(j, iv) // the transform is an involution
}

// BoxToQuery translates an axis-space box into range predicates on the real
// attributes, intersected onto base. Dimensions spanning the full domain are
// still emitted: real search interfaces require explicit ranges and the
// hidden-DB simulator treats them equivalently.
func (a *Axis) BoxToQuery(base query.Query, b query.Box) query.Query {
	q := base.Clone()
	for j, attr := range a.attrs {
		q = q.WithRange(attr, a.RealInterval(j, b.Dims[j]))
	}
	return q
}

// QueryToBox extracts the constraints base places on the ranked attributes as
// an axis-space box (unconstrained dimensions become the full domain), so
// that search can start from the user query's own region.
func (a *Axis) QueryToBox(base query.Query) query.Box {
	b := a.DomainBox()
	for j, attr := range a.attrs {
		if iv, ok := base.Ranges[attr]; ok {
			b.Dims[j] = b.Dims[j].Intersect(a.AxisInterval(j, iv))
		}
	}
	return b
}

// Dominates reports whether axis point za dominates zb: za is no worse on
// every coordinate (and the two points may be equal).
func Dominates(za, zb []float64) bool {
	for j := range za {
		if za[j] > zb[j] {
			return false
		}
	}
	return true
}
