// Package ranking defines user-specified and system ranking functions.
//
// Per §2.2 of the paper, a user-specified ranking function S(q, t) maps a
// tuple's ordinal attributes to a score; smaller scores rank higher. The only
// requirement is monotonicity: there is a per-attribute value order ≺ such
// that a tuple cannot outrank another that is at least as good on every
// attribute. We encode ≺ as a per-attribute Direction and expose an "axis
// view" in which smaller coordinates are always preferable and S is monotone
// nondecreasing coordinatewise — the geometry every reranking algorithm in
// internal/core relies on.
package ranking

import (
	"fmt"
	"math"

	"repro/internal/types"
)

// Direction states which way an attribute's values are preferred by a
// monotone ranking function.
type Direction int

const (
	// Asc means smaller attribute values are preferred (e.g. price).
	Asc Direction = 1
	// Desc means larger attribute values are preferred (e.g. carat).
	Desc Direction = -1
)

// String returns "asc" or "desc".
func (d Direction) String() string {
	if d == Desc {
		return "desc"
	}
	return "asc"
}

// Ranker is a monotone user-specified ranking function over a subset of the
// schema's ordinal attributes. Implementations must be monotone: Score must
// be nondecreasing in each attribute along its declared Direction's
// "worse" way (i.e. nondecreasing in axis coordinates).
type Ranker interface {
	// Attrs returns the schema indexes of the ordinal attributes the
	// function depends on, in a fixed order. The returned slice must not
	// be modified.
	Attrs() []int
	// Dir returns the preference direction of the j-th attribute of
	// Attrs().
	Dir(j int) Direction
	// Score returns the ranking score given the values of Attrs() in
	// order (real attribute values, not axis coordinates). Smaller is
	// better.
	Score(vals []float64) float64
	// Name returns a short description for logs and experiment output.
	Name() string
}

// ScoreTuple evaluates r on a full tuple by projecting the attributes the
// ranker uses.
func ScoreTuple(r Ranker, t types.Tuple) float64 {
	attrs := r.Attrs()
	vals := make([]float64, len(attrs))
	for j, a := range attrs {
		vals[j] = t.Ord[a]
	}
	return r.Score(vals)
}

// Linear is a weighted linear combination Σ w_j · A_{attrs[j]}. Weights may
// be negative; a negative weight simply means larger values are preferred on
// that attribute (Direction Desc).
type Linear struct {
	attrs   []int
	weights []float64
	name    string
}

// NewLinear builds a linear ranker. attrs and weights must have equal,
// non-zero length and weights must be non-zero (a zero weight would make the
// attribute irrelevant; drop it instead).
func NewLinear(name string, attrs []int, weights []float64) (*Linear, error) {
	if len(attrs) == 0 || len(attrs) != len(weights) {
		return nil, fmt.Errorf("linear ranker needs matching non-empty attrs/weights, got %d/%d", len(attrs), len(weights))
	}
	seen := map[int]bool{}
	for j, a := range attrs {
		if seen[a] {
			return nil, fmt.Errorf("attribute %d repeated", a)
		}
		seen[a] = true
		if weights[j] == 0 || math.IsNaN(weights[j]) || math.IsInf(weights[j], 0) {
			return nil, fmt.Errorf("weight %d must be finite and non-zero, got %g", j, weights[j])
		}
	}
	return &Linear{
		attrs:   append([]int(nil), attrs...),
		weights: append([]float64(nil), weights...),
		name:    name,
	}, nil
}

// MustLinear is NewLinear that panics on error.
func MustLinear(name string, attrs []int, weights []float64) *Linear {
	l, err := NewLinear(name, attrs, weights)
	if err != nil {
		panic(err)
	}
	return l
}

// Attrs implements Ranker.
func (l *Linear) Attrs() []int { return l.attrs }

// Dir implements Ranker: positive weight prefers small values.
func (l *Linear) Dir(j int) Direction {
	if l.weights[j] < 0 {
		return Desc
	}
	return Asc
}

// Weights returns the weight vector (not a copy; do not modify).
func (l *Linear) Weights() []float64 { return l.weights }

// Score implements Ranker.
func (l *Linear) Score(vals []float64) float64 {
	s := 0.0
	for j, v := range vals {
		s += l.weights[j] * v
	}
	return s
}

// Name implements Ranker.
func (l *Linear) Name() string { return l.name }

// Single ranks by one attribute only: ORDER BY A_attr ASC|DESC. It is the
// function class served by the paper's 1D algorithms.
type Single struct {
	attr int
	dir  Direction
	name string
}

// NewSingle builds a single-attribute ranker.
func NewSingle(name string, attr int, dir Direction) *Single {
	return &Single{attr: attr, dir: dir, name: name}
}

// Attrs implements Ranker.
func (s *Single) Attrs() []int { return []int{s.attr} }

// Dir implements Ranker.
func (s *Single) Dir(int) Direction { return s.dir }

// Score implements Ranker.
func (s *Single) Score(vals []float64) float64 { return float64(s.dir) * vals[0] }

// Name implements Ranker.
func (s *Single) Name() string { return s.name }

// Attr returns the single ranked attribute's schema index.
func (s *Single) Attr() int { return s.attr }

// Ratio ranks by Num/Den (e.g. price-per-carat, mileage-per-year). It is
// monotone on domains where the denominator is strictly positive: the score
// increases with Num and decreases with Den, so Dir(Num)=Asc, Dir(Den)=Desc.
// Callers must ensure den's domain is positive.
type Ratio struct {
	num, den int
	name     string
}

// NewRatio builds a ratio ranker over schema attribute indexes num and den.
func NewRatio(name string, num, den int) *Ratio {
	return &Ratio{num: num, den: den, name: name}
}

// Attrs implements Ranker.
func (r *Ratio) Attrs() []int { return []int{r.num, r.den} }

// Dir implements Ranker.
func (r *Ratio) Dir(j int) Direction {
	if j == 0 {
		return Asc
	}
	return Desc
}

// Score implements Ranker.
func (r *Ratio) Score(vals []float64) float64 {
	den := vals[1]
	if den == 0 {
		// Domains are required to exclude zero; defend anyway.
		den = math.SmallestNonzeroFloat64
	}
	return vals[0] / den
}

// Name implements Ranker.
func (r *Ratio) Name() string { return r.name }

// Negate wraps a ranker to invert its order (largest score first). Used to
// build anti-correlated system ranking functions in experiments. The result
// is still monotone, with every direction flipped.
type Negate struct {
	R Ranker
}

// Attrs implements Ranker.
func (n Negate) Attrs() []int { return n.R.Attrs() }

// Dir implements Ranker.
func (n Negate) Dir(j int) Direction { return -n.R.Dir(j) }

// Score implements Ranker.
func (n Negate) Score(vals []float64) float64 { return -n.R.Score(vals) }

// Name implements Ranker.
func (n Negate) Name() string { return "neg(" + n.R.Name() + ")" }
