package ranking

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/types"
)

func schema2() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "a", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "b", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 50}},
		{Name: "c", Kind: types.Ordinal, Domain: types.Domain{Min: 1, Max: 10}},
	})
}

func TestLinearValidation(t *testing.T) {
	if _, err := NewLinear("x", []int{0}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewLinear("x", []int{0, 0}, []float64{1, 2}); err == nil {
		t.Error("duplicate attr accepted")
	}
	if _, err := NewLinear("x", []int{0}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewLinear("x", nil, nil); err == nil {
		t.Error("empty ranker accepted")
	}
	l := MustLinear("s", []int{0, 1}, []float64{2, -3})
	if l.Dir(0) != Asc || l.Dir(1) != Desc {
		t.Error("directions wrong")
	}
	if got := l.Score([]float64{1, 1}); got != -1 {
		t.Errorf("Score = %g", got)
	}
	if l.Name() != "s" {
		t.Error("Name wrong")
	}
}

func TestSingleAndRatioAndNegate(t *testing.T) {
	s := NewSingle("s", 1, Desc)
	if s.Score([]float64{7}) != -7 || s.Attrs()[0] != 1 || s.Attr() != 1 {
		t.Error("Single broken")
	}
	r := NewRatio("r", 0, 2)
	if got := r.Score([]float64{10, 2}); got != 5 {
		t.Errorf("Ratio = %g", got)
	}
	if r.Dir(0) != Asc || r.Dir(1) != Desc {
		t.Error("Ratio directions wrong")
	}
	n := Negate{R: s}
	if n.Score([]float64{7}) != 7 || n.Dir(0) != Asc {
		t.Error("Negate broken")
	}
}

// TestMonotonicityProperty: every shipped ranker must satisfy the §2.2
// monotonicity requirement — improving any coordinate along its declared
// direction never worsens the score.
func TestMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rankers := []Ranker{
		MustLinear("l", []int{0, 1, 2}, []float64{1, -2, 0.5}),
		NewSingle("s", 1, Desc),
		NewRatio("r", 0, 2),
	}
	f := func(seed int64) bool {
		rng.Seed(seed)
		for _, r := range rankers {
			m := len(r.Attrs())
			v := make([]float64, m)
			for j := range v {
				v[j] = 1 + rng.Float64()*9 // keep ratio denominators positive
			}
			s0 := r.Score(v)
			j := rng.Intn(m)
			w := append([]float64(nil), v...)
			delta := rng.Float64() * 3
			// Move coordinate j toward "better" per its direction.
			w[j] -= float64(r.Dir(j)) * delta
			if w[j] <= 0 {
				continue
			}
			if r.Score(w) > s0+1e-12 {
				t.Logf("%s: improving attr %d worsened score: %v->%v", r.Name(), j, v, w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAxisTransforms(t *testing.T) {
	s := schema2()
	r := MustLinear("l", []int{0, 1}, []float64{1, -1}) // prefer small a, large b
	ax := NewAxis(r, s)
	if ax.M() != 2 {
		t.Fatal("M wrong")
	}
	tp := types.Tuple{Ord: []float64{10, 20, 0}}
	z := ax.ToAxis(tp)
	if z[0] != 10 || z[1] != -20 {
		t.Errorf("ToAxis = %v", z)
	}
	if got := ax.ScoreAxis(z); math.Abs(got-ScoreTuple(r, tp)) > 1e-12 {
		t.Errorf("ScoreAxis = %g, want %g", got, ScoreTuple(r, tp))
	}
	// Axis domain of the Desc attribute b∈[0,50] is [-50, 0].
	if ax.Lo()[1] != -50 || ax.Hi()[1] != 0 {
		t.Errorf("axis domain = [%g,%g]", ax.Lo()[1], ax.Hi()[1])
	}
	// Interval round-trip: AxisInterval is an involution.
	iv := types.Interval{Lo: 5, Hi: 30, LoOpen: true}
	back := ax.RealInterval(1, ax.AxisInterval(1, iv))
	if back != iv {
		t.Errorf("interval round-trip: %v -> %v", iv, back)
	}
}

func TestBoxToQueryRoundTrip(t *testing.T) {
	s := schema2()
	r := MustLinear("l", []int{0, 1}, []float64{1, -1})
	ax := NewAxis(r, s)
	base := query.New().WithCat("nope", "")
	delete(base.Cats, "nope")
	b := ax.DomainBox()
	b.Dims[0] = types.ClosedInterval(2, 7)   // a ∈ [2,7]
	b.Dims[1] = types.ClosedInterval(-30, 0) // b ∈ [0,30] in real space
	q := ax.BoxToQuery(base, b)
	if iv := q.Ranges[0]; iv.Lo != 2 || iv.Hi != 7 {
		t.Errorf("range a = %v", iv)
	}
	if iv := q.Ranges[1]; iv.Lo != 0 || iv.Hi != 30 {
		t.Errorf("range b = %v (desc flip broken)", iv)
	}
	// QueryToBox must invert BoxToQuery within the domain box.
	b2 := ax.QueryToBox(q)
	for j := range b.Dims {
		if b2.Dims[j].Lo != b.Dims[j].Lo || b2.Dims[j].Hi != b.Dims[j].Hi {
			t.Errorf("dim %d: %v -> %v", j, b.Dims[j], b2.Dims[j])
		}
	}
}

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 2}, []float64{1, 3}) {
		t.Error("weak dominance rejected")
	}
	if Dominates([]float64{1, 4}, []float64{1, 3}) {
		t.Error("non-dominance accepted")
	}
}

// TestContourMaxProperty: ContourMax returns the largest coordinate still
// compatible with beating θ; any point beyond it (others at the corner)
// must score above θ, any point at/below it at the corner scores ≤ θ.
func TestContourMaxProperty(t *testing.T) {
	s := schema2()
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		rng.Seed(seed)
		r := MustLinear("l", []int{0, 1, 2}, []float64{
			0.2 + rng.Float64(), -(0.2 + rng.Float64()), 0.2 + rng.Float64(),
		})
		ax := NewAxis(r, s)
		b := ax.DomainBox()
		theta := ax.ScoreAxis([]float64{
			b.Dims[0].Lo + rng.Float64()*(b.Dims[0].Hi-b.Dims[0].Lo),
			b.Dims[1].Lo + rng.Float64()*(b.Dims[1].Hi-b.Dims[1].Lo),
			b.Dims[2].Lo + rng.Float64()*(b.Dims[2].Hi-b.Dims[2].Lo),
		})
		for dim := 0; dim < 3; dim++ {
			v, ok := ax.ContourMax(b, dim, theta)
			corner := []float64{b.Dims[0].Lo, b.Dims[1].Lo, b.Dims[2].Lo}
			if !ok {
				// Even the best corner exceeds θ.
				if ax.ScoreAxis(corner) <= theta {
					return false
				}
				continue
			}
			at := append([]float64(nil), corner...)
			at[dim] = v
			if ax.ScoreAxis(at) > theta+1e-6 {
				return false
			}
			if v < b.Dims[dim].Hi {
				at[dim] = v + (b.Dims[dim].Hi-v)*0.01
				if ax.ScoreAxis(at) <= theta-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTightenSoundness: no point of the original box scoring strictly below
// θ may fall outside the tightened box.
func TestTightenSoundness(t *testing.T) {
	s := schema2()
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		rng.Seed(seed)
		r := MustLinear("l", []int{0, 1}, []float64{0.1 + rng.Float64(), 0.1 + rng.Float64()})
		ax := NewAxis(r, s)
		b := ax.DomainBox()
		theta := ax.ScoreAxis([]float64{rng.Float64() * 100, rng.Float64() * 50})
		tb, ok := ax.Tighten(b, theta)
		for trial := 0; trial < 60; trial++ {
			p := []float64{rng.Float64() * 100, rng.Float64() * 50}
			if ax.ScoreAxis(p) < theta-1e-9 && b.Contains(p) {
				if !ok || !tb.Contains(p) {
					t.Logf("lost point %v scoring %g < θ=%g (tb=%v ok=%v)", p, ax.ScoreAxis(p), theta, tb, ok)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualTupleOnContour: the virtual tuple must score ≥ θ (soundness of
// anti-dominance pruning) and lie inside the box.
func TestVirtualTupleOnContour(t *testing.T) {
	s := schema2()
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		rng.Seed(seed)
		w := []float64{0.1 + rng.Float64(), 0.1 + rng.Float64(), 0.1 + rng.Float64()}
		if rng.Intn(2) == 0 {
			w[1] = -w[1]
		}
		r := MustLinear("l", []int{0, 1, 2}, w)
		ax := NewAxis(r, s)
		b := ax.DomainBox()
		lo, hi := ax.Lo(), ax.Hi()
		mid := make([]float64, 3)
		for j := range mid {
			mid[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		theta := ax.ScoreAxis(mid)
		vp, ok := ax.VirtualTuple(b, theta)
		if !ok {
			return true // box cannot straddle θ; nothing to check
		}
		if ax.ScoreAxis(vp) < theta-1e-6 {
			t.Logf("S(v')=%g < θ=%g", ax.ScoreAxis(vp), theta)
			return false
		}
		for j := range vp {
			if vp[j] < lo[j]-1e-9 || vp[j] > hi[j]+1e-9 {
				t.Logf("v' outside box: %v", vp)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreTuple(t *testing.T) {
	r := MustLinear("l", []int{2, 0}, []float64{1, 10})
	tp := types.Tuple{Ord: []float64{3, 99, 5}}
	if got := ScoreTuple(r, tp); got != 35 {
		t.Errorf("ScoreTuple = %g, want 35", got)
	}
}
