// Rank-contour geometry (§4.2 of the paper).
//
// The rank-contour of a tuple t is the level set {z : S(z) = S(t)} in axis
// space. Three primitives are derived from it:
//
//   - ContourMax (the paper's ℓ(A_i), Eq. 6, and b(A_j), Eq. 8, unified):
//     given a box and a threshold θ, the largest axis value v on dimension r
//     such that a tuple with z_r = v and every other coordinate at the box's
//     best corner could still score ≤ θ. Any tuple beating θ inside the box
//     must be strictly below that bound on every dimension, so boxes can be
//     "tightened" without losing qualifying tuples.
//
//   - VirtualTuple (§4.3.2): a point v' on the contour inside a box chosen to
//     maximize the pruned volume; used by MD-BINARY both for the direct
//     domination probe and for virtual-tuple pruning.
//
// For general monotone functions the primitives use bisection (pure local
// computation — it costs zero database queries, which is the only cost the
// paper charges). Linear functions get closed forms.

package ranking

import (
	"math"

	"repro/internal/query"
	"repro/internal/types"
)

// contourIters bounds bisection steps; 60 halvings exhaust float64 precision
// on any bounded domain.
const contourIters = 60

// ContourMax returns the largest v in [lo_r, hi_r] (the box's r-th dimension
// clamped to the domain) such that S(corner with z_r ← v) ≤ θ, where corner
// is the box's per-dimension best (smallest) corner clamped to the domain.
// Returns (v, true) when such v exists, or (0, false) when even the corner
// itself scores above θ (no tuple in the box can beat θ via this bound).
func (a *Axis) ContourMax(b query.Box, r int, theta float64) (float64, bool) {
	corner := a.bestCorner(b)
	loR, hiR := corner[r], math.Min(b.Dims[r].Hi, a.hi[r])
	if hiR < loR {
		hiR = loR
	}
	probe := func(v float64) float64 {
		corner[r] = v
		return a.ScoreAxis(corner)
	}
	if probe(loR) > theta {
		return 0, false
	}
	if probe(hiR) <= theta {
		return hiR, true
	}
	// Monotone in v: bisect for the crossing point.
	lo, hi := loR, hiR // invariant: probe(lo) ≤ θ < probe(hi)
	for i := 0; i < contourIters; i++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break
		}
		if probe(mid) <= theta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// bestCorner returns the box's smallest (best) axis corner, clamped to the
// attribute domains. The returned slice is the axis's scratch buffer: it is
// valid until the next bestCorner call and must not be retained (Axis is
// single-goroutine by contract).
func (a *Axis) bestCorner(b query.Box) []float64 {
	if a.cornerBuf == nil {
		a.cornerBuf = make([]float64, a.M())
	}
	c := a.cornerBuf
	for j := range c {
		c[j] = math.Max(b.Dims[j].Lo, a.lo[j])
		if hi := math.Min(b.Dims[j].Hi, a.hi[j]); c[j] > hi {
			c[j] = hi
		}
	}
	return c
}

// Tighten clamps every dimension of b to its ContourMax bound for threshold
// θ and reports whether the box can still contain a tuple scoring strictly
// below θ. When it cannot (the best corner already scores ≥ θ), ok is false
// and the box should be discarded. Tightening generalizes the paper's ℓ(A_i)
// (Eq. 6, box = full domain) and b(A_j) (Eq. 8, box = a partition cell).
func (a *Axis) Tighten(b query.Box, theta float64) (query.Box, bool) {
	if b.Empty() {
		return b, false
	}
	corner := a.bestCorner(b)
	if !(a.ScoreAxis(corner) < theta) {
		return b, false
	}
	t := b.Clone()
	for r := range t.Dims {
		bound, ok := a.ContourMax(b, r, theta)
		if !ok {
			return t, false
		}
		// Tuples at exactly the bound score ≥ θ only when every other
		// coordinate sits at the corner; keep the bound closed to stay
		// conservative (correctness over tightness).
		t.Dims[r] = t.Dims[r].Intersect(types.ClosedInterval(math.Inf(-1), bound))
		if t.Dims[r].Empty() {
			return t, false
		}
	}
	return t, true
}

// VirtualTuple returns a point v' inside box b lying (approximately) on the
// θ-contour, chosen to maximize the volume of the pruned anti-dominance
// region Π(hi_j − v'_j) · dominance region Π(v'_j − lo_j). ok is false when
// the box's best corner cannot beat θ (nothing to prune — discard the box)
// or the box's worst corner already beats θ (the whole box outranks θ; no
// useful contour point exists inside).
//
// For Linear rankers a water-filling closed form is used; otherwise the
// diagonal between the box's best and worst corners is bisected to its
// contour crossing, which is always a valid (if not volume-optimal) choice.
func (a *Axis) VirtualTuple(b query.Box, theta float64) ([]float64, bool) {
	lo := a.bestCorner(b)
	hi := make([]float64, a.M())
	for j := range hi {
		hi[j] = math.Min(b.Dims[j].Hi, a.hi[j])
		if hi[j] < lo[j] {
			return nil, false
		}
	}
	sLo := a.ScoreAxis(lo)
	sHi := a.ScoreAxis(hi)
	if !(sLo < theta) || sHi < theta {
		return nil, false
	}
	if lin, ok := a.R.(*Linear); ok {
		if v, ok := a.waterFill(lin, lo, hi, theta); ok {
			return v, true
		}
	}
	// Diagonal bisection: v(α) = lo + α·(hi-lo); S(v(0)) < θ ≤ S(v(1)).
	// One scratch point is reused across iterations (ScoreAxis copies).
	loA, hiA := 0.0, 1.0
	v := make([]float64, len(lo))
	point := func(alpha float64) []float64 {
		for j := range v {
			v[j] = lo[j] + alpha*(hi[j]-lo[j])
		}
		return v
	}
	for i := 0; i < contourIters; i++ {
		mid := loA + (hiA-loA)/2
		if a.ScoreAxis(point(mid)) < theta {
			loA = mid
		} else {
			hiA = mid
		}
	}
	// Round toward the worse side so S(v') ≥ θ, which the pruning step
	// requires for soundness.
	return append([]float64(nil), point(hiA)...), true
}

// waterFill maximizes Π_j (v_j − lo_j) subject to Σ |w_j|·v_j = θ' (the
// linear contour in axis space, where axis weights are |w_j|) and
// lo ≤ v ≤ hi. By Lagrange the unconstrained optimum equalizes
// |w_j|·(v_j − lo_j) = λ; coordinates hitting hi_j are clamped and λ
// re-solved over the rest.
func (a *Axis) waterFill(lin *Linear, lo, hi []float64, theta float64) ([]float64, bool) {
	m := len(lo)
	w := make([]float64, m) // axis-space weights, all positive
	for j, wj := range lin.Weights() {
		w[j] = math.Abs(wj)
	}
	// Budget beyond the best corner: Σ w_j (v_j - lo_j) = θ - S(lo).
	budget := theta - a.ScoreAxis(lo)
	if budget <= 0 {
		return nil, false
	}
	v := make([]float64, m)
	copy(v, lo)
	active := make([]bool, m)
	nActive := m
	for j := range active {
		active[j] = true
	}
	for iter := 0; iter < m; iter++ {
		if nActive == 0 {
			break
		}
		lambda := budget / float64(nActive)
		clamped := false
		for j := 0; j < m; j++ {
			if !active[j] {
				continue
			}
			cand := lo[j] + lambda/w[j]
			if cand > hi[j] {
				v[j] = hi[j]
				budget -= w[j] * (hi[j] - lo[j])
				active[j] = false
				nActive--
				clamped = true
			}
		}
		if !clamped {
			for j := 0; j < m; j++ {
				if active[j] {
					v[j] = lo[j] + lambda/w[j]
				}
			}
			return v, true
		}
		if budget <= 0 {
			break
		}
	}
	// All coordinates clamped: box's worst corner is inside the contour,
	// which the caller already excluded; fall back to bisection.
	return nil, false
}
