package workload

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ranking"
)

func TestOneDConstruction(t *testing.T) {
	ds := dataset.DOT(1, 2000)
	items := OneD(rand.New(rand.NewSource(2)), ds, Spec{Count: 32, NoFilter: 8})
	if len(items) != 32 {
		t.Fatalf("count = %d", len(items))
	}
	noFilter := 0
	for i, it := range items {
		if it.Q.NumPredicates() == 0 {
			noFilter++
			if i >= 8 {
				t.Errorf("item %d unexpectedly unfiltered", i)
			}
		}
		if it.Attr < 0 || it.Attr >= ds.Schema.Len() {
			t.Fatalf("item %d ranks invalid attr %d", i, it.Attr)
		}
		if it.Dir != ranking.Asc {
			t.Errorf("item %d descending without AllowDesc", i)
		}
	}
	if noFilter != 8 {
		t.Errorf("no-filter count = %d, want 8", noFilter)
	}
	// AllowDesc produces both directions.
	items = OneD(rand.New(rand.NewSource(3)), ds, Spec{Count: 40, AllowDesc: true})
	asc, desc := 0, 0
	for _, it := range items {
		if it.Dir == ranking.Asc {
			asc++
		} else {
			desc++
		}
	}
	if asc == 0 || desc == 0 {
		t.Errorf("AllowDesc should mix directions: asc=%d desc=%d", asc, desc)
	}
}

func TestMDConstruction(t *testing.T) {
	ds := dataset.BlueNile(1, 2000)
	items := MD(rand.New(rand.NewSource(4)), ds, Spec{Count: 12, NoFilter: 3, MinAttrs: 2, MaxAttrs: 3})
	if len(items) != 12 {
		t.Fatalf("count = %d", len(items))
	}
	for i, it := range items {
		n := len(it.R.Attrs())
		if n < 2 || n > 3 {
			t.Errorf("item %d ranks %d attrs", i, n)
		}
		lin, ok := it.R.(*ranking.Linear)
		if !ok {
			t.Fatalf("item %d is not linear", i)
		}
		for _, w := range lin.Weights() {
			if w <= 0 || w > 1 {
				t.Errorf("item %d weight %g outside (0,1]", i, w)
			}
		}
	}
}

func TestSelectivityAndReorder(t *testing.T) {
	ds := dataset.YahooAutos(1, 1500)
	items := OneD(rand.New(rand.NewSource(5)), ds, Spec{Count: 10, NoFilter: 2})
	if s := Selectivity(ds, items[0].Q); s != 1 {
		t.Errorf("unfiltered selectivity = %g, want 1", s)
	}
	g2s := Reorder(rand.New(rand.NewSource(6)), ds, items, GeneralToSpecial)
	for i := 1; i < len(g2s); i++ {
		if Selectivity(ds, g2s[i].Q) > Selectivity(ds, g2s[i-1].Q)+1e-12 {
			t.Fatal("GeneralToSpecial not sorted descending by selectivity")
		}
	}
	s2g := Reorder(rand.New(rand.NewSource(6)), ds, items, SpecialToGeneral)
	for i := 1; i < len(s2g); i++ {
		if Selectivity(ds, s2g[i].Q) < Selectivity(ds, s2g[i-1].Q)-1e-12 {
			t.Fatal("SpecialToGeneral not sorted ascending")
		}
	}
	r := Reorder(rand.New(rand.NewSource(6)), ds, items, RandomOrder)
	if len(r) != len(items) {
		t.Fatal("Reorder changed length")
	}
	for _, o := range []Order{GeneralToSpecial, SpecialToGeneral, RandomOrder} {
		if o.String() == "" {
			t.Fatal("empty order name")
		}
	}
}
