// Package workload constructs the user-preference query workloads of §6.2
// and §6.3: random subsets of filtering attributes for the WHERE clause,
// with either a uniformly-drawn ranking attribute (1D) or a random-weight
// linear ranking function over a random attribute subset (MD).
package workload

import (
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// Item1D is one 1D workload entry: SELECT * WHERE Sel(q) ORDER BY Attr Dir.
type Item1D struct {
	Q    query.Query
	Attr int
	Dir  ranking.Direction
}

// ItemMD is one MD workload entry: SELECT * WHERE Sel(q) ORDER BY S(t).
type ItemMD struct {
	Q query.Query
	R ranking.Ranker
}

// Spec configures workload construction.
type Spec struct {
	// Count is the number of queries (32 for DOT, 20/12 for BN, 15/10
	// for YA in the paper).
	Count int
	// NoFilter is how many queries carry no selection condition.
	NoFilter int
	// RankAttrs are the ordinal attributes eligible for ranking;
	// defaults to every ordinal attribute.
	RankAttrs []int
	// MinAttrs/MaxAttrs bound the number of ranked attributes for MD
	// workloads (defaults 2..len(RankAttrs)).
	MinAttrs, MaxAttrs int
	// AllowDesc permits descending 1D preferences (half the queries).
	AllowDesc bool
}

func (s *Spec) defaults(ds *dataset.Dataset) {
	if len(s.RankAttrs) == 0 {
		s.RankAttrs = append([]int(nil), ds.Schema.OrdinalIndexes()...)
	}
	if s.MinAttrs == 0 {
		s.MinAttrs = 2
	}
	if s.MaxAttrs == 0 || s.MaxAttrs > len(s.RankAttrs) {
		s.MaxAttrs = len(s.RankAttrs)
	}
}

// randFilter builds a random selection condition: one or two categorical
// equality predicates, occasionally plus an ordinal range on a non-ranked
// attribute.
func randFilter(rng *rand.Rand, ds *dataset.Dataset, rankAttr int) query.Query {
	q := query.New()
	schema := ds.Schema
	var cats []types.Attribute
	for i := 0; i < schema.Len(); i++ {
		if a := schema.Attr(i); a.Kind == types.Categorical && len(a.Values) > 0 {
			cats = append(cats, a)
		}
	}
	nPred := 1 + rng.Intn(2)
	for p := 0; p < nPred && len(cats) > 0; p++ {
		a := cats[rng.Intn(len(cats))]
		q = q.WithCat(a.Name, a.Values[rng.Intn(len(a.Values))])
	}
	// Occasionally add a range predicate on an ordinal attribute other
	// than the ranked one (real users mix ranges and filters).
	if rng.Intn(3) == 0 {
		ords := schema.OrdinalIndexes()
		a := ords[rng.Intn(len(ords))]
		if a != rankAttr {
			d := schema.Domain(a)
			lo := d.Min + rng.Float64()*d.Width()*0.4
			hi := lo + d.Width()*(0.2+rng.Float64()*0.5)
			q = q.WithRange(a, types.ClosedInterval(lo, d.Clamp(hi)))
		}
	}
	return q
}

// OneD builds a 1D workload per §6.2.
func OneD(rng *rand.Rand, ds *dataset.Dataset, spec Spec) []Item1D {
	spec.defaults(ds)
	items := make([]Item1D, 0, spec.Count)
	for i := 0; i < spec.Count; i++ {
		attr := spec.RankAttrs[rng.Intn(len(spec.RankAttrs))]
		dir := ranking.Asc
		if spec.AllowDesc && rng.Intn(2) == 0 {
			dir = ranking.Desc
		}
		q := query.New()
		if i >= spec.NoFilter {
			q = randFilter(rng, ds, attr)
		}
		items = append(items, Item1D{Q: q, Attr: attr, Dir: dir})
	}
	return items
}

// MD builds an MD workload per §6.3: ranking functions are linear with
// weights drawn uniformly from (0, 1] over a random attribute subset.
func MD(rng *rand.Rand, ds *dataset.Dataset, spec Spec) []ItemMD {
	spec.defaults(ds)
	items := make([]ItemMD, 0, spec.Count)
	for i := 0; i < spec.Count; i++ {
		nAttrs := spec.MinAttrs
		if spec.MaxAttrs > spec.MinAttrs {
			nAttrs += rng.Intn(spec.MaxAttrs - spec.MinAttrs + 1)
		}
		perm := rng.Perm(len(spec.RankAttrs))[:nAttrs]
		attrs := make([]int, nAttrs)
		weights := make([]float64, nAttrs)
		for j, p := range perm {
			attrs[j] = spec.RankAttrs[p]
			weights[j] = 0.05 + 0.95*rng.Float64()
		}
		r := ranking.MustLinear("w-linear", attrs, weights)
		q := query.New()
		if i >= spec.NoFilter {
			q = randFilter(rng, ds, -1)
		}
		items = append(items, ItemMD{Q: q, R: r})
	}
	return items
}

// Selectivity returns |R(q)| / n for ordering experiments (Figure 10).
func Selectivity(ds *dataset.Dataset, q query.Query) float64 {
	if len(ds.Tuples) == 0 {
		return 0
	}
	match := 0
	for _, t := range ds.Tuples {
		if q.Matches(t) {
			match++
		}
	}
	return float64(match) / float64(len(ds.Tuples))
}

// Order rearranges a 1D workload for the Figure-10 experiment.
type Order int

const (
	// GeneralToSpecial orders queries from low to high selectivity
	// pressure (broad queries first).
	GeneralToSpecial Order = iota
	// SpecialToGeneral is the reverse.
	SpecialToGeneral
	// RandomOrder shuffles.
	RandomOrder
)

// String names the order as in Figure 10's legend.
func (o Order) String() string {
	switch o {
	case GeneralToSpecial:
		return "general to special"
	case SpecialToGeneral:
		return "special to general"
	default:
		return "random"
	}
}

// Reorder returns a copy of items arranged per the requested order.
func Reorder(rng *rand.Rand, ds *dataset.Dataset, items []Item1D, o Order) []Item1D {
	out := append([]Item1D(nil), items...)
	switch o {
	case RandomOrder:
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	case GeneralToSpecial, SpecialToGeneral:
		sel := make([]float64, len(out))
		for i, it := range out {
			sel[i] = Selectivity(ds, it.Q)
		}
		idx := make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if o == GeneralToSpecial {
				return sel[idx[a]] > sel[idx[b]] // broad (high match fraction) first
			}
			return sel[idx[a]] < sel[idx[b]]
		})
		res := make([]Item1D, len(out))
		for i, j := range idx {
			res[i] = out[j]
		}
		out = res
	}
	return out
}
