// The Acquirer: the background loop that converts idle capacity into warm
// knowledge. It is deliberately mechanism-free — everything engine-specific
// (admission, warmness, the actual crawl) is injected as hooks by the
// serving tier, so this package depends only on the data model and stays
// trivially testable.
//
// Priority discipline: the acquirer must never compete with user traffic.
// Three independent guards enforce it:
//
//  1. Idle gating — a tick does nothing until the namespace has seen no
//     user request for Config.IdleAfter.
//  2. Low-priority admission — each window acquisition is admitted through
//     the Admit hook, which the serving tier wires to the registry's
//     reserve-aware low-priority gate: the acquirer is refused while user
//     sessions could still need the capacity.
//  3. Mid-flight yield — between upstream probes the acquisition checks the
//     Pressure hook and aborts immediately when user work is queued or the
//     namespace stopped being idle.
package acquire

import (
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes an Acquirer. The zero value gets sensible defaults.
type Config struct {
	// Interval is the tick period of the background loop (default 1s).
	Interval time.Duration
	// IdleAfter is how long the namespace must have been free of user
	// requests before a tick does any work (default 2·Interval).
	IdleAfter time.Duration
	// WindowsPerTick bounds how many windows one tick may acquire
	// (default 2).
	WindowsPerTick int
	// WarmDepth is how many tuples deep each direction of a window is
	// warmed (default 16). Set it above the h users typically request so
	// their probe streams are strict prefixes of the warmed stream.
	WarmDepth int
	// MinHeat is the decayed-heat floor below which candidates are not
	// worth acquiring (default 1).
	MinHeat float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.IdleAfter <= 0 {
		c.IdleAfter = 2 * c.Interval
	}
	if c.WindowsPerTick <= 0 {
		c.WindowsPerTick = 2
	}
	if c.WarmDepth <= 0 {
		c.WarmDepth = 16
	}
	if c.MinHeat <= 0 {
		c.MinHeat = 1
	}
	return c
}

// Hooks are the engine-side capabilities an Acquirer drives. All hooks are
// required.
type Hooks struct {
	// Candidates returns up to max hot windows, hottest first (the
	// engine's heat sketch).
	Candidates func(max int) []Candidate
	// Warm reports whether a window is already covered by acquired
	// knowledge, so re-acquiring it would be wasted work.
	Warm func(w Window) bool
	// IdleSince reports how long ago the namespace last served a user
	// request.
	IdleSince func() time.Duration
	// Pressure reports whether user traffic is waiting on admission
	// capacity right now; polled between probes to yield mid-flight.
	Pressure func() bool
	// Admit reserves low-priority admission capacity for one acquisition.
	// ok=false means user traffic owns the capacity; the tick ends.
	Admit func() (release func(), ok bool)
	// Acquire warms one window to the given depth, checking abort between
	// upstream probes. It returns the upstream probes charged, whether the
	// acquisition aborted on pressure, and any hard error.
	Acquire func(w Window, depth int, abort func() bool) (probes int64, aborted bool, err error)
}

// Stats are the acquirer's lifetime counters, all monotone.
type Stats struct {
	Ticks           int64 `json:"ticks"`
	ProbesIssued    int64 `json:"probesIssued"`
	WindowsAcquired int64 `json:"windowsAcquired"`
	SkippedWarm     int64 `json:"skippedWarm"`
	Yields          int64 `json:"yields"`          // idle/pressure gates + mid-flight aborts
	AdmissionDenied int64 `json:"admissionDenied"` // low-priority admission refusals
	Errors          int64 `json:"errors"`
}

// Acquirer runs the background acquisition loop of one namespace.
type Acquirer struct {
	cfg   Config
	hooks Hooks

	ticks           atomic.Int64
	probesIssued    atomic.Int64
	windowsAcquired atomic.Int64
	skippedWarm     atomic.Int64
	yields          atomic.Int64
	admissionDenied atomic.Int64
	errors          atomic.Int64

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// New builds an acquirer; call Start to run its background loop, or drive
// it synchronously with Tick (tests, benchmarks).
func New(cfg Config, hooks Hooks) *Acquirer {
	return &Acquirer{cfg: cfg.withDefaults(), hooks: hooks}
}

// Config returns the acquirer's effective (defaulted) configuration.
func (a *Acquirer) Config() Config { return a.cfg }

// Start launches the background loop. Starting twice is a no-op; starting
// after Stop is a no-op (acquirers are not restartable — build a new one).
func (a *Acquirer) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil || a.stopped {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.loop(a.stop, a.done)
}

// Stop halts the background loop and waits for any in-flight acquisition to
// finish (in-flight work observes stop as pressure and aborts at the next
// probe boundary). Safe to call twice and without Start.
func (a *Acquirer) Stop() {
	a.mu.Lock()
	if a.stopped {
		done := a.done
		a.mu.Unlock()
		if done != nil {
			<-done
		}
		return
	}
	a.stopped = true
	stop, done := a.stop, a.done
	a.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (a *Acquirer) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			a.tick(stop)
		}
	}
}

// Tick runs one synchronous acquisition pass: tests and benchmarks call it
// directly instead of sleeping through the background loop.
func (a *Acquirer) Tick() { a.tick(nil) }

func (a *Acquirer) tick(stop chan struct{}) {
	a.ticks.Add(1)
	if a.hooks.IdleSince() < a.cfg.IdleAfter || a.hooks.Pressure() {
		a.yields.Add(1)
		return
	}
	abort := func() bool {
		if stop != nil {
			select {
			case <-stop:
				return true
			default:
			}
		}
		return a.hooks.Pressure() || a.hooks.IdleSince() < a.cfg.IdleAfter
	}
	// Over-fetch candidates so warm ones can be skipped without starving
	// the tick of work.
	cands := a.hooks.Candidates(4 * a.cfg.WindowsPerTick)
	acquired := 0
	for _, cand := range cands {
		if acquired >= a.cfg.WindowsPerTick {
			return
		}
		if cand.Heat < a.cfg.MinHeat {
			return // sorted hottest-first: everything after is colder
		}
		if a.hooks.Warm(cand.Window) {
			a.skippedWarm.Add(1)
			continue
		}
		if abort() {
			a.yields.Add(1)
			return
		}
		release, ok := a.hooks.Admit()
		if !ok {
			a.admissionDenied.Add(1)
			return
		}
		probes, aborted, err := a.hooks.Acquire(cand.Window, a.cfg.WarmDepth, abort)
		release()
		a.probesIssued.Add(probes)
		switch {
		case aborted:
			a.yields.Add(1)
			return
		case err != nil:
			a.errors.Add(1)
		default:
			a.windowsAcquired.Add(1)
			acquired++
		}
	}
}

// Stats returns a snapshot of the acquirer's counters.
func (a *Acquirer) Stats() Stats {
	return Stats{
		Ticks:           a.ticks.Load(),
		ProbesIssued:    a.probesIssued.Load(),
		WindowsAcquired: a.windowsAcquired.Load(),
		SkippedWarm:     a.skippedWarm.Load(),
		Yields:          a.yields.Load(),
		AdmissionDenied: a.admissionDenied.Load(),
		Errors:          a.errors.Load(),
	}
}
