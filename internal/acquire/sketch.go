// Package acquire implements proactive knowledge acquisition: mining the
// recent request stream for hot query windows and warming them from idle
// capacity at strictly lower priority than user traffic.
//
// The package has two halves. The Sketch (this file) is a bounded,
// exponentially-decayed heat histogram over each ordinal attribute's domain:
// request handlers feed it the windows users actually query (a few atomic-ish
// map updates per request — no upstream work, no allocation beyond the fixed
// grid), and it answers "which exact windows are hot right now?". The
// Acquirer (acquire.go) periodically drains that answer and crawls the
// winners through hooks wired up by the serving tier, yielding to user
// traffic at every probe.
//
// Heat is tracked on a fixed coarse grid (cells per attribute), but each cell
// additionally remembers an exact representative window by weighted
// Boyer–Moore majority voting. Exactness matters: probe-cache keys are
// canonical query strings, so warming "approximately the hot window" buys
// nothing — the acquirer must replay the byte-identical window the users
// issue. Zipf-skewed traffic concentrates most of a cell's mass on one
// window, which is precisely the regime where majority voting converges.
package acquire

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

const (
	// defaultGridCells is the per-attribute heat resolution.
	defaultGridCells = 32
	// defaultHalfLife is the heat decay half-life: a window untouched for
	// one half-life keeps half its heat.
	defaultHalfLife = 5 * time.Minute
	// decayQuantum batches the lazy decay: heat decays only when at least
	// this much time has passed since the last decay pass, so hot loops
	// don't recompute exponentials per observation.
	decayQuantum = time.Second
)

// Window is one exact query window on one ordinal attribute: the closed
// interval [Lo, Hi] as users issue it.
type Window struct {
	Attr int     `json:"attr"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// Candidate is a hot window candidate ranked by decayed heat.
type Candidate struct {
	Window Window
	Heat   float64
}

// cell is one grid bucket: decayed heat plus the Boyer–Moore majority
// representative of the exact windows observed in it.
type cell struct {
	heat   float64
	rep    Window
	votes  float64
	hasRep bool
}

// sketchAttr is the heat grid of one ordinal attribute.
type sketchAttr struct {
	attr  int // schema attribute index
	dom   types.Domain
	cells []cell
}

// Sketch is the bounded request-heat sketch of one engine. Safe for
// concurrent use. The zero value is not usable; build with NewSketch.
type Sketch struct {
	mu        sync.Mutex
	attrs     []sketchAttr
	byAttr    map[int]int // schema attr index -> attrs position
	halfLife  time.Duration
	lastDecay time.Time
	now       func() time.Time

	// observations counts Observe calls for the engine's lifetime; the
	// persistence layer uses it as a cheap dirty check between checkpoints.
	observations atomic.Int64
}

// NewSketch builds an empty sketch over the schema's ordinal attributes.
func NewSketch(schema *types.Schema) *Sketch {
	s := &Sketch{
		byAttr:   make(map[int]int),
		halfLife: defaultHalfLife,
		now:      time.Now,
	}
	for _, a := range schema.OrdinalIndexes() {
		s.byAttr[a] = len(s.attrs)
		s.attrs = append(s.attrs, sketchAttr{
			attr:  a,
			dom:   schema.Domain(a),
			cells: make([]cell, defaultGridCells),
		})
	}
	s.lastDecay = s.now()
	return s
}

// SetClock injects a time source (tests). Call before concurrent use.
func (s *Sketch) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.lastDecay = now()
	s.mu.Unlock()
}

// SetHalfLife overrides the decay half-life (non-positive keeps the default).
func (s *Sketch) SetHalfLife(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.halfLife = d
	s.mu.Unlock()
}

// cellFor maps a window midpoint to a grid cell index, clamped to the domain.
func (sa *sketchAttr) cellFor(lo, hi float64) int {
	mid := sa.dom.Clamp((lo + hi) / 2)
	w := sa.dom.Width()
	if w <= 0 {
		return 0
	}
	i := int((mid - sa.dom.Min) / w * float64(len(sa.cells)))
	if i < 0 {
		i = 0
	}
	if i >= len(sa.cells) {
		i = len(sa.cells) - 1
	}
	return i
}

// decayLocked applies the pending exponential decay to every cell. Caller
// holds s.mu. The decay is lazy and batched: nothing happens until at least
// decayQuantum has elapsed since the previous pass.
func (s *Sketch) decayLocked() {
	now := s.now()
	dt := now.Sub(s.lastDecay)
	if dt < decayQuantum {
		return
	}
	s.lastDecay = now
	f := math.Exp2(-dt.Seconds() / s.halfLife.Seconds())
	for ai := range s.attrs {
		cells := s.attrs[ai].cells
		for ci := range cells {
			c := &cells[ci]
			c.heat *= f
			c.votes *= f
			if c.heat < 1e-6 {
				*c = cell{}
			}
		}
	}
}

// Observe records one user request window [lo, hi] on ordinal attribute
// attr. Unknown attributes and unbounded or inverted windows are ignored.
// The cost is one mutex acquisition and a handful of float ops — safe to
// call from the request path.
func (s *Sketch) Observe(attr int, lo, hi float64) {
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pos, ok := s.byAttr[attr]
	if !ok {
		return
	}
	s.decayLocked()
	sa := &s.attrs[pos]
	c := &sa.cells[sa.cellFor(lo, hi)]
	c.heat++
	w := Window{Attr: attr, Lo: lo, Hi: hi}
	switch {
	case !c.hasRep:
		c.rep, c.votes, c.hasRep = w, 1, true
	case c.rep == w:
		c.votes++
	default:
		c.votes--
		if c.votes < 0 {
			c.rep, c.votes = w, 1
		}
	}
	s.observations.Add(1)
}

// Observations returns the lifetime count of observed windows.
func (s *Sketch) Observations() int64 { return s.observations.Load() }

// Candidates returns up to max hot windows ordered by decayed heat,
// hottest first. Ties break deterministically by (attr, window) so tests
// and replays are stable.
func (s *Sketch) Candidates(max int) []Candidate {
	if max <= 0 {
		return nil
	}
	s.mu.Lock()
	s.decayLocked()
	var out []Candidate
	for ai := range s.attrs {
		for ci := range s.attrs[ai].cells {
			c := &s.attrs[ai].cells[ci]
			if c.hasRep && c.heat > 0 {
				out = append(out, Candidate{Window: c.rep, Heat: c.heat})
			}
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Heat != out[j].Heat {
			return out[i].Heat > out[j].Heat
		}
		if out[i].Window.Attr != out[j].Window.Attr {
			return out[i].Window.Attr < out[j].Window.Attr
		}
		return out[i].Window.Lo < out[j].Window.Lo
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// HeatExport is the JSON-serializable form of a sketch, embedded in engine
// snapshots and persistence deltas so acquisition heat survives restarts.
type HeatExport struct {
	HalfLifeSec float64    `json:"halfLifeSec,omitempty"`
	Attrs       []AttrHeat `json:"attrs,omitempty"`
}

// AttrHeat is one attribute's non-empty heat cells.
type AttrHeat struct {
	Attr  int        `json:"attr"`
	Cells []CellHeat `json:"cells"`
}

// CellHeat is one grid cell: its decayed heat and exact representative
// window.
type CellHeat struct {
	Cell  int     `json:"cell"`
	Heat  float64 `json:"heat"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Votes float64 `json:"votes"`
}

// Export captures the sketch's current decayed state. Returns nil when the
// sketch holds no heat (so callers can omit the section entirely).
func (s *Sketch) Export() *HeatExport {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decayLocked()
	out := &HeatExport{HalfLifeSec: s.halfLife.Seconds()}
	for ai := range s.attrs {
		sa := &s.attrs[ai]
		var cells []CellHeat
		for ci := range sa.cells {
			c := &sa.cells[ci]
			if c.hasRep && c.heat > 0 {
				cells = append(cells, CellHeat{
					Cell: ci, Heat: c.heat,
					Lo: c.rep.Lo, Hi: c.rep.Hi, Votes: c.votes,
				})
			}
		}
		if len(cells) > 0 {
			out.Attrs = append(out.Attrs, AttrHeat{Attr: sa.attr, Cells: cells})
		}
	}
	if len(out.Attrs) == 0 {
		return nil
	}
	return out
}

// Import merges an exported heat state into the sketch: each imported cell's
// heat is adopted when it exceeds the live cell's (last-wins across replayed
// deltas, additive-free so replaying the same delta twice is idempotent).
// Unknown attributes and out-of-range cells are ignored, so a sketch built
// for a different schema degrades to a no-op instead of corrupting state.
// No offline decay is applied: imported heat is treated as current.
func (s *Sketch) Import(h *HeatExport) {
	if h == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastDecay = s.now()
	for _, ah := range h.Attrs {
		pos, ok := s.byAttr[ah.Attr]
		if !ok {
			continue
		}
		sa := &s.attrs[pos]
		for _, ch := range ah.Cells {
			if ch.Cell < 0 || ch.Cell >= len(sa.cells) || ch.Heat <= 0 {
				continue
			}
			c := &sa.cells[ch.Cell]
			if ch.Heat > c.heat {
				c.heat = ch.Heat
				c.rep = Window{Attr: ah.Attr, Lo: ch.Lo, Hi: ch.Hi}
				c.votes = ch.Votes
				c.hasRep = true
			}
		}
	}
}
