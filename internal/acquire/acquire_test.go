package acquire

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

func testSchema() *types.Schema {
	return types.MustSchema([]types.Attribute{
		{Name: "Price", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 1000}},
		{Name: "Weight", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 10}},
		{Name: "Shape", Kind: types.Categorical, Values: []string{"round", "pear"}},
	})
}

func TestSketchHottestFirstExactWindows(t *testing.T) {
	s := NewSketch(testSchema())
	for i := 0; i < 10; i++ {
		s.Observe(0, 100, 200)
	}
	for i := 0; i < 4; i++ {
		s.Observe(1, 2, 4)
	}
	s.Observe(0, 700, 900)

	cands := s.Candidates(10)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3: %+v", len(cands), cands)
	}
	want := []Window{{Attr: 0, Lo: 100, Hi: 200}, {Attr: 1, Lo: 2, Hi: 4}, {Attr: 0, Lo: 700, Hi: 900}}
	for i, w := range want {
		if cands[i].Window != w {
			t.Errorf("candidate %d = %+v, want window %+v", i, cands[i], w)
		}
	}
	if cands[0].Heat <= cands[1].Heat || cands[1].Heat <= cands[2].Heat {
		t.Errorf("candidates not ordered by heat: %+v", cands)
	}
	if got := s.Observations(); got != 15 {
		t.Errorf("Observations = %d, want 15", got)
	}
}

func TestSketchMajorityRepresentative(t *testing.T) {
	s := NewSketch(testSchema())
	// Two distinct windows landing in the same grid cell: the majority one
	// must win the representative slot even when interleaved.
	for i := 0; i < 20; i++ {
		s.Observe(0, 500, 530)
		if i%2 == 0 {
			s.Observe(0, 505, 525)
		}
	}
	cands := s.Candidates(1)
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	if w := cands[0].Window; w != (Window{Attr: 0, Lo: 500, Hi: 530}) {
		t.Errorf("representative = %+v, want the majority window [500,530]", w)
	}
}

func TestSketchIgnoresBadObservations(t *testing.T) {
	s := NewSketch(testSchema())
	s.Observe(2, 0, 1)    // categorical attr
	s.Observe(99, 0, 1)   // unknown attr
	s.Observe(0, 200, 50) // inverted
	if got := len(s.Candidates(10)); got != 0 {
		t.Fatalf("bad observations produced %d candidates", got)
	}
}

func TestSketchDecay(t *testing.T) {
	s := NewSketch(testSchema())
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	s.SetHalfLife(10 * time.Second)
	for i := 0; i < 8; i++ {
		s.Observe(0, 100, 200)
	}
	h0 := s.Candidates(1)[0].Heat
	now = now.Add(10 * time.Second)
	h1 := s.Candidates(1)[0].Heat
	if h1 < 0.45*h0 || h1 > 0.55*h0 {
		t.Errorf("after one half-life heat = %g, want ~%g", h1, h0/2)
	}
	// Far future: heat evaporates entirely and the cell resets.
	now = now.Add(24 * time.Hour)
	if got := len(s.Candidates(10)); got != 0 {
		t.Errorf("heat survived 24h with a 10s half-life: %d candidates", got)
	}
}

func TestSketchExportImportRoundTrip(t *testing.T) {
	s := NewSketch(testSchema())
	for i := 0; i < 6; i++ {
		s.Observe(0, 100, 200)
	}
	s.Observe(1, 2, 4)
	exp := s.Export()
	if exp == nil {
		t.Fatal("Export returned nil with live heat")
	}

	restored := NewSketch(testSchema())
	restored.Import(exp)
	got, want := restored.Candidates(10), s.Candidates(10)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip candidates = %+v, want %+v", got, want)
	}
	// Idempotence: replaying the same delta must not double heat.
	restored.Import(exp)
	if again := restored.Candidates(10); !reflect.DeepEqual(again, want) {
		t.Errorf("re-import changed candidates: %+v, want %+v", again, want)
	}

	if NewSketch(testSchema()).Export() != nil {
		t.Error("Export of empty sketch should be nil")
	}
	// Foreign-schema import degrades to a no-op, never a panic.
	other := NewSketch(types.MustSchema([]types.Attribute{
		{Name: "X", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 1}},
	}))
	other.Import(exp) // attr 1 unknown there; attr 0 cells out of domain are clamped in, fine
}

func TestSketchConcurrentObserve(t *testing.T) {
	s := NewSketch(testSchema())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe(0, 100, 200)
				if i%16 == 0 {
					s.Candidates(4)
					s.Export()
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Observations(); got != 8*500 {
		t.Errorf("Observations = %d, want %d", got, 8*500)
	}
}

// fakeHooks builds a controllable hook set for acquirer tests.
type fakeHooks struct {
	mu        sync.Mutex
	idle      time.Duration
	pressure  bool
	admitOK   bool
	warm      map[Window]bool
	cands     []Candidate
	acquired  []Window
	admits    int
	abortNext bool // make the acquisition observe pressure mid-flight
}

func (f *fakeHooks) hooks() Hooks {
	return Hooks{
		Candidates: func(max int) []Candidate {
			f.mu.Lock()
			defer f.mu.Unlock()
			if len(f.cands) > max {
				return f.cands[:max]
			}
			return f.cands
		},
		Warm: func(w Window) bool {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.warm[w]
		},
		IdleSince: func() time.Duration {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.idle
		},
		Pressure: func() bool {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.pressure
		},
		Admit: func() (func(), bool) {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.admits++
			if !f.admitOK {
				return nil, false
			}
			return func() {}, true
		},
		Acquire: func(w Window, depth int, abort func() bool) (int64, bool, error) {
			f.mu.Lock()
			f.acquired = append(f.acquired, w)
			abortNow := f.abortNext
			f.mu.Unlock()
			if abortNow && abort() {
				return 1, true, nil
			}
			return 3, false, nil
		},
	}
}

func TestAcquirerIdleGate(t *testing.T) {
	f := &fakeHooks{idle: 0, admitOK: true, cands: []Candidate{{Window{0, 100, 200}, 10}}}
	a := New(Config{IdleAfter: time.Second}, f.hooks())
	a.Tick()
	if len(f.acquired) != 0 {
		t.Fatalf("acquired %v while not idle", f.acquired)
	}
	if st := a.Stats(); st.Yields != 1 || st.Ticks != 1 {
		t.Errorf("stats = %+v, want 1 yield / 1 tick", st)
	}
}

func TestAcquirerPressureGate(t *testing.T) {
	f := &fakeHooks{idle: time.Hour, pressure: true, admitOK: true,
		cands: []Candidate{{Window{0, 100, 200}, 10}}}
	a := New(Config{}, f.hooks())
	a.Tick()
	if len(f.acquired) != 0 {
		t.Fatalf("acquired %v under pressure", f.acquired)
	}
}

func TestAcquirerAcquiresHottestSkipsWarmAndCold(t *testing.T) {
	hot := Window{Attr: 0, Lo: 100, Hi: 200}
	warm := Window{Attr: 0, Lo: 300, Hi: 400}
	second := Window{Attr: 1, Lo: 2, Hi: 4}
	cold := Window{Attr: 0, Lo: 700, Hi: 800}
	f := &fakeHooks{
		idle: time.Hour, admitOK: true,
		warm: map[Window]bool{warm: true},
		cands: []Candidate{
			{hot, 10}, {warm, 8}, {second, 5}, {cold, 0.2},
		},
	}
	a := New(Config{WindowsPerTick: 3, MinHeat: 1}, f.hooks())
	a.Tick()
	want := []Window{hot, second}
	if !reflect.DeepEqual(f.acquired, want) {
		t.Fatalf("acquired %v, want %v (warm skipped, cold below MinHeat)", f.acquired, want)
	}
	st := a.Stats()
	if st.WindowsAcquired != 2 || st.SkippedWarm != 1 || st.ProbesIssued != 6 {
		t.Errorf("stats = %+v, want 2 acquired / 1 skipped / 6 probes", st)
	}
}

func TestAcquirerAdmissionDenied(t *testing.T) {
	f := &fakeHooks{idle: time.Hour, admitOK: false,
		cands: []Candidate{{Window{0, 100, 200}, 10}}}
	a := New(Config{}, f.hooks())
	a.Tick()
	if len(f.acquired) != 0 {
		t.Fatalf("acquired %v despite admission denial", f.acquired)
	}
	if st := a.Stats(); st.AdmissionDenied != 1 {
		t.Errorf("stats = %+v, want 1 admission denial", st)
	}
}

func TestAcquirerMidFlightAbortCountsYield(t *testing.T) {
	f := &fakeHooks{idle: time.Hour, admitOK: true, abortNext: true,
		cands: []Candidate{{Window{0, 100, 200}, 10}, {Window{1, 2, 4}, 5}}}
	f.pressure = false
	a := New(Config{WindowsPerTick: 2}, f.hooks())
	// The Acquire hook reports aborted=true when abort() fires; flip
	// pressure on after the tick's entry gates pass by making the hook
	// itself consult abort (abortNext + pressure set during acquisition).
	f.mu.Lock()
	f.abortNext = true
	f.mu.Unlock()
	// pressure must be false at tick entry but true when abort() is
	// polled mid-acquisition; emulate by flipping it from Acquire via a
	// wrapper.
	h := f.hooks()
	inner := h.Acquire
	h.Acquire = func(w Window, depth int, abort func() bool) (int64, bool, error) {
		f.mu.Lock()
		f.pressure = true
		f.mu.Unlock()
		return inner(w, depth, abort)
	}
	a = New(Config{WindowsPerTick: 2}, h)
	a.Tick()
	if len(f.acquired) != 1 {
		t.Fatalf("acquired %v, want exactly the first window before the abort", f.acquired)
	}
	st := a.Stats()
	if st.Yields != 1 || st.WindowsAcquired != 0 || st.ProbesIssued != 1 {
		t.Errorf("stats = %+v, want 1 yield / 0 acquired / 1 probe", st)
	}
}

func TestAcquirerStartStop(t *testing.T) {
	f := &fakeHooks{idle: time.Hour, admitOK: true,
		cands: []Candidate{{Window{0, 100, 200}, 10}}}
	a := New(Config{Interval: time.Millisecond, IdleAfter: time.Microsecond}, f.hooks())
	a.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		f.mu.Lock()
		n := len(f.acquired)
		f.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never acquired")
		}
		time.Sleep(time.Millisecond)
	}
	a.Stop()
	a.Stop() // idempotent
	f.mu.Lock()
	n := len(f.acquired)
	f.mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	f.mu.Lock()
	after := len(f.acquired)
	f.mu.Unlock()
	if after != n {
		t.Errorf("acquirer kept working after Stop: %d -> %d", n, after)
	}
	a.Start() // no-op after Stop
}
