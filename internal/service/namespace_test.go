// Federation tests: namespace isolation (ledgers, probe caches, history),
// per-namespace persistence under data-dir/<ns>/, the registry HTTP API,
// legacy un-namespaced routes resolving to the default namespace, and the
// unified error envelope. The isolation test runs concurrent traffic and is
// meaningful under -race.

package service

import (
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hidden"
	"repro/internal/types"
)

// clusterDBAt builds a 2-attribute upstream with a dense tuple cluster at
// [lo, lo+0.3]² — same shape as clusteredDB but with a configurable cluster
// location and seed, so two namespaces get genuinely distinct databases.
func clusterDBAt(t *testing.T, seed int64, lo float64) *hidden.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := types.MustSchema([]types.Attribute{
		{Name: "A0", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "A1", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
	n := 1200
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		ord := make([]float64, 2)
		if i < 60 {
			ord[0] = lo + float64(i)*0.005
			ord[1] = lo + float64((i*37)%60)*0.005
		} else {
			ord[0] = rng.Float64() * 100
			ord[1] = rng.Float64() * 100
		}
		tuples[i] = types.Tuple{ID: i, Ord: ord}
	}
	return hidden.MustDB(schema, tuples, hidden.Options{K: 10})
}

// rangeRequest is denseMDRequest generalized to a cluster location.
func rangeRequest(lo float64) RerankRequest {
	hi := lo + 0.3
	return RerankRequest{
		Ranges: []RangeSpec{
			{Attr: "A0", Min: &lo, Max: &hi},
			{Attr: "A1", Min: &lo, Max: &hi},
		},
		Ranking: RankingSpec{Kind: "linear", Attrs: []string{"A0", "A1"}, Weights: []float64{1, 1}},
		H:       5,
	}
}

// federatedPipeline builds a two-namespace server ("diamonds" clustered at
// 50, "autos" clustered at 20) with an HTTP frontend.
func federatedPipeline(t *testing.T) (*Server, *httptest.Server, *hidden.DB, *hidden.DB) {
	t.Helper()
	dbA := clusterDBAt(t, 91, 50)
	dbB := clusterDBAt(t, 17, 20)
	srv := NewFederatedServer(Options{Core: core.Options{N: 1200}})
	if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: "diamonds"}, dbA); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: "autos"}, dbB); err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(api.Close)
	return srv, api, dbA, dbB
}

// TestNamespaceIsolation runs concurrent traffic against two namespaces and
// asserts complete isolation: each namespace's ledger equals its own
// upstream's observed query count (so no probe ever crossed namespaces),
// and an identical query re-issued against the OTHER namespace is never
// served from the first one's probe cache.
func TestNamespaceIsolation(t *testing.T) {
	srv, api, dbA, dbB := federatedPipeline(t)
	ca := NewClientWith(api.URL, WithHTTPClient(api.Client()), WithUpstream("diamonds"))
	cb := NewClientWith(api.URL, WithHTTPClient(api.Client()), WithUpstream("autos"))
	dbA.ResetCounter()
	dbB.ResetCounter()

	// The same wire request hits both namespaces: for "diamonds" it covers
	// its dense cluster, for "autos" it is a sparse region. Any
	// cross-namespace cache or history sharing would corrupt one of them.
	req := rangeRequest(50)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ca.Rerank(req); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cb.Rerank(req); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	ua, ok := st.Upstreams["diamonds"]
	if !ok {
		t.Fatal("stats missing namespace diamonds")
	}
	ub, ok := st.Upstreams["autos"]
	if !ok {
		t.Fatal("stats missing namespace autos")
	}
	if ua.Requests != 4 || ub.Requests != 4 {
		t.Fatalf("per-namespace request counters: diamonds=%d autos=%d, want 4/4", ua.Requests, ub.Requests)
	}
	// Independent ledgers: each engine's lifetime count must equal what its
	// own upstream actually observed — queries crossing namespaces would
	// break the equality on both sides.
	if ua.EngineQueries != dbA.QueryCount() {
		t.Fatalf("diamonds ledger %d != its upstream's observed %d", ua.EngineQueries, dbA.QueryCount())
	}
	if ub.EngineQueries != dbB.QueryCount() {
		t.Fatalf("autos ledger %d != its upstream's observed %d", ub.EngineQueries, dbB.QueryCount())
	}
	if ua.EngineQueries == 0 || ub.EngineQueries == 0 {
		t.Fatalf("expected both namespaces to issue upstream queries, got %d/%d", ua.EngineQueries, ub.EngineQueries)
	}
	// Zero cross-namespace probe-cache hits: "diamonds" is now fully warm
	// for req, but the identical query against "autos" must still pay its
	// own upstream cost on a cold region of ITS database.
	dbB.ResetCounter()
	resp, err := cb.Rerank(rangeRequest(20))
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueriesIssued == 0 || dbB.QueryCount() == 0 {
		t.Fatalf("autos cold-region query cost %d (upstream saw %d), want > 0: served from another namespace's cache",
			resp.QueriesIssued, dbB.QueryCount())
	}
	// And the aggregate equals the per-namespace sum.
	st = srv.Stats()
	if got := st.Upstreams["diamonds"].EngineQueries + st.Upstreams["autos"].EngineQueries; st.EngineQueries != got {
		t.Fatalf("aggregate EngineQueries %d != per-namespace sum %d", st.EngineQueries, got)
	}
}

// TestNamespaceWarmRestart pins per-namespace persistence: each namespace
// checkpoints into its own data-dir/<ns>/ store, and a restarted federated
// server answers each namespace's crawled query warm — for zero upstream
// queries — from its own store alone.
func TestNamespaceWarmRestart(t *testing.T) {
	dir := t.TempDir()
	dbA := clusterDBAt(t, 91, 50)
	dbB := clusterDBAt(t, 17, 20)
	reqA, reqB := rangeRequest(50), rangeRequest(20)

	boot := func() *Server {
		srv := NewFederatedServer(Options{Core: core.Options{N: 1200}})
		if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: "diamonds"}, dbA); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: "autos"}, dbB); err != nil {
			t.Fatal(err)
		}
		if err := srv.OpenDataDir(dir, PersistConfig{}); err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srv1 := boot()
	r1a, _, err := srv1.Rerank(withUpstream(reqA, "diamonds"))
	if err != nil {
		t.Fatal(err)
	}
	r1b, _, err := srv1.Rerank(withUpstream(reqB, "autos"))
	if err != nil {
		t.Fatal(err)
	}
	if r1a.QueriesIssued == 0 || r1b.QueriesIssued == 0 {
		t.Fatalf("precondition: cold requests cost %d/%d upstream queries", r1a.QueriesIssued, r1b.QueriesIssued)
	}
	if err := srv1.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	for _, ns := range []string{"diamonds", "autos"} {
		if fi, err := os.Stat(filepath.Join(dir, ns)); err != nil || !fi.IsDir() {
			t.Fatalf("namespace %q has no data subdirectory: %v", ns, err)
		}
	}

	dbA.ResetCounter()
	dbB.ResetCounter()
	srv2 := boot()
	defer srv2.ClosePersistence()
	r2a, _, err := srv2.Rerank(withUpstream(reqA, "diamonds"))
	if err != nil {
		t.Fatal(err)
	}
	r2b, _, err := srv2.Rerank(withUpstream(reqB, "autos"))
	if err != nil {
		t.Fatal(err)
	}
	if r2a.QueriesIssued != 0 || dbA.QueryCount() != 0 {
		t.Errorf("diamonds warm request charged %d (upstream saw %d), want 0", r2a.QueriesIssued, dbA.QueryCount())
	}
	if r2b.QueriesIssued != 0 || dbB.QueryCount() != 0 {
		t.Errorf("autos warm request charged %d (upstream saw %d), want 0", r2b.QueriesIssued, dbB.QueryCount())
	}
	if len(r2a.Tuples) != len(r1a.Tuples) || len(r2b.Tuples) != len(r1b.Tuples) {
		t.Fatalf("warm answers %d/%d tuples, want %d/%d", len(r2a.Tuples), len(r2b.Tuples), len(r1a.Tuples), len(r1b.Tuples))
	}
	for i := range r2a.Tuples {
		if r2a.Tuples[i].ID != r1a.Tuples[i].ID {
			t.Fatalf("diamonds rank %d: warm ID %d, cold ID %d", i, r2a.Tuples[i].ID, r1a.Tuples[i].ID)
		}
	}
}

func withUpstream(req RerankRequest, ns string) RerankRequest {
	req.Upstream = ns
	return req
}

// TestLegacyRoutesResolveDefaultNamespace: un-namespaced /v1/* routes keep
// working on a federated server and land on the default (first-registered)
// namespace only.
func TestLegacyRoutesResolveDefaultNamespace(t *testing.T) {
	srv, api, _, _ := federatedPipeline(t)
	legacy := NewClientWith(api.URL, WithHTTPClient(api.Client())) // no WithUpstream
	if _, err := legacy.Rerank(rangeRequest(50)); err != nil {
		t.Fatal(err)
	}
	// Body "upstream" field routes a legacy request to a named namespace.
	if _, err := legacy.Rerank(withUpstream(rangeRequest(20), "autos")); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.DefaultUpstream != "diamonds" {
		t.Fatalf("default namespace %q, want first-registered \"diamonds\"", st.DefaultUpstream)
	}
	if got := st.Upstreams["diamonds"].Requests; got != 1 {
		t.Fatalf("default namespace saw %d requests, want 1", got)
	}
	if got := st.Upstreams["autos"].Requests; got != 1 {
		t.Fatalf("body-addressed namespace saw %d requests, want 1", got)
	}
	// Legacy /v1/schema serves the default namespace's schema.
	sch, err := legacy.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Attrs) != 2 {
		t.Fatalf("legacy schema has %d attrs, want 2", len(sch.Attrs))
	}
}

// TestSchemaUnknownNamespace404: /v1/schema and its namespace-scoped form
// 404 with the error envelope for unknown namespaces instead of silently
// serving the default schema.
func TestSchemaUnknownNamespace404(t *testing.T) {
	_, api, _, _ := federatedPipeline(t)
	for _, path := range []string{"/v1/upstreams/nope/schema", "/v1/schema?upstream=nope"} {
		resp, err := api.Client().Get(api.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		se := statusError(resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || se.Code != ErrCodeUnknownUpstream {
			t.Fatalf("%s: status %d code %q, want 404 %q", path, resp.StatusCode, se.Code, ErrCodeUnknownUpstream)
		}
	}
	// The typed client surfaces the same as a *StatusError.
	c := NewClientWith(api.URL, WithHTTPClient(api.Client()), WithUpstream("nope"))
	_, err := c.Schema()
	var se *StatusError
	if !asStatusError(err, &se) || se.Status != http.StatusNotFound || se.Code != ErrCodeUnknownUpstream {
		t.Fatalf("client schema error = %v, want 404 unknown_upstream StatusError", err)
	}
}

func asStatusError(err error, out **StatusError) bool {
	return errors.As(err, out)
}

// TestPathBodyNamespaceMismatch: a namespace-scoped route with a
// conflicting body "upstream" field is a 400, not a silent pick.
func TestPathBodyNamespaceMismatch(t *testing.T) {
	_, api, _, _ := federatedPipeline(t)
	body, _ := json.Marshal(withUpstream(rangeRequest(50), "autos"))
	resp, err := api.Client().Post(api.URL+"/v1/upstreams/diamonds/rerank", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	se := statusError(resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || se.Code != ErrCodeBadRequest {
		t.Fatalf("status %d code %q, want 400 %q", resp.StatusCode, se.Code, ErrCodeBadRequest)
	}
}

// TestUpstreamRegistryAPI drives the full registry lifecycle over HTTP:
// list, register (dialing a live hiddendb), serve the new namespace, stats,
// deregister, and the guard against removing the default namespace.
func TestUpstreamRegistryAPI(t *testing.T) {
	_, api, _, _ := federatedPipeline(t)
	c := NewClientWith(api.URL, WithHTTPClient(api.Client()))

	ups, err := c.Upstreams()
	if err != nil {
		t.Fatal(err)
	}
	if len(ups.Upstreams) != 2 || ups.Default != "diamonds" {
		t.Fatalf("initial listing: %d upstreams default %q, want 2 / diamonds", len(ups.Upstreams), ups.Default)
	}

	// Register a third namespace over a live hiddendb endpoint.
	hdb := clusterDBAt(t, 5, 70)
	upstream := httptest.NewServer(HiddenDBHandler(hdb))
	t.Cleanup(upstream.Close)
	info, err := c.RegisterUpstream(UpstreamConfig{Name: "estates", URL: upstream.URL, N: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "estates" || info.URL != upstream.URL || info.Default {
		t.Fatalf("registered info = %+v", info)
	}
	if len(info.Schema.Attrs) != 2 {
		t.Fatalf("registered schema has %d attrs, want 2", len(info.Schema.Attrs))
	}

	// The new namespace serves immediately.
	ce := NewClientWith(api.URL, WithHTTPClient(api.Client()), WithUpstream("estates"))
	resp, err := ce.Rerank(rangeRequest(70))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tuples) != 5 || resp.QueriesIssued == 0 {
		t.Fatalf("new namespace answered %d tuples for %d queries", len(resp.Tuples), resp.QueriesIssued)
	}
	got, err := c.UpstreamInfo("estates")
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Requests != 1 {
		t.Fatalf("estates stats report %d requests, want 1", got.Stats.Requests)
	}

	// Duplicate name → 409 upstream_exists.
	_, err = c.RegisterUpstream(UpstreamConfig{Name: "estates", URL: upstream.URL})
	var se *StatusError
	if !asStatusError(err, &se) || se.Status != http.StatusConflict || se.Code != ErrCodeUpstreamExists {
		t.Fatalf("duplicate register error = %v, want 409 upstream_exists", err)
	}

	// Unreachable URL → 502 upstream_failed.
	_, err = c.RegisterUpstream(UpstreamConfig{Name: "dead", URL: "http://127.0.0.1:1"})
	if !asStatusError(err, &se) || se.Status != http.StatusBadGateway || se.Code != ErrCodeUpstreamFailed {
		t.Fatalf("unreachable register error = %v, want 502 upstream_failed", err)
	}

	// Deregister; the namespace stops serving with a 404.
	if err := c.DeregisterUpstream("estates"); err != nil {
		t.Fatal(err)
	}
	_, err = ce.Rerank(rangeRequest(70))
	if !asStatusError(err, &se) || se.Status != http.StatusNotFound || se.Code != ErrCodeUnknownUpstream {
		t.Fatalf("post-deregister rerank error = %v, want 404 unknown_upstream", err)
	}

	// The default namespace cannot be removed while others remain.
	err = c.DeregisterUpstream("diamonds")
	if !asStatusError(err, &se) || se.Status != http.StatusConflict || se.Code != ErrCodeDefaultUpstream {
		t.Fatalf("default deregister error = %v, want 409 default_upstream", err)
	}
}

// TestErrorEnvelopeShape pins the wire shape of the unified error envelope
// on a plain bad request.
func TestErrorEnvelopeShape(t *testing.T) {
	_, api, _, _ := federatedPipeline(t)
	resp, err := api.Client().Post(api.URL+"/v1/rerank", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ErrCodeBadRequest || env.Error.Message == "" {
		t.Fatalf("envelope = %+v, want code %q with a message", env, ErrCodeBadRequest)
	}
}

// TestMetricsPerNamespaceSeries: /metrics carries one labeled series per
// namespace alongside the unlabeled cross-namespace totals.
func TestMetricsPerNamespaceSeries(t *testing.T) {
	_, api, _, _ := federatedPipeline(t)
	ca := NewClientWith(api.URL, WithHTTPClient(api.Client()), WithUpstream("diamonds"))
	if _, err := ca.Rerank(rangeRequest(50)); err != nil {
		t.Fatal(err)
	}
	resp, err := api.Client().Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`rerank_upstream_requests_total{upstream="diamonds"} 1`,
		`rerank_upstream_requests_total{upstream="autos"} 0`,
		`rerank_upstream_engine_queries_total{upstream="diamonds"}`,
		"rerank_requests_total 1", // unlabeled total still present
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q\n%s", want, body)
		}
	}
}
