// Streaming reranking: POST /v1/rerank/stream and its namespace-scoped
// form POST /v1/upstreams/{ns}/rerank/stream.
//
// The engine's Get-Next interface (§2.2) is incremental by construction:
// the cursor proves each next-best tuple correct before looking for the
// following one. The plain /v1/rerank endpoint hides that — a client waits
// for the whole search before seeing tuple #1. This endpoint streams the
// cursor instead: the response is NDJSON, one StreamEvent per line, flushed
// as each tuple is produced, so the first answer reaches the client while
// the search for the rest is still probing the upstream. Each tuple event
// carries the session's cumulative upstream cost at emission time, making
// the cost-per-answer curve visible to the client in real time.
//
// A disconnecting client cancels the stream at the next tuple boundary: the
// handler observes the request context between Get-Next calls, stops the
// search, and releases its admission slot — abandoned streams do not leak
// capacity. Already-issued probes stay in the namespace's history/probe
// caches, so a cancelled stream's upstream spend still benefits later
// requests.

package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/hidden"
)

// StreamEvent is one NDJSON line of a /v1/rerank/stream response. Tuple
// events carry Tuple and CumQueries; the final event has Done=true and the
// same summary fields RerankResponse reports. A mid-stream failure ends the
// stream with a final event whose Error is set (the HTTP status is already
// 200 by then — NDJSON errors are in-band).
type StreamEvent struct {
	Tuple *TupleJSON `json:"tuple,omitempty"`
	// CumQueries is the session's cumulative upstream-query cost at the
	// moment this event was emitted.
	CumQueries int64 `json:"cumQueries"`
	// Done marks the final event of the stream.
	Done      bool `json:"done,omitempty"`
	Exhausted bool `json:"exhausted,omitempty"`
	// QueriesIssued / EngineQueries mirror RerankResponse on the final
	// event.
	QueriesIssued int64 `json:"queriesIssued,omitempty"`
	EngineQueries int64 `json:"engineQueries,omitempty"`
	// Error and Status report an in-band failure on the final event: Error
	// is the same envelope payload a non-2xx response body carries, and
	// Status is the HTTP status the same failure would have produced on
	// /v1/rerank (429 for upstream rate limiting, 502 otherwise), so
	// clients can classify mid-stream failures exactly like one-shot ones.
	Error  *ErrorInfo `json:"error,omitempty"`
	Status int        `json:"status,omitempty"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req RerankRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	t, ok := s.resolveTenant(w, r, req.Upstream)
	if !ok {
		return
	}
	schema := t.db.Schema()
	q, rk, variant, err := buildRequest(schema, &req)
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	release, charge, ok := s.admit(w, r, t, 1)
	if !ok {
		return
	}
	defer release()

	t.streamRequests.Add(1)
	eng := t.engine()
	// Streams count as user traffic for the acquirer's idle gate and feed
	// the heat sketch like one-shot requests.
	t.touchUser()
	eng.RecordHeat(q)
	sess := eng.NewSession()
	defer func() { charge(sess.Queries()) }()
	cur, err := sess.NewCursor(q, rk, variant)
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}

	setEpochHeader(w, t)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Per-event write deadlines (the server's WriteTimeout is 0 so streams
	// may run as long as the search): a client that stops READING stalls
	// its next write past StreamWriteTimeout, the write errors, the stream
	// ends and the admission slot frees. Stalled readers cannot pin
	// capacity forever. The deadline is cleared before the handler returns
	// so a reused keep-alive connection is not poisoned.
	rc := http.NewResponseController(w)
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	enc := json.NewEncoder(w)
	emit := func(ev StreamEvent) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(s.opts.StreamWriteTimeout))
		if err := enc.Encode(ev); err != nil {
			return false // client went away; stop the search
		}
		_ = rc.Flush()
		return true
	}

	ctx := r.Context()
	emitted, exhausted := 0, false
	var tj TupleJSON // reused across events; enc.Encode serializes before the next fill
	for emitted < req.H {
		// A disconnected client is detected at tuple boundaries: the
		// search stops, the deferred release frees the admission slot.
		if ctx.Err() != nil {
			return
		}
		tp, ok, err := cur.Next()
		if err != nil {
			ev := StreamEvent{Done: true, CumQueries: sess.Queries()}
			if errors.Is(err, hidden.ErrRateLimited) {
				ev.Status = http.StatusTooManyRequests
				ev.Error = errorInfo(ev.Status, ErrCodeUpstreamRateLimited, err)
			} else {
				ev.Status = http.StatusBadGateway
				ev.Error = errorInfo(ev.Status, ErrCodeUpstreamFailed, errors.New("upstream search failed: "+err.Error()))
			}
			emit(ev)
			return
		}
		if !ok {
			exhausted = true
			break
		}
		toJSONInto(schema, rk, tp, &tj)
		if !emit(StreamEvent{Tuple: &tj, CumQueries: sess.Queries()}) {
			return
		}
		emitted++
		t.streamTuples.Add(1)
	}
	emit(StreamEvent{
		Done:          true,
		Exhausted:     exhausted,
		CumQueries:    sess.Queries(),
		QueriesIssued: sess.Queries(),
		EngineQueries: eng.Queries(),
	})
}
