// Package service implements "query reranking as a service" over HTTP: the
// third-party deployment the paper's title promises. A Server wraps one
// reranking engine per upstream database, keeps the cross-query history and
// dense indexes alive across requests, and exposes a small JSON API:
//
//	POST /v1/rerank   {query, ranking, h, algorithm}  -> ranked tuples + cost
//	GET  /v1/stats                                    -> engine statistics
//	GET  /healthz                                     -> liveness
//
// The upstream database can be in-process (a *hidden.DB) or remote — see
// remote.go for the adapter that speaks to any HTTP top-k search endpoint
// such as cmd/hiddendb.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// RankingSpec describes a user ranking function over the wire.
type RankingSpec struct {
	// Kind is "linear", "single", or "ratio".
	Kind string `json:"kind"`
	// Attrs are attribute names (resolved against the upstream schema).
	Attrs []string `json:"attrs"`
	// Weights parameterize "linear" (same length as Attrs).
	Weights []float64 `json:"weights,omitempty"`
	// Desc marks a "single" ranking as descending.
	Desc bool `json:"desc,omitempty"`
}

// RangeSpec is one range predicate over the wire.
type RangeSpec struct {
	Attr    string   `json:"attr"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	MinOpen bool     `json:"minOpen,omitempty"`
	MaxOpen bool     `json:"maxOpen,omitempty"`
}

// RerankRequest is the /v1/rerank request body.
type RerankRequest struct {
	Ranges    []RangeSpec       `json:"ranges,omitempty"`
	Filters   map[string]string `json:"filters,omitempty"`
	Ranking   RankingSpec       `json:"ranking"`
	H         int               `json:"h"`                   // how many answers
	Algorithm string            `json:"algorithm,omitempty"` // "rerank" (default), "baseline", "binary", "ta"
}

// TupleJSON is one ranked answer over the wire.
type TupleJSON struct {
	ID    int                `json:"id"`
	Score float64            `json:"score"`
	Ord   map[string]float64 `json:"ord"`
	Cat   map[string]string  `json:"cat,omitempty"`
}

// RerankResponse is the /v1/rerank response body.
type RerankResponse struct {
	Tuples    []TupleJSON `json:"tuples"`
	Exhausted bool        `json:"exhausted"`
	// QueriesIssued is the number of upstream search queries this request
	// cost — the paper's performance measure, surfaced to clients. Probes
	// deduplicated by the engine's coalescing layer (answered by another
	// in-flight request or a recent complete answer) cost nothing and are
	// charged once, to the request that actually issued them.
	QueriesIssued int64 `json:"queriesIssued"`
	// EngineQueries is the engine's lifetime upstream query count.
	EngineQueries int64 `json:"engineQueries"`
}

// Stats is the /v1/stats response body.
type Stats struct {
	EngineQueries int64 `json:"engineQueries"`
	HistoryTuples int   `json:"historyTuples"`
	// ProbeCacheEntries is the number of complete probe answers the
	// coalescing LRU currently holds — the probes the service can answer
	// for zero upstream cost (persisted across restarts by snapshots).
	ProbeCacheEntries int `json:"probeCacheEntries"`
	// MDDenseRegions is the number of crawled MD dense regions across all
	// ranked-attribute subsets — the boxes MD-RERANK answers locally for
	// zero upstream cost (persisted across restarts since snapshot v3).
	MDDenseRegions int `json:"mdDenseRegions"`
	// DenseMDBuckets / DenseMDMaxBucket describe the MD dense indexes'
	// centroid-grid shape: occupied grid cells and the largest cell
	// population. MaxBucket staying small as MDDenseRegions grows is the
	// sub-linear-lookup property holding in production.
	DenseMDBuckets   int `json:"denseMDBuckets"`
	DenseMDMaxBucket int `json:"denseMDMaxBucket"`
	// SearchParallelism is the MD search's effective speculative probe
	// width W (1 when unset or when a per-op budget forces sequential);
	// SpecProbesIssued / SpecProbesWasted count speculative probes issued
	// (round slots beyond the first) and the subset invalidated by a
	// threshold improvement. Wasted probes' answers still seed the shared
	// caches, so their upstream cost is paid at most once.
	SearchParallelism int    `json:"searchParallelism"`
	SpecProbesIssued  int64  `json:"specProbesIssued"`
	SpecProbesWasted  int64  `json:"specProbesWasted"`
	Requests          int64  `json:"requests"`
	UpstreamK         int    `json:"upstreamK"`
	UpstreamRanker    string `json:"upstreamRanker,omitempty"`
}

// Server is the reranking service. Requests are handled concurrently: the
// engine's shared knowledge (history, dense indexes, probe coalescing) is
// internally synchronized, and each request runs in its own engine session.
// The only server-level lock serializes snapshot save/load against each
// other; snapshots are safe to take while requests are in flight.
type Server struct {
	db       hidden.Database
	engine   *core.Engine
	requests atomic.Int64
	n        int

	stateMu sync.Mutex // serializes SaveState/LoadState
}

// NewServer builds a service over the given upstream database. n is the
// (estimated) upstream size used for dense-index thresholds.
func NewServer(db hidden.Database, n int) *Server {
	return NewServerWith(db, core.Options{N: n})
}

// NewServerWith builds a service with explicit engine options (opts.N is the
// upstream size estimate; coalescing and cache sizing are also set here).
func NewServerWith(db hidden.Database, opts core.Options) *Server {
	return &Server{
		db:     db,
		engine: core.NewEngine(db, opts),
		n:      opts.N,
	}
}

// SaveState serializes the engine's accumulated knowledge (answer history
// and dense indexes) so a restarted service stays warm. Safe to call while
// requests are being served.
func (s *Server) SaveState(w io.Writer) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.engine.SaveSnapshot(w)
}

// LoadState restores knowledge saved by SaveState. Call before serving.
func (s *Server) LoadState(r io.Reader) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.engine.LoadSnapshot(r)
}

// Handler returns the HTTP handler for the service API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rerank", s.handleRerank)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Stats reports the service's current counters (also served at /v1/stats).
func (s *Server) Stats() Stats {
	gs := s.engine.MDBucketStats()
	specIssued, specWasted := s.engine.SpeculationStats()
	st := Stats{
		EngineQueries:     s.engine.Queries(),
		HistoryTuples:     s.engine.History().Size(),
		ProbeCacheEntries: s.engine.ProbeCacheEntries(),
		MDDenseRegions:    s.engine.MDDenseRegions(),
		DenseMDBuckets:    gs.Buckets,
		DenseMDMaxBucket:  gs.MaxBucket,
		SearchParallelism: s.engine.SearchParallelism(),
		SpecProbesIssued:  specIssued,
		SpecProbesWasted:  specWasted,
		Requests:          s.requests.Load(),
		UpstreamK:         s.db.K(),
	}
	if hdb, ok := s.db.(*hidden.DB); ok {
		st.UpstreamRanker = hdb.RankerName()
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleRerank(w http.ResponseWriter, r *http.Request) {
	var req RerankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	resp, code, err := s.Rerank(req)
	if err != nil {
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Rerank executes one reranking request. It is exported so in-process
// callers (tests, examples) can skip HTTP.
func (s *Server) Rerank(req RerankRequest) (*RerankResponse, int, error) {
	if req.H <= 0 {
		req.H = 10
	}
	if req.H > 10_000 {
		return nil, http.StatusBadRequest, errors.New("h too large (max 10000)")
	}
	schema := s.db.Schema()
	q, err := buildQuery(schema, req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	rk, err := buildRanker(schema, req.Ranking)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	variant, err := parseAlgorithm(req.Algorithm, len(rk.Attrs()))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}

	s.requests.Add(1)
	// One session per request: its ledger is the request's upstream cost
	// (exact under concurrency, unlike a before/after diff of the engine
	// counter, which would absorb other requests' probes).
	sess := s.engine.NewSession()
	cur, err := sess.NewCursor(q, rk, variant)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	tuples, err := core.TopH(cur, req.H)
	if err != nil {
		if errors.Is(err, hidden.ErrRateLimited) {
			return nil, http.StatusTooManyRequests, err
		}
		return nil, http.StatusBadGateway, fmt.Errorf("upstream search failed: %w", err)
	}
	resp := &RerankResponse{
		Exhausted:     len(tuples) < req.H,
		QueriesIssued: sess.Queries(),
		EngineQueries: s.engine.Queries(),
	}
	for _, t := range tuples {
		resp.Tuples = append(resp.Tuples, toJSON(schema, rk, t))
	}
	return resp, http.StatusOK, nil
}

func toJSON(schema *types.Schema, rk ranking.Ranker, t types.Tuple) TupleJSON {
	out := TupleJSON{
		ID:    t.ID,
		Score: ranking.ScoreTuple(rk, t),
		Ord:   make(map[string]float64),
		Cat:   t.Cat,
	}
	for _, i := range schema.OrdinalIndexes() {
		out.Ord[schema.Attr(i).Name] = t.Ord[i]
	}
	return out
}

func buildQuery(schema *types.Schema, req RerankRequest) (query.Query, error) {
	q := query.New()
	for _, rs := range req.Ranges {
		idx := schema.Index(rs.Attr)
		if idx < 0 || schema.Attr(idx).Kind != types.Ordinal {
			return q, fmt.Errorf("unknown ordinal attribute %q", rs.Attr)
		}
		iv := types.FullInterval()
		if rs.Min != nil {
			iv.Lo, iv.LoOpen = *rs.Min, rs.MinOpen
		}
		if rs.Max != nil {
			iv.Hi, iv.HiOpen = *rs.Max, rs.MaxOpen
		}
		if iv.Empty() {
			return q, fmt.Errorf("empty range on %q", rs.Attr)
		}
		q = q.WithRange(idx, iv)
	}
	for name, val := range req.Filters {
		idx := schema.Index(name)
		if idx < 0 || schema.Attr(idx).Kind != types.Categorical {
			return q, fmt.Errorf("unknown categorical attribute %q", name)
		}
		q = q.WithCat(name, val)
	}
	return q, nil
}

func buildRanker(schema *types.Schema, spec RankingSpec) (ranking.Ranker, error) {
	idx := make([]int, len(spec.Attrs))
	for i, name := range spec.Attrs {
		j := schema.Index(name)
		if j < 0 || schema.Attr(j).Kind != types.Ordinal {
			return nil, fmt.Errorf("unknown ordinal attribute %q in ranking", name)
		}
		idx[i] = j
	}
	switch spec.Kind {
	case "linear":
		return ranking.NewLinear("user-linear", idx, spec.Weights)
	case "single":
		if len(idx) != 1 {
			return nil, errors.New(`"single" ranking takes exactly one attribute`)
		}
		dir := ranking.Asc
		if spec.Desc {
			dir = ranking.Desc
		}
		return ranking.NewSingle("user-single", idx[0], dir), nil
	case "ratio":
		if len(idx) != 2 {
			return nil, errors.New(`"ratio" ranking takes exactly two attributes (num, den)`)
		}
		if schema.Domain(idx[1]).Min <= 0 {
			return nil, fmt.Errorf("ratio denominator %q must have a positive domain", spec.Attrs[1])
		}
		return ranking.NewRatio("user-ratio", idx[0], idx[1]), nil
	default:
		return nil, fmt.Errorf("unknown ranking kind %q (want linear, single, or ratio)", spec.Kind)
	}
}

func parseAlgorithm(s string, nAttrs int) (core.Variant, error) {
	switch s {
	case "", "rerank":
		return core.Rerank, nil
	case "baseline":
		return core.Baseline, nil
	case "binary":
		return core.Binary, nil
	case "ta":
		if nAttrs < 2 {
			return 0, errors.New(`algorithm "ta" requires a multi-attribute ranking`)
		}
		return core.TAOverOneD, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
