// Package service implements "query reranking as a service" over HTTP: the
// third-party deployment the paper's title promises. A Server wraps one
// reranking engine per upstream database, keeps the cross-query history and
// dense indexes alive across requests, and exposes the serving API:
//
//	POST /v1/rerank         {query, ranking, h, algorithm} -> ranked tuples + cost
//	POST /v1/rerank/batch   {requests:[...]}               -> per-item results, probes deduped across the batch
//	POST /v1/rerank/stream  same body as /v1/rerank        -> NDJSON, one tuple per line as the search produces them
//	GET  /v1/stats                                         -> engine statistics (JSON)
//	GET  /v1/schema                                        -> upstream schema + k (for clients/load generators)
//	GET  /metrics                                          -> the same counters in Prometheus text format
//	GET  /healthz                                          -> liveness (503 once draining)
//
// The serving tier is production-shaped: Core.MaxConcurrentSessions bounds
// in-flight sessions through a weighted admission gate (excess requests get
// 429 + Retry-After; a batch of N weighs N), Options.ClientBudget turns the
// per-request cost ledger into a per-client QoS allowance, request bodies
// are size-capped, and BeginDrain stops admission for graceful shutdown
// while in-flight requests finish. See docs/operations.md.
//
// The upstream database can be in-process (a *hidden.DB) or remote — see
// remote.go for the adapter that speaks to any HTTP top-k search endpoint
// such as cmd/hiddendb.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// RankingSpec describes a user ranking function over the wire.
type RankingSpec struct {
	// Kind is "linear", "single", or "ratio".
	Kind string `json:"kind"`
	// Attrs are attribute names (resolved against the upstream schema).
	Attrs []string `json:"attrs"`
	// Weights parameterize "linear" (same length as Attrs).
	Weights []float64 `json:"weights,omitempty"`
	// Desc marks a "single" ranking as descending.
	Desc bool `json:"desc,omitempty"`
}

// RangeSpec is one range predicate over the wire.
type RangeSpec struct {
	Attr    string   `json:"attr"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	MinOpen bool     `json:"minOpen,omitempty"`
	MaxOpen bool     `json:"maxOpen,omitempty"`
}

// RerankRequest is the /v1/rerank request body.
type RerankRequest struct {
	Ranges    []RangeSpec       `json:"ranges,omitempty"`
	Filters   map[string]string `json:"filters,omitempty"`
	Ranking   RankingSpec       `json:"ranking"`
	H         int               `json:"h"`                   // how many answers
	Algorithm string            `json:"algorithm,omitempty"` // "rerank" (default), "baseline", "binary", "ta"
}

// TupleJSON is one ranked answer over the wire.
type TupleJSON struct {
	ID    int                `json:"id"`
	Score float64            `json:"score"`
	Ord   map[string]float64 `json:"ord"`
	Cat   map[string]string  `json:"cat,omitempty"`
}

// RerankResponse is the /v1/rerank response body.
type RerankResponse struct {
	Tuples    []TupleJSON `json:"tuples"`
	Exhausted bool        `json:"exhausted"`
	// QueriesIssued is the number of upstream search queries this request
	// cost — the paper's performance measure, surfaced to clients. Probes
	// deduplicated by the engine's coalescing layer (answered by another
	// in-flight request or a recent complete answer) cost nothing and are
	// charged once, to the request that actually issued them.
	QueriesIssued int64 `json:"queriesIssued"`
	// EngineQueries is the engine's lifetime upstream query count.
	EngineQueries int64 `json:"engineQueries"`
}

// Stats is the /v1/stats response body.
type Stats struct {
	EngineQueries int64 `json:"engineQueries"`
	HistoryTuples int   `json:"historyTuples"`
	// ProbeCacheEntries is the number of complete probe answers the
	// coalescing LRU currently holds — the probes the service can answer
	// for zero upstream cost (persisted across restarts by snapshots).
	ProbeCacheEntries int `json:"probeCacheEntries"`
	// MDDenseRegions is the number of crawled MD dense regions across all
	// ranked-attribute subsets — the boxes MD-RERANK answers locally for
	// zero upstream cost (persisted across restarts since snapshot v3).
	MDDenseRegions int `json:"mdDenseRegions"`
	// DenseMDBuckets / DenseMDMaxBucket describe the MD dense indexes'
	// centroid-grid shape: occupied grid cells and the largest cell
	// population. MaxBucket staying small as MDDenseRegions grows is the
	// sub-linear-lookup property holding in production.
	DenseMDBuckets   int `json:"denseMDBuckets"`
	DenseMDMaxBucket int `json:"denseMDMaxBucket"`
	// SearchParallelism is the MD search's effective speculative probe
	// width W (1 when unset or when a per-op budget forces sequential);
	// SpecProbesIssued / SpecProbesWasted count speculative probes issued
	// (round slots beyond the first) and the subset invalidated by a
	// threshold improvement. Wasted probes' answers still seed the shared
	// caches, so their upstream cost is paid at most once.
	SearchParallelism int   `json:"searchParallelism"`
	SpecProbesIssued  int64 `json:"specProbesIssued"`
	SpecProbesWasted  int64 `json:"specProbesWasted"`
	// Requests counts single /v1/rerank requests; BatchRequests and
	// StreamRequests count the batch/stream endpoints (BatchItems is the
	// total of sub-requests inside batches, StreamTuples the total NDJSON
	// tuple lines emitted).
	Requests       int64 `json:"requests"`
	BatchRequests  int64 `json:"batchRequests"`
	BatchItems     int64 `json:"batchItems"`
	StreamRequests int64 `json:"streamRequests"`
	StreamTuples   int64 `json:"streamTuples"`
	// SessionsInFlight / MaxSessions describe the admission gate:
	// currently-admitted session weight and the configured bound
	// (0 = unlimited). Rejected* count requests shed at the edge, by
	// cause: engine capacity, per-client budget, draining shutdown.
	SessionsInFlight int   `json:"sessionsInFlight"`
	MaxSessions      int   `json:"maxSessions"`
	RejectedCapacity int64 `json:"rejectedCapacity"`
	RejectedBudget   int64 `json:"rejectedBudget"`
	RejectedDraining int64 `json:"rejectedDraining"`
	// Draining is true once BeginDrain was called (shutdown in progress).
	Draining       bool   `json:"draining"`
	UpstreamK      int    `json:"upstreamK"`
	UpstreamRanker string `json:"upstreamRanker,omitempty"`
	// Columnar storage gauges (see internal/colstore and docs/storage.md):
	// StorageBlocks is the number of sealed column blocks in the history
	// arena, StorageDictEntries the interned categorical symbol count,
	// StorageResidentTuples the arena row count (equals HistoryTuples), and
	// StorageApproxBytes the approximate resident footprint of the columnar
	// store plus the columnar-encoded probe-cache answers.
	StorageBlocks         int   `json:"storageBlocks"`
	StorageDictEntries    int   `json:"storageDictEntries"`
	StorageResidentTuples int   `json:"storageResidentTuples"`
	StorageApproxBytes    int64 `json:"storageApproxBytes"`
	// Segment/journal persistence gauges (zero-valued unless a data dir is
	// open; see docs/persistence.md). PersistSeq is the committed journal
	// sequence number, PersistPendingOps the operations recorded since the
	// last checkpoint (knowledge at risk if the process dies right now), and
	// PersistLastError the most recent checkpoint failure ("" when healthy).
	PersistEnabled        bool   `json:"persistEnabled"`
	PersistSeq            int64  `json:"persistSeq,omitempty"`
	PersistCheckpoints    int64  `json:"persistCheckpoints,omitempty"`
	PersistCompactions    int64  `json:"persistCompactions,omitempty"`
	PersistJournalRecords int    `json:"persistJournalRecords,omitempty"`
	PersistSegmentFiles   int    `json:"persistSegmentFiles,omitempty"`
	PersistPendingOps     int    `json:"persistPendingOps,omitempty"`
	PersistReplayedDeltas int    `json:"persistReplayedDeltas,omitempty"`
	PersistBytesAppended  int64  `json:"persistBytesAppended,omitempty"`
	PersistLastError      string `json:"persistLastError,omitempty"`
}

// Server is the reranking service. Requests are handled concurrently: the
// engine's shared knowledge (history, dense indexes, probe coalescing) is
// internally synchronized, and each request runs in its own engine session.
// The only server-level lock serializes snapshot save/load against each
// other; snapshots are safe to take while requests are in flight.
type Server struct {
	db     hidden.Database
	engine *core.Engine
	opts   Options

	requests       atomic.Int64
	batchRequests  atomic.Int64
	batchItems     atomic.Int64
	streamRequests atomic.Int64
	streamTuples   atomic.Int64

	// Admission/shedding state (see admission.go).
	draining         atomic.Bool
	rejectedCapacity atomic.Int64
	rejectedBudget   atomic.Int64
	rejectedDraining atomic.Int64
	budgets          *budgetLedger // nil when ClientBudget is unset

	n int

	stateMu sync.Mutex // serializes SaveState/LoadState/OpenDataDir

	// persist is the engine's incremental checkpointer, set by OpenDataDir
	// before serving starts (nil when running without a data dir).
	persist *core.Persister
}

// NewServer builds a service over the given upstream database. n is the
// (estimated) upstream size used for dense-index thresholds.
func NewServer(db hidden.Database, n int) *Server {
	return NewServerWith(db, core.Options{N: n})
}

// NewServerWith builds a service with explicit engine options (opts.N is the
// upstream size estimate; coalescing, cache sizing and the session admission
// bound are also set here) and default serving options.
func NewServerWith(db hidden.Database, opts core.Options) *Server {
	return NewServerWithOptions(db, Options{Core: opts})
}

// NewServerWithOptions builds a service with full serving-tier options.
func NewServerWithOptions(db hidden.Database, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		db:      db,
		engine:  core.NewEngine(db, opts.Core),
		opts:    opts,
		budgets: newBudgetLedger(opts.ClientBudget, opts.ClientBudgetWindow, nil),
		n:       opts.Core.N,
	}
}

// Engine exposes the server's underlying engine (admission gauges, tests).
func (s *Server) Engine() *core.Engine { return s.engine }

// SaveState serializes the engine's accumulated knowledge (answer history
// and dense indexes) so a restarted service stays warm. Safe to call while
// requests are being served.
func (s *Server) SaveState(w io.Writer) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.engine.SaveSnapshot(w)
}

// LoadState restores knowledge saved by SaveState. Call before serving.
func (s *Server) LoadState(r io.Reader) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.engine.LoadSnapshot(r)
}

// Handler returns the HTTP handler for the service API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rerank", s.handleRerank)
	mux.HandleFunc("POST /v1/rerank/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/rerank/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Draining instances fail liveness so load balancers stop
		// routing to them while in-flight requests finish.
		if s.draining.Load() {
			httpError(w, http.StatusServiceUnavailable, errDraining)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleSchema republishes the upstream search schema (the same wire shape
// hiddendb serves), so service clients and load generators can build
// requests without a side channel to the upstream.
func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, schemaResponse(s.db.Schema(), s.db.K()))
}

// decodeBody decodes a size-capped JSON request body. The error is already
// written to w when ok is false (413 for oversized bodies, 400 otherwise).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// Stats reports the service's current counters (also served at /v1/stats).
func (s *Server) Stats() Stats {
	gs := s.engine.MDBucketStats()
	specIssued, specWasted := s.engine.SpeculationStats()
	st := Stats{
		EngineQueries:     s.engine.Queries(),
		HistoryTuples:     s.engine.History().Size(),
		ProbeCacheEntries: s.engine.ProbeCacheEntries(),
		MDDenseRegions:    s.engine.MDDenseRegions(),
		DenseMDBuckets:    gs.Buckets,
		DenseMDMaxBucket:  gs.MaxBucket,
		SearchParallelism: s.engine.SearchParallelism(),
		SpecProbesIssued:  specIssued,
		SpecProbesWasted:  specWasted,
		Requests:          s.requests.Load(),
		BatchRequests:     s.batchRequests.Load(),
		BatchItems:        s.batchItems.Load(),
		StreamRequests:    s.streamRequests.Load(),
		StreamTuples:      s.streamTuples.Load(),
		SessionsInFlight:  s.engine.SessionsInFlight(),
		MaxSessions:       s.engine.SessionCapacity(),
		RejectedCapacity:  s.rejectedCapacity.Load(),
		RejectedBudget:    s.rejectedBudget.Load(),
		RejectedDraining:  s.rejectedDraining.Load(),
		Draining:          s.draining.Load(),
		UpstreamK:         s.db.K(),
	}
	ss := s.engine.StorageStats()
	st.StorageBlocks = ss.Blocks
	st.StorageDictEntries = ss.DictEntries
	st.StorageResidentTuples = ss.Tuples
	st.StorageApproxBytes = ss.ApproxBytes + s.engine.ProbeCacheBytes()
	if hdb, ok := s.db.(*hidden.DB); ok {
		st.UpstreamRanker = hdb.RankerName()
	}
	if ps, ok := s.PersistStats(); ok {
		st.PersistEnabled = true
		st.PersistSeq = int64(ps.Store.Seq)
		st.PersistCheckpoints = ps.Store.Checkpoints
		st.PersistCompactions = ps.Store.Compactions
		st.PersistJournalRecords = ps.Store.JournalRecords
		st.PersistSegmentFiles = ps.Store.SegmentFiles
		st.PersistPendingOps = ps.PendingOps
		st.PersistReplayedDeltas = ps.Store.ReplayedDeltas
		st.PersistBytesAppended = ps.Store.BytesAppended
		st.PersistLastError = ps.LastError
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleRerank(w http.ResponseWriter, r *http.Request) {
	var req RerankRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Validate before admitting: invalid requests must not compete with
	// real traffic for session slots or budget.
	q, rk, variant, err := buildRequest(s.db.Schema(), &req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	release, charge, ok := s.admit(w, r, 1)
	if !ok {
		return
	}
	defer release()
	// Counted here, not in the shared core: batch sub-items have their own
	// BatchItems counter and must not inflate the single-request rate.
	s.requests.Add(1)
	resp, issued, code, err := s.run(q, rk, variant, req.H)
	charge(issued)
	if err != nil {
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Rerank executes one reranking request. It is exported so in-process
// callers (tests, examples) can skip HTTP; it bypasses admission control
// and budgets, which live at the HTTP edge.
func (s *Server) Rerank(req RerankRequest) (*RerankResponse, int, error) {
	s.requests.Add(1)
	resp, _, code, err := s.rerank(req)
	return resp, code, err
}

// rerank validates and runs one request, reporting the upstream queries it
// cost even when it failed mid-search — the number the HTTP edge charges
// against the client's budget window.
func (s *Server) rerank(req RerankRequest) (_ *RerankResponse, issued int64, code int, err error) {
	q, rk, variant, err := buildRequest(s.db.Schema(), &req)
	if err != nil {
		return nil, 0, http.StatusBadRequest, err
	}
	return s.run(q, rk, variant, req.H)
}

// run executes one compiled request in a fresh session.
func (s *Server) run(q query.Query, rk ranking.Ranker, variant core.Variant, h int) (_ *RerankResponse, issued int64, code int, err error) {
	// One session per request: its ledger is the request's upstream cost
	// (exact under concurrency, unlike a before/after diff of the engine
	// counter, which would absorb other requests' probes).
	sess := s.engine.NewSession()
	cur, err := sess.NewCursor(q, rk, variant)
	if err != nil {
		return nil, sess.Queries(), http.StatusBadRequest, err
	}
	tuples, err := core.TopH(cur, h)
	if err != nil {
		if errors.Is(err, hidden.ErrRateLimited) {
			return nil, sess.Queries(), http.StatusTooManyRequests, err
		}
		return nil, sess.Queries(), http.StatusBadGateway, fmt.Errorf("upstream search failed: %w", err)
	}
	resp := &RerankResponse{
		Exhausted:     len(tuples) < h,
		QueriesIssued: sess.Queries(),
		EngineQueries: s.engine.Queries(),
	}
	for _, t := range tuples {
		resp.Tuples = append(resp.Tuples, toJSON(s.db.Schema(), rk, t))
	}
	return resp, resp.QueriesIssued, http.StatusOK, nil
}

// buildRequest validates and compiles one wire request into its engine
// parts (query, ranker, algorithm variant), applying the default and
// maximum h. Shared by the single, batch and streaming endpoints.
func buildRequest(schema *types.Schema, req *RerankRequest) (query.Query, ranking.Ranker, core.Variant, error) {
	if req.H <= 0 {
		req.H = 10
	}
	if req.H > 10_000 {
		return query.Query{}, nil, 0, errors.New("h too large (max 10000)")
	}
	q, err := buildQuery(schema, *req)
	if err != nil {
		return query.Query{}, nil, 0, err
	}
	rk, err := buildRanker(schema, req.Ranking)
	if err != nil {
		return query.Query{}, nil, 0, err
	}
	variant, err := parseAlgorithm(req.Algorithm, len(rk.Attrs()))
	if err != nil {
		return query.Query{}, nil, 0, err
	}
	return q, rk, variant, nil
}

func toJSON(schema *types.Schema, rk ranking.Ranker, t types.Tuple) TupleJSON {
	var out TupleJSON
	toJSONInto(schema, rk, t, &out)
	return out
}

// toJSONInto fills dst from t, reusing dst's Ord map across calls. The stream
// encoder serializes each TupleJSON before the next fill, so one reused
// value covers an entire NDJSON response without per-tuple map allocation.
func toJSONInto(schema *types.Schema, rk ranking.Ranker, t types.Tuple, dst *TupleJSON) {
	dst.ID = t.ID
	dst.Score = ranking.ScoreTuple(rk, t)
	dst.Cat = t.Cat
	if dst.Ord == nil {
		dst.Ord = make(map[string]float64, len(schema.OrdinalIndexes()))
	} else {
		clear(dst.Ord)
	}
	for _, i := range schema.OrdinalIndexes() {
		dst.Ord[schema.Attr(i).Name] = t.Ord[i]
	}
}

func buildQuery(schema *types.Schema, req RerankRequest) (query.Query, error) {
	q := query.New()
	for _, rs := range req.Ranges {
		idx := schema.Index(rs.Attr)
		if idx < 0 || schema.Attr(idx).Kind != types.Ordinal {
			return q, fmt.Errorf("unknown ordinal attribute %q", rs.Attr)
		}
		iv := types.FullInterval()
		if rs.Min != nil {
			iv.Lo, iv.LoOpen = *rs.Min, rs.MinOpen
		}
		if rs.Max != nil {
			iv.Hi, iv.HiOpen = *rs.Max, rs.MaxOpen
		}
		if iv.Empty() {
			return q, fmt.Errorf("empty range on %q", rs.Attr)
		}
		q = q.WithRange(idx, iv)
	}
	for name, val := range req.Filters {
		idx := schema.Index(name)
		if idx < 0 || schema.Attr(idx).Kind != types.Categorical {
			return q, fmt.Errorf("unknown categorical attribute %q", name)
		}
		q = q.WithCat(name, val)
	}
	return q, nil
}

func buildRanker(schema *types.Schema, spec RankingSpec) (ranking.Ranker, error) {
	idx := make([]int, len(spec.Attrs))
	for i, name := range spec.Attrs {
		j := schema.Index(name)
		if j < 0 || schema.Attr(j).Kind != types.Ordinal {
			return nil, fmt.Errorf("unknown ordinal attribute %q in ranking", name)
		}
		idx[i] = j
	}
	switch spec.Kind {
	case "linear":
		return ranking.NewLinear("user-linear", idx, spec.Weights)
	case "single":
		if len(idx) != 1 {
			return nil, errors.New(`"single" ranking takes exactly one attribute`)
		}
		dir := ranking.Asc
		if spec.Desc {
			dir = ranking.Desc
		}
		return ranking.NewSingle("user-single", idx[0], dir), nil
	case "ratio":
		if len(idx) != 2 {
			return nil, errors.New(`"ratio" ranking takes exactly two attributes (num, den)`)
		}
		if schema.Domain(idx[1]).Min <= 0 {
			return nil, fmt.Errorf("ratio denominator %q must have a positive domain", spec.Attrs[1])
		}
		return ranking.NewRatio("user-ratio", idx[0], idx[1]), nil
	default:
		return nil, fmt.Errorf("unknown ranking kind %q (want linear, single, or ratio)", spec.Kind)
	}
}

func parseAlgorithm(s string, nAttrs int) (core.Variant, error) {
	switch s {
	case "", "rerank":
		return core.Rerank, nil
	case "baseline":
		return core.Baseline, nil
	case "binary":
		return core.Binary, nil
	case "ta":
		if nAttrs < 2 {
			return 0, errors.New(`algorithm "ta" requires a multi-attribute ranking`)
		}
		return core.TAOverOneD, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
