// Package service implements "query reranking as a service" over HTTP: the
// third-party deployment the paper's title promises. A Server fronts a
// registry of upstream namespaces — one isolated reranking engine per
// registered hidden database — and exposes the federated serving API:
//
//	GET    /v1/upstreams                          -> registered upstreams (name, url, fingerprint, schema, stats)
//	POST   /v1/upstreams                          {name, url} -> dial + register a new upstream namespace
//	GET    /v1/upstreams/{ns}                     -> one upstream's descriptor
//	DELETE /v1/upstreams/{ns}                     -> deregister (finalizes its persistence)
//	POST   /v1/upstreams/{ns}/rerank{,/batch,/stream}  -> namespace-scoped reranking
//	GET    /v1/upstreams/{ns}/stats               -> one namespace's counters
//	GET    /v1/upstreams/{ns}/schema              -> one namespace's upstream schema
//	GET    /v1/stats                              -> service-wide counters + per-upstream breakdown
//	GET    /metrics                               -> the same counters in Prometheus text format
//	GET    /healthz                               -> liveness (503 once draining)
//
// The pre-federation un-namespaced routes remain as deprecated aliases for
// the DEFAULT namespace (the first registered upstream): POST /v1/rerank
// {,/batch,/stream} and GET /v1/schema behave exactly as before on a
// single-upstream server, and their bodies accept an "upstream" field to
// address a namespace without the new paths. See docs/api.md.
//
// Isolation model: each namespace owns its history, dense indexes, probe
// cache, coalescer, query-cost ledger, and (with a data dir) its own
// segment store under data-dir/<ns>/. Admission capacity is the one shared
// resource — Core.MaxConcurrentSessions bounds in-flight sessions across
// all namespaces through a weighted registry gate (excess requests get 429
// + Retry-After; a batch of N weighs N, scaled by the namespace's
// admission weight). Options.ClientBudget meters upstream queries per
// client across namespaces, request bodies are size-capped, and BeginDrain
// stops admission for graceful shutdown. Every non-2xx response carries
// the {"error":{code,message,retryAfterSec}} envelope (see errors.go).
//
// Upstream databases can be in-process (a *hidden.DB) or remote — see
// remote.go for the adapter that speaks to any HTTP top-k search endpoint
// such as cmd/hiddendb.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acquire"
	"repro/internal/core"
	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// DefaultUpstream is the namespace name the single-upstream constructors
// register, and the implicit target of un-namespaced requests.
const DefaultUpstream = "default"

// RankingSpec describes a user ranking function over the wire.
type RankingSpec struct {
	// Kind is "linear", "single", or "ratio".
	Kind string `json:"kind"`
	// Attrs are attribute names (resolved against the upstream schema).
	Attrs []string `json:"attrs"`
	// Weights parameterize "linear" (same length as Attrs).
	Weights []float64 `json:"weights,omitempty"`
	// Desc marks a "single" ranking as descending.
	Desc bool `json:"desc,omitempty"`
}

// RangeSpec is one range predicate over the wire.
type RangeSpec struct {
	Attr    string   `json:"attr"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	MinOpen bool     `json:"minOpen,omitempty"`
	MaxOpen bool     `json:"maxOpen,omitempty"`
}

// RerankRequest is the /v1/rerank request body.
type RerankRequest struct {
	// Upstream addresses a registered namespace from the legacy
	// un-namespaced routes ("" = the default namespace). On the
	// namespace-scoped routes it must be empty or match the path.
	Upstream  string            `json:"upstream,omitempty"`
	Ranges    []RangeSpec       `json:"ranges,omitempty"`
	Filters   map[string]string `json:"filters,omitempty"`
	Ranking   RankingSpec       `json:"ranking"`
	H         int               `json:"h"`                   // how many answers
	Algorithm string            `json:"algorithm,omitempty"` // "rerank" (default), "baseline", "binary", "ta"
}

// TupleJSON is one ranked answer over the wire.
type TupleJSON struct {
	ID    int                `json:"id"`
	Score float64            `json:"score"`
	Ord   map[string]float64 `json:"ord"`
	Cat   map[string]string  `json:"cat,omitempty"`
}

// RerankResponse is the /v1/rerank response body.
type RerankResponse struct {
	Tuples    []TupleJSON `json:"tuples"`
	Exhausted bool        `json:"exhausted"`
	// QueriesIssued is the number of upstream search queries this request
	// cost — the paper's performance measure, surfaced to clients. Probes
	// deduplicated by the engine's coalescing layer (answered by another
	// in-flight request or a recent complete answer) cost nothing and are
	// charged once, to the request that actually issued them.
	QueriesIssued int64 `json:"queriesIssued"`
	// EngineQueries is the namespace engine's lifetime upstream query count.
	EngineQueries int64 `json:"engineQueries"`
	// Epoch is the namespace's knowledge epoch the answer was computed
	// under (also sent as the X-Knowledge-Epoch response header).
	Epoch int64 `json:"epoch"`
}

// UpstreamStats is one namespace's slice of the service counters, served
// under /v1/stats (the Upstreams map), /v1/upstreams listings, and
// /v1/upstreams/{ns}/stats.
type UpstreamStats struct {
	// URL is the upstream's endpoint ("" for an in-process database).
	URL string `json:"url,omitempty"`
	// Default marks the namespace legacy un-namespaced requests hit.
	Default bool `json:"default,omitempty"`
	// AdmissionWeight is the per-session multiplier this namespace applies
	// to the shared admission capacity.
	AdmissionWeight int `json:"admissionWeight"`

	EngineQueries     int64  `json:"engineQueries"`
	HistoryTuples     int    `json:"historyTuples"`
	ProbeCacheEntries int    `json:"probeCacheEntries"`
	MDDenseRegions    int    `json:"mdDenseRegions"`
	DenseMDBuckets    int    `json:"denseMDBuckets"`
	DenseMDMaxBucket  int    `json:"denseMDMaxBucket"`
	SearchParallelism int    `json:"searchParallelism"`
	SpecProbesIssued  int64  `json:"specProbesIssued"`
	SpecProbesWasted  int64  `json:"specProbesWasted"`
	Requests          int64  `json:"requests"`
	BatchRequests     int64  `json:"batchRequests"`
	BatchItems        int64  `json:"batchItems"`
	StreamRequests    int64  `json:"streamRequests"`
	StreamTuples      int64  `json:"streamTuples"`
	UpstreamK         int    `json:"upstreamK"`
	UpstreamRanker    string `json:"upstreamRanker,omitempty"`

	StorageBlocks         int   `json:"storageBlocks"`
	StorageDictEntries    int   `json:"storageDictEntries"`
	StorageResidentTuples int   `json:"storageResidentTuples"`
	StorageApproxBytes    int64 `json:"storageApproxBytes"`

	// Living-upstream state: the knowledge epoch, sentinel drift detection,
	// lazy re-validation and probe-guard counters (see docs/epochs.md).
	Epoch            int64  `json:"epoch"`
	EpochBumps       int64  `json:"epochBumps"`
	StaleRegions     int    `json:"staleRegions"`
	StaleHistoryRows int64  `json:"staleHistoryRows"`
	RevalPromoted    int64  `json:"revalPromoted"`
	RevalEvicted     int64  `json:"revalEvicted"`
	SentinelPasses   int64  `json:"sentinelPasses"`
	SentinelBumps    int64  `json:"sentinelBumps"`
	LastSentinelUnix int64  `json:"lastSentinelUnix,omitempty"`
	Health           string `json:"health"`
	ProbeRetries     int64  `json:"probeRetries"`
	ProbeHedges      int64  `json:"probeHedges"`
	ProbeHedgeWins   int64  `json:"probeHedgeWins"`
	ProbeFailures    int64  `json:"probeFailures"`
	ProbeFastFails   int64  `json:"probeFastFails"`

	// Acquire is the namespace's background-acquirer counters (absent when
	// acquisition is disabled).
	Acquire *acquire.Stats `json:"acquire,omitempty"`

	// Per-namespace persistence gauges (the namespace's own segment store
	// under data-dir/<ns>/).
	PersistEnabled        bool   `json:"persistEnabled"`
	PersistSeq            int64  `json:"persistSeq,omitempty"`
	PersistCheckpoints    int64  `json:"persistCheckpoints,omitempty"`
	PersistCompactions    int64  `json:"persistCompactions,omitempty"`
	PersistJournalRecords int    `json:"persistJournalRecords,omitempty"`
	PersistSegmentFiles   int    `json:"persistSegmentFiles,omitempty"`
	PersistPendingOps     int    `json:"persistPendingOps,omitempty"`
	PersistReplayedDeltas int    `json:"persistReplayedDeltas,omitempty"`
	PersistBytesAppended  int64  `json:"persistBytesAppended,omitempty"`
	PersistLastError      string `json:"persistLastError,omitempty"`
}

// Stats is the /v1/stats response body: the service-wide counters, with the
// engine-level fields summed across namespaces, plus the per-namespace
// breakdown in Upstreams. On a single-upstream server the flat fields read
// exactly as they did before federation.
type Stats struct {
	EngineQueries int64 `json:"engineQueries"`
	HistoryTuples int   `json:"historyTuples"`
	// ProbeCacheEntries is the number of complete probe answers the
	// coalescing LRUs currently hold — the probes the service can answer
	// for zero upstream cost (persisted across restarts by snapshots).
	ProbeCacheEntries int `json:"probeCacheEntries"`
	// MDDenseRegions is the number of crawled MD dense regions across all
	// ranked-attribute subsets — the boxes MD-RERANK answers locally for
	// zero upstream cost (persisted across restarts since snapshot v3).
	MDDenseRegions int `json:"mdDenseRegions"`
	// DenseMDBuckets / DenseMDMaxBucket describe the MD dense indexes'
	// centroid-grid shape: occupied grid cells and the largest cell
	// population. MaxBucket staying small as MDDenseRegions grows is the
	// sub-linear-lookup property holding in production.
	DenseMDBuckets   int `json:"denseMDBuckets"`
	DenseMDMaxBucket int `json:"denseMDMaxBucket"`
	// SearchParallelism is the default namespace's effective speculative
	// probe width W; SpecProbesIssued / SpecProbesWasted sum speculative
	// probes issued and wasted across namespaces.
	SearchParallelism int   `json:"searchParallelism"`
	SpecProbesIssued  int64 `json:"specProbesIssued"`
	SpecProbesWasted  int64 `json:"specProbesWasted"`
	// Requests counts single rerank requests; BatchRequests and
	// StreamRequests count the batch/stream endpoints (BatchItems is the
	// total of sub-requests inside batches, StreamTuples the total NDJSON
	// tuple lines emitted). All summed across namespaces.
	Requests       int64 `json:"requests"`
	BatchRequests  int64 `json:"batchRequests"`
	BatchItems     int64 `json:"batchItems"`
	StreamRequests int64 `json:"streamRequests"`
	StreamTuples   int64 `json:"streamTuples"`
	// SessionsInFlight / MaxSessions describe the shared admission gate:
	// currently-admitted session weight and the configured bound
	// (0 = unlimited). Rejected* count requests shed at the edge, by
	// cause: capacity, per-client budget, draining shutdown.
	SessionsInFlight int   `json:"sessionsInFlight"`
	MaxSessions      int   `json:"maxSessions"`
	RejectedCapacity int64 `json:"rejectedCapacity"`
	RejectedBudget   int64 `json:"rejectedBudget"`
	RejectedDraining int64 `json:"rejectedDraining"`
	// Draining is true once BeginDrain was called (shutdown in progress).
	Draining bool `json:"draining"`
	// UpstreamK / UpstreamRanker describe the default namespace's upstream
	// interface.
	UpstreamK      int    `json:"upstreamK"`
	UpstreamRanker string `json:"upstreamRanker,omitempty"`
	// Columnar storage gauges, summed across namespaces (see
	// internal/colstore and docs/storage.md).
	StorageBlocks         int   `json:"storageBlocks"`
	StorageDictEntries    int   `json:"storageDictEntries"`
	StorageResidentTuples int   `json:"storageResidentTuples"`
	StorageApproxBytes    int64 `json:"storageApproxBytes"`
	// Segment/journal persistence gauges, summed across namespaces
	// (zero-valued unless a data dir is open; see docs/persistence.md).
	// PersistLastError is the first failing namespace's most recent
	// checkpoint error ("" when all healthy).
	PersistEnabled        bool   `json:"persistEnabled"`
	PersistSeq            int64  `json:"persistSeq,omitempty"`
	PersistCheckpoints    int64  `json:"persistCheckpoints,omitempty"`
	PersistCompactions    int64  `json:"persistCompactions,omitempty"`
	PersistJournalRecords int    `json:"persistJournalRecords,omitempty"`
	PersistSegmentFiles   int    `json:"persistSegmentFiles,omitempty"`
	PersistPendingOps     int    `json:"persistPendingOps,omitempty"`
	PersistReplayedDeltas int    `json:"persistReplayedDeltas,omitempty"`
	PersistBytesAppended  int64  `json:"persistBytesAppended,omitempty"`
	PersistLastError      string `json:"persistLastError,omitempty"`
	// Living-upstream aggregates: epoch bumps, stale-knowledge gauges,
	// lazy re-validation outcomes, sentinel passes and probe-guard counters
	// summed across namespaces. Epoch is the DEFAULT namespace's knowledge
	// epoch (epochs are per-namespace; see the Upstreams breakdown).
	Epoch          int64 `json:"epoch"`
	EpochBumps     int64 `json:"epochBumps"`
	StaleRegions   int   `json:"staleRegions"`
	RevalPromoted  int64 `json:"revalPromoted"`
	RevalEvicted   int64 `json:"revalEvicted"`
	SentinelPasses int64 `json:"sentinelPasses"`
	SentinelBumps  int64 `json:"sentinelBumps"`
	ProbeRetries   int64 `json:"probeRetries"`
	ProbeHedges    int64 `json:"probeHedges"`
	ProbeFailures  int64 `json:"probeFailures"`
	ProbeFastFails int64 `json:"probeFastFails"`
	// AcquireEnabled is true when background acquisition is configured;
	// Acquire sums the per-namespace acquirer counters (absent when
	// disabled).
	AcquireEnabled bool           `json:"acquireEnabled"`
	Acquire        *acquire.Stats `json:"acquire,omitempty"`
	// DefaultUpstream names the namespace un-namespaced requests hit;
	// Upstreams is the per-namespace breakdown.
	DefaultUpstream string                   `json:"defaultUpstream,omitempty"`
	Upstreams       map[string]UpstreamStats `json:"upstreams,omitempty"`
}

// tenant is one registered namespace's serving-tier state: the namespace
// (isolated engine), its database handle, and the per-namespace HTTP
// counters.
type tenant struct {
	ns  *core.Namespace
	db  hidden.Database
	url string // upstream endpoint; "" for in-process databases

	requests       atomic.Int64
	batchRequests  atomic.Int64
	batchItems     atomic.Int64
	streamRequests atomic.Int64
	streamTuples   atomic.Int64

	// lastUser is the unix-nano timestamp of the namespace's most recent
	// user request execution — the acquirer's idle gate.
	lastUser atomic.Int64
	// acq is the namespace's background acquirer (nil unless
	// Options.Acquire.Enabled).
	acq *acquire.Acquirer
	// guard is the probe guard wrapped around a remote upstream (nil for
	// in-process databases, which always report healthy).
	guard *hidden.Guard
	// sent is the namespace's running sentinel loop (nil unless
	// Options.Sentinel.Enabled).
	sent *sentinelLoop
}

func (t *tenant) engine() *core.Engine { return t.ns.Engine() }

// Server is the reranking service: a registry of upstream namespaces behind
// one HTTP surface. Requests are handled concurrently; each namespace's
// shared knowledge is internally synchronized and each request runs in its
// own engine session. The only server-level lock serializes snapshot
// save/load and persistence lifecycle against each other; snapshots are
// safe to take while requests are in flight.
type Server struct {
	registry *core.Registry
	opts     Options

	tmu     sync.RWMutex
	tenants map[string]*tenant

	// Admission/shedding state (see admission.go). Shared across
	// namespaces: sessions compete for process resources no matter which
	// upstream they probe.
	draining         atomic.Bool
	rejectedCapacity atomic.Int64
	rejectedBudget   atomic.Int64
	rejectedDraining atomic.Int64
	budgets          *budgetLedger // nil when ClientBudget is unset

	stateMu sync.Mutex // serializes SaveState/LoadState/OpenDataDir
	// dataDir, once set by OpenDataDir, makes every namespace (including
	// later registrations) persist under dataDir/<ns>/.
	dataDir    string
	persistCfg PersistConfig
}

// NewFederatedServer builds a service with no upstreams registered yet; add
// them with RegisterUpstream / RegisterUpstreamDB (the first becomes the
// default namespace). opts.Core seeds every namespace's engine options;
// opts.Core.MaxConcurrentSessions is the SHARED admission bound across all
// namespaces.
func NewFederatedServer(opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		registry: core.NewRegistry(core.RegistryOptions{
			MaxConcurrentSessions: opts.Core.MaxConcurrentSessions,
		}),
		opts:    opts,
		tenants: make(map[string]*tenant),
		budgets: newBudgetLedger(opts.ClientBudget, opts.ClientBudgetWindow, nil),
	}
}

// NewServer builds a single-upstream service over the given database,
// registered as the default namespace. n is the (estimated) upstream size
// used for dense-index thresholds.
func NewServer(db hidden.Database, n int) *Server {
	return NewServerWith(db, core.Options{N: n})
}

// NewServerWith builds a single-upstream service with explicit engine
// options (opts.N is the upstream size estimate; coalescing, cache sizing
// and the session admission bound are also set here) and default serving
// options.
func NewServerWith(db hidden.Database, opts core.Options) *Server {
	return NewServerWithOptions(db, Options{Core: opts})
}

// NewServerWithOptions builds a single-upstream service with full
// serving-tier options; db is registered as the default namespace.
func NewServerWithOptions(db hidden.Database, opts Options) *Server {
	s := NewFederatedServer(opts)
	if _, err := s.RegisterUpstreamDB(UpstreamConfig{Name: DefaultUpstream}, db); err != nil {
		// Unreachable: the name is valid and the registry is empty.
		panic(fmt.Sprintf("service: register default upstream: %v", err))
	}
	return s
}

// Registry exposes the server's namespace registry.
func (s *Server) Registry() *core.Registry { return s.registry }

// Engine exposes the DEFAULT namespace's engine (single-upstream tests and
// tools; nil when no upstream is registered).
func (s *Server) Engine() *core.Engine {
	if t, ok := s.tenantFor(""); ok {
		return t.engine()
	}
	return nil
}

// SessionsInFlight reports the admitted session weight currently in flight
// across all namespaces.
func (s *Server) SessionsInFlight() int { return s.registry.SessionsInFlight() }

// SessionCapacity returns the shared MaxConcurrentSessions bound
// (0 = unlimited).
func (s *Server) SessionCapacity() int { return s.registry.SessionCapacity() }

// tenantFor resolves a namespace name to its tenant; the empty name
// resolves to the default namespace.
func (s *Server) tenantFor(name string) (*tenant, bool) {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	if name == "" {
		ns := s.registry.Default()
		if ns == nil {
			return nil, false
		}
		name = ns.Name()
	}
	t, ok := s.tenants[name]
	return t, ok
}

// tenantList snapshots the registered tenants in namespace order.
func (s *Server) tenantList() []*tenant {
	nss := s.registry.List()
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	out := make([]*tenant, 0, len(nss))
	for _, ns := range nss {
		if t, ok := s.tenants[ns.Name()]; ok {
			out = append(out, t)
		}
	}
	return out
}

// resolveTenant picks the namespace a request addresses: the {ns} path
// wildcard when present, else the body's upstream field, else the default.
// A path/body mismatch is a 400; an unknown namespace is a 404. The error
// envelope is already written when ok is false.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request, bodyUpstream string) (*tenant, bool) {
	name := r.PathValue("ns")
	if name != "" && bodyUpstream != "" && name != bodyUpstream {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Errorf("path namespace %q conflicts with body upstream %q", name, bodyUpstream))
		return nil, false
	}
	if name == "" {
		name = bodyUpstream
	}
	t, ok := s.tenantFor(name)
	if !ok {
		httpError(w, http.StatusNotFound, ErrCodeUnknownUpstream, unknownUpstreamErr(name))
		return nil, false
	}
	return t, true
}

func unknownUpstreamErr(name string) error {
	if name == "" {
		return errors.New("no upstreams registered")
	}
	return fmt.Errorf("unknown upstream %q", name)
}

// SaveState serializes the default namespace's accumulated knowledge
// (answer history and dense indexes) so a restarted service stays warm.
// Safe to call while requests are being served. Snapshots are per-namespace:
// in a federated deployment prefer a data dir, which persists every
// namespace under its own subdirectory.
func (s *Server) SaveState(w io.Writer) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	t, ok := s.tenantFor("")
	if !ok {
		return errors.New("service: no upstreams registered")
	}
	return t.engine().SaveSnapshot(w)
}

// LoadState restores knowledge saved by SaveState into the default
// namespace. Call before serving.
func (s *Server) LoadState(r io.Reader) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	t, ok := s.tenantFor("")
	if !ok {
		return errors.New("service: no upstreams registered")
	}
	return t.engine().LoadSnapshot(r)
}

// Handler returns the HTTP handler for the service API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Registry API.
	mux.HandleFunc("GET /v1/upstreams", s.handleListUpstreams)
	mux.HandleFunc("POST /v1/upstreams", s.handleRegisterUpstream)
	mux.HandleFunc("GET /v1/upstreams/{ns}", s.handleGetUpstream)
	mux.HandleFunc("POST /v1/upstreams/{ns}/revalidate", s.handleRevalidate)
	mux.HandleFunc("DELETE /v1/upstreams/{ns}", s.handleDeregisterUpstream)
	// Namespace-scoped serving surface.
	mux.HandleFunc("POST /v1/upstreams/{ns}/rerank", s.handleRerank)
	mux.HandleFunc("POST /v1/upstreams/{ns}/rerank/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/upstreams/{ns}/rerank/stream", s.handleStream)
	mux.HandleFunc("GET /v1/upstreams/{ns}/stats", s.handleUpstreamStats)
	mux.HandleFunc("GET /v1/upstreams/{ns}/schema", s.handleSchema)
	// Deprecated un-namespaced aliases for the default namespace (bodies
	// may carry an "upstream" field; /v1/schema takes ?upstream=).
	mux.HandleFunc("POST /v1/rerank", s.handleRerank)
	mux.HandleFunc("POST /v1/rerank/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/rerank/stream", s.handleStream)
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	// Service-wide.
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Draining instances fail liveness so load balancers stop
		// routing to them while in-flight requests finish.
		if s.draining.Load() {
			httpError(w, http.StatusServiceUnavailable, ErrCodeDraining, errDraining)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleSchema republishes a namespace's upstream search schema (the same
// wire shape hiddendb serves), so service clients and load generators can
// build requests without a side channel to the upstream. An unknown
// namespace — path wildcard or ?upstream= — is a 404, never silently the
// default's schema.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("ns")
	if name == "" {
		name = r.URL.Query().Get("upstream")
	}
	t, ok := s.tenantFor(name)
	if !ok {
		httpError(w, http.StatusNotFound, ErrCodeUnknownUpstream, unknownUpstreamErr(name))
		return
	}
	writeJSON(w, http.StatusOK, schemaResponse(t.db.Schema(), t.db.K()))
}

// decodeBody decodes a size-capped JSON request body. The error is already
// written to w when ok is false (413 for oversized bodies, 400 otherwise).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, ErrCodePayloadTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// tenantStats snapshots one namespace's counters.
func (s *Server) tenantStats(t *tenant) UpstreamStats {
	eng := t.engine()
	gs := eng.MDBucketStats()
	specIssued, specWasted := eng.SpeculationStats()
	us := UpstreamStats{
		URL:               t.url,
		Default:           s.registry.Default() == t.ns,
		AdmissionWeight:   t.ns.AdmissionWeight(),
		EngineQueries:     eng.Queries(),
		HistoryTuples:     eng.History().Size(),
		ProbeCacheEntries: eng.ProbeCacheEntries(),
		MDDenseRegions:    eng.MDDenseRegions(),
		DenseMDBuckets:    gs.Buckets,
		DenseMDMaxBucket:  gs.MaxBucket,
		SearchParallelism: eng.SearchParallelism(),
		SpecProbesIssued:  specIssued,
		SpecProbesWasted:  specWasted,
		Requests:          t.requests.Load(),
		BatchRequests:     t.batchRequests.Load(),
		BatchItems:        t.batchItems.Load(),
		StreamRequests:    t.streamRequests.Load(),
		StreamTuples:      t.streamTuples.Load(),
		UpstreamK:         t.db.K(),
	}
	us.Epoch = eng.Epoch()
	us.EpochBumps = eng.Knowledge().EpochBumps()
	us.StaleRegions = eng.Knowledge().StaleRegions()
	us.StaleHistoryRows = eng.Knowledge().StaleHistoryRows()
	us.RevalPromoted, us.RevalEvicted = eng.RevalidationStats()
	us.SentinelPasses, us.SentinelBumps, us.LastSentinelUnix = eng.SentinelStats()
	us.Health = hidden.HealthHealthy.String()
	if t.guard != nil {
		gh := t.guard.Health()
		us.Health = gh.State.String()
		us.ProbeRetries = gh.Retries
		us.ProbeHedges = gh.Hedges
		us.ProbeHedgeWins = gh.HedgeWins
		us.ProbeFailures = gh.Failures
		us.ProbeFastFails = gh.FastFails
	}
	ss := eng.StorageStats()
	us.StorageBlocks = ss.Blocks
	us.StorageDictEntries = ss.DictEntries
	us.StorageResidentTuples = ss.Tuples
	us.StorageApproxBytes = ss.ApproxBytes + eng.ProbeCacheBytes()
	if hdb, ok := t.db.(*hidden.DB); ok {
		us.UpstreamRanker = hdb.RankerName()
	}
	if t.acq != nil {
		as := t.acq.Stats()
		us.Acquire = &as
	}
	if p := eng.Persister(); p != nil {
		ps := p.Stats()
		us.PersistEnabled = true
		us.PersistSeq = int64(ps.Store.Seq)
		us.PersistCheckpoints = ps.Store.Checkpoints
		us.PersistCompactions = ps.Store.Compactions
		us.PersistJournalRecords = ps.Store.JournalRecords
		us.PersistSegmentFiles = ps.Store.SegmentFiles
		us.PersistPendingOps = ps.PendingOps
		us.PersistReplayedDeltas = ps.Store.ReplayedDeltas
		us.PersistBytesAppended = ps.Store.BytesAppended
		us.PersistLastError = ps.LastError
	}
	return us
}

// Stats reports the service's current counters (also served at /v1/stats):
// engine-level fields summed across namespaces plus the per-namespace
// breakdown.
func (s *Server) Stats() Stats {
	st := Stats{
		SessionsInFlight: s.registry.SessionsInFlight(),
		MaxSessions:      s.registry.SessionCapacity(),
		RejectedCapacity: s.rejectedCapacity.Load(),
		RejectedBudget:   s.rejectedBudget.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
		Draining:         s.draining.Load(),
		AcquireEnabled:   s.opts.Acquire.Enabled,
		Upstreams:        make(map[string]UpstreamStats),
	}
	if def := s.registry.Default(); def != nil {
		st.DefaultUpstream = def.Name()
	}
	for _, t := range s.tenantList() {
		us := s.tenantStats(t)
		st.Upstreams[t.ns.Name()] = us

		st.EngineQueries += us.EngineQueries
		st.HistoryTuples += us.HistoryTuples
		st.ProbeCacheEntries += us.ProbeCacheEntries
		st.MDDenseRegions += us.MDDenseRegions
		st.DenseMDBuckets += us.DenseMDBuckets
		if us.DenseMDMaxBucket > st.DenseMDMaxBucket {
			st.DenseMDMaxBucket = us.DenseMDMaxBucket
		}
		st.SpecProbesIssued += us.SpecProbesIssued
		st.SpecProbesWasted += us.SpecProbesWasted
		st.Requests += us.Requests
		st.BatchRequests += us.BatchRequests
		st.BatchItems += us.BatchItems
		st.StreamRequests += us.StreamRequests
		st.StreamTuples += us.StreamTuples
		st.EpochBumps += us.EpochBumps
		st.StaleRegions += us.StaleRegions
		st.RevalPromoted += us.RevalPromoted
		st.RevalEvicted += us.RevalEvicted
		st.SentinelPasses += us.SentinelPasses
		st.SentinelBumps += us.SentinelBumps
		st.ProbeRetries += us.ProbeRetries
		st.ProbeHedges += us.ProbeHedges
		st.ProbeFailures += us.ProbeFailures
		st.ProbeFastFails += us.ProbeFastFails
		st.StorageBlocks += us.StorageBlocks
		st.StorageDictEntries += us.StorageDictEntries
		st.StorageResidentTuples += us.StorageResidentTuples
		st.StorageApproxBytes += us.StorageApproxBytes
		if us.PersistEnabled {
			st.PersistEnabled = true
			st.PersistSeq += us.PersistSeq
			st.PersistCheckpoints += us.PersistCheckpoints
			st.PersistCompactions += us.PersistCompactions
			st.PersistJournalRecords += us.PersistJournalRecords
			st.PersistSegmentFiles += us.PersistSegmentFiles
			st.PersistPendingOps += us.PersistPendingOps
			st.PersistReplayedDeltas += us.PersistReplayedDeltas
			st.PersistBytesAppended += us.PersistBytesAppended
			if st.PersistLastError == "" {
				st.PersistLastError = us.PersistLastError
			}
		}
		if us.Acquire != nil {
			if st.Acquire == nil {
				st.Acquire = &acquire.Stats{}
			}
			st.Acquire.Ticks += us.Acquire.Ticks
			st.Acquire.ProbesIssued += us.Acquire.ProbesIssued
			st.Acquire.WindowsAcquired += us.Acquire.WindowsAcquired
			st.Acquire.SkippedWarm += us.Acquire.SkippedWarm
			st.Acquire.Yields += us.Acquire.Yields
			st.Acquire.AdmissionDenied += us.Acquire.AdmissionDenied
			st.Acquire.Errors += us.Acquire.Errors
		}
		if us.Default {
			st.SearchParallelism = us.SearchParallelism
			st.UpstreamK = us.UpstreamK
			st.UpstreamRanker = us.UpstreamRanker
			st.Epoch = us.Epoch
		}
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleUpstreamStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.resolveTenant(w, r, "")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.tenantStats(t))
}

func (s *Server) handleRerank(w http.ResponseWriter, r *http.Request) {
	var req RerankRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	t, ok := s.resolveTenant(w, r, req.Upstream)
	if !ok {
		return
	}
	// Validate before admitting: invalid requests must not compete with
	// real traffic for session slots or budget.
	q, rk, variant, err := buildRequest(t.db.Schema(), &req)
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	release, charge, ok := s.admit(w, r, t, 1)
	if !ok {
		return
	}
	defer release()
	// Counted here, not in the shared core: batch sub-items have their own
	// BatchItems counter and must not inflate the single-request rate.
	t.requests.Add(1)
	setEpochHeader(w, t)
	resp, issued, status, code, err := s.run(t, q, rk, variant, req.H)
	charge(issued)
	if err != nil {
		s.upstreamError(w, t, status, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// setEpochHeader stamps the namespace's current knowledge epoch onto a
// rerank-route response, so clients can watch for bumps without polling the
// upstreams API.
func setEpochHeader(w http.ResponseWriter, t *tenant) {
	w.Header().Set(KnowledgeEpochHeader, strconv.FormatInt(t.engine().Epoch(), 10))
}

// KnowledgeEpochHeader carries the namespace's knowledge epoch on every
// rerank-route response.
const KnowledgeEpochHeader = "X-Knowledge-Epoch"

// upstreamError writes a failed request's error envelope; a down upstream
// additionally advertises the guard's remaining backoff as Retry-After.
func (s *Server) upstreamError(w http.ResponseWriter, t *tenant, status int, code string, err error) {
	if code == ErrCodeUpstreamDown && t.guard != nil {
		if until := t.guard.Health().BackoffUntil; !until.IsZero() {
			httpErrorRetry(w, status, code, err, time.Until(until))
			return
		}
	}
	httpError(w, status, code, err)
}

// Rerank executes one reranking request against the namespace its Upstream
// field addresses ("" = default). It is exported so in-process callers
// (tests, examples) can skip HTTP; it bypasses admission control and
// budgets, which live at the HTTP edge.
func (s *Server) Rerank(req RerankRequest) (*RerankResponse, int, error) {
	t, ok := s.tenantFor(req.Upstream)
	if !ok {
		return nil, http.StatusNotFound, unknownUpstreamErr(req.Upstream)
	}
	t.requests.Add(1)
	resp, _, status, _, err := s.rerank(t, req)
	return resp, status, err
}

// rerank validates and runs one request, reporting the upstream queries it
// cost even when it failed mid-search — the number the HTTP edge charges
// against the client's budget window.
func (s *Server) rerank(t *tenant, req RerankRequest) (_ *RerankResponse, issued int64, status int, code string, err error) {
	q, rk, variant, err := buildRequest(t.db.Schema(), &req)
	if err != nil {
		return nil, 0, http.StatusBadRequest, ErrCodeBadRequest, err
	}
	return s.run(t, q, rk, variant, req.H)
}

// run executes one compiled request in a fresh session on t's engine.
func (s *Server) run(t *tenant, q query.Query, rk ranking.Ranker, variant core.Variant, h int) (_ *RerankResponse, issued int64, status int, code string, err error) {
	// One session per request: its ledger is the request's upstream cost
	// (exact under concurrency, unlike a before/after diff of the engine
	// counter, which would absorb other requests' probes).
	eng := t.engine()
	// Every executed user request stamps the acquirer's idle clock and
	// feeds the heat sketch — both are single atomic-order operations, so
	// the request path pays nothing measurable.
	t.touchUser()
	eng.RecordHeat(q)
	sess := eng.NewSession()
	cur, err := sess.NewCursor(q, rk, variant)
	if err != nil {
		return nil, sess.Queries(), http.StatusBadRequest, ErrCodeBadRequest, err
	}
	tuples, err := core.TopH(cur, h)
	if err != nil {
		status, code := upstreamStatus(err)
		if code == ErrCodeUpstreamFailed {
			err = fmt.Errorf("upstream search failed: %w", err)
		}
		return nil, sess.Queries(), status, code, err
	}
	resp := &RerankResponse{
		Exhausted:     len(tuples) < h,
		QueriesIssued: sess.Queries(),
		EngineQueries: eng.Queries(),
		Epoch:         eng.Epoch(),
	}
	for _, tp := range tuples {
		resp.Tuples = append(resp.Tuples, toJSON(t.db.Schema(), rk, tp))
	}
	return resp, resp.QueriesIssued, http.StatusOK, "", nil
}

// buildRequest validates and compiles one wire request into its engine
// parts (query, ranker, algorithm variant), applying the default and
// maximum h. Shared by the single, batch and streaming endpoints.
func buildRequest(schema *types.Schema, req *RerankRequest) (query.Query, ranking.Ranker, core.Variant, error) {
	if req.H <= 0 {
		req.H = 10
	}
	if req.H > 10_000 {
		return query.Query{}, nil, 0, errors.New("h too large (max 10000)")
	}
	q, err := buildQuery(schema, *req)
	if err != nil {
		return query.Query{}, nil, 0, err
	}
	rk, err := buildRanker(schema, req.Ranking)
	if err != nil {
		return query.Query{}, nil, 0, err
	}
	variant, err := parseAlgorithm(req.Algorithm, len(rk.Attrs()))
	if err != nil {
		return query.Query{}, nil, 0, err
	}
	return q, rk, variant, nil
}

func toJSON(schema *types.Schema, rk ranking.Ranker, t types.Tuple) TupleJSON {
	var out TupleJSON
	toJSONInto(schema, rk, t, &out)
	return out
}

// toJSONInto fills dst from t, reusing dst's Ord map across calls. The stream
// encoder serializes each TupleJSON before the next fill, so one reused
// value covers an entire NDJSON response without per-tuple map allocation.
func toJSONInto(schema *types.Schema, rk ranking.Ranker, t types.Tuple, dst *TupleJSON) {
	dst.ID = t.ID
	dst.Score = ranking.ScoreTuple(rk, t)
	dst.Cat = t.Cat
	if dst.Ord == nil {
		dst.Ord = make(map[string]float64, len(schema.OrdinalIndexes()))
	} else {
		clear(dst.Ord)
	}
	for _, i := range schema.OrdinalIndexes() {
		dst.Ord[schema.Attr(i).Name] = t.Ord[i]
	}
}

func buildQuery(schema *types.Schema, req RerankRequest) (query.Query, error) {
	q := query.New()
	for _, rs := range req.Ranges {
		idx := schema.Index(rs.Attr)
		if idx < 0 || schema.Attr(idx).Kind != types.Ordinal {
			return q, fmt.Errorf("unknown ordinal attribute %q", rs.Attr)
		}
		iv := types.FullInterval()
		if rs.Min != nil {
			iv.Lo, iv.LoOpen = *rs.Min, rs.MinOpen
		}
		if rs.Max != nil {
			iv.Hi, iv.HiOpen = *rs.Max, rs.MaxOpen
		}
		if iv.Empty() {
			return q, fmt.Errorf("empty range on %q", rs.Attr)
		}
		q = q.WithRange(idx, iv)
	}
	for name, val := range req.Filters {
		idx := schema.Index(name)
		if idx < 0 || schema.Attr(idx).Kind != types.Categorical {
			return q, fmt.Errorf("unknown categorical attribute %q", name)
		}
		q = q.WithCat(name, val)
	}
	return q, nil
}

func buildRanker(schema *types.Schema, spec RankingSpec) (ranking.Ranker, error) {
	idx := make([]int, len(spec.Attrs))
	for i, name := range spec.Attrs {
		j := schema.Index(name)
		if j < 0 || schema.Attr(j).Kind != types.Ordinal {
			return nil, fmt.Errorf("unknown ordinal attribute %q in ranking", name)
		}
		idx[i] = j
	}
	switch spec.Kind {
	case "linear":
		return ranking.NewLinear("user-linear", idx, spec.Weights)
	case "single":
		if len(idx) != 1 {
			return nil, errors.New(`"single" ranking takes exactly one attribute`)
		}
		dir := ranking.Asc
		if spec.Desc {
			dir = ranking.Desc
		}
		return ranking.NewSingle("user-single", idx[0], dir), nil
	case "ratio":
		if len(idx) != 2 {
			return nil, errors.New(`"ratio" ranking takes exactly two attributes (num, den)`)
		}
		if schema.Domain(idx[1]).Min <= 0 {
			return nil, fmt.Errorf("ratio denominator %q must have a positive domain", spec.Attrs[1])
		}
		return ranking.NewRatio("user-ratio", idx[0], idx[1]), nil
	default:
		return nil, fmt.Errorf("unknown ranking kind %q (want linear, single, or ratio)", spec.Kind)
	}
}

func parseAlgorithm(s string, nAttrs int) (core.Variant, error) {
	switch s {
	case "", "rerank":
		return core.Rerank, nil
	case "baseline":
		return core.Baseline, nil
	case "binary":
		return core.Binary, nil
	case "ta":
		if nAttrs < 2 {
			return 0, errors.New(`algorithm "ta" requires a multi-attribute ranking`)
		}
		return core.TAOverOneD, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
