// Living-upstreams API tests: the rich /v1/upstreams descriptors and their
// legacy names-only shape, POST /v1/upstreams/{ns}/revalidate, the
// X-Knowledge-Epoch header and epoch body field on rerank routes, guard
// error mapping (upstream_degraded/upstream_down), and the regression test
// for DELETE /v1/upstreams/{ns} racing in-flight background ticks. The race
// test is meaningful under -race.

package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hidden"
	"repro/internal/index"
	"repro/internal/query"
)

// epochPipeline builds a one-namespace federated server over an in-process
// clustered database, with sentinel/acquire loops off unless opts says
// otherwise.
func epochPipeline(t *testing.T, opts Options) (*Server, *httptest.Server, *Client, *hidden.DB) {
	t.Helper()
	if opts.Core.N == 0 {
		opts.Core.N = 1200
	}
	db := clusterDBAt(t, 91, 50)
	srv := NewFederatedServer(opts)
	if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: "gems"}, db); err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(api.Close)
	return srv, api, NewClientWith(api.URL, WithHTTPClient(api.Client())), db
}

// driftTopTuple mutates a tuple the unconstrained system answer returns, so
// the very next sentinel pass must witness the drift.
func driftTopTuple(t *testing.T, db *hidden.DB) {
	t.Helper()
	res, err := db.TopK(query.New())
	if err != nil {
		t.Fatal(err)
	}
	if !db.SetOrd(res.Tuples[0].ID, 0, res.Tuples[0].Ord[0]+29.5) {
		t.Fatal("SetOrd refused")
	}
}

func TestUpstreamsAPIRichShape(t *testing.T) {
	_, _, client, _ := epochPipeline(t, Options{})

	ups, err := client.Upstreams()
	if err != nil {
		t.Fatal(err)
	}
	if ups.Default != "gems" || len(ups.Upstreams) != 1 {
		t.Fatalf("list = default %q, %d upstreams; want gems/1", ups.Default, len(ups.Upstreams))
	}
	u := ups.Upstreams[0]
	if u.Name != "gems" || !u.Default {
		t.Fatalf("descriptor name/default = %q/%v", u.Name, u.Default)
	}
	if u.Epoch != index.FirstEpoch {
		t.Fatalf("fresh namespace epoch = %d, want %d", u.Epoch, index.FirstEpoch)
	}
	if u.Health != "healthy" {
		t.Fatalf("in-process namespace health = %q, want healthy", u.Health)
	}
	if u.LastSentinelUnix != 0 || u.BackoffUntilUnix != 0 || u.StaleRegions != 0 {
		t.Fatalf("fresh namespace: lastSentinel=%d backoff=%d stale=%d, want all 0",
			u.LastSentinelUnix, u.BackoffUntilUnix, u.StaleRegions)
	}

	// The namespace detail route serves the same descriptor.
	info, err := client.UpstreamInfo("gems")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "gems" || info.Epoch != index.FirstEpoch || info.Health != "healthy" {
		t.Fatalf("detail descriptor = %+v", info)
	}

	// ?format=names keeps the pre-redesign shape for scripts.
	names, err := client.UpstreamNames()
	if err != nil {
		t.Fatal(err)
	}
	if names.Default != "gems" || len(names.Upstreams) != 1 || names.Upstreams[0] != "gems" {
		t.Fatalf("names shape = %+v", names)
	}
}

func TestRevalidateEndpoint(t *testing.T) {
	_, _, client, db := epochPipeline(t, Options{})

	// Warm a dense region so a later epoch bump has something to mark stale.
	if _, err := client.Rerank(rangeRequest(50)); err != nil {
		t.Fatal(err)
	}

	// Baseline pass: records digests, bumps nothing.
	rv, err := client.Revalidate("gems")
	if err != nil {
		t.Fatal(err)
	}
	wantQ := int64(db.Schema().NumOrdinal() + 1)
	if rv.Bumped || rv.Epoch != index.FirstEpoch || rv.Queries != wantQ {
		t.Fatalf("baseline revalidate = %+v, want bumped=false epoch=%d queries=%d", rv, index.FirstEpoch, wantQ)
	}

	// Drift, then the operator's "check now" button must bump the epoch and
	// report the knowledge it invalidated.
	driftTopTuple(t, db)
	rv, err = client.Revalidate("gems")
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Bumped || rv.Epoch != index.FirstEpoch+1 {
		t.Fatalf("post-drift revalidate = %+v, want bumped at epoch %d", rv, index.FirstEpoch+1)
	}
	if rv.StaleRegions == 0 {
		t.Fatal("epoch bump left no stale regions despite warm knowledge")
	}
	info, err := client.UpstreamInfo("gems")
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != rv.Epoch || info.LastSentinelUnix == 0 {
		t.Fatalf("descriptor after revalidate = epoch %d lastSentinel %d", info.Epoch, info.LastSentinelUnix)
	}

	// Serving still works over the stale knowledge (lazy re-validation), and
	// an unknown namespace 404s.
	if _, err := client.Rerank(rangeRequest(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Revalidate("nope"); err == nil {
		t.Fatal("revalidate of unknown namespace succeeded")
	} else {
		var se *StatusError
		if !errors.As(err, &se) || se.Status != http.StatusNotFound || se.Code != ErrCodeUnknownUpstream {
			t.Fatalf("unknown namespace error = %v", err)
		}
	}
}

func TestEpochHeaderAndBody(t *testing.T) {
	_, api, client, db := epochPipeline(t, Options{})

	resp, err := client.Rerank(rangeRequest(50))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != index.FirstEpoch {
		t.Fatalf("rerank body epoch = %d, want %d", resp.Epoch, index.FirstEpoch)
	}

	if _, err := client.Revalidate("gems"); err != nil {
		t.Fatal(err)
	}
	driftTopTuple(t, db)
	if rv, err := client.Revalidate("gems"); err != nil || !rv.Bumped {
		t.Fatalf("drift not detected: %+v err=%v", rv, err)
	}

	post := func(path string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		r, err := api.Client().Post(api.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Body.Close() })
		return r
	}
	wantEpoch := strconv.FormatInt(index.FirstEpoch+1, 10)
	for _, path := range []string{"/v1/rerank", "/v1/rerank/stream", "/v1/upstreams/gems/rerank"} {
		r := post(path, rangeRequest(50))
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, r.StatusCode)
		}
		if got := r.Header.Get(KnowledgeEpochHeader); got != wantEpoch {
			t.Fatalf("%s: %s = %q, want %q", path, KnowledgeEpochHeader, got, wantEpoch)
		}
	}
	r := post("/v1/rerank/batch", BatchRequest{Requests: []RerankRequest{rangeRequest(50)}})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", r.StatusCode)
	}
	if got := r.Header.Get(KnowledgeEpochHeader); got != wantEpoch {
		t.Fatalf("batch %s = %q, want %q", KnowledgeEpochHeader, got, wantEpoch)
	}

	// The typed client surfaces the bumped epoch too.
	resp, err = client.Rerank(rangeRequest(50))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != index.FirstEpoch+1 {
		t.Fatalf("client epoch after bump = %d, want %d", resp.Epoch, index.FirstEpoch+1)
	}
}

// brokenDB always fails: the upstream the guard escalates on.
type brokenDB struct {
	hidden.Database
}

func (d *brokenDB) TopK(query.Query) (hidden.Result, error) {
	return hidden.Result{}, errors.New("injected outage")
}

func TestGuardErrorMapping(t *testing.T) {
	db := clusterDBAt(t, 23, 30)
	g := hidden.NewGuard(&brokenDB{Database: db}, hidden.GuardOptions{
		Retries:   -1, // no retry sleeps: each request is one physical attempt
		DownAfter: 3,
	})
	srv := NewFederatedServer(Options{Core: core.Options{N: 1200}})
	if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: "flappy"}, g); err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(api.Close)
	client := NewClientWith(api.URL, WithHTTPClient(api.Client()))

	rerankErr := func() *StatusError {
		t.Helper()
		_, err := client.Rerank(rangeRequest(30))
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("expected StatusError, got %v", err)
		}
		return se
	}
	// Failures 1 and 2: degraded → 502 upstream_degraded.
	for i := 0; i < 2; i++ {
		if se := rerankErr(); se.Status != http.StatusBadGateway || se.Code != ErrCodeUpstreamDegraded {
			t.Fatalf("failure %d: %d/%s, want 502/%s", i+1, se.Status, se.Code, ErrCodeUpstreamDegraded)
		}
	}
	// Failure 3 trips the breaker: down → 503 upstream_down with Retry-After.
	se := rerankErr()
	if se.Status != http.StatusServiceUnavailable || se.Code != ErrCodeUpstreamDown {
		t.Fatalf("failure 3: %d/%s, want 503/%s", se.Status, se.Code, ErrCodeUpstreamDown)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("down response missing Retry-After, got %v", se.RetryAfter)
	}
	// While down: fast-fail with the same mapping, without touching the
	// upstream (the guard's FastFails counter moves, Probes does not).
	before := g.Health()
	if se := rerankErr(); se.Status != http.StatusServiceUnavailable || se.Code != ErrCodeUpstreamDown {
		t.Fatalf("while down: %d/%s", se.Status, se.Code)
	}
	after := g.Health()
	if after.Probes != before.Probes || after.FastFails != before.FastFails+1 {
		t.Fatalf("fast-fail touched the upstream: probes %d→%d fastFails %d→%d",
			before.Probes, after.Probes, before.FastFails, after.FastFails)
	}

	// The descriptor reports the guard state, and revalidate maps the same
	// failure the same way.
	info, err := client.UpstreamInfo("flappy")
	if err != nil {
		t.Fatal(err)
	}
	if info.Health != "down" || info.BackoffUntilUnix == 0 {
		t.Fatalf("descriptor health = %q backoff=%d, want down with window", info.Health, info.BackoffUntilUnix)
	}
	if _, err := client.Revalidate("flappy"); err == nil {
		t.Fatal("revalidate over a down upstream succeeded")
	} else {
		var se *StatusError
		if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable || se.Code != ErrCodeUpstreamDown {
			t.Fatalf("revalidate error = %v, want 503/%s", err, ErrCodeUpstreamDown)
		}
	}
}

// TestDeregisterRacesBackgroundTicks is the regression test for the DELETE
// teardown race: with aggressive acquirer and sentinel ticks and persistence
// enabled, deregistration must stop the loops (waiting for any in-flight
// tick) BEFORE finalizing the store — repeatedly, without error. Run with
// -race.
func TestDeregisterRacesBackgroundTicks(t *testing.T) {
	srv := NewFederatedServer(Options{
		Core: core.Options{N: 1200},
		Acquire: AcquireOptions{
			Enabled: true, Interval: time.Millisecond, IdleAfter: time.Nanosecond,
			WindowsPerTick: 2, WarmDepth: 4, MinHeat: 0.1,
		},
		Sentinel: SentinelOptions{Enabled: true, Interval: time.Millisecond},
	})
	if err := srv.OpenDataDir(t.TempDir(), PersistConfig{CheckpointInterval: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: "keeper"}, clusterDBAt(t, 5, 40)); err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(api.Close)
	client := NewClientWith(api.URL, WithHTTPClient(api.Client()))

	for round := 0; round < 5; round++ {
		name := fmt.Sprintf("victim%d", round)
		if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: name}, clusterDBAt(t, int64(round), 20)); err != nil {
			t.Fatal(err)
		}
		// Heat the namespace so acquirer ticks have real work, then let the
		// ms-interval loops run into the teardown.
		vc := NewClientWith(api.URL, WithHTTPClient(api.Client()), WithUpstream(name))
		if _, err := vc.Rerank(rangeRequest(20)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		if err := srv.DeregisterUpstream(name); err != nil {
			t.Fatalf("round %d: deregister mid-tick: %v", round, err)
		}
	}

	// A refused DELETE of the default namespace must leave the server
	// exactly as it was: 409, loops restarted, sentinel still passing. (The
	// default is only removable once it is the last namespace left, so a
	// second live namespace forces the refusal.)
	if _, err := srv.RegisterUpstreamDB(UpstreamConfig{Name: "spare"}, clusterDBAt(t, 6, 60)); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, api.URL+"/v1/upstreams/keeper", nil)
	resp, err := api.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE default = %d, want 409", resp.StatusCode)
	}
	if _, err := client.Revalidate("keeper"); err != nil {
		t.Fatalf("revalidate after refused DELETE: %v", err)
	}
	info, err := client.UpstreamInfo("keeper")
	if err != nil {
		t.Fatal(err)
	}
	base := info.LastSentinelUnix
	deadline := time.Now().Add(2 * time.Second)
	for {
		passes, _, _ := srv.tenants["keeper"].engine().SentinelStats()
		if passes > 0 && base != 0 {
			break // sentinel loop demonstrably alive after the refused DELETE
		}
		if time.Now().After(deadline) {
			t.Fatal("sentinel loop not running after refused DELETE")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSentinelLoopBumpsWithinOneInterval: a server-scheduled sentinel
// detects an in-place corpus mutation within one interval, visible through
// the upstream descriptor without any client traffic.
func TestSentinelLoopBumpsWithinOneInterval(t *testing.T) {
	_, _, client, db := epochPipeline(t, Options{
		Sentinel: SentinelOptions{Enabled: true, Interval: 5 * time.Millisecond},
	})

	// Wait for the baseline pass, then drift.
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, err := client.UpstreamInfo("gems")
		if err != nil {
			t.Fatal(err)
		}
		if info.LastSentinelUnix != 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no baseline sentinel pass")
		}
		time.Sleep(2 * time.Millisecond)
	}
	driftTopTuple(t, db)
	deadline = time.Now().Add(2 * time.Second)
	for {
		info, err := client.UpstreamInfo("gems")
		if err != nil {
			t.Fatal(err)
		}
		if info.Epoch > index.FirstEpoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduled sentinel missed the mutation")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
