// The service's unified JSON error envelope. Every non-2xx response body
// (and every in-band failure: batch items, stream final events) carries the
// same shape:
//
//	{"error": {"code": "...", "message": "...", "retryAfterSec": N}}
//
// Code is a stable machine-readable string from the ErrCode* set; Message
// is human-readable; RetryAfterSec mirrors the Retry-After header on shed
// requests (429/503) so NDJSON in-band errors — where headers are already
// sent — can carry the backoff too. client.StatusError parses exactly this
// envelope.

package service

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/hidden"
)

// Error codes of the service's error envelope.
const (
	// ErrCodeBadRequest: the request body failed validation (400).
	ErrCodeBadRequest = "bad_request"
	// ErrCodePayloadTooLarge: the body exceeded MaxBodyBytes (413).
	ErrCodePayloadTooLarge = "payload_too_large"
	// ErrCodeUnknownUpstream: the namespace is not registered (404).
	ErrCodeUnknownUpstream = "unknown_upstream"
	// ErrCodeUpstreamExists: POST /v1/upstreams with a taken name (409).
	ErrCodeUpstreamExists = "upstream_exists"
	// ErrCodeDefaultUpstream: DELETE of the default namespace (409).
	ErrCodeDefaultUpstream = "default_upstream"
	// ErrCodeCapacity: shed at the shared session-admission gate (429).
	ErrCodeCapacity = "capacity"
	// ErrCodeBudget: the client is over its upstream-query budget (429).
	ErrCodeBudget = "budget"
	// ErrCodeUpstreamRateLimited: the upstream itself answered 429.
	ErrCodeUpstreamRateLimited = "upstream_rate_limited"
	// ErrCodeUpstreamFailed: the upstream search failed (502).
	ErrCodeUpstreamFailed = "upstream_failed"
	// ErrCodeUpstreamDegraded: the probe guard exhausted its retries but the
	// upstream is still being tried (502).
	ErrCodeUpstreamDegraded = "upstream_degraded"
	// ErrCodeUpstreamDown: the probe guard's health state machine is open —
	// the upstream fails fast until its backoff expires (503 + Retry-After).
	ErrCodeUpstreamDown = "upstream_down"
	// ErrCodeDraining: the instance is draining for shutdown (503).
	ErrCodeDraining = "draining"
)

// ErrorInfo is the payload of the service's error envelope; see the file
// comment for the wire shape.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSec is the server's requested backoff in seconds, set on
	// shed requests (mirrors the Retry-After header).
	RetryAfterSec int64 `json:"retryAfterSec,omitempty"`
}

type errorEnvelope struct {
	Error *ErrorInfo `json:"error"`
}

// errorInfo builds an ErrorInfo from a failure, defaulting the code from
// the HTTP status when the caller has nothing more specific.
func errorInfo(status int, code string, err error) *ErrorInfo {
	if code == "" {
		code = codeForStatus(status)
	}
	return &ErrorInfo{Code: code, Message: err.Error()}
}

// codeForStatus maps an HTTP-equivalent status to the envelope code used
// when no more specific code applies (batch items, stream events).
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return ErrCodeBadRequest
	case http.StatusNotFound:
		return ErrCodeUnknownUpstream
	case http.StatusRequestEntityTooLarge:
		return ErrCodePayloadTooLarge
	case http.StatusTooManyRequests:
		return ErrCodeUpstreamRateLimited
	case http.StatusServiceUnavailable:
		return ErrCodeDraining
	default:
		return ErrCodeUpstreamFailed
	}
}

// upstreamStatus maps an upstream probe failure to its HTTP status and
// envelope code. Order matters: ErrRateLimited is a semantic answer (the
// guard passes it through untouched), down/degraded are guard verdicts,
// anything else is a generic upstream failure.
func upstreamStatus(err error) (status int, code string) {
	switch {
	case errors.Is(err, hidden.ErrRateLimited):
		return http.StatusTooManyRequests, ErrCodeUpstreamRateLimited
	case errors.Is(err, hidden.ErrUpstreamDown):
		return http.StatusServiceUnavailable, ErrCodeUpstreamDown
	case errors.Is(err, hidden.ErrUpstreamDegraded):
		return http.StatusBadGateway, ErrCodeUpstreamDegraded
	default:
		return http.StatusBadGateway, ErrCodeUpstreamFailed
	}
}

// httpError writes the standard error envelope.
func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorEnvelope{Error: errorInfo(status, code, err)})
}

// httpErrorRetry writes the envelope for a shed request, advertising the
// backoff both as the Retry-After header and in-envelope.
func httpErrorRetry(w http.ResponseWriter, status int, code string, err error, retryAfter time.Duration) {
	secs := ceilSeconds(retryAfter)
	w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	info := errorInfo(status, code, err)
	info.RetryAfterSec = secs
	writeJSON(w, status, errorEnvelope{Error: info})
}

// ceilSeconds rounds a backoff up to whole seconds, minimum 1 — clients
// must never retry before the advertised window actually resets.
func ceilSeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
