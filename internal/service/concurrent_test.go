package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentRerankRequests hammers one service instance from many
// goroutines. There is no server-wide lock anymore: requests run
// concurrently, each in its own engine session, over the shared knowledge
// layer. Run with -race. Every response must be exact, the stats must
// account for every request, and the per-request QueriesIssued ledgers must
// partition the engine's total (deduplicated probes count once).
func TestConcurrentRerankRequests(t *testing.T) {
	client, _ := pipeline(t, 1000, 0)
	shapes := []string{"Round", "Princess", "Cushion", "Oval"}
	var wg sync.WaitGroup
	var issued atomic.Int64
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, err := client.Rerank(RerankRequest{
					Filters: map[string]string{"Shape": shapes[(g+i)%len(shapes)]},
					Ranking: RankingSpec{Kind: "linear",
						Attrs: []string{"Depth", "Table"}, Weights: []float64{1, 1}},
					H: 3,
				})
				if err != nil {
					errs <- err
					return
				}
				issued.Add(resp.QueriesIssued)
				// Scores must be nondecreasing within each response.
				for j := 1; j < len(resp.Tuples); j++ {
					if resp.Tuples[j].Score < resp.Tuples[j-1].Score {
						errs <- fmt.Errorf("response not sorted: %v", resp.Tuples)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 32 {
		t.Fatalf("stats saw %d requests, want 32", st.Requests)
	}
	if st.EngineQueries != issued.Load() {
		t.Fatalf("per-request ledgers sum to %d, engine counted %d",
			issued.Load(), st.EngineQueries)
	}
	if issued.Load() == 0 {
		t.Fatal("no upstream queries issued at all")
	}
}
