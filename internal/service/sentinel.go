// The serving-tier sentinel scheduler: one background loop per namespace
// that periodically runs the engine's SentinelPass (a fixed, tiny probe set
// against the upstream) so corpus drift bumps the knowledge epoch without
// any operator action. The loop mirrors the acquirer's lifecycle: started at
// registration, stopped by deregistration and BeginDrain, and restartable
// (a new loop object per start).
//
// A pass that fails — upstream degraded, down, or rate-limited — is simply
// skipped: the engine leaves its digests untouched (a flaky pass must not
// fake drift), the guard's health counters record the failure, and the next
// tick tries again.

package service

import (
	"sync"
	"time"
)

// sentinelLoop is one namespace's running sentinel scheduler.
type sentinelLoop struct {
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// startSentinel wires a sentinel loop onto the tenant's engine and starts
// it. Called under registration (after any persistence replay, so the first
// pass baselines against restored knowledge's upstream) and by the
// deregistration error path to undo a premature stop.
func (s *Server) startSentinel(t *tenant) {
	loop := &sentinelLoop{stop: make(chan struct{}), done: make(chan struct{})}
	t.sent = loop
	eng := t.engine()
	interval := s.opts.Sentinel.Interval
	go func() {
		defer close(loop.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-loop.stop:
				return
			case <-ticker.C:
				// Errors are deliberately dropped here: SentinelStats and
				// the guard's failure counters carry the evidence, and a
				// failed pass changes no digests.
				_, _, _ = eng.SentinelPass()
			}
		}
	}()
}

// stopSentinel halts the tenant's sentinel loop, waiting for an in-flight
// pass to finish. Safe when none is running; safe to call twice.
func (t *tenant) stopSentinel() {
	if t.sent == nil {
		return
	}
	t.sent.stopOnce.Do(func() { close(t.sent.stop) })
	<-t.sent.done
}
