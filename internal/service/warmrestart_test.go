package service

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hidden"
	"repro/internal/types"
)

// clusteredDB builds an upstream with a tight tuple cluster inside
// [50, 50.3]² on the first two ordinal attributes — a dense region under the
// default thresholds at n=1200, k=10.
func clusteredDB(t *testing.T) *hidden.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	schema := types.MustSchema([]types.Attribute{
		{Name: "A0", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
		{Name: "A1", Kind: types.Ordinal, Domain: types.Domain{Min: 0, Max: 100}},
	})
	n := 1200
	tuples := make([]types.Tuple, n)
	for i := range tuples {
		ord := make([]float64, 2)
		if i < 60 {
			ord[0] = 50 + float64(i)*0.005
			ord[1] = 50 + float64((i*37)%60)*0.005
		} else {
			ord[0] = rng.Float64() * 100
			ord[1] = rng.Float64() * 100
		}
		tuples[i] = types.Tuple{ID: i, Ord: ord}
	}
	return hidden.MustDB(schema, tuples, hidden.Options{K: 10})
}

// TestServiceMDWarmRestart is the service-level acceptance test for snapshot
// v3: a restarted server loading saved state answers an MD-RERANK request
// over a previously-crawled dense region with zero upstream queries — the
// exact restart economics rerankd -state provides.
func TestServiceMDWarmRestart(t *testing.T) {
	db := clusteredDB(t)
	lo, hi := 50.0, 50.3
	req := RerankRequest{
		Ranges: []RangeSpec{
			{Attr: "A0", Min: &lo, Max: &hi},
			{Attr: "A1", Min: &lo, Max: &hi},
		},
		Ranking: RankingSpec{Kind: "linear", Attrs: []string{"A0", "A1"}, Weights: []float64{1, 1}},
		H:       5,
	}

	srv1 := NewServerWith(db, core.Options{N: 1200})
	resp1, _, err := srv1.Rerank(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp1.QueriesIssued == 0 {
		t.Fatal("precondition: cold request cost 0 upstream queries")
	}
	st := srv1.Stats()
	if st.MDDenseRegions == 0 {
		t.Fatal("precondition: cold request crawled no MD dense region")
	}
	var buf bytes.Buffer
	if err := srv1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same upstream, state loaded.
	db.ResetCounter()
	srv2 := NewServerWith(db, core.Options{N: 1200})
	if err := srv2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := srv2.Stats().MDDenseRegions; got != st.MDDenseRegions {
		t.Fatalf("restored %d MD dense regions, want %d", got, st.MDDenseRegions)
	}
	resp2, _, err := srv2.Rerank(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.QueriesIssued != 0 {
		t.Errorf("warm request charged %d upstream queries, want 0", resp2.QueriesIssued)
	}
	if n := db.QueryCount(); n != 0 {
		t.Errorf("warm request reached the upstream %d times, want 0", n)
	}
	if len(resp2.Tuples) != len(resp1.Tuples) {
		t.Fatalf("warm request returned %d tuples, want %d", len(resp2.Tuples), len(resp1.Tuples))
	}
	for i := range resp2.Tuples {
		if resp2.Tuples[i].ID != resp1.Tuples[i].ID {
			t.Fatalf("rank %d: warm ID %d, cold ID %d", i, resp2.Tuples[i].ID, resp1.Tuples[i].ID)
		}
	}
}
