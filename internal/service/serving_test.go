// Serving-tier tests: admission control under saturation, per-client budget
// windows, batched and streaming endpoints, drain semantics, body limits,
// and the metrics endpoint. Run with -race: several of these tests assert
// concurrency invariants (the in-flight session bound, slot release after a
// mid-stream disconnect).

package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hidden"
	"repro/internal/query"
)

// gateDB blocks every TopK until the gate is opened, tracking the observed
// peak of concurrent upstream calls.
type gateDB struct {
	hidden.Database
	gate    chan struct{}
	inCall  atomic.Int64
	peak    atomic.Int64
	blocked atomic.Int64
}

func newGateDB(db hidden.Database) *gateDB {
	return &gateDB{Database: db, gate: make(chan struct{})}
}

func (g *gateDB) TopK(q query.Query) (hidden.Result, error) {
	cur := g.inCall.Add(1)
	defer g.inCall.Add(-1)
	for {
		p := g.peak.Load()
		if cur <= p || g.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	g.blocked.Add(1)
	<-g.gate
	return g.Database.TopK(q)
}

// latencyDB injects a fixed delay per upstream probe and counts calls.
type latencyDB struct {
	hidden.Database
	delay time.Duration
	calls atomic.Int64
}

func (l *latencyDB) TopK(q query.Query) (hidden.Result, error) {
	l.calls.Add(1)
	time.Sleep(l.delay)
	return l.Database.TopK(q)
}

// servingPipeline builds a service directly over db and returns the server,
// its HTTP test frontend, and a client.
func servingPipeline(t *testing.T, db hidden.Database, opts Options) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv := NewServerWithOptions(db, opts)
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(api.Close)
	return srv, api, NewClientWith(api.URL, WithHTTPClient(api.Client()))
}

func bnDB(t *testing.T, n int) *hidden.DB {
	t.Helper()
	ds := dataset.BlueNile(7, n)
	db, err := hidden.NewDB(ds.Schema, ds.Tuples, hidden.Options{
		K: ds.DefaultSystemK, Ranker: ds.DefaultRanker,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// mdRequest builds a 2-attribute linear request over the Price band
// [lo·100, hi·100] — with the Blue Nile generator that band (around a few
// thousand dollars for lo, hi in 50..70) is well populated.
func mdRequest(lo, hi float64, h int) RerankRequest {
	loP, hiP := lo*100, hi*100
	return RerankRequest{
		Ranges: []RangeSpec{{Attr: "Price", Min: &loP, Max: &hiP}},
		Ranking: RankingSpec{Kind: "linear",
			Attrs: []string{"Price", "Carat"}, Weights: []float64{1, 1}},
		H: h,
	}
}

// TestAdmissionSaturation saturates a MaxConcurrentSessions=2 server with
// requests stuck on a blocked upstream and asserts (a) the excess is shed
// with 429 + Retry-After, (b) in-flight sessions never exceed the bound,
// and (c) shed slots are not leaked: once the upstream unblocks, the
// admitted requests finish and the gate returns to empty.
func TestAdmissionSaturation(t *testing.T) {
	const bound = 2
	db := newGateDB(bnDB(t, 600))
	srv, _, client := servingPipeline(t, db, Options{
		Core: core.Options{N: 600, MaxConcurrentSessions: bound, DisableCoalescing: true},
	})

	const total = 10
	var ok429, ok200 atomic.Int64
	var maxInFlight atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct ranges so no two requests coalesce upstream.
			lo := 50.0 + float64(i)
			_, err := client.Rerank(mdRequest(lo, lo+4, 2))
			if f := int64(srv.SessionsInFlight()); f > maxInFlight.Load() {
				maxInFlight.Store(f)
			}
			if err != nil {
				var se *StatusError
				if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
					t.Errorf("request %d: unexpected error %v", i, err)
					return
				}
				if se.RetryAfter <= 0 {
					t.Errorf("429 without Retry-After")
				}
				ok429.Add(1)
				return
			}
			ok200.Add(1)
		}(i)
	}
	// Wait for the bound to fill, then shed the rest and open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for db.blocked.Load() < bound && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for ok429.Load() < total-bound && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(db.gate)
	wg.Wait()

	if got := ok200.Load(); got != bound {
		t.Errorf("%d requests succeeded, want %d", got, bound)
	}
	if got := ok429.Load(); got != total-bound {
		t.Errorf("%d requests got 429, want %d", got, total-bound)
	}
	if p := db.peak.Load(); p > bound {
		t.Errorf("observed %d concurrent upstream calls, bound is %d", p, bound)
	}
	if m := maxInFlight.Load(); m > bound {
		t.Errorf("observed %d in-flight sessions, bound is %d", m, bound)
	}
	if f := srv.SessionsInFlight(); f != 0 {
		t.Errorf("%d sessions still in flight after completion (leak)", f)
	}
	st := srv.Stats()
	if st.RejectedCapacity != int64(total-bound) {
		t.Errorf("stats counted %d capacity rejections, want %d", st.RejectedCapacity, total-bound)
	}
}

// TestClientBudgetWindow exercises the per-client upstream-query allowance:
// a client that spent its budget is shed with 429 + Retry-After, other
// clients are unaffected, and the window reset restores admission.
func TestClientBudgetWindow(t *testing.T) {
	db := bnDB(t, 600)
	srv, _, client := servingPipeline(t, db, Options{
		Core:               core.Options{N: 600},
		ClientBudget:       3, // any real request costs more than this
		ClientBudgetWindow: time.Hour,
	})
	now := time.Unix(1_700_000_000, 0)
	var clock struct {
		mu sync.Mutex
		t  time.Time
	}
	clock.t = now
	srv.budgets.now = func() time.Time {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		return clock.t
	}

	client.ClientID = "alice"
	resp, err := client.Rerank(mdRequest(55, 62, 3))
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueriesIssued <= 3 {
		t.Fatalf("precondition: request cost %d ≤ budget", resp.QueriesIssued)
	}
	// Alice is now over budget: shed with Retry-After ≈ window remaining.
	_, err = client.Rerank(mdRequest(55, 62, 3))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: got %v, want 429", err)
	}
	if se.RetryAfter <= 0 || se.RetryAfter > time.Hour {
		t.Fatalf("Retry-After = %s, want (0, 1h]", se.RetryAfter)
	}
	if got := srv.Stats().RejectedBudget; got != 1 {
		t.Fatalf("RejectedBudget = %d, want 1", got)
	}
	// A different client key has its own window.
	client.ClientID = "bob"
	if _, err := client.Rerank(mdRequest(55, 62, 3)); err != nil {
		t.Fatalf("other client rejected: %v", err)
	}
	// Window expiry readmits alice.
	clock.mu.Lock()
	clock.t = now.Add(time.Hour + time.Second)
	clock.mu.Unlock()
	client.ClientID = "alice"
	if _, err := client.Rerank(mdRequest(55, 62, 3)); err != nil {
		t.Fatalf("post-window request rejected: %v", err)
	}
}

// TestClientBudgetConcurrentBurst: the budget reserves one in-flight unit
// per admitted request, so a client cannot multiply its allowance by firing
// a concurrent burst that all passes the check before any charge lands.
func TestClientBudgetConcurrentBurst(t *testing.T) {
	const limit = 2
	db := newGateDB(bnDB(t, 600))
	srv, _, client := servingPipeline(t, db, Options{
		Core:               core.Options{N: 600, DisableCoalescing: true},
		ClientBudget:       limit,
		ClientBudgetWindow: time.Hour,
	})
	client.ClientID = "burster"

	const total = 6
	var ok200, ok429 atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo := 50.0 + float64(i)
			_, err := client.Rerank(mdRequest(lo, lo+4, 2))
			if err != nil {
				var se *StatusError
				if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
					t.Errorf("request %d: unexpected error %v", i, err)
					return
				}
				ok429.Add(1)
				return
			}
			ok200.Add(1)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.blocked.Load() < limit && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for ok429.Load() < total-limit && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(db.gate)
	wg.Wait()
	if got := ok200.Load(); got != limit {
		t.Errorf("%d concurrent requests ran for a budget of %d", got, limit)
	}
	if got := srv.Stats().RejectedBudget; got != total-limit {
		t.Errorf("RejectedBudget = %d, want %d", got, total-limit)
	}
}

// TestBatchEndpoint checks per-item outcomes, request-order preservation,
// and that overlapping requests inside one batch dedup probes through the
// shared coalescer: two identical items must cost less than twice one.
func TestBatchEndpoint(t *testing.T) {
	db := bnDB(t, 800)
	// Solo cost of the request on a fresh engine, for the dedup bound.
	soloSrv := NewServer(db, 800)
	solo, _, err := soloSrv.Rerank(mdRequest(55, 60, 4))
	if err != nil {
		t.Fatal(err)
	}
	if solo.QueriesIssued == 0 {
		t.Fatal("precondition: solo request was free")
	}

	_, _, client := servingPipeline(t, db, Options{Core: core.Options{N: 800}})
	resp, err := client.RerankBatch(BatchRequest{Requests: []RerankRequest{
		mdRequest(55, 60, 4),
		mdRequest(55, 60, 4), // identical: must coalesce with item 0
		{Ranking: RankingSpec{Kind: "linear", Attrs: []string{"NoSuchAttr"}, Weights: []float64{1}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("got %d items, want 3", len(resp.Items))
	}
	for i := 0; i < 2; i++ {
		item := resp.Items[i]
		if item.Status != http.StatusOK || item.Response == nil {
			t.Fatalf("item %d: status %d error %+v", i, item.Status, item.Error)
		}
		if len(item.Response.Tuples) != len(solo.Tuples) {
			t.Fatalf("item %d returned %d tuples, solo returned %d",
				i, len(item.Response.Tuples), len(solo.Tuples))
		}
		for j := range item.Response.Tuples {
			if item.Response.Tuples[j].ID != solo.Tuples[j].ID {
				t.Fatalf("item %d rank %d: ID %d, solo ID %d",
					i, j, item.Response.Tuples[j].ID, solo.Tuples[j].ID)
			}
		}
	}
	if resp.Items[2].Status != http.StatusBadRequest || resp.Items[2].Error == nil {
		t.Fatalf("bad item: status %d error %+v", resp.Items[2].Status, resp.Items[2].Error)
	}
	if resp.QueriesIssued >= 2*solo.QueriesIssued {
		t.Errorf("batch cost %d upstream queries, want < 2x solo cost %d (coalescing)",
			resp.QueriesIssued, solo.QueriesIssued)
	}
}

// TestBatchWeightedAdmission: a batch of N weighs N slots — it is admitted
// whole or shed whole, never partially.
func TestBatchWeightedAdmission(t *testing.T) {
	db := bnDB(t, 400)
	srv, _, client := servingPipeline(t, db, Options{
		Core: core.Options{N: 400, MaxConcurrentSessions: 2},
	})
	two := BatchRequest{Requests: []RerankRequest{mdRequest(55, 60, 2), mdRequest(60, 65, 2)}}
	if _, err := client.RerankBatch(two); err != nil {
		t.Fatalf("batch of 2 under a 2-session bound rejected: %v", err)
	}
	three := BatchRequest{Requests: []RerankRequest{
		mdRequest(55, 60, 2), mdRequest(60, 65, 2), mdRequest(65, 70, 2),
	}}
	_, err := client.RerankBatch(three)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("batch of 3 under a 2-session bound: got %v, want 429", err)
	}
	if f := srv.SessionsInFlight(); f != 0 {
		t.Fatalf("rejected batch leaked %d session slots", f)
	}
}

// TestStreamMatchesRerank: the streamed tuple sequence equals the one-shot
// response for the same request on an identically warmed engine, with
// nondecreasing cumulative cost and a final summary event.
func TestStreamMatchesRerank(t *testing.T) {
	db := bnDB(t, 800)
	oneShot, _, err := NewServer(db, 800).Rerank(mdRequest(52, 64, 6))
	if err != nil {
		t.Fatal(err)
	}

	_, _, client := servingPipeline(t, db, Options{Core: core.Options{N: 800}})
	var tuples []TupleJSON
	var lastCum int64
	final, err := client.RerankStream(mdRequest(52, 64, 6), func(ev StreamEvent) bool {
		if ev.CumQueries < lastCum {
			t.Errorf("cumQueries went backwards: %d -> %d", lastCum, ev.CumQueries)
		}
		lastCum = ev.CumQueries
		if ev.Tuple != nil {
			tuples = append(tuples, *ev.Tuple)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done {
		t.Fatal("no final event")
	}
	if final.QueriesIssued != lastCum {
		t.Errorf("final queriesIssued %d != last cumQueries %d", final.QueriesIssued, lastCum)
	}
	if len(tuples) != len(oneShot.Tuples) {
		t.Fatalf("stream emitted %d tuples, one-shot returned %d", len(tuples), len(oneShot.Tuples))
	}
	for i := range tuples {
		if tuples[i].ID != oneShot.Tuples[i].ID {
			t.Fatalf("rank %d: stream ID %d, one-shot ID %d", i, tuples[i].ID, oneShot.Tuples[i].ID)
		}
	}
}

// TestStreamFirstTupleBeforeCompletion is the streaming acceptance test:
// with a latency-injecting upstream, the first NDJSON tuple must arrive
// while the search is still probing — i.e. strictly before the upstream
// call count reaches its final value.
func TestStreamFirstTupleBeforeCompletion(t *testing.T) {
	db := &latencyDB{Database: bnDB(t, 800), delay: 2 * time.Millisecond}
	// Baseline algorithm with history/index/coalescing disabled: every
	// Get-Next must reach the upstream, so a stream that buffered the
	// whole search before emitting would show callsAtFirstTuple == total.
	_, _, client := servingPipeline(t, db, Options{Core: core.Options{
		N: 800, DisableHistory: true, DisableIndex: true, DisableCoalescing: true,
	}})
	lo, hi := 5000.0, 7000.0
	req := RerankRequest{
		Ranges:    []RangeSpec{{Attr: "Price", Min: &lo, Max: &hi}},
		Ranking:   RankingSpec{Kind: "single", Attrs: []string{"Price"}},
		Algorithm: "baseline",
		H:         8,
	}

	var callsAtFirstTuple int64 = -1
	final, err := client.RerankStream(req, func(ev StreamEvent) bool {
		if ev.Tuple != nil && callsAtFirstTuple < 0 {
			callsAtFirstTuple = db.calls.Load()
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	totalCalls := db.calls.Load()
	if callsAtFirstTuple < 0 {
		t.Fatal("stream emitted no tuples")
	}
	if callsAtFirstTuple >= totalCalls {
		t.Fatalf("first tuple only after the search completed: %d calls at first tuple, %d total",
			callsAtFirstTuple, totalCalls)
	}
	if final.QueriesIssued == 0 {
		t.Fatal("stream reported zero upstream cost under a cold engine")
	}
}

// TestStreamInBandErrorStatus: a failure after the stream started (HTTP 200
// already sent) arrives as a final event whose Status lets clients classify
// it exactly like a one-shot failure — here upstream rate limiting → 429.
func TestStreamInBandErrorStatus(t *testing.T) {
	ds := dataset.BlueNile(7, 600)
	db, err := hidden.NewDB(ds.Schema, ds.Tuples, hidden.Options{
		K: ds.DefaultSystemK, Ranker: ds.DefaultRanker, QueryBudget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := servingPipeline(t, db, Options{Core: core.Options{N: 600}})
	_, err = client.RerankStream(mdRequest(50, 70, 10), nil)
	if err == nil {
		t.Fatal("stream against an exhausted upstream budget succeeded")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("mid-stream rate limit surfaced as %v, want StatusError 429", err)
	}
}

// TestStreamDisconnectReleasesSlot: a client that walks away mid-stream
// must not leak its admission slot — the handler notices at the next tuple
// boundary and releases, readmitting new work.
func TestStreamDisconnectReleasesSlot(t *testing.T) {
	db := &latencyDB{Database: bnDB(t, 800), delay: 2 * time.Millisecond}
	srv, api, client := servingPipeline(t, db, Options{
		Core: core.Options{N: 800, MaxConcurrentSessions: 1},
	})

	body, _ := json.Marshal(mdRequest(50, 70, 10))
	req, err := http.NewRequest(http.MethodPost, api.URL+"/v1/rerank/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := api.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	// Read exactly one tuple line, then hang up mid-stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The slot must come back without draining the whole stream.
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionsInFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("disconnected stream still holds %d session slots", srv.SessionsInFlight())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := client.Rerank(mdRequest(50, 55, 2)); err != nil {
		t.Fatalf("request after disconnected stream rejected (slot leaked): %v", err)
	}
}

// TestDrain: BeginDrain stops admission (healthz flips to 503 so load
// balancers deregister) while an in-flight request runs to completion.
func TestDrain(t *testing.T) {
	db := newGateDB(bnDB(t, 400))
	srv, api, client := servingPipeline(t, db, Options{Core: core.Options{N: 400}})

	done := make(chan error, 1)
	go func() {
		_, err := client.Rerank(mdRequest(55, 60, 2))
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.blocked.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	srv.BeginDrain()

	// New work is shed with 503...
	_, err := client.Rerank(mdRequest(60, 65, 2))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: got %v, want 503", err)
	}
	hres, err := api.Client().Get(api.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", hres.StatusCode)
	}
	// ...while the in-flight request finishes normally.
	close(db.gate)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if got := srv.Stats().RejectedDraining; got != 1 {
		t.Fatalf("RejectedDraining = %d, want 1", got)
	}
}

// TestBodyLimits: malformed JSON is 400, an oversized body is 413 on every
// POST endpoint.
func TestBodyLimits(t *testing.T) {
	db := bnDB(t, 300)
	_, api, _ := servingPipeline(t, db, Options{
		Core:         core.Options{N: 300},
		MaxBodyBytes: 512,
	})
	post := func(path string, body io.Reader) int {
		resp, err := api.Client().Post(api.URL+path, "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	for _, path := range []string{"/v1/rerank", "/v1/rerank/batch", "/v1/rerank/stream"} {
		if code := post(path, strings.NewReader("{not json")); code != http.StatusBadRequest {
			t.Errorf("%s malformed body: status %d, want 400", path, code)
		}
		big := strings.NewReader(`{"h": 1, "pad": "` + strings.Repeat("x", 2048) + `"}`)
		if code := post(path, big); code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: status %d, want 413", path, code)
		}
	}
	// Unknown algorithm / attribute / oversized h survive unchanged.
	cases := []string{
		`{"ranking":{"kind":"single","attrs":["Depth"]},"algorithm":"quantum"}`,
		`{"ranking":{"kind":"single","attrs":["NoSuch"]}}`,
		`{"ranking":{"kind":"single","attrs":["Depth"]},"h":1048576}`,
	}
	for _, body := range cases {
		for _, path := range []string{"/v1/rerank", "/v1/rerank/stream"} {
			if code := post(path, strings.NewReader(body)); code != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", path, body, code)
			}
		}
	}
	if code := post("/v1/rerank/batch", strings.NewReader(`{"requests":[]}`)); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
}

// TestMetricsEndpoint: /metrics serves Prometheus text matching /v1/stats.
func TestMetricsEndpoint(t *testing.T) {
	db := bnDB(t, 400)
	srv, api, client := servingPipeline(t, db, Options{
		Core: core.Options{N: 400, MaxConcurrentSessions: 9},
	})
	if _, err := client.Rerank(mdRequest(55, 60, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.RerankBatch(BatchRequest{Requests: []RerankRequest{mdRequest(60, 65, 2)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.RerankStream(mdRequest(65, 70, 2), nil); err != nil {
		t.Fatal(err)
	}

	resp, err := api.Client().Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	st := srv.Stats()
	text := string(raw)
	want := []string{
		// Batch items run through the same rerank core, so requests_total
		// counts single + batch-item + nothing-from-stream... stream has
		// its own counter.
		fmt.Sprintf("rerank_batch_requests_total %d", st.BatchRequests),
		fmt.Sprintf("rerank_stream_requests_total %d", st.StreamRequests),
		fmt.Sprintf("rerank_stream_tuples_total %d", st.StreamTuples),
		fmt.Sprintf("rerank_engine_queries_total %d", st.EngineQueries),
		fmt.Sprintf("rerank_sessions_limit %d", 9),
		"rerank_rejected_total{cause=\"capacity\"} 0",
		"rerank_rejected_total{cause=\"budget\"} 0",
		"rerank_draining 0",
		fmt.Sprintf("rerank_history_tuples %d", st.HistoryTuples),
	}
	for _, line := range want {
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
	if st.StreamRequests != 1 || st.StreamTuples == 0 {
		t.Errorf("stream counters: requests=%d tuples=%d", st.StreamRequests, st.StreamTuples)
	}
}

// TestSchemaEndpoint: the service republishes the upstream schema for
// clients and load generators.
func TestSchemaEndpoint(t *testing.T) {
	db := bnDB(t, 300)
	_, api, _ := servingPipeline(t, db, Options{Core: core.Options{N: 300}})
	resp, err := api.Client().Get(api.URL + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.K != db.K() {
		t.Fatalf("schema k = %d, want %d", sr.K, db.K())
	}
	if len(sr.Attrs) != db.Schema().Len() {
		t.Fatalf("schema has %d attrs, want %d", len(sr.Attrs), db.Schema().Len())
	}
}
