// GET /metrics: the service's counters in Prometheus text exposition
// format (version 0.0.4), hand-rendered — the service has no dependencies,
// and the format is a few fmt.Fprintf lines per series. Every series is
// derived from the same Stats snapshot /v1/stats serves, so the two
// endpoints can never disagree; docs/operations.md is the metrics
// reference.

package service

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/acquire"
	"repro/internal/hidden"
)

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("rerank_requests_total", "Single /v1/rerank requests started.", st.Requests)
	counter("rerank_batch_requests_total", "/v1/rerank/batch requests accepted.", st.BatchRequests)
	counter("rerank_batch_items_total", "Sub-requests inside accepted batches.", st.BatchItems)
	counter("rerank_stream_requests_total", "/v1/rerank/stream requests admitted.", st.StreamRequests)
	counter("rerank_stream_tuples_total", "NDJSON tuple lines emitted by streams.", st.StreamTuples)

	fmt.Fprintf(w, "# HELP rerank_rejected_total Requests shed at admission, by cause.\n")
	fmt.Fprintf(w, "# TYPE rerank_rejected_total counter\n")
	fmt.Fprintf(w, "rerank_rejected_total{cause=\"capacity\"} %d\n", st.RejectedCapacity)
	fmt.Fprintf(w, "rerank_rejected_total{cause=\"budget\"} %d\n", st.RejectedBudget)
	fmt.Fprintf(w, "rerank_rejected_total{cause=\"draining\"} %d\n", st.RejectedDraining)

	gauge("rerank_sessions_in_flight", "Admitted session weight currently in flight.", int64(st.SessionsInFlight))
	gauge("rerank_sessions_limit", "Configured MaxConcurrentSessions bound (0 = unlimited).", int64(st.MaxSessions))
	draining := int64(0)
	if st.Draining {
		draining = 1
	}
	gauge("rerank_draining", "1 once graceful drain has begun.", draining)

	counter("rerank_engine_queries_total", "Lifetime upstream queries issued by the engine.", st.EngineQueries)
	gauge("rerank_history_tuples", "Tuples in the cross-query answer history.", int64(st.HistoryTuples))
	gauge("rerank_probe_cache_entries", "Complete probe answers in the coalescing LRU.", int64(st.ProbeCacheEntries))
	gauge("rerank_md_dense_regions", "Crawled MD dense regions across attribute subsets.", int64(st.MDDenseRegions))
	gauge("rerank_dense_md_buckets", "Occupied MD centroid-grid cells.", int64(st.DenseMDBuckets))
	gauge("rerank_dense_md_max_bucket", "Largest MD centroid-grid cell population.", int64(st.DenseMDMaxBucket))
	gauge("rerank_search_parallelism", "Effective speculative probe width W.", int64(st.SearchParallelism))
	counter("rerank_spec_probes_issued_total", "Speculative MD probes issued.", st.SpecProbesIssued)
	counter("rerank_spec_probes_wasted_total", "Speculative MD probes invalidated before use.", st.SpecProbesWasted)
	gauge("rerank_upstream_k", "Upstream interface's system-k.", int64(st.UpstreamK))

	gauge("rerank_epoch", "Default namespace's knowledge epoch.", st.Epoch)
	counter("rerank_epoch_bumps_total", "Drift-triggered knowledge epoch bumps across namespaces.", st.EpochBumps)
	gauge("rerank_epoch_stale_regions", "Dense regions awaiting lazy re-validation across namespaces.", int64(st.StaleRegions))
	counter("rerank_epoch_reval_promoted_total", "Stale knowledge promoted to the current epoch by a confirming probe.", st.RevalPromoted)
	counter("rerank_epoch_reval_evicted_total", "Stale knowledge evicted after a re-validation mismatch.", st.RevalEvicted)
	counter("rerank_sentinel_passes_total", "Completed sentinel drift-detection passes across namespaces.", st.SentinelPasses)
	counter("rerank_sentinel_bumps_total", "Sentinel passes that detected drift and bumped an epoch.", st.SentinelBumps)
	counter("rerank_probe_retry_total", "Physical retry attempts spent by the probe guards.", st.ProbeRetries)
	counter("rerank_probe_retry_failures_total", "Logical probes that failed after exhausting their retries.", st.ProbeFailures)
	counter("rerank_probe_hedges_total", "Hedged second attempts launched by the probe guards.", st.ProbeHedges)
	counter("rerank_probe_fast_fails_total", "Probes refused while an upstream was down, without touching it.", st.ProbeFastFails)

	gauge("rerank_storage_blocks", "Sealed column blocks in the history arena.", int64(st.StorageBlocks))
	gauge("rerank_storage_dict_entries", "Interned categorical symbols in the shared dictionary.", int64(st.StorageDictEntries))
	gauge("rerank_storage_resident_tuples", "Rows resident in the columnar arena.", int64(st.StorageResidentTuples))
	gauge("rerank_storage_approx_bytes", "Approximate resident bytes of columnar storage plus cached probe answers.", st.StorageApproxBytes)

	acqEnabled := int64(0)
	if st.AcquireEnabled {
		acqEnabled = 1
	}
	gauge("rerank_acquire_enabled", "1 when background knowledge acquisition is configured.", acqEnabled)
	if st.Acquire != nil {
		counter("rerank_acquire_ticks_total", "Background acquirer tick passes.", st.Acquire.Ticks)
		counter("rerank_acquire_probes_total", "Upstream probes issued by background acquisition.", st.Acquire.ProbesIssued)
		counter("rerank_acquire_windows_total", "Query windows fully warmed by background acquisition.", st.Acquire.WindowsAcquired)
		counter("rerank_acquire_skipped_warm_total", "Candidate windows skipped because they were already warm.", st.Acquire.SkippedWarm)
		counter("rerank_acquire_yields_total", "Acquirer yields to user traffic (idle/pressure gates and mid-flight aborts).", st.Acquire.Yields)
		counter("rerank_acquire_admission_denied_total", "Low-priority admission refusals of the acquirer.", st.Acquire.AdmissionDenied)
		counter("rerank_acquire_errors_total", "Background acquisitions that failed with a hard error.", st.Acquire.Errors)
	}

	enabled := int64(0)
	if st.PersistEnabled {
		enabled = 1
	}
	gauge("rerank_persist_enabled", "1 when a segment/journal data dir is open.", enabled)
	if st.PersistEnabled {
		gauge("rerank_persist_seq", "Committed journal sequence number.", st.PersistSeq)
		counter("rerank_persist_checkpoints_total", "Successful checkpoint commits since start.", st.PersistCheckpoints)
		counter("rerank_persist_compactions_total", "Journal compactions since start.", st.PersistCompactions)
		gauge("rerank_persist_journal_records", "Committed records in the live journal.", int64(st.PersistJournalRecords))
		gauge("rerank_persist_segment_files", "Live immutable segment files.", int64(st.PersistSegmentFiles))
		gauge("rerank_persist_pending_ops", "Operations recorded since the last checkpoint (at-risk knowledge).", int64(st.PersistPendingOps))
		gauge("rerank_persist_replayed_deltas", "Committed deltas replayed at startup.", int64(st.PersistReplayedDeltas))
		counter("rerank_persist_bytes_appended_total", "Bytes durably written to journal and segments since start.", st.PersistBytesAppended)
		failing := int64(0)
		if st.PersistLastError != "" {
			failing = 1
		}
		gauge("rerank_persist_checkpoint_failing", "1 while the most recent checkpoint attempt failed.", failing)
	}

	// Per-namespace breakdown: one labeled series per registered upstream.
	// The unlabeled series above stay the cross-namespace totals, so
	// single-upstream dashboards keep working unchanged.
	names := make([]string, 0, len(st.Upstreams))
	for name := range st.Upstreams {
		names = append(names, name)
	}
	sort.Strings(names)
	labeled := func(name, help, kind string, v func(UpstreamStats) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, ns := range names {
			fmt.Fprintf(w, "%s{upstream=%q} %d\n", name, ns, v(st.Upstreams[ns]))
		}
	}
	if len(names) > 0 {
		labeled("rerank_upstream_requests_total", "Single rerank requests started, per upstream namespace.", "counter",
			func(u UpstreamStats) int64 { return u.Requests })
		labeled("rerank_upstream_batch_requests_total", "Batch requests accepted, per upstream namespace.", "counter",
			func(u UpstreamStats) int64 { return u.BatchRequests })
		labeled("rerank_upstream_batch_items_total", "Sub-requests inside accepted batches, per upstream namespace.", "counter",
			func(u UpstreamStats) int64 { return u.BatchItems })
		labeled("rerank_upstream_stream_requests_total", "Stream requests admitted, per upstream namespace.", "counter",
			func(u UpstreamStats) int64 { return u.StreamRequests })
		labeled("rerank_upstream_stream_tuples_total", "NDJSON tuple lines emitted, per upstream namespace.", "counter",
			func(u UpstreamStats) int64 { return u.StreamTuples })
		labeled("rerank_upstream_engine_queries_total", "Lifetime upstream queries issued, per upstream namespace.", "counter",
			func(u UpstreamStats) int64 { return u.EngineQueries })
		labeled("rerank_upstream_history_tuples", "Tuples in the cross-query answer history, per upstream namespace.", "gauge",
			func(u UpstreamStats) int64 { return int64(u.HistoryTuples) })
		labeled("rerank_upstream_probe_cache_entries", "Complete probe answers in the coalescing LRU, per upstream namespace.", "gauge",
			func(u UpstreamStats) int64 { return int64(u.ProbeCacheEntries) })
		labeled("rerank_upstream_md_dense_regions", "Crawled MD dense regions, per upstream namespace.", "gauge",
			func(u UpstreamStats) int64 { return int64(u.MDDenseRegions) })
		labeled("rerank_upstream_admission_weight", "Per-session multiplier on the shared admission capacity.", "gauge",
			func(u UpstreamStats) int64 { return int64(u.AdmissionWeight) })
		labeled("rerank_upstream_epoch", "Knowledge epoch, per upstream namespace.", "gauge",
			func(u UpstreamStats) int64 { return u.Epoch })
		labeled("rerank_upstream_stale_regions", "Dense regions awaiting lazy re-validation, per upstream namespace.", "gauge",
			func(u UpstreamStats) int64 { return int64(u.StaleRegions) })
		labeled("rerank_upstream_health", "Probe-guard health state (0 healthy, 1 degraded, 2 down), per upstream namespace.", "gauge",
			func(u UpstreamStats) int64 {
				switch u.Health {
				case hidden.HealthDegraded.String():
					return 1
				case hidden.HealthDown.String():
					return 2
				default:
					return 0
				}
			})
		labeled("rerank_upstream_persist_enabled", "1 when the namespace has an open segment store.", "gauge",
			func(u UpstreamStats) int64 {
				if u.PersistEnabled {
					return 1
				}
				return 0
			})
		labeled("rerank_upstream_persist_pending_ops", "Operations recorded since the namespace's last checkpoint.", "gauge",
			func(u UpstreamStats) int64 { return int64(u.PersistPendingOps) })
		if st.Acquire != nil {
			acq := func(f func(acquire.Stats) int64) func(UpstreamStats) int64 {
				return func(u UpstreamStats) int64 {
					if u.Acquire == nil {
						return 0
					}
					return f(*u.Acquire)
				}
			}
			labeled("rerank_upstream_acquire_probes_total", "Upstream probes issued by background acquisition, per upstream namespace.", "counter",
				acq(func(a acquire.Stats) int64 { return a.ProbesIssued }))
			labeled("rerank_upstream_acquire_windows_total", "Query windows fully warmed by background acquisition, per upstream namespace.", "counter",
				acq(func(a acquire.Stats) int64 { return a.WindowsAcquired }))
			labeled("rerank_upstream_acquire_yields_total", "Acquirer yields to user traffic, per upstream namespace.", "counter",
				acq(func(a acquire.Stats) int64 { return a.Yields }))
		}
	}
}
