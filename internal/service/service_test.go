package service

import (
	"math"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// pipeline spins up a hiddendb HTTP server over the Blue Nile generator and
// a rerankd server dialed to it, returning a client plus the raw dataset for
// oracle checks.
func pipeline(t *testing.T, n int, budget int64) (*Client, *dataset.Dataset) {
	t.Helper()
	ds := dataset.BlueNile(7, n)
	db, err := hidden.NewDB(ds.Schema, ds.Tuples, hidden.Options{
		K: ds.DefaultSystemK, Ranker: ds.DefaultRanker, QueryBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(HiddenDBHandler(db))
	t.Cleanup(upstream.Close)

	remote, err := DialRemote(upstream.URL, upstream.Client())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(remote, n)
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(api.Close)
	return NewClientWith(api.URL, WithHTTPClient(api.Client())), ds
}

func TestEndToEndRerank(t *testing.T) {
	client, ds := pipeline(t, 1200, 0)
	req := RerankRequest{
		Filters: map[string]string{"Shape": "Round"},
		Ranking: RankingSpec{Kind: "linear", Attrs: []string{"Depth", "Table"}, Weights: []float64{1, 1}},
		H:       7,
	}
	resp, err := client.Rerank(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tuples) != 7 {
		t.Fatalf("got %d tuples, want 7", len(resp.Tuples))
	}
	if resp.QueriesIssued <= 0 {
		t.Fatalf("expected positive upstream query count, got %d", resp.QueriesIssued)
	}
	// Oracle: full scan of the generator's tuples.
	type scored struct {
		id    int
		score float64
	}
	var want []scored
	di, ti := ds.Schema.Index("Depth"), ds.Schema.Index("Table")
	for _, tup := range ds.Tuples {
		if tup.Cat["Shape"] != "Round" {
			continue
		}
		want = append(want, scored{tup.ID, tup.Ord[di] + tup.Ord[ti]})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].score != want[j].score {
			return want[i].score < want[j].score
		}
		return want[i].id < want[j].id
	})
	for i, got := range resp.Tuples {
		if math.Abs(got.Score-want[i].score) > 1e-9 {
			t.Fatalf("rank %d: score %g, want %g", i, got.Score, want[i].score)
		}
	}
	// Second identical request must cost fewer upstream queries thanks to
	// the shared history.
	resp2, err := client.Rerank(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.QueriesIssued >= resp.QueriesIssued {
		t.Errorf("expected history to reduce repeat cost: first=%d second=%d",
			resp.QueriesIssued, resp2.QueriesIssued)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.EngineQueries != resp2.EngineQueries {
		t.Errorf("stats mismatch: %+v vs engineQueries=%d", st, resp2.EngineQueries)
	}
}

func TestEndToEndSingleAndRatio(t *testing.T) {
	client, ds := pipeline(t, 800, 0)
	// Single-attribute descending: largest carat first.
	resp, err := client.Rerank(RerankRequest{
		Ranking: RankingSpec{Kind: "single", Attrs: []string{"Carat"}, Desc: true},
		H:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ci := ds.Schema.Index("Carat")
	best := 0.0
	for _, tup := range ds.Tuples {
		if tup.Ord[ci] > best {
			best = tup.Ord[ci]
		}
	}
	if got := resp.Tuples[0].Ord["Carat"]; got != best {
		t.Fatalf("top carat = %g, want %g", got, best)
	}
	// Ratio: price per carat, the derived attribute Blue Nile itself
	// ranks by (here requested by the user against any site).
	resp, err = client.Rerank(RerankRequest{
		Ranking: RankingSpec{Kind: "ratio", Attrs: []string{"Price", "Carat"}},
		H:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pi := ds.Schema.Index("Price")
	wantBest := math.Inf(1)
	for _, tup := range ds.Tuples {
		if r := tup.Ord[pi] / tup.Ord[ci]; r < wantBest {
			wantBest = r
		}
	}
	if math.Abs(resp.Tuples[0].Score-wantBest) > 1e-9 {
		t.Fatalf("best price-per-carat = %g, want %g", resp.Tuples[0].Score, wantBest)
	}
}

func TestRateLimitPropagates(t *testing.T) {
	client, _ := pipeline(t, 2000, 3) // absurdly small upstream budget
	_, err := client.Rerank(RerankRequest{
		Ranking: RankingSpec{Kind: "linear", Attrs: []string{"Depth", "Table"}, Weights: []float64{1, 1}},
		H:       50,
	})
	if err == nil {
		t.Fatal("expected rate-limit error, got success")
	}
}

func TestBadRequests(t *testing.T) {
	client, _ := pipeline(t, 300, 0)
	cases := []RerankRequest{
		{Ranking: RankingSpec{Kind: "nope", Attrs: []string{"Depth"}}},
		{Ranking: RankingSpec{Kind: "linear", Attrs: []string{"NoSuchAttr"}, Weights: []float64{1}}},
		{Ranking: RankingSpec{Kind: "single", Attrs: []string{"Depth", "Table"}}},
		{Ranking: RankingSpec{Kind: "ratio", Attrs: []string{"Depth"}}},
		{Ranking: RankingSpec{Kind: "linear", Attrs: []string{"Depth"}, Weights: []float64{0}}},
		{Ranking: RankingSpec{Kind: "single", Attrs: []string{"Clarity"}}},
		{Ranking: RankingSpec{Kind: "single", Attrs: []string{"Depth"}}, Algorithm: "quantum"},
		{Ranking: RankingSpec{Kind: "single", Attrs: []string{"Depth"}}, Algorithm: "ta"},
		{Ranking: RankingSpec{Kind: "single", Attrs: []string{"Depth"}}, H: 1 << 20},
	}
	for i, req := range cases {
		if req.H == 0 {
			req.H = 2
		}
		if _, err := client.Rerank(req); err == nil {
			t.Errorf("case %d: expected error, got success", i)
		}
	}
}

func TestRemoteDBRoundTrip(t *testing.T) {
	ds := dataset.YahooAutos(3, 500)
	db := ds.DB()
	upstream := httptest.NewServer(HiddenDBHandler(db))
	defer upstream.Close()
	remote, err := DialRemote(upstream.URL, upstream.Client())
	if err != nil {
		t.Fatal(err)
	}
	if remote.K() != ds.DefaultSystemK {
		t.Fatalf("remote k = %d, want %d", remote.K(), ds.DefaultSystemK)
	}
	if remote.Schema().Len() != ds.Schema.Len() {
		t.Fatalf("remote schema has %d attrs, want %d", remote.Schema().Len(), ds.Schema.Len())
	}
	// A bounded range query must round-trip with identical semantics.
	q := NewTestQuery(remote.Schema())
	local, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overflow != local.Overflow || len(got.Tuples) != len(local.Tuples) {
		t.Fatalf("remote answer differs: got %d/%v, want %d/%v",
			len(got.Tuples), got.Overflow, len(local.Tuples), local.Overflow)
	}
	for i := range got.Tuples {
		if got.Tuples[i].ID != local.Tuples[i].ID {
			t.Fatalf("tuple %d: id %d vs %d", i, got.Tuples[i].ID, local.Tuples[i].ID)
		}
	}
}

// NewTestQuery builds a representative query with open and closed bounds
// plus a categorical filter.
func NewTestQuery(schema *types.Schema) query.Query {
	q := query.New()
	price := schema.Index("Price")
	year := schema.Index("Year")
	q = q.WithRange(price, types.Interval{Lo: 3000, Hi: 20000, LoOpen: true})
	q = q.WithRange(year, types.ClosedInterval(2000, 2012))
	q = q.WithCat("BodyStyle", "Sedan")
	return q
}

var _ = ranking.Asc
