// Service-level tests for proactive background acquisition: idle-gated
// warming with clean ledger separation (client budgets and request counters
// never absorb acquisition cost), strict yielding under user saturation,
// and warm restarts where acquired knowledge — including the heat sketch —
// survives the data-dir round trip. Run with -race.

package service

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/types"
)

// acquireOpts returns serving options with acquisition enabled but the
// background loop effectively parked (1h interval): tests drive ticks
// synchronously for determinism. IdleAfter is a nanosecond so any pause in
// user traffic counts as idle.
func acquireOpts(maxSessions int) Options {
	return Options{
		Core: core.Options{N: 1200, MaxConcurrentSessions: maxSessions},
		Acquire: AcquireOptions{
			Enabled:   true,
			Interval:  time.Hour,
			IdleAfter: time.Nanosecond,
			WarmDepth: 12,
		},
	}
}

// acquireReq is a 1D window request over clusteredDB's A0 — the window the
// heat sketch will record and the acquirer will warm.
func acquireReq(h int, desc bool) RerankRequest {
	lo, hi := 10.0, 15.0
	return RerankRequest{
		Ranges:  []RangeSpec{{Attr: "A0", Min: &lo, Max: &hi}},
		Ranking: RankingSpec{Kind: "single", Attrs: []string{"A0"}, Desc: desc},
		H:       h,
	}
}

// anonymousBudgetUsed reads the anonymous client's settled budget spend.
func anonymousBudgetUsed(t *testing.T, srv *Server) int64 {
	t.Helper()
	if srv.budgets == nil {
		t.Fatal("budgets not configured")
	}
	srv.budgets.mu.Lock()
	defer srv.budgets.mu.Unlock()
	if w := srv.budgets.clients[""]; w != nil {
		return w.used
	}
	return 0
}

// TestAcquireIdleWarmingAndLedgerSeparation: user traffic heats a window,
// an idle tick acquires it, and afterwards (a) the client's budget window
// and the request counters show only the user's own spend, (b) the
// engine-wide counter carries user + acquirer spend, and (c) a query over
// the warmed window — including the direction users never asked for — costs
// zero upstream.
func TestAcquireIdleWarmingAndLedgerSeparation(t *testing.T) {
	db := clusteredDB(t)
	opts := acquireOpts(8)
	opts.ClientBudget = 10_000
	srv, api, client := servingPipeline(t, db, opts)

	var userSpent int64
	for i := 0; i < 2; i++ {
		resp, err := client.Rerank(acquireReq(5, false))
		if err != nil {
			t.Fatal(err)
		}
		userSpent += resp.QueriesIssued
	}
	if userSpent == 0 {
		t.Fatal("precondition: cold user requests cost 0 upstream queries")
	}

	tt, ok := srv.tenantFor("")
	if !ok || tt.acq == nil {
		t.Fatal("acquirer not started on the default namespace")
	}
	tt.acq.Tick()
	as := tt.acq.Stats()
	if as.WindowsAcquired == 0 {
		t.Fatalf("idle tick acquired nothing: %+v", as)
	}
	if as.ProbesIssued == 0 {
		t.Fatal("acquisition reported zero upstream probes")
	}

	// Ledger separation: the budget window and HTTP counters hold only the
	// user's spend; the engine-wide counter holds both.
	if got := anonymousBudgetUsed(t, srv); got != userSpent {
		t.Errorf("client budget charged %d, want the user's own %d", got, userSpent)
	}
	st := srv.Stats()
	if st.Requests != 2 {
		t.Errorf("request counter %d after acquisition, want 2", st.Requests)
	}
	if st.EngineQueries != userSpent+as.ProbesIssued {
		t.Errorf("engine queries %d, want user %d + acquirer %d", st.EngineQueries, userSpent, as.ProbesIssued)
	}
	if st.Acquire == nil || !st.AcquireEnabled {
		t.Fatal("/v1/stats is missing the acquire block")
	}
	if st.Acquire.ProbesIssued != as.ProbesIssued {
		t.Errorf("stats acquire probes %d, want %d", st.Acquire.ProbesIssued, as.ProbesIssued)
	}

	// The warmed window answers both directions for free — including DESC,
	// which no user request ever issued.
	for _, desc := range []bool{false, true} {
		resp, err := client.Rerank(acquireReq(5, desc))
		if err != nil {
			t.Fatal(err)
		}
		if resp.QueriesIssued != 0 {
			t.Errorf("warmed window (desc=%v) cost %d upstream queries, want 0", desc, resp.QueriesIssued)
		}
	}

	// A re-tick skips the now-warm window rather than re-crawling it.
	tt.acq.Tick()
	as2 := tt.acq.Stats()
	if as2.ProbesIssued != as.ProbesIssued {
		t.Errorf("re-tick issued %d extra probes over a warm window", as2.ProbesIssued-as.ProbesIssued)
	}
	if as2.SkippedWarm == 0 {
		t.Error("re-tick did not record the warm skip")
	}

	// The metrics endpoint exposes the acquire series.
	mresp, err := api.Client().Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{
		"rerank_acquire_enabled 1",
		"rerank_acquire_probes_total",
		"rerank_acquire_windows_total",
		`rerank_upstream_acquire_probes_total{upstream="default"}`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
}

// TestAcquireYieldsToSaturation: with every non-reserve admission slot held
// by blocked user requests, acquisition ticks do nothing — zero probes, the
// yield counter advances — and user shedding behaves exactly as without an
// acquirer. Once the users drain, the same tick acquires.
func TestAcquireYieldsToSaturation(t *testing.T) {
	gdb := newGateDB(clusteredDB(t))
	srv, api, client := servingPipeline(t, gdb, acquireOpts(2))

	// Heat the sketch directly (no user stamp): the namespace stays idle,
	// so only the pressure guards stand between the acquirer and the gate.
	hot := query.New().WithRange(0, types.ClosedInterval(10, 15))
	for i := 0; i < 3; i++ {
		srv.Engine().RecordHeat(hot)
	}
	tt, _ := srv.tenantFor("")

	// Saturate: two requests block on the gated upstream, holding both
	// admission slots.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Rerank(acquireReq(3, false))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionsInFlight() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("user requests never occupied the admission gate")
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < 5; i++ {
		tt.acq.Tick()
	}
	as := tt.acq.Stats()
	if as.ProbesIssued != 0 || as.WindowsAcquired != 0 {
		t.Fatalf("acquirer worked under saturation: %+v", as)
	}
	if as.Yields+as.AdmissionDenied == 0 {
		t.Fatalf("saturated ticks recorded no yields: %+v", as)
	}

	// User shedding is untouched by the acquirer: the next request over
	// capacity still sheds with 429.
	resp, err := api.Client().Post(api.URL+"/v1/rerank", "application/json",
		strings.NewReader(`{"ranking":{"kind":"single","attrs":["A0"]},"h":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity user request got %d, want 429", resp.StatusCode)
	}

	close(gdb.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("saturating request %d failed: %v", i, err)
		}
	}

	// Drained and idle again: the very same tick path now acquires.
	for srv.SessionsInFlight() != 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(2 * time.Millisecond) // clear the 1ns idle gate and pressure window
	tt.acq.Tick()
	as2 := tt.acq.Stats()
	if as2.WindowsAcquired == 0 {
		t.Fatalf("post-drain tick acquired nothing: %+v", as2)
	}
}

// TestAcquireWarmRestartFromDataDir: acquired knowledge AND the heat sketch
// ride the namespace's segment store — after a restart the warmed window
// answers users for zero upstream, and the restored heat immediately marks
// the window as already-warm work for the new acquirer.
func TestAcquireWarmRestartFromDataDir(t *testing.T) {
	db := clusteredDB(t)
	dir := t.TempDir()

	srv1 := NewServerWithOptions(db, acquireOpts(8))
	if err := srv1.OpenDataDir(dir, PersistConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv1.Rerank(acquireReq(5, false)); err != nil {
		t.Fatal(err)
	}
	tt1, _ := srv1.tenantFor("")
	tt1.acq.Tick()
	if as := tt1.acq.Stats(); as.WindowsAcquired == 0 {
		t.Fatalf("precondition: tick acquired nothing: %+v", as)
	}
	srv1.BeginDrain() // stops the acquirer first, as the drain path does
	if err := srv1.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	db.ResetCounter()
	srv2 := NewServerWithOptions(db, acquireOpts(8))
	if err := srv2.OpenDataDir(dir, PersistConfig{}); err != nil {
		t.Fatal(err)
	}
	defer srv2.ClosePersistence()

	// The acquired window answers a user in the never-user-queried
	// direction for zero upstream.
	resp, _, err := srv2.Rerank(acquireReq(5, true))
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueriesIssued != 0 {
		t.Errorf("restarted warm window cost %d upstream queries, want 0", resp.QueriesIssued)
	}
	if n := db.QueryCount(); n != 0 {
		t.Errorf("restarted warm window reached the upstream %d times, want 0", n)
	}

	// The heat sketch survived: the restored hottest candidate is the same
	// window, which the new acquirer recognizes as warm instead of
	// re-crawling.
	tt2, _ := srv2.tenantFor("")
	tt2.acq.Tick()
	as2 := tt2.acq.Stats()
	if as2.SkippedWarm == 0 {
		t.Fatalf("restored heat did not surface the warmed window: %+v", as2)
	}
	if as2.ProbesIssued != 0 {
		t.Errorf("restarted acquirer re-crawled a warm window (%d probes)", as2.ProbesIssued)
	}
}
