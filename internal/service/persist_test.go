// Service-level persistence tests: the data-dir lifecycle through the
// Server API (open → serve → checkpoint → close → reopen warm), the
// corrupt-snapshot quarantine fallback at boot, and the persist gauges on
// /v1/stats and /metrics.

package service

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/segment"
)

func denseMDRequest() RerankRequest {
	lo, hi := 50.0, 50.3
	return RerankRequest{
		Ranges: []RangeSpec{
			{Attr: "A0", Min: &lo, Max: &hi},
			{Attr: "A1", Min: &lo, Max: &hi},
		},
		Ranking: RankingSpec{Kind: "linear", Attrs: []string{"A0", "A1"}, Weights: []float64{1, 1}},
		H:       5,
	}
}

// TestServiceDataDirWarmRestart is the service-level crash-safety
// acceptance path: knowledge committed to the data dir (here by the final
// checkpoint ClosePersistence takes, the drain path) makes the next process
// answer the same request for zero upstream queries — no -state snapshot
// involved.
func TestServiceDataDirWarmRestart(t *testing.T) {
	db := clusteredDB(t)
	dir := t.TempDir()
	req := denseMDRequest()

	srv1 := NewServerWith(db, core.Options{N: 1200})
	if err := srv1.OpenDataDir(dir, PersistConfig{}); err != nil {
		t.Fatal(err)
	}
	resp1, _, err := srv1.Rerank(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp1.QueriesIssued == 0 {
		t.Fatal("precondition: cold request cost 0 upstream queries")
	}
	st1 := srv1.Stats()
	if !st1.PersistEnabled {
		t.Fatal("PersistEnabled false with an open data dir")
	}
	if st1.PersistPendingOps == 0 {
		t.Fatal("no pending ops recorded by a crawling request")
	}
	if err := srv1.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	if err := srv1.ClosePersistence(); err != nil { // idempotent
		t.Fatal(err)
	}

	db.ResetCounter()
	srv2 := NewServerWith(db, core.Options{N: 1200})
	if err := srv2.OpenDataDir(dir, PersistConfig{}); err != nil {
		t.Fatal(err)
	}
	defer srv2.ClosePersistence()
	st2 := srv2.Stats()
	if st2.PersistReplayedDeltas == 0 {
		t.Fatal("restart replayed no deltas")
	}
	if st2.MDDenseRegions != st1.MDDenseRegions {
		t.Fatalf("restored %d MD dense regions, want %d", st2.MDDenseRegions, st1.MDDenseRegions)
	}
	if st2.HistoryTuples != st1.HistoryTuples {
		t.Fatalf("restored %d history tuples, want %d", st2.HistoryTuples, st1.HistoryTuples)
	}
	resp2, _, err := srv2.Rerank(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.QueriesIssued != 0 {
		t.Errorf("warm request charged %d upstream queries, want 0", resp2.QueriesIssued)
	}
	if n := db.QueryCount(); n != 0 {
		t.Errorf("warm request reached the upstream %d times, want 0", n)
	}
	if len(resp2.Tuples) != len(resp1.Tuples) {
		t.Fatalf("warm request returned %d tuples, want %d", len(resp2.Tuples), len(resp1.Tuples))
	}
	for i := range resp2.Tuples {
		if resp2.Tuples[i].ID != resp1.Tuples[i].ID {
			t.Fatalf("rank %d: warm ID %d, cold ID %d", i, resp2.Tuples[i].ID, resp1.Tuples[i].ID)
		}
	}
}

// TestSnapshotLoadedAfterDataDirIsPersisted pins the boot-order contract:
// a -state snapshot imported AFTER OpenDataDir flows through the recording
// hooks, so a later restart from the data dir ALONE carries the snapshot's
// knowledge.
func TestSnapshotLoadedAfterDataDirIsPersisted(t *testing.T) {
	db := clusteredDB(t)
	req := denseMDRequest()

	// Source of the snapshot: a plain server, no data dir.
	srv0 := NewServerWith(db, core.Options{N: 1200})
	if _, _, err := srv0.Rerank(req); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := srv0.SaveState(&snap); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	srv1 := NewServerWith(db, core.Options{N: 1200})
	if err := srv1.OpenDataDir(dir, PersistConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := srv1.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := srv1.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	db.ResetCounter()
	srv2 := NewServerWith(db, core.Options{N: 1200})
	if err := srv2.OpenDataDir(dir, PersistConfig{}); err != nil {
		t.Fatal(err)
	}
	defer srv2.ClosePersistence()
	resp, _, err := srv2.Rerank(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueriesIssued != 0 || db.QueryCount() != 0 {
		t.Errorf("snapshot knowledge did not survive via the data dir: %d request queries, %d upstream calls",
			resp.QueriesIssued, db.QueryCount())
	}
}

// TestLoadStateFileQuarantinesCorrupt covers the satellite-3 boot behavior:
// missing file = cold start, valid file = warm start, corrupt or truncated
// file = quarantine + cold start instead of a fatal boot error.
func TestLoadStateFileQuarantinesCorrupt(t *testing.T) {
	db := clusteredDB(t)
	dir := t.TempDir()
	path := dir + "/state.json"

	srv := NewServerWith(db, core.Options{N: 1200})
	if warm, err := srv.LoadStateFile(path, t.Logf); err != nil || warm {
		t.Fatalf("missing file: warm=%v err=%v, want cold start", warm, err)
	}

	// A valid snapshot loads warm.
	src := NewServerWith(db, core.Options{N: 1200})
	if _, _, err := src.Rerank(denseMDRequest()); err != nil {
		t.Fatal(err)
	}
	if err := segment.WriteFileAtomic(path, func(f *os.File) error { return src.SaveState(f) }); err != nil {
		t.Fatal(err)
	}
	if warm, err := srv.LoadStateFile(path, t.Logf); err != nil || !warm {
		t.Fatalf("valid file: warm=%v err=%v, want warm start", warm, err)
	}

	for name, corrupt := range map[string]func([]byte) []byte{
		"garbage":   func([]byte) []byte { return []byte("{not json") },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
	} {
		t.Run(name, func(t *testing.T) {
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(path, good, 0o644) // restore for the next subtest
			if err := os.WriteFile(path, corrupt(good), 0o644); err != nil {
				t.Fatal(err)
			}
			fresh := NewServerWith(db, core.Options{N: 1200})
			warned := false
			warm, err := fresh.LoadStateFile(path, func(format string, args ...any) {
				warned = true
				t.Logf(format, args...)
			})
			if err != nil || warm {
				t.Fatalf("corrupt file: warm=%v err=%v, want quarantined cold start", warm, err)
			}
			if !warned {
				t.Error("no warning logged for a quarantined state file")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt file still at %s; not quarantined", path)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Errorf("quarantined copy missing: %v", err)
			}
			os.Remove(path + ".corrupt")
		})
	}
}

// TestMetricsExposePersistSeries checks the persist gauges surface on
// /metrics (and stay absent without a data dir, except the enabled flag).
func TestMetricsExposePersistSeries(t *testing.T) {
	db := clusteredDB(t)

	scrape := func(srv *Server) string {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}

	plain := NewServerWith(db, core.Options{N: 1200})
	body := scrape(plain)
	if !strings.Contains(body, "rerank_persist_enabled 0") {
		t.Errorf("no-data-dir scrape missing rerank_persist_enabled 0:\n%s", body)
	}
	if strings.Contains(body, "rerank_persist_seq") {
		t.Error("no-data-dir scrape exposes rerank_persist_seq")
	}

	srv := NewServerWith(db, core.Options{N: 1200})
	if err := srv.OpenDataDir(t.TempDir(), PersistConfig{}); err != nil {
		t.Fatal(err)
	}
	defer srv.ClosePersistence()
	if _, _, err := srv.Rerank(denseMDRequest()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	body = scrape(srv)
	for _, want := range []string{
		"rerank_persist_enabled 1",
		"rerank_persist_seq 1",
		"rerank_persist_checkpoints_total 1",
		"rerank_persist_pending_ops 0",
		"rerank_persist_checkpoint_failing 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
