// Proactive knowledge acquisition: the serving-tier wiring of the
// background acquirer (internal/acquire) onto a namespace.
//
// Each enabled namespace runs one Acquirer that watches the engine's
// request-heat sketch and, while the namespace is idle, crawls the hottest
// not-yet-warm query windows through the ordinary session machinery. The
// priority discipline is entirely borrowed from existing mechanisms:
// admission goes through the registry's reserve-aware low-priority gate
// (under load the acquirer is refused first, never the users), mid-flight
// probes poll the registry's user-pressure signal and abort, and the cost
// lands on the acquirer's own session ledger — the system ledger — so
// client budgets and per-request cost reporting stay clean. See
// docs/acquisition.md.

package service

import (
	"errors"
	"time"

	"repro/internal/acquire"
	"repro/internal/core"
	"repro/internal/types"
)

// AcquireOptions configure proactive background acquisition for every
// registered namespace. Disabled by default: acquisition spends upstream
// queries on speculation, which an operator must opt into.
type AcquireOptions struct {
	// Enabled turns the per-namespace background acquirer on.
	Enabled bool
	// Weight is the admission weight one in-flight acquisition reserves
	// through the low-priority gate (default 1, scaled by the namespace's
	// admission weight like any session).
	Weight int
	// Interval is the acquirer's tick period (default 1s).
	Interval time.Duration
	// IdleAfter is how long a namespace must be free of user requests
	// before a tick does any work (default 2·Interval).
	IdleAfter time.Duration
	// WindowsPerTick bounds how many windows one tick may acquire
	// (default 2).
	WindowsPerTick int
	// WarmDepth is how many tuples deep each direction of a window is
	// warmed (default 16).
	WarmDepth int
	// MinHeat is the decayed-heat floor below which candidate windows are
	// not worth acquiring (default 1).
	MinHeat float64
}

// touchUser stamps the tenant's last-user-request clock; called on every
// admitted rerank/batch/stream execution so the acquirer's idle gate sees
// user traffic of any shape.
func (t *tenant) touchUser() { t.lastUser.Store(time.Now().UnixNano()) }

// idleSince reports how long ago the tenant last served a user request. A
// namespace that has never served one counts as idle since forever.
func (t *tenant) idleSince() time.Duration {
	last := t.lastUser.Load()
	if last == 0 {
		return time.Duration(1<<63 - 1)
	}
	return time.Since(time.Unix(0, last))
}

// startAcquirer wires a background acquirer onto the tenant's engine and
// starts its loop. Called under registration once the namespace (and any
// persistence replay, which may restore heat) is in place.
func (s *Server) startAcquirer(t *tenant) {
	ao := s.opts.Acquire
	weight := ao.Weight
	if weight <= 0 {
		weight = 1
	}
	eng := t.engine()
	window := func(w acquire.Window) types.Interval { return types.ClosedInterval(w.Lo, w.Hi) }
	var a *acquire.Acquirer // hooks run only after Start, when a is set
	hooks := acquire.Hooks{
		Candidates: func(max int) []acquire.Candidate { return eng.Heat().Candidates(max) },
		Warm:       func(w acquire.Window) bool { return eng.WindowWarm(w.Attr, window(w)) },
		IdleSince:  t.idleSince,
		Pressure:   func() bool { return s.registry.UserPressure(a.Config().IdleAfter) },
		Admit:      func() (func(), bool) { return s.registry.TryAdmitAcquire(t.ns, weight) },
		Acquire: func(w acquire.Window, depth int, abort func() bool) (int64, bool, error) {
			// A fresh session per acquisition is the system ledger: its
			// spend shows up in the engine-wide counter and the acquirer's
			// stats, never in any client's budget window or response.
			sess := eng.NewSession()
			sess.SetAbort(abort)
			err := sess.WarmWindow(w.Attr, window(w), depth)
			if errors.Is(err, core.ErrAcquireAborted) {
				return sess.Queries(), true, nil
			}
			return sess.Queries(), false, err
		},
	}
	a = acquire.New(acquire.Config{
		Interval:       ao.Interval,
		IdleAfter:      ao.IdleAfter,
		WindowsPerTick: ao.WindowsPerTick,
		WarmDepth:      ao.WarmDepth,
		MinHeat:        ao.MinHeat,
	}, hooks)
	t.acq = a
	a.Start()
}

// stopAcquirer halts the tenant's acquirer, waiting for any in-flight
// acquisition to yield. Safe when none is running.
func (t *tenant) stopAcquirer() {
	if t.acq != nil {
		t.acq.Stop()
	}
}
