// Client is the Go client for the reranking service API.

package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Client talks to a rerankd instance.
type Client struct {
	baseURL string
	http    *http.Client
	// ClientID, when set, is sent as the X-Client-ID header so the
	// server's per-client budget windows attribute cost to this client.
	ClientID string
}

// NewClient builds a client for the service at baseURL.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Client{baseURL: baseURL, http: hc}
}

// StatusError is a non-200 service answer. Shed requests (429/503) carry
// RetryAfter, the server's requested backoff.
type StatusError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("status %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("status %d", e.Status)
}

// statusError drains a non-200 response into a *StatusError.
func statusError(resp *http.Response) *StatusError {
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&e)
	se := &StatusError{Status: resp.StatusCode, Msg: e.Error}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		se.RetryAfter = time.Duration(secs) * time.Second
	}
	return se
}

func (c *Client) post(path string, v any) (*http.Response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.ClientID != "" {
		req.Header.Set(ClientIDHeader, c.ClientID)
	}
	return c.http.Do(req)
}

// Rerank submits one reranking request.
func (c *Client) Rerank(req RerankRequest) (*RerankResponse, error) {
	resp, err := c.post("/v1/rerank", req)
	if err != nil {
		return nil, fmt.Errorf("rerank request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rerank request: %w", statusError(resp))
	}
	var out RerankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode rerank response: %w", err)
	}
	return &out, nil
}

// RerankBatch submits a batch of requests in one round trip. The returned
// response carries per-item outcomes in request order; an error is only
// returned when the batch itself was rejected (bad request, 429, 503).
func (c *Client) RerankBatch(req BatchRequest) (*BatchResponse, error) {
	resp, err := c.post("/v1/rerank/batch", req)
	if err != nil {
		return nil, fmt.Errorf("batch request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("batch request: %w", statusError(resp))
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode batch response: %w", err)
	}
	return &out, nil
}

// RerankStream submits a streaming request and calls fn for every NDJSON
// event as it arrives, final Done event included. fn returning false stops
// reading and disconnects (the server releases the session at the next
// tuple boundary). The final event is also returned for convenience.
func (c *Client) RerankStream(req RerankRequest, fn func(StreamEvent) bool) (*StreamEvent, error) {
	resp, err := c.post("/v1/rerank/stream", req)
	if err != nil {
		return nil, fmt.Errorf("stream request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stream request: %w", statusError(resp))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("decode stream event: %w", err)
		}
		cont := fn == nil || fn(ev)
		if ev.Done {
			// The final event's error outranks fn's stop signal — a
			// failed stream must never return a nil error.
			if ev.Error != "" {
				// In-band failure: surface it with the same typed
				// status a one-shot request would have returned.
				status := ev.Status
				if status == 0 {
					status = http.StatusBadGateway
				}
				return &ev, fmt.Errorf("stream failed: %w", &StatusError{Status: status, Msg: ev.Error})
			}
			return &ev, nil
		}
		if !cont {
			return &ev, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read stream: %w", err)
	}
	return nil, fmt.Errorf("stream ended without a final event")
}

// Stats fetches engine statistics.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.http.Get(c.baseURL + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("stats request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats request: status %s", resp.Status)
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode stats: %w", err)
	}
	return &out, nil
}
