// Client is the Go client for the reranking service API.

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Client talks to a rerankd instance.
type Client struct {
	baseURL string
	http    *http.Client
}

// NewClient builds a client for the service at baseURL.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Client{baseURL: baseURL, http: hc}
}

// Rerank submits one reranking request.
func (c *Client) Rerank(req RerankRequest) (*RerankResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.baseURL+"/v1/rerank", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("rerank request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("rerank request: status %s: %s", resp.Status, e.Error)
	}
	var out RerankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode rerank response: %w", err)
	}
	return &out, nil
}

// Stats fetches engine statistics.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.http.Get(c.baseURL + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("stats request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats request: status %s", resp.Status)
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode stats: %w", err)
	}
	return &out, nil
}
